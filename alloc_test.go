// Allocation-budget regression tests (ISSUE 6): the steady-state AM hot
// paths must stay near zero heap allocations. Budgets are explicit and
// deliberately a little above the measured values so scheduling noise
// (background flusher ticks, occasional pool growth) doesn't flake the
// build — but far below any per-op regression: losing slab recycling or
// the shared fire-and-forget future costs hundreds-to-thousands of
// allocations per batch and fails these immediately.
package lamellar_test

import (
	"math/rand"
	"testing"

	lamellar "repro"
	"repro/internal/runtime"
)

// Aggregated fire-and-forget adds: 2048 ops + WaitAll per measured run.
// Steady state the whole batch — buffering, flush, wire frames, remote
// apply, acks — recycles everything, so the per-batch budget is 64
// (the warmup ceiling from the acceptance criteria; measured steady
// state is ~0 per batch).
func TestAllocBudgetAggregatedAdd(t *testing.T) {
	const tableLen = 8192
	const opsPerBatch = 2048
	cfg := runtime.Config{PEs: 2, WorkersPerPE: 2, Lamellae: runtime.LamellaeSim}
	err := runtime.Run(cfg, func(w *runtime.World) {
		a := lamellar.NewAtomicArray[uint64](w.Team(), tableLen, lamellar.Block)
		defer a.Drop()
		if w.MyPE() == 0 {
			rng := rand.New(rand.NewSource(7))
			idxs := make([]int, opsPerBatch)
			for i := range idxs {
				idxs[i] = tableLen/2 + rng.Intn(tableLen/2) // PE1's half
			}
			batch := func() {
				for _, idx := range idxs {
					a.Add(idx, 1)
				}
				w.WaitAll()
			}
			for i := 0; i < 20; i++ {
				batch() // warm pools, slab classes, scratch encoders
			}
			if per := testing.AllocsPerRun(50, batch); per > 64 {
				t.Errorf("aggregated add batch averaged %.1f allocs, budget 64", per)
			}
		}
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Fetch-add round trip: one remote FetchAdd awaited to completion. The
// fetch path still pays for its per-op future, result slot, and the
// return-envelope decode; the budget bounds that tail.
func TestAllocBudgetFetchAddRoundTrip(t *testing.T) {
	const tableLen = 64
	cfg := runtime.Config{PEs: 2, WorkersPerPE: 2, Lamellae: runtime.LamellaeSim}
	err := runtime.Run(cfg, func(w *runtime.World) {
		a := lamellar.NewAtomicArray[uint64](w.Team(), tableLen, lamellar.Block)
		defer a.Drop()
		if w.MyPE() == 0 {
			idx := tableLen - 1 // owned by PE1
			rt := func() {
				if _, err := runtime.BlockOn(w, a.FetchAdd(idx, 1)); err != nil {
					panic(err)
				}
			}
			for i := 0; i < 200; i++ {
				rt()
			}
			if per := testing.AllocsPerRun(500, rt); per > 48 {
				t.Errorf("fetch-add round trip averaged %.1f allocs, budget 48", per)
			}
		}
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}
