// Public-API tests: exercising the facade the examples use, including
// memory regions traveling inside active messages.
package lamellar_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	lamellar "repro"
)

// fillRegionAM receives a OneSided region and writes into the ORIGIN's
// memory from the remote PE, then returns the origin-side length.
type fillRegionAM struct {
	Reg  *lamellar.OneSidedMemoryRegion[uint64]
	Base uint64
}

func (a *fillRegionAM) MarshalLamellar(e *lamellar.Encoder) {
	lamellar.MarshalOneSidedRegion(e, a.Reg)
	e.PutUvarint(a.Base)
}

func (a *fillRegionAM) UnmarshalLamellar(d *lamellar.Decoder) error {
	var err error
	a.Reg, err = lamellar.UnmarshalOneSidedRegion[uint64](d)
	if err != nil {
		return err
	}
	a.Base = d.Uvarint()
	return d.Err()
}

func (a *fillRegionAM) Exec(ctx *lamellar.Context) any {
	// put from the executing PE into the origin's region
	vals := make([]uint64, 4)
	for i := range vals {
		vals[i] = a.Base + uint64(i)
	}
	a.Reg.Put(0, vals)
	return uint64(a.Reg.Len())
}

func init() {
	lamellar.RegisterAM[fillRegionAM]("roottest.fillRegion")
}

func TestOneSidedRegionTravelsInAM(t *testing.T) {
	cfg := lamellar.Config{PEs: 3, WorkersPerPE: 2, Lamellae: lamellar.LamellaeSim}
	err := lamellar.Run(cfg, func(w *lamellar.World) {
		if w.MyPE() == 0 {
			reg := lamellar.NewOneSidedMemoryRegion[uint64](w, 16)
			n, err := lamellar.BlockOn(w, lamellar.ExecTyped[uint64](w, 2, &fillRegionAM{Reg: reg, Base: 100}))
			if err != nil {
				panic(err)
			}
			if n != 16 {
				panic(fmt.Sprintf("remote saw len %d", n))
			}
			// the remote wrote into MY memory
			local := reg.Local()
			for i := 0; i < 4; i++ {
				if local[i] != 100+uint64(i) {
					panic(fmt.Sprintf("local[%d] = %d", i, local[i]))
				}
			}
		}
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRegionTicketSingleUse(t *testing.T) {
	cfg := lamellar.Config{PEs: 2, WorkersPerPE: 1, Lamellae: lamellar.LamellaeShmem}
	err := lamellar.Run(cfg, func(w *lamellar.World) {
		if w.MyPE() == 0 {
			reg := lamellar.NewOneSidedMemoryRegion[uint64](w, 4)
			// two sends need two marshals (two tickets): both must work
			f1 := lamellar.ExecTyped[uint64](w, 1, &fillRegionAM{Reg: reg, Base: 1})
			f2 := lamellar.ExecTyped[uint64](w, 1, &fillRegionAM{Reg: reg, Base: 5})
			if _, err := lamellar.BlockOn(w, f1); err != nil {
				panic(err)
			}
			if _, err := lamellar.BlockOn(w, f2); err != nil {
				panic(err)
			}
		}
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSharedRegionAndSpawn(t *testing.T) {
	cfg := lamellar.Config{PEs: 2, WorkersPerPE: 2, Lamellae: lamellar.LamellaeShmem}
	err := lamellar.Run(cfg, func(w *lamellar.World) {
		sh := lamellar.NewSharedMemoryRegion[uint64](w.Team(), 8)
		sh.Put((w.MyPE()+1)%2, 0, []uint64{uint64(w.MyPE() + 7)})
		w.Barrier()
		if got := sh.Local()[0]; got != uint64((w.MyPE()+1)%2+7) {
			panic(fmt.Sprintf("PE%d shared[0] = %d", w.MyPE(), got))
		}
		// user futures on the PE's pool
		f := lamellar.Spawn(w, func() (int, error) { return 6 * 7, nil })
		if v, _ := lamellar.BlockOn(w, f); v != 42 {
			panic("spawn result wrong")
		}
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFacadeDarc(t *testing.T) {
	cfg := lamellar.Config{PEs: 2, WorkersPerPE: 1, Lamellae: lamellar.LamellaeShmem}
	var finalized atomic.Int64
	err := lamellar.Run(cfg, func(w *lamellar.World) {
		d := lamellar.NewDarc(w.Team(), new(atomic.Int64), func(*atomic.Int64) { finalized.Add(1) })
		d.Get().Store(int64(w.MyPE()))
		w.Barrier()
		if d.Get().Load() != int64(w.MyPE()) {
			panic("darc instance not independent")
		}
		w.Barrier()
		d.Drop()
		<-d.DroppedChan()
	})
	if err != nil {
		t.Fatal(err)
	}
	if finalized.Load() != 2 {
		t.Errorf("finalizers = %d", finalized.Load())
	}
}
