// Histogram: the paper's Listing 2 — the Histogram kernel on an
// AtomicArray using the batch_add API, with a sum reduction asserting no
// update was lost.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	lamellar "repro"
)

const (
	tableLen     = 1_000_000 // global table length (paper: T_LEN)
	updatesPerPE = 1_000_000 // updates per PE (paper: 10M per core)
)

func main() {
	cfg := lamellar.Config{PEs: 4, WorkersPerPE: 2, Lamellae: lamellar.LamellaeSim}.ApplyEnv()
	err := lamellar.Run(cfg, func(world *lamellar.World) {
		table := lamellar.NewAtomicArray[uint64](world.Team(), tableLen, lamellar.Block)

		rng := rand.New(rand.NewSource(int64(world.MyPE()) + 42))
		rndIdx := make([]int, updatesPerPE) // generate random indices
		for i := range rndIdx {
			rndIdx[i] = rng.Intn(tableLen)
		}

		world.Barrier()
		timer := time.Now()
		if _, err := lamellar.BlockOn(world, table.BatchAdd(rndIdx, 1)); err != nil {
			panic(err) // histogram kernel
		}
		world.Barrier()
		if world.MyPE() == 0 {
			fmt.Printf("Elapsed time: %v\n", time.Since(timer))
		}

		sum, err := lamellar.BlockOn(world, table.Sum())
		if err != nil {
			panic(err)
		}
		want := uint64(updatesPerPE * world.NumPEs())
		if sum != want {
			panic(fmt.Sprintf("PE%d: sum %d != %d: updates were lost", world.MyPE(), sum, want))
		}
		if world.MyPE() == 0 {
			fmt.Printf("sum = %d: all %d updates accounted for\n", sum, want)
		}
		world.Barrier()
		table.Drop()
	})
	if err != nil {
		log.Fatal(err)
	}
}
