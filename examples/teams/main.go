// Teams: sub-teams, team-scoped active messages and collectives (§III of
// the paper: "Team - A subset of PEs in the world; sub-teams are
// supported"). The world splits into even and odd sub-teams; each team
// builds its own distributed array, reduces over it, and the odd team
// additionally broadcasts a value from its last member.
package main

import (
	"fmt"
	"log"

	lamellar "repro"
)

func main() {
	cfg := lamellar.Config{PEs: 6, WorkersPerPE: 2, Lamellae: lamellar.LamellaeSim}.ApplyEnv()
	err := lamellar.Run(cfg, func(world *lamellar.World) {
		// Everyone participates in both splits (collective on the world
		// team); each PE keeps the handle of the team it belongs to.
		evens := world.Team().SplitStrided(0, 2) // world PEs 0,2,4
		odds := world.Team().SplitStrided(1, 2)  // world PEs 1,3,5
		mine := evens
		label := "evens"
		if mine == nil {
			mine, label = odds, "odds"
		}

		// A team-scoped array: only the team's PEs hold its data.
		arr := lamellar.NewAtomicArray[uint64](mine, 30, lamellar.Block)
		idxs := make([]int, 30)
		for i := range idxs {
			idxs[i] = i
		}
		if _, err := lamellar.BlockOn(world, arr.BatchAdd(idxs, uint64(mine.Rank()+1))); err != nil {
			panic(err)
		}
		mine.Barrier()
		sum, err := lamellar.BlockOn(world, arr.Sum())
		if err != nil {
			panic(err)
		}
		// each member added rank+1 to all 30 elements: 30 * Σ(rank+1)
		want := uint64(30 * (1 + 2 + 3))
		if sum != want {
			panic(fmt.Sprintf("%s PE%d: sum %d want %d", label, world.MyPE(), sum, want))
		}
		if mine.Rank() == 0 {
			fmt.Printf("%s team (world PEs %v): array sum = %d\n", label, mine.Members(), sum)
		}

		// Team collectives: a broadcast from the team's last member.
		root := mine.Size() - 1
		var payload []byte
		if mine.Rank() == root {
			payload = []byte(fmt.Sprintf("greetings from world PE%d", world.MyPE()))
		}
		msg := mine.BroadcastBytes(root, payload)
		if mine.Rank() == 0 {
			fmt.Printf("%s team received: %q\n", label, msg)
		}

		mine.Barrier()
		arr.Drop()
		world.Barrier()
	})
	if err != nil {
		log.Fatal(err)
	}
}
