// PageRank: an irregular distributed graph workload of the kind the
// paper's introduction motivates for PGAS runtimes. The rank vector is a
// distributed ReadOnlyArray snapshot each iteration; contributions are
// scattered to neighbor owners with AtomicArray batch adds (the same
// aggregated small-message pattern as the Histogram kernel); dangling
// mass and convergence use team reductions.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	lamellar "repro"
)

const (
	nodesPerPE = 2000
	avgDegree  = 8
	damping    = 0.85
	iterations = 20
)

func main() {
	cfg := lamellar.Config{PEs: 4, WorkersPerPE: 2, Lamellae: lamellar.LamellaeSim}.ApplyEnv()
	err := lamellar.Run(cfg, func(world *lamellar.World) {
		pes := world.NumPEs()
		n := nodesPerPE * pes
		myLo := world.MyPE() * nodesPerPE

		// Build my slice of a random directed graph (Erdős–Rényi-ish):
		// out-edges of the nodes I own, scaled by 2^30 fixed point to use
		// integer atomics for deterministic accumulation.
		rng := rand.New(rand.NewSource(int64(world.MyPE()) + 1234))
		outEdges := make([][]int, nodesPerPE)
		for i := range outEdges {
			deg := rng.Intn(2 * avgDegree)
			for k := 0; k < deg; k++ {
				outEdges[i] = append(outEdges[i], rng.Intn(n))
			}
		}

		const scale = 1 << 30
		dampingF := float64(damping) // variables: keep fixed-point math out of constant folding
		dampFixed := int64(dampingF * float64(int64(scale)))
		ranks := lamellar.NewAtomicArray[int64](world.Team(), n, lamellar.Block)
		next := lamellar.NewAtomicArray[int64](world.Team(), n, lamellar.Block)
		// init: uniform 1/n
		init := make([]int64, nodesPerPE)
		for i := range init {
			init[i] = scale / int64(n)
		}
		if _, err := lamellar.BlockOn(world, ranks.Put(myLo, init)); err != nil {
			panic(err)
		}
		world.Barrier()

		for iter := 0; iter < iterations; iter++ {
			local := ranks.LocalData() // safe: quiescent between barriers

			// scatter contributions to neighbors' owners, batched
			idxs := make([]int, 0, nodesPerPE*avgDegree)
			vals := make([]int64, 0, nodesPerPE*avgDegree)
			var dangling int64
			for i, edges := range outEdges {
				r := local[i]
				if len(edges) == 0 {
					dangling += r
					continue
				}
				share := r / int64(len(edges))
				for _, dst := range edges {
					idxs = append(idxs, dst)
					vals = append(vals, share)
				}
			}
			if _, err := lamellar.BlockOn(world, next.BatchAddVals(idxs, vals)); err != nil {
				panic(err)
			}
			world.Barrier()

			// fold damping, teleport and the globally-shared dangling mass
			gDangling := int64(world.Team().SumU64(uint64(dangling)))
			base := (scale-dampFixed)/int64(n) +
				int64(dampingF*float64(gDangling)/float64(n))
			nextLocal := next.LocalData()
			newRanks := make([]int64, nodesPerPE)
			for i := range newRanks {
				newRanks[i] = base + int64(dampingF*float64(nextLocal[i]))
				nextLocal[i] = 0 // reset accumulator for the next iteration
			}
			world.Barrier()
			if _, err := lamellar.BlockOn(world, ranks.Put(myLo, newRanks)); err != nil {
				panic(err)
			}
			world.Barrier()
		}

		// total probability mass should remain ~1.0 (fixed-point rounding
		// loses a little mass per division)
		total, err := lamellar.BlockOn(world, ranks.Sum())
		if err != nil {
			panic(err)
		}
		mass := float64(total) / scale
		if world.MyPE() == 0 {
			fmt.Printf("PageRank over %d nodes, %d iterations: total mass %.4f\n", n, iterations, mass)
			// highest-ranked node via a one-sided stream from PE0
			best, bestIdx := int64(-1), -1
			for idx, v := range ranks.OneSidedIter(4096).Seq() {
				if v > best {
					best, bestIdx = v, idx
				}
			}
			fmt.Printf("top node: %d (rank %.6f)\n", bestIdx, float64(best)/scale)
			if math.Abs(mass-1.0) > 0.05 {
				panic("mass not conserved")
			}
		}
		world.Barrier()
		ranks.Drop()
		next.Drop()
	})
	if err != nil {
		log.Fatal(err)
	}
}
