// Randperm: the paper's "Array Darts" variant (§IV-B3) — build a random
// permutation of 0..N·P-1 by throwing darts at an AtomicArray with
// batch_compare_exchange and collecting the stuck darts with the
// distributed Collect iterator.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	lamellar "repro"
)

const (
	dartsPerPE   = 100_000
	targetFactor = 2 // target array is 2x the permutation (paper)
)

func main() {
	cfg := lamellar.Config{PEs: 4, WorkersPerPE: 2, Lamellae: lamellar.LamellaeSim}.ApplyEnv()
	err := lamellar.Run(cfg, func(world *lamellar.World) {
		pes := world.NumPEs()
		targetLen := dartsPerPE * targetFactor * pes
		target := lamellar.NewAtomicArray[uint64](world.Team(), targetLen, lamellar.Block)

		// my darts: values rank*N .. rank*N+N-1, stored +1 (0 = empty slot)
		pending := make([]uint64, dartsPerPE)
		for i := range pending {
			pending[i] = uint64(world.MyPE()*dartsPerPE + i)
		}
		rng := rand.New(rand.NewSource(int64(world.MyPE()) + 99))

		world.Barrier()
		timer := time.Now()
		rounds := 0
		for {
			rounds++
			idxs := make([]int, len(pending))
			news := make([]uint64, len(pending))
			for i, dart := range pending {
				idxs[i] = rng.Intn(targetLen)
				news[i] = dart + 1
			}
			prevs, err := lamellar.BlockOn(world, target.BatchCompareExchange(idxs, 0, news))
			if err != nil {
				panic(err)
			}
			var failed []uint64
			for i, prev := range prevs {
				if prev != 0 {
					failed = append(failed, pending[i])
				}
			}
			pending = failed
			if world.Team().SumU64(uint64(len(pending))) == 0 {
				break
			}
		}
		world.Barrier()
		if world.MyPE() == 0 {
			fmt.Printf("all darts stuck after %d rounds in %v\n", rounds, time.Since(timer))
		}

		// Collect the permutation: filter stuck slots, map back to values.
		it := lamellar.MapIter(
			target.DistIter().Filter(func(v uint64) bool { return v != 0 }),
			func(v uint64) uint64 { return v - 1 })
		local, err := it.Collect().Await()
		if err != nil {
			panic(err)
		}
		var sum uint64
		for _, v := range local {
			sum += v
		}
		total := uint64(dartsPerPE * pes)
		gsum := world.Team().SumU64(sum)
		if want := total * (total - 1) / 2; gsum != want {
			panic(fmt.Sprintf("permutation checksum %d != %d", gsum, want))
		}
		if world.MyPE() == 0 {
			fmt.Printf("permutation of %d values verified (checksum ok)\n", total)
		}
		world.Barrier()
		target.Drop()
	})
	if err != nil {
		log.Fatal(err)
	}
}
