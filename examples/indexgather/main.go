// IndexGather: random remote reads with batch_load on a ReadOnlyArray
// (§IV-B2): target[i] = table[rand_i]. The table is initialized through
// an UnsafeArray and frozen read-only, demonstrating kind conversion and
// the direct-RDMA get that read-only data makes sound.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	lamellar "repro"
)

const (
	perPE      = 1000    // table elements per PE (paper: 1000 per core)
	requestsPE = 200_000 // requests per PE (paper: 10M per core)
)

func main() {
	cfg := lamellar.Config{PEs: 4, WorkersPerPE: 2, Lamellae: lamellar.LamellaeSim}.ApplyEnv()
	err := lamellar.Run(cfg, func(world *lamellar.World) {
		tableLen := perPE * world.NumPEs()

		// Initialize through the unsafe kind: each PE fills its own chunk
		// with the global index value, then the array is frozen.
		ua := lamellar.NewUnsafeArray[uint64](world.Team(), tableLen, lamellar.Block)
		fill := make([]uint64, perPE)
		for i := range fill {
			fill[i] = uint64(world.MyPE()*perPE + i)
		}
		ua.PutUnchecked(world.MyPE()*perPE, fill)
		world.Barrier()
		table := ua.IntoReadOnly()

		rng := rand.New(rand.NewSource(int64(world.MyPE()) + 7))
		rndIdx := make([]int, requestsPE)
		for i := range rndIdx {
			rndIdx[i] = rng.Intn(tableLen)
		}

		world.Barrier()
		timer := time.Now()
		target, err := lamellar.BlockOn(world, table.BatchLoad(rndIdx))
		if err != nil {
			panic(err)
		}
		world.Barrier()
		if world.MyPE() == 0 {
			fmt.Printf("Elapsed time: %v\n", time.Since(timer))
		}

		for i, g := range rndIdx {
			if target[i] != uint64(g) {
				panic(fmt.Sprintf("PE%d: target[%d] = %d, want %d", world.MyPE(), i, target[i], g))
			}
		}
		// read-only data also admits direct RDMA gets
		head := table.GetDirect(0, 4)
		if world.MyPE() == 0 {
			fmt.Printf("verified %d gathered values; table head = %v\n", len(target), head)
		}
		world.Barrier()
		table.Drop()
	})
	if err != nil {
		log.Fatal(err)
	}
}
