// Quickstart: the paper's Listing 1 "Hello World" translated to the Go
// reproduction. A HelloWorldAM is launched on every PE (exec_am_all), the
// local PE blocks on the request, and PEs other than 0 additionally send
// an AM to PE0 and wait for all their launches (wait_all). Run prints one
// line per PE plus one line per non-zero PE executed on PE0.
package main

import (
	"fmt"
	"log"

	lamellar "repro"
)

// HelloWorldAM carries a name and prints where it executes — the analogue
// of the #[AmData] struct in Listing 1.
type HelloWorldAM struct {
	Name string
}

// MarshalLamellar / UnmarshalLamellar play the role of the derive macros.
func (a *HelloWorldAM) MarshalLamellar(e *lamellar.Encoder) { e.PutString(a.Name) }

// UnmarshalLamellar decodes the AM on the destination PE.
func (a *HelloWorldAM) UnmarshalLamellar(d *lamellar.Decoder) error {
	a.Name = d.String()
	return d.Err()
}

// Exec is the `async fn exec(self)` body.
func (a *HelloWorldAM) Exec(ctx *lamellar.Context) any {
	fmt.Printf("PE%d: hello %s!\n", ctx.CurrentPE(), a.Name)
	return nil
}

func init() {
	lamellar.RegisterAM[HelloWorldAM]("examples.HelloWorldAM")
}

func main() {
	cfg := lamellar.Config{PEs: 4, Lamellae: lamellar.LamellaeSim}.ApplyEnv()
	err := lamellar.Run(cfg, func(world *lamellar.World) {
		am := &HelloWorldAM{Name: "World"}
		req := world.ExecAMAllReturn(am) // all PEs
		if _, err := lamellar.BlockOn(world, req); err != nil {
			panic(err)
		}
		world.Barrier() // global sync

		if world.MyPE() != 0 {
			am := &HelloWorldAM{Name: fmt.Sprintf("World2 from PE%d", world.MyPE())}
			world.ExecAM(0, am) // send to PE0
			world.WaitAll()     // only blocks the local PE
		}
		// No explicit finalize: Run keeps every PE serving AMs until the
		// whole world is quiescent, like dropping `world` in Rust.
	})
	if err != nil {
		log.Fatal(err)
	}
}
