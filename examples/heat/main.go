// Heat: a 1-D explicit heat-diffusion stencil over a distributed
// LocalLockArray — the kind of regular domain-science workload the
// paper's intro motivates for safe PGAS programming. Each PE owns a block
// of the rod; per step it reads one halo cell from each neighbor with a
// safe Get, updates its interior under the local write lock, and the
// world synchronizes with barriers. A OneSidedIterator streams the final
// temperature profile from PE0.
package main

import (
	"fmt"
	"log"
	"math"

	lamellar "repro"
)

const (
	cellsPerPE = 4096
	steps      = 200
	alpha      = 0.25 // diffusion coefficient (stable for dt/dx^2 <= 0.5)
)

func main() {
	cfg := lamellar.Config{PEs: 4, WorkersPerPE: 2, Lamellae: lamellar.LamellaeSim}.ApplyEnv()
	err := lamellar.Run(cfg, func(world *lamellar.World) {
		n := cellsPerPE * world.NumPEs()
		rod := lamellar.NewLocalLockArray[float64](world.Team(), n, lamellar.Block)

		// initial condition: a hot spike in the middle of the rod
		if world.MyPE() == 0 {
			spike := make([]float64, 1)
			spike[0] = 1000.0
			if _, err := lamellar.BlockOn(world, rod.Put(n/2, spike)); err != nil {
				panic(err)
			}
		}
		world.Barrier()

		lo := world.MyPE() * cellsPerPE // my block: [lo, hi)
		hi := lo + cellsPerPE
		next := make([]float64, cellsPerPE)

		for step := 0; step < steps; step++ {
			// halo reads through the safe Get API (owner-side read locks)
			left, right := 0.0, 0.0
			if lo > 0 {
				v, err := lamellar.BlockOn(world, rod.Get(lo-1, 1))
				if err != nil {
					panic(err)
				}
				left = v[0]
			}
			if hi < n {
				v, err := lamellar.BlockOn(world, rod.Get(hi, 1))
				if err != nil {
					panic(err)
				}
				right = v[0]
			}
			rod.ReadLocal(func(cur []float64) {
				for i := range next {
					l := left
					if i > 0 {
						l = cur[i-1]
					}
					r := right
					if i < len(cur)-1 {
						r = cur[i+1]
					}
					next[i] = cur[i] + alpha*(l-2*cur[i]+r)
				}
			})
			world.Barrier() // all reads done before anyone writes
			rod.WriteLocal(func(cur []float64) { copy(cur, next) })
			world.Barrier()
		}

		// energy is conserved by the explicit scheme (reflecting ends lose
		// a little; tolerance accounts for boundary leakage)
		sum, err := lamellar.BlockOn(world, rod.Sum())
		if err != nil {
			panic(err)
		}
		if world.MyPE() == 0 {
			fmt.Printf("total heat after %d steps: %.3f (started with 1000)\n", steps, sum)
			if math.Abs(sum-1000) > 1 {
				panic("heat not conserved")
			}
			// stream the hot region one-sidedly and report its extent
			count := 0
			for _, v := range rod.OneSidedIter(1024).Seq() {
				if v > 0.5 {
					count++
				}
			}
			fmt.Printf("cells above 0.5 degrees: %d\n", count)
		}
		world.Barrier()
		rod.Drop()
	})
	if err != nil {
		log.Fatal(err)
	}
}
