// Benchmarks regenerating the paper's figures as testing.B targets (the
// cmd/lamellar-bench CLI produces the full tables; these provide
// `go test -bench` entry points plus micro-benchmarks of the stack's
// layers). Wall-clock numbers here reflect the simulator host; the
// figure-shaped outputs come from the CLI's modeled metric.
package lamellar_test

import (
	"fmt"
	"math/rand"
	goruntime "runtime"
	"sync/atomic"
	"testing"

	lamellar "repro"
	"repro/internal/bale/kernels"
	"repro/internal/fabric"
	"repro/internal/memregion"
	"repro/internal/runtime"
	"repro/internal/scheduler"
	"repro/internal/serde"
	"repro/internal/telemetry"
)

// benchParams keeps kernel benchmarks fast enough for -bench runs.
var benchParams = kernels.Params{
	TablePerPE:   1000,
	UpdatesPerPE: 20_000,
	BufItems:     2_000,
	DartsPerPE:   10_000,
	TargetFactor: 2,
	Seed:         0xBA1E,
}

func benchWorldCfg(pes int) runtime.Config {
	return runtime.Config{PEs: pes, WorkersPerPE: 2, Lamellae: runtime.LamellaeSim}
}

// runKernelBench executes a collective kernel b.N times inside one world.
func runKernelBench(b *testing.B, pes int, fn kernels.KernelFunc) {
	b.Helper()
	err := runtime.Run(benchWorldCfg(pes), func(w *runtime.World) {
		for i := 0; i < b.N; i++ {
			if kerr := fn(w, benchParams, nil); kerr != nil {
				panic(kerr)
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(benchParams.UpdatesPerPE*pes*b.N), "updates")
}

// ----- Fig. 2: put-like bandwidth -----------------------------------------

func BenchmarkFig2PutBandwidth(b *testing.B) {
	const size = 64 << 10
	methods := []struct {
		name string
		run  func(w *runtime.World, buf []uint8, n int)
	}{
		{"rofi", func(w *runtime.World, buf []uint8, n int) {
			seg := w.Provider().AllocSegment(size, 0)
			defer w.Provider().FreeSegment(seg)
			for i := 0; i < n; i++ {
				w.Provider().Put(0, 1, seg, 0, buf)
			}
		}},
		{"memregion", func(w *runtime.World, buf []uint8, n int) {
			reg := fabric.AllocTyped[uint8](w.Provider(), size)
			sh := memregion.NewShared(w.Provider(), reg, 0)
			for i := 0; i < n; i++ {
				sh.Put(1, 0, buf)
			}
		}},
	}
	for _, m := range methods {
		m := m
		b.Run(m.name, func(b *testing.B) {
			err := runtime.Run(benchWorldCfg(2), func(w *runtime.World) {
				if w.MyPE() != 0 {
					return
				}
				buf := make([]uint8, size)
				b.ResetTimer()
				m.run(w, buf, b.N)
				b.StopTimer()
			})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(size)
		})
	}
}

func BenchmarkFig2ArrayPut(b *testing.B) {
	const size = 64 << 10
	kindsUnderTest := []string{"unsafe-unchecked", "unsafe", "locallock", "atomic"}
	for _, kind := range kindsUnderTest {
		kind := kind
		b.Run(kind, func(b *testing.B) {
			err := runtime.Run(benchWorldCfg(2), func(w *runtime.World) {
				buf := make([]uint8, size)
				switch kind {
				case "unsafe-unchecked", "unsafe":
					a := lamellar.NewUnsafeArray[uint8](w.Team(), 2*size, lamellar.Block)
					defer a.Drop()
					if w.MyPE() == 0 {
						b.ResetTimer()
						for i := 0; i < b.N; i++ {
							if kind == "unsafe-unchecked" {
								a.PutUnchecked(size, buf)
							} else {
								a.Put(size, buf)
							}
						}
						w.WaitAll()
						b.StopTimer()
					}
				case "locallock":
					a := lamellar.NewLocalLockArray[uint8](w.Team(), 2*size, lamellar.Block)
					defer a.Drop()
					if w.MyPE() == 0 {
						b.ResetTimer()
						for i := 0; i < b.N; i++ {
							a.Put(size, buf)
						}
						w.WaitAll()
						b.StopTimer()
					}
				case "atomic":
					a := lamellar.NewAtomicArray[uint8](w.Team(), 2*size, lamellar.Block)
					defer a.Drop()
					if w.MyPE() == 0 {
						b.ResetTimer()
						for i := 0; i < b.N; i++ {
							a.Put(size, buf)
						}
						w.WaitAll()
						b.StopTimer()
					}
				}
				w.Barrier()
			})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(size)
		})
	}
}

// ----- Fig. 3: Histogram ----------------------------------------------------

func BenchmarkFig3Histogram(b *testing.B) {
	for _, name := range []string{"exstack", "exstack2", "conveyor", "selector", "chapel", "lamellar-am", "lamellar-array"} {
		name := name
		b.Run(name, func(b *testing.B) { runKernelBench(b, 4, kernels.Histogram[name]) })
	}
}

// ----- Fig. 4: IndexGather ---------------------------------------------------

func BenchmarkFig4IndexGather(b *testing.B) {
	for _, name := range []string{"exstack", "exstack2", "conveyor", "selector", "chapel", "lamellar-am", "lamellar-array"} {
		name := name
		b.Run(name, func(b *testing.B) { runKernelBench(b, 4, kernels.IndexGather[name]) })
	}
}

// ----- Fig. 5: Randperm -------------------------------------------------------

func BenchmarkFig5Randperm(b *testing.B) {
	for _, name := range []string{"exstack", "exstack2", "conveyor", "selector", "array-darts", "am-dart", "am-dart-opt", "am-push"} {
		name := name
		b.Run(name, func(b *testing.B) { runKernelBench(b, 4, kernels.Randperm[name]) })
	}
}

// ----- layer micro-benchmarks -------------------------------------------------

func BenchmarkSerdeEncodeDecode(b *testing.B) {
	vals := make([]uint64, 1024)
	for i := range vals {
		vals[i] = uint64(i * 31)
	}
	enc := serde.NewEncoder(16 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Reset()
		serde.EncodeSlice(enc, vals)
		out := serde.DecodeSlice[uint64](serde.NewDecoder(enc.Bytes()))
		if len(out) != 1024 {
			b.Fatal("bad round trip")
		}
	}
	b.SetBytes(8 * 1024)
}

func BenchmarkSchedulerSubmit(b *testing.B) {
	p := scheduler.NewPool(4)
	defer p.Close()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			p.Submit(func() {})
		}
	})
	p.Quiesce()
}

// ----- scheduler executor micro-benchmarks (ISSUE 3) --------------------------

// BenchmarkSchedSubmitExecute measures end-to-end submit+execute
// throughput: parallel producers fire no-op tasks and the iteration does
// not end until every task ran. This is the headline before/after number
// for the lock-free executor (bench_results.txt SCHED section).
func BenchmarkSchedSubmitExecute(b *testing.B) {
	for _, workers := range []int{1, 4, goruntime.NumCPU()} {
		workers := workers
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			p := scheduler.NewPool(workers)
			defer p.Close()
			var ran atomic.Int64
			task := func() { ran.Add(1) }
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					p.Submit(task)
				}
			})
			p.Quiesce()
			if got := ran.Load(); got != int64(b.N) {
				b.Fatalf("ran %d of %d", got, b.N)
			}
		})
	}
}

// BenchmarkSchedSubmitGlobalExecute is the injector path (the Lamellae
// progress engine's entry point) under parallel producers.
func BenchmarkSchedSubmitGlobalExecute(b *testing.B) {
	p := scheduler.NewPool(4)
	defer p.Close()
	var ran atomic.Int64
	task := func() { ran.Add(1) }
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			p.SubmitGlobal(task)
		}
	})
	p.Quiesce()
	if got := ran.Load(); got != int64(b.N) {
		b.Fatalf("ran %d of %d", got, b.N)
	}
}

// BenchmarkSchedPingPong measures single-task wakeup latency: submit one
// task, wait for it, repeat — the worst case for the parking protocol
// (every submit may need to unpark a sleeping worker).
func BenchmarkSchedPingPong(b *testing.B) {
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			p := scheduler.NewPool(workers)
			defer p.Close()
			done := make(chan struct{})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Submit(func() { done <- struct{}{} })
				<-done
			}
		})
	}
}

// BenchmarkSchedSkewedProducer has a single producer feeding 4 workers
// with short CPU-bound tasks: the balance must come from stealing. The
// steals/op metric records how much redistribution happened.
func BenchmarkSchedSkewedProducer(b *testing.B) {
	p := scheduler.NewPool(4)
	defer p.Close()
	var sink atomic.Uint64
	task := func() {
		var x uint64 = 88172645463325252
		for i := 0; i < 64; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		sink.Add(x)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Submit(task)
	}
	p.Quiesce()
	b.StopTimer()
	_, stolen, _, _ := p.Stats()
	b.ReportMetric(float64(stolen)/float64(b.N), "steals/op")
}

// BenchmarkSchedQueueWait runs a burst workload with telemetry live and
// reports the task queue-wait p50/p99 (submit→start latency) from
// HistQueueWait — the acceptance metric for the executor rewrite.
func BenchmarkSchedQueueWait(b *testing.B) {
	c, owner := telemetry.StartGlobal(1, 1<<16)
	if owner {
		defer telemetry.StopGlobal(c)
	}
	p := scheduler.NewPool(4)
	defer p.Close()
	var sink atomic.Uint64
	task := func() {
		var x uint64 = 2463534242
		for i := 0; i < 32; i++ {
			x ^= x << 13
			x ^= x >> 17
			x ^= x << 5
		}
		sink.Add(x)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Submit(task)
	}
	p.Quiesce()
	b.StopTimer()
	h := c.Hist(0, telemetry.HistQueueWait)
	b.ReportMetric(float64(h.Quantile(0.5)), "qwait-p50-ns")
	b.ReportMetric(float64(h.Quantile(0.99)), "qwait-p99-ns")
}

// BenchmarkSchedForkJoin spawns recursive fork-join future trees — the
// Await-helps path under stealing pressure.
func BenchmarkSchedForkJoin(b *testing.B) {
	p := scheduler.NewPool(4)
	defer p.Close()
	var build func(depth int) *scheduler.Future[int]
	build = func(depth int) *scheduler.Future[int] {
		return scheduler.Spawn(p, func() (int, error) {
			if depth == 0 {
				return 1, nil
			}
			l := build(depth - 1)
			r := build(depth - 1)
			lv, _ := l.Await()
			rv, _ := r.Await()
			return lv + rv, nil
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := build(5).MustAwait(); v != 32 {
			b.Fatalf("tree = %d", v)
		}
	}
}

func BenchmarkAMRoundTrip(b *testing.B) {
	err := runtime.Run(benchWorldCfg(2), func(w *runtime.World) {
		if w.MyPE() != 0 {
			return
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := runtime.BlockOn(w, w.ExecAMReturn(1, &echoBench{X: uint64(i)})); err != nil {
				panic(err)
			}
		}
		b.StopTimer()
	})
	if err != nil {
		b.Fatal(err)
	}
}

type echoBench struct{ X uint64 }

func (a *echoBench) MarshalLamellar(e *serde.Encoder)         { e.PutUvarint(a.X) }
func (a *echoBench) UnmarshalLamellar(d *serde.Decoder) error { a.X = d.Uvarint(); return d.Err() }
func (a *echoBench) Exec(ctx *runtime.Context) any            { return a.X }

func init() { runtime.RegisterAM[echoBench]("bench.echo") }

func BenchmarkBarrier(b *testing.B) {
	err := runtime.Run(benchWorldCfg(4), func(w *runtime.World) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Barrier()
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkTeamAllReduce(b *testing.B) {
	err := runtime.Run(benchWorldCfg(8), func(w *runtime.World) {
		for i := 0; i < b.N; i++ {
			if got := w.Team().SumU64(1); got != 8 {
				panic(fmt.Sprintf("sum = %d", got))
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkAtomicArrayBatchAdd(b *testing.B) {
	const tableLen = 8192
	err := runtime.Run(benchWorldCfg(4), func(w *runtime.World) {
		a := lamellar.NewAtomicArray[uint64](w.Team(), tableLen, lamellar.Block)
		defer a.Drop()
		rng := rand.New(rand.NewSource(int64(w.MyPE())))
		idxs := make([]int, 4096)
		for i := range idxs {
			idxs[i] = rng.Intn(tableLen)
		}
		w.Barrier()
		for i := 0; i < b.N; i++ {
			if _, err := runtime.BlockOn(w, a.BatchAdd(idxs, 1)); err != nil {
				panic(err)
			}
		}
		w.Barrier()
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(4096*4, "updates/op")
}

// benchAtomicOps fires single-element fire-and-forget Adds at the remote
// PE and quiesces with WaitAll, measuring the array op path end to end.
// agg toggles the destination aggregation layer (ISSUE 1), isolating its
// effect on wall time and allocations: aggregated ops share one buffered
// AM per flush where the direct path pays an envelope per op.
func benchAtomicOps(b *testing.B, agg, telemetry bool) {
	const tableLen = 8192
	const opsPerIter = 2048
	cfg := runtime.Config{PEs: 2, WorkersPerPE: 2, Lamellae: runtime.LamellaeSim,
		Telemetry: telemetry}
	if !agg {
		cfg.AggBufSize = -1
	}
	err := runtime.Run(cfg, func(w *runtime.World) {
		a := lamellar.NewAtomicArray[uint64](w.Team(), tableLen, lamellar.Block)
		defer a.Drop()
		if w.MyPE() == 0 {
			rng := rand.New(rand.NewSource(7))
			idxs := make([]int, opsPerIter)
			for i := range idxs {
				idxs[i] = tableLen/2 + rng.Intn(tableLen/2) // PE1's half
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, idx := range idxs {
					a.Add(idx, 1)
				}
				w.WaitAll()
			}
			b.StopTimer()
			b.ReportMetric(opsPerIter, "updates/op")
		}
		w.Barrier()
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkAtomicOpsAggregated(b *testing.B) { benchAtomicOps(b, true, false) }

func BenchmarkAtomicOpsDirect(b *testing.B) { benchAtomicOps(b, false, false) }

// BenchmarkAtomicOpsAggregatedTraced is the aggregated path with the
// telemetry subsystem live — rings, histograms, and gauges all active.
// Compare against BenchmarkAtomicOpsAggregated for the enabled-mode cost;
// the disabled-mode delta (Aggregated vs. the PR 1 baseline, both with
// telemetry compiled in but off) is the number bench_results.txt tracks
// against the 2% budget.
func BenchmarkAtomicOpsAggregatedTraced(b *testing.B) { benchAtomicOps(b, true, true) }
