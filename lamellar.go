// Package lamellar is the public API of the Go reproduction of
// "Lamellar: A Rust-based Asynchronous Tasking and PGAS Runtime for High
// Performance Computing" (SC 2024). It re-exports the user-facing surface
// of the stack:
//
//   - Worlds, Teams, SPMD execution (Run / NewWorldBuilder)
//   - Active Messages (RegisterAM, ExecAM*, WaitAll, Barrier, BlockOn)
//   - Darcs — distributed atomic reference counting
//   - Memory regions (Shared / OneSided) — the low-level "unsafe" tier
//   - LamellarArrays (Unsafe / ReadOnly / Atomic / LocalLock) with batch
//     element operations, iterators and reductions — the safe tier
//
// See the examples/ directory for runnable programs mirroring the paper's
// listings, and cmd/lamellar-bench for the evaluation harness.
package lamellar

import (
	"repro/internal/array"
	"repro/internal/darc"
	"repro/internal/fabric"
	"repro/internal/memregion"
	"repro/internal/runtime"
	"repro/internal/scheduler"
	"repro/internal/serde"
)

// ----- runtime ---------------------------------------------------------

// World is one PE's handle on the runtime (LamellarWorld).
type World = runtime.World

// Team is a subset of the world's PEs.
type Team = runtime.Team

// Config parameterizes a world.
type Config = runtime.Config

// Context is the execution environment passed to AM handlers.
type Context = runtime.Context

// ActiveMessage is the interface AM types implement.
type ActiveMessage = runtime.ActiveMessage

// WorldBuilder builds single-PE (SMP) worlds.
type WorldBuilder = runtime.WorldBuilder

// LamellaeKind selects a transport.
type LamellaeKind = runtime.LamellaeKind

// Transport selectors (§III-A).
const (
	// LamellaeSim is the ROFI-like simulated-fabric transport.
	LamellaeSim = runtime.LamellaeSim
	// LamellaeShmem is the shared-memory transport.
	LamellaeShmem = runtime.LamellaeShmem
	// LamellaeSMP is the single-PE transport.
	LamellaeSMP = runtime.LamellaeSMP
	// LamellaeTCP moves batches over real loopback TCP sockets.
	LamellaeTCP = runtime.LamellaeTCP
)

// Run launches an SPMD world: fn runs once per PE.
func Run(cfg Config, fn func(w *World)) error { return runtime.Run(cfg, fn) }

// NewWorldBuilder starts a builder for a single-PE world (Listing 1's
// LamellarWorldBuilder::new()).
func NewWorldBuilder() *WorldBuilder { return runtime.NewWorldBuilder() }

// RegisterAM registers an AM type with a hand-written codec (the stand-in
// for the #[AmData]/#[am] procedural macros).
func RegisterAM[T any](name string) { runtime.RegisterAM[T](name) }

// RegisterAMGob registers an AM type using the gob fallback codec.
func RegisterAMGob[T any](name string) { runtime.RegisterAMGob[T](name) }

// BlockOn drives the executor until the future resolves (world.block_on).
func BlockOn[T any](w *World, f *Future[T]) (T, error) { return runtime.BlockOn(w, f) }

// ExecTyped launches an AM expecting a return value of type R.
func ExecTyped[R any](w *World, pe int, am ActiveMessage) *Future[R] {
	return runtime.ExecTyped[R](w, pe, am)
}

// ----- futures ---------------------------------------------------------

// Future is the awaitable handle returned by asynchronous operations.
type Future[T any] = scheduler.Future[T]

// Spawn submits fn to the PE's pool and returns a Future for its result.
func Spawn[T any](w *World, fn func() (T, error)) *Future[T] {
	return scheduler.Spawn(w.Pool(), fn)
}

// ----- serialization ---------------------------------------------------

// Encoder serializes AM payloads.
type Encoder = serde.Encoder

// Decoder deserializes AM payloads.
type Decoder = serde.Decoder

// Number is the element-type constraint of arrays and regions.
type Number = serde.Number

// ----- darc ------------------------------------------------------------

// Darc is a distributed atomically reference counted pointer.
type Darc[T any] = darc.Darc[T]

// NewDarc collectively creates a Darc on team (§III-E).
func NewDarc[T any](team *Team, item T, finalizer ...func(T)) *Darc[T] {
	return darc.New(team, item, finalizer...)
}

// UnmarshalDarc reads a Darc handle inside an AM codec.
func UnmarshalDarc[T any](dec *Decoder) (*Darc[T], error) { return darc.UnmarshalDarc[T](dec) }

// ----- memory regions (low-level, "unsafe" tier) ------------------------

// SharedMemoryRegion is a symmetric RDMA region (§III-D1).
type SharedMemoryRegion[T Number] = memregion.Shared[T]

// OneSidedMemoryRegion is a single-PE RDMA region (§III-D2).
type OneSidedMemoryRegion[T Number] = memregion.OneSided[T]

// NewSharedMemoryRegion collectively allocates elems elements per PE.
// Unsafe tier: no protection against concurrent remote access.
func NewSharedMemoryRegion[T Number](team *Team, elems int) *SharedMemoryRegion[T] {
	w := team.World()
	reg := team.CollectiveKind("lamellar.sharedRegion", func() any {
		return fabric.AllocTyped[T](w.Provider(), elems)
	}).(*fabric.TypedRegion[T])
	return memregion.NewShared(w.Provider(), reg, w.MyPE())
}

// NewOneSidedMemoryRegion allocates elems elements owned by the caller.
func NewOneSidedMemoryRegion[T Number](w *World, elems int) *OneSidedMemoryRegion[T] {
	return memregion.NewOneSided[T](w.Provider(), w.MyPE(), elems)
}

// ----- arrays (safe tier) ------------------------------------------------

// Distribution selects Block or Cyclic layout.
type Distribution = array.Distribution

// Data layouts.
const (
	// Block gives each PE one contiguous chunk.
	Block = array.Block
	// Cyclic deals elements round-robin.
	Cyclic = array.Cyclic
)

// Op identifies an element-wise array operation.
type Op = array.Op

// UnsafeArray has no access control (runtime-internal tier).
type UnsafeArray[T Number] = array.UnsafeArray[T]

// ReadOnlyArray permits no writes.
type ReadOnlyArray[T Number] = array.ReadOnlyArray[T]

// AtomicArray guards every element with an atomic.
type AtomicArray[T Number] = array.AtomicArray[T]

// LocalLockArray guards each PE's chunk with one RwLock.
type LocalLockArray[T Number] = array.LocalLockArray[T]

// NewAtomicArray collectively constructs an AtomicArray (Listing 2).
func NewAtomicArray[T Number](team *Team, glen int, dist Distribution) *AtomicArray[T] {
	return array.NewAtomicArray[T](team, glen, dist)
}

// NewUnsafeArray collectively constructs an UnsafeArray.
func NewUnsafeArray[T Number](team *Team, glen int, dist Distribution) *UnsafeArray[T] {
	return array.NewUnsafeArray[T](team, glen, dist)
}

// NewReadOnlyArray collectively constructs a ReadOnlyArray.
func NewReadOnlyArray[T Number](team *Team, glen int, dist Distribution) *ReadOnlyArray[T] {
	return array.NewReadOnlyArray[T](team, glen, dist)
}

// NewLocalLockArray collectively constructs a LocalLockArray.
func NewLocalLockArray[T Number](team *Team, glen int, dist Distribution) *LocalLockArray[T] {
	return array.NewLocalLockArray[T](team, glen, dist)
}

// Iter is a lazy parallel iterator chain (DistIter / LocalIter).
type Iter[T any] = array.Iter[T]

// Indexed pairs an element with its global index (Enumerate).
type Indexed[T any] = array.Indexed[T]

// MapIter transforms iterator elements.
func MapIter[T, U any](it *Iter[T], f func(T) U) *Iter[U] { return array.Map(it, f) }

// FilterMapIter transforms and filters in one pass.
func FilterMapIter[T, U any](it *Iter[T], f func(T) (U, bool)) *Iter[U] {
	return array.FilterMap(it, f)
}

// Enumerate pairs elements with their indices.
func Enumerate[T any](it *Iter[T]) *Iter[Indexed[T]] { return array.Enumerate(it) }

// Element-wise operation codes for BatchOp* calls (§III-F3).
const (
	OpAdd   = array.OpAdd
	OpSub   = array.OpSub
	OpMul   = array.OpMul
	OpDiv   = array.OpDiv
	OpRem   = array.OpRem
	OpAnd   = array.OpAnd
	OpOr    = array.OpOr
	OpXor   = array.OpXor
	OpShl   = array.OpShl
	OpShr   = array.OpShr
	OpStore = array.OpStore
	OpLoad  = array.OpLoad
	OpSwap  = array.OpSwap
	OpCAS   = array.OpCAS
)

// CASResult reports a compare-exchange outcome.
type CASResult[T Number] = array.CASResult[T]

// ZipIter pairs two parallel iterators position-wise.
func ZipIter[A, B any](a *Iter[A], b *Iter[B]) *Iter[array.Pair[A, B]] { return array.Zip(a, b) }

// ChunksIter groups consecutive iterator elements into buffers of size n.
func ChunksIter[T any](it *Iter[T], n int) *Iter[[]T] { return array.Chunks(it, n) }

// CollectArray collectively gathers a DistIter's surviving elements into a
// fresh distributed ReadOnlyArray (the paper's collect).
func CollectArray[T Number](it *Iter[T], anchor interface{ DistIter() *Iter[T] }, dist Distribution) *ReadOnlyArray[T] {
	// anchor must be one of the four array kinds; dispatch through the
	// internal interface.
	type teamOwner interface{ DistIter() *Iter[T] }
	_ = anchor.(teamOwner)
	switch a := anchor.(type) {
	case *UnsafeArray[T]:
		return array.CollectArray(it, a, dist)
	case *ReadOnlyArray[T]:
		return array.CollectArray(it, a, dist)
	case *AtomicArray[T]:
		return array.CollectArray(it, a, dist)
	case *LocalLockArray[T]:
		return array.CollectArray(it, a, dist)
	default:
		panic("lamellar: CollectArray anchor must be a LamellarArray")
	}
}
