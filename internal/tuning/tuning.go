// Package tuning closes the loop from the telemetry layer back into the
// runtime's aggregation and reliable-wire knobs. The ABL1/ABL2 sweeps in
// bench_results.txt show the optimal aggregation threshold moves with the
// workload (and "A Scalable Actor-based Programming System for PGAS
// Runtimes" reports runtime-tuned buffers beating hand-tuned static
// ones); instead of hand-picking a static point, a small controller
// samples flush-reason counters, batch-age/occupancy histograms, and wire
// retry rates, and nudges the live knobs toward the workload's optimum.
//
// The package separates the pure decision function (Decide — unit-testable
// with synthetic samples) from the live knob cells (Atomics — lock-free
// loads on the hot paths) and the mode plumbing (LAMELLAR_TUNE=off|
// observe|on). The sampling driver lives in internal/runtime, which owns
// the counters being sampled.
package tuning

import (
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Mode selects how the controller runs.
type Mode uint8

const (
	// ModeOff disables the controller entirely: knobs keep their
	// configured values and behavior is bit-identical to a static config.
	ModeOff Mode = iota
	// ModeObserve runs the controller and emits its decisions as
	// telemetry events without applying them — a dry run for validating
	// the policy against a live workload.
	ModeObserve
	// ModeOn applies decisions to the live knobs.
	ModeOn
)

// ParseMode maps a LAMELLAR_TUNE value to a Mode (default off).
func ParseMode(s string) Mode {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "on", "1", "true":
		return ModeOn
	case "observe":
		return ModeObserve
	}
	return ModeOff
}

func (m Mode) String() string {
	switch m {
	case ModeOn:
		return "on"
	case ModeObserve:
		return "observe"
	}
	return "off"
}

// Knob identifies one tuned parameter (telemetry EvTuneDecision.Sub).
type Knob uint8

const (
	// KnobAggThresholdBytes is the wire-level destination-queue flush
	// threshold (Config.AggThresholdBytes).
	KnobAggThresholdBytes Knob = iota
	// KnobAggBufSize is the array layer's per-destination aggregation
	// buffer byte threshold (Config.AggBufSize).
	KnobAggBufSize
	// KnobAggFlushOps is the array layer's op-count flush cap
	// (Config.AggFlushOps).
	KnobAggFlushOps
	// KnobRetryFloor is the reliable wire layer's initial retransmission
	// timeout (Config.RetryInterval).
	KnobRetryFloor
	// KnobWireWindowFrames caps the per-stream AIMD send window in frames
	// (Config.WireWindowFrames).
	KnobWireWindowFrames
	// KnobWireWindowBytes caps the per-stream in-flight byte budget at
	// full frame window (Config.WireWindowBytes).
	KnobWireWindowBytes

	// NumKnobs is the number of tuned parameters.
	NumKnobs = int(KnobWireWindowBytes) + 1
)

var knobNames = [NumKnobs]string{"agg_threshold_bytes", "agg_buf_size", "agg_flush_ops", "retry_floor",
	"wire_window_frames", "wire_window_bytes"}

func (k Knob) String() string {
	if int(k) < NumKnobs {
		return knobNames[k]
	}
	return "unknown"
}

// Knobs is one coherent setting of every tuned parameter.
type Knobs struct {
	AggThresholdBytes int
	AggBufSize        int
	AggFlushOps       int
	RetryFloor        time.Duration
	WireWindowFrames  int
	WireWindowBytes   int
}

// Limits clamp every decision; the controller can never push a knob
// outside them regardless of what the samples say.
type Limits struct {
	MinAggThresholdBytes, MaxAggThresholdBytes int
	MinAggBufSize, MaxAggBufSize               int
	MinAggFlushOps, MaxAggFlushOps             int
	MinRetryFloor, MaxRetryFloor               time.Duration
	MinWireWindowFrames, MaxWireWindowFrames   int
	MinWireWindowBytes, MaxWireWindowBytes     int
}

// DefaultLimits derives clamp ranges from the configured baseline: the
// aggregation knobs may roam the same span the ABL1/ABL2 sweeps cover,
// and the retry floor may rise to a quarter of the backoff cap but never
// fall below its configured value (retransmitting faster than configured
// was never sanctioned by the user).
func DefaultLimits(base Knobs, backoffMax time.Duration) Limits {
	lim := Limits{
		MinAggThresholdBytes: 4 << 10, MaxAggThresholdBytes: 4 << 20,
		MinAggBufSize: 4 << 10, MaxAggBufSize: 4 << 20,
		MinAggFlushOps: 256, MaxAggFlushOps: 1 << 16,
		MinRetryFloor:       base.RetryFloor,
		MaxRetryFloor:       backoffMax / 4,
		MinWireWindowFrames: 32, MaxWireWindowFrames: 4096,
		MinWireWindowBytes: 256 << 10, MaxWireWindowBytes: 64 << 20,
	}
	if lim.MaxRetryFloor < lim.MinRetryFloor {
		lim.MaxRetryFloor = lim.MinRetryFloor
	}
	return lim
}

// Sample is one observation window of the signals the controller reads:
// flush-reason deltas at both aggregation layers, wire retry counts, and
// (when a telemetry session is live) the batch-age and AM round-trip
// histogram digests.
type Sample struct {
	// Elapsed is the window length.
	Elapsed time.Duration
	// WireBatches and WireReasons count wire batches flushed from the
	// destination queues during the window, by flush reason; WireBytes is
	// the bytes those batches carried. They drive KnobAggThresholdBytes.
	WireBatches uint64
	WireBytes   uint64
	WireReasons [telemetry.NumFlushReasons]uint64
	// AggBatches/AggOps/AggBytes/AggReasons count array-layer aggregation
	// buffer dispatches, the element ops they coalesced, and their payload
	// bytes. They drive KnobAggBufSize and KnobAggFlushOps.
	AggBatches uint64
	AggOps     uint64
	AggBytes   uint64
	AggReasons [telemetry.NumFlushReasons]uint64
	// Retries counts wire retransmissions; FramesSent counts data frames
	// put on the wire. They drive KnobRetryFloor and the window caps.
	Retries    uint64
	FramesSent uint64
	// WireParked counts frames the send window parked on a pending queue
	// during the window — the signal that the window cap, not the
	// workload, is the injection bottleneck. Drives KnobWireWindowFrames/
	// KnobWireWindowBytes.
	WireParked uint64
	// FlushAge digests the aggregation open→flush age histogram
	// (zero-Count when telemetry is off; the reason counters alone still
	// steer the byte/op knobs).
	FlushAge telemetry.HistSummary
	// RoundTrip digests the AM round-trip histogram; it floors how low
	// the retry floor may decay (retransmitting inside a healthy round
	// trip only duplicates frames).
	RoundTrip telemetry.HistSummary
}

// Decision is Decide's output: the next knob setting plus which knobs
// moved (for telemetry emission).
type Decision struct {
	Knobs   Knobs
	Changed [NumKnobs]bool
}

// Growth factors: multiplicative increase under saturation, gentler decay
// when latency-bound, mirroring AIMD-style congestion control.
const (
	growNum, growDen     = 5, 4
	shrinkNum, shrinkDen = 4, 5
)

// pressure classifies one reason vector into the two signals that carry
// information about the thresholds: capacity flushes (size/ops/run — the
// buffer filled before anything else happened) and timer flushes (the
// background flusher found a buffer idling below threshold). Drain
// flushes are deliberately excluded from both: they are user-forced
// (WaitAll, barriers, explicit flushes) and say nothing about whether
// the threshold is too small or too large — a WaitAll-heavy kernel
// drains partial buffers constantly regardless of the knob setting.
func pressure(reasons [telemetry.NumFlushReasons]uint64) (capacity, timer, total uint64) {
	capacity = reasons[telemetry.FlushSize] + reasons[telemetry.FlushOps] + reasons[telemetry.FlushRun]
	timer = reasons[telemetry.FlushTimer]
	for _, n := range reasons {
		total += n
	}
	return capacity, timer, total
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampDur(v, lo, hi time.Duration) time.Duration {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// stepInt applies one multiplicative step and the clamp.
func stepInt(v int, num, den, lo, hi int) int {
	return clampInt(v*num/den, lo, hi)
}

// shrinkInt applies one shrink step but never lands below `floor` (the
// headroom over the observed mean batch size): shrinking a threshold the
// workload isn't hitting saves buffer memory, but pushing it below the
// actual fill level converts latency-bound flushes into capacity-bound
// ones — exactly the small-buffer regime where the ABL1/ABL2 sweeps show
// throughput collapsing. A floor at or above the current value means the
// knob is already as tight as the traffic allows: no change.
func shrinkInt(v, floor, lo, hi int) int {
	nv := stepInt(v, shrinkNum, shrinkDen, lo, hi)
	if nv < floor {
		nv = clampInt(floor, lo, v)
	}
	return nv
}

// meanPerBatch guards the observed-mean division for shrink floors.
func meanPerBatch(total, batches uint64) int {
	if batches == 0 {
		return 0
	}
	return int(total / batches)
}

// Decide is the pure control policy — one step from a sample and the
// current knobs to the next knobs, always inside lim:
//
//   - Saturation (≥ half the flushes at a layer forced by its size/op
//     thresholds): the workload fills buffers faster than the flush
//     interval, so grow that layer's knobs ×5/4 — more coalescing per
//     wire batch, the regime where the ABL sweeps show throughput rising
//     with buffer size.
//   - Latency-bound (≤ 10% capacity flushes AND a timer-flush majority
//     while ops are flowing): buffers never fill and every buffered op
//     waits for the background flusher, so shrink ×4/5 — the observed
//     flush age falls toward the actual fill rate. Drain flushes never
//     trigger shrink (they are user-forced and threshold-agnostic), and
//     shrink is floored at 4× the observed mean batch size: below that
//     the threshold would start binding and force the small-batch regime
//     the sweeps show collapsing throughput.
//   - Wire health: a retransmission rate over 1% raises the retry floor
//     ×3/2 (pace retries on a lossy/congested link); a clean window
//     decays it ×4/5 back toward the configured floor. The floor never
//     drops below twice the observed AM round-trip p90.
//
// Windows with no traffic change nothing. Decide never mutates state;
// callers own applying (or merely observing) the result.
func Decide(s Sample, k Knobs, lim Limits) Decision {
	d := Decision{Knobs: k}

	// Wire-level destination queues → AggThresholdBytes.
	if capa, timer, total := pressure(s.WireReasons); total > 0 {
		switch {
		case capa*2 >= total:
			d.Knobs.AggThresholdBytes = stepInt(k.AggThresholdBytes, growNum, growDen,
				lim.MinAggThresholdBytes, lim.MaxAggThresholdBytes)
		case capa*10 <= total && timer*2 >= total:
			d.Knobs.AggThresholdBytes = shrinkInt(k.AggThresholdBytes,
				4*meanPerBatch(s.WireBytes, s.WireBatches),
				lim.MinAggThresholdBytes, lim.MaxAggThresholdBytes)
		}
		d.Changed[KnobAggThresholdBytes] = d.Knobs.AggThresholdBytes != k.AggThresholdBytes
	}

	// Array-layer aggregation buffers → AggBufSize / AggFlushOps.
	if capa, timer, total := pressure(s.AggReasons); total > 0 && s.AggOps > 0 {
		switch {
		case capa*2 >= total:
			d.Knobs.AggBufSize = stepInt(k.AggBufSize, growNum, growDen,
				lim.MinAggBufSize, lim.MaxAggBufSize)
			d.Knobs.AggFlushOps = stepInt(k.AggFlushOps, growNum, growDen,
				lim.MinAggFlushOps, lim.MaxAggFlushOps)
		case capa*10 <= total && timer*2 >= total:
			d.Knobs.AggBufSize = shrinkInt(k.AggBufSize,
				4*meanPerBatch(s.AggBytes, s.AggBatches),
				lim.MinAggBufSize, lim.MaxAggBufSize)
			d.Knobs.AggFlushOps = shrinkInt(k.AggFlushOps,
				4*meanPerBatch(s.AggOps, s.AggBatches),
				lim.MinAggFlushOps, lim.MaxAggFlushOps)
		}
		d.Changed[KnobAggBufSize] = d.Knobs.AggBufSize != k.AggBufSize
		d.Changed[KnobAggFlushOps] = d.Knobs.AggFlushOps != k.AggFlushOps
	}

	// Reliable-wire retry floor.
	if s.FramesSent > 0 {
		floor := k.RetryFloor
		if s.Retries*100 > s.FramesSent {
			floor = clampDur(floor*3/2, lim.MinRetryFloor, lim.MaxRetryFloor)
		} else if s.Retries == 0 {
			floor = clampDur(floor*4/5, lim.MinRetryFloor, lim.MaxRetryFloor)
		}
		// Never retransmit inside a healthy round trip.
		if rtt := s.RoundTrip.P90; rtt > 0 && floor < 2*rtt {
			floor = clampDur(2*rtt, lim.MinRetryFloor, lim.MaxRetryFloor)
		}
		d.Knobs.RetryFloor = floor
		d.Changed[KnobRetryFloor] = floor != k.RetryFloor
	}

	// Wire send-window caps. The per-stream AIMD machinery handles
	// fast-timescale congestion on its own; the tuner moves the *caps*
	// slowly: a lossy window (>5% retransmitted) lowers the ceiling the
	// windows may ramp back to, while a clean window in which the cap
	// actually parked frames raises it — the stream was window-limited,
	// not network-limited. Windowing disabled (zero knob) stays disabled.
	if s.FramesSent > 0 && k.WireWindowFrames > 0 {
		switch {
		case s.Retries*100 > s.FramesSent*5:
			d.Knobs.WireWindowFrames = stepInt(k.WireWindowFrames, shrinkNum, shrinkDen,
				lim.MinWireWindowFrames, lim.MaxWireWindowFrames)
			d.Knobs.WireWindowBytes = stepInt(k.WireWindowBytes, shrinkNum, shrinkDen,
				lim.MinWireWindowBytes, lim.MaxWireWindowBytes)
		case s.Retries == 0 && s.WireParked > 0:
			d.Knobs.WireWindowFrames = stepInt(k.WireWindowFrames, growNum, growDen,
				lim.MinWireWindowFrames, lim.MaxWireWindowFrames)
			d.Knobs.WireWindowBytes = stepInt(k.WireWindowBytes, growNum, growDen,
				lim.MinWireWindowBytes, lim.MaxWireWindowBytes)
		}
		d.Changed[KnobWireWindowFrames] = d.Knobs.WireWindowFrames != k.WireWindowFrames
		d.Changed[KnobWireWindowBytes] = d.Knobs.WireWindowBytes != k.WireWindowBytes
	}
	return d
}

// Atomics is the live, shared set of knob cells. Hot paths (per-envelope
// enqueue, per-op append, the retry sweep) read them with single atomic
// loads; the controller stores whole Knobs settings. With the controller
// off the cells simply hold the configured values forever, making off
// mode bit-identical to a static config.
type Atomics struct {
	AggThresholdBytes atomic.Int64
	AggBufSize        atomic.Int64
	AggFlushOps       atomic.Int64
	RetryFloorNs      atomic.Int64
	WireWindowFrames  atomic.Int64
	WireWindowBytes   atomic.Int64
}

// Store publishes k to the live cells.
func (a *Atomics) Store(k Knobs) {
	a.AggThresholdBytes.Store(int64(k.AggThresholdBytes))
	a.AggBufSize.Store(int64(k.AggBufSize))
	a.AggFlushOps.Store(int64(k.AggFlushOps))
	a.RetryFloorNs.Store(int64(k.RetryFloor))
	a.WireWindowFrames.Store(int64(k.WireWindowFrames))
	a.WireWindowBytes.Store(int64(k.WireWindowBytes))
}

// Load snapshots the live cells.
func (a *Atomics) Load() Knobs {
	return Knobs{
		AggThresholdBytes: int(a.AggThresholdBytes.Load()),
		AggBufSize:        int(a.AggBufSize.Load()),
		AggFlushOps:       int(a.AggFlushOps.Load()),
		RetryFloor:        time.Duration(a.RetryFloorNs.Load()),
		WireWindowFrames:  int(a.WireWindowFrames.Load()),
		WireWindowBytes:   int(a.WireWindowBytes.Load()),
	}
}
