package tuning

import (
	"testing"
	"time"

	"repro/internal/telemetry"
)

func baseKnobs() Knobs {
	return Knobs{
		AggThresholdBytes: 100_000,
		AggBufSize:        128 << 10,
		AggFlushOps:       8192,
		RetryFloor:        20 * time.Millisecond,
	}
}

func baseLimits() Limits { return DefaultLimits(baseKnobs(), 500*time.Millisecond) }

// Bursty load: most flushes forced by the size/op thresholds means the
// buffers fill before the flush timer — the controller must grow them.
func TestBurstyLoadGrowsBuffers(t *testing.T) {
	k, lim := baseKnobs(), baseLimits()
	var s Sample
	s.WireBatches = 100
	s.WireReasons[telemetry.FlushSize] = 80
	s.WireReasons[telemetry.FlushDrain] = 20
	s.AggBatches, s.AggOps = 100, 50_000
	s.AggReasons[telemetry.FlushOps] = 70
	s.AggReasons[telemetry.FlushTimer] = 30

	d := Decide(s, k, lim)
	if d.Knobs.AggThresholdBytes <= k.AggThresholdBytes {
		t.Errorf("AggThresholdBytes %d did not grow from %d", d.Knobs.AggThresholdBytes, k.AggThresholdBytes)
	}
	if d.Knobs.AggBufSize <= k.AggBufSize {
		t.Errorf("AggBufSize %d did not grow from %d", d.Knobs.AggBufSize, k.AggBufSize)
	}
	if d.Knobs.AggFlushOps <= k.AggFlushOps {
		t.Errorf("AggFlushOps %d did not grow from %d", d.Knobs.AggFlushOps, k.AggFlushOps)
	}
	if !d.Changed[KnobAggThresholdBytes] || !d.Changed[KnobAggBufSize] || !d.Changed[KnobAggFlushOps] {
		t.Errorf("Changed flags = %v, want aggregation knobs marked", d.Changed)
	}
}

// Steady sparse load: ~all flushes come from the background flush timer
// while ops are flowing, so buffers never fill — shrink them so the
// observed flush age tracks the actual fill rate.
func TestSteadyLoadShrinksBuffers(t *testing.T) {
	k, lim := baseKnobs(), baseLimits()
	var s Sample
	s.WireBatches = 100
	s.WireReasons[telemetry.FlushTimer] = 90
	s.WireReasons[telemetry.FlushDrain] = 10
	s.AggBatches, s.AggOps = 100, 2_000
	s.AggReasons[telemetry.FlushTimer] = 95
	s.AggReasons[telemetry.FlushDrain] = 5

	d := Decide(s, k, lim)
	if d.Knobs.AggThresholdBytes >= k.AggThresholdBytes {
		t.Errorf("AggThresholdBytes %d did not shrink from %d", d.Knobs.AggThresholdBytes, k.AggThresholdBytes)
	}
	if d.Knobs.AggBufSize >= k.AggBufSize {
		t.Errorf("AggBufSize %d did not shrink from %d", d.Knobs.AggBufSize, k.AggBufSize)
	}
	if d.Knobs.AggFlushOps >= k.AggFlushOps {
		t.Errorf("AggFlushOps %d did not shrink from %d", d.Knobs.AggFlushOps, k.AggFlushOps)
	}
}

// Drain-dominated windows (WaitAll-heavy kernels force-flush partial
// buffers constantly) carry no information about the thresholds and must
// not shrink them.
func TestDrainFlushesDoNotShrink(t *testing.T) {
	k, lim := baseKnobs(), baseLimits()
	var s Sample
	s.WireBatches = 100
	s.WireReasons[telemetry.FlushDrain] = 95
	s.WireReasons[telemetry.FlushTimer] = 5
	s.AggBatches, s.AggOps = 100, 50_000
	s.AggReasons[telemetry.FlushDrain] = 100

	d := Decide(s, k, lim)
	if d.Knobs != k {
		t.Errorf("drain-dominated window moved knobs: %+v -> %+v", k, d.Knobs)
	}
}

// A latency-bound window whose batches are already large must not shrink
// the thresholds into the small-batch regime: shrink floors at 4x the
// observed mean batch size, and a floor at/above the current knob leaves
// it untouched.
func TestShrinkBoundedByObservedBatchSize(t *testing.T) {
	k, lim := baseKnobs(), baseLimits()
	var s Sample
	s.WireBatches = 100
	s.WireBytes = 100 * 30_000 // mean 30 KB -> floor 120 KB > current 100 KB
	s.WireReasons[telemetry.FlushTimer] = 100
	s.AggBatches, s.AggOps = 100, 100*4000
	s.AggBytes = 100 * 40_000 // mean 40 KB -> floor 160 KB > current 128 KB
	s.AggReasons[telemetry.FlushTimer] = 100

	d := Decide(s, k, lim)
	if d.Knobs.AggThresholdBytes != k.AggThresholdBytes {
		t.Errorf("AggThresholdBytes %d moved despite floor above current %d", d.Knobs.AggThresholdBytes, k.AggThresholdBytes)
	}
	if d.Knobs.AggBufSize != k.AggBufSize {
		t.Errorf("AggBufSize %d moved despite floor above current %d", d.Knobs.AggBufSize, k.AggBufSize)
	}
	// mean 4000 ops -> floor 16000 > 8192: op cap pinned too.
	if d.Knobs.AggFlushOps != k.AggFlushOps {
		t.Errorf("AggFlushOps %d moved despite floor above current %d", d.Knobs.AggFlushOps, k.AggFlushOps)
	}

	// Smaller batches shrink, but only down to their floor, not the step.
	s.WireBytes = 100 * 25_000 // floor 100 KB exactly = current: unchanged
	d = Decide(s, k, lim)
	if d.Knobs.AggThresholdBytes != 100_000 {
		t.Errorf("AggThresholdBytes = %d, want held at floor 100000", d.Knobs.AggThresholdBytes)
	}
	s.WireBytes = 100 * 21_000 // floor 84 KB inside the step (80 KB)
	d = Decide(s, k, lim)
	if d.Knobs.AggThresholdBytes != 84_000 {
		t.Errorf("AggThresholdBytes = %d, want shrink stopped at floor 84000", d.Knobs.AggThresholdBytes)
	}
}

// A window with no traffic must change nothing.
func TestIdleWindowChangesNothing(t *testing.T) {
	k, lim := baseKnobs(), baseLimits()
	d := Decide(Sample{Elapsed: time.Second}, k, lim)
	if d.Knobs != k {
		t.Errorf("idle window moved knobs: %+v -> %+v", k, d.Knobs)
	}
	for i, c := range d.Changed {
		if c {
			t.Errorf("idle window marked knob %v changed", Knob(i))
		}
	}
}

// Clamps: no matter how many saturated (or starved) windows arrive in a
// row, every knob stays inside its limits.
func TestClampsRespected(t *testing.T) {
	lim := baseLimits()
	k := baseKnobs()
	var grow Sample
	grow.WireReasons[telemetry.FlushSize] = 100
	grow.AggOps = 1_000_000
	grow.AggReasons[telemetry.FlushSize] = 100
	grow.FramesSent, grow.Retries = 100, 50 // lossy: retry floor rises
	for i := 0; i < 100; i++ {
		k = Decide(grow, k, lim).Knobs
	}
	if k.AggThresholdBytes != lim.MaxAggThresholdBytes {
		t.Errorf("AggThresholdBytes = %d, want pinned at max %d", k.AggThresholdBytes, lim.MaxAggThresholdBytes)
	}
	if k.AggBufSize != lim.MaxAggBufSize || k.AggFlushOps != lim.MaxAggFlushOps {
		t.Errorf("agg knobs %d/%d not pinned at max %d/%d", k.AggBufSize, k.AggFlushOps, lim.MaxAggBufSize, lim.MaxAggFlushOps)
	}
	if k.RetryFloor != lim.MaxRetryFloor {
		t.Errorf("RetryFloor = %v, want pinned at max %v", k.RetryFloor, lim.MaxRetryFloor)
	}

	var shrink Sample
	shrink.WireReasons[telemetry.FlushTimer] = 100
	shrink.AggOps = 10
	shrink.AggReasons[telemetry.FlushTimer] = 100
	shrink.FramesSent = 100 // clean window: retry floor decays
	for i := 0; i < 100; i++ {
		k = Decide(shrink, k, lim).Knobs
	}
	if k.AggThresholdBytes != lim.MinAggThresholdBytes {
		t.Errorf("AggThresholdBytes = %d, want pinned at min %d", k.AggThresholdBytes, lim.MinAggThresholdBytes)
	}
	if k.AggBufSize != lim.MinAggBufSize || k.AggFlushOps != lim.MinAggFlushOps {
		t.Errorf("agg knobs %d/%d not pinned at min %d/%d", k.AggBufSize, k.AggFlushOps, lim.MinAggBufSize, lim.MinAggFlushOps)
	}
	if k.RetryFloor != lim.MinRetryFloor {
		t.Errorf("RetryFloor = %v, want decayed to min %v", k.RetryFloor, lim.MinRetryFloor)
	}
}

// The retry floor must never drop below twice the observed AM round-trip
// p90 — retransmitting inside a healthy round trip only duplicates
// frames.
func TestRetryFloorRespectsRoundTrip(t *testing.T) {
	k, lim := baseKnobs(), baseLimits()
	var s Sample
	s.FramesSent = 1000 // clean: would decay toward MinRetryFloor
	s.RoundTrip = telemetry.HistSummary{Count: 1000, P90: 40 * time.Millisecond}
	d := Decide(s, k, lim)
	if want := 80 * time.Millisecond; d.Knobs.RetryFloor != want {
		t.Errorf("RetryFloor = %v, want 2×p90 = %v", d.Knobs.RetryFloor, want)
	}
}

// A lossy window (>1% retransmit rate) raises the floor; a clean one
// decays it back toward the configured value.
func TestRetryFloorTracksLossRate(t *testing.T) {
	k, lim := baseKnobs(), baseLimits()
	var lossy Sample
	lossy.FramesSent, lossy.Retries = 1000, 100
	d := Decide(lossy, k, lim)
	if d.Knobs.RetryFloor <= k.RetryFloor {
		t.Errorf("lossy window: RetryFloor %v did not rise from %v", d.Knobs.RetryFloor, k.RetryFloor)
	}
	var clean Sample
	clean.FramesSent = 1000
	d2 := Decide(clean, d.Knobs, lim)
	if d2.Knobs.RetryFloor >= d.Knobs.RetryFloor {
		t.Errorf("clean window: RetryFloor %v did not decay from %v", d2.Knobs.RetryFloor, d.Knobs.RetryFloor)
	}
	if d2.Knobs.RetryFloor < lim.MinRetryFloor {
		t.Errorf("RetryFloor %v decayed below configured floor %v", d2.Knobs.RetryFloor, lim.MinRetryFloor)
	}
}

// Off mode: the knob cells are written once from the config and never
// touched again, so hot-path loads are bit-identical to a static config.
func TestOffModeBitIdentical(t *testing.T) {
	if ParseMode("off") != ModeOff || ParseMode("") != ModeOff || ParseMode("garbage") != ModeOff {
		t.Error("ParseMode must default to off")
	}
	if ParseMode("on") != ModeOn || ParseMode("1") != ModeOn || ParseMode("observe") != ModeObserve {
		t.Error("ParseMode on/observe mapping broken")
	}
	var a Atomics
	base := baseKnobs()
	a.Store(base)
	if got := a.Load(); got != base {
		t.Fatalf("Atomics round-trip: got %+v, want %+v", got, base)
	}
}

// DefaultLimits must keep MinRetryFloor at the configured interval (the
// controller may never retransmit faster than the user sanctioned) and
// cope with a backoff cap below the configured floor.
func TestDefaultLimits(t *testing.T) {
	base := baseKnobs()
	lim := DefaultLimits(base, 500*time.Millisecond)
	if lim.MinRetryFloor != base.RetryFloor {
		t.Errorf("MinRetryFloor = %v, want %v", lim.MinRetryFloor, base.RetryFloor)
	}
	if lim.MaxRetryFloor != 125*time.Millisecond {
		t.Errorf("MaxRetryFloor = %v, want backoffMax/4", lim.MaxRetryFloor)
	}
	tight := DefaultLimits(base, 10*time.Millisecond)
	if tight.MaxRetryFloor < tight.MinRetryFloor {
		t.Errorf("degenerate cap: max %v < min %v", tight.MaxRetryFloor, tight.MinRetryFloor)
	}
}

func wireKnobs() Knobs {
	k := baseKnobs()
	k.WireWindowFrames = 256
	k.WireWindowBytes = 4 << 20
	return k
}

// A clean window in which the cap parked frames means the stream was
// window-limited, not network-limited: raise both caps.
func TestWireWindowGrowsWhenParkedAndClean(t *testing.T) {
	k := wireKnobs()
	lim := DefaultLimits(k, 500*time.Millisecond)
	var s Sample
	s.FramesSent, s.Retries, s.WireParked = 1000, 0, 50
	d := Decide(s, k, lim)
	if d.Knobs.WireWindowFrames <= k.WireWindowFrames {
		t.Errorf("WireWindowFrames %d did not grow from %d", d.Knobs.WireWindowFrames, k.WireWindowFrames)
	}
	if d.Knobs.WireWindowBytes <= k.WireWindowBytes {
		t.Errorf("WireWindowBytes %d did not grow from %d", d.Knobs.WireWindowBytes, k.WireWindowBytes)
	}
	if !d.Changed[KnobWireWindowFrames] || !d.Changed[KnobWireWindowBytes] {
		t.Errorf("Changed flags = %v, want wire-window knobs marked", d.Changed)
	}
}

// A lossy window (>5% retransmitted) lowers the ceiling the AIMD
// windows may ramp back to.
func TestWireWindowShrinksWhenLossy(t *testing.T) {
	k := wireKnobs()
	lim := DefaultLimits(k, 500*time.Millisecond)
	var s Sample
	s.FramesSent, s.Retries = 1000, 100
	d := Decide(s, k, lim)
	if d.Knobs.WireWindowFrames >= k.WireWindowFrames {
		t.Errorf("WireWindowFrames %d did not shrink from %d", d.Knobs.WireWindowFrames, k.WireWindowFrames)
	}
	if d.Knobs.WireWindowBytes >= k.WireWindowBytes {
		t.Errorf("WireWindowBytes %d did not shrink from %d", d.Knobs.WireWindowBytes, k.WireWindowBytes)
	}
}

// Mild loss with no parked frames carries no cap signal: the AIMD
// machinery handles it per-stream, the caps hold still.
func TestWireWindowHoldsOnMildLoss(t *testing.T) {
	k := wireKnobs()
	lim := DefaultLimits(k, 500*time.Millisecond)
	var s Sample
	s.FramesSent, s.Retries, s.WireParked = 1000, 30, 50 // 3% < 5%, but not clean
	d := Decide(s, k, lim)
	if d.Knobs.WireWindowFrames != k.WireWindowFrames || d.Knobs.WireWindowBytes != k.WireWindowBytes {
		t.Errorf("mild-loss window moved caps: %d/%d -> %d/%d",
			k.WireWindowFrames, k.WireWindowBytes, d.Knobs.WireWindowFrames, d.Knobs.WireWindowBytes)
	}
	if d.Changed[KnobWireWindowFrames] || d.Changed[KnobWireWindowBytes] {
		t.Error("mild-loss window marked wire knobs changed")
	}
}

// No matter how many one-sided windows arrive, the caps stay clamped.
func TestWireWindowClampsRespected(t *testing.T) {
	k := wireKnobs()
	lim := DefaultLimits(k, 500*time.Millisecond)
	var grow Sample
	grow.FramesSent, grow.WireParked = 1000, 500
	for i := 0; i < 100; i++ {
		k = Decide(grow, k, lim).Knobs
	}
	if k.WireWindowFrames != lim.MaxWireWindowFrames || k.WireWindowBytes != lim.MaxWireWindowBytes {
		t.Errorf("caps %d/%d not pinned at max %d/%d",
			k.WireWindowFrames, k.WireWindowBytes, lim.MaxWireWindowFrames, lim.MaxWireWindowBytes)
	}
	var shrink Sample
	shrink.FramesSent, shrink.Retries = 1000, 500
	for i := 0; i < 100; i++ {
		k = Decide(shrink, k, lim).Knobs
	}
	if k.WireWindowFrames != lim.MinWireWindowFrames || k.WireWindowBytes != lim.MinWireWindowBytes {
		t.Errorf("caps %d/%d not pinned at min %d/%d",
			k.WireWindowFrames, k.WireWindowBytes, lim.MinWireWindowFrames, lim.MinWireWindowBytes)
	}
}

// Windowing disabled by config (zero knob) must stay disabled: the
// controller may tune the cap, never turn the mechanism on.
func TestWireWindowDisabledStaysDisabled(t *testing.T) {
	k := baseKnobs() // WireWindowFrames zero
	lim := DefaultLimits(k, 500*time.Millisecond)
	var s Sample
	s.FramesSent, s.WireParked = 1000, 500
	d := Decide(s, k, lim)
	if d.Knobs.WireWindowFrames != 0 || d.Knobs.WireWindowBytes != 0 {
		t.Errorf("disabled windowing re-enabled: %d/%d", d.Knobs.WireWindowFrames, d.Knobs.WireWindowBytes)
	}
	if d.Changed[KnobWireWindowFrames] || d.Changed[KnobWireWindowBytes] {
		t.Error("disabled windowing marked changed")
	}
}
