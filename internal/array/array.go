package array

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/darc"
	"repro/internal/fabric"
	"repro/internal/runtime"
	"repro/internal/serde"
)

// Kind identifies the data-access safety guarantee of an array handle,
// the paper's four array types.
type Kind int32

// Array kinds (§III-F1).
const (
	KindUnsafe Kind = iota
	KindReadOnly
	KindAtomic
	KindLocalLock
)

func (k Kind) String() string {
	switch k {
	case KindUnsafe:
		return "UnsafeArray"
	case KindReadOnly:
		return "ReadOnlyArray"
	case KindAtomic:
		return "AtomicArray"
	case KindLocalLock:
		return "LocalLockArray"
	default:
		return fmt.Sprintf("Kind(%d)", int32(k))
	}
}

// sharedState is the cross-PE state of one array. A single instance is
// shared by every PE's handles (they reach it through the per-world array
// registry when executing op AMs).
type sharedState[T serde.Number] struct {
	id     uint64
	geom   geometry
	region *fabric.TypedRegion[T] // symmetric storage, maxLocalLen per PE
	kind   atomic.Int32
	ranks  map[int]int // world PE -> team rank

	// per-team-rank access-control state
	rwLocks []*sync.RWMutex   // LocalLockArray: one per rank
	elocks  [][]atomic.Uint32 // GenericAtomicArray: per-element spinlocks
	native  bool              // NativeAtomicArray eligibility for T

	// per-origin-PE operation aggregation buffers (see agg.go); aggPtrs is
	// indexed by world PE and read lock-free on the submission hot path
	aggMu   sync.Mutex
	aggPtrs []atomic.Pointer[aggregator[T]]

	freeOnce sync.Once
}

// arrayRegistry maps array ids to shared state for op-AM dispatch.
type arrayRegistry struct {
	mu sync.Mutex
	m  map[uint64]any
}

var nextArrayID atomic.Uint64

func registryOf(w *runtime.World) *arrayRegistry {
	return w.SharedExtState("array.registry", func() any {
		return &arrayRegistry{m: make(map[uint64]any)}
	}).(*arrayRegistry)
}

func (r *arrayRegistry) put(id uint64, s any) {
	r.mu.Lock()
	r.m[id] = s
	r.mu.Unlock()
}

func (r *arrayRegistry) get(id uint64) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.m[id]
}

func (r *arrayRegistry) del(id uint64) {
	r.mu.Lock()
	delete(r.m, id)
	r.mu.Unlock()
}

// core is the common per-handle state of every array kind; the public
// kind-specific types wrap it.
type core[T serde.Number] struct {
	d    *darc.Darc[*sharedState[T]]
	st   *sharedState[T]
	w    *runtime.World
	team *runtime.Team
	off  int // sub-array view offset (global)
	len  int // sub-array view length
}

// newCore collectively constructs the shared state on team. Blocking and
// collective, as the paper specifies for LamellarArray construction.
func newCore[T serde.Number](team *runtime.Team, glen int, dist Distribution, kind Kind) *core[T] {
	if glen < 0 {
		panic("array: negative length")
	}
	w := team.World()
	st := team.CollectiveKind("array.new", func() any {
		geom := geometry{dist: dist, glen: glen, npes: team.Size()}
		s := &sharedState[T]{
			id:     nextArrayID.Add(1),
			geom:   geom,
			region: fabric.AllocTyped[T](w.Provider(), geom.maxLocalLen()),
			native: nativeAtomicOK[T](),
		}
		s.kind.Store(int32(kind))
		s.ranks = make(map[int]int, team.Size())
		for r, pe := range team.Members() {
			s.ranks[pe] = r
		}
		s.aggPtrs = make([]atomic.Pointer[aggregator[T]], w.NumPEs())
		s.rwLocks = make([]*sync.RWMutex, team.Size())
		s.elocks = make([][]atomic.Uint32, team.Size())
		for r := range s.rwLocks {
			s.rwLocks[r] = new(sync.RWMutex)
			s.elocks[r] = make([]atomic.Uint32, geom.localLen(r))
		}
		registryOf(w).put(s.id, s)
		return s
	}).(*sharedState[T])

	// The darc tracks distributed lifetime; the finalizer (running once
	// globally is enough, guarded by freeOnce) unregisters the array.
	d := darc.New(team, st, func(s *sharedState[T]) {
		s.freeOnce.Do(func() { registryOf(w).del(s.id) })
	})
	return &core[T]{d: d, st: st, w: w, team: team, off: 0, len: glen}
}

// nativeAtomicOK reports whether T supports Go's native atomic operations
// (the NativeAtomicArray variants).
func nativeAtomicOK[T serde.Number]() bool {
	var zero T
	switch any(zero).(type) {
	case int32, int64, uint32, uint64:
		return true
	default:
		return false
	}
}

// ----- common accessors --------------------------------------------------

// Len reports the (view's) global element count.
func (c *core[T]) Len() int { return c.len }

// Team returns the constructing team.
func (c *core[T]) Team() *runtime.Team { return c.team }

// World returns the calling PE's world handle.
func (c *core[T]) World() *runtime.World { return c.w }

// Dist reports the data layout.
func (c *core[T]) Dist() Distribution { return c.st.geom.dist }

// Kind reports the current safety kind of the underlying array.
func (c *core[T]) Kind() Kind { return Kind(c.st.kind.Load()) }

// myRank is the calling PE's team rank.
func (c *core[T]) myRank() int { return c.team.Rank() }

// localSlice returns the calling PE's local storage (full, not view-cut).
func (c *core[T]) localSlice() []T {
	n := c.st.geom.localLen(c.myRank())
	return c.st.region.Local(c.team.WorldPE(c.myRank()))[:n]
}

// globalIndex converts a view-relative index to a global index.
func (c *core[T]) globalIndex(i int) int {
	if i < 0 || i >= c.len {
		panic(fmt.Sprintf("array: index %d out of view range [0,%d)", i, c.len))
	}
	return c.off + i
}

// sub returns a view of [start, end) relative to the current view.
func (c *core[T]) sub(start, end int) *core[T] {
	if start < 0 || end < start || end > c.len {
		panic(fmt.Sprintf("array: invalid sub-array [%d,%d) of len %d", start, end, c.len))
	}
	// Sub-array handles share the same darc reference semantics as clones.
	nd := c.d.Clone()
	return &core[T]{d: nd, st: c.st, w: c.w, team: c.team, off: c.off + start, len: end - start}
}

// clone takes a new handle reference.
func (c *core[T]) clone() *core[T] {
	nd := c.d.Clone()
	cp := *c
	cp.d = nd
	return &cp
}

// drop releases the handle's reference; the backing storage is freed when
// every PE's handles are gone (asynchronously, via the darc protocol).
func (c *core[T]) drop() { c.d.Drop() }

// ----- conversion ---------------------------------------------------------

// convert implements the collective kind change. Per the paper it blocks
// until exactly one reference to the array exists on each PE (the one
// performing the conversion) so the old kind's guarantees cannot be
// violated through stale handles; like the paper (footnote 2) this can
// deadlock if other references are never dropped, so we fail loudly after
// a generous timeout instead.
func (c *core[T]) convert(to Kind) *core[T] {
	deadline := time.Now().Add(30 * time.Second)
	for c.d.LocalRefs() != 1 {
		if time.Now().After(deadline) {
			panic(fmt.Sprintf("array: conversion to %v blocked: %d local references outstanding (the paper's single-reference rule)", to, c.d.LocalRefs()))
		}
		time.Sleep(50 * time.Microsecond)
	}
	// All PEs rendezvous; the first arriver flips the kind.
	c.team.CollectiveKind("array.convert", func() any {
		c.st.kind.Store(int32(to))
		return nil
	})
	c.team.Barrier()
	return c
}

// ----- public kind wrappers ------------------------------------------------

// UnsafeArray provides no access control: any PE may read or write
// anywhere, including via direct RDMA (*Unchecked methods). Intended for
// runtime internals; exposed — like the paper — with a warning.
type UnsafeArray[T serde.Number] struct{ c *core[T] }

// ReadOnlyArray permits no writes; reads need no access control and may
// use direct RDMA gets.
type ReadOnlyArray[T serde.Number] struct{ c *core[T] }

// AtomicArray guards every element with an atomic (native for
// int32/int64/uint32/uint64, a 1-word spinlock otherwise — the paper's
// NativeAtomicArray/GenericAtomicArray split).
type AtomicArray[T serde.Number] struct{ c *core[T] }

// LocalLockArray guards each PE's whole local chunk with one RwLock.
type LocalLockArray[T serde.Number] struct{ c *core[T] }

// NewUnsafeArray collectively constructs an UnsafeArray.
func NewUnsafeArray[T serde.Number](team *runtime.Team, glen int, dist Distribution) *UnsafeArray[T] {
	return &UnsafeArray[T]{c: newCore[T](team, glen, dist, KindUnsafe)}
}

// NewAtomicArray collectively constructs an AtomicArray.
func NewAtomicArray[T serde.Number](team *runtime.Team, glen int, dist Distribution) *AtomicArray[T] {
	return &AtomicArray[T]{c: newCore[T](team, glen, dist, KindAtomic)}
}

// NewLocalLockArray collectively constructs a LocalLockArray.
func NewLocalLockArray[T serde.Number](team *runtime.Team, glen int, dist Distribution) *LocalLockArray[T] {
	return &LocalLockArray[T]{c: newCore[T](team, glen, dist, KindLocalLock)}
}

// NewReadOnlyArray collectively constructs a ReadOnlyArray (typically
// converted from another kind after initialization; a fresh one is all
// zeros).
func NewReadOnlyArray[T serde.Number](team *runtime.Team, glen int, dist Distribution) *ReadOnlyArray[T] {
	return &ReadOnlyArray[T]{c: newCore[T](team, glen, dist, KindReadOnly)}
}

// Conversions (collective; enforce the single-reference rule).

// IntoReadOnly converts, consuming the handle.
func (a *UnsafeArray[T]) IntoReadOnly() *ReadOnlyArray[T] {
	return &ReadOnlyArray[T]{c: a.c.convert(KindReadOnly)}
}

// IntoAtomic converts, consuming the handle.
func (a *UnsafeArray[T]) IntoAtomic() *AtomicArray[T] {
	return &AtomicArray[T]{c: a.c.convert(KindAtomic)}
}

// IntoLocalLock converts, consuming the handle.
func (a *UnsafeArray[T]) IntoLocalLock() *LocalLockArray[T] {
	return &LocalLockArray[T]{c: a.c.convert(KindLocalLock)}
}

// IntoUnsafe converts, consuming the handle.
func (a *AtomicArray[T]) IntoUnsafe() *UnsafeArray[T] {
	return &UnsafeArray[T]{c: a.c.convert(KindUnsafe)}
}

// IntoReadOnly converts, consuming the handle.
func (a *AtomicArray[T]) IntoReadOnly() *ReadOnlyArray[T] {
	return &ReadOnlyArray[T]{c: a.c.convert(KindReadOnly)}
}

// IntoLocalLock converts, consuming the handle.
func (a *AtomicArray[T]) IntoLocalLock() *LocalLockArray[T] {
	return &LocalLockArray[T]{c: a.c.convert(KindLocalLock)}
}

// IntoAtomic converts, consuming the handle.
func (a *ReadOnlyArray[T]) IntoAtomic() *AtomicArray[T] {
	return &AtomicArray[T]{c: a.c.convert(KindAtomic)}
}

// IntoUnsafe converts, consuming the handle.
func (a *ReadOnlyArray[T]) IntoUnsafe() *UnsafeArray[T] {
	return &UnsafeArray[T]{c: a.c.convert(KindUnsafe)}
}

// IntoLocalLock converts, consuming the handle.
func (a *ReadOnlyArray[T]) IntoLocalLock() *LocalLockArray[T] {
	return &LocalLockArray[T]{c: a.c.convert(KindLocalLock)}
}

// IntoAtomic converts, consuming the handle.
func (a *LocalLockArray[T]) IntoAtomic() *AtomicArray[T] {
	return &AtomicArray[T]{c: a.c.convert(KindAtomic)}
}

// IntoUnsafe converts, consuming the handle.
func (a *LocalLockArray[T]) IntoUnsafe() *UnsafeArray[T] {
	return &UnsafeArray[T]{c: a.c.convert(KindUnsafe)}
}

// IntoReadOnly converts, consuming the handle.
func (a *LocalLockArray[T]) IntoReadOnly() *ReadOnlyArray[T] {
	return &ReadOnlyArray[T]{c: a.c.convert(KindReadOnly)}
}
