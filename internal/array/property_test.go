package array

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/runtime"
)

// Property: any single-PE-issued sequence of batched operations applied to
// a distributed AtomicArray produces exactly the state a sequential
// reference model produces, for random lengths, layouts and PE counts.
func TestBatchOpsMatchSequentialModel(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pes := 1 + rng.Intn(4)
		glen := 1 + rng.Intn(200)
		dist := Block
		if rng.Intn(2) == 1 {
			dist = Cyclic
		}
		nOps := 1 + rng.Intn(20)

		type opRec struct {
			op   Op
			idxs []int
			vals []int64
		}
		ops := make([]opRec, nOps)
		usable := []Op{OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpStore}
		for i := range ops {
			n := 1 + rng.Intn(30)
			r := opRec{op: usable[rng.Intn(len(usable))], idxs: make([]int, n), vals: make([]int64, n)}
			for k := 0; k < n; k++ {
				r.idxs[k] = rng.Intn(glen)
				r.vals[k] = int64(rng.Intn(7)) + 1
			}
			ops[i] = r
		}

		// sequential reference
		ref := make([]int64, glen)
		for _, r := range ops {
			for k, idx := range r.idxs {
				if r.op == OpCAS {
					continue
				}
				ref[idx] = applyScalar(r.op, ref[idx], r.vals[k])
			}
		}

		var got []int64
		cfg := runtime.Config{PEs: pes, WorkersPerPE: 2, Lamellae: runtime.LamellaeShmem}
		err := runtime.Run(cfg, func(w *runtime.World) {
			a := NewAtomicArray[int64](w.Team(), glen, dist)
			defer a.Drop()
			if w.MyPE() == 0 {
				for _, r := range ops {
					// ops must apply in order: await each batch
					if _, err := runtime.BlockOn(w, a.BatchOpVals(r.op, r.idxs, r.vals)); err != nil {
						panic(err)
					}
				}
				res, err := runtime.BlockOn(w, a.Get(0, glen))
				if err != nil {
					panic(err)
				}
				got = res
			}
			w.Barrier()
		})
		if err != nil {
			t.Error(err)
			return false
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Errorf("seed %d (pes=%d glen=%d %v): elem %d = %d, want %d",
					seed, pes, glen, dist, i, got[i], ref[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: BatchLoad returns exactly what a big Get over the same view
// returns, for random sub-array views.
func TestBatchLoadMatchesGetOnViews(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pes := 1 + rng.Intn(4)
		glen := 20 + rng.Intn(100)
		lo := rng.Intn(glen / 2)
		hi := lo + 1 + rng.Intn(glen-lo-1)
		ok := true
		cfg := runtime.Config{PEs: pes, WorkersPerPE: 2, Lamellae: runtime.LamellaeShmem}
		err := runtime.Run(cfg, func(w *runtime.World) {
			a := NewAtomicArray[int64](w.Team(), glen, Cyclic)
			if w.MyPE() == 0 {
				vals := make([]int64, glen)
				for i := range vals {
					vals[i] = int64(i * 13)
				}
				if _, err := runtime.BlockOn(w, a.Put(0, vals)); err != nil {
					panic(err)
				}
			}
			w.Barrier()
			sub := a.SubArray(lo, hi)
			n := sub.Len()
			idxs := make([]int, n)
			for i := range idxs {
				idxs[i] = i
			}
			loads, err := runtime.BlockOn(w, sub.BatchLoad(idxs))
			if err != nil {
				panic(err)
			}
			gets, err := runtime.BlockOn(w, sub.Get(0, n))
			if err != nil {
				panic(err)
			}
			for i := range loads {
				if loads[i] != gets[i] || loads[i] != int64((lo+i)*13) {
					ok = false
					panic(fmt.Sprintf("view [%d,%d) elem %d: load=%d get=%d", lo, hi, i, loads[i], gets[i]))
				}
			}
			w.Barrier()
			sub.Drop()
			a.Drop()
		})
		if err != nil {
			t.Error(err)
			return false
		}
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Property: reductions agree with a direct fold of GetUnchecked for every
// kind conversion chain.
func TestReductionsMatchDirectFold(t *testing.T) {
	cfg := runtime.Config{PEs: 3, WorkersPerPE: 2, Lamellae: runtime.LamellaeShmem}
	err := runtime.Run(cfg, func(w *runtime.World) {
		const glen = 77
		ua := NewUnsafeArray[int64](w.Team(), glen, Block)
		if w.MyPE() == 0 {
			vals := make([]int64, glen)
			for i := range vals {
				vals[i] = int64((i*29)%17 + 1)
			}
			ua.PutUnchecked(0, vals)
		}
		w.Barrier()
		all := ua.GetUnchecked(0, glen)
		var wantSum, wantMin, wantMax int64
		wantMin, wantMax = all[0], all[0]
		for _, v := range all {
			wantSum += v
			if v < wantMin {
				wantMin = v
			}
			if v > wantMax {
				wantMax = v
			}
		}
		a := ua.IntoAtomic()
		if s := must(runtime.BlockOn(w, a.Sum())); s != wantSum {
			panic(fmt.Sprintf("sum %d want %d", s, wantSum))
		}
		if m := must(runtime.BlockOn(w, a.Min())); m != wantMin {
			panic(fmt.Sprintf("min %d want %d", m, wantMin))
		}
		if m := must(runtime.BlockOn(w, a.Max())); m != wantMax {
			panic(fmt.Sprintf("max %d want %d", m, wantMax))
		}
		w.Barrier()
		a.Drop()
	})
	if err != nil {
		t.Fatal(err)
	}
}
