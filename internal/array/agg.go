package array

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/runtime"
	"repro/internal/scheduler"
	"repro/internal/serde"
	"repro/internal/telemetry"
	"repro/internal/tuning"
)

// Operation aggregation layer (§IV-B / Fig. 5): element ops on
// AtomicArray/LocalLockArray/UnsafeArray coalesce into per-destination
// buffers so many small ops ride one AM envelope instead of paying a full
// envelope, encode, and allocation each. Contiguous same-destination
// index runs collapse into a single run-length entry, so a contiguous
// batch of N ops costs O(1) buffer entries and the payload moves through
// the zero-copy serde fast path on both sides.
//
// Buffers flush when they cross Config.AggBufSize estimated payload
// bytes or Config.AggFlushOps buffered element ops, on every World flush
// cycle (WaitAll, Barrier, BlockOn, the background flusher — wired via
// World.RegisterFlushHook), when a caller awaits a buffered op's future
// (via the future's await hook), and on explicit FlushBatches calls.
//
// Ordering: entries buffered for the same destination apply there
// sequentially in submission order within one flush; ops in different
// flushes or to different destinations are unordered with respect to
// each other, exactly like independent AMs. Fetch-style results route
// back to each originating op's future in submission order.
//
// Large range transfers (Put/Get and friends) bypass this layer: they
// already travel as single rangePutAM/rangeGetAM payloads or cross over
// to RDMA pulls above the aggregation threshold (see bigPut).

// Entry flag layout: low nibble is the Op, high bits are modifiers.
const (
	entryOpMask    = 0x0f
	entryBroadcast = 0x20 // one value applies to the whole run
	entryFetch     = 0x40 // previous values are returned for this entry
)

// aggEntryOverhead estimates the wire cost of one buffered entry (op
// byte + fixed-width start and count) for the flush-threshold check.
const aggEntryOverhead = 17

// aggRoute remembers where one buffered entry's results go. A nil cd
// means the entry came through the fire-and-forget scalar path: it is
// tracked by the aggregator's shared pending counter (and shared
// condition future) instead of a per-op countdown.
type aggRoute[T serde.Number] struct {
	cd  *scheduler.Countdown[[]T]
	out []T // fetch results land here; nil when the entry returns nothing
}

// aggBatch is one destination's buffer: columnar entry metadata plus the
// packed operand values, built to serialize with PutNumericSlice.
type aggBatch[T serde.Number] struct {
	ops    []uint8
	starts []int64
	counts []int64
	vals   []T
	casOld []T
	routes []aggRoute[T]
	nops   int   // buffered element ops
	bytes  int   // estimated wire payload bytes
	openNs int64 // telemetry clock when the first op landed (0 = untraced)
	fetch  bool

	// am and onDone are the batch's recycled launch state: the AM struct
	// the columns serialize through and the completion callback bound once
	// when the batch object was created, so dispatching a flushed buffer
	// allocates neither.
	am     aggAM[T]
	onDone func(any, error)
}

// resolveBatch routes an aggAM's results (or error) back to every
// buffered entry, in submission order: per-op countdowns for routed
// entries, the shared pending counter for fire-and-forget ones.
func (g *aggregator[T]) resolveBatch(b *aggBatch[T], res []T, err error) {
	ri := 0
	shared := int64(0)
	for k := range b.routes {
		r := b.routes[k]
		if err == nil && r.out != nil {
			cnt := int(b.counts[k])
			copy(r.out, res[ri:ri+cnt])
			ri += cnt
		}
		if r.cd != nil {
			r.cd.Done(err)
		} else {
			shared++
		}
	}
	if shared > 0 {
		if err != nil {
			g.noteErr(err)
		}
		g.pending.Add(-shared)
	}
}

// noteErr latches the first error seen by a fire-and-forget entry; the
// shared condition future surfaces it on every subsequent await.
func (g *aggregator[T]) noteErr(err error) {
	g.errMu.Lock()
	if g.stickyErr == nil {
		g.stickyErr = err
	}
	g.errMu.Unlock()
}

type aggShard[T serde.Number] struct {
	mu sync.Mutex
	b  *aggBatch[T]
}

// aggregator is one PE's aggregation state for one array: a buffer per
// destination team rank, plus a recycle pool so steady-state traffic
// reuses batch column storage instead of reallocating it per flush.
type aggregator[T serde.Number] struct {
	st      *sharedState[T]
	w       *runtime.World
	team    *runtime.Team
	knobs   *tuning.Atomics // live flush thresholds (AggBufSize/AggFlushOps)
	elemSz  int
	flushFn func() // FlushBatches method value, bound once (await hooks)
	shards  []aggShard[T]
	spares  sync.Pool // *aggBatch[T]

	// Shared completion state for fire-and-forget scalar ops: every such
	// op bumps pending and hands the caller sharedF, a reusable condition
	// future that is done exactly when no buffered or in-flight
	// fire-and-forget op remains — one allocation for the aggregator's
	// lifetime instead of a countdown + future per op.
	pending   atomic.Int64
	errMu     sync.Mutex
	stickyErr error
	sharedF   *scheduler.Future[[]T]
}

// agg returns this PE's aggregator for the array, creating it (and
// registering its flush hook with the World) on first use. The lookup is
// a lock-free load on the hot path.
func (c *core[T]) agg() *aggregator[T] {
	s := c.st
	me := c.w.MyPE()
	if g := s.aggPtrs[me].Load(); g != nil {
		return g
	}
	s.aggMu.Lock()
	defer s.aggMu.Unlock()
	if g := s.aggPtrs[me].Load(); g != nil {
		return g
	}
	g := &aggregator[T]{
		st:     s,
		w:      c.w,
		team:   c.team,
		knobs:  c.w.TuneKnobs(),
		elemSz: serde.SizeOf[T](),
		shards: make([]aggShard[T], c.team.Size()),
	}
	g.spares.New = func() any {
		b := new(aggBatch[T])
		b.onDone = func(v any, err error) {
			res, _ := v.([]T)
			g.resolveBatch(b, res, err)
			g.putBatch(b)
		}
		return b
	}
	g.flushFn = g.FlushBatches
	g.sharedF = scheduler.NewConditionFuture(c.w.Pool(), func() ([]T, error, bool) {
		if g.pending.Load() != 0 {
			return nil, nil, false
		}
		g.errMu.Lock()
		err := g.stickyErr
		g.errMu.Unlock()
		return nil, err, true
	})
	g.sharedF.SetAwaitHook(g.flushFn)
	s.aggPtrs[me].Store(g)
	c.w.RegisterFlushHook(g.FlushBatches)
	return g
}

// flushAgg drains this PE's buffers for the array, if any exist.
func (c *core[T]) flushAgg() {
	if g := c.st.aggPtrs[c.w.MyPE()].Load(); g != nil {
		g.FlushBatches()
	}
}

func (g *aggregator[T]) getBatch() *aggBatch[T] {
	return g.spares.Get().(*aggBatch[T])
}

// putBatch recycles a resolved batch's column storage. Batches that grew
// unusually large (CAS runs are never bypassed, so they can exceed the
// byte threshold) are dropped instead of pinning the memory.
func (g *aggregator[T]) putBatch(b *aggBatch[T]) {
	if cap(b.vals)*g.elemSz > 1<<20 {
		return
	}
	for i := range b.routes {
		b.routes[i] = aggRoute[T]{}
	}
	b.ops, b.starts, b.counts = b.ops[:0], b.starts[:0], b.counts[:0]
	b.vals, b.casOld, b.routes = b.vals[:0], b.casOld[:0], b.routes[:0]
	b.nops, b.bytes, b.openNs, b.fetch = 0, 0, 0, false
	g.spares.Put(b)
}

// FlushBatches drains every destination's buffer into the AM queues. It
// runs from World flush cycles and future await hooks; explicit calls
// are only needed to bound the latency of fire-and-forget ops.
func (g *aggregator[T]) FlushBatches() {
	for rank := range g.shards {
		sh := &g.shards[rank]
		sh.mu.Lock()
		b := sh.b
		sh.b = nil
		sh.mu.Unlock()
		if b != nil && len(b.ops) > 0 {
			g.dispatch(rank, b, telemetry.FlushDrain)
		}
	}
}

// dispatch ships one detached buffer to its destination. The batch is
// recycled once its completion resolved: the AM was serialized during
// launch (aggregated destinations are always remote), so nothing else
// references its column storage afterwards.
func (g *aggregator[T]) dispatch(rank int, b *aggBatch[T], reason telemetry.FlushReason) {
	g.w.CountAggFlush(reason, b.nops, b.bytes)
	if tc := telemetry.C(); tc != nil && b.openNs > 0 {
		now := tc.Now()
		dur := now - b.openNs
		if dur < 0 {
			dur = 0
		}
		tc.Emit(telemetry.Event{
			TS: b.openNs, Dur: dur, Kind: telemetry.EvBatchFlush,
			Sub: uint8(reason), PE: int32(g.w.MyPE()), Worker: telemetry.TidRuntime,
			Arg1: int64(g.team.WorldPE(rank)), Arg2: int64(b.nops),
		})
	}
	b.am = aggAM[T]{
		ID:      g.st.id,
		WantOut: b.fetch,
		Ops:     b.ops,
		Starts:  b.starts,
		Counts:  b.counts,
		Vals:    b.vals,
		CasOld:  b.casOld,
	}
	// The batch's pre-bound callback resolves routes and recycles the
	// batch; the AM serializes synchronously during launch, so reusing
	// b.am and the column storage afterwards is safe.
	g.w.ExecAMCallback(g.team.WorldPE(rank), &b.am, b.onDone)
}

// append buffers one run for rank, flushing the shard if it crossed a
// threshold. evals is the run's values (len 1 means broadcast when the
// broadcast flag is set); eout, when non-nil, receives previous values.
// A nil cd tracks the run on the shared pending counter instead.
func (g *aggregator[T]) append(rank int, op Op, local, n int, broadcast bool,
	evals, ecas, eout []T, cd *scheduler.Countdown[[]T], elemSz int) {
	if cd != nil {
		cd.Add(1)
	} else {
		g.pending.Add(1)
	}
	sh := &g.shards[rank]
	sh.mu.Lock()
	b := sh.b
	if b == nil {
		b = g.getBatch()
		sh.b = b
		if telemetry.Enabled() {
			if tc := telemetry.C(); tc != nil {
				b.openNs = tc.Now()
				tc.Emit(telemetry.Event{
					TS: b.openNs, Kind: telemetry.EvBatchOpen,
					PE: int32(g.w.MyPE()), Worker: telemetry.TidRuntime,
					Arg1: int64(g.team.WorldPE(rank)),
				})
			}
		}
	}
	flags := uint8(op)
	if eout != nil {
		flags |= entryFetch
		b.fetch = true
	}
	nv := 0
	if op != OpLoad {
		if broadcast {
			flags |= entryBroadcast
			var v T
			if len(evals) > 0 {
				v = evals[0]
			}
			b.vals = append(b.vals, v)
			nv = 1
		} else {
			b.vals = append(b.vals, evals...)
			nv = n
		}
	}
	if op == OpCAS {
		// CAS entries always carry one old value per element on the wire.
		if len(ecas) <= 1 {
			var v T
			if len(ecas) > 0 {
				v = ecas[0]
			}
			for k := 0; k < n; k++ {
				b.casOld = append(b.casOld, v)
			}
		} else {
			b.casOld = append(b.casOld, ecas...)
		}
		nv += n
	}
	b.ops = append(b.ops, flags)
	b.starts = append(b.starts, int64(local))
	b.counts = append(b.counts, int64(n))
	b.routes = append(b.routes, aggRoute[T]{cd: cd, out: eout})
	b.nops += n
	b.bytes += aggEntryOverhead + nv*elemSz
	var detached *aggBatch[T]
	reason := telemetry.FlushSize
	if b.nops >= int(g.knobs.AggFlushOps.Load()) {
		detached, reason = b, telemetry.FlushOps
		sh.b = nil
	} else if b.bytes >= int(g.knobs.AggBufSize.Load()) {
		detached = b
		sh.b = nil
	}
	sh.mu.Unlock()
	if detached != nil {
		g.dispatch(rank, detached, reason)
	}
}

// dispatchRun ships one large run as its own immediate single-entry
// batch, aliasing the caller's value/output slices instead of copying
// them through a buffer: a run this size would trip a flush threshold by
// itself, so buffering would only add a memmove (the same aliasing
// contract putRange uses). The shard's pending buffer is flushed first
// to keep destination application roughly in submission order. CAS and
// broadcast runs never take this path — they need operand expansion.
func (g *aggregator[T]) dispatchRun(rank int, op Op, local, n int,
	evals, eout []T, cd *scheduler.Countdown[[]T]) {
	cd.Add(1)
	sh := &g.shards[rank]
	sh.mu.Lock()
	b := sh.b
	sh.b = nil
	sh.mu.Unlock()
	if b != nil {
		g.dispatch(rank, b, telemetry.FlushDrain)
	}
	g.w.CountAggFlush(telemetry.FlushRun, n, aggEntryOverhead+n*g.elemSz)
	flags := uint8(op)
	if eout != nil {
		flags |= entryFetch
	}
	am := &aggAM[T]{
		ID:      g.st.id,
		WantOut: eout != nil,
		Ops:     []uint8{flags},
		Starts:  []int64{int64(local)},
		Counts:  []int64{int64(n)},
		Vals:    evals,
	}
	runtime.ExecTyped[[]T](g.w, g.team.WorldPE(rank), am).OnDone(func(res []T, err error) {
		if err == nil && eout != nil {
			copy(eout, res)
		}
		cd.Done(err)
	})
}

// aggSubmit is the aggregated batchOp path: it splits idxs into maximal
// contiguous same-destination runs, applies owner-local runs inline, and
// buffers remote runs per destination. The returned future resolves once
// every run completed, with previous values in input order for
// fetch-style ops, and carries an await hook that flushes the buffers.
func (c *core[T]) aggSubmit(op Op, fetch bool, idxs []int, vals, casOld []T) *scheduler.Future[[]T] {
	needOut := fetch || op == OpLoad || op == OpSwap || op == OpCAS
	var out []T
	var valueFn func() []T
	if needOut {
		out = make([]T, len(idxs))
		valueFn = func() []T { return out }
	}
	g := c.agg()
	// The countdown starts with a submission reservation released at the
	// end, so the future cannot resolve while runs are still being issued.
	cd, future := scheduler.NewCountdown(c.w.Pool(), 1, valueFn)
	future.SetAwaitHook(g.flushFn)

	me := c.w.MyPE()
	geom := c.st.geom
	broadcast := len(vals) <= 1 && op != OpLoad
	elemSz := serde.SizeOf[T]()
	flushO := int(g.knobs.AggFlushOps.Load())
	flushB := int(g.knobs.AggBufSize.Load())
	mergeRuns := geom.dist == Block || geom.npes == 1
	i := 0
	for i < len(idxs) {
		gi := c.globalIndex(idxs[i])
		rank, local := geom.place(gi)
		n := 1
		if mergeRuns {
			// Precompute how far the run can extend so the scan is a
			// single bounded comparison per element.
			base := idxs[i]
			limit := len(idxs) - i
			if r := geom.localLen(rank) - local; r < limit {
				limit = r
			}
			if r := c.len - base; r < limit {
				limit = r
			}
			for n < limit && idxs[i+n] == base+n {
				n++
			}
		}
		var evals []T
		if op != OpLoad {
			if broadcast {
				evals = vals
			} else {
				evals = vals[i : i+n]
			}
		}
		var ecas []T
		if op == OpCAS {
			if len(casOld) <= 1 {
				ecas = casOld
			} else {
				ecas = casOld[i : i+n]
			}
		}
		var eout []T
		if needOut {
			eout = out[i : i+n]
		}
		if g.team.WorldPE(rank) == me {
			// Owner-local run: apply immediately, no buffering.
			cd.Add(1)
			cd.Done(c.st.applyAggRun(me, rank, op, local, n, evals, ecas, eout))
		} else if op != OpCAS && !broadcast && (n >= flushO || n*elemSz >= flushB) {
			g.dispatchRun(rank, op, local, n, evals, eout, cd)
		} else {
			g.append(rank, op, local, n, broadcast, evals, ecas, eout, cd, elemSz)
		}
		i += n
	}
	cd.Done(nil) // release the submission reservation
	return future
}

// zeroOf returns T's zero value (placeholder operand for singleOp calls
// whose op ignores that column).
func zeroOf[T serde.Number]() T {
	var z T
	return z
}

// singleOp is the scalar path behind the one-element API methods. With
// aggregation enabled it skips the batch machinery entirely — no index
// or value slices, one countdown+future allocation per op — and hands a
// single run to the destination buffer (or applies it inline when the
// element is owner-local). append copies operand values into the batch
// columns, so the stack-backed one-element slices never escape.
func (c *core[T]) singleOp(op Op, fetch bool, idx int, val, casOld T) *scheduler.Future[[]T] {
	if c.w.Config().AggBufSize < 0 {
		// Direct mode: one AM per op via the batch path.
		var evals, ecas []T
		if op != OpLoad {
			evals = []T{val}
		}
		if op == OpCAS {
			ecas = []T{casOld}
		}
		return c.batchOp(op, fetch, []int{idx}, evals, ecas)
	}
	needOut := fetch || op == OpLoad || op == OpSwap || op == OpCAS
	g := c.agg()
	rank, local := c.st.geom.place(c.globalIndex(idx))
	if !needOut {
		// Fire-and-forget scalar op: no per-op future at all. The shared
		// condition future (done ⇔ no buffered or in-flight ops) is the
		// return value, so the steady-state aggregated add/store path
		// allocates nothing.
		if g.team.WorldPE(rank) == c.w.MyPE() {
			vbuf := [1]T{val}
			var evals []T
			if op != OpLoad {
				evals = vbuf[:]
			}
			if err := c.st.applyAggRun(c.w.MyPE(), rank, op, local, 1, evals, nil, nil); err != nil {
				return scheduler.Fail[[]T](err)
			}
		} else {
			vbuf := [1]T{val}
			var evals []T
			if op != OpLoad {
				evals = vbuf[:]
			}
			g.append(rank, op, local, 1, false, evals, nil, nil, nil, g.elemSz)
		}
		return g.sharedF
	}
	out := make([]T, 1)
	valueFn := func() []T { return out }
	cd, future := scheduler.NewCountdown(c.w.Pool(), 1, valueFn)
	future.SetAwaitHook(g.flushFn)
	if g.team.WorldPE(rank) == c.w.MyPE() {
		// Owner-local: apply immediately, no buffering. The operand
		// buffers are scoped to this branch so the remote path's copies
		// stay stack-allocated (nativeRun's any-conversions leak these).
		vbuf, cbuf := [1]T{val}, [1]T{casOld}
		var evals, ecas []T
		if op != OpLoad {
			evals = vbuf[:]
		}
		if op == OpCAS {
			ecas = cbuf[:]
		}
		cd.Done(c.st.applyAggRun(c.w.MyPE(), rank, op, local, 1, evals, ecas, out))
	} else {
		vbuf, cbuf := [1]T{val}, [1]T{casOld}
		var evals, ecas []T
		if op != OpLoad {
			evals = vbuf[:]
		}
		if op == OpCAS {
			ecas = cbuf[:]
		}
		g.append(rank, op, local, 1, false, evals, ecas, out, cd, g.elemSz)
		cd.Done(nil) // release the submission reservation
	}
	return future
}

// ----- destination-side application ----------------------------------------

// aggAM carries one flushed destination buffer: columnar entries plus the
// packed operand values, all moving through the zero-copy slice codec.
type aggAM[T serde.Number] struct {
	ID      uint64
	WantOut bool
	Ops     []uint8
	Starts  []int64
	Counts  []int64
	Vals    []T
	CasOld  []T
}

// ResetLamellar clears the AM for its decode pool (RegisterAMPooled):
// destination-side instances recycle after Exec instead of churning an
// allocation per delivered batch.
func (a *aggAM[T]) ResetLamellar() { *a = aggAM[T]{} }

func (a *aggAM[T]) MarshalLamellar(e *serde.Encoder) {
	e.PutUvarint(a.ID)
	e.PutBool(a.WantOut)
	e.PutBytes(a.Ops)
	serde.PutNumericSliceAligned(e, a.Starts)
	serde.PutNumericSliceAligned(e, a.Counts)
	serde.PutNumericSliceAligned(e, a.Vals)
	serde.PutNumericSliceAligned(e, a.CasOld)
}

func (a *aggAM[T]) UnmarshalLamellar(d *serde.Decoder) error {
	// Views alias the received batch, which the runtime never reuses;
	// they are consumed inside Exec on the destination pool.
	a.ID = d.Uvarint()
	a.WantOut = d.Bool()
	a.Ops = d.Bytes()
	a.Starts = serde.NumericSliceViewAligned[int64](d)
	a.Counts = serde.NumericSliceViewAligned[int64](d)
	a.Vals = serde.NumericSliceViewAligned[T](d)
	a.CasOld = serde.NumericSliceViewAligned[T](d)
	return d.Err()
}

func (a *aggAM[T]) Exec(ctx *runtime.Context) any {
	st, rank := lookupState[T](ctx, a.ID)
	out, err := st.applyAggBatch(ctx.World.MyPE(), rank, a.Ops, a.Starts, a.Counts, a.Vals, a.CasOld, a.WantOut)
	if err != nil {
		panic(err) // converted to an origin-side error by the runtime
	}
	if a.WantOut {
		return out
	}
	return nil
}

// applyAggBatch executes a flushed buffer's entries sequentially on
// rank's local data, honoring the array's kind, and returns the
// concatenated previous values of fetch-flagged entries.
func (s *sharedState[T]) applyAggBatch(worldPE, rank int, ops []uint8, starts, counts []int64,
	vals, casOld []T, wantOut bool) ([]T, error) {
	kind := Kind(s.kind.Load())
	data := s.region.Local(worldPE)
	n := s.geom.localLen(rank)
	var out []T
	if wantOut {
		total := 0
		for k, f := range ops {
			if f&entryFetch != 0 {
				total += int(counts[k])
			}
		}
		out = make([]T, total)
	}
	if kind == KindLocalLock {
		// One rank-lock acquisition for the whole buffer — the point of
		// aggregating LocalLockArray ops.
		anyWrite := false
		for _, f := range ops {
			if Op(f & entryOpMask).isWrite() {
				anyWrite = true
				break
			}
		}
		lk := s.rwLocks[rank]
		if anyWrite {
			lk.Lock()
			defer lk.Unlock()
		} else {
			lk.RLock()
			defer lk.RUnlock()
		}
	}
	vi, ci, oi := 0, 0, 0
	for k, f := range ops {
		op := Op(f & entryOpMask)
		start := int(starts[k])
		cnt := int(counts[k])
		if start < 0 || cnt < 0 || start+cnt > n {
			return nil, fmt.Errorf("array: agg entry [%d,%d) out of local range [0,%d)", start, start+cnt, n)
		}
		if op.isWrite() && kind == KindReadOnly {
			return nil, fmt.Errorf("array: %v on ReadOnlyArray", op)
		}
		var evals []T
		if op != OpLoad {
			if f&entryBroadcast != 0 {
				evals = vals[vi : vi+1]
				vi++
			} else {
				evals = vals[vi : vi+cnt]
				vi += cnt
			}
		}
		var ecas []T
		if op == OpCAS {
			ecas = casOld[ci : ci+cnt]
			ci += cnt
		}
		var eout []T
		if f&entryFetch != 0 {
			eout = out[oi : oi+cnt]
			oi += cnt
		}
		s.applyRun(rank, kind, op, start, data[start:start+cnt], evals, ecas, eout)
	}
	return out, nil
}

// applyAggRun applies one contiguous run locally (origin == owner),
// sharing the owner-side run kernels with the remote path.
func (s *sharedState[T]) applyAggRun(worldPE, rank int, op Op, start, cnt int, evals, ecas, eout []T) error {
	kind := Kind(s.kind.Load())
	if op.isWrite() && kind == KindReadOnly {
		return fmt.Errorf("array: %v on ReadOnlyArray", op)
	}
	n := s.geom.localLen(rank)
	if start < 0 || start+cnt > n {
		return fmt.Errorf("array: agg run [%d,%d) out of local range [0,%d)", start, start+cnt, n)
	}
	data := s.region.Local(worldPE)
	if kind == KindLocalLock {
		lk := s.rwLocks[rank]
		if op.isWrite() {
			lk.Lock()
			defer lk.Unlock()
		} else {
			lk.RLock()
			defer lk.RUnlock()
		}
	}
	s.applyRun(rank, kind, op, start, data[start:start+cnt], evals, ecas, eout)
	return nil
}

// applyRun applies one run with kind-appropriate element semantics. For
// KindLocalLock the caller already holds the rank lock.
func (s *sharedState[T]) applyRun(rank int, kind Kind, op Op, start int, seg, evals, ecas, eout []T) {
	if kind == KindAtomic {
		if s.native {
			nativeRun(op, seg, evals, ecas, eout)
			return
		}
		locks := s.elocks[rank][start : start+len(seg)]
		for i := range seg {
			l := &locks[i]
			lockElem(l)
			cur := seg[i]
			next := plainStep(op, cur, valAtRun(evals, i), valAtRun(ecas, i))
			if op.isWrite() {
				seg[i] = next
			}
			unlockElem(l)
			if eout != nil {
				eout[i] = cur
			}
		}
		return
	}
	plainRun(op, seg, evals, ecas, eout)
}

// plainStep computes one element transition for non-atomic kinds.
func plainStep[T serde.Number](op Op, cur, v, casOld T) T {
	if op == OpCAS {
		if cur == casOld {
			return v
		}
		return cur
	}
	return applyScalar(op, cur, v)
}

// valAtRun reads a possibly-broadcast operand column.
func valAtRun[T serde.Number](vals []T, i int) T {
	switch len(vals) {
	case 0:
		var zero T
		return zero
	case 1:
		return vals[0]
	default:
		return vals[i]
	}
}

// plainRun is the unsynchronized run kernel (Unsafe, ReadOnly loads, and
// LocalLock under the caller-held rank lock), with tight loops for the
// hot store/load/add shapes.
func plainRun[T serde.Number](op Op, seg, evals, ecas, eout []T) {
	switch {
	case op == OpStore && eout == nil:
		if len(evals) == 1 {
			v := evals[0]
			for i := range seg {
				seg[i] = v
			}
		} else {
			copy(seg, evals)
		}
	case op == OpLoad:
		copy(eout, seg)
	case op == OpAdd && eout == nil:
		if len(evals) == 1 {
			v := evals[0]
			for i := range seg {
				seg[i] += v
			}
		} else {
			for i := range seg {
				seg[i] += evals[i]
			}
		}
	default:
		for i := range seg {
			cur := seg[i]
			next := plainStep(op, cur, valAtRun(evals, i), valAtRun(ecas, i))
			if op.isWrite() {
				seg[i] = next
			}
			if eout != nil {
				eout[i] = cur
			}
		}
	}
}

// nativeRun is the native-atomic run kernel. The monomorphic fast paths
// matter: a per-element any-based type switch would dominate the
// aggregated path's CPU cost.
func nativeRun[T serde.Number](op Op, seg, evals, ecas, eout []T) {
	switch sg := any(seg).(type) {
	case []uint64:
		if nativeRunU64(op, sg, any(evals).([]uint64), any(eout).([]uint64)) {
			return
		}
	case []int64:
		if nativeRunI64(op, sg, any(evals).([]int64), any(eout).([]int64)) {
			return
		}
	}
	for i := range seg {
		var co T
		if op == OpCAS {
			co = valAtRun(ecas, i)
		}
		prev := nativeApply(op, &seg[i], valAtRun(evals, i), co)
		if eout != nil {
			eout[i] = prev
		}
	}
}

func nativeRunU64(op Op, seg, vals, out []uint64) bool {
	switch op {
	case OpStore:
		if out != nil {
			return false
		}
		if !raceDetectorEnabled {
			// Word-sized aligned stores are single-copy atomic — the Go
			// memory model guarantees a read of such a location observes
			// some written value, never a torn mix — so a bulk copy honors
			// the per-element atomicity contract at memcpy speed instead
			// of paying a locked exchange per element.
			if len(vals) == 1 {
				v := vals[0]
				for i := range seg {
					seg[i] = v
				}
			} else {
				copy(seg, vals)
			}
			return true
		}
		if len(vals) == 1 {
			v := vals[0]
			for i := range seg {
				atomic.StoreUint64(&seg[i], v)
			}
		} else {
			for i := range seg {
				atomic.StoreUint64(&seg[i], vals[i])
			}
		}
	case OpAdd:
		if out != nil {
			if len(vals) == 1 {
				v := vals[0]
				for i := range seg {
					out[i] = atomic.AddUint64(&seg[i], v) - v
				}
			} else {
				for i := range seg {
					out[i] = atomic.AddUint64(&seg[i], vals[i]) - vals[i]
				}
			}
		} else if len(vals) == 1 {
			v := vals[0]
			for i := range seg {
				atomic.AddUint64(&seg[i], v)
			}
		} else {
			for i := range seg {
				atomic.AddUint64(&seg[i], vals[i])
			}
		}
	case OpLoad:
		for i := range seg {
			out[i] = atomic.LoadUint64(&seg[i])
		}
	default:
		return false
	}
	return true
}

func nativeRunI64(op Op, seg, vals, out []int64) bool {
	switch op {
	case OpStore:
		if out != nil {
			return false
		}
		if !raceDetectorEnabled {
			// See nativeRunU64: plain word stores are untorn, so bulk
			// copy preserves per-element atomicity.
			if len(vals) == 1 {
				v := vals[0]
				for i := range seg {
					seg[i] = v
				}
			} else {
				copy(seg, vals)
			}
			return true
		}
		if len(vals) == 1 {
			v := vals[0]
			for i := range seg {
				atomic.StoreInt64(&seg[i], v)
			}
		} else {
			for i := range seg {
				atomic.StoreInt64(&seg[i], vals[i])
			}
		}
	case OpAdd:
		if out != nil {
			if len(vals) == 1 {
				v := vals[0]
				for i := range seg {
					out[i] = atomic.AddInt64(&seg[i], v) - v
				}
			} else {
				for i := range seg {
					out[i] = atomic.AddInt64(&seg[i], vals[i]) - vals[i]
				}
			}
		} else if len(vals) == 1 {
			v := vals[0]
			for i := range seg {
				atomic.AddInt64(&seg[i], v)
			}
		} else {
			for i := range seg {
				atomic.AddInt64(&seg[i], vals[i])
			}
		}
	case OpLoad:
		for i := range seg {
			out[i] = atomic.LoadInt64(&seg[i])
		}
	default:
		return false
	}
	return true
}
