package array

import (
	"fmt"
	"iter"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/envknob"
	"repro/internal/scheduler"
	"repro/internal/serde"
)

// Iteration (§III-F4). Three iterator families:
//
//   - DistIter: distributed parallel iteration — collective over the PEs
//     holding data; each PE's executor processes its local elements in
//     parallel chunks. Obtain with XArray.DistIter().
//   - LocalIter: one-sided parallel iteration over the calling PE's local
//     data only. Obtain with XArray.LocalIter().
//   - OneSidedIter: serial iteration over the *entire* array from one
//     calling PE, with runtime-managed buffered transfers from remote
//     PEs. Obtain with XArray.OneSidedIter(bufElems).
//
// DistIter/LocalIter are lazy chains (filter, enumerate, skip, step_by,
// take as methods; map/filter_map as free functions since they change the
// element type) with asynchronous terminals (ForEach, Collect, Count,
// Reduce) returning futures that must be awaited, as in the paper.

// Indexed pairs a global (view-relative) element index with its value,
// produced by Enumerate.
type Indexed[T any] struct {
	Idx int
	Val T
}

// Pair is the result type of Zip.
type Pair[A, B any] struct {
	A A
	B B
}

// iterMode distinguishes the two parallel iterator families.
type iterMode int

const (
	modeLocal iterMode = iota
	modeDist
)

// Iter is a lazy parallel iterator chain over array elements.
type Iter[T any] struct {
	w    *worldRef
	mode iterMode
	// positions is the number of base positions this PE drives.
	positions int
	chunk     int
	// drive runs the chain over base positions [lo, hi), invoking yield
	// with the view-relative index and transformed value.
	drive func(lo, hi int, yield func(idx int, v T) bool)
}

// worldRef carries the runtime handles without making Iter generic over
// the element type of the backing array.
type worldRef struct {
	pool  poolIface
	team  teamIface
	wdptr any
}

// poolIface and teamIface decouple Iter from concrete runtime types for
// testability; the runtime types satisfy them directly.
type poolIface interface {
	Submit(fn scheduler.Task)
	Workers() int
}

// chunkTasksPerWorker is the adaptive-chunk split target: parallel
// terminals aim for this many chunks per worker so work stealing can
// absorb skew from uneven filters and slow workers. A measured knob
// (ISSUE 9): the Task Bench matrix sweeps it — see bench_results.txt
// §TASKBENCH. Override with LAMELLAR_CHUNK_FACTOR or
// SetChunkTasksPerWorker; WithChunk still overrides per iterator.
var chunkTasksPerWorker atomic.Int32

const defaultChunkTasksPerWorker = 4

func init() {
	chunkTasksPerWorker.Store(int32(envknob.Int(
		"LAMELLAR_CHUNK_FACTOR", defaultChunkTasksPerWorker, 1, 256)))
}

// SetChunkTasksPerWorker sets the chunks-per-worker split target
// (clamped to [1, 256]) used by adaptiveChunk for iterators built
// afterwards.
func SetChunkTasksPerWorker(n int) {
	if n < 1 {
		n = 1
	}
	if n > 256 {
		n = 256
	}
	chunkTasksPerWorker.Store(int32(n))
}

// ChunkTasksPerWorker reports the current chunks-per-worker target.
func ChunkTasksPerWorker() int { return int(chunkTasksPerWorker.Load()) }

// adaptiveChunk picks the default elements-per-task for parallel
// terminals: enough chunks to give every worker ~chunkTasksPerWorker
// (absorbing skew from stealing and uneven filters), but clamped so tiny
// views do not pay per-task overhead and huge views do not queue monster
// chunks. WithChunk overrides it.
func adaptiveChunk(n, workers int) int {
	if workers < 1 {
		workers = 1
	}
	c := n / (workers * int(chunkTasksPerWorker.Load()))
	if c < 64 {
		c = 64
	}
	if c > 8192 {
		c = 8192
	}
	return c
}

type teamIface interface {
	AllGatherBytes(mine []byte) [][]byte
	Barrier()
}

// baseIter constructs the base iterator over the view's local elements.
func baseIter[T serde.Number](c *core[T], mode iterMode) *Iter[T] {
	rank := c.myRank()
	worldPE := c.team.WorldPE(rank)
	// Collect the local indices that fall inside the view, in ascending
	// view order.
	ll := c.st.geom.localLen(rank)
	type span struct{ local, view int }
	var spans []span
	for li := 0; li < ll; li++ {
		g := c.st.geom.globalOf(rank, li)
		if g >= c.off && g < c.off+c.len {
			spans = append(spans, span{local: li, view: g - c.off})
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].view < spans[j].view })
	drive := func(lo, hi int, yield func(int, T) bool) {
		for k := lo; k < hi; k++ {
			sp := spans[k]
			vals, err := c.st.readRange(worldPE, rank, sp.local, 1)
			if err != nil {
				panic(err)
			}
			if !yield(sp.view, vals[0]) {
				return
			}
		}
	}
	// Fast path: when the view-local spans are contiguous in local memory
	// (always true for Block layout), read whole chunks at once.
	contiguous := true
	for i := 1; i < len(spans); i++ {
		if spans[i].local != spans[i-1].local+1 {
			contiguous = false
			break
		}
	}
	if contiguous && len(spans) > 0 {
		base := spans[0].local
		drive = func(lo, hi int, yield func(int, T) bool) {
			vals, err := c.st.readRange(worldPE, rank, base+lo, hi-lo)
			if err != nil {
				panic(err)
			}
			for k := lo; k < hi; k++ {
				if !yield(spans[k].view, vals[k-lo]) {
					return
				}
			}
		}
	}
	pool := c.w.Pool()
	return &Iter[T]{
		w:         &worldRef{pool: pool, team: c.team, wdptr: c.w},
		mode:      mode,
		positions: len(spans),
		chunk:     adaptiveChunk(len(spans), pool.Workers()),
		drive:     drive,
	}
}

// WithChunk sets the parallel chunk size (elements per task).
func (it *Iter[T]) WithChunk(n int) *Iter[T] {
	if n < 1 {
		n = 1
	}
	cp := *it
	cp.chunk = n
	return &cp
}

// Filter keeps elements satisfying pred.
func (it *Iter[T]) Filter(pred func(T) bool) *Iter[T] {
	prev := it.drive
	cp := *it
	cp.drive = func(lo, hi int, yield func(int, T) bool) {
		prev(lo, hi, func(i int, v T) bool {
			if !pred(v) {
				return true
			}
			return yield(i, v)
		})
	}
	return &cp
}

// Enumerate pairs each element with its (view-relative) global index.
// A free function (like Map) because the element type changes; a method
// would create an unbounded generic instantiation cycle.
func Enumerate[T any](it *Iter[T]) *Iter[Indexed[T]] {
	prev := it.drive
	return &Iter[Indexed[T]]{
		w: it.w, mode: it.mode, positions: it.positions, chunk: it.chunk,
		drive: func(lo, hi int, yield func(int, Indexed[T]) bool) {
			prev(lo, hi, func(i int, v T) bool {
				return yield(i, Indexed[T]{Idx: i, Val: v})
			})
		},
	}
}

// Skip drops elements with global index < n (index-based, as the
// distributed layout admits no cheap stream semantics).
func (it *Iter[T]) Skip(n int) *Iter[T] {
	prev := it.drive
	cp := *it
	cp.drive = func(lo, hi int, yield func(int, T) bool) {
		prev(lo, hi, func(i int, v T) bool {
			if i < n {
				return true
			}
			return yield(i, v)
		})
	}
	return &cp
}

// StepBy keeps elements whose global index is a multiple of step.
func (it *Iter[T]) StepBy(step int) *Iter[T] {
	if step <= 0 {
		panic("array: StepBy step must be positive")
	}
	prev := it.drive
	cp := *it
	cp.drive = func(lo, hi int, yield func(int, T) bool) {
		prev(lo, hi, func(i int, v T) bool {
			if i%step != 0 {
				return true
			}
			return yield(i, v)
		})
	}
	return &cp
}

// Take keeps elements with global index < n.
func (it *Iter[T]) Take(n int) *Iter[T] {
	prev := it.drive
	cp := *it
	cp.drive = func(lo, hi int, yield func(int, T) bool) {
		prev(lo, hi, func(i int, v T) bool {
			if i >= n {
				return true
			}
			return yield(i, v)
		})
	}
	return &cp
}

// Map transforms elements with f (free function: the element type changes).
func Map[T, U any](it *Iter[T], f func(T) U) *Iter[U] {
	prev := it.drive
	return &Iter[U]{
		w: it.w, mode: it.mode, positions: it.positions, chunk: it.chunk,
		drive: func(lo, hi int, yield func(int, U) bool) {
			prev(lo, hi, func(i int, v T) bool {
				return yield(i, f(v))
			})
		},
	}
}

// Zip pairs two iterators position-wise (apply before Filter: both sides
// must drive the same base positions, as with Rust's zip of two local
// iterators).
func Zip[A, B any](a *Iter[A], b *Iter[B]) *Iter[Pair[A, B]] {
	if a.positions != b.positions {
		panic(fmt.Sprintf("array: Zip of iterators with %d and %d positions", a.positions, b.positions))
	}
	ad, bd := a.drive, b.drive
	return &Iter[Pair[A, B]]{
		w: a.w, mode: a.mode, positions: a.positions, chunk: a.chunk,
		drive: func(lo, hi int, yield func(int, Pair[A, B]) bool) {
			var bv []B
			bd(lo, hi, func(_ int, v B) bool { bv = append(bv, v); return true })
			k := 0
			ad(lo, hi, func(i int, v A) bool {
				if k >= len(bv) {
					return false
				}
				p := Pair[A, B]{A: v, B: bv[k]}
				k++
				return yield(i, p)
			})
		},
	}
}

// FilterMap transforms and filters in one pass.
func FilterMap[T, U any](it *Iter[T], f func(T) (U, bool)) *Iter[U] {
	prev := it.drive
	return &Iter[U]{
		w: it.w, mode: it.mode, positions: it.positions, chunk: it.chunk,
		drive: func(lo, hi int, yield func(int, U) bool) {
			prev(lo, hi, func(i int, v T) bool {
				u, ok := f(v)
				if !ok {
					return true
				}
				return yield(i, u)
			})
		},
	}
}

// runChunks schedules per-chunk tasks and resolves when all complete.
func (it *Iter[T]) runChunks(perChunk func(lo, hi int)) *scheduler.Future[struct{}] {
	promise, future := scheduler.NewPromise[struct{}](nil)
	n := it.positions
	if n == 0 {
		promise.Complete(struct{}{})
		return future
	}
	chunks := (n + it.chunk - 1) / it.chunk
	var pending atomic.Int64
	pending.Store(int64(chunks))
	for lo := 0; lo < n; lo += it.chunk {
		lo := lo
		hi := lo + it.chunk
		if hi > n {
			hi = n
		}
		it.w.pool.Submit(func() {
			perChunk(lo, hi)
			if pending.Add(-1) == 0 {
				promise.Complete(struct{}{})
			}
		})
	}
	return future
}

// ForEach applies fn to every element; resolve the returned future to know
// the calling PE's share completed (await it, per the paper).
func (it *Iter[T]) ForEach(fn func(T)) *scheduler.Future[struct{}] {
	return it.runChunks(func(lo, hi int) {
		it.drive(lo, hi, func(_ int, v T) bool { fn(v); return true })
	})
}

// ForEachIndexed applies fn(index, value) to every element.
func (it *Iter[T]) ForEachIndexed(fn func(int, T)) *scheduler.Future[struct{}] {
	return it.runChunks(func(lo, hi int) {
		it.drive(lo, hi, func(i int, v T) bool { fn(i, v); return true })
	})
}

// Collect gathers this PE's surviving elements in ascending index order.
func (it *Iter[T]) Collect() *scheduler.Future[[]T] {
	n := it.positions
	chunks := (n + it.chunk - 1) / it.chunk
	parts := make([][]T, chunks)
	inner := it.runChunks(func(lo, hi int) {
		var part []T
		it.drive(lo, hi, func(_ int, v T) bool { part = append(part, v); return true })
		parts[lo/it.chunk] = part
	})
	return scheduler.Map(inner, func(struct{}) []T {
		var out []T
		for _, p := range parts {
			out = append(out, p...)
		}
		return out
	})
}

// CollectIndexed gathers (index, value) pairs in ascending index order.
func CollectIndexed[T any](it *Iter[T]) *scheduler.Future[[]Indexed[T]] {
	return Enumerate(it).Collect()
}

// Count resolves with the number of surviving elements on this PE.
func (it *Iter[T]) Count() *scheduler.Future[int] {
	var n atomic.Int64
	inner := it.runChunks(func(lo, hi int) {
		it.drive(lo, hi, func(int, T) bool { n.Add(1); return true })
	})
	return scheduler.Map(inner, func(struct{}) int { return int(n.Load()) })
}

// Reduce folds this PE's elements with fn (fn must be associative and
// commutative; chunks fold in parallel).
func (it *Iter[T]) Reduce(zero T, fn func(a, b T) T) *scheduler.Future[T] {
	var mu sync.Mutex
	acc := zero
	inner := it.runChunks(func(lo, hi int) {
		part := zero
		it.drive(lo, hi, func(_ int, v T) bool { part = fn(part, v); return true })
		mu.Lock()
		acc = fn(acc, part)
		mu.Unlock()
	})
	return scheduler.Map(inner, func(struct{}) T { return acc })
}

// ----- distributed collect ---------------------------------------------------

// CollectArray collectively gathers every PE's surviving elements into a
// fresh distributed ReadOnlyArray ordered by (PE chunk order, index). All
// PEs of the team must call it (DistIter terminals are collective). This
// is the iterator used by the paper's Randperm "Array Darts" variant.
func CollectArray[T serde.Number](it *Iter[T], team teamOwner[T], dist Distribution) *ReadOnlyArray[T] {
	if it.mode != modeDist {
		panic("array: CollectArray requires a DistIter")
	}
	local, err := it.Collect().Await()
	if err != nil {
		panic(err)
	}
	return collectToArray(team.teamCore(), local, dist)
}

// teamOwner lets CollectArray take any array-kind wrapper as its team
// anchor without exposing core.
type teamOwner[T serde.Number] interface{ teamCore() *core[T] }

func (a *UnsafeArray[T]) teamCore() *core[T]    { return a.c }
func (a *ReadOnlyArray[T]) teamCore() *core[T]  { return a.c }
func (a *AtomicArray[T]) teamCore() *core[T]    { return a.c }
func (a *LocalLockArray[T]) teamCore() *core[T] { return a.c }

// collectToArray builds a new distributed array from per-PE ordered
// contributions: allgather the counts, exclusive-prefix to find each PE's
// offset, construct, put, and freeze read-only.
func collectToArray[T serde.Number](c *core[T], local []T, dist Distribution) *ReadOnlyArray[T] {
	team := c.team
	enc := serde.NewEncoder(8)
	enc.PutUvarint(uint64(len(local)))
	counts := team.AllGatherBytes(enc.Bytes())
	offset, total := 0, 0
	for r, b := range counts {
		n := int(serde.NewDecoder(b).Uvarint())
		if r < team.Rank() {
			offset += n
		}
		total += n
	}
	out := NewUnsafeArray[T](team, total, dist)
	if len(local) > 0 {
		if _, err := out.Put(offset, local).Await(); err != nil {
			panic(err)
		}
	}
	team.Barrier()
	return out.IntoReadOnly()
}

// ----- one-sided iterator ------------------------------------------------------

// OneSidedIter serially iterates the whole array from the calling PE,
// fetching runtime-managed buffered chunks from remote PEs.
type OneSidedIter[T serde.Number] struct {
	c    *core[T]
	buf  int
	skip int
	step int
	take int
}

func newOneSided[T serde.Number](c *core[T], bufElems int) *OneSidedIter[T] {
	if bufElems < 1 {
		bufElems = 4096
	}
	return &OneSidedIter[T]{c: c, buf: bufElems, step: 1, take: -1}
}

// Skip drops the first n elements.
func (o *OneSidedIter[T]) Skip(n int) *OneSidedIter[T] {
	cp := *o
	cp.skip = n
	return &cp
}

// StepBy keeps every step-th element after Skip.
func (o *OneSidedIter[T]) StepBy(step int) *OneSidedIter[T] {
	if step <= 0 {
		panic("array: StepBy step must be positive")
	}
	cp := *o
	cp.step = step
	return &cp
}

// Take limits the iteration to n yielded elements.
func (o *OneSidedIter[T]) Take(n int) *OneSidedIter[T] {
	cp := *o
	cp.take = n
	return &cp
}

// Seq iterates (index, value) pairs; usable with range-over-func. Data
// moves in buffered batches so remote transfer count is O(len/buf).
func (o *OneSidedIter[T]) Seq() iter.Seq2[int, T] {
	return func(yield func(int, T) bool) {
		yielded := 0
		for base := o.skip; base < o.c.len; base += o.buf {
			end := base + o.buf
			if end > o.c.len {
				end = o.c.len
			}
			vals, err := o.c.getRange(base, end-base).Await()
			if err != nil {
				panic(fmt.Sprintf("array: one-sided iteration: %v", err))
			}
			for i, v := range vals {
				g := base + i
				if (g-o.skip)%o.step != 0 {
					continue
				}
				if o.take >= 0 && yielded >= o.take {
					return
				}
				if !yield(g, v) {
					return
				}
				yielded++
			}
		}
	}
}

// Chunks yields successive value buffers of at most n elements.
func (o *OneSidedIter[T]) Chunks(n int) iter.Seq[[]T] {
	if n < 1 {
		panic("array: chunk size must be positive")
	}
	return func(yield func([]T) bool) {
		var pending []T
		for _, v := range o.Seq() {
			pending = append(pending, v)
			if len(pending) == n {
				if !yield(pending) {
					return
				}
				pending = nil
			}
		}
		if len(pending) > 0 {
			yield(pending)
		}
	}
}

// CollectVec materializes the full (post skip/step/take) element sequence.
func (o *OneSidedIter[T]) CollectVec() []T {
	var out []T
	for _, v := range o.Seq() {
		out = append(out, v)
	}
	return out
}

// ZipOneSided pairs two one-sided iterations element-wise.
func ZipOneSided[A, B serde.Number](a *OneSidedIter[A], b *OneSidedIter[B]) iter.Seq[Pair[A, B]] {
	return func(yield func(Pair[A, B]) bool) {
		next, stop := iter.Pull2(b.Seq())
		defer stop()
		for _, av := range a.Seq() {
			_, bv, ok := next()
			if !ok {
				return
			}
			if !yield(Pair[A, B]{A: av, B: bv}) {
				return
			}
		}
	}
}

// ----- per-kind iterator constructors ----------------------------------------

// DistIter returns the collective distributed iterator (call on all PEs).
func (a *AtomicArray[T]) DistIter() *Iter[T] { return baseIter(a.c, modeDist) }

// LocalIter returns the one-sided local iterator.
func (a *AtomicArray[T]) LocalIter() *Iter[T] { return baseIter(a.c, modeLocal) }

// OneSidedIter returns the serial whole-array iterator.
func (a *AtomicArray[T]) OneSidedIter(bufElems int) *OneSidedIter[T] {
	return newOneSided(a.c, bufElems)
}

// DistIter returns the collective distributed iterator (call on all PEs).
func (a *ReadOnlyArray[T]) DistIter() *Iter[T] { return baseIter(a.c, modeDist) }

// LocalIter returns the one-sided local iterator.
func (a *ReadOnlyArray[T]) LocalIter() *Iter[T] { return baseIter(a.c, modeLocal) }

// OneSidedIter returns the serial whole-array iterator.
func (a *ReadOnlyArray[T]) OneSidedIter(bufElems int) *OneSidedIter[T] {
	return newOneSided(a.c, bufElems)
}

// DistIter returns the collective distributed iterator (call on all PEs).
func (a *LocalLockArray[T]) DistIter() *Iter[T] { return baseIter(a.c, modeDist) }

// LocalIter returns the one-sided local iterator.
func (a *LocalLockArray[T]) LocalIter() *Iter[T] { return baseIter(a.c, modeLocal) }

// OneSidedIter returns the serial whole-array iterator.
func (a *LocalLockArray[T]) OneSidedIter(bufElems int) *OneSidedIter[T] {
	return newOneSided(a.c, bufElems)
}

// DistIter returns the collective distributed iterator (call on all PEs).
func (a *UnsafeArray[T]) DistIter() *Iter[T] { return baseIter(a.c, modeDist) }

// LocalIter returns the one-sided local iterator.
func (a *UnsafeArray[T]) LocalIter() *Iter[T] { return baseIter(a.c, modeLocal) }

// OneSidedIter returns the serial whole-array iterator.
func (a *UnsafeArray[T]) OneSidedIter(bufElems int) *OneSidedIter[T] {
	return newOneSided(a.c, bufElems)
}

// Chunks groups consecutive surviving elements into buffers of at most n
// (the LocalIterator chunks method). Free function: the element type
// changes to []T. The chunk index is the index of its first element.
func Chunks[T any](it *Iter[T], n int) *Iter[[]T] {
	if n < 1 {
		panic("array: chunk size must be positive")
	}
	prev := it.drive
	return &Iter[[]T]{
		w: it.w, mode: it.mode, positions: it.positions, chunk: it.chunk,
		drive: func(lo, hi int, yield func(int, []T) bool) {
			var cur []T
			curIdx := -1
			prev(lo, hi, func(i int, v T) bool {
				if curIdx < 0 {
					curIdx = i
				}
				cur = append(cur, v)
				if len(cur) == n {
					ok := yield(curIdx, cur)
					cur, curIdx = nil, -1
					return ok
				}
				return true
			})
			if len(cur) > 0 {
				yield(curIdx, cur)
			}
		},
	}
}

// Sum folds this PE's numeric elements (a Reduce convenience).
func IterSum[T serde.Number](it *Iter[T]) *scheduler.Future[T] {
	return it.Reduce(0, func(a, b T) T { return a + b })
}

// Max resolves with this PE's maximum element (zero value if none).
func IterMax[T serde.Number](it *Iter[T]) *scheduler.Future[T] {
	var mu sync.Mutex
	var best T
	have := false
	inner := it.runChunks(func(lo, hi int) {
		var localBest T
		localHave := false
		it.drive(lo, hi, func(_ int, v T) bool {
			if !localHave || v > localBest {
				localBest, localHave = v, true
			}
			return true
		})
		if localHave {
			mu.Lock()
			if !have || localBest > best {
				best, have = localBest, true
			}
			mu.Unlock()
		}
	})
	return scheduler.Map(inner, func(struct{}) T { return best })
}

// Min resolves with this PE's minimum element (zero value if none).
func IterMin[T serde.Number](it *Iter[T]) *scheduler.Future[T] {
	var mu sync.Mutex
	var best T
	have := false
	inner := it.runChunks(func(lo, hi int) {
		var localBest T
		localHave := false
		it.drive(lo, hi, func(_ int, v T) bool {
			if !localHave || v < localBest {
				localBest, localHave = v, true
			}
			return true
		})
		if localHave {
			mu.Lock()
			if !have || localBest < best {
				best, have = localBest, true
			}
			mu.Unlock()
		}
	})
	return scheduler.Map(inner, func(struct{}) T { return best })
}
