package array

import (
	"sync/atomic"

	"repro/internal/runtime"
	"repro/internal/scheduler"
	"repro/internal/serde"
)

// RDMA-like operations (§III-F2). Safe kinds emulate put/get with
// owner-side AMs so all access to a remote PE's data is managed by that
// PE; UnsafeArray additionally exposes direct RDMA (*Unchecked), and
// ReadOnlyArray exposes a direct RDMA get (its data cannot change).

// putRange writes vals at view-relative index start, splitting the run by
// owning PE and dispatching owner-side range-put AMs.
func (c *core[T]) putRange(start int, vals []T) *scheduler.Future[struct{}] {
	if len(vals) == 0 {
		promise, future := scheduler.NewPromise[struct{}](c.w.Pool())
		promise.Complete(struct{}{})
		return future
	}
	g := c.globalIndex(start)
	if start+len(vals) > c.len {
		panic("array: put past end of array view")
	}
	type run struct {
		rank, local, off, n int
	}
	var runs []run
	c.st.geom.blockRanges(g, len(vals), func(rank, local, gIdx, runLen int) {
		runs = append(runs, run{rank, local, gIdx - g, runLen})
	})
	cd, future := scheduler.NewCountdown[struct{}](c.w.Pool(), len(runs), nil)
	for _, r := range runs {
		r := r
		destPE := c.team.WorldPE(r.rank)
		seg := vals[r.off : r.off+r.n]
		if destPE == c.w.MyPE() {
			c.w.Pool().Submit(func() {
				cd.Done(c.st.applyRange(destPE, r.rank, r.local, seg))
			})
			continue
		}
		am := &rangePutAM[T]{ID: c.st.id, Start: r.local, Vals: seg}
		c.w.ExecAMReturn(destPE, am).OnDone(func(_ any, err error) { cd.Done(err) })
	}
	return future
}

// getRange reads n elements at view-relative index start via owner-side
// range-get AMs, preserving order.
func (c *core[T]) getRange(start, n int) *scheduler.Future[[]T] {
	if n == 0 {
		promise, future := scheduler.NewPromise[[]T](c.w.Pool())
		promise.Complete(nil)
		return future
	}
	g := c.globalIndex(start)
	if start+n > c.len {
		panic("array: get past end of array view")
	}
	out := make([]T, n)
	type run struct {
		rank, local, off, n int
	}
	var runs []run
	c.st.geom.blockRanges(g, n, func(rank, local, gIdx, runLen int) {
		runs = append(runs, run{rank, local, gIdx - g, runLen})
	})
	cd, future := scheduler.NewCountdown(c.w.Pool(), len(runs), func() []T { return out })
	for _, r := range runs {
		r := r
		destPE := c.team.WorldPE(r.rank)
		if destPE == c.w.MyPE() {
			c.w.Pool().Submit(func() {
				vals, err := c.st.readRange(destPE, r.rank, r.local, r.n)
				if err == nil {
					copy(out[r.off:], vals)
				}
				cd.Done(err)
			})
			continue
		}
		am := &rangeGetAM[T]{ID: c.st.id, Start: r.local, N: r.n}
		runtime.ExecTyped[[]T](c.w, destPE, am).OnDone(func(vals []T, err error) {
			if err == nil {
				copy(out[r.off:], vals)
			}
			cd.Done(err)
		})
	}
	return future
}

// putDirect performs an RDMA put straight into the owners' memory with no
// access control — the "unchecked" path of Fig. 2. The caller must
// guarantee no concurrent access, as with raw memory regions.
func (c *core[T]) putDirect(start int, vals []T) {
	if len(vals) == 0 {
		return
	}
	g := c.globalIndex(start)
	if start+len(vals) > c.len {
		panic("array: put past end of array view")
	}
	me := c.w.MyPE()
	c.st.geom.blockRanges(g, len(vals), func(rank, local, gIdx, runLen int) {
		off := gIdx - g
		c.st.region.Put(me, c.team.WorldPE(rank), local, vals[off:off+runLen])
	})
}

// getDirect performs an RDMA get straight from the owners' memory.
func (c *core[T]) getDirect(start, n int) []T {
	out := make([]T, n)
	if n == 0 {
		return out
	}
	g := c.globalIndex(start)
	if start+n > c.len {
		panic("array: get past end of array view")
	}
	me := c.w.MyPE()
	c.st.geom.blockRanges(g, n, func(rank, local, gIdx, runLen int) {
		off := gIdx - g
		c.st.region.Get(me, c.team.WorldPE(rank), local, out[off:off+runLen])
	})
	return out
}

// bigPut chooses the transfer method by size like the paper's UnsafeArray
// (§IV-A): below the aggregation threshold data travels inside Vec-style
// AMs; above it the owner pulls the run via RDMA (one small descriptor AM
// plus a bulk transfer at RDMA cost), reproducing the Fig. 2 crossover.
func (c *core[T]) bigPut(start int, vals []T) *scheduler.Future[struct{}] {
	threshold := c.w.Config().AggThresholdBytes / max(1, c.st.region.ElemSize())
	if len(vals) <= threshold {
		return c.putRange(start, vals)
	}
	// Owner-pull: write into a staging region we own, then ask each owner
	// to RDMA-get its run. The get is accounted to the owner (the target
	// initiates, matching the paper's description).
	promise, future := scheduler.NewPromise[struct{}](c.w.Pool())
	g := c.globalIndex(start)
	me := c.w.MyPE()
	type run struct{ rank, local, off, n int }
	var runs []run
	c.st.geom.blockRanges(g, len(vals), func(rank, local, gIdx, runLen int) {
		runs = append(runs, run{rank, local, gIdx - g, runLen})
	})
	var pending atomic.Int64
	pending.Store(int64(len(runs)))
	for _, r := range runs {
		r := r
		destPE := c.team.WorldPE(r.rank)
		seg := vals[r.off : r.off+r.n]
		if destPE == me {
			c.w.Pool().Submit(func() {
				_ = c.st.applyRange(destPE, r.rank, r.local, seg)
				if pending.Add(-1) == 0 {
					promise.Complete(struct{}{})
				}
			})
			continue
		}
		// The direct region write models the owner-side RDMA pull: one
		// small AM (the descriptor) plus a bulk transfer at RDMA cost.
		am := &pullNotifyAM[T]{ID: c.st.id, Start: r.local, N: r.n, SrcPE: me}
		c.st.pullStage(me, destPE, r.local, seg)
		c.w.ExecAMReturn(destPE, am).OnDone(func(_ any, err error) {
			if pending.Add(-1) == 0 {
				promise.Complete(struct{}{})
			}
		})
	}
	return future
}

// pullStage stages data for an owner-side pull. In the simulation the
// bytes are written through the fabric (accounted at RDMA cost) into the
// owner's memory directly; the notify AM then applies kind semantics.
func (s *sharedState[T]) pullStage(srcPE, dstPE, local int, vals []T) {
	s.region.Put(srcPE, dstPE, local, vals)
}

// pullNotifyAM tells the owner that a staged run landed; the owner
// re-applies its safety guarantee over the landed range (for UnsafeArray
// this is a no-op beyond bookkeeping).
type pullNotifyAM[T serde.Number] struct {
	ID    uint64
	Start int
	N     int
	SrcPE int
}

func (a *pullNotifyAM[T]) MarshalLamellar(e *serde.Encoder) {
	e.PutUvarint(a.ID)
	e.PutInt(a.Start)
	e.PutInt(a.N)
	e.PutInt(a.SrcPE)
}

func (a *pullNotifyAM[T]) UnmarshalLamellar(d *serde.Decoder) error {
	a.ID = d.Uvarint()
	a.Start = d.Int()
	a.N = d.Int()
	a.SrcPE = d.Int()
	return d.Err()
}

func (a *pullNotifyAM[T]) Exec(ctx *runtime.Context) any {
	// Data already landed via the staged RDMA write; nothing to move.
	return nil
}
