//go:build !race

package array

// raceDetectorEnabled reports whether this binary was built with the Go
// race detector. The store run kernels in agg.go branch on it: plain
// word-sized stores honor the atomicity contract on every Go platform,
// but the race detector models them as data races against atomic
// readers, so race builds keep sync/atomic stores.
const raceDetectorEnabled = false
