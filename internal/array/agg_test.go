package array

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/runtime"
)

// aggTestCfg isolates the array aggregation layer's own flush triggers:
// its thresholds are pushed far out so only the trigger under test can
// drain the buffers, the runtime-level envelope queue sends immediately
// (AggThresholdBytes: 1) so a dispatched batch is delivered without a
// runtime flush cycle, and the background flusher runs at 250 ms — far
// beyond any sub-100 ms "must not deliver" window, but still present
// because the shutdown quiescence protocol relies on it to drain
// completion acks.
func aggTestCfg(pes int) runtime.Config {
	return runtime.Config{
		PEs:               pes,
		Lamellae:          runtime.LamellaeShmem,
		AggBufSize:        1 << 30,
		AggFlushOps:       1 << 30,
		AggThresholdBytes: 1,
		FlushInterval:     250 * time.Millisecond,
	}
}

// remoteIdx returns an index owned by the other PE of a 2-PE world.
func remoteIdx(me, glen int) int {
	if me == 0 {
		return glen - 1 // owned by PE 1 under Block
	}
	return 0 // owned by PE 0
}

func TestAggFlushOnOpThreshold(t *testing.T) {
	cfg := aggTestCfg(2)
	cfg.AggFlushOps = 8
	const glen = 64
	err := runtime.Run(cfg, func(w *runtime.World) {
		a := NewAtomicArray[uint64](w.Team(), glen, Block)
		defer a.Drop()
		if w.MyPE() == 0 {
			peer := a.c.st.region.Local(1) // PE1's chunk: run targets land at offsets 0..7
			// 7 ops: below the cap, so nothing may flush on its own.
			for k := 0; k < 7; k++ {
				a.BatchOpVals(OpStore, []int{glen/2 + k}, []uint64{uint64(k + 1)})
			}
			time.Sleep(50 * time.Millisecond)
			for k := 0; k < 7; k++ {
				if got := atomic.LoadUint64(&peer[k]); got != 0 {
					t.Errorf("PE0: op %d delivered below AggFlushOps (got %d)", k, got)
				}
			}
			// The 8th op crosses AggFlushOps and must trigger dispatch
			// without any WaitAll/Barrier/Await.
			a.BatchOpVals(OpStore, []int{glen/2 + 7}, []uint64{8})
			deadline := time.Now().Add(2 * time.Second)
			for {
				done := true
				for k := 0; k < 8; k++ {
					if atomic.LoadUint64(&peer[k]) != uint64(k+1) {
						done = false
						break
					}
				}
				if done {
					break
				}
				if time.Now().After(deadline) {
					t.Errorf("PE0: agg buffer did not flush after crossing AggFlushOps")
					break
				}
				time.Sleep(time.Millisecond)
			}
		}
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAggFlushOnQuiesce(t *testing.T) {
	const glen = 128
	err := runtime.Run(aggTestCfg(2), func(w *runtime.World) {
		a := NewAtomicArray[uint64](w.Team(), glen, Block)
		defer a.Drop()
		me := w.MyPE()
		// Each PE stores into the other PE's half; thresholds are huge, so
		// only WaitAll's flush cycle can deliver these.
		base := (1 - me) * (glen / 2)
		idxs := make([]int, glen/2)
		vals := make([]uint64, glen/2)
		for k := range idxs {
			idxs[k] = base + k
			vals[k] = uint64(me*1000 + k)
		}
		a.BatchOpVals(OpStore, idxs, vals)
		w.WaitAll()
		w.Barrier()
		local := a.LocalData()
		want := uint64((1 - me) * 1000)
		for k, got := range local {
			if got != want+uint64(k) {
				t.Errorf("PE%d: local[%d] = %d, want %d", me, k, got, want+uint64(k))
				break
			}
		}
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAggExplicitFlush(t *testing.T) {
	const glen = 64
	err := runtime.Run(aggTestCfg(2), func(w *runtime.World) {
		a := NewAtomicArray[uint64](w.Team(), glen, Block)
		defer a.Drop()
		if w.MyPE() == 0 {
			idx := remoteIdx(0, glen)
			a.BatchOpVals(OpStore, []int{idx}, []uint64{42})
			a.FlushBatches()
			deadline := time.Now().Add(2 * time.Second)
			half := glen / 2
			peer := a.c.st.region.Local(1)
			for atomic.LoadUint64(&peer[idx-half]) != 42 {
				if time.Now().After(deadline) {
					t.Error("PE0: FlushBatches did not dispatch the buffered op")
					break
				}
				time.Sleep(time.Millisecond)
			}
		}
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAggAwaitFlushes(t *testing.T) {
	// Awaiting a buffered op's future must flush the buffers itself via
	// the await hook — thresholds are out of reach, so without the hook
	// this would stall until the background flusher fires.
	const glen = 64
	err := runtime.Run(aggTestCfg(2), func(w *runtime.World) {
		a := NewAtomicArray[uint64](w.Team(), glen, Block)
		defer a.Drop()
		me := w.MyPE()
		f := a.BatchFetchOp(OpAdd, []int{remoteIdx(me, glen)}, 5)
		prev, err := f.Await()
		if err != nil {
			t.Errorf("PE%d: %v", me, err)
		} else if len(prev) != 1 {
			t.Errorf("PE%d: got %d results, want 1", me, len(prev))
		}
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAggFetchOrdering(t *testing.T) {
	// Repeated fetch-adds on the same remote element buffered into ONE
	// aggregation buffer apply in submission order at the destination, so
	// the previous values must come back as exactly 0..N-1.
	const N = 100
	err := runtime.Run(aggTestCfg(2), func(w *runtime.World) {
		a := NewAtomicArray[uint64](w.Team(), 8, Block)
		defer a.Drop()
		if w.MyPE() == 0 {
			idx := 7 // owned by PE 1
			idxs := make([]int, N)
			for k := range idxs {
				idxs[k] = idx
			}
			f := a.BatchFetchOp(OpAdd, idxs, 1)
			prev, err := f.Await()
			if err != nil {
				t.Fatal(err)
			}
			for k, p := range prev {
				if p != uint64(k) {
					t.Fatalf("fetch-add %d returned %d, want %d (per-destination order violated)", k, p, k)
				}
			}
		}
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAggMixedOpsOneBuffer(t *testing.T) {
	// Different op types interleaved into the same destination buffer must
	// apply sequentially with correct per-op semantics.
	err := runtime.Run(aggTestCfg(2), func(w *runtime.World) {
		a := NewAtomicArray[uint64](w.Team(), 8, Block)
		defer a.Drop()
		if w.MyPE() == 0 {
			idx := []int{6} // owned by PE 1
			a.BatchOpVals(OpStore, idx, []uint64{10})
			a.BatchOpVals(OpAdd, idx, []uint64{5})
			fSwap := a.BatchOpVals(OpSwap, idx, []uint64{100})
			fCASMiss := a.BatchCompareExchange(idx, 999, []uint64{1})
			fCASHit := a.BatchCompareExchange(idx, 100, []uint64{77})
			fLoad := a.BatchLoad(idx)

			if v := mustOne(t, fSwap); v != 15 {
				t.Errorf("swap returned %d, want 15", v)
			}
			if v := mustOne(t, fCASMiss); v != 100 {
				t.Errorf("missing CAS returned %d, want 100", v)
			}
			if v := mustOne(t, fCASHit); v != 100 {
				t.Errorf("hitting CAS returned %d, want 100", v)
			}
			if v := mustOne(t, fLoad); v != 77 {
				t.Errorf("load returned %d, want 77", v)
			}
		}
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func mustOne(t *testing.T, f interface{ Await() ([]uint64, error) }) uint64 {
	t.Helper()
	vs, err := f.Await()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 {
		t.Fatalf("got %d results, want 1", len(vs))
	}
	return vs[0]
}

func TestAggContiguousRuns(t *testing.T) {
	// A contiguous remote store collapses into run entries and must land
	// element-for-element; a fetch over the same range must read it back
	// in order.
	const glen = 1 << 12
	err := runtime.Run(aggTestCfg(2), func(w *runtime.World) {
		a := NewAtomicArray[uint64](w.Team(), glen, Block)
		defer a.Drop()
		me := w.MyPE()
		base := (1 - me) * (glen / 2)
		n := glen / 2
		idxs := make([]int, n)
		vals := make([]uint64, n)
		for k := 0; k < n; k++ {
			idxs[k] = base + k
			vals[k] = uint64(me+1)*1_000_000 + uint64(k)
		}
		if _, err := runtime.BlockOn(w, a.BatchOpVals(OpStore, idxs, vals)); err != nil {
			t.Fatal(err)
		}
		got, err := runtime.BlockOn(w, a.BatchLoad(idxs))
		if err != nil {
			t.Fatal(err)
		}
		for k := range got {
			if got[k] != vals[k] {
				t.Fatalf("PE%d: elem %d = %d, want %d", me, k, got[k], vals[k])
			}
		}
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAggDisabled(t *testing.T) {
	// AggBufSize < 0 must take the direct per-batch path and still be
	// correct (this is the pre-aggregation behavior and the noagg bench
	// series).
	cfg := runtime.Config{PEs: 2, Lamellae: runtime.LamellaeShmem, AggBufSize: -1}
	err := runtime.Run(cfg, func(w *runtime.World) {
		a := NewAtomicArray[uint64](w.Team(), 64, Block)
		defer a.Drop()
		me := w.MyPE()
		idx := remoteIdx(me, 64)
		if _, err := runtime.BlockOn(w, a.BatchFetchOp(OpAdd, []int{idx}, uint64(me+1))); err != nil {
			t.Fatal(err)
		}
		w.Barrier()
		local := a.LocalData()
		want := uint64(2 - me) // the other PE's me+1
		var got uint64
		if me == 0 {
			got = local[0]
		} else {
			got = local[len(local)-1]
		}
		if got != want {
			t.Errorf("PE%d: got %d, want %d", me, got, want)
		}
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAggLocalLockAndUnsafe(t *testing.T) {
	// The aggregated path must honor kind semantics for the other
	// aggregating array flavors too.
	const glen = 256
	err := runtime.Run(aggTestCfg(2), func(w *runtime.World) {
		ll := NewLocalLockArray[int64](w.Team(), glen, Block)
		me := w.MyPE()
		base := (1 - me) * (glen / 2)
		n := glen / 2
		idxs := make([]int, n)
		vals := make([]int64, n)
		for k := 0; k < n; k++ {
			idxs[k] = base + k
			vals[k] = int64(k)
		}
		if _, err := runtime.BlockOn(w, ll.BatchOpVals(OpAdd, idxs, vals)); err != nil {
			t.Fatal(err)
		}
		w.Barrier()
		ll.ReadLocal(func(data []int64) {
			for k, got := range data {
				if got != int64(k) {
					t.Fatalf("PE%d: locallock[%d] = %d, want %d", me, k, got, k)
				}
			}
		})
		w.Barrier()
		ll.Drop()

		ua := NewUnsafeArray[int64](w.Team(), glen, Block)
		defer ua.Drop()
		if _, err := runtime.BlockOn(w, ua.BatchOpVals(OpStore, idxs, vals)); err != nil {
			t.Fatal(err)
		}
		w.Barrier()
		for k, got := range ua.LocalData() {
			if got != int64(k) {
				t.Fatalf("PE%d: unsafe[%d] = %d, want %d", me, k, got, k)
			}
		}
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAggCyclicDistribution(t *testing.T) {
	// Cyclic layouts never merge runs; every element routes individually
	// through the buffers and must still land correctly.
	const glen = 97 // odd length exercises the remainder
	err := runtime.Run(aggTestCfg(2), func(w *runtime.World) {
		a := NewAtomicArray[uint64](w.Team(), glen, Cyclic)
		defer a.Drop()
		if w.MyPE() == 0 {
			idxs := make([]int, glen)
			vals := make([]uint64, glen)
			for k := 0; k < glen; k++ {
				idxs[k] = k
				vals[k] = uint64(k * 3)
			}
			if _, err := runtime.BlockOn(w, a.BatchOpVals(OpStore, idxs, vals)); err != nil {
				t.Fatal(err)
			}
			got, err := runtime.BlockOn(w, a.BatchLoad(idxs))
			if err != nil {
				t.Fatal(err)
			}
			for k := range got {
				if got[k] != uint64(k*3) {
					t.Fatalf("cyclic elem %d = %d, want %d", k, got[k], k*3)
				}
			}
		}
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAggConcurrentStress(t *testing.T) {
	// Many goroutines per PE hammering one array through the shared
	// aggregation buffers; the summed total must be exact. Run under
	// -race this exercises the shard locking and route resolution.
	const (
		glen    = 512
		workers = 8
		perG    = 200
	)
	cfg := runtime.Config{PEs: 2, Lamellae: runtime.LamellaeShmem, AggFlushOps: 64}
	err := runtime.Run(cfg, func(w *runtime.World) {
		a := NewAtomicArray[uint64](w.Team(), glen, Block)
		defer a.Drop()
		me := w.MyPE()
		var fetchSum atomic.Uint64
		done := make(chan struct{}, workers)
		for g := 0; g < workers; g++ {
			g := g
			go func() {
				defer func() { done <- struct{}{} }()
				for k := 0; k < perG; k++ {
					idx := (g*perG + k + me) % glen
					if k%10 == 0 {
						prev, err := a.BatchFetchOp(OpAdd, []int{idx}, 1).Await()
						if err != nil {
							t.Error(err)
							return
						}
						fetchSum.Add(prev[0]) // consume to keep the path honest
					} else {
						a.BatchAdd([]int{idx}, 1)
					}
				}
			}()
		}
		for g := 0; g < workers; g++ {
			<-done
		}
		w.WaitAll()
		w.Barrier()
		total, err := runtime.BlockOn(w, a.Sum())
		if err != nil {
			t.Fatal(err)
		}
		if want := uint64(2 * workers * perG); total != want {
			t.Errorf("PE%d: sum = %d, want %d", me, total, want)
		}
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}
