package array

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	stdruntime "runtime"

	"repro/internal/runtime"
	"repro/internal/scheduler"
	"repro/internal/serde"
)

// Op identifies an element-wise operation (§III-F3).
type Op uint8

// Element-wise operations supported by LamellarArrays.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpStore
	OpLoad
	OpSwap // store returning previous value (fetch implied)
	OpCAS  // compare-exchange (fetch implied: returns previous value)
)

func (o Op) String() string {
	names := [...]string{"add", "sub", "mul", "div", "rem", "and", "or", "xor",
		"shl", "shr", "store", "load", "swap", "cas"}
	if int(o) < len(names) {
		return names[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// isWrite reports whether the op mutates the element.
func (o Op) isWrite() bool { return o != OpLoad }

// applyScalar computes `cur op v` for the plain (non-atomic) path.
func applyScalar[T serde.Number](op Op, cur, v T) T {
	switch op {
	case OpAdd:
		return cur + v
	case OpSub:
		return cur - v
	case OpMul:
		return cur * v
	case OpDiv:
		return cur / v
	case OpRem:
		return remT(cur, v)
	case OpAnd:
		return bitT(cur, v, OpAnd)
	case OpOr:
		return bitT(cur, v, OpOr)
	case OpXor:
		return bitT(cur, v, OpXor)
	case OpShl:
		return bitT(cur, v, OpShl)
	case OpShr:
		return bitT(cur, v, OpShr)
	case OpStore, OpSwap:
		return v
	case OpLoad:
		return cur
	default:
		panic(fmt.Sprintf("array: applyScalar of %v", op))
	}
}

// remT computes cur % v for integer kinds; it panics for floats, matching
// the paper's operator set (modulo is integral).
func remT[T serde.Number](cur, v T) T {
	switch serde.KindOf[T]() {
	case 0: // integer kinds
		return T(int64(cur) % int64(v))
	default:
		panic("array: remainder on floating-point array")
	}
}

// bitT performs the bitwise ops on the integer bit pattern.
func bitT[T serde.Number](cur, v T, op Op) T {
	if serde.KindOf[T]() != 0 {
		panic(fmt.Sprintf("array: bitwise %v on floating-point array", op))
	}
	a, b := int64(cur), int64(v)
	switch op {
	case OpAnd:
		return T(a & b)
	case OpOr:
		return T(a | b)
	case OpXor:
		return T(a ^ b)
	case OpShl:
		return T(a << uint64(b))
	case OpShr:
		return T(a >> uint64(b))
	}
	panic("unreachable")
}

// ----- native atomics -------------------------------------------------------

func atomicLoadT[T serde.Number](p *T) T {
	switch pp := any(p).(type) {
	case *int32:
		return T(atomic.LoadInt32(pp))
	case *int64:
		return T(atomic.LoadInt64(pp))
	case *uint32:
		return T(atomic.LoadUint32(pp))
	case *uint64:
		return T(atomic.LoadUint64(pp))
	}
	panic("array: native atomic on unsupported type")
}

func atomicStoreT[T serde.Number](p *T, v T) {
	switch pp := any(p).(type) {
	case *int32:
		atomic.StoreInt32(pp, int32(v))
	case *int64:
		atomic.StoreInt64(pp, int64(v))
	case *uint32:
		atomic.StoreUint32(pp, uint32(v))
	case *uint64:
		atomic.StoreUint64(pp, uint64(v))
	default:
		panic("array: native atomic on unsupported type")
	}
}

func atomicSwapT[T serde.Number](p *T, v T) T {
	switch pp := any(p).(type) {
	case *int32:
		return T(atomic.SwapInt32(pp, int32(v)))
	case *int64:
		return T(atomic.SwapInt64(pp, int64(v)))
	case *uint32:
		return T(atomic.SwapUint32(pp, uint32(v)))
	case *uint64:
		return T(atomic.SwapUint64(pp, uint64(v)))
	}
	panic("array: native atomic on unsupported type")
}

func atomicAddT[T serde.Number](p *T, v T) T { // returns previous value
	switch pp := any(p).(type) {
	case *int32:
		return T(atomic.AddInt32(pp, int32(v)) - int32(v))
	case *int64:
		return T(atomic.AddInt64(pp, int64(v)) - int64(v))
	case *uint32:
		return T(atomic.AddUint32(pp, uint32(v)) - uint32(v))
	case *uint64:
		return T(atomic.AddUint64(pp, uint64(v)) - uint64(v))
	}
	panic("array: native atomic on unsupported type")
}

func atomicCAST[T serde.Number](p *T, old, new T) bool {
	switch pp := any(p).(type) {
	case *int32:
		return atomic.CompareAndSwapInt32(pp, int32(old), int32(new))
	case *int64:
		return atomic.CompareAndSwapInt64(pp, int64(old), int64(new))
	case *uint32:
		return atomic.CompareAndSwapUint32(pp, uint32(old), uint32(new))
	case *uint64:
		return atomic.CompareAndSwapUint64(pp, uint64(old), uint64(new))
	}
	panic("array: native atomic on unsupported type")
}

// nativeApply applies op to *p atomically, returning the previous value.
func nativeApply[T serde.Number](op Op, p *T, v, casOld T) (prev T) {
	switch op {
	case OpLoad:
		return atomicLoadT(p)
	case OpStore:
		// store still reports previous for the fetch variant's benefit
		return atomicSwapT(p, v)
	case OpSwap:
		return atomicSwapT(p, v)
	case OpAdd:
		return atomicAddT(p, v)
	case OpSub:
		return atomicAddT(p, 0-v)
	case OpCAS:
		for {
			cur := atomicLoadT(p)
			if cur != casOld {
				return cur
			}
			if atomicCAST(p, casOld, v) {
				return casOld
			}
		}
	default:
		// read-modify-write via CAS loop
		for {
			cur := atomicLoadT(p)
			next := applyScalar(op, cur, v)
			if atomicCAST(p, cur, next) {
				return cur
			}
		}
	}
}

// spin locks for GenericAtomicArray elements. Contended acquisition backs
// off exponentially: yield-only spinning first (the common, short critical
// sections), then progressively longer sleeps so a pile-up on one hot
// element stops burning whole cores.
func lockElem(l *atomic.Uint32) {
	for spins := 0; !l.CompareAndSwap(0, 1); spins++ {
		if spins < 8 {
			stdruntime.Gosched()
			continue
		}
		backoff := spins - 8
		if backoff > 6 {
			backoff = 6
		}
		time.Sleep((1 << backoff) * time.Microsecond) // 1µs .. 64µs
	}
}

func unlockElem(l *atomic.Uint32) { l.Store(0) }

// ----- owner-side batch application ----------------------------------------

// applyBatch executes a batch of same-op element accesses on rank's local
// data, honoring the array's current kind. vals has length 1 (broadcast)
// or len(local); casOld likewise for OpCAS. Returns previous values when
// fetch is set.
func (s *sharedState[T]) applyBatch(worldPE, rank int, op Op, fetch bool, local []int, vals, casOld []T) ([]T, error) {
	kind := Kind(s.kind.Load())
	if op.isWrite() && kind == KindReadOnly {
		return nil, fmt.Errorf("array: %v on ReadOnlyArray", op)
	}
	data := s.region.Local(worldPE)
	n := s.geom.localLen(rank)
	valAt := func(i int) T {
		if len(vals) == 0 {
			var zero T
			return zero
		}
		if len(vals) == 1 {
			return vals[0]
		}
		return vals[i]
	}
	oldAt := func(i int) T {
		if len(casOld) == 1 {
			return casOld[0]
		}
		return casOld[i]
	}
	var out []T
	if fetch || op == OpLoad || op == OpSwap || op == OpCAS {
		out = make([]T, len(local))
	}

	apply := func(plain bool) error {
		for i, li := range local {
			if li < 0 || li >= n {
				return fmt.Errorf("array: local index %d out of range [0,%d)", li, n)
			}
			v := valAt(i)
			switch {
			case plain:
				cur := data[li]
				var next T
				if op == OpCAS {
					next = cur
					if cur == oldAt(i) {
						next = v
					}
				} else {
					next = applyScalar(op, cur, v)
				}
				if op.isWrite() {
					data[li] = next
				}
				if out != nil {
					out[i] = cur
				}
			case kind == KindAtomic && s.native:
				var co T
				if op == OpCAS {
					co = oldAt(i)
				}
				prev := nativeApply(op, &data[li], v, co)
				if out != nil {
					out[i] = prev
				}
			default: // generic atomic: per-element spinlock
				l := &s.elocks[rank][li]
				lockElem(l)
				cur := data[li]
				var next T
				if op == OpCAS {
					next = cur
					if cur == oldAt(i) {
						next = v
					}
				} else {
					next = applyScalar(op, cur, v)
				}
				if op.isWrite() {
					data[li] = next
				}
				unlockElem(l)
				if out != nil {
					out[i] = cur
				}
			}
		}
		return nil
	}

	switch kind {
	case KindUnsafe, KindReadOnly:
		return out, apply(true)
	case KindAtomic:
		return out, apply(false)
	case KindLocalLock:
		lk := s.rwLocks[rank]
		if op.isWrite() {
			lk.Lock()
			defer lk.Unlock()
		} else {
			lk.RLock()
			defer lk.RUnlock()
		}
		return out, apply(true)
	default:
		return nil, fmt.Errorf("array: unknown kind %v", kind)
	}
}

// applyRange writes vals into rank's local data starting at local index
// start, honoring the kind's guarantee (the Fig. 2 put path).
func (s *sharedState[T]) applyRange(worldPE, rank, start int, vals []T) error {
	kind := Kind(s.kind.Load())
	if kind == KindReadOnly {
		return fmt.Errorf("array: put on ReadOnlyArray")
	}
	data := s.region.Local(worldPE)
	n := s.geom.localLen(rank)
	if start < 0 || start+len(vals) > n {
		return fmt.Errorf("array: range put [%d,%d) out of local range [0,%d)", start, start+len(vals), n)
	}
	switch kind {
	case KindUnsafe:
		copy(data[start:], vals) // plain memcopy
	case KindLocalLock:
		s.rwLocks[rank].Lock()
		copy(data[start:], vals)
		s.rwLocks[rank].Unlock()
	case KindAtomic:
		if s.native {
			for i, v := range vals {
				atomicStoreT(&data[start+i], v)
			}
		} else {
			for i, v := range vals {
				l := &s.elocks[rank][start+i]
				lockElem(l)
				data[start+i] = v
				unlockElem(l)
			}
		}
	}
	return nil
}

// readRange copies rank's local elements [start, start+n) out.
func (s *sharedState[T]) readRange(worldPE, rank, start, n int) ([]T, error) {
	kind := Kind(s.kind.Load())
	data := s.region.Local(worldPE)
	ll := s.geom.localLen(rank)
	if start < 0 || start+n > ll {
		return nil, fmt.Errorf("array: range get [%d,%d) out of local range [0,%d)", start, start+n, ll)
	}
	out := make([]T, n)
	switch kind {
	case KindLocalLock:
		s.rwLocks[rank].RLock()
		copy(out, data[start:start+n])
		s.rwLocks[rank].RUnlock()
	case KindAtomic:
		if s.native {
			for i := range out {
				out[i] = atomicLoadT(&data[start+i])
			}
		} else {
			for i := range out {
				l := &s.elocks[rank][start+i]
				lockElem(l)
				out[i] = data[start+i]
				unlockElem(l)
			}
		}
	default:
		copy(out, data[start:start+n])
	}
	return out, nil
}

// ----- wire AMs --------------------------------------------------------------

// opAM carries one destination sub-batch of element operations.
type opAM[T serde.Number] struct {
	ID     uint64
	Op     Op
	Fetch  bool
	Local  []int
	Vals   []T
	CasOld []T
}

func (a *opAM[T]) MarshalLamellar(e *serde.Encoder) {
	e.PutUvarint(a.ID)
	e.PutU8(uint8(a.Op))
	e.PutBool(a.Fetch)
	serde.EncodeFixedSlice(e, intsToU64(a.Local))
	serde.EncodeFixedSlice(e, a.Vals)
	serde.EncodeFixedSlice(e, a.CasOld)
}

func (a *opAM[T]) UnmarshalLamellar(d *serde.Decoder) error {
	a.ID = d.Uvarint()
	a.Op = Op(d.U8())
	a.Fetch = d.Bool()
	a.Local = u64ToInts(serde.DecodeFixedSlice[uint64](d))
	a.Vals = serde.DecodeFixedSlice[T](d)
	a.CasOld = serde.DecodeFixedSlice[T](d)
	return d.Err()
}

func (a *opAM[T]) Exec(ctx *runtime.Context) any {
	st, rank := lookupState[T](ctx, a.ID)
	out, err := st.applyBatch(ctx.World.MyPE(), rank, a.Op, a.Fetch, a.Local, a.Vals, a.CasOld)
	if err != nil {
		panic(err) // converted to an origin-side error by the runtime
	}
	if a.Fetch || a.Op == OpLoad || a.Op == OpSwap || a.Op == OpCAS {
		return out
	}
	return nil
}

// rangePutAM writes a contiguous run into the owner's local chunk.
type rangePutAM[T serde.Number] struct {
	ID    uint64
	Start int
	Vals  []T
}

func (a *rangePutAM[T]) MarshalLamellar(e *serde.Encoder) {
	e.PutUvarint(a.ID)
	e.PutInt(a.Start)
	serde.EncodeFixedSlice(e, a.Vals)
}

func (a *rangePutAM[T]) UnmarshalLamellar(d *serde.Decoder) error {
	a.ID = d.Uvarint()
	a.Start = d.Int()
	a.Vals = serde.DecodeFixedSlice[T](d)
	return d.Err()
}

func (a *rangePutAM[T]) Exec(ctx *runtime.Context) any {
	st, rank := lookupState[T](ctx, a.ID)
	if err := st.applyRange(ctx.World.MyPE(), rank, a.Start, a.Vals); err != nil {
		panic(err)
	}
	return nil
}

// rangeGetAM reads a contiguous run from the owner's local chunk.
type rangeGetAM[T serde.Number] struct {
	ID    uint64
	Start int
	N     int
}

func (a *rangeGetAM[T]) MarshalLamellar(e *serde.Encoder) {
	e.PutUvarint(a.ID)
	e.PutInt(a.Start)
	e.PutInt(a.N)
}

func (a *rangeGetAM[T]) UnmarshalLamellar(d *serde.Decoder) error {
	a.ID = d.Uvarint()
	a.Start = d.Int()
	a.N = d.Int()
	return d.Err()
}

func (a *rangeGetAM[T]) Exec(ctx *runtime.Context) any {
	st, rank := lookupState[T](ctx, a.ID)
	out, err := st.readRange(ctx.World.MyPE(), rank, a.Start, a.N)
	if err != nil {
		panic(err)
	}
	return out
}

// reduceAM computes a local reduction on the owner.
type reduceAM[T serde.Number] struct {
	ID uint64
	Op ReduceOp
}

func (a *reduceAM[T]) MarshalLamellar(e *serde.Encoder) {
	e.PutUvarint(a.ID)
	e.PutU8(uint8(a.Op))
}

func (a *reduceAM[T]) UnmarshalLamellar(d *serde.Decoder) error {
	a.ID = d.Uvarint()
	a.Op = ReduceOp(d.U8())
	return d.Err()
}

func (a *reduceAM[T]) Exec(ctx *runtime.Context) any {
	st, rank := lookupState[T](ctx, a.ID)
	vals, err := st.readRange(ctx.World.MyPE(), rank, 0, st.geom.localLen(rank))
	if err != nil {
		panic(err)
	}
	return []T{reduceSlice(a.Op, vals)}
}

// lookupState resolves an array id on the executing PE.
func lookupState[T serde.Number](ctx *runtime.Context, id uint64) (*sharedState[T], int) {
	v := registryOf(ctx.World).get(id)
	if v == nil {
		panic(fmt.Sprintf("array: PE%d: unknown array id %d", ctx.World.MyPE(), id))
	}
	st, ok := v.(*sharedState[T])
	if !ok {
		panic(fmt.Sprintf("array: PE%d: array %d has element type mismatch", ctx.World.MyPE(), id))
	}
	rank, ok2 := st.ranks[ctx.World.MyPE()]
	if !ok2 {
		panic(fmt.Sprintf("array: PE%d is not a member of array %d's team", ctx.World.MyPE(), id))
	}
	return st, rank
}

func intsToU64(xs []int) []uint64 {
	out := make([]uint64, len(xs))
	for i, x := range xs {
		out[i] = uint64(x)
	}
	return out
}

func u64ToInts(xs []uint64) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = int(x)
	}
	return out
}

// RegisterElemType registers the array layer's internal AMs for element
// type T under the given unique name (e.g. "u64"). The standard numeric
// types are pre-registered; call this for custom derived element types.
func RegisterElemType[T serde.Number](name string) {
	serde.RegisterNumeric[T]("array.num." + name)
	runtime.RegisterAM[opAM[T]]("array.op." + name)
	runtime.RegisterAMPooled[aggAM[T]]("array.agg." + name)
	runtime.RegisterAM[rangePutAM[T]]("array.rput." + name)
	runtime.RegisterAM[rangeGetAM[T]]("array.rget." + name)
	runtime.RegisterAM[reduceAM[T]]("array.reduce." + name)
	runtime.RegisterAM[pullNotifyAM[T]]("array.pull." + name)
}

var registerOnce sync.Once

func init() {
	registerOnce.Do(func() {
		RegisterElemType[int8]("i8")
		RegisterElemType[int16]("i16")
		RegisterElemType[int32]("i32")
		RegisterElemType[int64]("i64")
		RegisterElemType[int]("int")
		RegisterElemType[uint8]("u8")
		RegisterElemType[uint16]("u16")
		RegisterElemType[uint32]("u32")
		RegisterElemType[uint64]("u64")
		RegisterElemType[uint]("uint")
		RegisterElemType[float32]("f32")
		RegisterElemType[float64]("f64")
	})
}

// ----- origin-side batching ---------------------------------------------------

// batchResult pairs a fetch-result future with completion.
type batchResult[T serde.Number] struct {
	F *scheduler.Future[[]T]
}

// batchOp splits a batch of same-op element accesses by destination PE,
// chunks each destination's share into sub-batches of at most
// ArrayBatchSize operations, and dispatches one opAM per sub-batch (local
// destinations apply directly on a pool task). The returned future
// resolves when every sub-batch completed, carrying previous values in
// input order for fetch-style ops.
func (c *core[T]) batchOp(op Op, fetch bool, idxs []int, vals, casOld []T) *scheduler.Future[[]T] {
	if len(vals) > 1 && len(vals) != len(idxs) {
		panic(fmt.Sprintf("array: %d values for %d indices", len(vals), len(idxs)))
	}
	if op == OpCAS && len(casOld) > 1 && len(casOld) != len(idxs) {
		panic("array: CAS old-value count mismatch")
	}
	if len(idxs) == 0 {
		promise, future := scheduler.NewPromise[[]T](c.w.Pool())
		promise.Complete(nil)
		return future
	}
	if c.w.Config().AggBufSize >= 0 {
		// Aggregated path: coalesce into per-destination buffers.
		return c.aggSubmit(op, fetch, idxs, vals, casOld)
	}
	needOut := fetch || op == OpLoad || op == OpSwap || op == OpCAS
	var out []T
	var valueFn func() []T
	if needOut {
		out = make([]T, len(idxs))
		valueFn = func() []T { return out }
	}

	type chunk struct {
		rank   int
		pos    []int // positions in the original batch
		local  []int
		vals   []T
		casOld []T
	}
	maxBatch := c.w.Config().ArrayBatchSize
	byRank := make(map[int]*chunk)
	var chunks []*chunk
	for p, idx := range idxs {
		g := c.globalIndex(idx)
		rank, local := c.st.geom.place(g)
		ch := byRank[rank]
		if ch == nil {
			ch = &chunk{rank: rank}
			byRank[rank] = ch
			chunks = append(chunks, ch)
		}
		ch.pos = append(ch.pos, p)
		ch.local = append(ch.local, local)
		if len(vals) > 1 {
			ch.vals = append(ch.vals, vals[p])
		}
		if len(casOld) > 1 {
			ch.casOld = append(ch.casOld, casOld[p])
		}
		if len(ch.pos) >= maxBatch {
			delete(byRank, rank) // start a fresh chunk for this rank
		}
	}

	cd, future := scheduler.NewCountdown(c.w.Pool(), len(chunks), valueFn)
	for _, ch := range chunks {
		ch := ch
		cvals := ch.vals
		if len(vals) == 1 {
			cvals = vals
		}
		ccas := ch.casOld
		if len(casOld) == 1 {
			ccas = casOld
		}
		destPE := c.team.WorldPE(ch.rank)
		if destPE == c.w.MyPE() {
			// local fast path, still asynchronous
			c.w.Pool().Submit(func() {
				res, err := c.st.applyBatch(destPE, ch.rank, op, fetch, ch.local, cvals, ccas)
				if err == nil && out != nil {
					for i, p := range ch.pos {
						out[p] = res[i]
					}
				}
				cd.Done(err)
			})
			continue
		}
		am := &opAM[T]{ID: c.st.id, Op: op, Fetch: needOut, Local: ch.local, Vals: cvals, CasOld: ccas}
		runtime.ExecTyped[[]T](c.w, destPE, am).OnDone(func(res []T, err error) {
			if err == nil && out != nil {
				for i, p := range ch.pos {
					out[p] = res[i]
				}
			}
			cd.Done(err)
		})
	}
	return future
}

// reduceSlice folds vals with the reduction operator.
func reduceSlice[T serde.Number](op ReduceOp, vals []T) T {
	var acc T
	switch op {
	case ReduceSum:
		for _, v := range vals {
			acc += v
		}
	case ReduceProd:
		acc = 1
		for _, v := range vals {
			acc *= v
		}
	case ReduceMin:
		if len(vals) == 0 {
			return acc
		}
		acc = vals[0]
		for _, v := range vals[1:] {
			if v < acc {
				acc = v
			}
		}
	case ReduceMax:
		if len(vals) == 0 {
			return acc
		}
		acc = vals[0]
		for _, v := range vals[1:] {
			if v > acc {
				acc = v
			}
		}
	default:
		panic(fmt.Sprintf("array: unknown reduction %v", op))
	}
	return acc
}

// ReduceOp identifies a built-in reduction.
type ReduceOp uint8

// Built-in reductions.
const (
	ReduceSum ReduceOp = iota
	ReduceProd
	ReduceMin
	ReduceMax
)

func (r ReduceOp) String() string {
	switch r {
	case ReduceSum:
		return "sum"
	case ReduceProd:
		return "prod"
	case ReduceMin:
		return "min"
	case ReduceMax:
		return "max"
	default:
		return fmt.Sprintf("ReduceOp(%d)", uint8(r))
	}
}

// reduce launches one-sided local reductions on every member PE and folds
// the partials — callable from any single PE, like the paper's
// array.sum() which internally uses AMs.
func (c *core[T]) reduce(op ReduceOp) *scheduler.Future[T] {
	if c.off != 0 || c.len != c.st.geom.glen {
		// Sub-array view: reduce via batched loads of the view.
		return scheduler.Map(c.getRange(0, c.len), func(vals []T) T {
			return reduceSlice(op, vals)
		})
	}
	n := c.team.Size()
	fs := make([]*scheduler.Future[[]T], n)
	for r := 0; r < n; r++ {
		fs[r] = runtime.ExecTyped[[]T](c.w, c.team.WorldPE(r), &reduceAM[T]{ID: c.st.id, Op: op})
	}
	return scheduler.Map(scheduler.All(c.w.Pool(), fs), func(parts [][]T) T {
		partials := make([]T, 0, n)
		for _, p := range parts {
			if len(p) > 0 {
				partials = append(partials, p[0])
			}
		}
		return reduceSlice(op, partials)
	})
}
