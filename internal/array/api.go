package array

import (
	"repro/internal/runtime"
	"repro/internal/scheduler"
	"repro/internal/serde"
)

// CASResult reports the outcome of a compare-exchange: the previous value
// and whether the exchange happened (the paper's Result<T,T>).
type CASResult[T serde.Number] struct {
	Prev T
	OK   bool
}

// ----- AtomicArray ----------------------------------------------------------

// Len reports the (view's) global element count.
func (a *AtomicArray[T]) Len() int { return a.c.Len() }

// Team returns the constructing team.
func (a *AtomicArray[T]) Team() *runtime.Team { return a.c.Team() }

// Dist reports the layout.
func (a *AtomicArray[T]) Dist() Distribution { return a.c.Dist() }

// SubArray returns a view of [start, end); the view shares storage.
func (a *AtomicArray[T]) SubArray(start, end int) *AtomicArray[T] {
	return &AtomicArray[T]{c: a.c.sub(start, end)}
}

// Clone takes an additional handle reference.
func (a *AtomicArray[T]) Clone() *AtomicArray[T] { return &AtomicArray[T]{c: a.c.clone()} }

// Drop releases this handle; storage is freed when all handles on all PEs
// are gone (asynchronously, via the Darc protocol).
func (a *AtomicArray[T]) Drop() { a.c.drop() }

// Add atomically adds v to the element at index i (array.add(i, v)).
func (a *AtomicArray[T]) Add(i int, v T) *scheduler.Future[[]T] {
	return a.c.singleOp(OpAdd, false, i, v, zeroOf[T]())
}

// FetchAdd adds v and resolves with the previous value.
func (a *AtomicArray[T]) FetchAdd(i int, v T) *scheduler.Future[T] {
	return first(a.c.singleOp(OpAdd, true, i, v, zeroOf[T]()))
}

// Sub atomically subtracts.
func (a *AtomicArray[T]) Sub(i int, v T) *scheduler.Future[[]T] {
	return a.c.singleOp(OpSub, false, i, v, zeroOf[T]())
}

// Mul atomically multiplies.
func (a *AtomicArray[T]) Mul(i int, v T) *scheduler.Future[[]T] {
	return a.c.singleOp(OpMul, false, i, v, zeroOf[T]())
}

// Div atomically divides.
func (a *AtomicArray[T]) Div(i int, v T) *scheduler.Future[[]T] {
	return a.c.singleOp(OpDiv, false, i, v, zeroOf[T]())
}

// And/Or/Xor/Shl/Shr perform atomic bitwise updates.
func (a *AtomicArray[T]) And(i int, v T) *scheduler.Future[[]T] {
	return a.c.singleOp(OpAnd, false, i, v, zeroOf[T]())
}

// Or performs an atomic bitwise or.
func (a *AtomicArray[T]) Or(i int, v T) *scheduler.Future[[]T] {
	return a.c.singleOp(OpOr, false, i, v, zeroOf[T]())
}

// Xor performs an atomic bitwise xor.
func (a *AtomicArray[T]) Xor(i int, v T) *scheduler.Future[[]T] {
	return a.c.singleOp(OpXor, false, i, v, zeroOf[T]())
}

// Store atomically writes v at index i.
func (a *AtomicArray[T]) Store(i int, v T) *scheduler.Future[[]T] {
	return a.c.singleOp(OpStore, false, i, v, zeroOf[T]())
}

// Load atomically reads index i.
func (a *AtomicArray[T]) Load(i int) *scheduler.Future[T] {
	return first(a.c.singleOp(OpLoad, true, i, zeroOf[T](), zeroOf[T]()))
}

// Swap atomically replaces index i with v, resolving with the old value.
func (a *AtomicArray[T]) Swap(i int, v T) *scheduler.Future[T] {
	return first(a.c.singleOp(OpSwap, true, i, v, zeroOf[T]()))
}

// CompareExchange stores new at i iff the current value equals old.
func (a *AtomicArray[T]) CompareExchange(i int, old, new T) *scheduler.Future[CASResult[T]] {
	f := a.c.singleOp(OpCAS, true, i, new, old)
	return scheduler.Map(f, func(prev []T) CASResult[T] {
		return CASResult[T]{Prev: prev[0], OK: prev[0] == old}
	})
}

// BatchOp applies op at each index with a single broadcast value — the
// "Many Indices - One value" batch shape.
func (a *AtomicArray[T]) BatchOp(op Op, idxs []int, v T) *scheduler.Future[[]T] {
	return a.c.batchOp(op, false, idxs, []T{v}, nil)
}

// BatchAdd adds v at every index (Listing 2's histogram kernel).
func (a *AtomicArray[T]) BatchAdd(idxs []int, v T) *scheduler.Future[[]T] {
	return a.c.batchOp(OpAdd, false, idxs, []T{v}, nil)
}

// BatchAddVals adds vals[k] at idxs[k] — "Many Indices - Many values".
func (a *AtomicArray[T]) BatchAddVals(idxs []int, vals []T) *scheduler.Future[[]T] {
	return a.c.batchOp(OpAdd, false, idxs, vals, nil)
}

// BatchOpAt applies vals sequentially at one index — "One Index - Many
// values" (e.g. array.batch_mul(20, [2, 10])).
func (a *AtomicArray[T]) BatchOpAt(op Op, idx int, vals []T) *scheduler.Future[[]T] {
	idxs := make([]int, len(vals))
	for k := range idxs {
		idxs[k] = idx
	}
	return a.c.batchOp(op, false, idxs, vals, nil)
}

// BatchStore stores v at every index (array.batch_store([20,2], 10)).
func (a *AtomicArray[T]) BatchStore(idxs []int, v T) *scheduler.Future[[]T] {
	return a.c.batchOp(OpStore, false, idxs, []T{v}, nil)
}

// BatchOpVals applies op with vals[k] at idxs[k] — one-to-one shape (e.g.
// array.batch_bit_or([0,105,67], [127,0,64])).
func (a *AtomicArray[T]) BatchOpVals(op Op, idxs []int, vals []T) *scheduler.Future[[]T] {
	return a.c.batchOp(op, false, idxs, vals, nil)
}

// BatchFetchOp is the fetch variant of BatchOp, resolving with previous
// values in input order.
func (a *AtomicArray[T]) BatchFetchOp(op Op, idxs []int, v T) *scheduler.Future[[]T] {
	return a.c.batchOp(op, true, idxs, []T{v}, nil)
}

// BatchLoad reads every index.
func (a *AtomicArray[T]) BatchLoad(idxs []int) *scheduler.Future[[]T] {
	return a.c.batchOp(OpLoad, true, idxs, nil, nil)
}

// BatchCompareExchange attempts news[k] at idxs[k] iff the element equals
// old, resolving with the previous values (randperm's dart throw).
func (a *AtomicArray[T]) BatchCompareExchange(idxs []int, old T, news []T) *scheduler.Future[[]T] {
	return a.c.batchOp(OpCAS, true, idxs, news, []T{old})
}

// Put writes vals at [start, start+len(vals)) through owner-side AMs that
// apply per-element atomic stores (the safe RDMA-like put).
func (a *AtomicArray[T]) Put(start int, vals []T) *scheduler.Future[struct{}] {
	return a.c.putRange(start, vals)
}

// Get reads [start, start+n) through owner-side AMs with atomic loads.
func (a *AtomicArray[T]) Get(start, n int) *scheduler.Future[[]T] {
	return a.c.getRange(start, n)
}

// FlushBatches drains this PE's aggregation buffers for the array,
// dispatching every buffered element op immediately instead of waiting
// for a threshold, a future await, or the next runtime flush cycle.
func (a *AtomicArray[T]) FlushBatches() { a.c.flushAgg() }

// Sum launches one-sided local reductions and resolves with the total.
func (a *AtomicArray[T]) Sum() *scheduler.Future[T] { return a.c.reduce(ReduceSum) }

// Prod reduces with multiplication.
func (a *AtomicArray[T]) Prod() *scheduler.Future[T] { return a.c.reduce(ReduceProd) }

// Min reduces to the minimum element.
func (a *AtomicArray[T]) Min() *scheduler.Future[T] { return a.c.reduce(ReduceMin) }

// Max reduces to the maximum element.
func (a *AtomicArray[T]) Max() *scheduler.Future[T] { return a.c.reduce(ReduceMax) }

// LocalData returns the calling PE's chunk. Elements are accessed without
// atomics — safe only inside phases where no remote ops are in flight
// (e.g. between barriers); prefer Load/Store otherwise.
func (a *AtomicArray[T]) LocalData() []T { return a.c.localSlice() }

// ----- ReadOnlyArray ---------------------------------------------------------

// Len reports the (view's) global element count.
func (a *ReadOnlyArray[T]) Len() int { return a.c.Len() }

// Team returns the constructing team.
func (a *ReadOnlyArray[T]) Team() *runtime.Team { return a.c.Team() }

// Dist reports the layout.
func (a *ReadOnlyArray[T]) Dist() Distribution { return a.c.Dist() }

// SubArray returns a view of [start, end).
func (a *ReadOnlyArray[T]) SubArray(start, end int) *ReadOnlyArray[T] {
	return &ReadOnlyArray[T]{c: a.c.sub(start, end)}
}

// Clone takes an additional handle reference.
func (a *ReadOnlyArray[T]) Clone() *ReadOnlyArray[T] { return &ReadOnlyArray[T]{c: a.c.clone()} }

// Drop releases this handle.
func (a *ReadOnlyArray[T]) Drop() { a.c.drop() }

// Load reads index i via the owner.
func (a *ReadOnlyArray[T]) Load(i int) *scheduler.Future[T] {
	return first(a.c.singleOp(OpLoad, true, i, zeroOf[T](), zeroOf[T]()))
}

// BatchLoad reads every index via owner-side AMs (the IndexGather kernel).
func (a *ReadOnlyArray[T]) BatchLoad(idxs []int) *scheduler.Future[[]T] {
	return a.c.batchOp(OpLoad, true, idxs, nil, nil)
}

// Get reads [start, start+n) via owner-side AMs.
func (a *ReadOnlyArray[T]) Get(start, n int) *scheduler.Future[[]T] {
	return a.c.getRange(start, n)
}

// GetDirect performs a direct RDMA get: sound without coordination because
// read-only data cannot change under the reader (§III-F2).
func (a *ReadOnlyArray[T]) GetDirect(start, n int) []T {
	return a.c.getDirect(start, n)
}

// Sum reduces with addition.
func (a *ReadOnlyArray[T]) Sum() *scheduler.Future[T] { return a.c.reduce(ReduceSum) }

// Prod reduces with multiplication.
func (a *ReadOnlyArray[T]) Prod() *scheduler.Future[T] { return a.c.reduce(ReduceProd) }

// Min reduces to the minimum element.
func (a *ReadOnlyArray[T]) Min() *scheduler.Future[T] { return a.c.reduce(ReduceMin) }

// Max reduces to the maximum element.
func (a *ReadOnlyArray[T]) Max() *scheduler.Future[T] { return a.c.reduce(ReduceMax) }

// LocalData returns the calling PE's chunk (read it, don't write it).
func (a *ReadOnlyArray[T]) LocalData() []T { return a.c.localSlice() }

// ----- LocalLockArray ----------------------------------------------------------

// Len reports the (view's) global element count.
func (a *LocalLockArray[T]) Len() int { return a.c.Len() }

// Team returns the constructing team.
func (a *LocalLockArray[T]) Team() *runtime.Team { return a.c.Team() }

// Dist reports the layout.
func (a *LocalLockArray[T]) Dist() Distribution { return a.c.Dist() }

// SubArray returns a view of [start, end).
func (a *LocalLockArray[T]) SubArray(start, end int) *LocalLockArray[T] {
	return &LocalLockArray[T]{c: a.c.sub(start, end)}
}

// Clone takes an additional handle reference.
func (a *LocalLockArray[T]) Clone() *LocalLockArray[T] { return &LocalLockArray[T]{c: a.c.clone()} }

// Drop releases this handle.
func (a *LocalLockArray[T]) Drop() { a.c.drop() }

// BatchOp applies op at each index with one value, under the owners' locks.
func (a *LocalLockArray[T]) BatchOp(op Op, idxs []int, v T) *scheduler.Future[[]T] {
	return a.c.batchOp(op, false, idxs, []T{v}, nil)
}

// BatchAdd adds v at every index.
func (a *LocalLockArray[T]) BatchAdd(idxs []int, v T) *scheduler.Future[[]T] {
	return a.c.batchOp(OpAdd, false, idxs, []T{v}, nil)
}

// BatchLoad reads every index under the owners' read locks.
func (a *LocalLockArray[T]) BatchLoad(idxs []int) *scheduler.Future[[]T] {
	return a.c.batchOp(OpLoad, true, idxs, nil, nil)
}

// BatchFetchOp is the fetch variant of BatchOp, resolving with previous
// values in input order (under the owners' write locks).
func (a *LocalLockArray[T]) BatchFetchOp(op Op, idxs []int, v T) *scheduler.Future[[]T] {
	return a.c.batchOp(op, true, idxs, []T{v}, nil)
}

// Put writes a range; the owner holds its write lock for the memcopy
// (the Fig. 2 LocalLockArray path).
func (a *LocalLockArray[T]) Put(start int, vals []T) *scheduler.Future[struct{}] {
	return a.c.putRange(start, vals)
}

// Get reads a range under the owners' read locks.
func (a *LocalLockArray[T]) Get(start, n int) *scheduler.Future[[]T] {
	return a.c.getRange(start, n)
}

// Sum reduces with addition.
func (a *LocalLockArray[T]) Sum() *scheduler.Future[T] { return a.c.reduce(ReduceSum) }

// FlushBatches drains this PE's aggregation buffers for the array (see
// AtomicArray.FlushBatches).
func (a *LocalLockArray[T]) FlushBatches() { a.c.flushAgg() }

// Min reduces to the minimum element.
func (a *LocalLockArray[T]) Min() *scheduler.Future[T] { return a.c.reduce(ReduceMin) }

// Max reduces to the maximum element.
func (a *LocalLockArray[T]) Max() *scheduler.Future[T] { return a.c.reduce(ReduceMax) }

// ReadLocal runs fn with the local read lock held.
func (a *LocalLockArray[T]) ReadLocal(fn func(data []T)) {
	lk := a.c.st.rwLocks[a.c.myRank()]
	lk.RLock()
	defer lk.RUnlock()
	fn(a.c.localSlice())
}

// WriteLocal runs fn with the local write lock held.
func (a *LocalLockArray[T]) WriteLocal(fn func(data []T)) {
	lk := a.c.st.rwLocks[a.c.myRank()]
	lk.Lock()
	defer lk.Unlock()
	fn(a.c.localSlice())
}

// ----- UnsafeArray --------------------------------------------------------------

// Len reports the (view's) global element count.
func (a *UnsafeArray[T]) Len() int { return a.c.Len() }

// Team returns the constructing team.
func (a *UnsafeArray[T]) Team() *runtime.Team { return a.c.Team() }

// Dist reports the layout.
func (a *UnsafeArray[T]) Dist() Distribution { return a.c.Dist() }

// SubArray returns a view of [start, end).
func (a *UnsafeArray[T]) SubArray(start, end int) *UnsafeArray[T] {
	return &UnsafeArray[T]{c: a.c.sub(start, end)}
}

// Clone takes an additional handle reference.
func (a *UnsafeArray[T]) Clone() *UnsafeArray[T] { return &UnsafeArray[T]{c: a.c.clone()} }

// Drop releases this handle.
func (a *UnsafeArray[T]) Drop() { a.c.drop() }

// BatchOp applies op with no access control on the owners.
func (a *UnsafeArray[T]) BatchOp(op Op, idxs []int, v T) *scheduler.Future[[]T] {
	return a.c.batchOp(op, false, idxs, []T{v}, nil)
}

// BatchAdd adds v at every index with no access control.
func (a *UnsafeArray[T]) BatchAdd(idxs []int, v T) *scheduler.Future[[]T] {
	return a.c.batchOp(OpAdd, false, idxs, []T{v}, nil)
}

// BatchLoad reads every index with no access control.
func (a *UnsafeArray[T]) BatchLoad(idxs []int) *scheduler.Future[[]T] {
	return a.c.batchOp(OpLoad, true, idxs, nil, nil)
}

// Put transfers a range using the AM/owner-pull strategy of §IV-A
// (Vec-style AMs below the aggregation threshold, owner pull above).
func (a *UnsafeArray[T]) Put(start int, vals []T) *scheduler.Future[struct{}] {
	return a.c.bigPut(start, vals)
}

// Get reads a range through owner-side AMs.
func (a *UnsafeArray[T]) Get(start, n int) *scheduler.Future[[]T] {
	return a.c.getRange(start, n)
}

// PutUnchecked performs a blocking direct RDMA put with no access control
// and no runtime termination detection — the caller coordinates (e.g.
// barriers or flag patterns), as in the Fig. 2 "unchecked" series.
func (a *UnsafeArray[T]) PutUnchecked(start int, vals []T) {
	a.c.putDirect(start, vals)
}

// GetUnchecked performs a blocking direct RDMA get with no access control.
func (a *UnsafeArray[T]) GetUnchecked(start, n int) []T {
	return a.c.getDirect(start, n)
}

// Sum reduces with addition.
func (a *UnsafeArray[T]) Sum() *scheduler.Future[T] { return a.c.reduce(ReduceSum) }

// FlushBatches drains this PE's aggregation buffers for the array (see
// AtomicArray.FlushBatches).
func (a *UnsafeArray[T]) FlushBatches() { a.c.flushAgg() }

// Min reduces to the minimum element.
func (a *UnsafeArray[T]) Min() *scheduler.Future[T] { return a.c.reduce(ReduceMin) }

// Max reduces to the maximum element.
func (a *UnsafeArray[T]) Max() *scheduler.Future[T] { return a.c.reduce(ReduceMax) }

// LocalData returns the calling PE's chunk with no protection whatsoever.
func (a *UnsafeArray[T]) LocalData() []T { return a.c.localSlice() }

// ----- placement introspection (KV routing layer, ISSUE 10) -----------------

// rankOf reports the team rank owning (view-relative) index i.
func (c *core[T]) rankOf(i int) int {
	rank, _ := c.st.geom.place(c.globalIndex(i))
	return rank
}

// localRange reports the global index range [start, start+n) backing the
// calling PE's local storage of the full (unviewed) array.
func (c *core[T]) localRange() (start, n int) {
	r := c.myRank()
	return c.st.geom.globalOf(r, 0), c.st.geom.localLen(r)
}

// RankOf reports the team rank owning index i under the distribution —
// the index→PE routing the KV layer shards by.
func (a *AtomicArray[T]) RankOf(i int) int { return a.c.rankOf(i) }

// LocalRange reports the global range [start, start+n) stored on the
// calling PE (pairs with LocalData for owner-side scans).
func (a *AtomicArray[T]) LocalRange() (start, n int) { return a.c.localRange() }

// RankOf reports the team rank owning index i under the distribution.
func (a *LocalLockArray[T]) RankOf(i int) int { return a.c.rankOf(i) }

// LocalRange reports the global range [start, start+n) stored on the
// calling PE (pairs with ReadLocal for owner-side scans).
func (a *LocalLockArray[T]) LocalRange() (start, n int) { return a.c.localRange() }

// first adapts a batch future of one element to a scalar future.
func first[T serde.Number](f *scheduler.Future[[]T]) *scheduler.Future[T] {
	return scheduler.Map(f, func(vals []T) T {
		if len(vals) == 0 {
			var zero T
			return zero
		}
		return vals[0]
	})
}

// ----- additional element-op conveniences (paper §III-F3 operator list) -----

// Shl atomically shifts the element left by v bits.
func (a *AtomicArray[T]) Shl(i int, v T) *scheduler.Future[[]T] {
	return a.c.singleOp(OpShl, false, i, v, zeroOf[T]())
}

// Shr atomically shifts the element right by v bits.
func (a *AtomicArray[T]) Shr(i int, v T) *scheduler.Future[[]T] {
	return a.c.singleOp(OpShr, false, i, v, zeroOf[T]())
}

// Rem atomically replaces the element with its remainder mod v.
func (a *AtomicArray[T]) Rem(i int, v T) *scheduler.Future[[]T] {
	return a.c.singleOp(OpRem, false, i, v, zeroOf[T]())
}

// FetchOp applies op at index i and resolves with the previous value (the
// generic fetch variant; FetchAdd etc. are the common special cases).
func (a *AtomicArray[T]) FetchOp(op Op, i int, v T) *scheduler.Future[T] {
	return first(a.c.singleOp(op, true, i, v, zeroOf[T]()))
}

// FetchSub subtracts and resolves with the previous value.
func (a *AtomicArray[T]) FetchSub(i int, v T) *scheduler.Future[T] {
	return first(a.c.singleOp(OpSub, true, i, v, zeroOf[T]()))
}

// BatchOpVals on LocalLockArray — one-to-one batch under the owner locks.
func (a *LocalLockArray[T]) BatchOpVals(op Op, idxs []int, vals []T) *scheduler.Future[[]T] {
	return a.c.batchOp(op, false, idxs, vals, nil)
}

// BatchOpVals on UnsafeArray — one-to-one batch with no access control.
func (a *UnsafeArray[T]) BatchOpVals(op Op, idxs []int, vals []T) *scheduler.Future[[]T] {
	return a.c.batchOp(op, false, idxs, vals, nil)
}
