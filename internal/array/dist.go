// Package array implements the LamellarArray layer (§III-F): safe PGAS
// distributed arrays with four access-safety kinds (Unsafe, ReadOnly,
// Atomic, LocalLock), Block/Cyclic layouts, element-wise and batched
// operations, RDMA-like put/get, distributed/local/one-sided iterators,
// reductions, sub-arrays, and kind conversions guarded by the
// single-reference rule. Remote access on safe kinds is mediated by
// owner-side active messages, exactly as the paper describes.
package array

import "fmt"

// Distribution selects the data layout across the team's PEs.
type Distribution int

// Layouts supported by LamellarArrays.
const (
	// Block gives each PE one contiguous chunk (remainder spread over the
	// first PEs, one extra element each).
	Block Distribution = iota
	// Cyclic deals elements round-robin across PEs.
	Cyclic
)

func (d Distribution) String() string {
	switch d {
	case Block:
		return "Block"
	case Cyclic:
		return "Cyclic"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// geometry maps global indices to (team rank, local index) and back for a
// given distribution, global length, and team size.
type geometry struct {
	dist Distribution
	glen int
	npes int
}

// place returns the owning team rank and local index of global index i.
func (g geometry) place(i int) (rank, local int) {
	if i < 0 || i >= g.glen {
		panic(fmt.Sprintf("array: index %d out of range [0,%d)", i, g.glen))
	}
	switch g.dist {
	case Block:
		q, r := g.glen/g.npes, g.glen%g.npes
		// first r ranks hold q+1 elements, the rest q
		if cut := r * (q + 1); i < cut {
			return i / (q + 1), i % (q + 1)
		} else {
			i -= r * (q + 1)
			return r + i/q, i % q
		}
	case Cyclic:
		return i % g.npes, i / g.npes
	default:
		panic("array: unknown distribution")
	}
}

// globalOf is the inverse of place.
func (g geometry) globalOf(rank, local int) int {
	switch g.dist {
	case Block:
		q, r := g.glen/g.npes, g.glen%g.npes
		if rank < r {
			return rank*(q+1) + local
		}
		return r*(q+1) + (rank-r)*q + local
	case Cyclic:
		return local*g.npes + rank
	default:
		panic("array: unknown distribution")
	}
}

// localLen returns the number of elements rank owns.
func (g geometry) localLen(rank int) int {
	switch g.dist {
	case Block:
		q, r := g.glen/g.npes, g.glen%g.npes
		if rank < r {
			return q + 1
		}
		return q
	case Cyclic:
		n := g.glen / g.npes
		if rank < g.glen%g.npes {
			n++
		}
		return n
	default:
		panic("array: unknown distribution")
	}
}

// maxLocalLen returns the largest per-rank length (symmetric allocation).
func (g geometry) maxLocalLen() int {
	if g.glen == 0 {
		return 0
	}
	return g.localLen(0) // rank 0 always holds the maximum in both layouts
}

// blockRanges yields maximal runs of consecutive global indices owned by a
// single rank, for range-based transfers: fn(rank, localStart, gStart, n).
func (g geometry) blockRanges(gStart, n int, fn func(rank, local, gIdx, runLen int)) {
	if n == 0 {
		return
	}
	if gStart < 0 || gStart+n > g.glen {
		panic(fmt.Sprintf("array: range [%d,%d) out of bounds [0,%d)", gStart, gStart+n, g.glen))
	}
	switch g.dist {
	case Block:
		i := gStart
		for i < gStart+n {
			rank, local := g.place(i)
			run := g.localLen(rank) - local
			if rem := gStart + n - i; run > rem {
				run = rem
			}
			fn(rank, local, i, run)
			i += run
		}
	case Cyclic:
		// runs of length 1 (each consecutive index changes rank)
		for i := gStart; i < gStart+n; i++ {
			rank, local := g.place(i)
			fn(rank, local, i, 1)
		}
	}
}
