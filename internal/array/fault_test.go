package array

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/runtime"
)

// runAdversarial runs fn over a shmem world whose wire suffers seeded
// 5% drop/dup/reorder on every link, repaired by the runtime's reliable
// delivery layer. Batch operations must remain exactly-once: a
// duplicated frame that re-applied adds would break conservation.
func runAdversarial(t *testing.T, pes int, seed int64, fn func(w *runtime.World)) {
	t.Helper()
	cfg := runtime.Config{
		PEs: pes, WorkersPerPE: 2, Lamellae: runtime.LamellaeShmem,
		Faults: fabric.NewFaultPlan(seed).SetDefault(fabric.LinkFaults{
			DropRate:    0.05,
			DupRate:     0.05,
			ReorderRate: 0.05,
			Delay:       300 * time.Microsecond,
		}),
		RetryInterval:   2 * time.Millisecond,
		RetryBackoffMax: 20 * time.Millisecond,
	}
	if err := runtime.Run(cfg, fn); err != nil {
		t.Fatal(err)
	}
}

// Batched element adds across a lossy fabric: the final sum must equal
// the number issued — a dropped frame would lose adds, a duplicated one
// would double-apply them.
func TestBatchAddConservesUnderFaults(t *testing.T) {
	const updates = 2000
	runAdversarial(t, 4, 99, func(w *runtime.World) {
		a := NewAtomicArray[uint64](w.Team(), 131, Block)
		defer a.Drop()
		rng := rand.New(rand.NewSource(int64(w.MyPE()) + 7))
		idxs := make([]int, updates)
		for i := range idxs {
			idxs[i] = rng.Intn(131)
		}
		must(runtime.BlockOn(w, a.BatchAdd(idxs, 1)))
		w.Barrier()
		if sum := must(runtime.BlockOn(w, a.Sum())); sum != 4*updates {
			panic(fmt.Sprintf("sum = %d, want %d (wire lost or duplicated batch ops)", sum, 4*updates))
		}
		w.Barrier()
	})
}

// Fetching batch ops return per-element previous values through return
// envelopes; those responses cross the same lossy wire and must arrive
// intact and exactly once.
func TestBatchFetchAddUnderFaults(t *testing.T) {
	runAdversarial(t, 3, 2024, func(w *runtime.World) {
		a := NewAtomicArray[uint64](w.Team(), 60, Cyclic)
		defer a.Drop()
		idxs := make([]int, 60)
		for i := range idxs {
			idxs[i] = i
		}
		// Each PE adds 1 to every element; fetch results are the pre-add
		// values, so across rounds each PE observes monotone growth.
		var prev []uint64
		for round := 0; round < 5; round++ {
			got := must(runtime.BlockOn(w, a.BatchFetchOp(OpAdd, idxs, 1)))
			if len(got) != len(idxs) {
				panic(fmt.Sprintf("fetch returned %d values, want %d", len(got), len(idxs)))
			}
			for i, v := range got {
				if prev != nil && v < prev[i] {
					panic(fmt.Sprintf("element %d regressed: %d -> %d", i, prev[i], v))
				}
			}
			prev = got
		}
		w.Barrier()
		if sum := must(runtime.BlockOn(w, a.Sum())); sum != uint64(3*5*60) {
			panic(fmt.Sprintf("sum = %d, want %d", sum, 3*5*60))
		}
		w.Barrier()
	})
}
