//go:build race

package array

// See race_off.go.
const raceDetectorEnabled = true
