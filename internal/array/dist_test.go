package array

import (
	"testing"
	"testing/quick"
)

func TestBlockPlacement(t *testing.T) {
	g := geometry{dist: Block, glen: 10, npes: 3}
	// 10 over 3 PEs: rank0 gets 4, ranks 1-2 get 3
	wantLens := []int{4, 3, 3}
	for r, want := range wantLens {
		if got := g.localLen(r); got != want {
			t.Errorf("localLen(%d) = %d, want %d", r, got, want)
		}
	}
	if g.maxLocalLen() != 4 {
		t.Errorf("maxLocalLen = %d", g.maxLocalLen())
	}
	wantRanks := []int{0, 0, 0, 0, 1, 1, 1, 2, 2, 2}
	for i, want := range wantRanks {
		rank, _ := g.place(i)
		if rank != want {
			t.Errorf("place(%d) rank = %d, want %d", i, rank, want)
		}
	}
}

func TestCyclicPlacement(t *testing.T) {
	g := geometry{dist: Cyclic, glen: 7, npes: 3}
	wantLens := []int{3, 2, 2}
	for r, want := range wantLens {
		if got := g.localLen(r); got != want {
			t.Errorf("localLen(%d) = %d, want %d", r, got, want)
		}
	}
	for i := 0; i < 7; i++ {
		rank, local := g.place(i)
		if rank != i%3 || local != i/3 {
			t.Errorf("place(%d) = (%d,%d)", i, rank, local)
		}
	}
}

// Property: place and globalOf are inverse bijections covering exactly the
// local lengths, for both layouts and arbitrary shapes.
func TestPlacementBijectionProperty(t *testing.T) {
	check := func(dist Distribution, glen16, npes8 uint8) bool {
		glen := int(glen16)
		npes := int(npes8)%16 + 1
		g := geometry{dist: dist, glen: glen, npes: npes}
		seen := make(map[[2]int]bool)
		sumLens := 0
		for r := 0; r < npes; r++ {
			sumLens += g.localLen(r)
		}
		if sumLens != glen {
			t.Errorf("%v glen=%d npes=%d: localLens sum to %d", dist, glen, npes, sumLens)
			return false
		}
		for i := 0; i < glen; i++ {
			rank, local := g.place(i)
			if rank < 0 || rank >= npes || local < 0 || local >= g.localLen(rank) {
				t.Errorf("%v: place(%d) = (%d,%d) out of range", dist, i, rank, local)
				return false
			}
			if g.globalOf(rank, local) != i {
				t.Errorf("%v: globalOf(place(%d)) = %d", dist, i, g.globalOf(rank, local))
				return false
			}
			key := [2]int{rank, local}
			if seen[key] {
				t.Errorf("%v: duplicate placement (%d,%d)", dist, rank, local)
				return false
			}
			seen[key] = true
		}
		return true
	}
	if err := quick.Check(func(a, b uint8) bool { return check(Block, a, b) }, nil); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(a, b uint8) bool { return check(Cyclic, a, b) }, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockRangesCoverage(t *testing.T) {
	for _, dist := range []Distribution{Block, Cyclic} {
		g := geometry{dist: dist, glen: 23, npes: 4}
		covered := make([]bool, 23)
		g.blockRanges(3, 17, func(rank, local, gIdx, runLen int) {
			for k := 0; k < runLen; k++ {
				if covered[gIdx+k] {
					t.Fatalf("%v: index %d covered twice", dist, gIdx+k)
				}
				covered[gIdx+k] = true
				wantRank, wantLocal := g.place(gIdx + k)
				if rank != wantRank || local+k != wantLocal {
					t.Fatalf("%v: run mismatch at %d", dist, gIdx+k)
				}
			}
		})
		for i := 3; i < 20; i++ {
			if !covered[i] {
				t.Errorf("%v: index %d not covered", dist, i)
			}
		}
		if covered[2] || covered[20] {
			t.Errorf("%v: out-of-range coverage", dist)
		}
	}
}

func TestPlaceOutOfRangePanics(t *testing.T) {
	g := geometry{dist: Block, glen: 5, npes: 2}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.place(5)
}
