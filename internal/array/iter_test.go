package array

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/runtime"
)

// fillSequential writes 0..n-1 into the array from PE0 and barriers.
func fillSequential(w *runtime.World, a *AtomicArray[int64]) {
	if w.MyPE() == 0 {
		vals := make([]int64, a.Len())
		for i := range vals {
			vals[i] = int64(i)
		}
		must(runtime.BlockOn(w, a.Put(0, vals)))
	}
	w.Barrier()
}

func TestDistIterForEachCoversAll(t *testing.T) {
	for _, dist := range []Distribution{Block, Cyclic} {
		dist := dist
		t.Run(dist.String(), func(t *testing.T) {
			var sum atomic.Int64
			var count atomic.Int64
			runWorld(t, 4, func(w *runtime.World) {
				a := NewAtomicArray[int64](w.Team(), 101, dist)
				defer a.Drop()
				fillSequential(w, a)
				must(a.DistIter().ForEach(func(v int64) {
					sum.Add(v)
					count.Add(1)
				}).Await())
				w.Barrier()
			})
			if count.Load() != 101 {
				t.Errorf("visited %d elements", count.Load())
			}
			if sum.Load() != 100*101/2 {
				t.Errorf("sum = %d", sum.Load())
			}
		})
	}
}

func TestLocalIterOnlyLocal(t *testing.T) {
	runWorld(t, 4, func(w *runtime.World) {
		a := NewAtomicArray[int64](w.Team(), 40, Block)
		defer a.Drop()
		fillSequential(w, a)
		var count atomic.Int64
		must(a.LocalIter().ForEachIndexed(func(i int, v int64) {
			if int64(i) != v {
				panic(fmt.Sprintf("index %d value %d", i, v))
			}
			count.Add(1)
		}).Await())
		if count.Load() != 10 { // 40/4 per PE
			panic(fmt.Sprintf("PE%d visited %d", w.MyPE(), count.Load()))
		}
		w.Barrier()
	})
}

func TestIterCombinators(t *testing.T) {
	runWorld(t, 3, func(w *runtime.World) {
		a := NewAtomicArray[int64](w.Team(), 30, Block)
		defer a.Drop()
		fillSequential(w, a)
		// filter even, map *10, skip first 10 indices, step 2, take < 20
		it := Map(a.DistIter().Skip(10).StepBy(2).Take(20).Filter(func(v int64) bool {
			return v%4 == 0
		}), func(v int64) int64 { return v * 10 })
		got := must(it.Collect().Await())
		// local share; gather across PEs via the sum
		var local int64
		for _, v := range got {
			local += v
		}
		total := w.Team().SumU64(uint64(local))
		// indices 10..19 step2 -> 10,12,14,16,18; %4==0 -> 12,16; *10 -> 120+160
		if total != 280 {
			panic(fmt.Sprintf("total = %d", total))
		}
		w.Barrier()
	})
}

func TestIterEnumerateAndZip(t *testing.T) {
	runWorld(t, 2, func(w *runtime.World) {
		a := NewAtomicArray[int64](w.Team(), 16, Block)
		b := NewAtomicArray[int64](w.Team(), 16, Block)
		defer a.Drop()
		defer b.Drop()
		fillSequential(w, a)
		if w.MyPE() == 0 {
			vals := make([]int64, 16)
			for i := range vals {
				vals[i] = int64(i * 100)
			}
			must(runtime.BlockOn(w, b.Put(0, vals)))
		}
		w.Barrier()
		pairs := must(Enumerate(Zip(a.LocalIter(), b.LocalIter())).Collect().Await())
		if len(pairs) != 8 {
			panic(fmt.Sprintf("PE%d: %d pairs", w.MyPE(), len(pairs)))
		}
		for _, p := range pairs {
			if p.Val.B != p.Val.A*100 {
				panic(fmt.Sprintf("pair %+v", p))
			}
		}
		w.Barrier()
	})
}

func TestIterCountAndReduce(t *testing.T) {
	runWorld(t, 2, func(w *runtime.World) {
		a := NewAtomicArray[int64](w.Team(), 20, Cyclic)
		defer a.Drop()
		fillSequential(w, a)
		n := must(a.DistIter().Filter(func(v int64) bool { return v >= 10 }).Count().Await())
		total := w.Team().SumU64(uint64(n))
		if total != 10 {
			panic(fmt.Sprintf("count = %d", total))
		}
		s := must(a.LocalIter().Reduce(0, func(x, y int64) int64 { return x + y }).Await())
		gs := w.Team().SumU64(uint64(s))
		if gs != 190 {
			panic(fmt.Sprintf("reduce sum = %d", gs))
		}
		w.Barrier()
	})
}

func TestCollectArray(t *testing.T) {
	runWorld(t, 3, func(w *runtime.World) {
		a := NewAtomicArray[int64](w.Team(), 30, Block)
		fillSequential(w, a)
		it := a.DistIter().Filter(func(v int64) bool { return v%3 == 0 })
		out := CollectArray(it, a, Block)
		if out.Len() != 10 {
			panic(fmt.Sprintf("collected len = %d", out.Len()))
		}
		got := out.GetDirect(0, 10)
		for i, v := range got {
			if v != int64(i*3) {
				panic(fmt.Sprintf("collected[%d] = %d", i, v))
			}
		}
		w.Barrier()
		out.Drop()
		a.Drop()
	})
}

func TestOneSidedIter(t *testing.T) {
	runWorld(t, 3, func(w *runtime.World) {
		a := NewAtomicArray[int64](w.Team(), 50, Block)
		defer a.Drop()
		fillSequential(w, a)
		if w.MyPE() == 1 {
			// whole-array serial iteration with a small buffer
			i := 0
			for idx, v := range a.OneSidedIter(7).Seq() {
				if idx != i || v != int64(i) {
					panic(fmt.Sprintf("seq idx=%d v=%d want %d", idx, v, i))
				}
				i++
			}
			if i != 50 {
				panic(fmt.Sprintf("visited %d", i))
			}
			// skip/step/take
			vals := a.OneSidedIter(8).Skip(5).StepBy(3).Take(4).CollectVec()
			want := []int64{5, 8, 11, 14}
			for k := range want {
				if vals[k] != want[k] {
					panic(fmt.Sprintf("skip/step/take: %v", vals))
				}
			}
			// chunks
			nchunks := 0
			for chunk := range a.OneSidedIter(16).Chunks(20) {
				nchunks++
				if len(chunk) > 20 {
					panic("oversized chunk")
				}
			}
			if nchunks != 3 { // 20+20+10
				panic(fmt.Sprintf("chunks = %d", nchunks))
			}
			// zip
			n := 0
			for p := range ZipOneSided(a.OneSidedIter(9), a.OneSidedIter(13).Skip(1)) {
				if p.B != p.A+1 {
					panic(fmt.Sprintf("zip pair %+v", p))
				}
				n++
			}
			if n != 49 {
				panic(fmt.Sprintf("zip visited %d", n))
			}
		}
		w.Barrier()
	})
}

func TestIterOnSubArray(t *testing.T) {
	runWorld(t, 2, func(w *runtime.World) {
		a := NewAtomicArray[int64](w.Team(), 20, Block)
		fillSequential(w, a)
		sub := a.SubArray(5, 15)
		var sum atomic.Int64 // per-PE: fn runs once per PE
		must(sub.DistIter().ForEach(func(v int64) { sum.Add(v) }).Await())
		// values 5..14 each visited exactly once by their owner: global 95
		if total := w.Team().SumU64(uint64(sum.Load())); total != 95 {
			panic(fmt.Sprintf("sub iter sum = %d", total))
		}
		w.Barrier()
		sub.Drop()
		a.Drop()
	})
}

func TestIterChunksAndReductions(t *testing.T) {
	runWorld(t, 2, func(w *runtime.World) {
		a := NewAtomicArray[int64](w.Team(), 20, Block)
		defer a.Drop()
		fillSequential(w, a)
		// chunks of 3 over my 10 local elements: 3+3+3+1
		var nchunks, total atomic.Int64
		must(Chunks(a.LocalIter(), 3).ForEach(func(c []int64) {
			nchunks.Add(1)
			for _, v := range c {
				total.Add(v)
			}
		}).Await())
		if nchunks.Load() != 4 {
			panic(fmt.Sprintf("PE%d: chunks = %d", w.MyPE(), nchunks.Load()))
		}
		// IterSum/IterMax/IterMin over local halves
		s := must(IterSum(a.LocalIter()).Await())
		mx := must(IterMax(a.LocalIter()).Await())
		mn := must(IterMin(a.LocalIter()).Await())
		if w.MyPE() == 0 {
			if s != 45 || mx != 9 || mn != 0 {
				panic(fmt.Sprintf("PE0 reductions: sum=%d max=%d min=%d", s, mx, mn))
			}
		} else {
			if s != 145 || mx != 19 || mn != 10 {
				panic(fmt.Sprintf("PE1 reductions: sum=%d max=%d min=%d", s, mx, mn))
			}
		}
		if total.Load() != s {
			panic("chunk total mismatch")
		}
		w.Barrier()
	})
}

func TestAdaptiveChunk(t *testing.T) {
	cases := []struct{ n, workers, want int }{
		{0, 4, 64},         // empty view: floor
		{100, 4, 64},       // small view: floor dominates
		{1 << 20, 4, 8192}, // huge view: ceiling
		{16384, 4, 1024},   // interior: n/(workers*4)
		{16384, 1, 4096},   // fewer workers → bigger chunks
		{1000, 0, 250},     // degenerate worker count clamps to 1
	}
	for _, c := range cases {
		if got := adaptiveChunk(c.n, c.workers); got != c.want {
			t.Errorf("adaptiveChunk(%d, %d) = %d, want %d", c.n, c.workers, got, c.want)
		}
	}
}
