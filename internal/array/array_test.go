package array

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/runtime"
)

func runWorld(t *testing.T, pes int, fn func(w *runtime.World)) {
	t.Helper()
	cfg := runtime.Config{PEs: pes, WorkersPerPE: 2, Lamellae: runtime.LamellaeShmem}
	if err := runtime.Run(cfg, fn); err != nil {
		t.Fatal(err)
	}
}

func runWorldSim(t *testing.T, pes int, fn func(w *runtime.World)) {
	t.Helper()
	cfg := runtime.Config{PEs: pes, WorkersPerPE: 2, Lamellae: runtime.LamellaeSim}
	if err := runtime.Run(cfg, fn); err != nil {
		t.Fatal(err)
	}
}

func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

func TestAtomicArrayAddAndSum(t *testing.T) {
	for _, dist := range []Distribution{Block, Cyclic} {
		dist := dist
		t.Run(dist.String(), func(t *testing.T) {
			runWorld(t, 4, func(w *runtime.World) {
				a := NewAtomicArray[uint64](w.Team(), 100, dist)
				defer a.Drop()
				// every PE adds 1 to every element
				idxs := make([]int, 100)
				for i := range idxs {
					idxs[i] = i
				}
				must(runtime.BlockOn(w, a.BatchAdd(idxs, 1)))
				w.Barrier()
				sum := must(runtime.BlockOn(w, a.Sum()))
				if sum != 400 {
					panic(fmt.Sprintf("PE%d: sum = %d, want 400", w.MyPE(), sum))
				}
				w.Barrier()
			})
		})
	}
}

func TestAtomicSingleOps(t *testing.T) {
	runWorld(t, 3, func(w *runtime.World) {
		a := NewAtomicArray[int64](w.Team(), 30, Block)
		defer a.Drop()
		if w.MyPE() == 0 {
			must(runtime.BlockOn(w, a.Store(25, 10)))
			if v := must(runtime.BlockOn(w, a.Load(25))); v != 10 {
				panic(fmt.Sprintf("Load = %d", v))
			}
			if prev := must(runtime.BlockOn(w, a.FetchAdd(25, 5))); prev != 10 {
				panic(fmt.Sprintf("FetchAdd prev = %d", prev))
			}
			must(runtime.BlockOn(w, a.Mul(25, 2)))
			if v := must(runtime.BlockOn(w, a.Load(25))); v != 30 {
				panic(fmt.Sprintf("after mul = %d", v))
			}
			if prev := must(runtime.BlockOn(w, a.Swap(25, 7))); prev != 30 {
				panic(fmt.Sprintf("Swap prev = %d", prev))
			}
			res := must(runtime.BlockOn(w, a.CompareExchange(25, 7, 100)))
			if !res.OK || res.Prev != 7 {
				panic(fmt.Sprintf("CAS = %+v", res))
			}
			res = must(runtime.BlockOn(w, a.CompareExchange(25, 7, 200)))
			if res.OK || res.Prev != 100 {
				panic(fmt.Sprintf("failed CAS = %+v", res))
			}
			must(runtime.BlockOn(w, a.Sub(25, 40)))
			if v := must(runtime.BlockOn(w, a.Load(25))); v != 60 {
				panic(fmt.Sprintf("after sub = %d", v))
			}
		}
		w.Barrier()
	})
}

func TestBitwiseOps(t *testing.T) {
	runWorld(t, 2, func(w *runtime.World) {
		a := NewAtomicArray[uint64](w.Team(), 8, Block)
		defer a.Drop()
		if w.MyPE() == 0 {
			must(runtime.BlockOn(w, a.Store(5, 0b1100)))
			must(runtime.BlockOn(w, a.Or(5, 0b0011)))
			must(runtime.BlockOn(w, a.And(5, 0b1010)))
			must(runtime.BlockOn(w, a.Xor(5, 0b0001)))
			if v := must(runtime.BlockOn(w, a.Load(5))); v != 0b1011 {
				panic(fmt.Sprintf("bitwise result = %b", v))
			}
			// batch_bit_or from the paper: [0,1,2] |= [127, 0, 64]
			must(runtime.BlockOn(w, a.BatchOpVals(OpOr, []int{0, 1, 2}, []uint64{127, 0, 64})))
			got := must(runtime.BlockOn(w, a.BatchLoad([]int{0, 1, 2})))
			if got[0] != 127 || got[1] != 0 || got[2] != 64 {
				panic(fmt.Sprintf("batch or = %v", got))
			}
		}
		w.Barrier()
	})
}

func TestBatchOpAt(t *testing.T) {
	runWorld(t, 2, func(w *runtime.World) {
		a := NewAtomicArray[int64](w.Team(), 25, Cyclic)
		defer a.Drop()
		if w.MyPE() == 1 {
			must(runtime.BlockOn(w, a.Store(20, 1)))
			// array.batch_mul(20, [2, 10]) => 1*2*10 = 20
			must(runtime.BlockOn(w, a.BatchOpAt(OpMul, 20, []int64{2, 10})))
			if v := must(runtime.BlockOn(w, a.Load(20))); v != 20 {
				panic(fmt.Sprintf("BatchOpAt result = %d", v))
			}
		}
		w.Barrier()
	})
}

// Histogram-style concurrency: random adds from all PEs must conserve the
// total, for both native (uint64) and generic (float64) atomics.
func TestConcurrentBatchAddConserves(t *testing.T) {
	const updates = 5000
	t.Run("native", func(t *testing.T) {
		runWorld(t, 4, func(w *runtime.World) {
			a := NewAtomicArray[uint64](w.Team(), 97, Block)
			defer a.Drop()
			rng := rand.New(rand.NewSource(int64(w.MyPE())))
			idxs := make([]int, updates)
			for i := range idxs {
				idxs[i] = rng.Intn(97)
			}
			must(runtime.BlockOn(w, a.BatchAdd(idxs, 1)))
			w.Barrier()
			if sum := must(runtime.BlockOn(w, a.Sum())); sum != 4*updates {
				panic(fmt.Sprintf("sum = %d, want %d", sum, 4*updates))
			}
			w.Barrier()
		})
	})
	t.Run("generic", func(t *testing.T) {
		runWorld(t, 4, func(w *runtime.World) {
			a := NewAtomicArray[float64](w.Team(), 97, Cyclic)
			defer a.Drop()
			rng := rand.New(rand.NewSource(int64(w.MyPE())))
			idxs := make([]int, updates)
			for i := range idxs {
				idxs[i] = rng.Intn(97)
			}
			must(runtime.BlockOn(w, a.BatchAdd(idxs, 0.5)))
			w.Barrier()
			if sum := must(runtime.BlockOn(w, a.Sum())); sum != 0.5*4*updates {
				panic(fmt.Sprintf("sum = %v", sum))
			}
			w.Barrier()
		})
	})
}

func TestBatchFetchAndCAS(t *testing.T) {
	runWorld(t, 3, func(w *runtime.World) {
		a := NewAtomicArray[int64](w.Team(), 60, Block)
		defer a.Drop()
		w.Barrier()
		if w.MyPE() == 0 {
			idxs := []int{1, 20, 45, 1}
			prevs := must(runtime.BlockOn(w, a.BatchFetchOp(OpAdd, idxs, 3)))
			if len(prevs) != 4 {
				panic("wrong fetch count")
			}
			// index 1 appears twice: one of the fetches saw 0, the other 3
			if !(prevs[0] == 0 && prevs[3] == 3) && !(prevs[0] == 3 && prevs[3] == 0) {
				panic(fmt.Sprintf("fetch prevs = %v", prevs))
			}
			// dart-throw style batch CAS
			res := must(runtime.BlockOn(w, a.BatchCompareExchange([]int{2, 3}, 0, []int64{11, 12})))
			if res[0] != 0 || res[1] != 0 {
				panic(fmt.Sprintf("CAS prevs = %v", res))
			}
			got := must(runtime.BlockOn(w, a.BatchLoad([]int{2, 3})))
			if got[0] != 11 || got[1] != 12 {
				panic(fmt.Sprintf("after CAS = %v", got))
			}
		}
		w.Barrier()
	})
}

func TestPutGetAllKinds(t *testing.T) {
	runWorldSim(t, 3, func(w *runtime.World) {
		vals := make([]uint64, 40)
		for i := range vals {
			vals[i] = uint64(i * 3)
		}
		check := func(name string, put func() error, get func() ([]uint64, error)) {
			if w.MyPE() == 0 {
				if err := put(); err != nil {
					panic(fmt.Sprintf("%s put: %v", name, err))
				}
			}
			w.Barrier()
			got, err := get()
			if err != nil {
				panic(fmt.Sprintf("%s get: %v", name, err))
			}
			for i := range vals {
				if got[i] != vals[i] {
					panic(fmt.Sprintf("PE%d %s: elem %d = %d, want %d", w.MyPE(), name, i, got[i], vals[i]))
				}
			}
			w.Barrier()
		}

		ua := NewUnsafeArray[uint64](w.Team(), 40, Block)
		check("unsafe-am", func() error {
			_, err := runtime.BlockOn(w, ua.Put(0, vals))
			return err
		}, func() ([]uint64, error) { return runtime.BlockOn(w, ua.Get(0, 40)) })
		check("unsafe-unchecked", func() error {
			ua.PutUnchecked(0, vals)
			return nil
		}, func() ([]uint64, error) { return ua.GetUnchecked(0, 40), nil })
		ua.Drop()

		ll := NewLocalLockArray[uint64](w.Team(), 40, Block)
		check("locallock", func() error {
			_, err := runtime.BlockOn(w, ll.Put(0, vals))
			return err
		}, func() ([]uint64, error) { return runtime.BlockOn(w, ll.Get(0, 40)) })
		ll.Drop()

		aa := NewAtomicArray[uint64](w.Team(), 40, Cyclic)
		check("atomic", func() error {
			_, err := runtime.BlockOn(w, aa.Put(0, vals))
			return err
		}, func() ([]uint64, error) { return runtime.BlockOn(w, aa.Get(0, 40)) })
		aa.Drop()
	})
}

func TestBigPutCrossesThreshold(t *testing.T) {
	runWorldSim(t, 2, func(w *runtime.World) {
		// default agg threshold 100KB; 32Ki u64 = 256KB crosses it
		n := 32 << 10
		a := NewUnsafeArray[uint64](w.Team(), 2*n, Block)
		defer a.Drop()
		if w.MyPE() == 0 {
			vals := make([]uint64, n)
			for i := range vals {
				vals[i] = uint64(i)
			}
			must(runtime.BlockOn(w, a.Put(n, vals))) // lands entirely on PE1
		}
		w.Barrier()
		if w.MyPE() == 1 {
			local := a.LocalData()
			for i := 0; i < n; i++ {
				if local[i] != uint64(i) {
					panic(fmt.Sprintf("elem %d = %d", i, local[i]))
				}
			}
		}
		w.Barrier()
	})
}

func TestReadOnlyRejectsWrites(t *testing.T) {
	runWorld(t, 2, func(w *runtime.World) {
		a := NewUnsafeArray[int64](w.Team(), 10, Block)
		if w.MyPE() == 0 {
			must(runtime.BlockOn(w, a.Put(0, []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})))
		}
		w.Barrier()
		ro := a.IntoReadOnly()
		defer ro.Drop()
		// reads work
		if v := must(runtime.BlockOn(w, ro.Load(9))); v != 10 {
			panic(fmt.Sprintf("load = %d", v))
		}
		if got := ro.GetDirect(0, 3); got[2] != 3 {
			panic(fmt.Sprintf("direct get = %v", got))
		}
		// writes fail with an error (owner-side rejection)
		if w.MyPE() == 0 {
			_, err := runtime.BlockOn(w, ro.c.batchOp(OpStore, false, []int{1}, []int64{9}, nil))
			if err == nil {
				panic("write on ReadOnlyArray succeeded")
			}
		}
		w.Barrier()
	})
}

func TestConversionRoundTrip(t *testing.T) {
	runWorld(t, 3, func(w *runtime.World) {
		a := NewAtomicArray[uint64](w.Team(), 30, Block)
		must(runtime.BlockOn(w, a.BatchAdd([]int{int(w.MyPE())}, 5)))
		w.Barrier()
		ro := a.IntoReadOnly()
		if ro.c.Kind() != KindReadOnly {
			panic("kind not flipped")
		}
		w.Barrier() // the next conversion flips kind as soon as any PE reaches it
		ll := ro.IntoLocalLock()
		at := ll.IntoAtomic()
		if sum := must(runtime.BlockOn(w, at.Sum())); sum != 15 {
			panic(fmt.Sprintf("sum after conversions = %d", sum))
		}
		w.Barrier()
		at.Drop()
	})
}

func TestConversionBlocksOnExtraRefs(t *testing.T) {
	runWorld(t, 1, func(w *runtime.World) {
		a := NewAtomicArray[uint64](w.Team(), 10, Block)
		extra := a.Clone()
		done := make(chan *ReadOnlyArray[uint64], 1)
		go func() {
			done <- a.IntoReadOnly() // must block until extra dropped
		}()
		select {
		case <-done:
			panic("conversion completed with outstanding reference")
		default:
		}
		extra.Drop()
		ro := <-done
		ro.Drop()
	})
}

func TestSubArray(t *testing.T) {
	runWorld(t, 4, func(w *runtime.World) {
		a := NewAtomicArray[int64](w.Team(), 100, Block)
		if w.MyPE() == 0 {
			idxs := make([]int, 100)
			vals := make([]int64, 100)
			for i := range idxs {
				idxs[i], vals[i] = i, int64(i)
			}
			must(runtime.BlockOn(w, a.BatchAddVals(idxs, vals)))
		}
		w.Barrier()
		sub := a.SubArray(10, 20) // elements 10..19
		if sub.Len() != 10 {
			panic("sub len")
		}
		if v := must(runtime.BlockOn(w, sub.Load(5))); v != 15 {
			panic(fmt.Sprintf("sub load = %d", v))
		}
		if s := must(runtime.BlockOn(w, sub.Sum())); s != 145 { // 10+...+19
			panic(fmt.Sprintf("sub sum = %d", s))
		}
		w.Barrier()
		sub.Drop()
		a.Drop()
	})
}

func TestMinMaxProd(t *testing.T) {
	runWorld(t, 2, func(w *runtime.World) {
		a := NewAtomicArray[int64](w.Team(), 6, Block)
		if w.MyPE() == 0 {
			must(runtime.BlockOn(w, a.Put(0, []int64{3, 1, 4, 1, 5, 9})))
		}
		w.Barrier()
		if v := must(runtime.BlockOn(w, a.Min())); v != 1 {
			panic(fmt.Sprintf("min = %d", v))
		}
		if v := must(runtime.BlockOn(w, a.Max())); v != 9 {
			panic(fmt.Sprintf("max = %d", v))
		}
		if v := must(runtime.BlockOn(w, a.Prod())); v != 540 {
			panic(fmt.Sprintf("prod = %d", v))
		}
		w.Barrier()
		a.Drop()
	})
}

func TestShiftAndRemOps(t *testing.T) {
	runWorld(t, 2, func(w *runtime.World) {
		a := NewAtomicArray[uint64](w.Team(), 8, Block)
		defer a.Drop()
		if w.MyPE() == 0 {
			must(runtime.BlockOn(w, a.Store(6, 3)))
			must(runtime.BlockOn(w, a.Shl(6, 4))) // 3<<4 = 48
			if v := must(runtime.BlockOn(w, a.Load(6))); v != 48 {
				panic(fmt.Sprintf("shl = %d", v))
			}
			must(runtime.BlockOn(w, a.Shr(6, 2))) // 48>>2 = 12
			must(runtime.BlockOn(w, a.Rem(6, 5))) // 12%5 = 2
			if v := must(runtime.BlockOn(w, a.Load(6))); v != 2 {
				panic(fmt.Sprintf("rem = %d", v))
			}
			if prev := must(runtime.BlockOn(w, a.FetchSub(6, 1))); prev != 2 {
				panic(fmt.Sprintf("fetchsub prev = %d", prev))
			}
			if prev := must(runtime.BlockOn(w, a.FetchOp(OpMul, 6, 10))); prev != 1 {
				panic(fmt.Sprintf("fetchop prev = %d", prev))
			}
			if v := must(runtime.BlockOn(w, a.Load(6))); v != 10 {
				panic(fmt.Sprintf("final = %d", v))
			}
		}
		w.Barrier()
	})
}
