// Package chapelagg reimplements the Chapel copy-aggregator pattern the
// paper's Chapel baselines rely on (§IV-B2 credits Chapel's IndexGather
// win to a specialized CopyAggregator). Two aggregators are provided:
//
//   - DstAggregator: buffered remote updates (offset, value) applied by
//     the owner — used for Histogram-style scatter writes.
//   - SrcAggregator: buffered remote reads — a request buffer of offsets
//     travels to the owner, which answers with one bulk value reply the
//     requester scatters into its local results (Chapel's
//     SrcAggregator/CopyAggregator for gather assignments).
//
// Both use large per-destination buffers (Chapel defaults to ~8k
// elements) and asynchronous termination.
package chapelagg

import (
	"time"

	"repro/internal/shmem"
)

// DefaultBufItems matches Chapel's aggregation buffer ballpark.
const DefaultBufItems = 8192

// ApplyFn applies one aggregated update on the owner.
type ApplyFn func(off int, val uint64)

// DstAggregator batches (offset, value) updates per destination.
type DstAggregator struct {
	ctx      *shmem.Ctx
	bufItems int
	mbox     *shmem.Mailbox
	term     *shmem.Terminator
	out      [][]uint64
	apply    ApplyFn
	flushing bool // guards against re-entrant flush
}

// NewDst collectively creates a destination aggregator whose updates are
// applied on the owner with apply.
func NewDst(ctx *shmem.Ctx, bufItems int, apply ApplyFn) *DstAggregator {
	if bufItems < 1 {
		bufItems = DefaultBufItems
	}
	return &DstAggregator{
		ctx:      ctx,
		bufItems: bufItems,
		mbox:     shmem.NewMailbox(ctx, bufItems*2),
		term:     shmem.NewTerminator(ctx),
		out:      make([][]uint64, ctx.NPEs()),
		apply:    apply,
	}
}

// Update records val for offset off on pe, flushing full buffers.
func (a *DstAggregator) Update(pe, off int, val uint64) {
	a.term.NoteSent(1)
	if pe == a.ctx.MyPE() {
		a.apply(off, val)
		a.term.NoteRecv(1)
		return
	}
	a.out[pe] = append(a.out[pe], uint64(off), val)
	if (len(a.out[pe])/2)%a.bufItems == 0 {
		a.tryFlush(pe)
	}
	for len(a.out[pe])/2 >= 8*a.bufItems { // backpressure: run progress
		if !a.Advance() {
			time.Sleep(20 * time.Microsecond)
		}
		a.tryFlush(pe)
	}
}

// tryFlush attempts a non-blocking chunked send; the remainder stays
// buffered and is retried on every Advance.
func (a *DstAggregator) tryFlush(pe int) bool {
	if a.flushing {
		return false
	}
	buf := a.out[pe]
	if len(buf) == 0 {
		return true
	}
	a.flushing = true
	maxWords := a.bufItems * 2
	sent := 0
	for sent < len(buf) {
		n := min(len(buf)-sent, maxWords)
		n -= n % 2
		if n == 0 || !a.mbox.TrySend(pe, buf[sent:sent+n]) {
			break
		}
		sent += n
	}
	if sent > 0 {
		rest := copy(buf, buf[sent:])
		a.out[pe] = buf[:rest]
	}
	a.flushing = false
	return len(a.out[pe]) == 0
}

func (a *DstAggregator) tryFlushAll() bool {
	all := true
	for pe := range a.out {
		if !a.tryFlush(pe) {
			all = false
		}
	}
	return all
}

// Advance applies every available inbound update batch.
func (a *DstAggregator) Advance() bool {
	moved := false
	a.mbox.Poll(func(src int, words []uint64) {
		for k := 0; k+1 < len(words); k += 2 {
			a.apply(int(words[k]), words[k+1])
			a.term.NoteRecv(1)
			moved = true
		}
	})
	a.tryFlushAll()
	return moved
}

// Finish flushes and drains until global quiescence (all PEs call it).
func (a *DstAggregator) Finish() {
	for !a.tryFlushAll() {
		if !a.Advance() {
			time.Sleep(20 * time.Microsecond)
		}
	}
	a.term.SetDone(true)
	a.term.DrainUntilQuiet(a.Advance)
	a.ctx.Barrier()
}

// ReadFn answers one aggregated read on the owner.
type ReadFn func(off int) uint64

// SrcAggregator batches remote reads: requests carry offsets plus the
// requester's result positions; owners answer with bulk value replies.
type SrcAggregator struct {
	ctx      *shmem.Ctx
	bufItems int
	req      *shmem.Mailbox
	rep      *shmem.Mailbox
	term     *shmem.Terminator
	outOff   [][]uint64 // per-destination requested offsets
	outPos   [][]uint64 // matching local result positions
	outRep   [][]uint64 // per-destination buffered (pos, val) reply pairs
	scratch  []uint64   // reused request-message buffer
	read     ReadFn
	result   []uint64
	flushing bool // guards against re-entrant flush
}

// NewSrc collectively creates a source aggregator; read answers offsets on
// the owner and result receives gathered values on the requester.
func NewSrc(ctx *shmem.Ctx, bufItems int, read ReadFn, result []uint64) *SrcAggregator {
	if bufItems < 1 {
		bufItems = DefaultBufItems
	}
	return &SrcAggregator{
		ctx:      ctx,
		bufItems: bufItems,
		// request slot: [npos, pos..., off...]; reply: (pos,val) pairs
		req:    shmem.NewMailbox(ctx, 2*bufItems+1),
		rep:    shmem.NewMailbox(ctx, 2*bufItems),
		term:   shmem.NewTerminator(ctx),
		outOff: make([][]uint64, ctx.NPEs()),
		outPos: make([][]uint64, ctx.NPEs()),
		outRep: make([][]uint64, ctx.NPEs()),
		read:   read,
		result: result,
	}
}

// Gather requests pe's element at off into result[pos].
func (s *SrcAggregator) Gather(pe, off, pos int) {
	s.term.NoteSent(1)
	if pe == s.ctx.MyPE() {
		s.result[pos] = s.read(off)
		s.term.NoteRecv(1)
		return
	}
	s.outOff[pe] = append(s.outOff[pe], uint64(off))
	s.outPos[pe] = append(s.outPos[pe], uint64(pos))
	// attempt a flush only when another full buffer accumulated (retries
	// otherwise happen in Advance, keeping the per-call cost O(1))
	if len(s.outOff[pe])%s.bufItems == 0 {
		s.tryFlush(pe)
	}
	for len(s.outOff[pe]) >= 8*s.bufItems { // backpressure: run progress
		if !s.Advance() {
			time.Sleep(20 * time.Microsecond)
		}
		s.tryFlush(pe)
	}
}

// tryFlush sends request batches non-blockingly; unsent requests stay
// buffered and are retried on every Advance.
func (s *SrcAggregator) tryFlush(pe int) bool {
	if s.flushing {
		return false
	}
	offs, poss := s.outOff[pe], s.outPos[pe]
	if len(offs) == 0 {
		return true
	}
	s.flushing = true
	base := 0
	for base < len(offs) {
		end := min(base+s.bufItems, len(offs))
		// reuse the scratch message buffer; TrySend copies on success
		msg := s.scratch[:0]
		msg = append(msg, uint64(end-base))
		msg = append(msg, poss[base:end]...)
		msg = append(msg, offs[base:end]...)
		s.scratch = msg
		if !s.req.TrySend(pe, msg) {
			break
		}
		base = end
	}
	if base > 0 {
		n := copy(offs, offs[base:])
		copy(poss, poss[base:])
		s.outOff[pe] = offs[:n]
		s.outPos[pe] = poss[:n]
	}
	s.flushing = false
	return len(s.outOff[pe]) == 0
}

func (s *SrcAggregator) tryFlushAll() bool {
	all := true
	for pe := range s.outOff {
		if !s.tryFlush(pe) {
			all = false
		}
	}
	if !s.tryFlushReplies() {
		all = false
	}
	return all
}

// Advance serves inbound requests (buffering bulk replies) and applies
// inbound replies to the local result slice. All sends are non-blocking;
// stranded reply buffers are retried here on every call.
func (s *SrcAggregator) Advance() bool {
	moved := false
	s.req.Poll(func(src int, words []uint64) {
		n := int(words[0])
		poss := words[1 : 1+n]
		offs := words[1+n : 1+2*n]
		for k := 0; k < n; k++ {
			s.outRep[src] = append(s.outRep[src], poss[k], s.read(int(offs[k])))
		}
		moved = true
	})
	moved = s.drainReplies() || moved
	s.tryFlushAll()
	return moved
}

// tryFlushReplies sends buffered (pos, val) reply pairs without blocking.
func (s *SrcAggregator) tryFlushReplies() bool {
	all := true
	maxWords := 2 * s.bufItems
	for pe := range s.outRep {
		buf := s.outRep[pe]
		if len(buf) == 0 {
			continue
		}
		sent := 0
		for sent < len(buf) {
			n := min(len(buf)-sent, maxWords)
			n -= n % 2
			if n == 0 || !s.rep.TrySend(pe, buf[sent:sent+n]) {
				break
			}
			sent += n
		}
		if sent > 0 {
			rest := copy(buf, buf[sent:])
			s.outRep[pe] = buf[:rest]
		}
		if len(s.outRep[pe]) > 0 {
			all = false
		}
	}
	return all
}

func (s *SrcAggregator) drainReplies() bool {
	moved := false
	s.rep.Poll(func(src int, words []uint64) {
		for k := 0; k+1 < len(words); k += 2 {
			s.result[words[k]] = words[k+1]
			s.term.NoteRecv(1)
		}
		moved = true
	})
	return moved
}

// Finish flushes requests and serves traffic until every gather answered.
func (s *SrcAggregator) Finish() {
	for !s.tryFlushAll() {
		if !s.Advance() {
			time.Sleep(20 * time.Microsecond)
		}
	}
	s.term.SetDone(true)
	s.term.DrainUntilQuiet(s.Advance)
	s.ctx.Barrier()
}
