package chapelagg

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/runtime"
	"repro/internal/shmem"
)

func runWorld(t *testing.T, pes int, fn func(c *shmem.Ctx)) {
	t.Helper()
	cfg := runtime.Config{PEs: pes, WorkersPerPE: 1, Lamellae: runtime.LamellaeShmem}
	if err := runtime.Run(cfg, func(w *runtime.World) { fn(shmem.New(w)) }); err != nil {
		t.Fatal(err)
	}
}

func TestDstAggregatorHistogram(t *testing.T) {
	var total atomic.Uint64
	const updates = 3000
	const tablePerPE = 50
	runWorld(t, 4, func(c *shmem.Ctx) {
		table := make([]uint64, tablePerPE)
		agg := NewDst(c, 32, func(off int, val uint64) { table[off] += val })
		c.Barrier()
		rng := rand.New(rand.NewSource(int64(c.MyPE() * 3)))
		for i := 0; i < updates; i++ {
			g := rng.Intn(tablePerPE * c.NPEs())
			agg.Update(g/tablePerPE, g%tablePerPE, 1)
			if i%100 == 0 {
				agg.Advance()
			}
		}
		agg.Finish()
		var local uint64
		for _, v := range table {
			local += v
		}
		total.Add(local)
		c.Barrier()
	})
	if total.Load() != 4*updates {
		t.Errorf("total = %d, want %d", total.Load(), 4*updates)
	}
}

func TestSrcAggregatorGather(t *testing.T) {
	runWorld(t, 4, func(c *shmem.Ctx) {
		const perPE = 40
		const reqs = 300
		data := make([]uint64, perPE)
		for i := range data {
			data[i] = uint64(c.MyPE()*1_000_000 + i)
		}
		results := make([]uint64, reqs)
		agg := NewSrc(c, 16, func(off int) uint64 { return data[off] }, results)
		c.Barrier()
		rng := rand.New(rand.NewSource(int64(c.MyPE() + 17)))
		want := make([]uint64, reqs)
		for i := 0; i < reqs; i++ {
			pe := rng.Intn(c.NPEs())
			off := rng.Intn(perPE)
			want[i] = uint64(pe*1_000_000 + off)
			agg.Gather(pe, off, i)
			if i%50 == 0 {
				agg.Advance()
			}
		}
		agg.Finish()
		for i := range want {
			if results[i] != want[i] {
				panic("wrong gathered value")
			}
		}
		c.Barrier()
	})
}
