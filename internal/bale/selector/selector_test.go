package selector

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/runtime"
	"repro/internal/shmem"
)

func runWorld(t *testing.T, pes int, fn func(c *shmem.Ctx)) {
	t.Helper()
	cfg := runtime.Config{PEs: pes, WorkersPerPE: 1, Lamellae: runtime.LamellaeShmem}
	if err := runtime.Run(cfg, func(w *runtime.World) { fn(shmem.New(w)) }); err != nil {
		t.Fatal(err)
	}
}

func TestSelectorHistogram(t *testing.T) {
	var total atomic.Uint64
	const updates = 1500
	const tablePerPE = 32
	runWorld(t, 4, func(c *shmem.Ctx) {
		table := make([]uint64, tablePerPE)
		s := New(c, 1, 1, 64, func(mbx, src int, item []uint64) {
			table[item[0]]++
		})
		c.Barrier()
		rng := rand.New(rand.NewSource(int64(c.MyPE())))
		for i := 0; i < updates; i++ {
			g := rng.Intn(tablePerPE * c.NPEs())
			s.Send(0, g/tablePerPE, []uint64{uint64(g % tablePerPE)})
			if i%64 == 0 {
				s.Advance()
			}
		}
		s.Done()
		var local uint64
		for _, v := range table {
			local += v
		}
		total.Add(local)
		c.Barrier()
	})
	if total.Load() != 4*updates {
		t.Errorf("total = %d, want %d", total.Load(), 4*updates)
	}
}

// Request/response across two mailboxes (the IndexGather actor pattern).
func TestSelectorTwoMailboxes(t *testing.T) {
	runWorld(t, 3, func(c *shmem.Ctx) {
		const perPE = 50
		data := make([]uint64, perPE)
		for i := range data {
			data[i] = uint64(c.MyPE()*1000 + i)
		}
		results := make([]uint64, perPE)
		var got atomic.Int64
		var s *Selector
		s = New(c, 2, 3, 16, func(mbx, src int, item []uint64) {
			switch mbx {
			case 0: // request: [offset, requester, pos]
				s.Send(1, int(item[1]), []uint64{item[2], data[item[0]], 0})
			case 1: // response: [pos, value, _]
				results[item[0]] = item[1]
				got.Add(1)
			}
		})
		c.Barrier()
		rng := rand.New(rand.NewSource(int64(c.MyPE() + 9)))
		want := make([]uint64, perPE)
		for i := 0; i < perPE; i++ {
			pe := rng.Intn(c.NPEs())
			off := rng.Intn(perPE)
			want[i] = uint64(pe*1000 + off)
			s.Send(0, pe, []uint64{uint64(off), uint64(c.MyPE()), uint64(i)})
			if i%16 == 0 {
				s.Advance()
			}
		}
		s.Done()
		if got.Load() != perPE {
			panic("missing responses")
		}
		for i := range want {
			if results[i] != want[i] {
				panic("wrong gathered value")
			}
		}
	})
}
