// Package selector reimplements the HClib "Selectors" actor model the
// paper compares against (§II, §IV): each PE hosts one actor with a small
// set of typed mailboxes; sends are fine-grained per-item messages that
// the library aggregates per destination, handlers run message-driven on
// the destination, may send further messages, and a distributed
// termination protocol ends the epoch after every actor called Done and
// all messages drained.
package selector

import (
	"fmt"
	"time"

	"repro/internal/shmem"
)

// Handler consumes one message in one mailbox of the actor.
type Handler func(mbx int, src int, item []uint64)

// Selector is one PE's actor handle.
type Selector struct {
	ctx       *shmem.Ctx
	itemWords int
	bufItems  int
	nMbx      int
	mbox      *shmem.Mailbox
	term      *shmem.Terminator
	out       [][]uint64
	handler   Handler
	flushing  bool // guards against re-entrant flush
	advancing bool // breaks re-entrant Advance recursion
}

// New collectively creates a selector actor with nMailboxes logical
// mailboxes, fixed item width, and a per-destination aggregation buffer.
func New(ctx *shmem.Ctx, nMailboxes, itemWords, bufItems int, handler Handler) *Selector {
	if nMailboxes < 1 || itemWords < 1 || bufItems < 1 {
		panic("selector: bad geometry")
	}
	return &Selector{
		ctx:       ctx,
		itemWords: itemWords,
		bufItems:  bufItems,
		nMbx:      nMailboxes,
		mbox:      shmem.NewMailbox(ctx, bufItems*(itemWords+1)),
		term:      shmem.NewTerminator(ctx),
		out:       make([][]uint64, ctx.NPEs()),
		handler:   handler,
	}
}

// Send delivers item to the mbx mailbox of the actor on dst. Local sends
// still traverse the handler (actors are location-transparent).
func (s *Selector) Send(mbx, dst int, item []uint64) {
	if len(item) != s.itemWords {
		panic(fmt.Sprintf("selector: item width %d, want %d", len(item), s.itemWords))
	}
	if mbx < 0 || mbx >= s.nMbx {
		panic("selector: bad mailbox index")
	}
	s.term.NoteSent(1)
	if dst == s.ctx.MyPE() {
		s.handler(mbx, dst, item)
		s.term.NoteRecv(1)
		return
	}
	s.out[dst] = append(s.out[dst], uint64(mbx))
	s.out[dst] = append(s.out[dst], item...)
	if (len(s.out[dst])/(s.itemWords+1))%s.bufItems == 0 {
		s.tryFlush(dst)
	}
	for !s.advancing && len(s.out[dst])/(s.itemWords+1) >= 8*s.bufItems {
		if !s.Advance() {
			time.Sleep(20 * time.Microsecond)
		}
		s.tryFlush(dst)
	}
}

// tryFlush attempts a non-blocking chunked send (whole messages only);
// whatever does not fit stays buffered. Reports whether it is now empty.
func (s *Selector) tryFlush(dst int) bool {
	if s.flushing {
		return false
	}
	buf := s.out[dst]
	if len(buf) == 0 {
		return true
	}
	s.flushing = true
	stride := s.itemWords + 1
	maxWords := s.bufItems * stride
	sent := 0
	for sent < len(buf) {
		n := min(len(buf)-sent, maxWords)
		n -= n % stride
		if n == 0 || !s.mbox.TrySend(dst, buf[sent:sent+n]) {
			break
		}
		sent += n
	}
	if sent > 0 {
		rest := copy(buf, buf[sent:])
		s.out[dst] = buf[:rest]
	}
	s.flushing = false
	return len(s.out[dst]) == 0
}

// tryFlushAll attempts a non-blocking flush of every buffer.
func (s *Selector) tryFlushAll() bool {
	all := true
	for dst := range s.out {
		if !s.tryFlush(dst) {
			all = false
		}
	}
	return all
}

// FlushAll pushes every non-empty aggregation buffer onto the wire,
// running the message loop while destinations exert backpressure
// (sleeping between retries rather than spinning).
func (s *Selector) FlushAll() {
	for !s.tryFlushAll() {
		if !s.Advance() {
			time.Sleep(20 * time.Microsecond)
		}
	}
}

// Advance runs the actor's message loop once, dispatching every available
// message to the handler.
func (s *Selector) Advance() bool {
	if s.advancing {
		return false // re-entered through a co-progress cycle
	}
	s.advancing = true
	defer func() { s.advancing = false }()
	moved := false
	s.mbox.Poll(func(src int, words []uint64) {
		stride := s.itemWords + 1
		n := len(words) / stride
		for k := 0; k < n; k++ {
			rec := words[k*stride : (k+1)*stride]
			s.handler(int(rec[0]), src, rec[1:])
			s.term.NoteRecv(1)
			moved = true
		}
	})
	s.tryFlushAll() // retry stranded buffers (incl. handler sends)
	return moved
}

// Done declares this actor finished producing root messages and processes
// traffic until global termination (hclib's done + wait-for-quiescence).
// Handlers may keep sending during the drain; those messages are counted
// and drained too.
func (s *Selector) Done() {
	s.FlushAll()
	s.term.SetDone(true)
	s.term.DrainUntilQuiet(s.Advance)
	s.ctx.Barrier()
}

// Reset prepares for another epoch (collective).
func (s *Selector) Reset() {
	s.term.Reset()
	for i := range s.out {
		s.out[i] = s.out[i][:0]
	}
	s.ctx.Barrier()
}
