package exstack2

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/runtime"
	"repro/internal/shmem"
)

func runWorld(t *testing.T, pes int, fn func(c *shmem.Ctx)) {
	t.Helper()
	cfg := runtime.Config{PEs: pes, WorkersPerPE: 1, Lamellae: runtime.LamellaeShmem}
	if err := runtime.Run(cfg, func(w *runtime.World) { fn(shmem.New(w)) }); err != nil {
		t.Fatal(err)
	}
}

func TestExstack2Histogram(t *testing.T) {
	var total atomic.Uint64
	const updatesPerPE = 2000
	const tablePerPE = 64
	runWorld(t, 4, func(c *shmem.Ctx) {
		table := make([]uint64, tablePerPE)
		ex := New(c, 1, 64, func(src int, item []uint64) {
			table[item[0]]++
		})
		c.Barrier()
		rng := rand.New(rand.NewSource(int64(c.MyPE() + 1)))
		for i := 0; i < updatesPerPE; i++ {
			g := rng.Intn(tablePerPE * c.NPEs())
			ex.Push(g/tablePerPE, []uint64{uint64(g % tablePerPE)})
			if i%128 == 0 {
				ex.Advance()
			}
		}
		ex.Finish()
		var local uint64
		for _, v := range table {
			local += v
		}
		total.Add(local)
		c.Barrier()
	})
	if total.Load() != 4*updatesPerPE {
		t.Errorf("total = %d, want %d", total.Load(), 4*updatesPerPE)
	}
}

// Handlers that push new work (randperm-style re-throws) must still
// terminate correctly.
func TestExstack2HandlerRepush(t *testing.T) {
	var landed atomic.Uint64
	runWorld(t, 3, func(c *shmem.Ctx) {
		var ex *Exstack2
		ex = New(c, 2, 16, func(src int, item []uint64) {
			hops, id := item[0], item[1]
			if hops == 0 {
				landed.Add(1)
				return
			}
			ex.Push(int(id)%c.NPEs(), []uint64{hops - 1, id + 1})
		})
		c.Barrier()
		for i := 0; i < 20; i++ {
			ex.Push((c.MyPE()+1)%c.NPEs(), []uint64{5, uint64(i)})
		}
		ex.Finish()
	})
	if landed.Load() != 3*20 {
		t.Errorf("landed = %d, want 60", landed.Load())
	}
}

func TestExstack2ResetAndReuse(t *testing.T) {
	var count atomic.Uint64
	runWorld(t, 2, func(c *shmem.Ctx) {
		ex := New(c, 1, 8, func(src int, item []uint64) { count.Add(1) })
		c.Barrier()
		for phase := 0; phase < 3; phase++ {
			for i := 0; i < 10; i++ {
				ex.Push(1-c.MyPE(), []uint64{uint64(i)})
			}
			ex.Finish()
			ex.Reset()
		}
	})
	if count.Load() != 2*10*3 {
		t.Errorf("count = %d, want 60", count.Load())
	}
}
