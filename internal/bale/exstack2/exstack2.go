// Package exstack2 reimplements BALE's Exstack2 library: the asynchronous
// successor of Exstack. Per-destination buffers flush as they fill —
// without any global barrier — through per-source mailbox slots, and
// completion uses asynchronous distributed termination detection instead
// of collective rounds. Items are delivered to a handler callback, which
// may itself push new items (the mechanism Randperm-style kernels use to
// re-throw).
package exstack2

import (
	"fmt"
	"time"

	"repro/internal/shmem"
)

// Handler consumes one delivered item on the destination PE.
type Handler func(src int, item []uint64)

// Exstack2 is one PE's handle.
type Exstack2 struct {
	ctx       *shmem.Ctx
	itemWords int
	bufItems  int
	mbox      *shmem.Mailbox
	term      *shmem.Terminator
	out       [][]uint64
	handler   Handler
	draining  bool
	flushing  bool   // guards against re-entrant flush via progress callbacks
	coWork    func() // sibling-plane progress (see SetCoProgress)
	advancing bool   // breaks co-progress recursion cycles
}

// New collectively creates an Exstack2. Termination counts items at push
// (origin) and delivery (destination), so buffered or in-flight items
// always hold off quiescence.
func New(ctx *shmem.Ctx, itemWords, bufItems int, handler Handler) *Exstack2 {
	if itemWords < 1 || bufItems < 1 {
		panic("exstack2: bad geometry")
	}
	e := &Exstack2{
		ctx:       ctx,
		itemWords: itemWords,
		bufItems:  bufItems,
		mbox:      shmem.NewMailbox(ctx, bufItems*itemWords),
		term:      shmem.NewTerminator(ctx),
		out:       make([][]uint64, ctx.NPEs()),
		handler:   handler,
	}
	return e
}

// Push appends an item for dst, attempting a non-blocking flush when the
// buffer fills. All internal sends are non-blocking (stranded buffers are
// retried on every Advance), which makes the library deadlock-free by
// construction: no goroutine ever waits on a remote credit while holding
// progress guards. Under backpressure the pusher itself runs the progress
// engine until the buffer drains toward its bound.
func (e *Exstack2) Push(dst int, item []uint64) {
	if len(item) != e.itemWords {
		panic(fmt.Sprintf("exstack2: item width %d, want %d", len(item), e.itemWords))
	}
	e.term.NoteSent(1)
	e.out[dst] = append(e.out[dst], item...)
	if (len(e.out[dst])/e.itemWords)%e.bufItems == 0 {
		e.tryFlush(dst)
	}
	// Backpressure (only at top level; handler re-pushes must not spin):
	for !e.advancing && len(e.out[dst])/e.itemWords >= 8*e.bufItems {
		if !e.Advance() {
			time.Sleep(20 * time.Microsecond)
		}
		e.tryFlush(dst)
	}
}

// tryFlush attempts to put dst's buffer on the wire without blocking,
// in slot-sized chunks; whatever does not fit stays buffered. Reports
// whether the buffer is now empty.
func (e *Exstack2) tryFlush(dst int) bool {
	if e.flushing {
		return false
	}
	buf := e.out[dst]
	if len(buf) == 0 {
		return true
	}
	e.flushing = true
	// Send chunks from the front in place; compact only after progress so
	// a failed attempt (no credit) costs one local check, not a copy.
	maxWords := e.bufItems * e.itemWords
	sent := 0
	for sent < len(buf) {
		n := min(len(buf)-sent, maxWords)
		if !e.mbox.TrySend(dst, buf[sent:sent+n]) {
			break
		}
		sent += n
	}
	if sent > 0 {
		rest := copy(buf, buf[sent:])
		e.out[dst] = buf[:rest]
	}
	e.flushing = false
	return len(e.out[dst]) == 0
}

// tryFlushAll attempts a non-blocking flush of every buffer; reports
// whether all are empty.
func (e *Exstack2) tryFlushAll() bool {
	all := true
	for dst := range e.out {
		if !e.tryFlush(dst) {
			all = false
		}
	}
	return all
}

// FlushAll pushes every non-empty buffer onto the wire, running the
// progress engine while destinations exert backpressure. Waiting on
// remote credits sleeps briefly instead of spinning, so oversubscribed
// schedulers (many PE goroutines per core) keep everyone progressing.
func (e *Exstack2) FlushAll() {
	for !e.tryFlushAll() {
		if !e.Advance() {
			time.Sleep(20 * time.Microsecond)
		}
	}
}

// SetCoProgress registers a sibling plane's progress function, invoked on
// every Advance. Multi-plane kernels need it: while a PE drains or blocks
// on one plane it must keep serving the others, or mutual blocking sends
// deadlock. Linking planes both ways is safe: Advance breaks recursion
// cycles internally.
func (e *Exstack2) SetCoProgress(f func()) { e.coWork = f }

// Advance runs the progress engine: deliver every available inbound item
// to the handler. Returns whether anything was delivered. Call it
// regularly from compute loops (the BALE progress-function discipline).
func (e *Exstack2) Advance() bool {
	if e.advancing {
		return false // re-entered through a co-progress cycle
	}
	e.advancing = true
	defer func() { e.advancing = false }()
	delivered := false
	e.mbox.Poll(func(src int, words []uint64) {
		n := len(words) / e.itemWords
		for k := 0; k < n; k++ {
			e.handler(src, words[k*e.itemWords:(k+1)*e.itemWords])
			e.term.NoteRecv(1)
			delivered = true
		}
	})
	if e.coWork != nil {
		e.coWork()
	}
	e.tryFlushAll() // retry stranded buffers (incl. handler re-pushes)
	return delivered
}

// Finish flushes, then serves inbound traffic until the whole world is
// quiescent (every pushed item delivered everywhere). All PEs call it.
func (e *Exstack2) Finish() {
	e.FlushAll()
	e.term.SetDone(true)
	e.term.DrainUntilQuiet(e.Advance)
	e.ctx.Barrier()
}

// Reset prepares the instance for another phase (collective: all PEs,
// with the implied barrier from Finish or an explicit one).
func (e *Exstack2) Reset() {
	e.term.Reset()
	for i := range e.out {
		e.out[i] = e.out[i][:0]
	}
	e.ctx.Barrier()
}
