package conveyor

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/runtime"
	"repro/internal/shmem"
)

func runWorld(t *testing.T, pes int, fn func(c *shmem.Ctx)) {
	t.Helper()
	cfg := runtime.Config{PEs: pes, WorkersPerPE: 1, Lamellae: runtime.LamellaeShmem}
	if err := runtime.Run(cfg, func(w *runtime.World) { fn(shmem.New(w)) }); err != nil {
		t.Fatal(err)
	}
}

// Delivery must be the exact multiset of pushes, across two hops, for
// grid-imperfect PE counts too.
func TestConveyorDeliveryMultiset(t *testing.T) {
	for _, pes := range []int{2, 3, 4, 5, 7, 9} {
		pes := pes
		t.Run(fmt.Sprintf("pes=%d", pes), func(t *testing.T) {
			var mu sync.Mutex
			sentAll := map[uint64]int{}
			gotAll := map[uint64]int{}
			runWorld(t, pes, func(c *shmem.Ctx) {
				cv := New(c, 2, 8, func(item []uint64) {
					if int(item[0]) != c.MyPE() {
						panic(fmt.Sprintf("item for PE%d delivered to PE%d", item[0], c.MyPE()))
					}
					mu.Lock()
					gotAll[item[1]]++
					mu.Unlock()
				})
				c.Barrier()
				rng := rand.New(rand.NewSource(int64(c.MyPE() * 7)))
				for i := 0; i < 200; i++ {
					dst := rng.Intn(c.NPEs())
					tag := uint64(c.MyPE()*100000 + i)
					mu.Lock()
					sentAll[tag]++
					mu.Unlock()
					cv.Push(dst, []uint64{uint64(dst), tag})
					if i%37 == 0 {
						cv.Advance()
					}
				}
				cv.Finish()
			})
			if len(gotAll) != len(sentAll) {
				t.Fatalf("got %d distinct items, sent %d", len(gotAll), len(sentAll))
			}
			for tag, n := range sentAll {
				if gotAll[tag] != n {
					t.Fatalf("tag %d: got %d want %d", tag, gotAll[tag], n)
				}
			}
		})
	}
}

func TestConveyorSelfDelivery(t *testing.T) {
	var n atomic.Int64
	runWorld(t, 4, func(c *shmem.Ctx) {
		cv := New(c, 1, 4, func(item []uint64) { n.Add(1) })
		c.Barrier()
		for i := 0; i < 5; i++ {
			cv.Push(c.MyPE(), []uint64{uint64(i)})
		}
		cv.Finish()
	})
	if n.Load() != 20 {
		t.Errorf("self deliveries = %d", n.Load())
	}
}
