// Package conveyor reimplements BALE's Conveyors: asynchronous streaming
// many-to-many communication with *two-hop* matrix routing. PEs form a
// logical rows×cols grid; an item for dst first travels along the
// sender's row to the PE sharing dst's column (the relay), then down the
// column to dst. Each PE therefore keeps buffers only for its ~2·sqrt(P)
// row and column neighbors, trading an extra hop for a smaller memory
// footprint and fuller buffers — the properties the paper's §II and §IV
// describe.
package conveyor

import (
	"fmt"
	"math"
	"time"

	"repro/internal/shmem"
)

// Handler consumes one delivered item at its final destination.
type Handler func(item []uint64)

// Conveyor is one PE's handle.
type Conveyor struct {
	ctx       *shmem.Ctx
	itemWords int // payload words (excluding the routing word)
	bufItems  int
	cols      int
	mbox      *shmem.Mailbox
	term      *shmem.Terminator
	out       [][]uint64 // per next-hop buffered routed items
	handler   Handler
	draining  bool
	flushing  bool   // guards against re-entrant flush via progress callbacks
	coWork    func() // sibling-plane progress (see SetCoProgress)
	advancing bool   // breaks co-progress recursion cycles
}

// New collectively creates a conveyor with the given payload width and
// per-neighbor buffer capacity (in items).
func New(ctx *shmem.Ctx, itemWords, bufItems int, handler Handler) *Conveyor {
	if itemWords < 1 || bufItems < 1 {
		panic("conveyor: bad geometry")
	}
	cols := int(math.Ceil(math.Sqrt(float64(ctx.NPEs()))))
	c := &Conveyor{
		ctx:       ctx,
		itemWords: itemWords,
		bufItems:  bufItems,
		cols:      cols,
		mbox:      shmem.NewMailbox(ctx, bufItems*(itemWords+1)),
		term:      shmem.NewTerminator(ctx),
		out:       make([][]uint64, ctx.NPEs()),
		handler:   handler,
	}
	return c
}

// relayFor returns the first hop for an item of mine destined to dst: the
// PE in my row holding dst's column (falling back to dst when the grid
// position does not exist because P is not a perfect multiple).
func (c *Conveyor) relayFor(dst int) int {
	relay := (c.ctx.MyPE()/c.cols)*c.cols + dst%c.cols
	if relay >= c.ctx.NPEs() {
		return dst
	}
	return relay
}

// Push injects an item for dst (counted for termination at the origin).
// All internal sends are non-blocking; under backpressure the pusher runs
// the progress engine until its buffers drain toward their bound.
func (c *Conveyor) Push(dst int, item []uint64) {
	if len(item) != c.itemWords {
		panic(fmt.Sprintf("conveyor: item width %d, want %d", len(item), c.itemWords))
	}
	c.term.NoteSent(1)
	c.route(dst, item)
	for !c.advancing && c.overfull() {
		if !c.Advance() {
			time.Sleep(20 * time.Microsecond)
		}
	}
}

// overfull reports whether any hop buffer exceeds its backpressure bound.
func (c *Conveyor) overfull() bool {
	limit := 8 * c.bufItems * (c.itemWords + 1)
	for _, b := range c.out {
		if len(b) >= limit {
			return true
		}
	}
	return false
}

// route buffers a routed item toward its next hop, flushing full buffers.
func (c *Conveyor) route(dst int, item []uint64) {
	if dst == c.ctx.MyPE() {
		c.deliver(item)
		return
	}
	hop := dst
	if dst%c.cols != c.ctx.MyPE()%c.cols {
		hop = c.relayFor(dst) // row hop first
	}
	if hop == c.ctx.MyPE() {
		// I am the relay for my own row position; go straight down.
		hop = dst
	}
	c.out[hop] = append(c.out[hop], uint64(dst))
	c.out[hop] = append(c.out[hop], item...)
	if (len(c.out[hop])/(c.itemWords+1))%c.bufItems == 0 {
		c.tryFlush(hop)
	}
}

func (c *Conveyor) deliver(item []uint64) {
	c.handler(item)
	c.term.NoteRecv(1)
}

// tryFlush attempts a non-blocking chunked send of one hop buffer;
// whatever does not fit stays buffered. Reports whether it is now empty.
// Chunks must be a whole number of routed records so the receiver's
// stride parsing stays aligned.
func (c *Conveyor) tryFlush(hop int) bool {
	if c.flushing {
		return false
	}
	buf := c.out[hop]
	if len(buf) == 0 {
		return true
	}
	c.flushing = true
	stride := c.itemWords + 1
	maxWords := c.bufItems * stride
	sent := 0
	for sent < len(buf) {
		n := min(len(buf)-sent, maxWords)
		n -= n % stride
		if n == 0 || !c.mbox.TrySend(hop, buf[sent:sent+n]) {
			break
		}
		sent += n
	}
	if sent > 0 {
		rest := copy(buf, buf[sent:])
		c.out[hop] = buf[:rest]
	}
	c.flushing = false
	return len(c.out[hop]) == 0
}

// tryFlushAll attempts a non-blocking flush of every hop buffer.
func (c *Conveyor) tryFlushAll() bool {
	all := true
	for hop := range c.out {
		if !c.tryFlush(hop) {
			all = false
		}
	}
	return all
}

// FlushAll pushes every non-empty buffer onto the wire, running the
// progress engine while neighbors exert backpressure (sleeping between
// retries rather than spinning; see Exstack2.FlushAll).
func (c *Conveyor) FlushAll() {
	for !c.tryFlushAll() {
		if !c.Advance() {
			time.Sleep(20 * time.Microsecond)
		}
	}
}

// SetCoProgress registers a sibling plane's progress function, invoked on
// every Advance (multi-plane kernels must keep all planes moving while
// blocked on one; linking both ways is safe, recursion is broken inside
// Advance).
func (c *Conveyor) SetCoProgress(f func()) { c.coWork = f }

// Advance runs the progress engine: relay or deliver every available
// inbound routed item. Returns whether anything moved.
func (c *Conveyor) Advance() bool {
	if c.advancing {
		return false // re-entered through a co-progress cycle
	}
	c.advancing = true
	defer func() { c.advancing = false }()
	moved := false
	c.mbox.Poll(func(src int, words []uint64) {
		stride := c.itemWords + 1
		n := len(words) / stride
		for k := 0; k < n; k++ {
			rec := words[k*stride : (k+1)*stride]
			dst := int(rec[0])
			if dst == c.ctx.MyPE() {
				c.deliver(rec[1:])
			} else {
				c.route(dst, rec[1:]) // second hop
			}
			moved = true
		}
	})
	if c.coWork != nil {
		c.coWork()
	}
	c.tryFlushAll() // retry stranded buffers (incl. relayed second hops)
	return moved
}

// Finish flushes and serves relay/delivery traffic until every injected
// item has reached its final destination everywhere. All PEs call it.
func (c *Conveyor) Finish() {
	c.FlushAll()
	c.term.SetDone(true)
	c.term.DrainUntilQuiet(c.Advance)
	c.ctx.Barrier()
}

// Reset prepares for another phase (collective).
func (c *Conveyor) Reset() {
	c.term.Reset()
	for i := range c.out {
		c.out[i] = c.out[i][:0]
	}
	c.ctx.Barrier()
}
