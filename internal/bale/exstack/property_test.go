package exstack

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/shmem"
)

// Property: across random world sizes, buffer depths and item widths, the
// popped multiset equals the pushed multiset and every item arrives at
// its intended destination.
func TestExstackDeliveryMultiset(t *testing.T) {
	for _, tc := range []struct{ pes, buf, words, items int }{
		{2, 4, 1, 100},
		{3, 7, 2, 211},
		{5, 16, 3, 500},
		{4, 1, 1, 64}, // single-item buffers force many exchanges
	} {
		tc := tc
		t.Run(fmt.Sprintf("pes%d_buf%d_w%d", tc.pes, tc.buf, tc.words), func(t *testing.T) {
			var mu sync.Mutex
			sent := map[string]int{}
			got := map[string]int{}
			runWorld(t, tc.pes, func(c *shmem.Ctx) {
				ex := New(c, tc.words, tc.buf)
				rng := rand.New(rand.NewSource(int64(c.MyPE()*31 + tc.items)))
				pushed := 0
				for ex.Proceed(pushed == tc.items) {
					for pushed < tc.items {
						dst := rng.Intn(c.NPEs())
						item := make([]uint64, tc.words)
						item[0] = uint64(c.MyPE()*1_000_000 + pushed)
						for k := 1; k < tc.words; k++ {
							item[k] = uint64(dst)
						}
						key := fmt.Sprintf("%d->%d:%d", c.MyPE(), dst, item[0])
						if !ex.Push(dst, item) {
							break
						}
						mu.Lock()
						sent[key]++
						mu.Unlock()
						pushed++
					}
					ex.Exchange()
					for {
						src, item, ok := ex.Pop()
						if !ok {
							break
						}
						for k := 1; k < tc.words; k++ {
							if item[k] != uint64(c.MyPE()) {
								panic("item delivered to wrong destination")
							}
						}
						key := fmt.Sprintf("%d->%d:%d", src, c.MyPE(), item[0])
						mu.Lock()
						got[key]++
						mu.Unlock()
					}
				}
				c.Barrier()
			})
			if len(got) != len(sent) {
				t.Fatalf("got %d distinct items, sent %d", len(got), len(sent))
			}
			for k, n := range sent {
				if got[k] != n {
					t.Fatalf("item %s: got %d want %d", k, got[k], n)
				}
			}
		})
	}
}
