package exstack

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/runtime"
	"repro/internal/shmem"
)

func runWorld(t *testing.T, pes int, fn func(c *shmem.Ctx)) {
	t.Helper()
	cfg := runtime.Config{PEs: pes, WorkersPerPE: 1, Lamellae: runtime.LamellaeShmem}
	if err := runtime.Run(cfg, func(w *runtime.World) { fn(shmem.New(w)) }); err != nil {
		t.Fatal(err)
	}
}

// Mini histogram over Exstack: each PE sends updates; owners apply to a
// local table; totals must conserve.
func TestExstackHistogram(t *testing.T) {
	var total atomic.Uint64
	const updatesPerPE = 1000
	const tablePerPE = 64
	runWorld(t, 4, func(c *shmem.Ctx) {
		ex := New(c, 1, 32)
		table := make([]uint64, tablePerPE)
		rng := rand.New(rand.NewSource(int64(c.MyPE())))
		sent := 0
		for ex.Proceed(sent == updatesPerPE) {
			for sent < updatesPerPE {
				g := rng.Intn(tablePerPE * c.NPEs())
				if !ex.Push(g/tablePerPE, []uint64{uint64(g % tablePerPE)}) {
					break
				}
				sent++
			}
			ex.Exchange()
			for {
				_, item, ok := ex.Pop()
				if !ok {
					break
				}
				table[item[0]]++
			}
		}
		c.Barrier()
		var local uint64
		for _, v := range table {
			local += v
		}
		total.Add(local)
		c.Barrier()
	})
	if total.Load() != 4*updatesPerPE {
		t.Errorf("total = %d, want %d", total.Load(), 4*updatesPerPE)
	}
}

func TestExstackPushFullBuffer(t *testing.T) {
	runWorld(t, 2, func(c *shmem.Ctx) {
		ex := New(c, 2, 3)
		for i := 0; i < 3; i++ {
			if !ex.Push(1, []uint64{uint64(i), uint64(i * 2)}) {
				panic("push should fit")
			}
		}
		if ex.Push(1, []uint64{9, 9}) {
			panic("push should fail when full")
		}
		ex.Exchange()
		if c.MyPE() == 1 {
			count := 0
			for {
				src, item, ok := ex.Pop()
				if !ok {
					break
				}
				if len(item) != 2 || item[1] != item[0]*2 {
					panic(fmt.Sprintf("item %v from %d", item, src))
				}
				count++
			}
			if count != 6 { // both PEs pushed 3 items to PE1
				panic(fmt.Sprintf("popped %d", count))
			}
		}
		c.Barrier()
		// second exchange delivers the item that did not fit
		if c.MyPE() == 0 {
			ex.Push(1, []uint64{9, 18})
		}
		ex.Exchange()
		if c.MyPE() == 1 {
			_, item, ok := ex.Pop()
			if !ok || item[0] != 9 {
				panic("second round item missing")
			}
		}
		c.Barrier()
	})
}
