// Package exstack reimplements BALE's Exstack library: synchronous,
// bulk-synchronous aggregation over SHMEM. Every PE accumulates items
// into per-destination buffers; when any buffer fills (or the caller
// decides), all PEs enter a collective Exchange that moves every buffer
// to its destination, after which items are popped locally. The paper
// compares Lamellar against this library in Figs. 3–5.
package exstack

import (
	"fmt"

	"repro/internal/shmem"
)

// Exstack is one PE's handle. Items are fixed-width []uint64 records.
type Exstack struct {
	ctx       *shmem.Ctx
	itemWords int
	bufItems  int

	out     [][]uint64 // per-destination outgoing items (flattened words)
	in      *shmem.Sym[uint64]
	inCnt   *shmem.Sym[uint64]
	popSrc  int
	popIdx  int
	pending int // items pushed since last exchange (all destinations)
}

// New collectively creates an Exstack with the given item width (in
// 64-bit words) and per-destination buffer capacity (in items).
func New(ctx *shmem.Ctx, itemWords, bufItems int) *Exstack {
	if itemWords < 1 || bufItems < 1 {
		panic("exstack: bad geometry")
	}
	n := ctx.NPEs()
	e := &Exstack{
		ctx:       ctx,
		itemWords: itemWords,
		bufItems:  bufItems,
		out:       make([][]uint64, n),
		in:        shmem.Alloc[uint64](ctx, n*bufItems*itemWords),
		inCnt:     shmem.Alloc[uint64](ctx, n),
	}
	e.popSrc = n // nothing to pop yet
	return e
}

// Push appends an item destined for dst; it reports false (without
// pushing) when dst's buffer is full — the caller must Exchange, exactly
// like exstack_push in BALE.
func (e *Exstack) Push(dst int, item []uint64) bool {
	if len(item) != e.itemWords {
		panic(fmt.Sprintf("exstack: item width %d, want %d", len(item), e.itemWords))
	}
	buf := e.out[dst]
	if len(buf)/e.itemWords >= e.bufItems {
		return false
	}
	e.out[dst] = append(buf, item...)
	e.pending++
	return true
}

// Exchange is collective: every PE transfers its outgoing buffers to the
// per-source inbound slots of the destinations. Two barriers bracket the
// data movement (the bulk-synchronous step of the model).
func (e *Exstack) Exchange() {
	ctx := e.ctx
	me := ctx.MyPE()
	ctx.Barrier() // previous round's inbound slots are free again
	for dst := 0; dst < ctx.NPEs(); dst++ {
		buf := e.out[dst]
		nItems := len(buf) / e.itemWords
		if nItems > 0 {
			e.in.Put(dst, me*e.bufItems*e.itemWords, buf)
		}
		e.inCnt.P(dst, me, uint64(nItems))
		e.out[dst] = buf[:0]
	}
	ctx.Barrier() // all inbound data visible
	e.popSrc, e.popIdx = 0, 0
	e.pending = 0
}

// Pop removes the next inbound item, reporting its source PE; ok is false
// when the inbound buffers are drained.
func (e *Exstack) Pop() (src int, item []uint64, ok bool) {
	cnts := e.inCnt.Local()
	data := e.in.Local()
	for e.popSrc < e.ctx.NPEs() {
		if uint64(e.popIdx) < cnts[e.popSrc] {
			base := e.popSrc*e.bufItems*e.itemWords + e.popIdx*e.itemWords
			item = data[base : base+e.itemWords]
			src = e.popSrc
			e.popIdx++
			return src, item, true
		}
		e.popSrc++
		e.popIdx = 0
	}
	return 0, nil, false
}

// Proceed is the collective loop condition: it returns true while any PE
// still has work (is not done or holds unexchanged items), mirroring
// exstack_proceed.
func (e *Exstack) Proceed(imDone bool) bool {
	busy := uint64(0)
	if !imDone || e.pending > 0 {
		busy = 1
	}
	return e.ctx.SumU64(busy) > 0
}

// BufItems reports the per-destination buffer capacity.
func (e *Exstack) BufItems() int { return e.bufItems }
