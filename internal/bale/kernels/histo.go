package kernels

import (
	"sync/atomic"

	"repro/internal/array"
	"repro/internal/bale/chapelagg"
	"repro/internal/bale/conveyor"
	"repro/internal/bale/exstack"
	"repro/internal/bale/exstack2"
	"repro/internal/bale/selector"
	"repro/internal/darc"
	"repro/internal/runtime"
	"repro/internal/scheduler"
	"repro/internal/serde"
	"repro/internal/shmem"
)

// Histogram (§IV-B1): each PE draws UpdatesPerPE uniform indices into a
// distributed table of TablePerPE×P elements and increments them — the
// GUPS-style small-message all-to-all pattern.

// HistoExstack is the synchronous bulk-exchange implementation.
func HistoExstack(w *runtime.World, p Params, t *Timing) error {
	p = p.WithDefaults()
	c := shmem.New(w)
	table := make([]uint64, p.TablePerPE)
	rng := rngFor(p, c.MyPE(), 1)
	idxs := randIndices(rng, p.UpdatesPerPE, p.TablePerPE*c.NPEs())
	ex := exstack.New(c, 1, p.BufItems)

	c.Barrier()
	t.start()
	sent := 0
	for ex.Proceed(sent == len(idxs)) {
		for sent < len(idxs) {
			pe, off := placeOf(idxs[sent], p.TablePerPE)
			if !ex.Push(pe, []uint64{uint64(off)}) {
				break
			}
			sent++
		}
		ex.Exchange()
		for {
			_, item, ok := ex.Pop()
			if !ok {
				break
			}
			table[item[0]]++
		}
	}
	c.Barrier()
	t.stop()
	return verifyHisto(w, p, table)
}

// HistoExstack2 is the asynchronous buffered implementation.
func HistoExstack2(w *runtime.World, p Params, t *Timing) error {
	p = p.WithDefaults()
	c := shmem.New(w)
	table := make([]uint64, p.TablePerPE)
	rng := rngFor(p, c.MyPE(), 1)
	idxs := randIndices(rng, p.UpdatesPerPE, p.TablePerPE*c.NPEs())
	ex := exstack2.New(c, 1, p.BufItems, func(src int, item []uint64) {
		table[item[0]]++
	})

	c.Barrier()
	t.start()
	for i, g := range idxs {
		pe, off := placeOf(g, p.TablePerPE)
		ex.Push(pe, []uint64{uint64(off)})
		if i%1024 == 0 {
			ex.Advance()
		}
	}
	ex.Finish()
	t.stop()
	return verifyHisto(w, p, table)
}

// HistoConveyor is the two-hop matrix-routed implementation.
func HistoConveyor(w *runtime.World, p Params, t *Timing) error {
	p = p.WithDefaults()
	c := shmem.New(w)
	table := make([]uint64, p.TablePerPE)
	rng := rngFor(p, c.MyPE(), 1)
	idxs := randIndices(rng, p.UpdatesPerPE, p.TablePerPE*c.NPEs())
	cv := conveyor.New(c, 1, p.BufItems, func(item []uint64) {
		table[item[0]]++
	})

	c.Barrier()
	t.start()
	for i, g := range idxs {
		pe, off := placeOf(g, p.TablePerPE)
		cv.Push(pe, []uint64{uint64(off)})
		if i%1024 == 0 {
			cv.Advance()
		}
	}
	cv.Finish()
	t.stop()
	return verifyHisto(w, p, table)
}

// HistoSelector is the actor-model implementation.
func HistoSelector(w *runtime.World, p Params, t *Timing) error {
	p = p.WithDefaults()
	c := shmem.New(w)
	table := make([]uint64, p.TablePerPE)
	rng := rngFor(p, c.MyPE(), 1)
	idxs := randIndices(rng, p.UpdatesPerPE, p.TablePerPE*c.NPEs())
	s := selector.New(c, 1, 1, p.BufItems, func(mbx, src int, item []uint64) {
		table[item[0]]++
	})

	c.Barrier()
	t.start()
	for i, g := range idxs {
		pe, off := placeOf(g, p.TablePerPE)
		s.Send(0, pe, []uint64{uint64(off)})
		if i%1024 == 0 {
			s.Advance()
		}
	}
	s.Done()
	t.stop()
	return verifyHisto(w, p, table)
}

// HistoChapel uses the Chapel-style destination aggregator.
func HistoChapel(w *runtime.World, p Params, t *Timing) error {
	p = p.WithDefaults()
	c := shmem.New(w)
	table := make([]uint64, p.TablePerPE)
	rng := rngFor(p, c.MyPE(), 1)
	idxs := randIndices(rng, p.UpdatesPerPE, p.TablePerPE*c.NPEs())
	agg := chapelagg.NewDst(c, chapelagg.DefaultBufItems, func(off int, val uint64) {
		table[off] += val
	})

	c.Barrier()
	t.start()
	for i, g := range idxs {
		pe, off := placeOf(g, p.TablePerPE)
		agg.Update(pe, off, 1)
		if i%1024 == 0 {
			agg.Advance()
		}
	}
	agg.Finish()
	t.stop()
	return verifyHisto(w, p, table)
}

// verifyHisto checks conservation of the update count.
func verifyHisto(w *runtime.World, p Params, table []uint64) error {
	var local uint64
	for _, v := range table {
		local += v
	}
	return verifyCount(w, local, uint64(p.UpdatesPerPE)*uint64(w.NumPEs()), "histogram")
}

// ----- Lamellar implementations -------------------------------------------

// histoAM is the paper's manually-aggregated Histogram AM: a Vec of
// destination-local indices plus a Darc to the distributed table; the
// handler atomically increments the executing PE's instance.
type histoAM struct {
	Table *darc.Darc[[]uint64]
	Idxs  []uint64
}

func (a *histoAM) MarshalLamellar(e *serde.Encoder) {
	a.Table.MarshalLamellar(e)
	serde.EncodeFixedSlice(e, a.Idxs) // bincode-style fixed width, like the Rust AMs
}

func (a *histoAM) UnmarshalLamellar(d *serde.Decoder) error {
	var err error
	a.Table, err = darc.UnmarshalDarc[[]uint64](d)
	if err != nil {
		return err
	}
	a.Idxs = serde.DecodeFixedSlice[uint64](d)
	return d.Err()
}

func (a *histoAM) Exec(ctx *runtime.Context) any {
	tbl := a.Table.Get()
	for _, i := range a.Idxs {
		atomic.AddUint64(&tbl[i], 1)
	}
	a.Table.Drop() // the AM's reference (moved in at launch)
	return nil
}

func init() {
	runtime.RegisterAM[histoAM]("kernels.histoAM")
}

// HistoLamellarAM is the hand-optimized Lamellar version: indices are
// aggregated per destination into Vec-AMs (the best performer in Fig. 3).
func HistoLamellarAM(w *runtime.World, p Params, t *Timing) error {
	p = p.WithDefaults()
	team := w.Team()
	local := make([]uint64, p.TablePerPE)
	table := darc.New(team, local)
	rng := rngFor(p, w.MyPE(), 1)
	idxs := randIndices(rng, p.UpdatesPerPE, p.TablePerPE*w.NumPEs())

	w.Barrier()
	t.start()
	// The paper's AM version iterates the random indices *in parallel*,
	// each thread maintaining its own per-destination update buffers; we
	// split the index stream across the PE's worker threads the same way.
	nThreads := w.Pool().Workers()
	if nThreads > len(idxs) {
		nThreads = 1
	}
	var futs []*scheduler.Future[struct{}]
	chunk := (len(idxs) + nThreads - 1) / nThreads
	for lo := 0; lo < len(idxs); lo += chunk {
		hi := lo + chunk
		if hi > len(idxs) {
			hi = len(idxs)
		}
		mine := idxs[lo:hi]
		futs = append(futs, scheduler.Spawn(w.Pool(), func() (struct{}, error) {
			bufs := make([][]uint64, w.NumPEs())
			flush := func(pe int) {
				if len(bufs[pe]) == 0 {
					return
				}
				w.ExecAM(pe, &histoAM{Table: table.Clone(), Idxs: bufs[pe]})
				bufs[pe] = nil
			}
			for _, g := range mine {
				pe, off := placeOf(g, p.TablePerPE)
				bufs[pe] = append(bufs[pe], uint64(off))
				if len(bufs[pe]) >= p.BufItems {
					flush(pe)
				}
			}
			for pe := range bufs {
				flush(pe)
			}
			return struct{}{}, nil
		}))
	}
	for _, f := range futs {
		if _, err := runtime.BlockOn(w, f); err != nil {
			return err
		}
	}
	w.WaitAll()
	w.Barrier()
	t.stop()

	var sum uint64
	for _, v := range local {
		sum += v
	}
	err := verifyCount(w, sum, uint64(p.UpdatesPerPE)*uint64(w.NumPEs()), "histogram-am")
	w.Barrier()
	table.Drop()
	return err
}

// HistoLamellarArray is Listing 2: a batch_add on an AtomicArray, with all
// batching, sub-batch splitting and dispatch handled by the runtime.
func HistoLamellarArray(w *runtime.World, p Params, t *Timing) error {
	p = p.WithDefaults()
	tableLen := p.TablePerPE * w.NumPEs()
	tbl := array.NewAtomicArray[uint64](w.Team(), tableLen, array.Block)
	rng := rngFor(p, w.MyPE(), 1)
	gIdx := randIndices(rng, p.UpdatesPerPE, tableLen)
	idxs := make([]int, len(gIdx))
	for i, g := range gIdx {
		idxs[i] = int(g)
	}

	w.Barrier()
	t.start()
	if _, err := runtime.BlockOn(w, tbl.BatchAdd(idxs, 1)); err != nil {
		return err
	}
	w.Barrier()
	t.stop()

	sum, err := runtime.BlockOn(w, tbl.Sum())
	if err != nil {
		return err
	}
	want := uint64(p.UpdatesPerPE) * uint64(w.NumPEs())
	if sum != want {
		return errMismatch("histogram-array", sum, want)
	}
	w.Barrier()
	tbl.Drop()
	return nil
}

func errMismatch(what string, got, want uint64) error {
	return &mismatchError{what: what, got: got, want: want}
}

type mismatchError struct {
	what      string
	got, want uint64
}

func (e *mismatchError) Error() string {
	return "kernels: " + e.what + ": verification mismatch"
}
