package kernels

import (
	"sort"
	"sync"
	"testing"

	"repro/internal/runtime"
)

func testParams() Params {
	return Params{
		TablePerPE:   100,
		UpdatesPerPE: 3000,
		BufItems:     64,
		DartsPerPE:   500,
		TargetFactor: 2,
		Seed:         7,
	}
}

func runKernel(t *testing.T, pes int, fn KernelFunc) {
	t.Helper()
	cfg := runtime.Config{PEs: pes, WorkersPerPE: 2, Lamellae: runtime.LamellaeShmem}
	p := testParams()
	err := runtime.Run(cfg, func(w *runtime.World) {
		if kerr := fn(w, p, nil); kerr != nil {
			panic(kerr)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHistogramAllImplementations(t *testing.T) {
	for name, fn := range Histogram {
		name, fn := name, fn
		t.Run(name, func(t *testing.T) { runKernel(t, 4, fn) })
	}
}

func TestIndexGatherAllImplementations(t *testing.T) {
	for name, fn := range IndexGather {
		name, fn := name, fn
		t.Run(name, func(t *testing.T) { runKernel(t, 4, fn) })
	}
}

func TestRandpermAllImplementations(t *testing.T) {
	for name, fn := range Randperm {
		name, fn := name, fn
		t.Run(name, func(t *testing.T) { runKernel(t, 4, fn) })
	}
}

// Exact permutation check: gather every PE's local piece and verify it is
// precisely a permutation of 0..N·P-1.
func TestRandpermExactPermutation(t *testing.T) {
	impls := map[string]RandpermFunc{
		"exstack":     RandpermExstack,
		"exstack2":    RandpermExstack2,
		"conveyor":    RandpermConveyor,
		"selector":    RandpermSelector,
		"array-darts": RandpermArrayDarts,
		"am-dart":     RandpermAMDart,
		"am-dart-opt": RandpermAMDartOpt,
		"am-push":     RandpermAMPush,
	}
	for name, fn := range impls {
		name, fn := name, fn
		t.Run(name, func(t *testing.T) {
			const pes = 3
			p := testParams()
			var mu sync.Mutex
			var all []uint64
			cfg := runtime.Config{PEs: pes, WorkersPerPE: 2, Lamellae: runtime.LamellaeShmem}
			err := runtime.Run(cfg, func(w *runtime.World) {
				perm, kerr := fn(w, p.WithDefaults(), nil)
				if kerr != nil {
					panic(kerr)
				}
				mu.Lock()
				all = append(all, perm...)
				mu.Unlock()
			})
			if err != nil {
				t.Fatal(err)
			}
			total := p.DartsPerPE * pes
			if len(all) != total {
				t.Fatalf("permutation has %d elements, want %d", len(all), total)
			}
			sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
			for i, v := range all {
				if v != uint64(i) {
					t.Fatalf("element %d missing or duplicated (saw %d)", i, v)
				}
			}
		})
	}
}

// Different PE counts, including 1 and non-powers of two.
func TestKernelsVariousWorldSizes(t *testing.T) {
	for _, pes := range []int{1, 2, 5} {
		pes := pes
		t.Run("histo-am", func(t *testing.T) { runKernel(t, pes, HistoLamellarAM) })
		t.Run("histo-array", func(t *testing.T) { runKernel(t, pes, HistoLamellarArray) })
		t.Run("ig-conveyor", func(t *testing.T) { runKernel(t, pes, IGConveyor) })
		t.Run("rp-exstack", func(t *testing.T) { runKernel(t, pes, RPExstack) })
	}
}

// The sim lamellae (ring transport + cost model) must agree with shmem.
func TestKernelsOnSimLamellae(t *testing.T) {
	p := testParams()
	for _, name := range []string{"lamellar-am", "lamellar-array", "exstack2", "chapel"} {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := runtime.Config{PEs: 4, WorkersPerPE: 2, Lamellae: runtime.LamellaeSim}
			err := runtime.Run(cfg, func(w *runtime.World) {
				if kerr := Histogram[name](w, p, nil); kerr != nil {
					panic(kerr)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// The TCP transport must agree with shmem/sim for a full kernel.
func TestKernelsOnTCPLamellae(t *testing.T) {
	p := testParams()
	cfg := runtime.Config{PEs: 3, WorkersPerPE: 2, Lamellae: runtime.LamellaeTCP}
	err := runtime.Run(cfg, func(w *runtime.World) {
		if kerr := HistoLamellarAM(w, p, nil); kerr != nil {
			panic(kerr)
		}
		if kerr := HistoLamellarArray(w, p, nil); kerr != nil {
			panic(kerr)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
