package kernels

import (
	"fmt"

	"repro/internal/array"
	"repro/internal/bale/chapelagg"
	"repro/internal/bale/conveyor"
	"repro/internal/bale/exstack"
	"repro/internal/bale/exstack2"
	"repro/internal/bale/selector"
	"repro/internal/darc"
	"repro/internal/runtime"
	"repro/internal/scheduler"
	"repro/internal/serde"
	"repro/internal/shmem"
)

// IndexGather (§IV-B2): target[i] = table[rand_i] — random remote *reads*,
// harder than Histogram because every request needs a second message to
// carry the value home. The shared convention: table[g] = g globally, so
// every implementation can verify results locally.

// igFillTable initializes this PE's slice of the conceptual table.
func igFillTable(pe, perPE int) []uint64 {
	t := make([]uint64, perPE)
	for i := range t {
		t[i] = uint64(pe*perPE + i)
	}
	return t
}

// igVerify checks every gathered value against the table fill rule.
func igVerify(w *runtime.World, idxs []uint64, target []uint64) error {
	for i, g := range idxs {
		if target[i] != g {
			return fmt.Errorf("kernels: indexgather: target[%d] = %d, want %d", i, target[i], g)
		}
	}
	// cheap collective so every PE agrees the phase ended
	return verifyCount(w, uint64(len(idxs)), uint64(len(idxs)*w.NumPEs()), "indexgather")
}

// IGExstack: synchronous — requests round, then replies round, repeated.
func IGExstack(w *runtime.World, p Params, t *Timing) error {
	p = p.WithDefaults()
	c := shmem.New(w)
	table := igFillTable(c.MyPE(), p.TablePerPE)
	rng := rngFor(p, c.MyPE(), 2)
	idxs := randIndices(rng, p.UpdatesPerPE, p.TablePerPE*c.NPEs())
	target := make([]uint64, len(idxs))
	req := exstack.New(c, 2, p.BufItems) // [off, pos]
	rep := exstack.New(c, 2, p.BufItems) // [pos, val]

	c.Barrier()
	t.start()
	sent := 0
	for req.Proceed(sent == len(idxs)) {
		for sent < len(idxs) {
			pe, off := placeOf(idxs[sent], p.TablePerPE)
			if !req.Push(pe, []uint64{uint64(off), uint64(sent)}) {
				break
			}
			sent++
		}
		req.Exchange()
		for {
			src, item, ok := req.Pop()
			if !ok {
				break
			}
			// replies can exceed the buffer of one destination; exchange
			// mid-drain would desynchronize, so size reply pushes safely:
			// each inbound request generates exactly one reply to src, and
			// src sent at most BufItems requests, so the reply buffer to
			// src can never overflow within one round.
			if !rep.Push(src, []uint64{item[1], table[item[0]]}) {
				return fmt.Errorf("kernels: indexgather reply buffer overflow")
			}
		}
		rep.Exchange()
		for {
			_, item, ok := rep.Pop()
			if !ok {
				break
			}
			target[item[0]] = item[1]
		}
	}
	c.Barrier()
	t.stop()
	return igVerify(w, idxs, target)
}

// IGExstack2: asynchronous request and reply planes.
func IGExstack2(w *runtime.World, p Params, t *Timing) error {
	p = p.WithDefaults()
	c := shmem.New(w)
	table := igFillTable(c.MyPE(), p.TablePerPE)
	rng := rngFor(p, c.MyPE(), 2)
	idxs := randIndices(rng, p.UpdatesPerPE, p.TablePerPE*c.NPEs())
	target := make([]uint64, len(idxs))

	var rep *exstack2.Exstack2
	req := exstack2.New(c, 2, p.BufItems, func(src int, item []uint64) {
		rep.Push(src, []uint64{item[1], table[item[0]]})
	})
	rep = exstack2.New(c, 2, p.BufItems, func(src int, item []uint64) {
		target[item[0]] = item[1]
	})
	// While a PE drains or blocks on either plane it must keep serving
	// the other, or mutual blocking sends deadlock (SetCoProgress).
	req.SetCoProgress(func() { rep.Advance() })
	rep.SetCoProgress(func() { req.Advance() })

	c.Barrier()
	t.start()
	for i, g := range idxs {
		pe, off := placeOf(g, p.TablePerPE)
		req.Push(pe, []uint64{uint64(off), uint64(i)})
		if i%1024 == 0 {
			req.Advance()
			rep.Advance()
		}
	}
	req.Finish() // all requests delivered (handlers buffered replies)
	rep.Finish() // all replies applied
	t.stop()
	return igVerify(w, idxs, target)
}

// IGConveyor: two conveyors (requests carry the requester id).
func IGConveyor(w *runtime.World, p Params, t *Timing) error {
	p = p.WithDefaults()
	c := shmem.New(w)
	table := igFillTable(c.MyPE(), p.TablePerPE)
	rng := rngFor(p, c.MyPE(), 2)
	idxs := randIndices(rng, p.UpdatesPerPE, p.TablePerPE*c.NPEs())
	target := make([]uint64, len(idxs))

	var rep *conveyor.Conveyor
	req := conveyor.New(c, 3, p.BufItems, func(item []uint64) {
		// [off, requester, pos]
		rep.Push(int(item[1]), []uint64{item[2], table[item[0]]})
	})
	rep = conveyor.New(c, 2, p.BufItems, func(item []uint64) {
		target[item[0]] = item[1]
	})
	req.SetCoProgress(func() { rep.Advance() })
	rep.SetCoProgress(func() { req.Advance() })

	c.Barrier()
	t.start()
	for i, g := range idxs {
		pe, off := placeOf(g, p.TablePerPE)
		req.Push(pe, []uint64{uint64(off), uint64(c.MyPE()), uint64(i)})
		if i%1024 == 0 {
			req.Advance()
			rep.Advance()
		}
	}
	req.Finish()
	rep.Finish()
	t.stop()
	return igVerify(w, idxs, target)
}

// IGSelector: one actor, two mailboxes (REQUEST / RESPONSE), the
// bale_actor IndexGather pattern.
func IGSelector(w *runtime.World, p Params, t *Timing) error {
	p = p.WithDefaults()
	c := shmem.New(w)
	table := igFillTable(c.MyPE(), p.TablePerPE)
	rng := rngFor(p, c.MyPE(), 2)
	idxs := randIndices(rng, p.UpdatesPerPE, p.TablePerPE*c.NPEs())
	target := make([]uint64, len(idxs))

	var s *selector.Selector
	s = selector.New(c, 2, 2, p.BufItems, func(mbx, src int, item []uint64) {
		switch mbx {
		case 0: // request [off, pos]
			s.Send(1, src, []uint64{item[1], table[item[0]]})
		case 1: // response [pos, val]
			target[item[0]] = item[1]
		}
	})

	c.Barrier()
	t.start()
	for i, g := range idxs {
		pe, off := placeOf(g, p.TablePerPE)
		s.Send(0, pe, []uint64{uint64(off), uint64(i)})
		if i%1024 == 0 {
			s.Advance()
		}
	}
	s.Done()
	t.stop()
	return igVerify(w, idxs, target)
}

// IGChapel uses the Chapel-style source (gather) aggregator that wins
// Fig. 4 in the paper.
func IGChapel(w *runtime.World, p Params, t *Timing) error {
	p = p.WithDefaults()
	c := shmem.New(w)
	table := igFillTable(c.MyPE(), p.TablePerPE)
	rng := rngFor(p, c.MyPE(), 2)
	idxs := randIndices(rng, p.UpdatesPerPE, p.TablePerPE*c.NPEs())
	target := make([]uint64, len(idxs))
	agg := chapelagg.NewSrc(c, chapelagg.DefaultBufItems,
		func(off int) uint64 { return table[off] }, target)

	c.Barrier()
	t.start()
	for i, g := range idxs {
		pe, off := placeOf(g, p.TablePerPE)
		agg.Gather(pe, off, i)
		if i%1024 == 0 {
			agg.Advance()
		}
	}
	agg.Finish()
	t.stop()
	return igVerify(w, idxs, target)
}

// ----- Lamellar implementations -------------------------------------------

// igAM is the manually-aggregated gather AM: destination-local offsets in,
// values out (the second message is the AM return).
type igAM struct {
	Table *darc.Darc[[]uint64]
	Offs  []uint64
}

func (a *igAM) MarshalLamellar(e *serde.Encoder) {
	a.Table.MarshalLamellar(e)
	serde.EncodeFixedSlice(e, a.Offs)
}

func (a *igAM) UnmarshalLamellar(d *serde.Decoder) error {
	var err error
	a.Table, err = darc.UnmarshalDarc[[]uint64](d)
	if err != nil {
		return err
	}
	a.Offs = serde.DecodeFixedSlice[uint64](d)
	return d.Err()
}

func (a *igAM) Exec(ctx *runtime.Context) any {
	tbl := a.Table.Get()
	vals := make([]uint64, len(a.Offs))
	for i, off := range a.Offs {
		vals[i] = tbl[off]
	}
	a.Table.Drop()
	return vals
}

func init() {
	runtime.RegisterAM[igAM]("kernels.igAM")
}

// IGLamellarAM is the hand-aggregated Lamellar IndexGather.
func IGLamellarAM(w *runtime.World, p Params, t *Timing) error {
	p = p.WithDefaults()
	team := w.Team()
	table := darc.New(team, igFillTable(w.MyPE(), p.TablePerPE))
	rng := rngFor(p, w.MyPE(), 2)
	idxs := randIndices(rng, p.UpdatesPerPE, p.TablePerPE*w.NumPEs())
	target := make([]uint64, len(idxs))

	w.Barrier()
	t.start()
	// Parallel pushers with per-thread request buffers, as in Histogram
	// (the paper's hand-optimized AM versions use one buffer set per
	// thread to mirror the PE-per-core baselines).
	nThreads := w.Pool().Workers()
	if nThreads > len(idxs) {
		nThreads = 1
	}
	chunk := (len(idxs) + nThreads - 1) / nThreads
	var outer []*scheduler.Future[struct{}]
	for lo := 0; lo < len(idxs); lo += chunk {
		hi := lo + chunk
		if hi > len(idxs) {
			hi = len(idxs)
		}
		base := lo
		mine := idxs[lo:hi]
		outer = append(outer, scheduler.Spawn(w.Pool(), func() (struct{}, error) {
			offs := make([][]uint64, w.NumPEs())
			poss := make([][]int, w.NumPEs())
			var futures []*scheduler.Future[struct{}]
			flush := func(pe int) {
				if len(offs[pe]) == 0 {
					return
				}
				myOffs, myPoss := offs[pe], poss[pe]
				offs[pe], poss[pe] = nil, nil
				pr, fut := scheduler.NewPromise[struct{}](w.Pool())
				futures = append(futures, fut)
				runtime.ExecTyped[[]uint64](w, pe, &igAM{Table: table.Clone(), Offs: myOffs}).
					OnDone(func(vals []uint64, err error) {
						if err == nil {
							for k, pos := range myPoss {
								target[pos] = vals[k]
							}
							pr.Complete(struct{}{})
						} else {
							pr.CompleteErr(err)
						}
					})
			}
			for i, g := range mine {
				pe, off := placeOf(g, p.TablePerPE)
				offs[pe] = append(offs[pe], uint64(off))
				poss[pe] = append(poss[pe], base+i)
				if len(offs[pe]) >= p.BufItems {
					flush(pe)
				}
			}
			for pe := range offs {
				flush(pe)
			}
			for _, f := range futures {
				if _, err := f.Await(); err != nil {
					return struct{}{}, err
				}
			}
			return struct{}{}, nil
		}))
	}
	for _, f := range outer {
		if _, err := runtime.BlockOn(w, f); err != nil {
			return err
		}
	}
	w.Barrier()
	t.stop()
	err := igVerify(w, idxs, target)
	w.Barrier()
	table.Drop()
	return err
}

// IGLamellarArray is the batch_load on a ReadOnlyArray from §IV-B2.
func IGLamellarArray(w *runtime.World, p Params, t *Timing) error {
	p = p.WithDefaults()
	tableLen := p.TablePerPE * w.NumPEs()
	ua := array.NewUnsafeArray[uint64](w.Team(), tableLen, array.Block)
	fill := igFillTable(w.MyPE(), p.TablePerPE)
	ua.PutUnchecked(w.MyPE()*p.TablePerPE, fill) // local init
	w.Barrier()
	tbl := ua.IntoReadOnly()

	rng := rngFor(p, w.MyPE(), 2)
	gIdx := randIndices(rng, p.UpdatesPerPE, tableLen)
	idxs := make([]int, len(gIdx))
	for i, g := range gIdx {
		idxs[i] = int(g)
	}

	w.Barrier()
	t.start()
	target, err := runtime.BlockOn(w, tbl.BatchLoad(idxs))
	if err != nil {
		return err
	}
	w.Barrier()
	t.stop()
	if err := igVerify(w, gIdx, target); err != nil {
		return err
	}
	w.Barrier()
	tbl.Drop()
	return nil
}
