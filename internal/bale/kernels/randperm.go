package kernels

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/array"
	"repro/internal/bale/conveyor"
	"repro/internal/bale/exstack"
	"repro/internal/bale/exstack2"
	"repro/internal/bale/selector"
	"repro/internal/darc"
	"repro/internal/runtime"
	"repro/internal/scheduler"
	"repro/internal/serde"
	"repro/internal/shmem"
)

// Randperm (§IV-B3): build a random permutation of 0..N·P-1 with the
// "dart throwing" algorithm. Each PE owns DartsPerPE darts (the values
// rank·N .. rank·N+N-1) and a slice of a target array TargetFactor times
// larger. Darts thrown at occupied slots are re-thrown; once all stick,
// collecting the target in slot order yields the permutation.
//
// Convention: target slots store value+1, 0 means empty. Each variant
// returns its PE-local slice of the final permutation (by target-slot
// order and PE rank) for exact verification by tests; benches discard it.

// rpVerifyChecksum verifies sum/xor invariants of a permutation of
// [0, total) whose local piece is perm.
func rpVerifyChecksum(w *runtime.World, perm []uint64, total uint64) error {
	var sum, xor uint64
	for _, v := range perm {
		sum += v
		xor ^= v
	}
	gsum := w.Team().SumU64(sum)
	gxor := w.Team().AllReduceU64(xor, func(a, b uint64) uint64 { return a ^ b })
	glen := w.Team().SumU64(uint64(len(perm)))
	var wantSum, wantXor uint64
	for v := uint64(0); v < total; v++ {
		wantSum += v
		wantXor ^= v
	}
	if glen != total || gsum != wantSum || gxor != wantXor {
		return fmt.Errorf("kernels: randperm: checksum mismatch (len %d/%d sum %d/%d xor %d/%d)",
			glen, total, gsum, wantSum, gxor, wantXor)
	}
	return nil
}

// rpCollectLocal extracts the stuck darts of a local target slice in slot
// order (values stored +1).
func rpCollectLocal(target []uint64) []uint64 {
	out := make([]uint64, 0, len(target)/2)
	for _, v := range target {
		if v != 0 {
			out = append(out, v-1)
		}
	}
	return out
}

// RandpermFunc runs one Randperm implementation, returning the PE-local
// permutation piece.
type RandpermFunc func(w *runtime.World, p Params, t *Timing) ([]uint64, error)

// runRP adapts a RandpermFunc to the KernelFunc signature with checksum
// verification.
func runRP(f RandpermFunc) KernelFunc {
	return func(w *runtime.World, p Params, t *Timing) error {
		p = p.WithDefaults()
		perm, err := f(w, p, t)
		if err != nil {
			return err
		}
		return rpVerifyChecksum(w, perm, uint64(p.DartsPerPE)*uint64(w.NumPEs()))
	}
}

// Exported KernelFunc wrappers.
var (
	// RPExstack is the synchronous baseline.
	RPExstack = runRP(RandpermExstack)
	// RPExstack2 is the asynchronous baseline.
	RPExstack2 = runRP(RandpermExstack2)
	// RPConveyor is the two-hop baseline.
	RPConveyor = runRP(RandpermConveyor)
	// RPSelector is the actor baseline.
	RPSelector = runRP(RandpermSelector)
	// RPArrayDarts is the paper's "Array Darts" Lamellar variant.
	RPArrayDarts = runRP(RandpermArrayDarts)
	// RPAMDart is the paper's "AM Dart" Lamellar variant.
	RPAMDart = runRP(RandpermAMDart)
	// RPAMDartOpt is the paper's "AM Dart Opt" Lamellar variant.
	RPAMDartOpt = runRP(RandpermAMDartOpt)
	// RPAMPush is the paper's "AM Push" Lamellar variant.
	RPAMPush = runRP(RandpermAMPush)
)

// ----- baselines -------------------------------------------------------------

// RandpermExstack: throw via one exstack, failures return via a second.
func RandpermExstack(w *runtime.World, p Params, t *Timing) ([]uint64, error) {
	c := shmem.New(w)
	targetPerPE := p.DartsPerPE * p.TargetFactor
	target := make([]uint64, targetPerPE)
	rng := rngFor(p, c.MyPE(), 3)
	span := targetPerPE * c.NPEs()
	// pending darts to throw (dart values)
	pending := make([]uint64, p.DartsPerPE)
	for i := range pending {
		pending[i] = uint64(c.MyPE()*p.DartsPerPE + i)
	}
	throw := exstack.New(c, 2, p.BufItems) // [slotOff, dartVal]
	fail := exstack.New(c, 2, p.BufItems)  // [dartVal, _]

	c.Barrier()
	t.start()
	for throw.Proceed(len(pending) == 0) {
		for len(pending) > 0 {
			dart := pending[len(pending)-1]
			g := rng.Intn(span)
			pe, off := placeOf(uint64(g), targetPerPE)
			if !throw.Push(pe, []uint64{uint64(off), dart}) {
				break
			}
			pending = pending[:len(pending)-1]
		}
		throw.Exchange()
		for {
			src, item, ok := throw.Pop()
			if !ok {
				break
			}
			if target[item[0]] == 0 {
				target[item[0]] = item[1] + 1
			} else if !fail.Push(src, []uint64{item[1], 0}) {
				return nil, fmt.Errorf("kernels: randperm fail buffer overflow")
			}
		}
		fail.Exchange()
		for {
			_, item, ok := fail.Pop()
			if !ok {
				break
			}
			pending = append(pending, item[0])
		}
	}
	c.Barrier()
	t.stop()
	return rpCollectLocal(target), nil
}

// rpState is the shared state of the asynchronous variants: local target
// slice, pending (re)throws, and a global stuck-dart counter hosted on
// PE0 used for asynchronous termination: a dart is always either stuck,
// in some PE's pending list, or inside a message; when the global stuck
// count reaches the dart total, no dart-related message can still be in
// flight (each dart's messages are consumed before its next throw), so
// every PE may stop serving.
type rpState struct {
	c       *shmem.Ctx
	target  []uint64
	pending []uint64
	ctr     *shmem.SymAtomic
	stuckLo uint64 // locally accumulated sticks not yet published
}

func newRPState(c *shmem.Ctx, p Params) *rpState {
	st := &rpState{
		c:      c,
		target: make([]uint64, p.DartsPerPE*p.TargetFactor),
		ctr:    shmem.AllocAtomic(c, 1),
	}
	st.pending = make([]uint64, p.DartsPerPE)
	for i := range st.pending {
		st.pending[i] = uint64(c.MyPE()*p.DartsPerPE + i)
	}
	return st
}

// stick records a successful dart placement, batching counter updates to
// bound remote-atomic traffic.
func (st *rpState) stick(off, dart uint64) bool {
	if st.target[off] != 0 {
		return false
	}
	st.target[off] = dart + 1
	st.stuckLo++
	if st.stuckLo >= 256 {
		st.publish()
	}
	return true
}

func (st *rpState) publish() {
	if st.stuckLo > 0 {
		st.ctr.Add(0, 0, st.stuckLo)
		st.stuckLo = 0
	}
}

// done polls the global counter (one remote atomic read).
func (st *rpState) done(total uint64) bool {
	st.publish()
	return st.ctr.Load(0, 0) == total
}

// RandpermExstack2: asynchronous throw/fail planes with counter-based
// termination.
func RandpermExstack2(w *runtime.World, p Params, t *Timing) ([]uint64, error) {
	c := shmem.New(w)
	targetPerPE := p.DartsPerPE * p.TargetFactor
	span := targetPerPE * c.NPEs()
	rng := rngFor(p, c.MyPE(), 3)
	st := newRPState(c, p)
	total := uint64(p.DartsPerPE) * uint64(c.NPEs())

	var throw, fail *exstack2.Exstack2
	throw = exstack2.New(c, 2, p.BufItems, func(src int, item []uint64) {
		if !st.stick(item[0], item[1]) {
			fail.Push(src, []uint64{item[1], 0})
		}
	})
	fail = exstack2.New(c, 2, p.BufItems, func(src int, item []uint64) {
		st.pending = append(st.pending, item[0])
	})
	throw.SetCoProgress(func() { fail.Advance() })
	fail.SetCoProgress(func() { throw.Advance() })

	c.Barrier()
	t.start()
	idle := 0
	for {
		threw := false
		for len(st.pending) > 0 {
			dart := st.pending[len(st.pending)-1]
			st.pending = st.pending[:len(st.pending)-1]
			g := rng.Intn(span)
			pe, off := placeOf(uint64(g), targetPerPE)
			if pe == c.MyPE() {
				if !st.stick(uint64(off), dart) {
					st.pending = append(st.pending, dart) // immediate local retry
					continue
				}
			} else {
				throw.Push(pe, []uint64{uint64(off), dart})
			}
			threw = true
		}
		throw.FlushAll()
		fail.FlushAll()
		moved := throw.Advance()
		moved = fail.Advance() || moved
		if threw || moved {
			idle = 0
			continue
		}
		idle++
		if idle%64 == 0 && st.done(total) {
			break
		}
		if idle%4 == 0 {
			time.Sleep(10 * time.Microsecond)
		}
	}
	c.Barrier()
	t.stop()
	return rpCollectLocal(st.target), nil
}

// RandpermConveyor: the two-hop baseline with the same protocol; fail
// items carry the dart back to its owner through the grid.
func RandpermConveyor(w *runtime.World, p Params, t *Timing) ([]uint64, error) {
	c := shmem.New(w)
	targetPerPE := p.DartsPerPE * p.TargetFactor
	span := targetPerPE * c.NPEs()
	rng := rngFor(p, c.MyPE(), 3)
	st := newRPState(c, p)
	total := uint64(p.DartsPerPE) * uint64(c.NPEs())

	var throw, fail *conveyor.Conveyor
	// throw item: [slotOff, dartVal, owner]
	throw = conveyor.New(c, 3, p.BufItems, func(item []uint64) {
		if !st.stick(item[0], item[1]) {
			fail.Push(int(item[2]), []uint64{item[1]})
		}
	})
	fail = conveyor.New(c, 1, p.BufItems, func(item []uint64) {
		st.pending = append(st.pending, item[0])
	})
	throw.SetCoProgress(func() { fail.Advance() })
	fail.SetCoProgress(func() { throw.Advance() })

	c.Barrier()
	t.start()
	idle := 0
	for {
		threw := false
		for len(st.pending) > 0 {
			dart := st.pending[len(st.pending)-1]
			st.pending = st.pending[:len(st.pending)-1]
			g := rng.Intn(span)
			pe, off := placeOf(uint64(g), targetPerPE)
			if pe == c.MyPE() {
				if !st.stick(uint64(off), dart) {
					st.pending = append(st.pending, dart)
					continue
				}
			} else {
				throw.Push(pe, []uint64{uint64(off), dart, uint64(c.MyPE())})
			}
			threw = true
		}
		throw.FlushAll()
		fail.FlushAll()
		moved := throw.Advance()
		moved = fail.Advance() || moved
		if threw || moved {
			idle = 0
			continue
		}
		idle++
		if idle%64 == 0 && st.done(total) {
			break
		}
		if idle%4 == 0 {
			time.Sleep(10 * time.Microsecond)
		}
	}
	c.Barrier()
	t.stop()
	return rpCollectLocal(st.target), nil
}

// RandpermSelector: actor with THROW and FAIL mailboxes.
func RandpermSelector(w *runtime.World, p Params, t *Timing) ([]uint64, error) {
	c := shmem.New(w)
	targetPerPE := p.DartsPerPE * p.TargetFactor
	span := targetPerPE * c.NPEs()
	rng := rngFor(p, c.MyPE(), 3)
	st := newRPState(c, p)
	total := uint64(p.DartsPerPE) * uint64(c.NPEs())

	var s *selector.Selector
	s = selector.New(c, 2, 2, p.BufItems, func(mbx, src int, item []uint64) {
		switch mbx {
		case 0: // throw [slotOff, dartVal]
			if !st.stick(item[0], item[1]) {
				s.Send(1, src, []uint64{item[1], 0})
			}
		case 1: // fail [dartVal, _]
			st.pending = append(st.pending, item[0])
		}
	})

	c.Barrier()
	t.start()
	idle := 0
	for {
		threw := false
		for len(st.pending) > 0 {
			dart := st.pending[len(st.pending)-1]
			st.pending = st.pending[:len(st.pending)-1]
			g := rng.Intn(span)
			pe, off := placeOf(uint64(g), targetPerPE)
			s.Send(0, pe, []uint64{uint64(off), dart})
			threw = true
		}
		s.FlushAll()
		moved := s.Advance()
		if threw || moved {
			idle = 0
			continue
		}
		idle++
		if idle%64 == 0 && st.done(total) {
			break
		}
		if idle%4 == 0 {
			time.Sleep(10 * time.Microsecond)
		}
	}
	c.Barrier()
	t.stop()
	return rpCollectLocal(st.target), nil
}

// ----- Lamellar implementations -------------------------------------------

// dartAM carries a batch of darts; the handler CASes each into the local
// target and returns the darts that failed (the origin re-throws),
// mirroring the paper's "AM Dart" design.
type dartAM struct {
	Target *darc.Darc[[]uint64]
	Offs   []uint64
	Darts  []uint64
	// Opt: on a collision, retry random slots on this PE instead of
	// failing back (the paper's "AM Dart Opt"); only full PEs fail darts.
	Opt bool
}

func (a *dartAM) MarshalLamellar(e *serde.Encoder) {
	a.Target.MarshalLamellar(e)
	serde.EncodeFixedSlice(e, a.Offs)
	serde.EncodeFixedSlice(e, a.Darts)
	e.PutBool(a.Opt)
}

func (a *dartAM) UnmarshalLamellar(d *serde.Decoder) error {
	var err error
	a.Target, err = darc.UnmarshalDarc[[]uint64](d)
	if err != nil {
		return err
	}
	a.Offs = serde.DecodeFixedSlice[uint64](d)
	a.Darts = serde.DecodeFixedSlice[uint64](d)
	a.Opt = d.Bool()
	return d.Err()
}

func (a *dartAM) Exec(ctx *runtime.Context) any {
	target := a.Target.Get()
	var failed []uint64
	tryCAS := func(off int, dart uint64) bool {
		return atomic.CompareAndSwapUint64(&target[off], 0, dart+1)
	}
	for i, off := range a.Offs {
		dart := a.Darts[i]
		if tryCAS(int(off), dart) {
			continue
		}
		if !a.Opt {
			failed = append(failed, dart)
			continue
		}
		// Opt: probe this PE's slots from a pseudo-random start.
		n := uint64(len(target))
		start := (dart*0x9E3779B97F4A7C15 + off) % n
		placed := false
		for k := uint64(0); k < n; k++ {
			if tryCAS(int((start+k)%n), dart) {
				placed = true
				break
			}
		}
		if !placed {
			failed = append(failed, dart) // PE full: origin re-throws
		}
	}
	a.Target.Drop()
	return failed
}

func init() {
	runtime.RegisterAM[dartAM]("kernels.dartAM")
}

// rpAMRounds runs the round-based AM dart throw shared by AM Dart and AM
// Dart Opt: throw all pending darts in destination batches, await the
// failed darts from every batch, allreduce the global pending count, and
// repeat (the lockstep-rounds structure makes global termination a simple
// collective).
func rpAMRounds(w *runtime.World, p Params, t *Timing, opt bool) ([]uint64, error) {
	team := w.Team()
	targetPerPE := p.DartsPerPE * p.TargetFactor
	local := make([]uint64, targetPerPE)
	target := darc.New(team, local)
	span := targetPerPE * w.NumPEs()
	rng := rngFor(p, w.MyPE(), 3)

	pending := make([]uint64, p.DartsPerPE)
	for i := range pending {
		pending[i] = uint64(w.MyPE()*p.DartsPerPE + i)
	}

	w.Barrier()
	t.start()
	for {
		offs := make([][]uint64, w.NumPEs())
		darts := make([][]uint64, w.NumPEs())
		for _, dart := range pending {
			g := rng.Intn(span)
			pe, off := placeOf(uint64(g), targetPerPE)
			offs[pe] = append(offs[pe], uint64(off))
			darts[pe] = append(darts[pe], dart)
		}
		pending = pending[:0]
		var futs []*scheduler.Future[[]uint64]
		for pe := 0; pe < w.NumPEs(); pe++ {
			for base := 0; base < len(offs[pe]); base += p.BufItems {
				end := base + p.BufItems
				if end > len(offs[pe]) {
					end = len(offs[pe])
				}
				am := &dartAM{Target: target.Clone(), Offs: offs[pe][base:end], Darts: darts[pe][base:end], Opt: opt}
				futs = append(futs, runtime.ExecTyped[[]uint64](w, pe, am))
			}
		}
		for _, f := range futs {
			failed, err := runtime.BlockOn(w, f)
			if err != nil {
				return nil, err
			}
			pending = append(pending, failed...)
		}
		if team.SumU64(uint64(len(pending))) == 0 {
			break
		}
	}
	w.Barrier()
	t.stop()
	perm := rpCollectLocal(local)
	w.Barrier()
	target.Drop()
	return perm, nil
}

// RandpermAMDart is the paper's "AM Dart": manual aggregation, failures
// return to the origin for re-throwing.
func RandpermAMDart(w *runtime.World, p Params, t *Timing) ([]uint64, error) {
	return rpAMRounds(w, p.WithDefaults(), t, false)
}

// RandpermAMDartOpt is "AM Dart Opt": collisions retry locally on the
// target PE, removing nearly all failure traffic.
func RandpermAMDartOpt(w *runtime.World, p Params, t *Timing) ([]uint64, error) {
	return rpAMRounds(w, p.WithDefaults(), t, true)
}

// pushAM appends darts to the target PE's vector — "AM Push": a dart
// throw never fails, minimizing communication; the permutation is the
// concatenation of the per-PE vectors (randomized locally at the origin
// before sending).
type pushAM struct {
	Vec   *darc.Darc[*rpPushVec]
	Darts []uint64
}

// rpPushVec is a concurrent append-only vector.
type rpPushVec struct {
	buf []uint64
	n   atomic.Int64
}

func (a *pushAM) MarshalLamellar(e *serde.Encoder) {
	a.Vec.MarshalLamellar(e)
	serde.EncodeFixedSlice(e, a.Darts)
}

func (a *pushAM) UnmarshalLamellar(d *serde.Decoder) error {
	var err error
	a.Vec, err = darc.UnmarshalDarc[*rpPushVec](d)
	if err != nil {
		return err
	}
	a.Darts = serde.DecodeFixedSlice[uint64](d)
	return d.Err()
}

func (a *pushAM) Exec(ctx *runtime.Context) any {
	v := a.Vec.Get()
	base := v.n.Add(int64(len(a.Darts))) - int64(len(a.Darts))
	if int(base)+len(a.Darts) > len(v.buf) {
		a.Vec.Drop()
		panic("kernels: AM Push target vector overflow")
	}
	copy(v.buf[base:], a.Darts)
	a.Vec.Drop()
	return nil
}

func init() {
	runtime.RegisterAM[pushAM]("kernels.pushAM")
}

// RandpermAMPush is the paper's "AM Push" variant.
func RandpermAMPush(w *runtime.World, p Params, t *Timing) ([]uint64, error) {
	p = p.WithDefaults()
	team := w.Team()
	// Capacity: expected darts per PE is DartsPerPE; the target factor
	// gives the same slack the other variants use.
	vec := &rpPushVec{buf: make([]uint64, p.DartsPerPE*p.TargetFactor*2)}
	d := darc.New(team, vec)
	rng := rngFor(p, w.MyPE(), 3)

	// local randomization of my darts (Fisher-Yates)
	darts := make([]uint64, p.DartsPerPE)
	for i := range darts {
		darts[i] = uint64(w.MyPE()*p.DartsPerPE + i)
	}
	rng.Shuffle(len(darts), func(i, j int) { darts[i], darts[j] = darts[j], darts[i] })

	w.Barrier()
	t.start()
	bufs := make([][]uint64, w.NumPEs())
	flush := func(pe int) {
		if len(bufs[pe]) == 0 {
			return
		}
		w.ExecAM(pe, &pushAM{Vec: d.Clone(), Darts: bufs[pe]})
		bufs[pe] = nil
	}
	for _, dart := range darts {
		pe := rng.Intn(w.NumPEs())
		bufs[pe] = append(bufs[pe], dart)
		if len(bufs[pe]) >= p.BufItems {
			flush(pe)
		}
	}
	for pe := range bufs {
		flush(pe)
	}
	w.WaitAll()
	w.Barrier()
	t.stop()
	perm := make([]uint64, vec.n.Load())
	copy(perm, vec.buf[:len(perm)])
	w.Barrier()
	d.Drop()
	return perm, nil
}

// RandpermArrayDarts is the paper's "Array Darts": an AtomicArray target,
// batch_compare_exchange throws, and the Collect iterator to gather the
// permutation.
func RandpermArrayDarts(w *runtime.World, p Params, t *Timing) ([]uint64, error) {
	p = p.WithDefaults()
	team := w.Team()
	targetLen := p.DartsPerPE * p.TargetFactor * w.NumPEs()
	target := array.NewAtomicArray[uint64](team, targetLen, array.Block)
	span := targetLen
	rng := rngFor(p, w.MyPE(), 3)

	pending := make([]uint64, p.DartsPerPE)
	for i := range pending {
		pending[i] = uint64(w.MyPE()*p.DartsPerPE + i)
	}

	w.Barrier()
	t.start()
	for {
		idxs := make([]int, len(pending))
		news := make([]uint64, len(pending))
		for i, dart := range pending {
			idxs[i] = rng.Intn(span)
			news[i] = dart + 1
		}
		prevs, err := runtime.BlockOn(w, target.BatchCompareExchange(idxs, 0, news))
		if err != nil {
			return nil, err
		}
		var failed []uint64
		for i, prev := range prevs {
			if prev != 0 { // slot was occupied: dart bounced
				failed = append(failed, pending[i])
			}
		}
		pending = failed
		if team.SumU64(uint64(len(pending))) == 0 {
			break
		}
	}
	w.Barrier()
	t.stop()

	// Collect stuck darts (value-1) in slot order into the permutation.
	it := array.Map(target.DistIter().Filter(func(v uint64) bool { return v != 0 }),
		func(v uint64) uint64 { return v - 1 })
	local, err := it.Collect().Await()
	if err != nil {
		return nil, err
	}
	w.Barrier()
	target.Drop()
	return local, nil
}
