// Package kernels implements the three BALE kernels the paper evaluates —
// Histogram, IndexGather, Randperm — once per communication system:
// Exstack, Exstack2, Conveyors, Selectors, a Chapel-style aggregator, a
// hand-aggregated Lamellar Active-Message version, and a LamellarArray
// version. Every implementation of a kernel computes the same answer over
// the same workload parameters, so the benchmark harness can regenerate
// the comparisons of Figs. 3–5.
package kernels

import (
	"fmt"
	"math/rand"

	"repro/internal/runtime"
)

// Params fixes a kernel workload. The paper's experiments use 1000 table
// elements per core, 10M updates per core, aggregation limited to 10 000
// operations, and for Randperm 1M darts per core with a 2x target array.
type Params struct {
	// TablePerPE is the distributed table size per PE (Histogram,
	// IndexGather).
	TablePerPE int
	// UpdatesPerPE is the number of updates/requests per PE.
	UpdatesPerPE int
	// BufItems limits aggregation buffers to this many operations.
	BufItems int
	// DartsPerPE is the Randperm permutation size per PE.
	DartsPerPE int
	// TargetFactor sizes the Randperm target array (paper: 2x).
	TargetFactor int
	// Seed makes workloads reproducible; each PE derives its own stream.
	Seed int64
}

// WithDefaults fills unset fields with scaled-down defaults.
func (p Params) WithDefaults() Params {
	if p.TablePerPE <= 0 {
		p.TablePerPE = 1000
	}
	if p.UpdatesPerPE <= 0 {
		p.UpdatesPerPE = 100_000
	}
	if p.BufItems <= 0 {
		p.BufItems = 10_000
	}
	if p.DartsPerPE <= 0 {
		p.DartsPerPE = 100_000
	}
	if p.TargetFactor <= 0 {
		p.TargetFactor = 2
	}
	if p.Seed == 0 {
		p.Seed = 0xBA1E
	}
	return p
}

// Timing brackets the measured region of a kernel. Every PE calls Start
// immediately after a barrier and Stop after the closing barrier; the
// harness decides which PE's calls matter. A nil Timing is valid.
type Timing struct {
	Start func()
	Stop  func()
}

func (t *Timing) start() {
	if t != nil && t.Start != nil {
		t.Start()
	}
}

func (t *Timing) stop() {
	if t != nil && t.Stop != nil {
		t.Stop()
	}
}

// rngFor derives a PE-local random stream.
func rngFor(p Params, pe int, salt int64) *rand.Rand {
	mix := uint64(p.Seed) ^ uint64(pe+1)*0x9E3779B97F4A7C15 ^ uint64(salt)
	return rand.New(rand.NewSource(int64(mix)))
}

// randIndices draws n uniform global indices in [0, span).
func randIndices(rng *rand.Rand, n, span int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(rng.Intn(span))
	}
	return out
}

// KernelFunc runs one implementation of one kernel on the calling PE.
type KernelFunc func(w *runtime.World, p Params, t *Timing) error

// Histogram maps implementation names to runners (Fig. 3's series).
var Histogram = map[string]KernelFunc{
	"exstack":        HistoExstack,
	"exstack2":       HistoExstack2,
	"conveyor":       HistoConveyor,
	"selector":       HistoSelector,
	"chapel":         HistoChapel,
	"lamellar-am":    HistoLamellarAM,
	"lamellar-array": HistoLamellarArray,
}

// IndexGather maps implementation names to runners (Fig. 4's series).
var IndexGather = map[string]KernelFunc{
	"exstack":        IGExstack,
	"exstack2":       IGExstack2,
	"conveyor":       IGConveyor,
	"selector":       IGSelector,
	"chapel":         IGChapel,
	"lamellar-am":    IGLamellarAM,
	"lamellar-array": IGLamellarArray,
}

// Randperm maps implementation names to runners (Fig. 5's series).
var Randperm = map[string]KernelFunc{
	"exstack":     RPExstack,
	"exstack2":    RPExstack2,
	"conveyor":    RPConveyor,
	"selector":    RPSelector,
	"array-darts": RPArrayDarts,
	"am-dart":     RPAMDart,
	"am-dart-opt": RPAMDartOpt,
	"am-push":     RPAMPush,
}

// verifyCount checks a conservation law via a team sum.
func verifyCount(w *runtime.World, got, want uint64, what string) error {
	total := w.Team().SumU64(got)
	if total != want {
		return fmt.Errorf("kernels: %s: total %d, want %d", what, total, want)
	}
	return nil
}

// placeOf maps a global table index to (owner PE, local offset) for the
// block layout every implementation shares (tablePerPE elements per PE).
func placeOf(g uint64, perPE int) (pe int, off int) {
	return int(g) / perPE, int(g) % perPE
}
