package darc

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/runtime"
)

// faultCfg runs darc worlds over an adversarial shmem fabric: 5% of
// frames dropped, duplicated, and reordered on every link, repaired by
// the runtime's reliable wire layer with fast test-scale retry timing.
func faultCfg(pes int, seed int64) runtime.Config {
	return runtime.Config{
		PEs: pes, WorkersPerPE: 2, Lamellae: runtime.LamellaeShmem,
		Faults: fabric.NewFaultPlan(seed).SetDefault(fabric.LinkFaults{
			DropRate:    0.05,
			DupRate:     0.05,
			ReorderRate: 0.05,
			Delay:       300 * time.Microsecond,
		}),
		RetryInterval:   2 * time.Millisecond,
		RetryBackoffMax: 20 * time.Millisecond,
	}
}

// The distributed drop protocol must stay exact under drop/dup/reorder:
// duplicated transfer-count AMs must not double-count references (which
// would finalize early or leak), and every darc must still finalize on
// every PE exactly once.
func TestDropProtocolUnderFaults(t *testing.T) {
	var finalized atomic.Int64
	const n = 25
	err := runtime.Run(faultCfg(4, 1234), func(w *runtime.World) {
		ds := make([]*Darc[*atomic.Int64], n)
		for i := range ds {
			ds[i] = New(w.Team(), new(atomic.Int64), func(*atomic.Int64) { finalized.Add(1) })
		}
		w.Barrier()
		// Every PE ships a clone of every darc to every other PE; receivers
		// bump their local payload instance and drop the handle,
		// exercising transfer accounting on a lossy wire.
		for _, d := range ds {
			for dst := 0; dst < w.NumPEs(); dst++ {
				if dst != w.MyPE() {
					w.ExecAM(dst, &carrierAM{D: d.Clone(), Delta: 1})
				}
			}
		}
		w.WaitAll()
		w.Barrier()
		// Each local payload instance saw exactly one carrier from every
		// other PE despite duplicates on the wire.
		for i, d := range ds {
			if got := d.Get().Load(); got != int64(w.NumPEs()-1) {
				panic(fmt.Sprintf("PE%d: darc %d payload = %d, want %d (duplicate or lost carrier AM)",
					w.MyPE(), i, got, w.NumPEs()-1))
			}
		}
		for _, d := range ds {
			d.Drop()
		}
		for _, d := range ds {
			select {
			case <-waitDropped(w, d.ID()):
			case <-time.After(30 * time.Second):
				panic("darc never finalized under faults: drop protocol lost or double-counted a reference")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if finalized.Load() != n*4 {
		t.Errorf("finalized = %d, want %d", finalized.Load(), n*4)
	}
}
