package darc

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/runtime"
	"repro/internal/serde"
)

// carrierAM embeds a Darc handle, exercising transfer counting.
type carrierAM struct {
	D     *Darc[*atomic.Int64]
	Delta int64
	Hold  bool // if set, keep (leak) the received handle — must NOT free
}

func (a *carrierAM) MarshalLamellar(e *serde.Encoder) {
	a.D.MarshalLamellar(e)
	e.PutVarint(a.Delta)
	e.PutBool(a.Hold)
}

func (a *carrierAM) UnmarshalLamellar(d *serde.Decoder) error {
	var err error
	a.D, err = UnmarshalDarc[*atomic.Int64](d)
	if err != nil {
		return err
	}
	a.Delta = d.Varint()
	a.Hold = d.Bool()
	return d.Err()
}

func (a *carrierAM) Exec(ctx *runtime.Context) any {
	a.D.Get().Add(a.Delta)
	if !a.Hold {
		a.D.Drop()
	}
	return nil
}

func init() {
	runtime.RegisterAM[carrierAM]("darctest.carrier")
}

func cfg(pes int) runtime.Config {
	return runtime.Config{PEs: pes, WorkersPerPE: 2, Lamellae: runtime.LamellaeShmem}
}

func TestLocalCloneDrop(t *testing.T) {
	var finalized atomic.Int64
	err := runtime.Run(cfg(2), func(w *runtime.World) {
		d := New(w.Team(), new(atomic.Int64), func(v *atomic.Int64) { finalized.Add(1) })
		if d.LocalRefs() != 1 {
			panic("initial refs != 1")
		}
		c := d.Clone()
		if d.LocalRefs() != 2 {
			panic("clone did not bump refs")
		}
		c.Drop()
		w.Barrier()
		d.Drop()
		// Wait for async global destruction.
		select {
		case <-d.DroppedChan():
		case <-time.After(10 * time.Second):
			panic(fmt.Sprintf("PE%d: darc never dropped", w.MyPE()))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if finalized.Load() != 2 {
		t.Errorf("finalizers ran %d times, want 2", finalized.Load())
	}
}

func TestPerPEInstancesAreIndependent(t *testing.T) {
	err := runtime.Run(cfg(3), func(w *runtime.World) {
		d := New(w.Team(), new(atomic.Int64))
		d.Get().Store(int64(w.MyPE() * 100))
		w.Barrier()
		if d.Get().Load() != int64(w.MyPE()*100) {
			panic("instance not independent")
		}
		w.Barrier()
		d.Drop()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDarcTravelsInAM(t *testing.T) {
	err := runtime.Run(cfg(4), func(w *runtime.World) {
		d := New(w.Team(), new(atomic.Int64))
		w.Barrier()
		if w.MyPE() == 0 {
			// Send the darc to every other PE; each adds to ITS OWN instance.
			for pe := 1; pe < w.NumPEs(); pe++ {
				w.ExecAM(pe, &carrierAM{D: d.Clone(), Delta: 7})
			}
			// The clones' references are dropped by the handlers; wait.
			w.WaitAll()
		}
		w.Barrier()
		if w.MyPE() != 0 {
			if got := d.Get().Load(); got != 7 {
				panic(fmt.Sprintf("PE%d: instance = %d, want 7", w.MyPE(), got))
			}
		}
		w.Barrier()
		d.Drop()
		select {
		case <-d.DroppedChan():
		case <-time.After(10 * time.Second):
			panic(fmt.Sprintf("PE%d: darc with travel never dropped", w.MyPE()))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRemoteHolderKeepsAlive(t *testing.T) {
	var finalized atomic.Int64
	err := runtime.Run(cfg(2), func(w *runtime.World) {
		d := New(w.Team(), new(atomic.Int64), func(*atomic.Int64) { finalized.Add(1) })
		w.Barrier()
		if w.MyPE() == 0 {
			// PE1 will HOLD the received reference.
			w.ExecAM(1, &carrierAM{D: d.Clone(), Delta: 1, Hold: true})
			w.WaitAll()
		}
		w.Barrier()
		// Everyone drops their original handle; PE1's held AM reference
		// must keep the object alive everywhere.
		d.Drop()
		time.Sleep(20 * time.Millisecond)
		if finalized.Load() != 0 {
			panic("object finalized while a remote reference exists")
		}
		w.Barrier()
		// Now PE1 releases the held reference.
		if w.MyPE() == 1 {
			releaseRef(w, d.ID())
		}
		select {
		case <-waitDropped(w, d.ID()):
		case <-time.After(10 * time.Second):
			panic(fmt.Sprintf("PE%d: never dropped after final release", w.MyPE()))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if finalized.Load() != 2 {
		t.Errorf("finalizers = %d, want 2", finalized.Load())
	}
}

// waitDropped returns a channel that closes when id disappears from the
// local registry (works even after the entry is deleted).
func waitDropped(w *runtime.World, id uint64) <-chan struct{} {
	ch := make(chan struct{})
	go func() {
		for regFor(w).get(id) != nil {
			time.Sleep(time.Millisecond)
		}
		close(ch)
	}()
	return ch
}

func TestUseAfterDropPanics(t *testing.T) {
	err := runtime.Run(cfg(1), func(w *runtime.World) {
		d := New(w.Team(), new(atomic.Int64))
		d.Drop()
		<-waitDropped(w, d.ID())
		defer func() {
			if recover() == nil {
				panic("expected panic on use-after-drop")
			}
		}()
		d.Get()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestManyDarcsStress(t *testing.T) {
	var finalized atomic.Int64
	const n = 40
	err := runtime.Run(cfg(4), func(w *runtime.World) {
		ds := make([]*Darc[*atomic.Int64], n)
		for i := range ds {
			ds[i] = New(w.Team(), new(atomic.Int64), func(*atomic.Int64) { finalized.Add(1) })
		}
		w.Barrier()
		for i, d := range ds {
			dst := (w.MyPE() + 1 + i) % w.NumPEs()
			if dst != w.MyPE() {
				w.ExecAM(dst, &carrierAM{D: d.Clone(), Delta: 1})
			}
		}
		w.WaitAll()
		w.Barrier()
		for _, d := range ds {
			d.Drop()
		}
		for _, d := range ds {
			select {
			case <-waitDropped(w, d.ID()):
			case <-time.After(20 * time.Second):
				panic("stress darc never dropped")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if finalized.Load() != n*4 {
		t.Errorf("finalized = %d, want %d", finalized.Load(), n*4)
	}
}
