// Package darc implements Distributed Atomic Reference Counting — the
// paper's Darc layer (§III-E). A Darc is the distributed extension of an
// Arc/shared_ptr: every PE of the constructing team holds its own
// *independent* instance of the inner object, the Darc provides access to
// them, and the pointed-to objects stay alive on every PE as long as any
// PE (or any in-flight AM) still holds a reference anywhere in the world.
//
// Lifetime protocol:
//
//   - Clone/Drop adjust the PE-local count.
//   - Serializing a Darc into an AM takes an extra local reference (the
//     in-flight reference); deserializing on the destination adds a local
//     reference there and sends a release AM back to the sender, which
//     drops the in-flight reference. A live reference therefore exists
//     continuously somewhere, so counts can never be globally zero while
//     the object is reachable.
//   - When a PE's count reaches zero it notifies the team root. The root
//     polls every member (counts plus monotonic transfer counters); two
//     identical all-zero rounds prove global death (no transfer could
//     have moved a hidden reference between the rounds), and the root
//     broadcasts the asynchronous deallocation AM, mirroring the paper's
//     "status bits ... and an AM does the actual deallocation".
package darc

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/runtime"
	"repro/internal/serde"
)

// entry is one PE's registry record for a Darc id.
type entry struct {
	item       any
	team       *runtime.Team
	refs       atomic.Int64
	xfers      atomic.Uint64 // serialize + deserialize events on this PE
	final      func(any)
	dropped    chan struct{}
	checking   atomic.Bool   // root-only: a death check is running
	zeroEvents atomic.Uint64 // root-only: zero notifications received
}

// registry is the per-PE Darc table.
type registry struct {
	mu sync.Mutex
	m  map[uint64]*entry
}

var nextID atomic.Uint64

func regFor(w *runtime.World) *registry {
	return w.ExtState("darc", func() any {
		return &registry{m: make(map[uint64]*entry)}
	}).(*registry)
}

func (r *registry) get(id uint64) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.m[id]
}

func (r *registry) mustGet(id uint64) *entry {
	e := r.get(id)
	if e == nil {
		panic(fmt.Sprintf("darc: use of dropped or unknown darc %d", id))
	}
	return e
}

// Darc is a handle to a distributed reference-counted object of type T.
// Handles are PE-specific; embed them in AMs via MarshalLamellar /
// UnmarshalDarc to move access across PEs.
type Darc[T any] struct {
	id   uint64
	w    *runtime.World
	team *runtime.Team
}

// New collectively creates a Darc on team. Every member passes its own
// instance of the inner object (instances are independent per PE, as in
// the paper). Optional finalizers run on each PE at global destruction.
func New[T any](team *runtime.Team, item T, finalizer ...func(T)) *Darc[T] {
	w := team.World()
	id := team.CollectiveKind("darc.new", func() any { return nextID.Add(1) }).(uint64)
	e := &entry{item: item, team: team, dropped: make(chan struct{})}
	e.refs.Store(1)
	if len(finalizer) > 0 && finalizer[0] != nil {
		f := finalizer[0]
		e.final = func(v any) { f(v.(T)) }
	}
	reg := regFor(w)
	reg.mu.Lock()
	if _, dup := reg.m[id]; dup {
		reg.mu.Unlock()
		panic(fmt.Sprintf("darc: id %d already registered on PE%d", id, w.MyPE()))
	}
	reg.m[id] = e
	reg.mu.Unlock()
	return &Darc[T]{id: id, w: w, team: team}
}

// ID returns the Darc's global identifier.
func (d *Darc[T]) ID() uint64 { return d.id }

// Team returns the constructing team (calling PE's handle).
func (d *Darc[T]) Team() *runtime.Team { return d.team }

// Get returns this PE's instance of the inner object. As with the paper's
// Darcs, inner mutability is the user's concern: use types that are safe
// to share (atomics, mutex-guarded state).
func (d *Darc[T]) Get() T {
	return regFor(d.w).mustGet(d.id).item.(T)
}

// Clone takes an additional local reference and returns a new handle.
func (d *Darc[T]) Clone() *Darc[T] {
	regFor(d.w).mustGet(d.id).refs.Add(1)
	return &Darc[T]{id: d.id, w: d.w, team: d.team}
}

// Drop releases this handle's reference. When the local count reaches
// zero the global death check may run; destruction is asynchronous.
func (d *Darc[T]) Drop() {
	releaseRef(d.w, d.id)
}

// DroppedChan returns a channel closed when the object is globally
// deallocated on this PE (for tests and finalization barriers).
func (d *Darc[T]) DroppedChan() <-chan struct{} {
	return regFor(d.w).mustGet(d.id).dropped
}

// LocalRefs reports this PE's current reference count (introspection).
func (d *Darc[T]) LocalRefs() int64 {
	e := regFor(d.w).get(d.id)
	if e == nil {
		return 0
	}
	return e.refs.Load()
}

func releaseRef(w *runtime.World, id uint64) {
	e := regFor(w).mustGet(id)
	n := e.refs.Add(-1)
	switch {
	case n < 0:
		panic(fmt.Sprintf("darc: over-release of darc %d on PE%d", id, w.MyPE()))
	case n == 0:
		// Notify the team root that this PE might be the last holder.
		root := e.team.WorldPE(0)
		w.ExecAM(root, &maybeDeadAM{ID: id})
	}
}

// MarshalLamellar serializes the handle into an AM with *move* semantics:
// the handle's reference is repurposed as the in-flight reference, keeping
// the sender's count nonzero until the receiver attaches and releases it.
// Do not Drop or use a handle after embedding it in a sent AM — Clone
// first if you need to keep local access (mirroring Rust's move of the AM
// struct into exec_am_*).
func (d *Darc[T]) MarshalLamellar(e *serde.Encoder) {
	w, ok := e.Ctx.(*runtime.World)
	if !ok {
		panic("darc: Darc serialized outside an AM payload")
	}
	if w != d.w {
		panic("darc: handle serialized by a different PE than it belongs to")
	}
	ent := regFor(w).mustGet(d.id)
	ent.xfers.Add(1)
	e.PutUvarint(d.id)
	e.PutUvarint(uint64(w.MyPE()))
}

// UnmarshalDarc reads a Darc handle on the receiving PE, adding a local
// reference and releasing the sender's in-flight reference.
func UnmarshalDarc[T any](dec *serde.Decoder) (*Darc[T], error) {
	ctx, ok := dec.Ctx.(*runtime.Context)
	if !ok {
		return nil, fmt.Errorf("darc: Darc deserialized outside an AM context")
	}
	id := dec.Uvarint()
	sender := int(dec.Uvarint())
	if err := dec.Err(); err != nil {
		return nil, err
	}
	w := ctx.World
	e := regFor(w).get(id)
	if e == nil {
		return nil, fmt.Errorf("darc: PE%d received unknown darc %d", w.MyPE(), id)
	}
	e.refs.Add(1)
	e.xfers.Add(1)
	w.ExecAM(sender, &releaseAM{ID: id})
	return &Darc[T]{id: id, w: w, team: e.team}, nil
}

// ----- protocol AMs -------------------------------------------------------

// releaseAM drops the sender-side in-flight reference after a transfer.
type releaseAM struct{ ID uint64 }

func (a *releaseAM) MarshalLamellar(e *serde.Encoder)         { e.PutUvarint(a.ID) }
func (a *releaseAM) UnmarshalLamellar(d *serde.Decoder) error { a.ID = d.Uvarint(); return d.Err() }
func (a *releaseAM) Exec(ctx *runtime.Context) any {
	releaseRef(ctx.World, a.ID)
	return nil
}

// maybeDeadAM tells the team root a PE's count hit zero.
type maybeDeadAM struct{ ID uint64 }

func (a *maybeDeadAM) MarshalLamellar(e *serde.Encoder)         { e.PutUvarint(a.ID) }
func (a *maybeDeadAM) UnmarshalLamellar(d *serde.Decoder) error { a.ID = d.Uvarint(); return d.Err() }
func (a *maybeDeadAM) Exec(ctx *runtime.Context) any {
	w := ctx.World
	e := regFor(w).get(a.ID)
	if e == nil {
		return nil // already deallocated
	}
	e.zeroEvents.Add(1)
	if e.checking.CompareAndSwap(false, true) {
		w.Pool().Submit(func() { checkLoop(w, a.ID) })
	}
	return nil
}

// checkLoop runs death checks until the darc either dies or no new zero
// notification arrived during the last check (so no wakeup can be lost:
// any notification racing with the hand-back restarts the loop).
func checkLoop(w *runtime.World, id uint64) {
	e := regFor(w).get(id)
	if e == nil {
		return
	}
	for {
		seen := e.zeroEvents.Load()
		if runDeathCheck(w, id) {
			return
		}
		e.checking.Store(false)
		if e.zeroEvents.Load() == seen {
			return
		}
		if !e.checking.CompareAndSwap(false, true) {
			return
		}
	}
}

// pollAM reports a PE's (refs, xfers) for a Darc.
type pollAM struct{ ID uint64 }

func (a *pollAM) MarshalLamellar(e *serde.Encoder)         { e.PutUvarint(a.ID) }
func (a *pollAM) UnmarshalLamellar(d *serde.Decoder) error { a.ID = d.Uvarint(); return d.Err() }
func (a *pollAM) Exec(ctx *runtime.Context) any {
	e := regFor(ctx.World).get(a.ID)
	if e == nil {
		return []uint64{0, 0, 1} // gone: counts as dead and stable
	}
	return []uint64{uint64(e.refs.Load()), e.xfers.Load(), 0}
}

// deallocAM performs the per-PE deallocation.
type deallocAM struct{ ID uint64 }

func (a *deallocAM) MarshalLamellar(e *serde.Encoder)         { e.PutUvarint(a.ID) }
func (a *deallocAM) UnmarshalLamellar(d *serde.Decoder) error { a.ID = d.Uvarint(); return d.Err() }
func (a *deallocAM) Exec(ctx *runtime.Context) any {
	w := ctx.World
	reg := regFor(w)
	reg.mu.Lock()
	e := reg.m[a.ID]
	delete(reg.m, a.ID)
	reg.mu.Unlock()
	if e != nil {
		if e.final != nil {
			e.final(e.item)
		}
		close(e.dropped)
	}
	return nil
}

// runDeathCheck runs on the team root: two identical all-zero polling
// rounds prove global death. Reports whether deallocation was issued.
func runDeathCheck(w *runtime.World, id uint64) bool {
	e := regFor(w).get(id)
	if e == nil {
		return true
	}
	team := e.team
	poll := func() (allZero bool, xferSum uint64) {
		allZero = true
		for r := 0; r < team.Size(); r++ {
			res, err := runtime.BlockOn(w, runtime.ExecTyped[[]uint64](w, team.WorldPE(r), &pollAM{ID: id}))
			if err != nil || len(res) < 3 {
				return false, 0
			}
			if res[2] == 0 && res[0] != 0 {
				allZero = false
			}
			xferSum += res[1]
		}
		return allZero, xferSum
	}
	z1, x1 := poll()
	if !z1 {
		return false
	}
	z2, x2 := poll()
	if !z2 || x1 != x2 {
		// A reference moved or revived between rounds; a future zero
		// notification will retrigger the check.
		return false
	}
	for r := 0; r < team.Size(); r++ {
		w.ExecAM(team.WorldPE(r), &deallocAM{ID: id})
	}
	return true
}

func init() {
	runtime.RegisterAM[releaseAM]("darc.release")
	runtime.RegisterAM[maybeDeadAM]("darc.maybeDead")
	runtime.RegisterAM[pollAM]("darc.poll")
	runtime.RegisterAM[deallocAM]("darc.dealloc")
}
