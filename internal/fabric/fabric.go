// Package fabric simulates the RDMA network substrate that Lamellar's ROFI
// transport layer provides on real hardware (libfabric over InfiniBand).
//
// The paper's ROFI exposes exactly: initialization, PE ids, RDMA memory
// region (de)allocation, one-sided PUT/GET of raw bytes, and a barrier.
// This package reproduces that surface for goroutine-PEs living in one
// process:
//
//   - Segments are symmetric byte buffers (one per PE per allocation) with
//     an adjacent array of atomic control words used for flag protocols.
//   - Put/Get copy bytes between PEs' segments. Visibility across PEs must
//     be established the same way real RDMA requires it: by polling atomic
//     control words (AtomicStore/AtomicLoad create the happens-before
//     edges, exactly mirroring a NIC's completion/flag discipline).
//   - Remote atomics (load/store/add/cas on 64-bit control words) model
//     fi_atomic operations.
//   - A barrier with log2(P) modeled message rounds models ofi collectives.
//
// Because no InfiniBand hardware is available, every operation *accounts*
// modeled network time on its initiating PE according to a configurable
// cost model (latency + bytes/bandwidth + per-message gap, with an inject
// threshold mirroring the fi_inject_write/fi_write switch the paper
// observes at 256 B, and an optional cross-rack latency factor mirroring
// the topology effect discussed for Fig. 5). Benchmarks combine these
// modeled times with genuinely measured CPU time; see DESIGN.md §2.
package fabric

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// CostModel parameterizes the modeled network.
type CostModel struct {
	// LatencyNs is the one-way wire latency per message in nanoseconds.
	LatencyNs float64
	// BandwidthBytesPerNs is the peak link bandwidth (12.5 GB/s = 12.5 B/ns
	// matches the paper's HDR-100 network).
	BandwidthBytesPerNs float64
	// InjectThresholdBytes: messages at or below this size use the cheap
	// inject path (InjectGapNs per message); larger messages pay MsgGapNs.
	InjectThresholdBytes int
	// InjectGapNs is the per-message initiator gap for inject-size messages.
	InjectGapNs float64
	// MsgGapNs is the per-message initiator gap for regular messages.
	MsgGapNs float64
	// RackSize is the number of PEs per rack; 0 disables topology effects.
	// Messages between PEs in different racks multiply latency by RackFactor.
	RackSize int
	// RackFactor scales latency for cross-rack messages (>= 1).
	RackFactor float64
	// AtomicNs is the modeled cost of one remote atomic operation.
	AtomicNs float64
}

// DefaultCostModel mirrors the paper's testbed: HDR-100 InfiniBand,
// 12.5 GB/s peak, ~1.5 us small-message latency, 256 B inject threshold.
func DefaultCostModel() CostModel {
	return CostModel{
		LatencyNs:            1500,
		BandwidthBytesPerNs:  12.5,
		InjectThresholdBytes: 256,
		InjectGapNs:          150,
		MsgGapNs:             600,
		RackSize:             0,
		RackFactor:           1.6,
		AtomicNs:             500,
	}
}

// xferNs returns the modeled initiator-side *throughput* cost of one
// transfer: the per-message injection gap plus serialization time on the
// wire. Wire latency is deliberately not accumulated — put/get streams
// pipeline on real fabrics, so latency bounds round trips (modeled in
// barriers and atomics), not sustained bandwidth. Cross-rack messages pay
// a gap penalty reflecting the longer store-and-forward path under load.
func (c *CostModel) xferNs(src, dst, nbytes int) float64 {
	if src == dst {
		return 0
	}
	gap := c.MsgGapNs
	if nbytes <= c.InjectThresholdBytes {
		gap = c.InjectGapNs
	}
	if c.RackSize > 0 && src/c.RackSize != dst/c.RackSize {
		gap *= c.RackFactor
	}
	bw := c.BandwidthBytesPerNs
	if bw <= 0 {
		bw = math.Inf(1)
	}
	return gap + float64(nbytes)/bw
}

// Counters aggregates traffic observed on one PE (or the whole provider).
type Counters struct {
	Msgs      uint64 // number of put/get/atomic operations initiated
	Bytes     uint64 // payload bytes moved
	ModeledNs uint64 // modeled network nanoseconds accumulated
	Barriers  uint64 // barrier episodes
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.Msgs += other.Msgs
	c.Bytes += other.Bytes
	c.ModeledNs += other.ModeledNs
	c.Barriers += other.Barriers
}

// Sub returns c minus other (for windowed measurements).
func (c Counters) Sub(other Counters) Counters {
	return Counters{
		Msgs:      c.Msgs - other.Msgs,
		Bytes:     c.Bytes - other.Bytes,
		ModeledNs: c.ModeledNs - other.ModeledNs,
		Barriers:  c.Barriers - other.Barriers,
	}
}

type peCounters struct {
	msgs      atomic.Uint64
	bytes     atomic.Uint64
	modeledNs atomic.Uint64
	barriers  atomic.Uint64
}

// OpKind identifies a fabric operation for fault hooks and tracing.
type OpKind uint8

// Operation kinds passed to fault hooks.
const (
	OpPut OpKind = iota
	OpGet
	OpAtomic
	OpBarrier
)

func (k OpKind) String() string {
	switch k {
	case OpPut:
		return "put"
	case OpGet:
		return "get"
	case OpAtomic:
		return "atomic"
	case OpBarrier:
		return "barrier"
	default:
		return "unknown"
	}
}

// OpEvent describes one completed fabric operation as seen by a Hook:
// what ran, between whom, how many payload bytes moved, and the modeled
// network nanoseconds the operation accounted on its initiator. Hooks
// therefore observe completion (including the modeled duration), not
// just initiation — a tracing hook can reconstruct latency without
// reverse-engineering Counters.
type OpEvent struct {
	Kind      OpKind
	Initiator int
	Target    int
	Bytes     int
	ModeledNs uint64
}

// Hook observes (and may delay) every fabric operation; used by tests for
// fault injection and by tracing tools. The hook runs after the operation
// completed and its cost was accounted.
type Hook func(ev OpEvent)

// SegmentID names a symmetric allocation.
type SegmentID int32

// segment is a symmetric region: one data buffer and one control-word
// array per PE. Control words are the only memory with cross-PE atomic
// semantics, mirroring RDMA-atomic-capable registered memory.
type segment struct {
	data  [][]byte
	words [][]atomic.Uint64
}

// Provider is the simulated fabric for one world of PEs.
type Provider struct {
	npes int
	cost CostModel

	segments sync.Map // SegmentID -> *segment; lock-free on the data path
	nextSeg  atomic.Int32

	counters []peCounters
	hook     atomic.Pointer[Hook]
	faults   atomic.Pointer[FaultPlan]

	barrier *GroupBarrier
}

// New creates a provider for npes PEs with the given cost model.
func New(npes int, cost CostModel) *Provider {
	if npes <= 0 {
		panic("fabric: npes must be positive")
	}
	p := &Provider{
		npes:     npes,
		cost:     cost,
		counters: make([]peCounters, npes),
	}
	p.barrier = p.NewGroupBarrier(npes)
	return p
}

// NumPEs reports the number of PEs in the world.
func (p *Provider) NumPEs() int { return p.npes }

// Cost returns the provider's cost model.
func (p *Provider) Cost() CostModel { return p.cost }

// SetHook installs a fault/tracing hook (nil clears it).
func (p *Provider) SetHook(h Hook) {
	if h == nil {
		p.hook.Store(nil)
		return
	}
	p.hook.Store(&h)
}

func (p *Provider) callHook(ev OpEvent) {
	if hp := p.hook.Load(); hp != nil {
		(*hp)(ev)
	}
	if telemetry.Enabled() {
		if c := telemetry.C(); c != nil {
			c.Emit(telemetry.Event{
				TS: c.Now(), Dur: int64(ev.ModeledNs),
				Kind: telemetry.EvFabricOp, Sub: uint8(ev.Kind),
				PE: int32(ev.Initiator), Worker: telemetry.TidNet,
				Arg1: int64(ev.Target), Arg2: int64(ev.Bytes),
			})
		}
	}
}

func (p *Provider) account(initiator, target, nbytes int, kind OpKind) {
	if p.faults.Load() != nil {
		p.applyOpFaults(initiator, target)
	}
	c := &p.counters[initiator]
	c.msgs.Add(1)
	c.bytes.Add(uint64(nbytes))
	var ns float64
	if kind == OpAtomic {
		if initiator != target {
			ns = p.cost.AtomicNs
		}
	} else {
		ns = p.cost.xferNs(initiator, target, nbytes)
	}
	if ns > 0 {
		c.modeledNs.Add(uint64(ns))
	}
	p.callHook(OpEvent{Kind: kind, Initiator: initiator, Target: target, Bytes: nbytes, ModeledNs: uint64(ns)})
}

// CountersFor snapshots the traffic counters of one PE.
func (p *Provider) CountersFor(pe int) Counters {
	c := &p.counters[pe]
	return Counters{
		Msgs:      c.msgs.Load(),
		Bytes:     c.bytes.Load(),
		ModeledNs: c.modeledNs.Load(),
		Barriers:  c.barriers.Load(),
	}
}

// Snapshot sums traffic counters across all PEs.
func (p *Provider) Snapshot() Counters {
	var total Counters
	for pe := 0; pe < p.npes; pe++ {
		total.Add(p.CountersFor(pe))
	}
	return total
}

// MaxModeledNs returns the maximum modeled network time across PEs since
// the provided baseline snapshots (one per PE), approximating the modeled
// elapsed time of a bulk-parallel phase.
func (p *Provider) MaxModeledNs(base []Counters) uint64 {
	var maxNs uint64
	for pe := 0; pe < p.npes; pe++ {
		cur := p.CountersFor(pe)
		d := cur.ModeledNs - base[pe].ModeledNs
		if d > maxNs {
			maxNs = d
		}
	}
	return maxNs
}

// SnapshotAll returns one counter snapshot per PE.
func (p *Provider) SnapshotAll() []Counters {
	out := make([]Counters, p.npes)
	for pe := range out {
		out[pe] = p.CountersFor(pe)
	}
	return out
}

// AllocSegment collectively allocates a symmetric segment: nbytes of data
// and nwords atomic control words on every PE. In the real runtime this is
// a collective call; here any caller may allocate and share the id.
func (p *Provider) AllocSegment(nbytes, nwords int) SegmentID {
	if nbytes < 0 || nwords < 0 {
		panic("fabric: negative segment size")
	}
	s := &segment{
		data:  make([][]byte, p.npes),
		words: make([][]atomic.Uint64, p.npes),
	}
	for pe := 0; pe < p.npes; pe++ {
		s.data[pe] = make([]byte, nbytes)
		s.words[pe] = make([]atomic.Uint64, nwords)
	}
	id := SegmentID(p.nextSeg.Add(1))
	p.segments.Store(id, s)
	return id
}

// FreeSegment releases a segment on all PEs.
func (p *Provider) FreeSegment(id SegmentID) {
	p.segments.Delete(id)
}

func (p *Provider) seg(id SegmentID) *segment {
	v, ok := p.segments.Load(id)
	if !ok {
		panic(fmt.Sprintf("fabric: unknown segment %d", id))
	}
	return v.(*segment)
}

// LocalData returns pe's view of a segment's data bytes. Access rules are
// the RDMA rules: concurrent remote writes to bytes you are reading are
// races unless ordered through control words or a barrier.
func (p *Provider) LocalData(pe int, id SegmentID) []byte {
	return p.seg(id).data[pe]
}

// Put copies data into target's view of the segment at dstOff. One-sided:
// only the initiator participates. Completion is immediate from the
// initiator's perspective (ROFI's blocking put); remote visibility still
// requires a flag or barrier, as on real hardware.
func (p *Provider) Put(initiator, target int, id SegmentID, dstOff int, data []byte) {
	s := p.seg(id)
	dst := s.data[target]
	if dstOff < 0 || dstOff+len(data) > len(dst) {
		panic(fmt.Sprintf("fabric: put out of bounds: off=%d len=%d seg=%d", dstOff, len(data), len(dst)))
	}
	copy(dst[dstOff:], data)
	p.account(initiator, target, len(data), OpPut)
}

// Get copies bytes from target's view of the segment at srcOff into buf.
func (p *Provider) Get(initiator, target int, id SegmentID, srcOff int, buf []byte) {
	s := p.seg(id)
	src := s.data[target]
	if srcOff < 0 || srcOff+len(buf) > len(src) {
		panic(fmt.Sprintf("fabric: get out of bounds: off=%d len=%d seg=%d", srcOff, len(buf), len(src)))
	}
	copy(buf, src[srcOff:])
	p.account(initiator, target, len(buf), OpGet)
}

// AtomicLoad reads control word w of target's segment view.
func (p *Provider) AtomicLoad(initiator, target int, id SegmentID, w int) uint64 {
	v := p.seg(id).words[target][w].Load()
	p.account(initiator, target, 8, OpAtomic)
	return v
}

// AtomicStore writes control word w of target's segment view.
func (p *Provider) AtomicStore(initiator, target int, id SegmentID, w int, v uint64) {
	p.seg(id).words[target][w].Store(v)
	p.account(initiator, target, 8, OpAtomic)
}

// AtomicAdd atomically adds delta to control word w and returns the new value.
func (p *Provider) AtomicAdd(initiator, target int, id SegmentID, w int, delta uint64) uint64 {
	v := p.seg(id).words[target][w].Add(delta)
	p.account(initiator, target, 8, OpAtomic)
	return v
}

// AtomicCAS performs compare-and-swap on control word w.
func (p *Provider) AtomicCAS(initiator, target int, id SegmentID, w int, old, new uint64) bool {
	ok := p.seg(id).words[target][w].CompareAndSwap(old, new)
	p.account(initiator, target, 8, OpAtomic)
	return ok
}

// LocalAtomicLoad reads a control word on the caller's own view without
// traffic accounting; used by polling progress loops (a local poll is a
// cache read, not a network operation).
func (p *Provider) LocalAtomicLoad(pe int, id SegmentID, w int) uint64 {
	return p.seg(id).words[pe][w].Load()
}

// LocalAtomicStore writes a local control word without traffic accounting.
func (p *Provider) LocalAtomicStore(pe int, id SegmentID, w int, v uint64) {
	p.seg(id).words[pe][w].Store(v)
}

// LocalAtomicAdd adds to a local control word without traffic accounting.
func (p *Provider) LocalAtomicAdd(pe int, id SegmentID, w int, delta uint64) uint64 {
	return p.seg(id).words[pe][w].Add(delta)
}

// Words is a cached handle on a segment's atomic control words: the data
// path skips the segment-table lookup, like keeping a registered memory
// key on real hardware. Accounting matches the Provider methods.
type Words struct {
	p *Provider
	s *segment
}

// Words returns a cached handle for the segment's control words.
func (p *Provider) Words(id SegmentID) Words {
	return Words{p: p, s: p.seg(id)}
}

// Load reads control word w of target's view (remote atomic cost).
func (a Words) Load(initiator, target, w int) uint64 {
	v := a.s.words[target][w].Load()
	a.p.account(initiator, target, 8, OpAtomic)
	return v
}

// Store writes control word w of target's view (remote atomic cost).
func (a Words) Store(initiator, target, w int, v uint64) {
	a.s.words[target][w].Store(v)
	a.p.account(initiator, target, 8, OpAtomic)
}

// Add atomically adds delta, returning the new value (remote atomic cost).
func (a Words) Add(initiator, target, w int, delta uint64) uint64 {
	v := a.s.words[target][w].Add(delta)
	a.p.account(initiator, target, 8, OpAtomic)
	return v
}

// CAS compare-and-swaps (remote atomic cost).
func (a Words) CAS(initiator, target, w int, old, new uint64) bool {
	ok := a.s.words[target][w].CompareAndSwap(old, new)
	a.p.account(initiator, target, 8, OpAtomic)
	return ok
}

// LocalLoad reads the caller's own word: a local poll, free of cost.
func (a Words) LocalLoad(pe, w int) uint64 { return a.s.words[pe][w].Load() }

// LocalStore writes the caller's own word without cost accounting.
func (a Words) LocalStore(pe, w int, v uint64) { a.s.words[pe][w].Store(v) }

// LocalAdd adds to the caller's own word without cost accounting.
func (a Words) LocalAdd(pe, w int, delta uint64) uint64 { return a.s.words[pe][w].Add(delta) }

// Barrier blocks until every PE in the world has entered it. The modeled
// cost is a dissemination barrier: ceil(log2 P) rounds of small messages.
func (p *Provider) Barrier(pe int) {
	p.accountBarrier(pe, p.npes)
	p.barrier.Wait()
}

func (p *Provider) accountBarrier(pe, size int) {
	if size <= 1 {
		p.callHook(OpEvent{Kind: OpBarrier, Initiator: pe, Target: pe})
		return
	}
	rounds := bits.Len(uint(size - 1)) // ceil(log2 size)
	c := &p.counters[pe]
	c.barriers.Add(1)
	c.msgs.Add(uint64(rounds))
	ns := float64(rounds) * (p.cost.LatencyNs + p.cost.InjectGapNs)
	c.modeledNs.Add(uint64(ns))
	p.callHook(OpEvent{Kind: OpBarrier, Initiator: pe, Target: pe, ModeledNs: uint64(ns)})
}

// GroupBarrier is a reusable barrier for an arbitrary subset of PEs
// (teams). Construction is collective by convention: every member must
// share the same instance.
type GroupBarrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	size  int
	count int
	gen   uint64
}

// NewGroupBarrier creates a barrier for size participants.
func (p *Provider) NewGroupBarrier(size int) *GroupBarrier {
	b := &GroupBarrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// WaitFor enters the barrier as pe, accounting modeled cost, then blocks
// until all participants arrive.
func (p *Provider) WaitFor(pe int, b *GroupBarrier) {
	p.accountBarrier(pe, b.size)
	b.Wait()
}

// Wait blocks until all participants arrive (no cost accounting).
func (b *GroupBarrier) Wait() {
	if b.size <= 1 {
		return
	}
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.size {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
