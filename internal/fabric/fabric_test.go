package fabric

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestPutGetRoundTrip(t *testing.T) {
	p := New(4, DefaultCostModel())
	seg := p.AllocSegment(128, 4)

	data := []byte("hello fabric")
	p.Put(0, 2, seg, 16, data)

	buf := make([]byte, len(data))
	p.Get(1, 2, seg, 16, buf)
	if string(buf) != string(data) {
		t.Errorf("got %q want %q", buf, data)
	}
	// other PEs' views untouched
	if b := p.LocalData(3, seg); b[16] != 0 {
		t.Errorf("PE3 view modified")
	}
}

func TestLocalDataAliasesPut(t *testing.T) {
	p := New(2, DefaultCostModel())
	seg := p.AllocSegment(8, 0)
	p.Put(0, 1, seg, 0, []byte{9})
	if p.LocalData(1, seg)[0] != 9 {
		t.Error("LocalData does not observe put")
	}
}

func TestPutOutOfBoundsPanics(t *testing.T) {
	p := New(2, DefaultCostModel())
	seg := p.AllocSegment(8, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Put(0, 1, seg, 4, make([]byte, 8))
}

func TestAtomics(t *testing.T) {
	p := New(3, DefaultCostModel())
	seg := p.AllocSegment(0, 2)

	p.AtomicStore(0, 1, seg, 0, 41)
	if v := p.AtomicAdd(2, 1, seg, 0, 1); v != 42 {
		t.Errorf("AtomicAdd = %d", v)
	}
	if v := p.AtomicLoad(0, 1, seg, 0); v != 42 {
		t.Errorf("AtomicLoad = %d", v)
	}
	if !p.AtomicCAS(0, 1, seg, 0, 42, 100) {
		t.Error("CAS should succeed")
	}
	if p.AtomicCAS(0, 1, seg, 0, 42, 5) {
		t.Error("CAS should fail")
	}
	if v := p.LocalAtomicLoad(1, seg, 0); v != 100 {
		t.Errorf("final = %d", v)
	}
}

// TestFlagProtocolHappensBefore exercises the RDMA flag discipline the
// runtime relies on: payload bytes written before an atomic flag store must
// be visible to a reader that observed the flag. Run with -race.
func TestFlagProtocolHappensBefore(t *testing.T) {
	p := New(2, DefaultCostModel())
	seg := p.AllocSegment(1024, 1)

	const rounds = 200
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // producer on PE0 writing into PE1
		defer wg.Done()
		for i := 1; i <= rounds; i++ {
			payload := make([]byte, 64)
			for j := range payload {
				payload[j] = byte(i)
			}
			p.Put(0, 1, seg, 0, payload)
			p.AtomicStore(0, 1, seg, 0, uint64(i))
			// wait for consumer ack before overwriting
			for p.AtomicLoad(0, 0, seg, 0) != uint64(i) {
			}
		}
	}()
	go func() { // consumer on PE1
		defer wg.Done()
		buf := make([]byte, 64)
		for i := 1; i <= rounds; i++ {
			for p.LocalAtomicLoad(1, seg, 0) != uint64(i) {
			}
			p.Get(1, 1, seg, 0, buf)
			for j := range buf {
				if buf[j] != byte(i) {
					t.Errorf("round %d: byte %d = %d", i, j, buf[j])
					return
				}
			}
			p.AtomicStore(1, 0, seg, 0, uint64(i)) // ack
		}
	}()
	wg.Wait()
}

func TestBarrierAllArrive(t *testing.T) {
	const n = 8
	p := New(n, DefaultCostModel())
	var phase atomic.Int64
	var wg sync.WaitGroup
	for pe := 0; pe < n; pe++ {
		wg.Add(1)
		go func(pe int) {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				phase.Add(1)
				p.Barrier(pe)
				// after the barrier every PE must have bumped phase
				if got := phase.Load(); got < int64((round+1)*n) {
					t.Errorf("round %d: phase = %d", round, got)
					return
				}
				p.Barrier(pe)
			}
		}(pe)
	}
	wg.Wait()
}

func TestGroupBarrierSubset(t *testing.T) {
	p := New(6, DefaultCostModel())
	b := p.NewGroupBarrier(3)
	var before atomic.Int64
	var wg sync.WaitGroup
	for _, pe := range []int{1, 3, 5} {
		wg.Add(1)
		go func(pe int) {
			defer wg.Done()
			before.Add(1)
			p.WaitFor(pe, b)
			if before.Load() != 3 {
				t.Errorf("barrier released before all members arrived")
			}
		}(pe)
	}
	wg.Wait()
}

func TestCostModelInjectThreshold(t *testing.T) {
	c := DefaultCostModel()
	small := c.xferNs(0, 1, c.InjectThresholdBytes)
	big := c.xferNs(0, 1, c.InjectThresholdBytes+1)
	if big <= small {
		t.Errorf("no inject-threshold step: small=%v big=%v", small, big)
	}
	if c.xferNs(0, 0, 1<<20) != 0 {
		t.Error("local transfer should be free")
	}
}

func TestCostModelRackPenalty(t *testing.T) {
	c := DefaultCostModel()
	c.RackSize = 4
	intra := c.xferNs(0, 3, 8)
	inter := c.xferNs(0, 4, 8)
	if inter <= intra {
		t.Errorf("no rack penalty: intra=%v inter=%v", intra, inter)
	}
}

func TestCostModelMonotonicInSize(t *testing.T) {
	c := DefaultCostModel()
	err := quick.Check(func(a, b uint16) bool {
		x, y := int(a)+257, int(b)+257 // above inject threshold
		if x > y {
			x, y = y, x
		}
		return c.xferNs(0, 1, x) <= c.xferNs(0, 1, y)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestAccounting(t *testing.T) {
	p := New(2, DefaultCostModel())
	seg := p.AllocSegment(64, 1)
	base := p.CountersFor(0)

	p.Put(0, 1, seg, 0, make([]byte, 32))
	p.Get(0, 1, seg, 0, make([]byte, 16))
	p.AtomicAdd(0, 1, seg, 0, 1)

	d := p.CountersFor(0).Sub(base)
	if d.Msgs != 3 {
		t.Errorf("msgs = %d", d.Msgs)
	}
	if d.Bytes != 32+16+8 {
		t.Errorf("bytes = %d", d.Bytes)
	}
	if d.ModeledNs == 0 {
		t.Error("no modeled time accumulated")
	}
	// target PE initiated nothing
	if c := p.CountersFor(1); c.Msgs != 0 {
		t.Errorf("PE1 msgs = %d", c.Msgs)
	}
}

func TestLocalOpsFree(t *testing.T) {
	p := New(2, DefaultCostModel())
	seg := p.AllocSegment(64, 1)
	base := p.CountersFor(0)
	p.Put(0, 0, seg, 0, make([]byte, 32))
	d := p.CountersFor(0).Sub(base)
	if d.ModeledNs != 0 {
		t.Errorf("local put accrued modeled time %d", d.ModeledNs)
	}
}

func TestHookObservesOps(t *testing.T) {
	p := New(2, DefaultCostModel())
	seg := p.AllocSegment(8, 1)
	var puts, gets, atomics atomic.Int64
	var putNs, putBytes atomic.Int64
	p.SetHook(func(ev OpEvent) {
		switch ev.Kind {
		case OpPut:
			puts.Add(1)
			putNs.Add(int64(ev.ModeledNs))
			putBytes.Add(int64(ev.Bytes))
		case OpGet:
			gets.Add(1)
		case OpAtomic:
			atomics.Add(1)
		}
	})
	p.Put(0, 1, seg, 0, []byte{1})
	p.Get(0, 1, seg, 0, make([]byte, 1))
	p.AtomicLoad(0, 1, seg, 0)
	p.SetHook(nil)
	p.Put(0, 1, seg, 0, []byte{1}) // not observed
	if puts.Load() != 1 || gets.Load() != 1 || atomics.Load() != 1 {
		t.Errorf("hook counts: put=%d get=%d atomic=%d", puts.Load(), gets.Load(), atomics.Load())
	}
	// The hook observes completion, not just initiation: the event carries
	// the payload size and the op's full modeled duration.
	if putBytes.Load() != 1 {
		t.Errorf("hook put bytes = %d, want 1", putBytes.Load())
	}
	cm := DefaultCostModel()
	want := int64(uint64(cm.xferNs(0, 1, 1)))
	if putNs.Load() != want {
		t.Errorf("hook put modeled ns = %d, want %d", putNs.Load(), want)
	}
}

func TestTypedRegionRoundTrip(t *testing.T) {
	p := New(3, DefaultCostModel())
	r := AllocTyped[float64](p, 100)

	src := make([]float64, 10)
	for i := range src {
		src[i] = float64(i) * 1.5
	}
	r.Put(0, 2, 50, src)

	dst := make([]float64, 10)
	r.Get(1, 2, 50, dst)
	for i := range dst {
		if dst[i] != src[i] {
			t.Errorf("elem %d = %v", i, dst[i])
		}
	}
	if got := r.Local(2)[50]; got != 0.0 {
		_ = got
	}
	if r.Local(0)[50] != 0 {
		t.Error("PE0 view modified")
	}
}

func TestTypedRegionAccountsElemSize(t *testing.T) {
	p := New(2, DefaultCostModel())
	r := AllocTyped[uint64](p, 16)
	if r.ElemSize() != 8 {
		t.Fatalf("ElemSize = %d", r.ElemSize())
	}
	base := p.CountersFor(0)
	r.Put(0, 1, 0, make([]uint64, 4))
	d := p.CountersFor(0).Sub(base)
	if d.Bytes != 32 {
		t.Errorf("bytes = %d want 32", d.Bytes)
	}
}

func TestTypedRegionBounds(t *testing.T) {
	p := New(2, DefaultCostModel())
	r := AllocTyped[int32](p, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Put(0, 1, 2, make([]int32, 4))
}

func TestBarrierAccountsLogRounds(t *testing.T) {
	p := New(8, DefaultCostModel())
	base := p.CountersFor(0)
	var wg sync.WaitGroup
	for pe := 0; pe < 8; pe++ {
		wg.Add(1)
		go func(pe int) { defer wg.Done(); p.Barrier(pe) }(pe)
	}
	wg.Wait()
	d := p.CountersFor(0).Sub(base)
	if d.Barriers != 1 {
		t.Errorf("barriers = %d", d.Barriers)
	}
	if d.Msgs != 3 { // log2(8)
		t.Errorf("barrier msgs = %d want 3", d.Msgs)
	}
}

func TestSegmentFree(t *testing.T) {
	p := New(2, DefaultCostModel())
	seg := p.AllocSegment(8, 0)
	p.FreeSegment(seg)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on freed segment")
		}
	}()
	p.Put(0, 1, seg, 0, []byte{1})
}
