package fabric

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Fault injection: deterministic, seedable fault *plans* for the message
// layer, exposed alongside the existing Hook. A FaultPlan decides, per
// link (ordered PE pair), whether a given message envelope should be
// dropped, duplicated, reordered, or delayed, and whether the link is
// partitioned outright. The runtime's reliable wire layer consults the
// plan on every frame transmission; the Provider itself honors only the
// delay and partition-as-delay aspects for raw fabric operations (a
// completed memory op cannot be un-done, but it can be slow).
//
// Determinism contract: for a fixed seed, the *sequence of decisions per
// link* is reproducible. Which concrete frame draws which decision still
// depends on goroutine scheduling — the strongest guarantee a concurrent
// runtime can give — so tests assert protocol outcomes, not per-frame
// fates.

// LinkFaults configures the fault behavior of one link (or the default
// for all links). Rates are probabilities in [0,1] and are evaluated as
// a cascade per decision: drop, else duplicate, else reorder; delay is
// rolled independently and may combine with duplicate/reorder.
type LinkFaults struct {
	// DropRate is the probability a frame transmission is suppressed
	// (the reliability layer's retry path must recover it).
	DropRate float64
	// DupRate is the probability a frame is transmitted twice.
	DupRate float64
	// ReorderRate is the probability a frame is held briefly so later
	// frames overtake it on the wire.
	ReorderRate float64
	// DelayRate is the probability a frame (or fabric op) is delayed by
	// Delay before transmission.
	DelayRate float64
	// Delay is the injected latency for delayed frames (also the hold
	// time for reordered frames when nonzero; reorder defaults to 1ms).
	Delay time.Duration
	// BurstLen repeats a drawn fault for this many consecutive decisions
	// (loss burstiness); 0 or 1 means independent decisions.
	BurstLen int
	// Partitioned drops every frame on the link until healed.
	Partitioned bool
}

// active reports whether the config can ever produce a fault.
func (f LinkFaults) active() bool {
	return f.Partitioned || f.DropRate > 0 || f.DupRate > 0 || f.ReorderRate > 0 || f.DelayRate > 0
}

// FaultKind labels the decision a plan made for one transmission.
type FaultKind uint8

// Decision kinds, in cascade order.
const (
	FaultNone FaultKind = iota
	FaultDrop
	FaultDup
	FaultReorder
	FaultDelay
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultDrop:
		return "drop"
	case FaultDup:
		return "dup"
	case FaultReorder:
		return "reorder"
	case FaultDelay:
		return "delay"
	default:
		return "unknown"
	}
}

// FaultDecision is the plan's verdict for one transmission.
type FaultDecision struct {
	// Kind is the primary fault (none/drop/dup/reorder).
	Kind FaultKind
	// Delay is nonzero when the transmission should be deferred by this
	// much (set for delay faults and for reorder holds).
	Delay time.Duration
}

// FaultCounts aggregates the faults a plan has injected.
type FaultCounts struct {
	Drops, Dups, Reorders, Delays uint64
}

// Total sums all injected faults.
func (c FaultCounts) Total() uint64 { return c.Drops + c.Dups + c.Reorders + c.Delays }

// linkState is the per-link deterministic fault stream.
type linkState struct {
	mu        sync.Mutex
	rng       *rand.Rand
	faults    LinkFaults
	burstLeft int
	burstKind FaultKind
}

// FaultPlan is a seeded, per-link fault schedule. Zero-config links use
// the plan default. Safe for concurrent use.
type FaultPlan struct {
	seed int64

	mu    sync.Mutex
	def   LinkFaults
	links map[[2]int]*linkState

	drops    atomic.Uint64
	dups     atomic.Uint64
	reorders atomic.Uint64
	delays   atomic.Uint64
}

// NewFaultPlan creates an empty plan (no faults) with the given seed.
func NewFaultPlan(seed int64) *FaultPlan {
	return &FaultPlan{seed: seed, links: make(map[[2]int]*linkState)}
}

// Seed reports the plan's seed.
func (p *FaultPlan) Seed() int64 { return p.seed }

// SetDefault installs f as the fault config for every link without an
// explicit override. Returns p for chaining. Links that already drew
// decisions keep their RNG stream but adopt the new config.
func (p *FaultPlan) SetDefault(f LinkFaults) *FaultPlan {
	p.mu.Lock()
	p.def = f
	for _, ls := range p.links {
		ls.mu.Lock()
		ls.faults = f
		ls.burstLeft = 0
		ls.mu.Unlock()
	}
	p.mu.Unlock()
	return p
}

// SetLink overrides the fault config of the src→dst link.
func (p *FaultPlan) SetLink(src, dst int, f LinkFaults) *FaultPlan {
	ls := p.link(src, dst)
	ls.mu.Lock()
	ls.faults = f
	ls.burstLeft = 0
	ls.mu.Unlock()
	return p
}

// Partition drops all traffic src→dst (and dst→src when both is set)
// until Heal.
func (p *FaultPlan) Partition(src, dst int, both bool) *FaultPlan {
	p.setPartition(src, dst, true)
	if both {
		p.setPartition(dst, src, true)
	}
	return p
}

// Heal reopens the src→dst link (and dst→src when both is set).
func (p *FaultPlan) Heal(src, dst int, both bool) *FaultPlan {
	p.setPartition(src, dst, false)
	if both {
		p.setPartition(dst, src, false)
	}
	return p
}

func (p *FaultPlan) setPartition(src, dst int, v bool) {
	ls := p.link(src, dst)
	ls.mu.Lock()
	ls.faults.Partitioned = v
	ls.mu.Unlock()
}

// link returns (creating if needed) the state of the src→dst link.
func (p *FaultPlan) link(src, dst int) *linkState {
	key := [2]int{src, dst}
	p.mu.Lock()
	ls := p.links[key]
	if ls == nil {
		// Per-link RNG seeded from the plan seed and the link identity, so
		// each link's decision stream is independent and reproducible.
		h := p.seed
		h = h*1000003 + int64(src)*8191 + int64(dst) + 0x9e3779b9
		ls = &linkState{rng: rand.New(rand.NewSource(h)), faults: p.def}
		p.links[key] = ls
	}
	p.mu.Unlock()
	return ls
}

// Injected snapshots the faults this plan has handed out so far.
func (p *FaultPlan) Injected() FaultCounts {
	return FaultCounts{
		Drops:    p.drops.Load(),
		Dups:     p.dups.Load(),
		Reorders: p.reorders.Load(),
		Delays:   p.delays.Load(),
	}
}

// defaultReorderHold is how long a reordered frame is held when the link
// config gives no explicit Delay.
const defaultReorderHold = time.Millisecond

// Decide draws the next fault decision for one transmission on src→dst.
func (p *FaultPlan) Decide(src, dst int) FaultDecision {
	if p == nil {
		return FaultDecision{}
	}
	ls := p.link(src, dst)
	ls.mu.Lock()
	f := ls.faults
	if !f.active() {
		ls.mu.Unlock()
		return FaultDecision{}
	}
	if f.Partitioned {
		ls.mu.Unlock()
		p.drops.Add(1)
		return FaultDecision{Kind: FaultDrop}
	}
	var kind FaultKind
	if ls.burstLeft > 0 {
		ls.burstLeft--
		kind = ls.burstKind
	} else {
		r := ls.rng.Float64()
		switch {
		case r < f.DropRate:
			kind = FaultDrop
		case r < f.DropRate+f.DupRate:
			kind = FaultDup
		case r < f.DropRate+f.DupRate+f.ReorderRate:
			kind = FaultReorder
		case r < f.DropRate+f.DupRate+f.ReorderRate+f.DelayRate:
			kind = FaultDelay
		}
		if kind != FaultNone && f.BurstLen > 1 {
			ls.burstLeft = f.BurstLen - 1
			ls.burstKind = kind
		}
	}
	ls.mu.Unlock()

	d := FaultDecision{Kind: kind}
	switch kind {
	case FaultDrop:
		p.drops.Add(1)
	case FaultDup:
		p.dups.Add(1)
	case FaultReorder:
		p.reorders.Add(1)
		d.Delay = f.Delay
		if d.Delay <= 0 {
			d.Delay = defaultReorderHold
		}
	case FaultDelay:
		p.delays.Add(1)
		d.Delay = f.Delay
		if d.Delay <= 0 {
			d.Delay = defaultReorderHold
		}
	}
	return d
}

// ----- provider attachment ----------------------------------------------

// SetFaultPlan attaches a fault plan to the provider, alongside the Hook.
// Raw fabric operations (put/get/atomic) honor only the plan's *delay*
// dimension — a completed one-sided memory operation cannot be dropped or
// duplicated retroactively, but a slow NIC can be modeled faithfully.
// Partitioned links stall operations by the plan's Delay (default hold)
// per op rather than blocking forever, keeping flag protocols live-locked
// rather than deadlocked. nil clears the plan.
func (p *Provider) SetFaultPlan(plan *FaultPlan) {
	if plan == nil {
		p.faults.Store(nil)
		return
	}
	p.faults.Store(plan)
}

// FaultPlan returns the attached plan, or nil.
func (p *Provider) FaultPlan() *FaultPlan {
	return p.faults.Load()
}

// applyOpFaults injects the delay dimension of the attached plan into one
// fabric operation. Called from the accounting path of remote operations.
func (p *Provider) applyOpFaults(initiator, target int) {
	plan := p.faults.Load()
	if plan == nil || initiator == target {
		return
	}
	d := plan.Decide(initiator, target)
	if d.Delay > 0 {
		time.Sleep(d.Delay)
	} else if d.Kind == FaultDrop {
		// Memory ops cannot be un-done; model a partitioned/lossy link as
		// a stall so polling protocols retry instead of corrupting state.
		time.Sleep(defaultReorderHold)
	}
}
