package fabric

import (
	"testing"
	"time"
)

// drawKinds pulls n decisions off one link of a fresh plan.
func drawKinds(seed int64, src, dst, n int, f LinkFaults) []FaultKind {
	p := NewFaultPlan(seed).SetDefault(f)
	out := make([]FaultKind, n)
	for i := range out {
		out[i] = p.Decide(src, dst).Kind
	}
	return out
}

func TestFaultPlanDeterministic(t *testing.T) {
	f := LinkFaults{DropRate: 0.1, DupRate: 0.1, ReorderRate: 0.1, DelayRate: 0.05, Delay: time.Microsecond}
	a := drawKinds(42, 0, 1, 500, f)
	b := drawKinds(42, 0, 1, 500, f)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across same-seed plans: %v vs %v", i, a[i], b[i])
		}
	}
	c := drawKinds(43, 0, 1, 500, f)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed 42 and 43 produced identical decision streams")
	}
}

func TestFaultPlanLinksIndependent(t *testing.T) {
	f := LinkFaults{DropRate: 0.3}
	p := NewFaultPlan(7).SetDefault(f)
	a := make([]FaultKind, 200)
	b := make([]FaultKind, 200)
	for i := range a {
		a[i] = p.Decide(0, 1).Kind
		b[i] = p.Decide(1, 0).Kind
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("links 0→1 and 1→0 share a decision stream")
	}
}

func TestFaultPlanRates(t *testing.T) {
	f := LinkFaults{DropRate: 0.2, DupRate: 0.1}
	p := NewFaultPlan(1).SetDefault(f)
	const n = 20000
	var drops, dups int
	for i := 0; i < n; i++ {
		switch p.Decide(2, 3).Kind {
		case FaultDrop:
			drops++
		case FaultDup:
			dups++
		}
	}
	if got := float64(drops) / n; got < 0.17 || got > 0.23 {
		t.Errorf("drop rate %.3f, want ~0.20", got)
	}
	if got := float64(dups) / n; got < 0.07 || got > 0.13 {
		t.Errorf("dup rate %.3f, want ~0.10", got)
	}
	inj := p.Injected()
	if inj.Drops != uint64(drops) || inj.Dups != uint64(dups) {
		t.Errorf("Injected()=%+v, want drops=%d dups=%d", inj, drops, dups)
	}
}

func TestFaultPlanBursts(t *testing.T) {
	f := LinkFaults{DropRate: 0.05, BurstLen: 4}
	p := NewFaultPlan(9).SetDefault(f)
	run := 0
	maxRun := 0
	for i := 0; i < 5000; i++ {
		if p.Decide(0, 1).Kind == FaultDrop {
			run++
			if run > maxRun {
				maxRun = run
			}
		} else {
			run = 0
		}
	}
	if maxRun < 4 {
		t.Errorf("max drop burst %d, want >= BurstLen 4", maxRun)
	}
}

func TestFaultPlanPartitionAndHeal(t *testing.T) {
	p := NewFaultPlan(0)
	p.Partition(0, 1, false)
	for i := 0; i < 10; i++ {
		if d := p.Decide(0, 1); d.Kind != FaultDrop {
			t.Fatalf("partitioned link decision %v, want drop", d.Kind)
		}
	}
	if d := p.Decide(1, 0); d.Kind != FaultNone {
		t.Fatalf("reverse link decision %v, want none", d.Kind)
	}
	p.Heal(0, 1, false)
	if d := p.Decide(0, 1); d.Kind != FaultNone {
		t.Fatalf("healed link decision %v, want none", d.Kind)
	}
}

func TestNilPlanDecide(t *testing.T) {
	var p *FaultPlan
	if d := p.Decide(0, 1); d.Kind != FaultNone || d.Delay != 0 {
		t.Fatalf("nil plan decision = %+v, want zero", d)
	}
}

// A provider with an attached plan must only slow operations down, never
// corrupt them.
func TestProviderDelayFaults(t *testing.T) {
	prov := New(2, CostModel{})
	plan := NewFaultPlan(3).SetDefault(LinkFaults{DelayRate: 0.5, Delay: 50 * time.Microsecond})
	prov.SetFaultPlan(plan)
	if prov.FaultPlan() != plan {
		t.Fatal("FaultPlan() did not return the attached plan")
	}
	id := prov.AllocSegment(64, 1)
	defer prov.FreeSegment(id)
	src := []byte("hello fault world")
	prov.Put(0, 1, id, 0, src)
	got := make([]byte, len(src))
	prov.Get(0, 1, id, 0, got)
	if string(got) != string(src) {
		t.Fatalf("payload corrupted under delay faults: %q", got)
	}
	if plan.Injected().Delays == 0 {
		t.Error("expected some delay injections")
	}
	prov.SetFaultPlan(nil)
	if prov.FaultPlan() != nil {
		t.Error("SetFaultPlan(nil) did not clear the plan")
	}
}
