package fabric

import (
	"fmt"
	"reflect"

	"repro/internal/serde"
)

// TypedRegion is a symmetric RDMA-registered region of numeric elements:
// every PE holds elems elements. It backs Shared/OneSidedMemoryRegions and
// the direct-RDMA paths of UnsafeArray/ReadOnlyArray. The element size
// feeds the cost model so a put of 1000 float64 accounts 8000 bytes, as a
// real fi_write of the same buffer would.
//
// Access discipline is RDMA's: remote Put/Get concurrent with local access
// to the same elements is a data race; order through control words,
// barriers, or higher-level safe abstractions.
type TypedRegion[T serde.Number] struct {
	prov     *Provider
	elems    int
	elemSize int
	local    [][]T
}

// AllocTyped collectively allocates a symmetric typed region holding elems
// elements of T on every PE.
func AllocTyped[T serde.Number](p *Provider, elems int) *TypedRegion[T] {
	if elems < 0 {
		panic("fabric: negative region size")
	}
	var zero T
	r := &TypedRegion[T]{
		prov:     p,
		elems:    elems,
		elemSize: int(reflect.TypeOf(zero).Size()),
		local:    make([][]T, p.NumPEs()),
	}
	for pe := range r.local {
		r.local[pe] = make([]T, elems)
	}
	return r
}

// Len reports the per-PE element count.
func (r *TypedRegion[T]) Len() int { return r.elems }

// ElemSize reports the element size in bytes used for cost accounting.
func (r *TypedRegion[T]) ElemSize() int { return r.elemSize }

// Local returns pe's slice of the region. The caller owns synchronization.
func (r *TypedRegion[T]) Local(pe int) []T { return r.local[pe] }

// Put copies src into target's view starting at element dstOff.
func (r *TypedRegion[T]) Put(initiator, target, dstOff int, src []T) {
	dst := r.local[target]
	if dstOff < 0 || dstOff+len(src) > len(dst) {
		panic(fmt.Sprintf("fabric: typed put out of bounds: off=%d n=%d len=%d", dstOff, len(src), len(dst)))
	}
	copy(dst[dstOff:], src)
	r.prov.account(initiator, target, len(src)*r.elemSize, OpPut)
}

// Get copies elements from target's view starting at srcOff into dst.
func (r *TypedRegion[T]) Get(initiator, target, srcOff int, dst []T) {
	src := r.local[target]
	if srcOff < 0 || srcOff+len(dst) > len(src) {
		panic(fmt.Sprintf("fabric: typed get out of bounds: off=%d n=%d len=%d", srcOff, len(dst), len(src)))
	}
	copy(dst, src[srcOff:])
	r.prov.account(initiator, target, len(dst)*r.elemSize, OpGet)
}
