package scheduler

import "sync/atomic"

// deque is a fixed-capacity Chase-Lev work-stealing deque (Chase & Lev,
// "Dynamic Circular Work-Stealing Deque", SPAA 2005) over a power-of-two
// ring buffer, the per-worker queue shape used by Tokio, Rayon, and
// crossbeam-deque.
//
// Roles:
//   - The OWNER (one worker goroutine) pushes and pops at the bottom:
//     LIFO order, no CAS except for the final element.
//   - THIEVES (any goroutine) steal at the top: FIFO order, one CAS per
//     claimed task.
//
// Indices grow monotonically; a slot is index&dequeMask. The deque holds
// bottom-top tasks. push reports false when the ring is full — the caller
// spills to the injector instead of blocking or reallocating.
//
// Memory ordering: Go's sync/atomic operations are sequentially
// consistent, which is strictly stronger than the acquire/release +
// seq-cst-fence mix the original algorithm needs, so the classic
// correctness argument carries over directly:
//
//   - A thief reads slot contents *before* its CAS on top. The read may
//     race with the owner overwriting that slot after a wraparound, but
//     the owner can only reuse slot t&mask once top has advanced past t,
//     and then the thief's CAS(t, t+1) is guaranteed to fail and discard
//     the torn read. Slot fields are themselves atomic so the race is
//     benign to the race detector as well as to the algorithm.
//   - The owner's pop of the FINAL element (top == bottom-1) must
//     arbitrate against thieves via the same CAS on top; non-final pops
//     need no CAS because thieves can never reach them (top < bottom-1
//     at the owner's read, and top only moves through CAS winners).
//
// Why stealing is one CAS per task rather than one CAS claiming half the
// range: a multi-slot claim CAS(top: t → t+n) is unsound against the
// owner's CAS-free pop path. The thief computes n from a stale bottom;
// meanwhile the owner may pop elements inside [t, t+n) without any CAS
// (they were not final at its read), so both would run the same task.
// crossbeam-deque's LIFO flavor makes the same call. Batch stealing
// (stealInto) therefore amortizes victim selection, PRNG, and parking
// traffic — not the CAS itself.
type deque struct {
	top    atomic.Int64 // next index to steal (thieves CAS)
	_      [56]byte     // keep top and bottom on separate cache lines
	bottom atomic.Int64 // next index to push (owner only)
	_      [56]byte
	slots  [dequeCap]dqSlot
}

// dequeCap is the per-worker ring capacity; must be a power of two.
// 256 matches Tokio's local run queue.
const (
	dequeCap  = 256
	dequeMask = dequeCap - 1
)

// dqSlot holds one queued task. The two fields are separately atomic;
// a thief's torn read across them is discarded by its failed CAS (see
// the type comment).
type dqSlot struct {
	fn atomic.Value // always stores a Task (func values box without allocating)
	ts atomic.Int64 // telemetry spawn timestamp (0 = telemetry off at submit)
}

// size reports bottom-top; exact for the owner, a snapshot for others.
func (d *deque) size() int64 {
	return d.bottom.Load() - d.top.Load()
}

// free reports remaining capacity from the owner's perspective.
func (d *deque) free() int64 {
	return dequeCap - d.size()
}

// push appends e at the bottom (owner only). Reports false when full;
// the caller must then spill e elsewhere (the injector).
func (d *deque) push(e taskEntry) bool {
	b := d.bottom.Load()
	t := d.top.Load()
	if b-t >= dequeCap {
		return false
	}
	s := &d.slots[b&dequeMask]
	s.fn.Store(e.fn)
	s.ts.Store(e.spawnNs)
	d.bottom.Store(b + 1) // publish: thieves may now claim index b
	return true
}

// pop removes the newest task (owner only, LIFO).
func (d *deque) pop() (taskEntry, bool) {
	b := d.bottom.Load() - 1
	d.bottom.Store(b) // reserve index b against incoming thieves
	t := d.top.Load()
	if t > b {
		// empty; restore
		d.bottom.Store(b + 1)
		return taskEntry{}, false
	}
	s := &d.slots[b&dequeMask]
	e := taskEntry{fn: s.fn.Load().(Task), spawnNs: s.ts.Load()}
	if t == b {
		// final element: arbitrate with thieves
		if !d.top.CompareAndSwap(t, t+1) {
			// a thief won the last task
			d.bottom.Store(b + 1)
			return taskEntry{}, false
		}
		d.bottom.Store(b + 1)
	}
	return e, true
}

// steal removes the oldest task (any goroutine, FIFO): read the slot,
// then CAS top to claim it; a failed CAS means the owner or another
// thief got there first.
func (d *deque) steal() (taskEntry, bool) {
	for {
		t := d.top.Load()
		b := d.bottom.Load()
		if t >= b {
			return taskEntry{}, false
		}
		s := &d.slots[t&dequeMask]
		fnv := s.fn.Load()
		ts := s.ts.Load()
		if d.top.CompareAndSwap(t, t+1) {
			return taskEntry{fn: fnv.(Task), spawnNs: ts}, true
		}
		// lost the race; reload indices and retry
	}
}

// stealInto steals a batch from victim v: the returned task to run now,
// plus up to half of v's remaining tasks (capped at max) transferred
// into d. In the pool, d is the caller's own empty deque (workers only
// steal when out of local work) so the transfers always fit; if d fills
// anyway, the overflow task goes to spill, which must not drop it.
// Reports the number of tasks transferred into d (not counting the
// returned one).
func (d *deque) stealInto(v *deque, max int, spill func(taskEntry)) (taskEntry, int, bool) {
	first, ok := v.steal()
	if !ok {
		return taskEntry{}, 0, false
	}
	n := int(v.size() / 2)
	if n > max {
		n = max
	}
	moved := 0
	for i := 0; i < n; i++ {
		e, ok := v.steal()
		if !ok {
			break
		}
		if !d.push(e) {
			spill(e)
			break
		}
		moved++
	}
	return first, moved, true
}
