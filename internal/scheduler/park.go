package scheduler

import (
	"sync"
	"sync/atomic"
)

// eventCount is the workers' parking lot: a Dekker-style eventcount with
// a prepare / recheck / commit-wait (or cancel) protocol that makes
// sleeping race-free against producers without putting any lock on the
// submission fast path.
//
// Parker protocol (see Pool.findTask):
//
//	ticket := ec.prepare()      // reads the generation, announces intent
//	if workAvailable() {        // recheck AFTER announcing
//	    ec.cancel()             // found work: withdraw, don't sleep
//	} else {
//	    ec.commitWait(ticket)   // sleep until the generation moves
//	}
//
// Producer protocol (see Pool.wake):
//
//	publish work (queue pushes are atomic / release under shard locks)
//	if ec.waiters() > 0 { ec.notifyOne() }
//
// Why no wakeup is ever lost: prepare's waiters increment and the
// parker's work recheck, versus the producer's work publish and its
// waiters read, form the classic store/load handshake — Go atomics are
// sequentially consistent, so at least one side must see the other. If
// the parker misses the new work, the producer must see waiters > 0 and
// bump the generation; commitWait only sleeps while the generation still
// equals the ticket (checked under the mutex that notify bumps it
// under), so a bump between recheck and sleep turns the sleep into a
// no-op instead of a hang.
//
// The fast path for producers with nobody parked is a single atomic
// load; the mutex is touched only when a sleeper actually exists.
type eventCount struct {
	nwait atomic.Int32  // announced (parked or about-to-park) waiters
	gen   atomic.Uint64 // bumped under mu by every notify
	mu    sync.Mutex
	cond  *sync.Cond
}

func newEventCount() *eventCount {
	ec := &eventCount{}
	ec.cond = sync.NewCond(&ec.mu)
	return ec
}

// waiters reports announced sleepers; producers use it as the wake gate.
func (ec *eventCount) waiters() int32 { return ec.nwait.Load() }

// prepare announces intent to sleep and returns the generation ticket.
// The caller MUST recheck its wait condition afterwards and then call
// exactly one of cancel or commitWait.
func (ec *eventCount) prepare() uint64 {
	t := ec.gen.Load()
	ec.nwait.Add(1)
	return t
}

// cancel withdraws an announced sleep (the recheck found work).
func (ec *eventCount) cancel() { ec.nwait.Add(-1) }

// commitWait sleeps until the generation advances past the ticket.
func (ec *eventCount) commitWait(ticket uint64) {
	ec.mu.Lock()
	for ec.gen.Load() == ticket {
		ec.cond.Wait()
	}
	ec.mu.Unlock()
	ec.nwait.Add(-1)
}

// notifyOne wakes at least one committed waiter, if any exist. All
// sleepers hold tickets older than the new generation, so whichever the
// runtime picks re-evaluates its condition instead of sleeping on.
func (ec *eventCount) notifyOne() {
	if ec.nwait.Load() == 0 {
		return
	}
	ec.mu.Lock()
	ec.gen.Add(1)
	ec.mu.Unlock()
	ec.cond.Signal()
}

// notifyAll wakes every waiter (shutdown).
func (ec *eventCount) notifyAll() {
	ec.mu.Lock()
	ec.gen.Add(1)
	ec.mu.Unlock()
	ec.cond.Broadcast()
}
