package scheduler

import (
	"sync"
	"sync/atomic"
	"testing"
)

func mkEntry(id int64) taskEntry {
	return taskEntry{fn: func() {}, spawnNs: id}
}

// Wraparound: push/pop cycles well past dequeCap so every index maps onto
// a reused ring slot, in both LIFO (owner) and FIFO (thief) drain order.
func TestDequeWraparound(t *testing.T) {
	var d deque
	const rounds = 5
	for r := int64(0); r < rounds; r++ {
		// fill completely, drain LIFO from the owner side
		for i := int64(0); i < dequeCap; i++ {
			if !d.push(mkEntry(r*1000 + i)) {
				t.Fatalf("round %d: push %d refused below capacity", r, i)
			}
		}
		if d.push(mkEntry(-1)) {
			t.Fatalf("round %d: push succeeded on a full deque", r)
		}
		for i := int64(dequeCap - 1); i >= 0; i-- {
			e, ok := d.pop()
			if !ok || e.spawnNs != int64(r*1000)+i {
				t.Fatalf("round %d: pop = (%d,%v), want %d", r, e.spawnNs, ok, int64(r*1000)+i)
			}
		}
		if _, ok := d.pop(); ok {
			t.Fatalf("round %d: pop on empty deque succeeded", r)
		}
		// refill partially, drain FIFO from the thief side
		for i := int64(0); i < dequeCap/2; i++ {
			d.push(mkEntry(i))
		}
		for i := int64(0); i < dequeCap/2; i++ {
			e, ok := d.steal()
			if !ok || e.spawnNs != i {
				t.Fatalf("round %d: steal = (%d,%v), want %d", r, e.spawnNs, ok, i)
			}
		}
		if _, ok := d.steal(); ok {
			t.Fatalf("round %d: steal on empty deque succeeded", r)
		}
		if d.size() != 0 {
			t.Fatalf("round %d: size = %d after drain", r, d.size())
		}
	}
	// The logical index space must have advanced past the ring length
	// several times over, proving every physical slot was reused: top
	// gains 1 per LIFO drain (the final-element CAS) plus dequeCap/2 per
	// steal phase, so 5 rounds net (1+dequeCap/2)*5 = 645 > 2*dequeCap.
	if d.top.Load() <= 2*dequeCap {
		t.Fatalf("top = %d, expected net advance past %d (ring not wrapped)", d.top.Load(), 2*dequeCap)
	}
}

// Overflow spill: stealInto with a nearly-full destination routes the
// task that does not fit to the spill callback instead of dropping it.
func TestDequeStealIntoSpill(t *testing.T) {
	var victim, thief deque
	for i := int64(0); i < 100; i++ {
		victim.push(mkEntry(i))
	}
	// leave exactly 2 free slots in the thief's deque
	for i := int64(0); i < dequeCap-2; i++ {
		thief.push(mkEntry(1000 + i))
	}
	var spilled []int64
	first, moved, ok := thief.stealInto(&victim, StealBatch(), func(e taskEntry) {
		spilled = append(spilled, e.spawnNs)
	})
	if !ok {
		t.Fatal("stealInto failed on a populated victim")
	}
	if first.spawnNs != 0 {
		t.Fatalf("first = %d, want the oldest task 0", first.spawnNs)
	}
	if moved != 2 {
		t.Fatalf("moved = %d, want 2 (free slots in destination)", moved)
	}
	if len(spilled) != 1 || spilled[0] != 3 {
		t.Fatalf("spilled = %v, want the one overflow task [3]", spilled)
	}
	// every stolen task is accounted for exactly once
	total := victim.size() + thief.size() + int64(len(spilled)) + 1 // +1 = first
	if total != 100+dequeCap-2 {
		t.Fatalf("task conservation broken: total = %d", total)
	}
}

// Batch transfer: stealing from a loaded victim into an empty deque takes
// the oldest task plus up to half the remainder (capped), FIFO order
// preserved through the destination's ring.
func TestDequeStealIntoBatch(t *testing.T) {
	var victim, thief deque
	for i := int64(0); i < 40; i++ {
		victim.push(mkEntry(i))
	}
	first, moved, ok := thief.stealInto(&victim, StealBatch(), func(taskEntry) {
		t.Fatal("unexpected spill into an empty destination")
	})
	if !ok || first.spawnNs != 0 {
		t.Fatalf("first = (%d,%v), want (0,true)", first.spawnNs, ok)
	}
	// after taking the first, 39 remain; half = 19
	if moved != 19 {
		t.Fatalf("moved = %d, want 19 (half of remainder)", moved)
	}
	// the transfers land in submission order; owner LIFO pop sees newest
	for i := int64(first.spawnNs + int64(moved)); i >= 1; i-- {
		e, ok := thief.pop()
		if !ok || e.spawnNs != i {
			t.Fatalf("pop = (%d,%v), want %d", e.spawnNs, ok, i)
		}
	}
	if victim.size() != 20 {
		t.Fatalf("victim retains %d, want 20", victim.size())
	}
}

// Concurrent owner-vs-thieves torture: every task runs exactly once even
// with pops and steals racing over shared ring slots.
func TestDequeConcurrentStealNoDuplicates(t *testing.T) {
	var d deque
	const total = 20000
	ran := make([]atomic.Int32, total)
	var done sync.WaitGroup
	var thieves sync.WaitGroup
	var stop atomic.Bool
	for th := 0; th < 3; th++ {
		thieves.Add(1)
		go func() {
			defer thieves.Done()
			for !stop.Load() {
				if e, ok := d.steal(); ok {
					e.fn()
				}
			}
		}()
	}
	done.Add(total)
	for i := 0; i < total; i++ {
		i := i
		for !d.push(taskEntry{fn: func() { ran[i].Add(1); done.Done() }}) {
			// ring full: act as the owner and run one locally
			if e, ok := d.pop(); ok {
				e.fn()
			}
		}
		if i%3 == 0 {
			if e, ok := d.pop(); ok {
				e.fn()
			}
		}
	}
	for {
		e, ok := d.pop()
		if !ok {
			break
		}
		e.fn()
	}
	done.Wait()
	stop.Store(true)
	thieves.Wait()
	for i := range ran {
		if n := ran[i].Load(); n != 1 {
			t.Fatalf("task %d ran %d times", i, n)
		}
	}
}

// Per-shard FIFO: the injector's ordering contract is that tasks landing
// on the same shard pop in submission order, even across chunk boundaries
// and chunk recycling.
func TestInjectorPerShardFIFO(t *testing.T) {
	in := newInjector(4)
	const perShard = injChunkCap*3 + 7 // forces chunk linking and recycling
	// push round-robins; shard of push k is (k+1) % shards. Record the
	// expected per-shard sequences independently.
	shards := len(in.shards)
	want := make([][]int64, shards)
	for k := 0; k < perShard*shards; k++ {
		sh := (k + 1) % shards // cursor pre-increments
		want[sh] = append(want[sh], int64(k))
		in.push(mkEntry(int64(k)))
	}
	// drain each shard directly and compare order
	for sh := 0; sh < shards; sh++ {
		var got []int64
		buf := make([]taskEntry, 16)
		for {
			n := in.shards[sh].popBatch(buf)
			if n == 0 {
				break
			}
			for _, e := range buf[:n] {
				got = append(got, e.spawnNs)
			}
		}
		if len(got) != len(want[sh]) {
			t.Fatalf("shard %d: drained %d, want %d", sh, len(got), len(want[sh]))
		}
		for i := range got {
			if got[i] != want[sh][i] {
				t.Fatalf("shard %d: got[%d] = %d, want %d (FIFO violated)", sh, i, got[i], want[sh][i])
			}
		}
	}
	if in.nonEmpty() {
		t.Fatal("injector reports nonEmpty after full drain")
	}
}

// pushBatch keeps a whole batch on one shard in order — the AM-delivery
// contract the progress engine relies on.
func TestInjectorPushBatchSingleShardOrder(t *testing.T) {
	in := newInjector(8)
	es := make([]taskEntry, injChunkCap+10) // spans a chunk boundary
	for i := range es {
		es[i] = mkEntry(int64(i))
	}
	in.pushBatch(es)
	nonEmpty := 0
	for sh := range in.shards {
		if in.shards[sh].count.Load() > 0 {
			nonEmpty++
			buf := make([]taskEntry, len(es))
			n := in.shards[sh].popBatch(buf)
			if n != len(es) {
				t.Fatalf("shard %d holds %d of %d batch entries", sh, n, len(es))
			}
			for i := 0; i < n; i++ {
				if buf[i].spawnNs != int64(i) {
					t.Fatalf("batch order broken at %d: %d", i, buf[i].spawnNs)
				}
			}
		}
	}
	if nonEmpty != 1 {
		t.Fatalf("batch spread across %d shards, want 1", nonEmpty)
	}
}
