package scheduler

import "sync/atomic"

// Countdown resolves a future after a fixed number of completions — the
// shared "N sub-operations, one future" helper behind batched array ops,
// range transfers, and the aggregation layer. The future state is
// embedded so a countdown costs one allocation regardless of N.
//
// The expected count may grow with Add while the count cannot yet reach
// zero; the open-ended idiom is to create the countdown with n=1 (a
// submission reservation), Add(1) per sub-operation issued, and Done(nil)
// once at the end to release the reservation.
type Countdown[T any] struct {
	st        futState[T]
	fut       Future[T] // embedded so countdown + future cost one allocation
	remaining atomic.Int64
	firstErr  atomic.Pointer[error]
	value     func() T
}

// NewCountdown returns a countdown expecting n Done calls and the future
// it resolves. value is called once, at resolution, to produce the
// future's value; nil means the zero value. The first non-nil error
// reported to Done wins and fails the future instead. n <= 0 resolves
// immediately.
func NewCountdown[T any](pool *Pool, n int, value func() T) (*Countdown[T], *Future[T]) {
	c := &Countdown[T]{value: value}
	c.st.pool = pool
	c.fut = Future[T]{&c.st}
	c.remaining.Store(int64(n))
	if n <= 0 {
		c.resolve()
	}
	return c, &c.fut
}

// Future returns the future this countdown resolves. Each call allocates
// a fresh handle onto the shared state.
func (c *Countdown[T]) Future() *Future[T] { return &Future[T]{&c.st} }

// Add raises the expected completion count by n. Only valid while the
// count cannot yet reach zero (the caller holds an unreleased
// reservation).
func (c *Countdown[T]) Add(n int) { c.remaining.Add(int64(n)) }

// Done records one completion; err, if non-nil, fails the future (first
// error wins). The final Done resolves the future.
func (c *Countdown[T]) Done(err error) {
	if err != nil {
		// Copy into a branch-scoped variable before taking its address:
		// &err on the parameter itself would move it to the heap at
		// function entry, charging an allocation to every error-free call.
		e := err
		c.firstErr.CompareAndSwap(nil, &e)
	}
	if c.remaining.Add(-1) == 0 {
		c.resolve()
	}
}

func (c *Countdown[T]) resolve() {
	p := Promise[T]{&c.st}
	if ep := c.firstErr.Load(); ep != nil {
		p.CompleteErr(*ep)
		return
	}
	var v T
	if c.value != nil {
		v = c.value()
	}
	p.Complete(v)
}
