// Package scheduler implements the Thread Pool layer of the stack: each PE
// owns a pool of worker goroutines executing asynchronous tasks — AM
// handlers, communication tasks produced by the Lamellae, and user-
// submitted futures — mirroring the work-stealing Rust executor the paper
// describes. Awaiting a future from inside the pool *helps* execute other
// tasks instead of blocking a worker, so `block_on` only blocks the caller
// while the pool keeps making progress, exactly the semantics Listing 1
// relies on.
package scheduler

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Task is a unit of asynchronous work.
type Task func()

// PanicHandler receives recovered panics from tasks.
type PanicHandler func(recovered any)

// taskEntry pairs a queued task with its telemetry spawn timestamp
// (collector nanoseconds; 0 when telemetry was disabled at submit time).
// Keeping the timestamp in the queue slot itself costs one word per entry
// and no allocation on either path.
type taskEntry struct {
	fn      Task
	spawnNs int64
}

// Pool is a work-stealing executor. Workers prefer their own deque (LIFO
// for locality), then the global injector queue (FIFO), then steal the
// oldest task from a random victim. A single pool-wide lock keeps the
// implementation obviously correct; per-PE pools are small (the paper's
// best configuration is 4 threads per PE) so contention stays modest.
type Pool struct {
	mu       sync.Mutex
	cond     *sync.Cond
	global   []taskEntry   // FIFO injector
	local    [][]taskEntry // per-worker deques; owner pops newest, thieves steal oldest
	next     int           // round-robin submission cursor
	sleeping int
	closed   bool

	notify chan struct{} // nudges helpers parked in Await

	workers int
	wg      sync.WaitGroup

	outstanding atomic.Int64 // submitted but not finished
	executed    atomic.Uint64
	stolen      atomic.Uint64
	busyNs      atomic.Int64 // accumulated task execution time

	tracePE atomic.Int32 // PE label for telemetry events

	onPanic atomic.Pointer[PanicHandler]
}

// NewPool starts a pool with the given number of workers (minimum 1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{
		workers: workers,
		local:   make([][]taskEntry, workers),
		notify:  make(chan struct{}, 1),
	}
	p.cond = sync.NewCond(&p.mu)
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go p.worker(w)
	}
	return p
}

// Workers reports the worker count.
func (p *Pool) Workers() int { return p.workers }

// SetTelemetryPE labels this pool's telemetry events with the owning
// PE's rank (pools default to PE 0).
func (p *Pool) SetTelemetryPE(pe int) { p.tracePE.Store(int32(pe)) }

// SetPanicHandler installs a handler for panics escaping tasks. The
// default prints and continues, mirroring "shut down a failing goroutine
// without killing the others".
func (p *Pool) SetPanicHandler(h PanicHandler) {
	if h == nil {
		p.onPanic.Store(nil)
		return
	}
	p.onPanic.Store(&h)
}

// newEntry wraps a task for queuing, stamping it when telemetry is on.
func (p *Pool) newEntry(t Task) taskEntry {
	e := taskEntry{fn: t}
	if telemetry.Enabled() {
		if c := telemetry.C(); c != nil {
			e.spawnNs = c.Now()
			c.Emit(telemetry.Event{
				TS: e.spawnNs, Kind: telemetry.EvTaskSpawn,
				PE: p.tracePE.Load(), Worker: telemetry.TidRuntime,
			})
		}
	}
	return e
}

// Submit enqueues a task for asynchronous execution.
func (p *Pool) Submit(t Task) {
	if t == nil {
		panic("scheduler: nil task")
	}
	e := p.newEntry(t)
	p.outstanding.Add(1)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.outstanding.Add(-1)
		panic("scheduler: submit on closed pool")
	}
	// Round-robin across worker deques keeps queues short and stealing rare
	// in the balanced case while still allowing stealing under skew.
	w := p.next
	p.next = (p.next + 1) % p.workers
	p.local[w] = append(p.local[w], e)
	if p.sleeping > 0 {
		p.cond.Signal()
	}
	p.mu.Unlock()
	select {
	case p.notify <- struct{}{}:
	default:
	}
}

// SubmitGlobal enqueues to the FIFO injector (fairness over locality);
// used by the Lamellae progress engine for inbound communication tasks.
func (p *Pool) SubmitGlobal(t Task) {
	if t == nil {
		panic("scheduler: nil task")
	}
	e := p.newEntry(t)
	p.outstanding.Add(1)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.outstanding.Add(-1)
		panic("scheduler: submit on closed pool")
	}
	p.global = append(p.global, e)
	if p.sleeping > 0 {
		p.cond.Signal()
	}
	p.mu.Unlock()
	select {
	case p.notify <- struct{}{}:
	default:
	}
}

// take returns the next task for worker w (own deque LIFO, then global
// FIFO, then steal oldest from a random victim). Caller holds p.mu.
func (p *Pool) take(w int) (taskEntry, bool) {
	if q := p.local[w]; len(q) > 0 {
		t := q[len(q)-1]
		p.local[w] = q[:len(q)-1]
		return t, true
	}
	if len(p.global) > 0 {
		t := p.global[0]
		p.global = p.global[1:]
		return t, true
	}
	// steal: scan victims starting at a random offset
	off := rand.Intn(p.workers)
	for i := 0; i < p.workers; i++ {
		v := (off + i) % p.workers
		if v == w {
			continue
		}
		if q := p.local[v]; len(q) > 0 {
			t := q[0]
			p.local[v] = q[1:]
			p.stolen.Add(1)
			if telemetry.Enabled() {
				if c := telemetry.C(); c != nil {
					c.Emit(telemetry.Event{
						TS: c.Now(), Kind: telemetry.EvTaskSteal,
						PE: p.tracePE.Load(), Worker: int32(w), Arg1: int64(v),
					})
				}
			}
			return t, true
		}
	}
	return taskEntry{}, false
}

func (p *Pool) worker(w int) {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		var t taskEntry
		var ok bool
		for {
			if t, ok = p.take(w); ok || p.closed {
				break
			}
			p.sleeping++
			p.cond.Wait()
			p.sleeping--
		}
		p.mu.Unlock()
		if !ok {
			return // closed and drained
		}
		p.run(t, w)
	}
}

// run executes a task with timing and panic containment. worker is the
// executing worker index, or -1 for helpers (Await/TryRunOne callers).
func (p *Pool) run(t taskEntry, worker int) {
	var c *telemetry.Collector
	var t0 int64
	if telemetry.Enabled() {
		if c = telemetry.C(); c != nil {
			t0 = c.Now()
			if t.spawnNs != 0 {
				c.Hist(int(p.tracePE.Load()), telemetry.HistQueueWait).Record(t0 - t.spawnNs)
			}
		}
	}
	start := time.Now()
	defer func() {
		p.busyNs.Add(time.Since(start).Nanoseconds())
		p.executed.Add(1)
		p.outstanding.Add(-1)
		if c != nil {
			tid := int32(worker)
			if worker < 0 {
				tid = telemetry.TidApp
			}
			c.Emit(telemetry.Event{
				TS: t0, Dur: c.Now() - t0, Kind: telemetry.EvTaskRun,
				PE: p.tracePE.Load(), Worker: tid,
			})
		}
		if r := recover(); r != nil {
			if h := p.onPanic.Load(); h != nil {
				(*h)(r)
			} else {
				fmt.Printf("scheduler: task panicked: %v\n", r)
			}
		}
	}()
	t.fn()
}

// tryRunOne executes one pending task if any exists; it is the helping
// primitive used by Await and by the runtime's progress loops. Reports
// whether a task ran.
func (p *Pool) TryRunOne() bool {
	p.mu.Lock()
	var t taskEntry
	var ok bool
	// helpers behave like an extra worker with no own deque: global first
	if len(p.global) > 0 {
		t = p.global[0]
		p.global = p.global[1:]
		ok = true
	} else {
		for v := 0; v < p.workers; v++ {
			if q := p.local[v]; len(q) > 0 {
				t = q[0]
				p.local[v] = q[1:]
				ok = true
				break
			}
		}
	}
	p.mu.Unlock()
	if !ok {
		return false
	}
	p.run(t, -1)
	return true
}

// Pending reports submitted-but-unfinished tasks.
func (p *Pool) Pending() int64 { return p.outstanding.Load() }

// Stats reports lifetime counters.
func (p *Pool) Stats() (executed, stolen uint64, busy time.Duration) {
	return p.executed.Load(), p.stolen.Load(), time.Duration(p.busyNs.Load())
}

// BusyNs returns accumulated task execution nanoseconds (the per-PE CPU
// time used to derive simulated elapsed time in benchmarks).
func (p *Pool) BusyNs() int64 { return p.busyNs.Load() }

// Quiesce blocks until no tasks are pending, helping execute them.
// New submissions during Quiesce extend the wait.
func (p *Pool) Quiesce() {
	for p.outstanding.Load() > 0 {
		if !p.TryRunOne() {
			p.waitNudge()
		}
	}
}

// waitNudge parks briefly until new work may be available.
func (p *Pool) waitNudge() {
	select {
	case <-p.notify:
	case <-time.After(100 * time.Microsecond):
	}
}

// Close drains remaining tasks and stops all workers.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
	// run anything left behind (workers exit only when queues are empty,
	// but a race between close and submit could strand tasks)
	for p.TryRunOne() {
	}
}
