// Package scheduler implements the Thread Pool layer of the stack: each PE
// owns a pool of worker goroutines executing asynchronous tasks — AM
// handlers, communication tasks produced by the Lamellae, and user-
// submitted futures — mirroring the work-stealing Rust executor the paper
// describes. Awaiting a future from inside the pool *helps* execute other
// tasks instead of blocking a worker, so `block_on` only blocks the caller
// while the pool keeps making progress, exactly the semantics Listing 1
// relies on.
package scheduler

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/diag"
	"repro/internal/envknob"
	"repro/internal/telemetry"
)

// Task is a unit of asynchronous work.
type Task func()

// PanicHandler receives recovered panics from tasks.
type PanicHandler func(recovered any)

// taskEntry pairs a queued task with its telemetry spawn timestamp
// (collector nanoseconds; 0 when telemetry was disabled at submit time).
// Keeping the timestamp in the queue slot itself costs one word per entry
// and no allocation on either path.
type taskEntry struct {
	fn      Task
	spawnNs int64
}

// Pool is a lock-free work-stealing executor (ISSUE 3), replacing the
// seed's single pool-wide mutex + condvar:
//
//   - Each worker owns a fixed-capacity Chase-Lev deque (deque.go):
//     LIFO owner pops for locality, lock-free FIFO steals by thieves.
//   - Submissions land in a mutex-sharded, chunk-linked FIFO injector
//     (injector.go); workers refill their deque with a batch of injector
//     tasks under a single shard lock, and overflow spills back.
//   - Victim selection uses a per-worker xorshift64 PRNG — no global
//     rand lock — and steals transfer up to half the victim's tasks per
//     encounter to amortize search and parking traffic.
//   - Idle workers sleep on an eventcount parking lot (park.go) with a
//     prepare/recheck/commit-wait protocol: no lost wakeups, and Submit
//     stays lock-free when nobody is parked.
//
// Scheduling order per worker: own deque (LIFO), then injector (FIFO per
// shard), then steal the oldest tasks from a random victim — with a
// periodic injector poll so local churn cannot starve global
// submissions.
type Pool struct {
	workers int
	deques  []*deque
	inj     *injector
	scratch [][]taskEntry // per-worker refill buffers

	parker    *eventCount
	searching atomic.Int32 // workers in the refill/steal scan
	closed    atomic.Bool

	notify  chan struct{} // nudges helpers parked in Await/Quiesce
	nudgers atomic.Int32  // helpers currently blocked on notify

	wg         sync.WaitGroup
	helpCursor atomic.Uint64 // rotates TryRunOne's injector start shard

	outstanding atomic.Int64 // submitted but not finished
	executed    atomic.Uint64
	stolen      atomic.Uint64
	parks       atomic.Uint64
	busyNs      atomic.Int64 // accumulated task execution time

	tracePE atomic.Int32 // PE label for telemetry events

	// qwaitHist, when set, receives queue-wait samples even without a
	// telemetry session (the always-on flight recorder). qwaitTick
	// drives the 1-in-64 sampling of spawn timestamps on that path.
	qwaitHist atomic.Pointer[telemetry.Histogram]
	qwaitTick atomic.Uint64

	onPanic atomic.Pointer[PanicHandler]

	spill func(taskEntry) // overflow route back to the injector
}

// refillBatch bounds how many injector tasks one worker moves into its
// deque per shard-lock acquisition.
const (
	refillBatch = 32
	// injectorPollMask: every 64th dispatch polls the injector before the
	// local deque so the FIFO queue cannot be starved by deque churn.
	injectorPollMask = 63
)

// stealBatchMax bounds tasks transferred per steal encounter ("steal
// half, capped"). A tunable (ISSUE 9): the Task Bench matrix measures it
// across dependency patterns and granularities instead of hard-coding a
// guess — see bench_results.txt §TASKBENCH. Reads are one atomic load on
// the (rare relative to dispatch) steal path. Override per process with
// LAMELLAR_STEAL_BATCH or per run with SetStealBatch.
var stealBatchMax atomic.Int32

const defaultStealBatch = 32

func init() {
	stealBatchMax.Store(int32(envKnob("LAMELLAR_STEAL_BATCH", defaultStealBatch, 1, 1024)))
}

// SetStealBatch sets the per-encounter steal transfer cap (clamped to
// [1, 1024]). Safe to call concurrently; affects subsequent steals.
func SetStealBatch(n int) {
	stealBatchMax.Store(int32(clampKnob(n, 1, 1024)))
}

// StealBatch reports the current steal transfer cap.
func StealBatch() int { return int(stealBatchMax.Load()) }

// envKnob reads an integer knob from the environment, clamped to
// [lo, hi]; absent values select def and malformed ones warn via diag
// before doing the same (envknob handles both).
func envKnob(name string, def, lo, hi int) int {
	return envknob.Int(name, def, lo, hi)
}

func clampKnob(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// NewPool starts a pool with the given number of workers (minimum 1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{
		workers: workers,
		deques:  make([]*deque, workers),
		scratch: make([][]taskEntry, workers),
		inj:     newInjector(workers),
		parker:  newEventCount(),
		notify:  make(chan struct{}, 1),
	}
	p.spill = func(e taskEntry) { p.inj.push(e) }
	// allocate every deque before any worker starts: workers steal from
	// all peers, so p.deques must be fully populated first
	for w := 0; w < workers; w++ {
		p.deques[w] = new(deque)
		p.scratch[w] = make([]taskEntry, refillBatch)
	}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go p.worker(w)
	}
	return p
}

// Workers reports the worker count.
func (p *Pool) Workers() int { return p.workers }

// SetTelemetryPE labels this pool's telemetry events with the owning
// PE's rank (pools default to PE 0).
func (p *Pool) SetTelemetryPE(pe int) { p.tracePE.Store(int32(pe)) }

// SetQueueWaitRecorder routes queue-wait latencies into h even when no
// telemetry session is live. To keep the disabled hot path at zero
// extra clock reads, only 1 in 64 submissions is stamped on that path;
// a live session stamps (and records) every task as before.
func (p *Pool) SetQueueWaitRecorder(h *telemetry.Histogram) {
	p.qwaitHist.Store(h)
}

// Starved reports whether workers are parked while the injector holds
// runnable tasks — the scheduler-starvation signal the stall watchdog
// samples. A transiently true value is normal (parking races with
// submission); the watchdog requires it across consecutive ticks.
func (p *Pool) Starved() bool {
	return p.parker.waiters() > 0 && p.inj.nonEmpty()
}

// SetPanicHandler installs a handler for panics escaping tasks. The
// default prints and continues, mirroring "shut down a failing goroutine
// without killing the others".
func (p *Pool) SetPanicHandler(h PanicHandler) {
	if h == nil {
		p.onPanic.Store(nil)
		return
	}
	p.onPanic.Store(&h)
}

// newEntry wraps a task for queuing, stamping it when telemetry is on.
func (p *Pool) newEntry(t Task) taskEntry {
	e := taskEntry{fn: t}
	if telemetry.Enabled() {
		if c := telemetry.C(); c != nil {
			e.spawnNs = c.Now()
			c.Emit(telemetry.Event{
				TS: e.spawnNs, Kind: telemetry.EvTaskSpawn,
				PE: p.tracePE.Load(), Worker: telemetry.TidRuntime,
			})
			return e
		}
	}
	// No session: stamp 1 in 64 tasks so the always-on recorder keeps a
	// live queue-wait digest at ~1/64th of the clock-read cost.
	if p.qwaitHist.Load() != nil && p.qwaitTick.Add(1)&63 == 0 {
		e.spawnNs = telemetry.MonoNow()
	}
	return e
}

// Submit enqueues a task for asynchronous execution.
func (p *Pool) Submit(t Task) {
	if t == nil {
		panic("scheduler: nil task")
	}
	if p.closed.Load() {
		panic("scheduler: submit on closed pool")
	}
	p.outstanding.Add(1)
	p.inj.push(p.newEntry(t))
	p.wake()
}

// SubmitGlobal enqueues to the FIFO injector (fairness over locality);
// used by the Lamellae progress engine for inbound communication tasks.
// Order is guaranteed FIFO per injector shard (a single producer's
// submissions that route to the same shard run in submission order).
func (p *Pool) SubmitGlobal(t Task) {
	p.Submit(t)
}

// SubmitBatch enqueues a group of tasks on ONE injector shard under a
// single lock acquisition, preserving their relative FIFO order; the
// progress engine uses it to turn a delivered AM batch into tasks with
// one lock round trip instead of one per AM.
func (p *Pool) SubmitBatch(ts []Task) {
	if len(ts) == 0 {
		return
	}
	if p.closed.Load() {
		panic("scheduler: submit on closed pool")
	}
	// The entry slice is transient: pushBatch copies entries into the
	// shard's chunks before returning, so a pooled scratch slice makes
	// the delivery path allocation-free at steady state.
	esp := entrySlicePool.Get().(*[]taskEntry)
	es := (*esp)[:0]
	for _, t := range ts {
		if t == nil {
			panic("scheduler: nil task")
		}
		es = append(es, p.newEntry(t))
	}
	p.outstanding.Add(int64(len(ts)))
	p.inj.pushBatch(es)
	for i := range es {
		es[i] = taskEntry{} // drop task references before pooling
	}
	*esp = es[:0]
	entrySlicePool.Put(esp)
	p.wake()
}

// entrySlicePool recycles SubmitBatch's scratch entry slices.
var entrySlicePool = sync.Pool{New: func() any {
	s := make([]taskEntry, 0, 64)
	return &s
}}

// wake makes new work visible to sleepers: a non-blocking nudge for
// helpers parked in Await/Quiesce, and — only when no worker is already
// scanning for work and someone is parked — one eventcount notify. A
// scanning worker is guaranteed to either find the task or re-detect it
// in the parking recheck, so skipping the notify cannot strand work.
func (p *Pool) wake() {
	// Helpers re-poll on a 100µs timeout, so a nudge skipped because the
	// helper had not yet registered costs at most that delay — the channel
	// send (≈25ns) is only worth paying when someone is provably blocked.
	if p.nudgers.Load() != 0 {
		select {
		case p.notify <- struct{}{}:
		default:
		}
	}
	if p.searching.Load() == 0 && p.parker.waiters() > 0 {
		p.parker.notifyOne()
	}
}

func (p *Pool) worker(w int) {
	defer p.wg.Done()
	d := p.deques[w]
	// splitmix-style seed keeps per-worker streams distinct and nonzero
	rng := (uint64(w) + 1) * 0x9E3779B97F4A7C15
	var tick uint
	for {
		e, ok := p.findTask(w, d, &rng, &tick)
		if !ok {
			return // closed and drained
		}
		// Dispatch run: execute the found task plus everything already in
		// the local deque under ONE busy-clock pair. Per-task clock reads
		// were ~20% of dispatch cost; the gap between back-to-back pops is
		// a few ns, so attributing it to busy time is a fair trade. The
		// loop is bounded — only this worker refills its deque, so the
		// deque can only shrink while we drain it.
		start := time.Now()
		p.runTask(e, w)
		for {
			e, ok = d.pop()
			if !ok {
				break
			}
			p.runTask(e, w)
		}
		p.busyNs.Add(time.Since(start).Nanoseconds())
	}
}

// findTask locates the next task for worker w, parking when the pool is
// idle. Reports false only when the pool is closed and drained.
func (p *Pool) findTask(w int, d *deque, rng *uint64, tick *uint) (taskEntry, bool) {
	for {
		*tick++
		if *tick&injectorPollMask == 0 {
			if e, ok := p.refill(w, d); ok {
				return e, true
			}
		}
		if e, ok := d.pop(); ok {
			return e, true
		}
		// Local deque empty: scan the injector and other deques. The
		// searching counter gates producer-side notifies (see wake).
		p.searching.Add(1)
		if e, ok := p.searchOnce(w, d, rng); ok {
			p.exitSearching()
			return e, true
		}
		// Nothing anywhere: announce intent to sleep, then recheck —
		// the eventcount protocol that makes the sleep race-free.
		ticket := p.parker.prepare()
		p.searching.Add(-1)
		if p.closed.Load() {
			p.parker.cancel()
			// final drain sweep so Close leaves nothing behind
			if e, ok := p.searchOnce(w, d, rng); ok {
				return e, true
			}
			return taskEntry{}, false
		}
		if p.hasWork() {
			p.parker.cancel()
			continue
		}
		p.parks.Add(1)
		var t0 int64
		var c *telemetry.Collector
		if telemetry.Enabled() {
			if c = telemetry.C(); c != nil {
				t0 = c.Now()
			}
		}
		p.parker.commitWait(ticket)
		if c != nil {
			c.Emit(telemetry.Event{
				TS: t0, Dur: c.Now() - t0, Kind: telemetry.EvTaskPark,
				PE: p.tracePE.Load(), Worker: int32(w),
			})
		}
	}
}

// searchOnce makes one full pass over the global sources: an injector
// refill, then a batched steal from a random victim.
func (p *Pool) searchOnce(w int, d *deque, rng *uint64) (taskEntry, bool) {
	if e, ok := p.refill(w, d); ok {
		return e, true
	}
	return p.stealFrom(w, d, rng)
}

// exitSearching leaves the scanning state; the last scanner to leave
// re-arms a sleeper if submissions raced in during its scan (those
// producers saw searching > 0 and skipped their notify).
func (p *Pool) exitSearching() {
	if p.searching.Add(-1) == 0 && p.inj.nonEmpty() {
		p.parker.notifyOne()
	}
}

// refill moves a batch of injector tasks into w's deque under one shard
// lock, returning the first to run now. The rest are pushed in reverse
// so the owner's LIFO pops replay them in FIFO order.
func (p *Pool) refill(w int, d *deque) (taskEntry, bool) {
	buf := p.scratch[w]
	max := int(d.free()) + 1
	if max > len(buf) {
		max = len(buf)
	}
	if max < 1 {
		max = 1
	}
	n := p.inj.popBatch(buf[:max], w)
	if n == 0 {
		return taskEntry{}, false
	}
	for i := n - 1; i >= 1; i-- {
		if !d.push(buf[i]) {
			p.spill(buf[i]) // cannot happen given max; defensive
		}
	}
	e := buf[0]
	for i := 0; i < n; i++ {
		buf[i] = taskEntry{} // drop task references from the scratch area
	}
	return e, true
}

// stealFrom scans victims from a PRNG offset, transferring a batch from
// the first non-empty deque (half the victim's tasks, capped). The
// telemetry emission happens here, after the lock-free transfer — never
// inside a queue critical section.
func (p *Pool) stealFrom(w int, d *deque, rng *uint64) (taskEntry, bool) {
	if p.workers == 1 {
		return taskEntry{}, false
	}
	off := int(xorshiftNext(rng) % uint64(p.workers))
	for i := 0; i < p.workers; i++ {
		v := (off + i) % p.workers
		if v == w {
			continue
		}
		e, moved, ok := d.stealInto(p.deques[v], int(stealBatchMax.Load()), p.spill)
		if !ok {
			continue
		}
		p.stolen.Add(1 + uint64(moved))
		if telemetry.Enabled() {
			if c := telemetry.C(); c != nil {
				c.Emit(telemetry.Event{
					TS: c.Now(), Kind: telemetry.EvTaskSteal,
					PE: p.tracePE.Load(), Worker: int32(w),
					Arg1: int64(v), Arg2: int64(1 + moved),
				})
			}
		}
		return e, true
	}
	return taskEntry{}, false
}

// hasWork reports whether any queue holds a task (the parking recheck).
func (p *Pool) hasWork() bool {
	if p.inj.nonEmpty() {
		return true
	}
	for _, d := range p.deques {
		if d.size() > 0 {
			return true
		}
	}
	return false
}

// xorshiftNext advances a per-worker xorshift64 PRNG — victim selection
// without the process-wide math/rand lock the seed paid inside its
// critical section.
func xorshiftNext(s *uint64) uint64 {
	x := *s
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*s = x
	return x
}

// run executes a task with timing and panic containment — the helper
// path (Await/TryRunOne callers, worker index -1). Workers use runTask
// directly and batch the busy clock across a dispatch run.
func (p *Pool) run(t taskEntry, worker int) {
	start := time.Now()
	p.runTask(t, worker)
	p.busyNs.Add(time.Since(start).Nanoseconds())
}

// runTask executes one task with panic containment, telemetry, and
// executed/outstanding accounting; busy-time is the caller's concern.
func (p *Pool) runTask(t taskEntry, worker int) {
	var c *telemetry.Collector
	var t0 int64
	if telemetry.Enabled() {
		if c = telemetry.C(); c != nil {
			t0 = c.Now()
		}
	}
	if t.spawnNs != 0 {
		now := t0
		if now == 0 {
			now = telemetry.MonoNow()
		}
		wait := now - t.spawnNs
		if c != nil {
			c.Hist(int(p.tracePE.Load()), telemetry.HistQueueWait).Record(wait)
		}
		if h := p.qwaitHist.Load(); h != nil {
			h.Record(wait)
		}
	}
	defer func() {
		p.executed.Add(1)
		p.outstanding.Add(-1)
		if c != nil {
			tid := int32(worker)
			if worker < 0 {
				tid = telemetry.TidApp
			}
			c.Emit(telemetry.Event{
				TS: t0, Dur: c.Now() - t0, Kind: telemetry.EvTaskRun,
				PE: p.tracePE.Load(), Worker: tid,
			})
		}
		if r := recover(); r != nil {
			if h := p.onPanic.Load(); h != nil {
				(*h)(r)
			} else {
				diag.Errorf("scheduler", "task panicked: %v", r)
			}
		}
	}()
	t.fn()
}

// TryRunOne executes one pending task if any exists; it is the helping
// primitive used by Await and by the runtime's progress loops. Reports
// whether a task ran. Helpers behave like an extra worker with no own
// deque: injector first (FIFO), then steal the oldest task from any
// worker.
func (p *Pool) TryRunOne() bool {
	e, ok := p.inj.popOne(int(p.helpCursor.Add(1)))
	if !ok {
		for v := 0; v < p.workers; v++ {
			if ev, okv := p.deques[v].steal(); okv {
				e, ok = ev, true
				break
			}
		}
	}
	if !ok {
		return false
	}
	p.run(e, -1)
	return true
}

// Pending reports submitted-but-unfinished tasks.
func (p *Pool) Pending() int64 { return p.outstanding.Load() }

// Stats reports lifetime counters: tasks executed, tasks obtained by
// stealing (including batch transfers), worker park episodes, and
// accumulated task execution time.
func (p *Pool) Stats() (executed, stolen, parks uint64, busy time.Duration) {
	return p.executed.Load(), p.stolen.Load(), p.parks.Load(), time.Duration(p.busyNs.Load())
}

// BusyNs returns accumulated task execution nanoseconds (the per-PE CPU
// time used to derive simulated elapsed time in benchmarks).
func (p *Pool) BusyNs() int64 { return p.busyNs.Load() }

// Quiesce blocks until no tasks are pending, helping execute them.
// New submissions during Quiesce extend the wait.
func (p *Pool) Quiesce() {
	for p.outstanding.Load() > 0 {
		if !p.TryRunOne() {
			p.waitNudge()
		}
	}
}

// waitNudge parks briefly until new work may be available.
func (p *Pool) waitNudge() {
	p.nudgers.Add(1)
	select {
	case <-p.notify:
	case <-time.After(100 * time.Microsecond):
	}
	p.nudgers.Add(-1)
}

// awaitNudge is waitNudge with an extra resolution channel; Await's
// blocking arm registers as a nudger the same way.
func (p *Pool) awaitNudge(done <-chan struct{}) {
	p.nudgers.Add(1)
	select {
	case <-done:
	case <-p.notify:
	case <-time.After(100 * time.Microsecond):
	}
	p.nudgers.Add(-1)
}

// Close drains remaining tasks and stops all workers: each worker keeps
// executing until every queue is empty, makes one final sweep after
// observing the closed flag, then exits.
func (p *Pool) Close() {
	p.closed.Store(true)
	p.parker.notifyAll()
	select {
	case p.notify <- struct{}{}:
	default:
	}
	p.wg.Wait()
	// run anything left behind (a task racing with close could land in
	// the injector after the final worker sweeps)
	for p.TryRunOne() {
	}
}
