package scheduler

import "testing"

// Regression bench for the seed's O(n) global-queue pop: the old pool
// popped with `p.global = p.global[1:]`, whose amortized regrowth cost
// scales with backlog length. The chunk-linked injector must pop in O(1)
// regardless of how many tasks sit behind the head: ns/op at a 100k-task
// backlog should match ns/op at a 100-task backlog. Run with
//
//	make bench-sched
//
// and compare the two InjectorPop variants — a significant gap between
// them would reintroduce the re-slice bug.
func benchInjectorPop(b *testing.B, backlog int) {
	in := newInjector(1)
	e := mkEntry(1)
	for i := 0; i < backlog; i++ {
		in.push(e)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := in.popOne(0); !ok {
			b.Fatal("injector drained; raise the backlog or lower -benchtime")
		}
		in.push(e) // keep the backlog level constant
	}
}

func BenchmarkInjectorPop_backlog100(b *testing.B)  { benchInjectorPop(b, 100) }
func BenchmarkInjectorPop_backlog100k(b *testing.B) { benchInjectorPop(b, 100_000) }

// Batch refill under one lock — the worker fast path.
func BenchmarkInjectorPopBatch(b *testing.B) {
	in := newInjector(1)
	e := mkEntry(1)
	buf := make([]taskEntry, refillBatch)
	for i := 0; i < refillBatch; i++ {
		in.push(e)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := in.popBatch(buf, 0)
		for j := 0; j < n; j++ {
			in.push(buf[j])
		}
	}
}
