package scheduler

import (
	"sync"
	"sync/atomic"
	"time"
)

// Future is the handle returned by asynchronous runtime operations —
// launching an AM, a batched array operation, an iterator drive — exactly
// where the paper's APIs return Rust Futures. Await (the analogue of
// block_on / .await) blocks only the calling goroutine and cooperatively
// helps the pool execute tasks while waiting, so awaiting inside an AM
// handler cannot starve the executor.
type Future[T any] struct{ st *futState[T] }

type futState[T any] struct {
	pool *Pool
	done chan struct{}
	set  atomic.Bool
	mu   sync.Mutex
	val  T
	err  error
	then []func(T, error)
}

// Promise is the completion side of a Future.
type Promise[T any] struct{ st *futState[T] }

// NewPromise creates a linked Promise/Future pair. pool may be nil for
// futures awaited outside any executor (they then park instead of helping).
func NewPromise[T any](pool *Pool) (*Promise[T], *Future[T]) {
	st := &futState[T]{pool: pool, done: make(chan struct{})}
	return &Promise[T]{st}, &Future[T]{st}
}

// Ready returns an already-completed Future.
func Ready[T any](v T) *Future[T] {
	st := &futState[T]{done: make(chan struct{})}
	st.val = v
	st.set.Store(true)
	close(st.done)
	return &Future[T]{st}
}

// Fail returns an already-failed Future.
func Fail[T any](err error) *Future[T] {
	st := &futState[T]{done: make(chan struct{})}
	st.err = err
	st.set.Store(true)
	close(st.done)
	return &Future[T]{st}
}

// Complete resolves the future. Completing twice panics.
func (p *Promise[T]) Complete(v T) { p.finish(v, nil) }

// CompleteErr fails the future.
func (p *Promise[T]) CompleteErr(err error) {
	var zero T
	p.finish(zero, err)
}

func (p *Promise[T]) finish(v T, err error) {
	st := p.st
	st.mu.Lock()
	if st.set.Load() {
		st.mu.Unlock()
		panic("scheduler: promise completed twice")
	}
	st.val, st.err = v, err
	st.set.Store(true)
	cbs := st.then
	st.then = nil
	st.mu.Unlock()
	close(st.done)
	for _, cb := range cbs {
		cb(v, err)
	}
}

// IsDone reports whether the future has resolved.
func (f *Future[T]) IsDone() bool { return f.st.set.Load() }

// Done returns a channel closed on resolution (for select integration).
func (f *Future[T]) Done() <-chan struct{} { return f.st.done }

// Await blocks until resolution, helping the attached pool run tasks.
//
// Contract (the same one Rust's block_on family carries): a task running
// on the pool may await (a) futures resolved from outside the pool —
// remote completions, returns, promises completed by other goroutines —
// and (b) futures of work it spawned itself (fork-join). Awaiting a
// future completed by an *earlier-submitted sibling task* can deadlock:
// helpers execute tasks nested on their stack, and a cycle of parked
// helpers waiting on each other's preempted frames cannot make progress.
// The runtime's own await points all follow the contract.
func (f *Future[T]) Await() (T, error) {
	st := f.st
	if st.set.Load() {
		return st.val, st.err
	}
	if st.pool == nil {
		<-st.done
		return st.val, st.err
	}
	for {
		select {
		case <-st.done:
			return st.val, st.err
		default:
		}
		if !st.pool.TryRunOne() {
			select {
			case <-st.done:
				return st.val, st.err
			case <-st.pool.notify:
			case <-time.After(100 * time.Microsecond):
			}
		}
	}
}

// MustAwait awaits and panics on error; for examples and tests.
func (f *Future[T]) MustAwait() T {
	v, err := f.Await()
	if err != nil {
		panic(err)
	}
	return v
}

// OnDone registers a callback invoked exactly once on resolution (inline
// if already resolved). Callbacks run on the completer's goroutine.
func (f *Future[T]) OnDone(cb func(T, error)) {
	st := f.st
	st.mu.Lock()
	if st.set.Load() {
		st.mu.Unlock()
		cb(st.val, st.err)
		return
	}
	st.then = append(st.then, cb)
	st.mu.Unlock()
}

// Map derives a future by transforming the value on the completer's path.
func Map[T, U any](f *Future[T], fn func(T) U) *Future[U] {
	p, out := NewPromise[U](f.st.pool)
	f.OnDone(func(v T, err error) {
		if err != nil {
			p.CompleteErr(err)
			return
		}
		p.Complete(fn(v))
	})
	return out
}

// All resolves when every input resolves, collecting values in order; the
// first error wins but resolution still waits for all inputs.
func All[T any](pool *Pool, fs []*Future[T]) *Future[[]T] {
	p, out := NewPromise[[]T](pool)
	n := len(fs)
	if n == 0 {
		p.Complete(nil)
		return out
	}
	vals := make([]T, n)
	var firstErr atomic.Pointer[error]
	var remaining atomic.Int64
	remaining.Store(int64(n))
	for i, f := range fs {
		i, f := i, f
		f.OnDone(func(v T, err error) {
			if err != nil {
				firstErr.CompareAndSwap(nil, &err)
			} else {
				vals[i] = v
			}
			if remaining.Add(-1) == 0 {
				if ep := firstErr.Load(); ep != nil {
					p.CompleteErr(*ep)
				} else {
					p.Complete(vals)
				}
			}
		})
	}
	return out
}

// Spawn submits fn to the pool and returns a Future for its result,
// mirroring `world.spawn(async { ... })`.
func Spawn[T any](pool *Pool, fn func() (T, error)) *Future[T] {
	p, f := NewPromise[T](pool)
	pool.Submit(func() {
		v, err := fn()
		if err != nil {
			p.CompleteErr(err)
			return
		}
		p.Complete(v)
	})
	return f
}
