package scheduler

import (
	"sync"
	"sync/atomic"
	"time"
)

// Future is the handle returned by asynchronous runtime operations —
// launching an AM, a batched array operation, an iterator drive — exactly
// where the paper's APIs return Rust Futures. Await (the analogue of
// block_on / .await) blocks only the calling goroutine and cooperatively
// helps the pool execute tasks while waiting, so awaiting inside an AM
// handler cannot starve the executor.
type Future[T any] struct{ st *futState[T] }

type futState[T any] struct {
	pool *Pool
	done chan struct{} // lazily created; see Done()
	set  atomic.Bool
	mu   sync.Mutex
	val  T
	err  error
	hook func() // runs at Await entry while unresolved; see SetAwaitHook
	then []func(T, error)
	// poll, when non-nil, makes this a condition future: resolution is
	// defined by the predicate instead of a one-shot completion. See
	// NewConditionFuture.
	poll func() (T, error, bool)
}

// closedChan is the shared already-closed channel handed out by Done()
// for futures that resolved before anyone asked for their channel.
var closedChan = func() chan struct{} {
	c := make(chan struct{})
	close(c)
	return c
}()

// Promise is the completion side of a Future.
type Promise[T any] struct{ st *futState[T] }

// NewPromise creates a linked Promise/Future pair. pool may be nil for
// futures awaited outside any executor (they then park instead of helping).
func NewPromise[T any](pool *Pool) (*Promise[T], *Future[T]) {
	st := &futState[T]{pool: pool}
	return &Promise[T]{st}, &Future[T]{st}
}

// NewConditionFuture returns a Future backed by a poll predicate instead
// of a one-shot completion: the future counts as done whenever poll
// currently reports (value, err, true). It is permanently reusable — the
// aggregation layer hands every fire-and-forget element op the same
// condition future (done ⇔ no buffered or in-flight ops), replacing a
// per-op allocation with a shared handle whose Await still guarantees the
// op completed, since the op was issued before Await observed the drained
// state. Unlike promise futures, doneness is not monotonic: new work can
// flip the condition back to pending, which only ever makes Await more
// conservative. Done and OnDone fall back to a polling goroutine and are
// intended for cold paths only.
func NewConditionFuture[T any](pool *Pool, poll func() (T, error, bool)) *Future[T] {
	return &Future[T]{&futState[T]{pool: pool, poll: poll}}
}

const condPollInterval = 5 * time.Microsecond

// Ready returns an already-completed Future.
func Ready[T any](v T) *Future[T] {
	st := &futState[T]{}
	st.val = v
	st.set.Store(true)
	return &Future[T]{st}
}

// Fail returns an already-failed Future.
func Fail[T any](err error) *Future[T] {
	st := &futState[T]{}
	st.err = err
	st.set.Store(true)
	return &Future[T]{st}
}

// Complete resolves the future. Completing twice panics.
func (p *Promise[T]) Complete(v T) { p.finish(v, nil) }

// CompleteErr fails the future.
func (p *Promise[T]) CompleteErr(err error) {
	var zero T
	p.finish(zero, err)
}

func (p *Promise[T]) finish(v T, err error) {
	st := p.st
	st.mu.Lock()
	if st.set.Load() {
		st.mu.Unlock()
		panic("scheduler: promise completed twice")
	}
	st.val, st.err = v, err
	st.set.Store(true)
	cbs := st.then
	st.then = nil
	done := st.done
	st.mu.Unlock()
	if done != nil {
		close(done)
	}
	for _, cb := range cbs {
		cb(v, err)
	}
}

// IsDone reports whether the future has resolved (for condition futures:
// whether the condition currently holds).
func (f *Future[T]) IsDone() bool {
	if f.st.poll != nil {
		_, _, ok := f.st.poll()
		return ok
	}
	return f.st.set.Load()
}

// Done returns a channel closed on resolution (for select integration).
// The channel is created on first request so futures that are never
// selected on (the overwhelming majority of batched array ops) avoid the
// allocation entirely.
func (f *Future[T]) Done() <-chan struct{} {
	st := f.st
	if st.poll != nil {
		// Condition futures have no completion edge to hook; watch the
		// predicate from a goroutine. Cold path by design.
		if _, _, ok := st.poll(); ok {
			return closedChan
		}
		ch := make(chan struct{})
		go func() {
			for {
				if _, _, ok := st.poll(); ok {
					close(ch)
					return
				}
				time.Sleep(condPollInterval)
			}
		}()
		return ch
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.done == nil {
		if st.set.Load() {
			st.done = closedChan
		} else {
			st.done = make(chan struct{})
		}
	}
	return st.done
}

// SetAwaitHook installs fn to run each time Await is entered before the
// future has resolved. The array aggregation layer uses it to flush the
// buffers the awaited result depends on, so a caller blocking on a
// buffered op never stalls until the next background flush. Map and All
// propagate hooks to derived futures.
func (f *Future[T]) SetAwaitHook(fn func()) {
	st := f.st
	st.mu.Lock()
	st.hook = fn
	st.mu.Unlock()
}

func (f *Future[T]) awaitHook() func() {
	st := f.st
	st.mu.Lock()
	h := st.hook
	st.mu.Unlock()
	return h
}

// Await blocks until resolution, helping the attached pool run tasks.
//
// Contract (the same one Rust's block_on family carries): a task running
// on the pool may await (a) futures resolved from outside the pool —
// remote completions, returns, promises completed by other goroutines —
// and (b) futures of work it spawned itself (fork-join). Awaiting a
// future completed by an *earlier-submitted sibling task* can deadlock:
// helpers execute tasks nested on their stack, and a cycle of parked
// helpers waiting on each other's preempted frames cannot make progress.
// The runtime's own await points all follow the contract.
func (f *Future[T]) Await() (T, error) {
	st := f.st
	if st.poll != nil {
		if v, err, ok := st.poll(); ok {
			return v, err
		}
		if h := f.awaitHook(); h != nil {
			h()
		}
		for {
			if v, err, ok := st.poll(); ok {
				return v, err
			}
			if st.pool == nil || !st.pool.TryRunOne() {
				time.Sleep(condPollInterval)
			}
		}
	}
	if st.set.Load() {
		return st.val, st.err
	}
	if h := f.awaitHook(); h != nil {
		h()
		if st.set.Load() {
			return st.val, st.err
		}
	}
	done := f.Done()
	if st.pool == nil {
		<-done
		return st.val, st.err
	}
	for {
		select {
		case <-done:
			return st.val, st.err
		default:
		}
		if !st.pool.TryRunOne() {
			st.pool.awaitNudge(done)
		}
	}
}

// MustAwait awaits and panics on error; for examples and tests.
func (f *Future[T]) MustAwait() T {
	v, err := f.Await()
	if err != nil {
		panic(err)
	}
	return v
}

// OnDone registers a callback invoked exactly once on resolution (inline
// if already resolved). Callbacks run on the completer's goroutine.
func (f *Future[T]) OnDone(cb func(T, error)) {
	st := f.st
	if st.poll != nil {
		if v, err, ok := st.poll(); ok {
			cb(v, err)
			return
		}
		go func() {
			for {
				if v, err, ok := st.poll(); ok {
					cb(v, err)
					return
				}
				time.Sleep(condPollInterval)
			}
		}()
		return
	}
	st.mu.Lock()
	if st.set.Load() {
		st.mu.Unlock()
		cb(st.val, st.err)
		return
	}
	st.then = append(st.then, cb)
	st.mu.Unlock()
}

// Map derives a future by transforming the value on the completer's path.
// The input's await hook (if any) carries over to the derived future.
func Map[T, U any](f *Future[T], fn func(T) U) *Future[U] {
	p, out := NewPromise[U](f.st.pool)
	if h := f.awaitHook(); h != nil {
		out.SetAwaitHook(h)
	}
	f.OnDone(func(v T, err error) {
		if err != nil {
			p.CompleteErr(err)
			return
		}
		p.Complete(fn(v))
	})
	return out
}

// All resolves when every input resolves, collecting values in order; the
// first error wins but resolution still waits for all inputs.
func All[T any](pool *Pool, fs []*Future[T]) *Future[[]T] {
	p, out := NewPromise[[]T](pool)
	n := len(fs)
	if n == 0 {
		p.Complete(nil)
		return out
	}
	var hooks []func()
	for _, f := range fs {
		if h := f.awaitHook(); h != nil {
			hooks = append(hooks, h)
		}
	}
	if len(hooks) > 0 {
		out.SetAwaitHook(func() {
			for _, h := range hooks {
				h()
			}
		})
	}
	vals := make([]T, n)
	var firstErr atomic.Pointer[error]
	var remaining atomic.Int64
	remaining.Store(int64(n))
	for i, f := range fs {
		i, f := i, f
		f.OnDone(func(v T, err error) {
			if err != nil {
				firstErr.CompareAndSwap(nil, &err)
			} else {
				vals[i] = v
			}
			if remaining.Add(-1) == 0 {
				if ep := firstErr.Load(); ep != nil {
					p.CompleteErr(*ep)
				} else {
					p.Complete(vals)
				}
			}
		})
	}
	return out
}

// Spawn submits fn to the pool and returns a Future for its result,
// mirroring `world.spawn(async { ... })`.
func Spawn[T any](pool *Pool, fn func() (T, error)) *Future[T] {
	p, f := NewPromise[T](pool)
	pool.Submit(func() {
		v, err := fn()
		if err != nil {
			p.CompleteErr(err)
			return
		}
		p.Complete(v)
	})
	return f
}
