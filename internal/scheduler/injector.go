package scheduler

import (
	"sync"
	"sync/atomic"
)

// injector is the pool's global submission queue: a set of mutex-sharded
// FIFO queues of linked fixed-size chunks. It replaces the seed's single
// `[]taskEntry` slice guarded by the pool-wide lock, which paid an O(n)
// re-slice pattern on pop (`global = global[1:]` keeps the backing array
// alive and shifts on regrowth) and serialized SubmitGlobal from the
// Lamellae progress engine against every worker pop.
//
// Design:
//   - Producers round-robin across shards with one atomic counter, so a
//     submission burst spreads over independent locks. FIFO order is
//     guaranteed *per shard*: two tasks a single producer routes to the
//     same shard pop in submission order (ISSUE 3's per-shard FIFO
//     contract; total order across shards is not promised).
//   - Each shard is a linked list of chunks of injChunkCap entries:
//     push appends at the tail chunk, pop advances lo in the head chunk.
//     Both are O(1); drained chunks recycle through a one-chunk per-shard
//     free cache so steady-state traffic does not allocate.
//   - A per-shard atomic count lets consumers and the parking recheck
//     skip empty shards without touching the lock.
type injector struct {
	shards []injShard
	cursor atomic.Uint64 // round-robin push cursor
}

// injChunkCap is the number of entries per linked chunk. 64 entries keeps
// a chunk about one page and bounds the pop batch a worker can take under
// a single shard lock.
const injChunkCap = 64

// injShardCap caps sharding: the injector uses min(workers, cap) shards.
// Beyond ~8 independent locks the push-cursor atomic itself dominates,
// so 8 is the default, but the cap is a measured knob (ISSUE 9): the
// Task Bench matrix sweeps it per dependency pattern — see
// bench_results.txt §TASKBENCH. Read once at pool construction;
// override with LAMELLAR_INJ_SHARDS or SetInjectorShardCap before
// building a pool.
var injShardCap atomic.Int32

const defaultInjShardCap = 8

func init() {
	injShardCap.Store(int32(envKnob("LAMELLAR_INJ_SHARDS", defaultInjShardCap, 1, 64)))
}

// SetInjectorShardCap sets the shard-count cap (clamped to [1, 64]) for
// pools created afterwards; existing pools keep their shard count.
func SetInjectorShardCap(n int) {
	injShardCap.Store(int32(clampKnob(n, 1, 64)))
}

// InjectorShardCap reports the current shard-count cap.
func InjectorShardCap() int { return int(injShardCap.Load()) }

type injChunk struct {
	lo, hi int // valid entries are buf[lo:hi]
	next   *injChunk
	buf    [injChunkCap]taskEntry
}

type injShard struct {
	count  atomic.Int64 // entries queued (lock-free empty check)
	mu     sync.Mutex
	head   *injChunk // pop end (oldest)
	tail   *injChunk // push end (newest)
	spare  *injChunk // recycled chunks (linked via next), avoids alloc churn
	nspare int
	_      [16]byte // pad shards apart
}

// maxSpareChunks bounds the per-shard recycled-chunk list so a burst's
// spill buffers recycle instead of allocating, without pinning unbounded
// chunk memory afterwards.
const maxSpareChunks = 4

func newInjector(shards int) *injector {
	if shards < 1 {
		shards = 1
	}
	if cap := int(injShardCap.Load()); shards > cap {
		shards = cap
	}
	return &injector{shards: make([]injShard, shards)}
}

// push enqueues e on the next round-robin shard.
func (in *injector) push(e taskEntry) {
	c := in.cursor.Add(1)
	in.shards[c%uint64(len(in.shards))].push(e)
}

// pushBatch enqueues all of es on ONE shard under one lock acquisition —
// the progress-engine path: a delivered AM batch becomes tasks with a
// single lock round trip, and per-shard FIFO keeps the batch in order.
func (in *injector) pushBatch(es []taskEntry) {
	if len(es) == 0 {
		return
	}
	c := in.cursor.Add(1)
	in.shards[c%uint64(len(in.shards))].pushBatch(es)
}

// nonEmpty reports whether any shard holds tasks (approximate: lock-free).
func (in *injector) nonEmpty() bool {
	for i := range in.shards {
		if in.shards[i].count.Load() > 0 {
			return true
		}
	}
	return false
}

// popBatch fills out with up to len(out) tasks, sweeping shards starting
// at shard `from` (callers rotate their start so shards drain evenly).
// Entries preserve per-shard FIFO order.
func (in *injector) popBatch(out []taskEntry, from int) int {
	n := 0
	for i := 0; i < len(in.shards) && n < len(out); i++ {
		s := &in.shards[(from+i)%len(in.shards)]
		n += s.popBatch(out[n:])
	}
	return n
}

// popOne removes a single task, sweeping shards from `from`.
func (in *injector) popOne(from int) (taskEntry, bool) {
	var one [1]taskEntry
	if in.popBatch(one[:], from) == 1 {
		return one[0], true
	}
	return taskEntry{}, false
}

func (s *injShard) push(e taskEntry) {
	s.mu.Lock()
	c := s.tail
	if c == nil || c.hi == injChunkCap {
		c = s.newTailLocked()
	}
	c.buf[c.hi] = e
	c.hi++
	s.count.Add(1)
	s.mu.Unlock()
}

func (s *injShard) pushBatch(es []taskEntry) {
	s.mu.Lock()
	c := s.tail
	for _, e := range es {
		if c == nil || c.hi == injChunkCap {
			c = s.newTailLocked()
		}
		c.buf[c.hi] = e
		c.hi++
	}
	s.count.Add(int64(len(es)))
	s.mu.Unlock()
}

// newTailLocked links a fresh (or recycled) chunk at the tail.
func (s *injShard) newTailLocked() *injChunk {
	nc := s.spare
	if nc != nil {
		s.spare = nc.next
		s.nspare--
		nc.lo, nc.hi, nc.next = 0, 0, nil
	} else {
		nc = new(injChunk)
	}
	if s.tail == nil {
		s.head, s.tail = nc, nc
	} else {
		s.tail.next = nc
		s.tail = nc
	}
	return nc
}

// popBatch moves up to len(out) oldest entries into out. O(1) per entry:
// the head chunk's lo advances; exhausted chunks unlink (or reset in
// place when they are also the tail) and recycle via the spare slot.
func (s *injShard) popBatch(out []taskEntry) int {
	if s.count.Load() == 0 {
		return 0
	}
	s.mu.Lock()
	n := 0
	for n < len(out) {
		c := s.head
		if c == nil {
			break
		}
		if c.lo == c.hi {
			if c.next == nil {
				// single empty chunk: reset in place for reuse
				c.lo, c.hi = 0, 0
				break
			}
			s.head = c.next
			if s.nspare < maxSpareChunks {
				c.next = s.spare
				s.spare = c
				s.nspare++
			} else {
				c.next = nil
			}
			continue
		}
		out[n] = c.buf[c.lo]
		c.buf[c.lo] = taskEntry{} // drop the task reference
		c.lo++
		n++
	}
	if n > 0 {
		s.count.Add(int64(-n))
	}
	s.mu.Unlock()
	return n
}
