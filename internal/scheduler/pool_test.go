package scheduler

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSubmitAndQuiesce(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var n atomic.Int64
	for i := 0; i < 1000; i++ {
		p.Submit(func() { n.Add(1) })
	}
	p.Quiesce()
	if n.Load() != 1000 {
		t.Errorf("executed %d", n.Load())
	}
	if p.Pending() != 0 {
		t.Errorf("pending = %d", p.Pending())
	}
}

func TestSubmitGlobalFIFO(t *testing.T) {
	// A 1-worker pool has a single injector shard, so SubmitGlobal order
	// is total FIFO. Stall the worker and drain with the helper alone so
	// execution order is deterministic.
	p := NewPool(1)
	defer p.Close()
	gate := make(chan struct{})
	started := make(chan struct{})
	p.Submit(func() { close(started); <-gate })
	<-started // the worker holds the gate task; only the helper drains now
	var order []int
	var mu sync.Mutex
	for i := 0; i < 10; i++ {
		i := i
		p.SubmitGlobal(func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		})
	}
	for i := 0; i < 10; i++ {
		if !p.TryRunOne() {
			t.Fatalf("helper found no task at %d", i)
		}
	}
	close(gate)
	p.Quiesce()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 10 {
		t.Fatalf("ran %d", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestStealing(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	// one long task per worker's deque would serialize without stealing;
	// submit a skewed burst and confirm steals happen over time
	var wg sync.WaitGroup
	for i := 0; i < 400; i++ {
		wg.Add(1)
		p.Submit(func() {
			defer wg.Done()
			time.Sleep(100 * time.Microsecond)
		})
	}
	wg.Wait()
	_, stolen, _, busy := p.Stats()
	if busy == 0 {
		t.Error("busy time not recorded")
	}
	_ = stolen // stealing is probabilistic; just ensure no deadlock
}

func TestPanicContainment(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var caught atomic.Value
	p.SetPanicHandler(func(r any) { caught.Store(r) })
	p.Submit(func() { panic("boom") })
	p.Quiesce()
	if caught.Load() != "boom" {
		t.Errorf("caught = %v", caught.Load())
	}
	// pool still functional
	var ok atomic.Bool
	p.Submit(func() { ok.Store(true) })
	p.Quiesce()
	if !ok.Load() {
		t.Error("pool dead after panic")
	}
}

func TestFutureBasic(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	f := Spawn(p, func() (int, error) { return 42, nil })
	v, err := f.Await()
	if err != nil || v != 42 {
		t.Errorf("Await = %d, %v", v, err)
	}
	if !f.IsDone() {
		t.Error("IsDone false after Await")
	}
	// second await returns immediately
	if v, _ := f.Await(); v != 42 {
		t.Error("re-await broken")
	}
}

func TestFutureError(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	want := errors.New("nope")
	f := Spawn(p, func() (int, error) { return 0, want })
	if _, err := f.Await(); !errors.Is(err, want) {
		t.Errorf("err = %v", err)
	}
}

func TestAwaitHelpsNestedTasks(t *testing.T) {
	// With a single worker, a task that awaits a future completed by
	// another task would deadlock unless Await helps execute tasks.
	p := NewPool(1)
	defer p.Close()
	outer := Spawn(p, func() (int, error) {
		inner := Spawn(p, func() (int, error) { return 7, nil })
		v, err := inner.Await()
		return v + 1, err
	})
	done := make(chan struct{})
	go func() {
		if v, _ := outer.Await(); v != 8 {
			t.Errorf("outer = %d", v)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("deadlock: Await did not help")
	}
}

func TestDeeplyNestedAwait(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var rec func(depth int) *Future[int]
	rec = func(depth int) *Future[int] {
		return Spawn(p, func() (int, error) {
			if depth == 0 {
				return 1, nil
			}
			v, err := rec(depth - 1).Await()
			return v + 1, err
		})
	}
	if v := rec(50).MustAwait(); v != 51 {
		t.Errorf("depth sum = %d", v)
	}
}

func TestReadyAndFail(t *testing.T) {
	if v := Ready(9).MustAwait(); v != 9 {
		t.Error("Ready broken")
	}
	if _, err := Fail[int](errors.New("x")).Await(); err == nil {
		t.Error("Fail broken")
	}
}

func TestPromiseDoubleCompletePanics(t *testing.T) {
	pr, _ := NewPromise[int](nil)
	pr.Complete(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	pr.Complete(2)
}

func TestOnDoneBeforeAndAfter(t *testing.T) {
	pr, f := NewPromise[int](nil)
	var got atomic.Int64
	f.OnDone(func(v int, err error) { got.Add(int64(v)) })
	pr.Complete(5)
	f.OnDone(func(v int, err error) { got.Add(int64(v)) }) // inline
	if got.Load() != 10 {
		t.Errorf("callbacks sum = %d", got.Load())
	}
}

func TestMap(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	f := Map(Spawn(p, func() (int, error) { return 3, nil }), func(v int) string {
		if v == 3 {
			return "three"
		}
		return "?"
	})
	if s := f.MustAwait(); s != "three" {
		t.Errorf("Map = %q", s)
	}
}

func TestAll(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	fs := make([]*Future[int], 20)
	for i := range fs {
		i := i
		fs[i] = Spawn(p, func() (int, error) { return i, nil })
	}
	vals := All(p, fs).MustAwait()
	for i, v := range vals {
		if v != i {
			t.Fatalf("vals[%d] = %d", i, v)
		}
	}
	// empty input resolves immediately
	if v := All[int](p, nil).MustAwait(); v != nil {
		t.Error("empty All should be nil")
	}
}

func TestAllPropagatesError(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	want := errors.New("bad")
	fs := []*Future[int]{
		Spawn(p, func() (int, error) { return 1, nil }),
		Spawn(p, func() (int, error) { return 0, want }),
	}
	if _, err := All(p, fs).Await(); !errors.Is(err, want) {
		t.Errorf("err = %v", err)
	}
}

func TestCloseDrains(t *testing.T) {
	p := NewPool(2)
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		p.Submit(func() { n.Add(1) })
	}
	p.Close()
	if n.Load() != 100 {
		t.Errorf("drained %d", n.Load())
	}
}

func TestBusyNsAccumulates(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	p.Submit(func() { time.Sleep(2 * time.Millisecond) })
	p.Quiesce()
	if p.BusyNs() < int64(1*time.Millisecond) {
		t.Errorf("busyNs = %d", p.BusyNs())
	}
}

// Stress: wide fork-join trees — every task awaits only futures it
// spawned itself (the supported pattern, see Future.Await) — under
// stealing pressure across many roots.
func TestForkJoinStress(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var build func(depth int) *Future[int]
	build = func(depth int) *Future[int] {
		return Spawn(p, func() (int, error) {
			if depth == 0 {
				return 1, nil
			}
			l := build(depth - 1)
			r := build(depth - 1)
			lv, err := l.Await()
			if err != nil {
				return 0, err
			}
			rv, err := r.Await()
			return lv + rv, err
		})
	}
	roots := make([]*Future[int], 8)
	for i := range roots {
		roots[i] = build(6)
	}
	for i, f := range roots {
		v, err := f.Await()
		if err != nil || v != 64 { // 2^6 leaves
			t.Fatalf("tree %d = %d, %v", i, v, err)
		}
	}
}

func TestQuiesceWhileSubmitting(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var n atomic.Int64
	// a task that spawns children two levels deep; Quiesce must cover them
	for i := 0; i < 50; i++ {
		p.Submit(func() {
			p.Submit(func() {
				p.Submit(func() { n.Add(1) })
			})
		})
	}
	p.Quiesce()
	if n.Load() != 50 {
		t.Errorf("leaves = %d", n.Load())
	}
}
