package scheduler

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSchedulerStress hammers every pool entry point concurrently —
// Submit, SubmitGlobal, SubmitBatch, Await-help (TryRunOne via Future),
// Quiesce — and finishes with a close-and-drain. Run under -race this
// exercises the deque slot reuse, injector sharding, and parking
// handshake together. The Makefile check gate requires this test to run
// (not skip) so the lock-free paths always see race coverage.
func TestSchedulerStress(t *testing.T) {
	p := NewPool(4)
	var ran atomic.Int64
	const producers = 4
	const perProducer = 2000

	var wg sync.WaitGroup
	for pr := 0; pr < producers; pr++ {
		pr := pr
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				switch i % 4 {
				case 0:
					p.Submit(func() { ran.Add(1) })
				case 1:
					p.SubmitGlobal(func() { ran.Add(1) })
				case 2:
					// small batch via the progress-engine path
					p.SubmitBatch([]Task{
						func() { ran.Add(1) },
						func() { ran.Add(1) },
					})
				case 3:
					// fork-join: Await must help instead of deadlocking
					f := Spawn(p, func() (int, error) {
						ran.Add(1)
						return pr, nil
					})
					if v, err := f.Await(); err != nil || v != pr {
						t.Errorf("future = %d, %v", v, err)
					}
				}
				if i%97 == 0 {
					p.TryRunOne() // external helper interleaved
				}
			}
		}()
	}

	// a Quiescer racing the producers: Quiesce only promises coverage of
	// tasks submitted before the call, so just assert it returns
	quiesced := make(chan struct{})
	go func() {
		defer close(quiesced)
		for i := 0; i < 5; i++ {
			p.Quiesce()
			time.Sleep(time.Millisecond)
		}
	}()

	wg.Wait()
	<-quiesced
	p.Close() // drains any remainder
	// each window of 4 iterations submits 1+1+2+1 = 5 tasks
	want := int64(producers * perProducer / 4 * 5)
	if got := ran.Load(); got != want {
		t.Fatalf("ran %d tasks, want %d", got, want)
	}
	if p.Pending() != 0 {
		t.Fatalf("pending = %d after Close", p.Pending())
	}
}
