// Package slab provides size-classed recycling of the byte buffers that
// carry wire frames through the transport stack. The reliable wire layer
// allocates one buffer per frame (header + body) and retains it until the
// peer's cumulative ack releases it; receivers allocate one buffer per
// delivered frame and hold it until every envelope task decoded from it
// has finished. Both directions churn through buffers at the batch rate,
// so under sustained aggregated traffic the pools converge to a small
// working set and the steady state allocates nothing.
//
// Ownership rules (see DESIGN.md "Memory recycling"):
//
//   - Get hands out a buffer with exactly one owner. Ownership transfers
//     by passing the buffer (or a Ref wrapping it) along; it never forks.
//   - The final owner calls Put (or Ref.Release) exactly once. Double
//     release is a bug; the optional poison check (LAMELLAR_SLAB_CHECK=1)
//     makes use-after-release visible by filling released buffers with a
//     poison byte.
//   - Put accepts only buffers whose capacity matches a size class —
//     anything else (including interior slices) is left to the GC, so a
//     misrouted buffer degrades to the old allocation behavior instead of
//     corrupting a class.
package slab

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/envknob"
)

const (
	// minClassBits..maxClassBits bound the pooled size classes
	// (64 B .. 4 MiB). Requests above the top class fall back to plain
	// allocations that are never pooled.
	minClassBits = 6
	maxClassBits = 22
	numClasses   = maxClassBits - minClassBits + 1

	// maxFreePerClass bounds retained buffers per class so an ephemeral
	// burst cannot pin memory forever.
	maxFreePerClass = 256

	// poisonByte fills released buffers when the check mode is on.
	poisonByte = 0xDB
)

// checkMode enables poison-on-release: any path that reads a frame after
// returning it to the pool sees 0xDB garbage instead of stale (plausible)
// bytes, turning silent use-after-recycle into loud corruption that the
// wire layer's header validation and the tests' content checks catch.
var checkMode = envknob.Bool("LAMELLAR_SLAB_CHECK", false)

// SetCheckMode toggles poison-on-release; tests use it to harden
// use-after-recycle detection without environment plumbing.
func SetCheckMode(on bool) { checkModeAtomic.Store(on) }

var checkModeAtomic = func() *atomic.Bool {
	b := new(atomic.Bool)
	b.Store(checkMode)
	return b
}()

type class struct {
	mu   sync.Mutex
	free [][]byte
}

var (
	classes [numClasses]class

	// Counters for tests and stats: buffers served from a class free
	// list, buffers allocated fresh, and buffers returned to a class.
	hits   atomic.Uint64
	misses atomic.Uint64
	puts   atomic.Uint64
)

// classFor maps a requested size to its class index, or -1 when the size
// exceeds the largest pooled class.
func classFor(n int) int {
	if n <= 0 {
		return 0
	}
	b := bits.Len(uint(n - 1)) // ceil(log2 n)
	if b < minClassBits {
		b = minClassBits
	}
	if b > maxClassBits {
		return -1
	}
	return b - minClassBits
}

// Get returns a buffer of length n backed by a pooled size-class
// allocation (capacity 2^k). Contents are unspecified; callers must
// overwrite every byte they later read. Oversized requests allocate
// directly and are dropped again by Put.
func Get(n int) []byte {
	ci := classFor(n)
	if ci < 0 {
		misses.Add(1)
		return make([]byte, n)
	}
	c := &classes[ci]
	c.mu.Lock()
	if k := len(c.free); k > 0 {
		b := c.free[k-1]
		c.free[k-1] = nil
		c.free = c.free[:k-1]
		c.mu.Unlock()
		hits.Add(1)
		return b[:n]
	}
	c.mu.Unlock()
	misses.Add(1)
	return make([]byte, n, 1<<(ci+minClassBits))
}

// Put returns a buffer obtained from Get to its class. Buffers whose
// capacity is not an exact class size (foreign allocations, interior
// slices) are dropped for the GC. Safe for nil.
func Put(b []byte) {
	if b == nil {
		return
	}
	cp := cap(b)
	if cp == 0 || cp&(cp-1) != 0 {
		return // not a class-sized allocation
	}
	ci := bits.Len(uint(cp)) - 1 - minClassBits
	if ci < 0 || ci >= numClasses {
		return
	}
	if checkModeAtomic.Load() {
		b = b[:cp]
		for i := range b {
			b[i] = poisonByte
		}
	}
	c := &classes[ci]
	c.mu.Lock()
	if len(c.free) < maxFreePerClass {
		c.free = append(c.free, b[:0])
		puts.Add(1)
	}
	c.mu.Unlock()
}

// Stats reports (hits, misses, puts) since process start; tests use it to
// assert steady-state recycling.
func Stats() (uint64, uint64, uint64) {
	return hits.Load(), misses.Load(), puts.Load()
}

// Ref is a single-owner handle on a pooled buffer, passed by value
// through delivery callbacks so no per-frame closure allocation is
// needed. The zero Ref releases nothing (for buffers the GC owns, e.g.
// reassembled fragments). Exactly one copy of a Ref may be Released.
type Ref struct{ buf []byte }

// Owned wraps a Get-allocated buffer for ownership transfer.
func Owned(b []byte) Ref { return Ref{buf: b} }

// Release returns the underlying buffer to its pool (once; subsequent
// calls on the same copy are no-ops).
func (r *Ref) Release() {
	if r.buf != nil {
		Put(r.buf)
		r.buf = nil
	}
}
