package runtime

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"repro/internal/fabric"
	"repro/internal/scheduler"
	"repro/internal/telemetry"
)

// teamShared is the state common to every member's handle of one team.
type teamShared struct {
	id      uint64
	members []int       // world PEs, sorted ascending; team rank = index
	rankOf  map[int]int // world PE -> team rank
	barrier *fabric.GroupBarrier
	coll    *collState
}

// Team is one PE's handle on a team — a subset of the world's PEs (the
// world itself is a team containing every PE). Handles are per-PE; all
// members share the same underlying team state. Team collectives follow
// SPMD discipline: every member calls them in the same order.
type Team struct {
	env    *worldEnv
	shared *teamShared
	myPE   int
	myRank int

	mu      sync.Mutex
	collSeq uint64
}

func newTeamShared(env *worldEnv, members []int) *teamShared {
	sorted := append([]int(nil), members...)
	sort.Ints(sorted)
	ts := &teamShared{
		id:      env.teamIDs.Add(1),
		members: sorted,
		rankOf:  make(map[int]int, len(sorted)),
		barrier: env.prov.NewGroupBarrier(len(sorted)),
	}
	for r, pe := range sorted {
		ts.rankOf[pe] = r
	}
	ts.coll = newCollState(env, len(sorted))
	return ts
}

// Size reports the number of member PEs.
func (t *Team) Size() int { return len(t.shared.members) }

// Rank reports the calling PE's rank within the team.
func (t *Team) Rank() int { return t.myRank }

// ID reports the team identifier (stable across member handles).
func (t *Team) ID() uint64 { return t.shared.id }

// Members returns the world PEs in the team, ordered by team rank.
func (t *Team) Members() []int { return append([]int(nil), t.shared.members...) }

// WorldPE maps a team rank to its world PE.
func (t *Team) WorldPE(rank int) int { return t.shared.members[rank] }

// RankOf maps a world PE to its team rank (-1 if not a member).
func (t *Team) RankOf(pe int) int {
	if r, ok := t.shared.rankOf[pe]; ok {
		return r
	}
	return -1
}

// World returns the calling PE's world handle.
func (t *Team) World() *World { return t.env.worlds[t.myPE] }

// Barrier synchronizes the team's members (collective).
func (t *Team) Barrier() {
	t.World().flushAll(telemetry.FlushDrain)
	t.env.prov.WaitFor(t.myPE, t.shared.barrier)
}

// ExecAM launches am on the team member with the given rank.
func (t *Team) ExecAM(rank int, am ActiveMessage) {
	t.World().ExecAM(t.WorldPE(rank), am)
}

// ExecAMAll launches am on every member of the team.
func (t *Team) ExecAMAll(am ActiveMessage) {
	for _, pe := range t.shared.members {
		t.World().ExecAM(pe, am)
	}
}

// ExecAMReturn launches am on the member with the given rank and returns
// a future resolving with the handler's return value.
func (t *Team) ExecAMReturn(rank int, am ActiveMessage) *scheduler.Future[any] {
	return t.World().ExecAMReturn(t.WorldPE(rank), am)
}

// ExecAMAllReturn launches am on every member, resolving with the return
// values indexed by team rank.
func (t *Team) ExecAMAllReturn(am ActiveMessage) *scheduler.Future[[]any] {
	fs := make([]*scheduler.Future[any], t.Size())
	for r := range fs {
		fs[r] = t.ExecAMReturn(r, am)
	}
	return scheduler.All(t.World().Pool(), fs)
}

// Collective rendezvouses all members on constructing one shared object;
// the first arriver runs build, every member receives the same value. It
// blocks only the calling goroutine (the PE's pool keeps running), like
// the paper's collective allocations.
func (t *Team) Collective(build func() any) any {
	return t.CollectiveKind("anonymous", build)
}

// CollectiveKind is Collective with a kind tag: if team members disagree
// on which collective call is being made at the same sequence position,
// the runtime panics with a diagnostic (mismatched collective sequences
// otherwise corrupt shared state in ways that are very hard to debug;
// see §III-A3's runtime analysis).
func (t *Team) CollectiveKind(kind string, build func() any) any {
	t.mu.Lock()
	t.collSeq++
	seq := t.collSeq
	t.mu.Unlock()
	key := fmt.Sprintf("t%d.c%d", t.shared.id, seq)
	return t.env.collective(key, kind, len(t.shared.members), build)
}

// Split collectively creates a sub-team from the given world PEs (which
// must all belong to this team). Every member of the parent team must
// call Split with the same list; members receive their handle, PEs not in
// the list receive nil.
func (t *Team) Split(members []int) *Team {
	for _, pe := range members {
		if t.RankOf(pe) < 0 {
			panic(fmt.Sprintf("runtime: Split member PE%d not in parent team", pe))
		}
	}
	shared := t.CollectiveKind("team.split", func() any { return newTeamShared(t.env, members) }).(*teamShared)
	rank, ok := shared.rankOf[t.myPE]
	if !ok {
		return nil
	}
	return &Team{env: t.env, shared: shared, myPE: t.myPE, myRank: rank}
}

// SplitStrided creates the sub-team of every stride-th member starting at
// team rank offset (a common pattern for NUMA-style groupings).
func (t *Team) SplitStrided(offset, stride int) *Team {
	if stride <= 0 {
		panic("runtime: stride must be positive")
	}
	var members []int
	for r := offset; r < t.Size(); r += stride {
		members = append(members, t.WorldPE(r))
	}
	return t.Split(members)
}

// roundsFor returns ceil(log2 n).
func roundsFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}
