package runtime

// Pure flow-control state machines for the reliable wire layer: the
// per-(src,dst) AIMD send window and the Jacobson/Karn retransmission-
// timeout estimator. Both are plain value types mutated under the owning
// relPair's mutex — no atomics, no time sources — so the control laws are
// unit-testable against scripted ack traces (wire_window_test.go) apart
// from the concurrent machinery that drives them.

// sendWindow is the congestion window of one (src,dst) stream, counted in
// frames. Growth follows TCP's two regimes: slow start (one frame per
// acked frame, doubling per round trip) until ssthresh, then congestion
// avoidance (one frame per full window of acked frames — the "additive
// increase"). A retransmission halves the window ("multiplicative
// decrease"), but only once per recovery epoch: every frame outstanding
// at the moment of the loss belongs to the same congestion event, so
// their individual timeouts must not compound the penalty.
type sendWindow struct {
	cwnd     int // current window, frames
	ssthresh int // slow start → congestion avoidance crossover
	credit   int // acked frames accumulated toward the next +1
	min      int // floor the window can never drop below
	// recoverSeq marks the recovery epoch: losses of frames below it were
	// already charged. Set to the stream's nextSeq when a loss is charged.
	recoverSeq uint64
}

func newSendWindow(min, max int) sendWindow {
	if min < 1 {
		min = 1
	}
	return sendWindow{cwnd: min, ssthresh: max, min: min}
}

// onAck credits n cleanly acknowledged frames, growing the window up to
// max (the live cap; it may move between calls when the tuner adjusts it).
func (w *sendWindow) onAck(n, max int) {
	for i := 0; i < n; i++ {
		if w.cwnd >= max {
			w.cwnd = max
			w.credit = 0
			return
		}
		if w.cwnd < w.ssthresh {
			w.cwnd++ // slow start: +1 per acked frame
			continue
		}
		w.credit++ // congestion avoidance: +1 per cwnd acked frames
		if w.credit >= w.cwnd {
			w.credit = 0
			w.cwnd++
		}
	}
}

// onLoss charges one retransmission/timeout of frame seq against the
// window: halve, floored at min, at most once per recovery epoch.
// nextSeq is the stream's next unassigned sequence number; frames below
// it were in flight during this congestion event and are covered by the
// same charge. Reports whether the window actually halved.
//
// ssthresh is set to the pre-loss cwnd, so recovery slow-starts back to
// the old operating point in ~one round trip and only then resumes
// additive probing. (TCP sets ssthresh to the *post*-halve window, which
// makes every recovery linear from half rate — tuned for links where
// loss means congestion. A PGAS fabric's loss is dominated by
// non-congestive damage — the fault plans model exactly that — so a
// single damaged frame must not depress a fat stream for hundreds of
// round trips. Sustained loss still walks the window down: each new
// epoch halves from the current, lower, cwnd and lowers the re-ramp
// target with it.)
func (w *sendWindow) onLoss(seq, nextSeq uint64) bool {
	if seq < w.recoverSeq {
		return false // same recovery epoch: already charged
	}
	w.ssthresh = w.cwnd
	w.cwnd /= 2
	if w.cwnd < w.min {
		w.cwnd = w.min
	}
	w.credit = 0
	w.recoverSeq = nextSeq
	return true
}

// clamp bounds the window by the live cap (the tuner can shrink it below
// the current cwnd between decisions).
func (w *sendWindow) clamp(max int) {
	if w.cwnd > max {
		w.cwnd = max
	}
	if w.cwnd < w.min {
		w.cwnd = w.min
	}
}

// rttEstimator is the standard Jacobson/Karels smoothed round-trip
// estimator (RFC 6298 constants): srtt += (s-srtt)/8, rttvar +=
// (|s-srtt|-rttvar)/4, rto = srtt + 4·rttvar. Zero srtt means no samples
// yet. Karn's rule — never sample a retransmitted frame, its ack is
// ambiguous — is enforced by the caller via rttSampleNs.
type rttEstimator struct {
	srttNs   int64
	rttvarNs int64
}

func (e *rttEstimator) observe(sampleNs int64) {
	if sampleNs <= 0 {
		return
	}
	if e.srttNs == 0 {
		e.srttNs = sampleNs
		e.rttvarNs = sampleNs / 2
		return
	}
	d := sampleNs - e.srttNs
	if d < 0 {
		d = -d
	}
	e.rttvarNs += (d - e.rttvarNs) / 4
	e.srttNs += (sampleNs - e.srttNs) / 8
}

// rto returns the current retransmission timeout clamped to [min, max],
// or 0 when no samples have been observed yet. The timeout is floored at
// 2·srtt: with duplicate-ack fast retransmit as the primary loss
// detector, the timer is a tail-loss backstop, and on a steady link where
// rttvar converges toward zero the textbook srtt+4·rttvar collapses to
// ~srtt — a hair trigger that any ack-coalescing jitter would trip.
func (e *rttEstimator) rto(minNs, maxNs int64) int64 {
	if e.srttNs == 0 {
		return 0
	}
	rto := e.srttNs + 4*e.rttvarNs
	if m := 2 * e.srttNs; rto < m {
		rto = m
	}
	if rto < minNs {
		rto = minNs
	}
	if rto > maxNs {
		rto = maxNs
	}
	return rto
}

// rttSampleNs derives the Karn-valid round-trip sample for a frame
// released by a cumulative ack: the ack stamp minus the frame's last
// transmission, but only for frames never retransmitted (attempts == 0) —
// a retransmitted frame's ack cannot be attributed to a particular
// transmission, and sampling it would feed backoff-inflated values into
// the estimator. Returns 0 when no valid sample exists.
func rttSampleNs(ackNs, sentNs int64, attempts int) int64 {
	if attempts != 0 || sentNs <= 0 || ackNs <= sentNs {
		return 0
	}
	return ackNs - sentNs
}
