package runtime

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/scheduler"
	"repro/internal/serde"
	"repro/internal/slab"
	"repro/internal/telemetry"
)

// encPool recycles envelope body encoders on the launch/return/ack hot
// path; enqueue copies the body into the destination queue, so the
// encoder goes straight back to the pool after the call.
var encPool = sync.Pool{New: func() any { return serde.NewEncoder(256) }}

// maxPooledEncoderBytes bounds retained capacity so a one-off huge
// payload does not pin memory in a pool or queue spare.
const maxPooledEncoderBytes = 1 << 20

func getEncoder(w *World) *serde.Encoder {
	e := encPool.Get().(*serde.Encoder)
	e.Reset()
	e.Ctx = w
	return e
}

// putEncoder returns an encoder to the pool, reporting whether it was
// retained. Encoders grown past maxPooledEncoderBytes (a chunked
// collective or bulk payload) are dropped so one large message cannot
// permanently inflate pooled memory.
func putEncoder(e *serde.Encoder) bool {
	if e.Cap() > maxPooledEncoderBytes {
		return false
	}
	e.Ctx = nil
	encPool.Put(e)
	return true
}

// ActiveMessage is the interface user AM types implement — the analogue of
// the paper's LamellarAM trait with `async fn exec(self)`. Exec runs on
// the destination PE inside its thread pool; ctx identifies the executing
// world and the originating PE. The returned value (nil for none) is
// serialized back when the AM was launched with a *Return variant; if the
// returned value is itself an ActiveMessage it executes on the origin PE
// and its own result resolves the origin's future (the paper's "returning
// AMs" capability).
//
// AM types must be registered with RegisterAM (hand-written codec) or
// RegisterAMGob (reflection-based), the stand-in for the #[AmData]/#[am]
// procedural macros. Do not mutate an AM value after launching it: the
// local fast path executes the same instance without serialization, just
// as Rust's move semantics would.
type ActiveMessage interface {
	Exec(ctx *Context) any
}

// Context carries the execution environment into an AM handler.
type Context struct {
	// World is the executing PE's world handle (Lamellar::world).
	World *World
	// Src is the PE that launched this AM.
	Src int
}

// CurrentPE reports the PE executing the handler (Lamellar::current_pe).
func (c *Context) CurrentPE() int { return c.World.MyPE() }

// NumPEs reports the world size.
func (c *Context) NumPEs() int { return c.World.NumPEs() }

// RegisterAM registers an AM type with a hand-written codec. *T must
// implement ActiveMessage, serde.Marshaler and serde.Unmarshaler.
func RegisterAM[T any](name string) {
	var zero T
	if _, ok := any(&zero).(ActiveMessage); !ok {
		panic(fmt.Sprintf("runtime: *%T does not implement ActiveMessage", zero))
	}
	serde.Register[T](name)
}

// RegisterAMGob registers an AM type using the gob fallback codec.
func RegisterAMGob[T any](name string) {
	var zero T
	if _, ok := any(&zero).(ActiveMessage); !ok {
		panic(fmt.Sprintf("runtime: *%T does not implement ActiveMessage", zero))
	}
	serde.RegisterGob[T](name)
}

// RegisterAMPooled registers a high-rate AM type whose decoded instances
// recycle through a pool: after the handler runs and any return value is
// serialized, the runtime hands the instance back via serde.Recycle. *T
// must additionally implement serde.Recyclable, clearing every reference
// (in particular zero-copy views of the receive buffer) on reset.
func RegisterAMPooled[T any](name string) {
	var zero T
	if _, ok := any(&zero).(ActiveMessage); !ok {
		panic(fmt.Sprintf("runtime: *%T does not implement ActiveMessage", zero))
	}
	serde.RegisterPooled[T](name)
}

// Envelope kinds on the wire.
const (
	envExec   = 0 // uvarint reqID (0 = fire-and-forget), EncodeAny(am)
	envReturn = 1 // uvarint reqID, bool isErr, (string | EncodeAny(val))
	envAck    = 2 // uvarint count of completed AMs
)

// ----- launch API -------------------------------------------------------

// ExecAM launches am on pe without expecting a return value; completion is
// observable through WaitAll (world.exec_am_pe).
func (w *World) ExecAM(pe int, am ActiveMessage) {
	w.launch(pe, am, 0)
}

// ExecAMCallback launches am on pe and invokes cb exactly once with the
// handler's return value (or error). This is the allocation-free core the
// future-returning variants build on: cb may be a long-lived pooled
// callback (the array aggregation layer dispatches every batch through
// one), so the steady-state cost is a map insert that reuses buckets
// freed by earlier deletes. The callback runs on whichever goroutine
// processes the return envelope; it must not block.
func (w *World) ExecAMCallback(pe int, am ActiveMessage, cb func(any, error)) {
	req := w.nextReq.Add(1)
	// Telemetry: stamp the issue so resolution yields the AM round-trip
	// latency (issue → origin-side callback).
	var issueNs int64
	if telemetry.Enabled() {
		if tc := telemetry.C(); tc != nil {
			issueNs = tc.Now()
		}
	}
	w.retMu.Lock()
	w.returns[req] = retEntry{cb: cb, issueNs: issueNs}
	w.retMu.Unlock()
	w.launch(pe, am, req)
}

// ExecAMReturn launches am on pe and returns a future resolving with the
// handler's return value.
func (w *World) ExecAMReturn(pe int, am ActiveMessage) *scheduler.Future[any] {
	p, f := scheduler.NewPromise[any](w.pool)
	w.ExecAMCallback(pe, am, func(v any, err error) {
		if err != nil {
			p.CompleteErr(err)
		} else {
			p.Complete(v)
		}
	})
	return f
}

// ExecAMAll launches am on every PE in the world (world.exec_am_all).
func (w *World) ExecAMAll(am ActiveMessage) {
	for pe := 0; pe < w.NumPEs(); pe++ {
		w.launch(pe, am, 0)
	}
}

// ExecAMAllReturn launches am on every PE and resolves with the return
// values indexed by PE.
func (w *World) ExecAMAllReturn(am ActiveMessage) *scheduler.Future[[]any] {
	fs := make([]*scheduler.Future[any], w.NumPEs())
	for pe := 0; pe < w.NumPEs(); pe++ {
		fs[pe] = w.ExecAMReturn(pe, am)
	}
	return scheduler.All(w.pool, fs)
}

// ExecTyped launches an AM expecting a return of type R.
func ExecTyped[R any](w *World, pe int, am ActiveMessage) *scheduler.Future[R] {
	return scheduler.Map(w.ExecAMReturn(pe, am), func(v any) R {
		if v == nil {
			var zero R
			return zero
		}
		return v.(R)
	})
}

// launch routes an AM to pe. req 0 means no return expected.
func (w *World) launch(pe int, am ActiveMessage, req uint64) {
	w.issued.Add(1)
	if telemetry.Enabled() {
		if c := telemetry.C(); c != nil {
			c.Emit(telemetry.Event{
				TS: c.Now(), Kind: telemetry.EvAMIssue,
				PE: int32(w.pe), Worker: telemetry.TidRuntime,
				Arg1: int64(pe), Arg2: int64(req),
			})
		}
	}
	if pe == w.pe {
		// Local fast path: no serialization, mirroring the SMP Lamellae and
		// the local arm of exec_am_* on distributed lamellae.
		w.pool.Submit(func() {
			v, err := w.runHandler(am, w.pe)
			w.completed.Add(1)
			if req != 0 {
				w.resolveReturn(w.pe, req, v, err)
			}
		})
		return
	}
	w.enqueueAM(pe, req, am)
}

// enqueueAM encodes an exec envelope directly into pe's aggregation
// queue, skipping the intermediate body encoder and its extra copy —
// significant for multi-megabyte aggregated array payloads. The length
// prefix is fixed-width so it can be patched once the body size is known.
func (w *World) enqueueAM(pe int, req uint64, am ActiveMessage) {
	w.envSent.Add(1)
	q := w.queues[pe]
	cfg := w.env.cfg
	threshold := int(w.env.knobs.AggThresholdBytes.Load())
	var tc *telemetry.Collector
	var t0 int64
	if telemetry.Enabled() {
		if tc = telemetry.C(); tc != nil {
			t0 = tc.Now()
		}
	}
	q.mu.Lock()
	if q.count == 0 {
		q.openNs = t0
	}
	mark := q.enc.Len()
	q.enc.PutU32(0) // body length, patched below
	q.enc.Align(8)
	bodyStart := q.enc.Len()
	q.enc.PutU8(envExec)
	q.enc.PutUvarint(req)
	q.enc.Ctx = w
	if err := serde.EncodeAny(q.enc, am); err != nil {
		q.mu.Unlock()
		panic(fmt.Sprintf("runtime: AM type not registered: %v", err))
	}
	binary.LittleEndian.PutUint32(q.enc.Bytes()[mark:], uint32(q.enc.Len()-bodyStart))
	q.count++
	bySize := q.enc.Len() >= threshold
	full := bySize || (cfg.AggMaxOps > 0 && q.count >= cfg.AggMaxOps)
	var out *serde.Encoder
	var envs int
	var openNs int64
	if full {
		out = q.enc
		envs = q.count
		openNs = q.openNs
		q.enc = q.takeSpareLocked()
		q.count = 0
	}
	q.mu.Unlock()
	if tc != nil {
		tc.Emit(telemetry.Event{
			TS: t0, Dur: tc.Now() - t0, Kind: telemetry.EvAMEncode,
			PE: int32(w.pe), Worker: telemetry.TidRuntime, Arg1: int64(pe),
		})
	}
	if full {
		reason := telemetry.FlushSize
		if !bySize {
			reason = telemetry.FlushOps
		}
		w.noteBatchFlush(pe, reason, envs, openNs, tc)
		w.sendBatch(pe, out.Bytes())
		q.putSpare(out)
	}
}

// sendBatch hands one wire batch to the transport. Remote transports sit
// behind the reliability layer, which always accepts the frame (failures
// surface later through retry exhaustion, never here).
func (w *World) sendBatch(dst int, batch []byte) {
	w.batchBytes.Add(uint64(len(batch)))
	if err := w.env.lam.send(w.pe, dst, batch); err != nil {
		fmt.Fprintf(os.Stderr, "lamellar: PE%d: send to PE%d failed: %v\n", w.pe, dst, err)
	}
}

// runHandler executes an AM with panic containment, converting panics to
// errors so origin-side futures and wait_all cannot hang.
func (w *World) runHandler(am ActiveMessage, src int) (v any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("lamellar: AM %T panicked on PE%d: %v", am, w.pe, r)
			fmt.Println(err)
		}
	}()
	v = am.Exec(w.ctx(src))
	return v, nil
}

// resolveReturn completes the origin-side future for req. If the returned
// value is itself an AM, it executes here (on the origin) first.
func (w *World) resolveReturn(src int, req uint64, v any, err error) {
	w.retMu.Lock()
	e, ok := w.returns[req]
	delete(w.returns, req)
	w.retMu.Unlock()
	if telemetry.Enabled() {
		if c := telemetry.C(); c != nil {
			c.Emit(telemetry.Event{
				TS: c.Now(), Kind: telemetry.EvAMReturn,
				PE: int32(w.pe), Worker: telemetry.TidRuntime,
				Arg1: int64(src), Arg2: int64(req),
			})
			if ok && e.issueNs > 0 {
				c.Hist(w.pe, telemetry.HistAMRoundTrip).Record(c.Now() - e.issueNs)
			}
		}
	}
	if !ok {
		fmt.Printf("lamellar: PE%d: return for unknown request %d\n", w.pe, req)
		return
	}
	cb := e.cb
	if err == nil {
		if ram, ok := v.(ActiveMessage); ok {
			w.pool.Submit(func() {
				rv, rerr := w.runHandler(ram, src)
				cb(rv, rerr)
			})
			return
		}
	}
	cb(v, err)
}

// ----- aggregation and wire handling ------------------------------------

// enqueue appends an envelope body to dst's aggregation queue, flushing
// when the buffer crosses the aggregation threshold or the op cap.
func (w *World) enqueue(dst int, body []byte) {
	w.envSent.Add(1)
	q := w.queues[dst]
	cfg := w.env.cfg
	threshold := int(w.env.knobs.AggThresholdBytes.Load())
	var tc *telemetry.Collector
	var t0 int64
	if telemetry.Enabled() {
		if tc = telemetry.C(); tc != nil {
			t0 = tc.Now()
		}
	}
	q.mu.Lock()
	if q.count == 0 {
		q.openNs = t0
	}
	// Envelope bodies start 8-aligned in the batch so numeric payloads
	// inside them can be aliased (not copied) on the receiving side; the
	// fixed-width length prefix keeps framing identical to enqueueAM.
	q.enc.PutU32(uint32(len(body)))
	q.enc.Align(8)
	q.enc.PutRawBytes(body)
	q.count++
	bySize := q.enc.Len() >= threshold
	full := bySize || (cfg.AggMaxOps > 0 && q.count >= cfg.AggMaxOps)
	var out *serde.Encoder
	var envs int
	var openNs int64
	if full {
		out = q.enc
		envs = q.count
		openNs = q.openNs
		q.enc = q.takeSpareLocked()
		q.count = 0
	}
	q.mu.Unlock()
	if full {
		reason := telemetry.FlushSize
		if !bySize {
			reason = telemetry.FlushOps
		}
		w.noteBatchFlush(dst, reason, envs, openNs, tc)
		w.sendBatch(dst, out.Bytes())
		q.putSpare(out)
	}
}

// noteBatchFlush records one wire batch leaving this PE: always counted
// for Stats, and — when a telemetry session is active — emitted as an
// agg.flush span covering the queue's open→flush age, which also feeds
// the flush-interval histogram.
func (w *World) noteBatchFlush(dst int, reason telemetry.FlushReason, envs int, openNs int64, tc *telemetry.Collector) {
	w.batchesSent.Add(1)
	w.batchReasons[reason].Add(1)
	if tc == nil {
		return
	}
	now := tc.Now()
	var dur int64
	if openNs > 0 && now > openNs {
		dur = now - openNs
	}
	tc.Hist(w.pe, telemetry.HistFlushInterval).Record(dur)
	tc.Emit(telemetry.Event{
		TS: now - dur, Dur: dur, Kind: telemetry.EvBatchFlush, Sub: uint8(reason),
		PE: int32(w.pe), Worker: telemetry.TidRuntime,
		Arg1: int64(dst), Arg2: int64(envs),
	})
}

// flush drains dst's queue (and owed acks) onto the wire; reason says
// which flush cycle triggered it (drain vs background timer).
func (w *World) flush(dst int, reason telemetry.FlushReason) {
	if acks := w.pendingAcks[dst].Swap(0); acks > 0 {
		w.envSent.Add(1)
		body := getEncoder(w)
		body.PutU8(envAck)
		body.PutUvarint(acks)
		q := w.queues[dst]
		q.mu.Lock()
		q.enc.PutU32(uint32(body.Len()))
		q.enc.Align(8)
		q.enc.PutRawBytes(body.Bytes())
		q.count++
		q.mu.Unlock()
		putEncoder(body)
	}
	var tc *telemetry.Collector
	if telemetry.Enabled() {
		tc = telemetry.C()
	}
	q := w.queues[dst]
	q.mu.Lock()
	if q.count == 0 {
		q.mu.Unlock()
		return
	}
	out := q.enc
	envs := q.count
	openNs := q.openNs
	q.enc = q.takeSpareLocked()
	q.count = 0
	q.mu.Unlock()
	w.noteBatchFlush(dst, reason, envs, openNs, tc)
	w.sendBatch(dst, out.Bytes())
	q.putSpare(out)
}

// flushAll drains every destination queue, first letting higher layers
// (the array-op aggregation buffers) drain into the queues.
func (w *World) flushAll(reason telemetry.FlushReason) {
	w.runFlushHooks()
	for dst := 0; dst < w.NumPEs(); dst++ {
		if dst == w.pe {
			continue
		}
		w.flush(dst, reason)
	}
}

// flushLoop is the background flusher bounding sparse-traffic latency.
// With a telemetry session active, each tick also samples the PE's
// queue-depth and aggregation-occupancy gauges.
func (w *World) flushLoop() {
	defer w.env.flushWG.Done()
	ticker := time.NewTicker(w.env.cfg.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-w.env.stopFlush:
			w.flushAll(telemetry.FlushDrain)
			return
		case <-ticker.C:
			if telemetry.Enabled() {
				w.sampleGauges()
			}
			w.flushAll(telemetry.FlushTimer)
		}
	}
}

// sampleGauges emits the periodic queue-depth and agg-occupancy levels.
func (w *World) sampleGauges() {
	c := telemetry.C()
	if c == nil {
		return
	}
	now := c.Now()
	c.Emit(telemetry.Event{
		TS: now, Kind: telemetry.EvGauge, Sub: uint8(telemetry.GaugeQueueDepth),
		PE: int32(w.pe), Arg1: w.pool.Pending(),
	})
	queued := 0
	for _, q := range w.queues {
		q.mu.Lock()
		queued += q.count
		q.mu.Unlock()
	}
	c.Emit(telemetry.Event{
		TS: now, Kind: telemetry.EvGauge, Sub: uint8(telemetry.GaugeAggOccupancy),
		PE: int32(w.pe), Arg1: int64(queued),
	})
}

// rxState is a pooled batch-walk context. It owns the delivered wire
// buffer (via its slab ref) and carries the reusable decoders and task
// scratch for one batch walk, so steady-state batch receipt performs no
// heap allocation. The buffer refcount starts at 1 (the walk itself) and
// gains one per exec task decoded from the batch: exec AM payloads alias
// the batch through the serde zero-copy views, so the buffer may return
// to the slab only after the walk AND every such task has finished.
type rxState struct {
	w      *World
	src    int
	ref    slab.Ref
	batch  []byte
	refs   atomic.Int64
	dec    serde.Decoder // batch framing walker
	envDec serde.Decoder // per-envelope header decoder
	tasks  []scheduler.Task
	run    func() // cached method value, submitted to the pool
}

var rxPool sync.Pool // New set in init to break the method-value cycle

// execTask is one pooled exec-envelope task: decode the AM, run the
// handler, ship results, then recycle itself, the decoded AM (when its
// type is pooled), and its reference on the batch buffer.
type execTask struct {
	w    *World
	src  int
	req  uint64
	body []byte
	rx   *rxState
	dec  serde.Decoder
	run  func() // cached method value; the scheduler task
}

var execTaskPool sync.Pool

func init() {
	rxPool.New = func() any {
		rx := new(rxState)
		rx.run = rx.walk
		return rx
	}
	execTaskPool.New = func() any {
		t := new(execTask)
		t.run = t.exec
		return t
	}
}

// receiveBatch is the lamellae delivery callback: it schedules an
// asynchronous communication task that walks the batch, collecting one
// task per exec AM (deserialize + execute + return results, §III-C) and
// submitting them all through the executor's batch path — one injector
// shard-lock round trip per delivered batch instead of one per AM, with
// their relative FIFO order preserved. Ownership of ref (the batch
// buffer) transfers in; it is released when the walk and every exec task
// decoded from the batch have finished.
func (w *World) receiveBatch(src int, ref slab.Ref, batch []byte) {
	rx := rxPool.Get().(*rxState)
	rx.w, rx.src, rx.ref, rx.batch = w, src, ref, batch
	rx.refs.Store(1)
	w.pool.SubmitGlobal(rx.run)
}

func (rx *rxState) retain() { rx.refs.Add(1) }

// release drops one reference; the last one returns the wire buffer to
// the slab and the rxState to its pool.
func (rx *rxState) release() {
	if rx.refs.Add(-1) != 0 {
		return
	}
	rx.ref.Release()
	rx.w, rx.batch = nil, nil
	rxPool.Put(rx)
}

// walk processes one delivered batch (runs as a pool task).
func (rx *rxState) walk() {
	w, src := rx.w, rx.src
	rx.dec.Reset(rx.batch)
	dec := &rx.dec
	tasks := rx.tasks[:0]
	for dec.Remaining() > 0 {
		n := dec.U32()
		dec.Align(8)
		body := dec.RawBytes(int(n))
		if dec.Err() != nil {
			fmt.Printf("lamellar: PE%d: corrupt batch from PE%d: %v\n", w.pe, src, dec.Err())
			break
		}
		if t := w.handleEnvelope(rx, src, body); t != nil {
			tasks = append(tasks, t)
		}
	}
	w.pool.SubmitBatch(tasks)
	for i := range tasks {
		tasks[i] = nil
	}
	rx.tasks = tasks[:0]
	rx.release()
}

// handleEnvelope dispatches one envelope: returns and acks resolve
// inline; exec envelopes come back as a pooled task for the caller to
// submit (batched with the rest of the delivery). Return-envelope values
// never alias the batch — every return codec decodes into fresh memory —
// so only exec tasks need to hold a reference on the buffer.
func (w *World) handleEnvelope(rx *rxState, src int, body []byte) scheduler.Task {
	dec := &rx.envDec
	dec.Reset(body)
	switch kind := dec.U8(); kind {
	case envExec:
		req := dec.Uvarint()
		rest := dec.RawBytes(dec.Remaining())
		t := execTaskPool.Get().(*execTask)
		t.w, t.src, t.req, t.body, t.rx = w, src, req, rest, rx
		rx.retain()
		return t.run
	case envReturn:
		req := dec.Uvarint()
		isErr := dec.Bool()
		if isErr {
			msg := dec.String()
			w.resolveReturn(src, req, nil, errors.New(msg))
		} else {
			dec.Ctx = w.ctx(src)
			v, err := serde.DecodeAny(dec)
			dec.Ctx = nil
			w.resolveReturn(src, req, v, err)
		}
		w.envProcessed.Add(1)
	case envAck:
		n := dec.Uvarint()
		w.completed.Add(n)
		w.envProcessed.Add(1)
	default:
		fmt.Printf("lamellar: PE%d: unknown envelope kind %d from PE%d\n", w.pe, kind, src)
		w.envProcessed.Add(1)
	}
	return nil
}

// exec runs one exec envelope (as a pool task): decode, execute, return
// results, recycle.
func (t *execTask) exec() {
	w, src := t.w, t.src
	t.dec.Reset(t.body)
	t.dec.Ctx = w.ctx(src)
	v, err := serde.DecodeAny(&t.dec)
	t.dec.Ctx = nil
	if err != nil {
		w.finishRemote(src, t.req, nil, fmt.Errorf("lamellar: PE%d: decode AM from PE%d: %w", w.pe, src, err))
		t.recycle()
		return
	}
	am, ok := v.(ActiveMessage)
	if !ok {
		w.finishRemote(src, t.req, nil, fmt.Errorf("lamellar: PE%d: %T is not an ActiveMessage", w.pe, v))
		t.recycle()
		return
	}
	var tc *telemetry.Collector
	var t0 int64
	if telemetry.Enabled() {
		if tc = telemetry.C(); tc != nil {
			t0 = tc.Now()
		}
	}
	rv, rerr := w.runHandler(am, src)
	if tc != nil {
		tc.Emit(telemetry.Event{
			TS: t0, Dur: tc.Now() - t0, Kind: telemetry.EvAMExec,
			PE: int32(w.pe), Worker: telemetry.TidRuntime, Arg1: int64(src),
		})
	}
	w.finishRemote(src, t.req, rv, rerr)
	// The handler ran and the return value is serialized: the AM instance
	// (and any batch views it held) is dead — recycle pooled types.
	serde.Recycle(am)
	t.recycle()
}

// recycle returns the task to its pool and drops its batch reference.
func (t *execTask) recycle() {
	rx := t.rx
	t.w, t.rx, t.body = nil, nil, nil
	execTaskPool.Put(t)
	rx.release()
}

// finishRemote records completion of a remotely-launched AM: owes an ack
// to src and, when requested, sends the return value (or error) back.
func (w *World) finishRemote(src int, req uint64, v any, err error) {
	if req != 0 {
		body := getEncoder(w)
		body.PutU8(envReturn)
		body.PutUvarint(req)
		if err != nil {
			body.PutBool(true)
			body.PutString(err.Error())
		} else {
			body.PutBool(false)
			if eerr := serde.EncodeAny(body, v); eerr != nil {
				body.Reset()
				body.PutU8(envReturn)
				body.PutUvarint(req)
				body.PutBool(true)
				body.PutString(fmt.Sprintf("lamellar: return type not registered: %v", eerr))
			}
		}
		w.enqueue(src, body.Bytes())
		putEncoder(body)
	}
	w.pendingAcks[src].Add(1)
	w.envProcessed.Add(1)
}
