package runtime

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/diag"
	"repro/internal/scheduler"
	"repro/internal/serde"
	"repro/internal/slab"
	"repro/internal/telemetry"
	"repro/internal/telemetry/recorder"
)

// encPool recycles envelope body encoders on the launch/return/ack hot
// path; enqueue copies the body into the destination queue, so the
// encoder goes straight back to the pool after the call.
var encPool = sync.Pool{New: func() any { return serde.NewEncoder(256) }}

// maxPooledEncoderBytes bounds retained capacity so a one-off huge
// payload does not pin memory in a pool or queue spare.
const maxPooledEncoderBytes = 1 << 20

func getEncoder(w *World) *serde.Encoder {
	e := encPool.Get().(*serde.Encoder)
	e.Reset()
	e.Ctx = w
	return e
}

// putEncoder returns an encoder to the pool, reporting whether it was
// retained. Encoders grown past maxPooledEncoderBytes (a chunked
// collective or bulk payload) are dropped so one large message cannot
// permanently inflate pooled memory.
func putEncoder(e *serde.Encoder) bool {
	if e.Cap() > maxPooledEncoderBytes {
		return false
	}
	e.Ctx = nil
	encPool.Put(e)
	return true
}

// ActiveMessage is the interface user AM types implement — the analogue of
// the paper's LamellarAM trait with `async fn exec(self)`. Exec runs on
// the destination PE inside its thread pool; ctx identifies the executing
// world and the originating PE. The returned value (nil for none) is
// serialized back when the AM was launched with a *Return variant; if the
// returned value is itself an ActiveMessage it executes on the origin PE
// and its own result resolves the origin's future (the paper's "returning
// AMs" capability).
//
// AM types must be registered with RegisterAM (hand-written codec) or
// RegisterAMGob (reflection-based), the stand-in for the #[AmData]/#[am]
// procedural macros. Do not mutate an AM value after launching it: the
// local fast path executes the same instance without serialization, just
// as Rust's move semantics would.
type ActiveMessage interface {
	Exec(ctx *Context) any
}

// Context carries the execution environment into an AM handler.
type Context struct {
	// World is the executing PE's world handle (Lamellar::world).
	World *World
	// Src is the PE that launched this AM.
	Src int
	// span is the causal trace context of the executing AM (zero when no
	// telemetry session stamped the launch). Sub-AMs launched through the
	// Context methods below inherit it as their parent.
	span telemetry.SpanContext
}

// CurrentPE reports the PE executing the handler (Lamellar::current_pe).
func (c *Context) CurrentPE() int { return c.World.MyPE() }

// NumPEs reports the world size.
func (c *Context) NumPEs() int { return c.World.NumPEs() }

// ExecAM launches a sub-AM from inside a handler, causally linked to the
// executing AM's span (prefer this over c.World.ExecAM in handlers so
// cross-PE traces keep their parent links).
func (c *Context) ExecAM(pe int, am ActiveMessage) {
	c.World.launchFrom(pe, am, c.span)
}

// ExecAMCallback launches a causally-linked sub-AM with a return
// callback; see World.ExecAMCallback.
func (c *Context) ExecAMCallback(pe int, am ActiveMessage, cb func(any, error)) {
	c.World.execAMCallbackFrom(pe, am, cb, c.span)
}

// ExecAMReturn launches a causally-linked sub-AM returning a future; see
// World.ExecAMReturn.
func (c *Context) ExecAMReturn(pe int, am ActiveMessage) *scheduler.Future[any] {
	return c.World.execAMReturnFrom(pe, am, c.span)
}

// RegisterAM registers an AM type with a hand-written codec. *T must
// implement ActiveMessage, serde.Marshaler and serde.Unmarshaler.
func RegisterAM[T any](name string) {
	var zero T
	if _, ok := any(&zero).(ActiveMessage); !ok {
		panic(fmt.Sprintf("runtime: *%T does not implement ActiveMessage", zero))
	}
	serde.Register[T](name)
}

// RegisterAMGob registers an AM type using the gob fallback codec.
func RegisterAMGob[T any](name string) {
	var zero T
	if _, ok := any(&zero).(ActiveMessage); !ok {
		panic(fmt.Sprintf("runtime: *%T does not implement ActiveMessage", zero))
	}
	serde.RegisterGob[T](name)
}

// RegisterAMPooled registers a high-rate AM type whose decoded instances
// recycle through a pool: after the handler runs and any return value is
// serialized, the runtime hands the instance back via serde.Recycle. *T
// must additionally implement serde.Recyclable, clearing every reference
// (in particular zero-copy views of the receive buffer) on reset.
func RegisterAMPooled[T any](name string) {
	var zero T
	if _, ok := any(&zero).(ActiveMessage); !ok {
		panic(fmt.Sprintf("runtime: *%T does not implement ActiveMessage", zero))
	}
	serde.RegisterPooled[T](name)
}

// Envelope kinds on the wire.
const (
	envExec   = 0 // uvarint reqID (0 = fire-and-forget), EncodeAny(am)
	envReturn = 1 // uvarint reqID, bool isErr, (string | EncodeAny(val))
	envAck    = 2 // uvarint count of completed AMs

	// envFlagTrace marks an envelope carrying a causal trace context:
	// two uvarints (traceID, spanID) immediately follow the kind byte,
	// before the kind's normal payload. Only set while a telemetry
	// session is live, so the untraced wire format is byte-identical to
	// PR 2-6. Because the context rides inside the envelope body, it
	// survives reliable-wire retransmission and dedup for free — the
	// retained frame bytes are what get retransmitted.
	envFlagTrace = 0x80
)

// newSpan mints a child span of parent, or the zero SpanContext when no
// telemetry session is live (the untraced fast path: no ID allocation,
// no extra envelope bytes).
func newSpan(parent telemetry.SpanContext) telemetry.SpanContext {
	if !telemetry.Enabled() {
		return telemetry.SpanContext{}
	}
	sp := telemetry.SpanContext{Trace: parent.Trace, Span: telemetry.NewSpanID()}
	if sp.Trace == 0 {
		sp.Trace = sp.Span // root span: the trace is named after it
	}
	return sp
}

// ----- launch API -------------------------------------------------------

// ExecAM launches am on pe without expecting a return value; completion is
// observable through WaitAll (world.exec_am_pe).
func (w *World) ExecAM(pe int, am ActiveMessage) {
	w.launchFrom(pe, am, telemetry.SpanContext{})
}

// launchFrom launches a fire-and-forget AM as a child of parent.
func (w *World) launchFrom(pe int, am ActiveMessage, parent telemetry.SpanContext) {
	w.launchSpan(pe, am, 0, newSpan(parent), parent)
}

// ExecAMCallback launches am on pe and invokes cb exactly once with the
// handler's return value (or error). This is the allocation-free core the
// future-returning variants build on: cb may be a long-lived pooled
// callback (the array aggregation layer dispatches every batch through
// one), so the steady-state cost is a map insert that reuses buckets
// freed by earlier deletes. The callback runs on whichever goroutine
// processes the return envelope; it must not block.
func (w *World) ExecAMCallback(pe int, am ActiveMessage, cb func(any, error)) {
	w.execAMCallbackFrom(pe, am, cb, telemetry.SpanContext{})
}

func (w *World) execAMCallbackFrom(pe int, am ActiveMessage, cb func(any, error), parent telemetry.SpanContext) {
	req := w.nextReq.Add(1)
	sp := newSpan(parent)
	// The issue is stamped unconditionally: resolution feeds the always-on
	// flight recorder's round-trip digest (tuner + watchdog input), not
	// just a live telemetry session. One monotonic clock read per
	// return-style AM; fire-and-forget AMs pay nothing.
	issueNs := telemetry.MonoNow()
	w.retMu.Lock()
	w.returns[req] = retEntry{cb: cb, issueNs: issueNs, span: sp, dst: int32(pe)}
	w.retMu.Unlock()
	w.launchSpan(pe, am, req, sp, parent)
}

// ExecAMReturn launches am on pe and returns a future resolving with the
// handler's return value.
func (w *World) ExecAMReturn(pe int, am ActiveMessage) *scheduler.Future[any] {
	return w.execAMReturnFrom(pe, am, telemetry.SpanContext{})
}

func (w *World) execAMReturnFrom(pe int, am ActiveMessage, parent telemetry.SpanContext) *scheduler.Future[any] {
	p, f := scheduler.NewPromise[any](w.pool)
	w.execAMCallbackFrom(pe, am, func(v any, err error) {
		if err != nil {
			p.CompleteErr(err)
		} else {
			p.Complete(v)
		}
	}, parent)
	return f
}

// ExecAMAll launches am on every PE in the world (world.exec_am_all).
func (w *World) ExecAMAll(am ActiveMessage) {
	for pe := 0; pe < w.NumPEs(); pe++ {
		w.launchFrom(pe, am, telemetry.SpanContext{})
	}
}

// ExecAMAllReturn launches am on every PE and resolves with the return
// values indexed by PE.
func (w *World) ExecAMAllReturn(am ActiveMessage) *scheduler.Future[[]any] {
	fs := make([]*scheduler.Future[any], w.NumPEs())
	for pe := 0; pe < w.NumPEs(); pe++ {
		fs[pe] = w.ExecAMReturn(pe, am)
	}
	return scheduler.All(w.pool, fs)
}

// ExecTyped launches an AM expecting a return of type R.
func ExecTyped[R any](w *World, pe int, am ActiveMessage) *scheduler.Future[R] {
	return scheduler.Map(w.ExecAMReturn(pe, am), func(v any) R {
		if v == nil {
			var zero R
			return zero
		}
		return v.(R)
	})
}

// launchSpan routes an AM to pe as span sp (child of parent). req 0
// means no return expected.
func (w *World) launchSpan(pe int, am ActiveMessage, req uint64, sp, parent telemetry.SpanContext) {
	w.issued.Add(1)
	if telemetry.Enabled() {
		if c := telemetry.C(); c != nil {
			c.Emit(telemetry.Event{
				TS: c.Now(), Kind: telemetry.EvAMIssue,
				PE: int32(w.pe), Worker: telemetry.TidRuntime,
				Arg1: int64(pe), Arg2: int64(req),
				Flow: sp.Span, Parent: parent.Span,
			})
		}
	}
	if pe == w.pe {
		// Local fast path: no serialization, mirroring the SMP Lamellae and
		// the local arm of exec_am_* on distributed lamellae.
		w.pool.Submit(func() {
			v, err := w.runHandlerSpan(am, w.pe, sp)
			w.completed.Add(1)
			if req != 0 {
				w.resolveReturn(w.pe, req, v, err)
			}
		})
		return
	}
	w.enqueueAM(pe, req, am, sp)
}

// enqueueAM encodes an exec envelope directly into pe's aggregation
// queue, skipping the intermediate body encoder and its extra copy —
// significant for multi-megabyte aggregated array payloads. The length
// prefix is fixed-width so it can be patched once the body size is known.
func (w *World) enqueueAM(pe int, req uint64, am ActiveMessage, sp telemetry.SpanContext) {
	w.envSent.Add(1)
	q := w.queues[pe]
	cfg := w.env.cfg
	threshold := int(w.env.knobs.AggThresholdBytes.Load())
	var tc *telemetry.Collector
	var t0 int64
	if telemetry.Enabled() {
		if tc = telemetry.C(); tc != nil {
			t0 = tc.Now()
		}
	}
	q.mu.Lock()
	if q.count == 0 {
		// The batch-open stamp is taken even without a session: the flush
		// records batch age into the always-on recorder either way.
		if t0 != 0 {
			q.openNs = t0
		} else {
			q.openNs = telemetry.MonoNow()
		}
	}
	mark := q.enc.Len()
	q.enc.PutU32(0) // body length, patched below
	q.enc.Align(8)
	bodyStart := q.enc.Len()
	if sp.Valid() {
		q.enc.PutU8(envExec | envFlagTrace)
		q.enc.PutUvarint(sp.Trace)
		q.enc.PutUvarint(sp.Span)
	} else {
		q.enc.PutU8(envExec)
	}
	q.enc.PutUvarint(req)
	q.enc.Ctx = w
	if err := serde.EncodeAny(q.enc, am); err != nil {
		q.mu.Unlock()
		panic(fmt.Sprintf("runtime: AM type not registered: %v", err))
	}
	binary.LittleEndian.PutUint32(q.enc.Bytes()[mark:], uint32(q.enc.Len()-bodyStart))
	q.count++
	bySize := q.enc.Len() >= threshold
	full := bySize || (cfg.AggMaxOps > 0 && q.count >= cfg.AggMaxOps)
	var out *serde.Encoder
	var envs int
	var openNs int64
	if full {
		out = q.enc
		envs = q.count
		openNs = q.openNs
		q.enc = q.takeSpareLocked()
		q.count = 0
	}
	q.mu.Unlock()
	if tc != nil {
		tc.Emit(telemetry.Event{
			TS: t0, Dur: tc.Now() - t0, Kind: telemetry.EvAMEncode,
			PE: int32(w.pe), Worker: telemetry.TidRuntime, Arg1: int64(pe),
			Flow: sp.Span,
		})
	}
	if full {
		reason := telemetry.FlushSize
		if !bySize {
			reason = telemetry.FlushOps
		}
		w.noteBatchFlush(pe, reason, envs, openNs, tc)
		w.sendBatch(pe, out.Bytes())
		q.putSpare(out)
	}
}

// sendBatch hands one wire batch to the transport. Remote transports sit
// behind the reliability layer, which always accepts the frame (failures
// surface later through retry exhaustion, never here).
func (w *World) sendBatch(dst int, batch []byte) {
	w.batchBytes.Add(uint64(len(batch)))
	if err := w.env.lam.send(w.pe, dst, batch); err != nil {
		diag.Errorf("am", "PE%d: send to PE%d failed: %v", w.pe, dst, err)
	}
}

// runHandler executes an AM with panic containment, converting panics to
// errors so origin-side futures and wait_all cannot hang.
func (w *World) runHandler(am ActiveMessage, src int) (any, error) {
	return w.runHandlerCtx(am, w.ctx(src))
}

// runHandlerSpan is runHandler for a span-carrying execution: sub-AMs
// launched through the handler's Context inherit sp as their parent. The
// span-free path (no session at launch) reuses the world's prebuilt
// contexts and allocates nothing.
func (w *World) runHandlerSpan(am ActiveMessage, src int, sp telemetry.SpanContext) (any, error) {
	if !sp.Valid() {
		return w.runHandlerCtx(am, w.ctx(src))
	}
	ctx := Context{World: w, Src: src, span: sp}
	return w.runHandlerCtx(am, &ctx)
}

func (w *World) runHandlerCtx(am ActiveMessage, ctx *Context) (v any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("lamellar: AM %T panicked on PE%d: %v", am, w.pe, r)
			diag.Errorf("am", "%v", err)
		}
	}()
	v = am.Exec(ctx)
	return v, nil
}

// resolveReturn completes the origin-side future for req. If the returned
// value is itself an AM, it executes here (on the origin) first.
func (w *World) resolveReturn(src int, req uint64, v any, err error) {
	w.retMu.Lock()
	e, ok := w.returns[req]
	delete(w.returns, req)
	w.retMu.Unlock()
	if !ok {
		diag.Warnf("am", "PE%d: return for unknown request %d from PE%d", w.pe, req, src)
		return
	}
	if e.issueNs > 0 {
		now := telemetry.MonoNow()
		rt := now - e.issueNs
		// Round-trip latency always feeds the flight recorder; a live
		// session additionally gets the event + session histogram.
		w.env.rec.PE(w.pe).Record(recorder.HistRoundTrip, rt)
		if telemetry.Enabled() {
			if c := telemetry.C(); c != nil {
				c.Emit(telemetry.Event{
					TS: now, Kind: telemetry.EvAMReturn,
					PE: int32(w.pe), Worker: telemetry.TidRuntime,
					Arg1: int64(src), Arg2: int64(req),
					Flow: e.span.Span,
				})
				c.Hist(w.pe, telemetry.HistAMRoundTrip).Record(rt)
			}
		}
	}
	cb := e.cb
	if err == nil {
		if ram, isAM := v.(ActiveMessage); isAM {
			sp := e.span
			w.pool.Submit(func() {
				rv, rerr := w.runHandlerSpan(ram, src, sp)
				cb(rv, rerr)
			})
			return
		}
	}
	cb(v, err)
}

// ----- aggregation and wire handling ------------------------------------

// enqueue appends an envelope body to dst's aggregation queue, flushing
// when the buffer crosses the aggregation threshold or the op cap.
func (w *World) enqueue(dst int, body []byte) {
	w.envSent.Add(1)
	q := w.queues[dst]
	cfg := w.env.cfg
	threshold := int(w.env.knobs.AggThresholdBytes.Load())
	var tc *telemetry.Collector
	var t0 int64
	if telemetry.Enabled() {
		if tc = telemetry.C(); tc != nil {
			t0 = tc.Now()
		}
	}
	q.mu.Lock()
	if q.count == 0 {
		if t0 != 0 {
			q.openNs = t0
		} else {
			q.openNs = telemetry.MonoNow()
		}
	}
	// Envelope bodies start 8-aligned in the batch so numeric payloads
	// inside them can be aliased (not copied) on the receiving side; the
	// fixed-width length prefix keeps framing identical to enqueueAM.
	q.enc.PutU32(uint32(len(body)))
	q.enc.Align(8)
	q.enc.PutRawBytes(body)
	q.count++
	bySize := q.enc.Len() >= threshold
	full := bySize || (cfg.AggMaxOps > 0 && q.count >= cfg.AggMaxOps)
	var out *serde.Encoder
	var envs int
	var openNs int64
	if full {
		out = q.enc
		envs = q.count
		openNs = q.openNs
		q.enc = q.takeSpareLocked()
		q.count = 0
	}
	q.mu.Unlock()
	if full {
		reason := telemetry.FlushSize
		if !bySize {
			reason = telemetry.FlushOps
		}
		w.noteBatchFlush(dst, reason, envs, openNs, tc)
		w.sendBatch(dst, out.Bytes())
		q.putSpare(out)
	}
}

// noteBatchFlush records one wire batch leaving this PE: always counted
// for Stats and recorded into the flight recorder's batch-age digest
// (tuner input in every mode), and — when a telemetry session is active
// — emitted as an agg.flush span covering the queue's open→flush age,
// which also feeds the session's flush-interval histogram.
func (w *World) noteBatchFlush(dst int, reason telemetry.FlushReason, envs int, openNs int64, tc *telemetry.Collector) {
	w.batchesSent.Add(1)
	w.batchReasons[reason].Add(1)
	now := telemetry.MonoNow() // same clock as tc.Now()
	var dur int64
	if openNs > 0 && now > openNs {
		dur = now - openNs
	}
	w.env.rec.PE(w.pe).Record(recorder.HistBatchAge, dur)
	if tc == nil {
		return
	}
	tc.Hist(w.pe, telemetry.HistFlushInterval).Record(dur)
	tc.Emit(telemetry.Event{
		TS: now - dur, Dur: dur, Kind: telemetry.EvBatchFlush, Sub: uint8(reason),
		PE: int32(w.pe), Worker: telemetry.TidRuntime,
		Arg1: int64(dst), Arg2: int64(envs),
	})
}

// flush drains dst's queue (and owed acks) onto the wire; reason says
// which flush cycle triggered it (drain vs background timer).
func (w *World) flush(dst int, reason telemetry.FlushReason) {
	if acks := w.pendingAcks[dst].Swap(0); acks > 0 {
		w.envSent.Add(1)
		body := getEncoder(w)
		body.PutU8(envAck)
		body.PutUvarint(acks)
		q := w.queues[dst]
		q.mu.Lock()
		if q.count == 0 {
			q.openNs = telemetry.MonoNow()
		}
		q.enc.PutU32(uint32(body.Len()))
		q.enc.Align(8)
		q.enc.PutRawBytes(body.Bytes())
		q.count++
		q.mu.Unlock()
		putEncoder(body)
	}
	var tc *telemetry.Collector
	if telemetry.Enabled() {
		tc = telemetry.C()
	}
	q := w.queues[dst]
	q.mu.Lock()
	if q.count == 0 {
		q.mu.Unlock()
		return
	}
	out := q.enc
	envs := q.count
	openNs := q.openNs
	q.enc = q.takeSpareLocked()
	q.count = 0
	q.mu.Unlock()
	w.noteBatchFlush(dst, reason, envs, openNs, tc)
	w.sendBatch(dst, out.Bytes())
	q.putSpare(out)
}

// flushAll drains every destination queue, first letting higher layers
// (the array-op aggregation buffers) drain into the queues.
func (w *World) flushAll(reason telemetry.FlushReason) {
	w.runFlushHooks()
	for dst := 0; dst < w.NumPEs(); dst++ {
		if dst == w.pe {
			continue
		}
		w.flush(dst, reason)
	}
}

// flushLoop is the background flusher bounding sparse-traffic latency.
// With a telemetry session active, each tick also samples the PE's
// queue-depth and aggregation-occupancy gauges.
func (w *World) flushLoop() {
	defer w.env.flushWG.Done()
	ticker := time.NewTicker(w.env.cfg.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-w.env.stopFlush:
			w.flushAll(telemetry.FlushDrain)
			return
		case <-ticker.C:
			if telemetry.Enabled() {
				w.sampleGauges()
			}
			w.flushAll(telemetry.FlushTimer)
		}
	}
}

// sampleGauges emits the periodic queue-depth and agg-occupancy levels,
// plus — on worlds with a reliable wire — the live AIMD send-window and
// in-flight/parked frame levels summed across this PE's streams.
func (w *World) sampleGauges() {
	c := telemetry.C()
	if c == nil {
		return
	}
	now := c.Now()
	c.Emit(telemetry.Event{
		TS: now, Kind: telemetry.EvGauge, Sub: uint8(telemetry.GaugeQueueDepth),
		PE: int32(w.pe), Arg1: w.pool.Pending(),
	})
	queued := 0
	for _, q := range w.queues {
		q.mu.Lock()
		queued += q.count
		q.mu.Unlock()
	}
	c.Emit(telemetry.Event{
		TS: now, Kind: telemetry.EvGauge, Sub: uint8(telemetry.GaugeAggOccupancy),
		PE: int32(w.pe), Arg1: int64(queued),
	})
	if rel := w.env.rel; rel != nil {
		window, inflight, parked := rel.windowStats(w.pe)
		c.Emit(telemetry.Event{
			TS: now, Kind: telemetry.EvGauge, Sub: uint8(telemetry.GaugeWireWindow),
			PE: int32(w.pe), Arg1: int64(window),
		})
		c.Emit(telemetry.Event{
			TS: now, Kind: telemetry.EvGauge, Sub: uint8(telemetry.GaugeWireInflight),
			PE: int32(w.pe), Arg1: int64(inflight), Arg2: int64(parked),
		})
	}
}

// rxState is a pooled batch-walk context. It owns the delivered wire
// buffer (via its slab ref) and carries the reusable decoders and task
// scratch for one batch walk, so steady-state batch receipt performs no
// heap allocation. The buffer refcount starts at 1 (the walk itself) and
// gains one per exec task decoded from the batch: exec AM payloads alias
// the batch through the serde zero-copy views, so the buffer may return
// to the slab only after the walk AND every such task has finished.
type rxState struct {
	w      *World
	src    int
	ref    slab.Ref
	batch  []byte
	refs   atomic.Int64
	dec    serde.Decoder // batch framing walker
	envDec serde.Decoder // per-envelope header decoder
	tasks  []scheduler.Task
	run    func() // cached method value, submitted to the pool
}

var rxPool sync.Pool // New set in init to break the method-value cycle

// execTask is one pooled exec-envelope task: decode the AM, run the
// handler, ship results, then recycle itself, the decoded AM (when its
// type is pooled), and its reference on the batch buffer.
type execTask struct {
	w    *World
	src  int
	req  uint64
	body []byte
	rx   *rxState
	span telemetry.SpanContext
	ctx  Context // reused span-carrying handler context (zero alloc)
	dec  serde.Decoder
	run  func() // cached method value; the scheduler task
}

var execTaskPool sync.Pool

func init() {
	rxPool.New = func() any {
		rx := new(rxState)
		rx.run = rx.walk
		return rx
	}
	execTaskPool.New = func() any {
		t := new(execTask)
		t.run = t.exec
		return t
	}
}

// receiveBatch is the lamellae delivery callback: it schedules an
// asynchronous communication task that walks the batch, collecting one
// task per exec AM (deserialize + execute + return results, §III-C) and
// submitting them all through the executor's batch path — one injector
// shard-lock round trip per delivered batch instead of one per AM, with
// their relative FIFO order preserved. Ownership of ref (the batch
// buffer) transfers in; it is released when the walk and every exec task
// decoded from the batch have finished.
func (w *World) receiveBatch(src int, ref slab.Ref, batch []byte) {
	rx := rxPool.Get().(*rxState)
	rx.w, rx.src, rx.ref, rx.batch = w, src, ref, batch
	rx.refs.Store(1)
	w.pool.SubmitGlobal(rx.run)
}

func (rx *rxState) retain() { rx.refs.Add(1) }

// release drops one reference; the last one returns the wire buffer to
// the slab and the rxState to its pool.
func (rx *rxState) release() {
	if rx.refs.Add(-1) != 0 {
		return
	}
	rx.ref.Release()
	rx.w, rx.batch = nil, nil
	rxPool.Put(rx)
}

// walk processes one delivered batch (runs as a pool task).
func (rx *rxState) walk() {
	w, src := rx.w, rx.src
	rx.dec.Reset(rx.batch)
	dec := &rx.dec
	tasks := rx.tasks[:0]
	for dec.Remaining() > 0 {
		n := dec.U32()
		dec.Align(8)
		body := dec.RawBytes(int(n))
		if dec.Err() != nil {
			diag.Errorf("am", "PE%d: corrupt batch from PE%d: %v", w.pe, src, dec.Err())
			break
		}
		if t := w.handleEnvelope(rx, src, body); t != nil {
			tasks = append(tasks, t)
		}
	}
	w.pool.SubmitBatch(tasks)
	for i := range tasks {
		tasks[i] = nil
	}
	rx.tasks = tasks[:0]
	rx.release()
}

// handleEnvelope dispatches one envelope: returns and acks resolve
// inline; exec envelopes come back as a pooled task for the caller to
// submit (batched with the rest of the delivery). Return-envelope values
// never alias the batch — every return codec decodes into fresh memory —
// so only exec tasks need to hold a reference on the buffer.
func (w *World) handleEnvelope(rx *rxState, src int, body []byte) scheduler.Task {
	dec := &rx.envDec
	dec.Reset(body)
	kind := dec.U8()
	var sp telemetry.SpanContext
	if kind&envFlagTrace != 0 {
		sp.Trace = dec.Uvarint()
		sp.Span = dec.Uvarint()
		kind &^= envFlagTrace
	}
	switch kind {
	case envExec:
		req := dec.Uvarint()
		rest := dec.RawBytes(dec.Remaining())
		t := execTaskPool.Get().(*execTask)
		t.w, t.src, t.req, t.body, t.rx, t.span = w, src, req, rest, rx, sp
		rx.retain()
		return t.run
	case envReturn:
		req := dec.Uvarint()
		isErr := dec.Bool()
		if isErr {
			msg := dec.String()
			w.resolveReturn(src, req, nil, errors.New(msg))
		} else {
			dec.Ctx = w.ctx(src)
			v, err := serde.DecodeAny(dec)
			dec.Ctx = nil
			w.resolveReturn(src, req, v, err)
		}
		w.envProcessed.Add(1)
	case envAck:
		n := dec.Uvarint()
		w.completed.Add(n)
		w.envProcessed.Add(1)
	default:
		diag.Warnf("am", "PE%d: unknown envelope kind %d from PE%d", w.pe, kind, src)
		w.envProcessed.Add(1)
	}
	return nil
}

// exec runs one exec envelope (as a pool task): decode, execute, return
// results, recycle.
func (t *execTask) exec() {
	w, src := t.w, t.src
	t.dec.Reset(t.body)
	t.dec.Ctx = w.ctx(src)
	v, err := serde.DecodeAny(&t.dec)
	t.dec.Ctx = nil
	if err != nil {
		w.finishRemote(src, t.req, nil, fmt.Errorf("lamellar: PE%d: decode AM from PE%d: %w", w.pe, src, err))
		t.recycle()
		return
	}
	am, ok := v.(ActiveMessage)
	if !ok {
		w.finishRemote(src, t.req, nil, fmt.Errorf("lamellar: PE%d: %T is not an ActiveMessage", w.pe, v))
		t.recycle()
		return
	}
	var tc *telemetry.Collector
	var t0 int64
	if telemetry.Enabled() {
		if tc = telemetry.C(); tc != nil {
			t0 = tc.Now()
		}
	}
	var rv any
	var rerr error
	if t.span.Valid() {
		// Reuse the task's embedded Context so span-carrying executions
		// stay allocation-free; sub-AMs launched through it inherit the
		// wire-delivered span as parent.
		t.ctx = Context{World: w, Src: src, span: t.span}
		rv, rerr = w.runHandlerCtx(am, &t.ctx)
	} else {
		rv, rerr = w.runHandler(am, src)
	}
	if tc != nil {
		tc.Emit(telemetry.Event{
			TS: t0, Dur: tc.Now() - t0, Kind: telemetry.EvAMExec,
			PE: int32(w.pe), Worker: telemetry.TidRuntime, Arg1: int64(src),
			Flow: t.span.Span,
		})
	}
	w.finishRemote(src, t.req, rv, rerr)
	// The handler ran and the return value is serialized: the AM instance
	// (and any batch views it held) is dead — recycle pooled types.
	serde.Recycle(am)
	t.recycle()
}

// recycle returns the task to its pool and drops its batch reference.
func (t *execTask) recycle() {
	rx := t.rx
	t.w, t.rx, t.body = nil, nil, nil
	t.span = telemetry.SpanContext{}
	t.ctx = Context{}
	execTaskPool.Put(t)
	rx.release()
}

// finishRemote records completion of a remotely-launched AM: owes an ack
// to src and, when requested, sends the return value (or error) back.
func (w *World) finishRemote(src int, req uint64, v any, err error) {
	if req != 0 {
		body := getEncoder(w)
		body.PutU8(envReturn)
		body.PutUvarint(req)
		if err != nil {
			body.PutBool(true)
			body.PutString(err.Error())
		} else {
			body.PutBool(false)
			if eerr := serde.EncodeAny(body, v); eerr != nil {
				body.Reset()
				body.PutU8(envReturn)
				body.PutUvarint(req)
				body.PutBool(true)
				body.PutString(fmt.Sprintf("lamellar: return type not registered: %v", eerr))
			}
		}
		w.enqueue(src, body.Bytes())
		putEncoder(body)
	}
	w.pendingAcks[src].Add(1)
	w.envProcessed.Add(1)
}
