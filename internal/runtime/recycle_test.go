package runtime

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/serde"
	"repro/internal/slab"
)

// sumAM carries a payload slice plus its expected checksum; the handler
// reads the payload through the zero-copy aligned view — aliasing the
// delivered wire buffer — and verifies the sum. Any use-after-recycle of
// that buffer (a frame returned to the slab while a retransmission or an
// executing handler still reads it) shows up as a checksum mismatch, and
// slab check mode additionally poisons recycled buffers so stale reads
// cannot accidentally still hold the right bytes.
type sumAM struct {
	Data []uint64
	Want uint64
}

var (
	sumOK  atomic.Uint64
	sumBad atomic.Uint64
)

func (a *sumAM) MarshalLamellar(e *serde.Encoder) {
	serde.PutNumericSliceAligned(e, a.Data)
	e.PutUvarint(a.Want)
}

func (a *sumAM) UnmarshalLamellar(d *serde.Decoder) error {
	a.Data = serde.NumericSliceViewAligned[uint64](d)
	a.Want = d.Uvarint()
	return d.Err()
}

func (a *sumAM) Exec(ctx *Context) any {
	var sum uint64
	for _, v := range a.Data {
		sum += v
	}
	if sum == a.Want {
		sumOK.Add(1)
	} else {
		sumBad.Add(1)
	}
	return nil
}

func init() { RegisterAM[sumAM]("test.sum") }

// Satellite: retransmission racing frame recycling must never observe a
// reused buffer. The fault plan drops, duplicates, reorders, and delays
// frames, so retained frames are retransmitted while cumulative acks are
// concurrently releasing them back to the slab; the generation-counter
// guard panics on any frame used after recycle, check mode poisons
// recycled slabs, and the payload checksums catch silent corruption.
// Run with -race: the interleavings are the point.
func TestFrameRecycleRetransmitRace(t *testing.T) {
	slab.SetCheckMode(true)
	defer slab.SetCheckMode(false)
	sumOK.Store(0)
	sumBad.Store(0)

	plan := fabric.NewFaultPlan(0xF8A3E).SetDefault(fabric.LinkFaults{
		DropRate:    0.05,
		DupRate:     0.05,
		ReorderRate: 0.05,
		DelayRate:   0.05,
		Delay:       200 * time.Microsecond,
	})
	cfg := Config{
		PEs: 3, WorkersPerPE: 2, Lamellae: LamellaeShmem,
		Faults:        plan,
		RetryInterval: 2 * time.Millisecond, // aggressive: force live retransmits
	}
	const amsPerPE = 400
	err := Run(cfg, func(w *World) {
		data := make([]uint64, 128)
		var want uint64
		for i := range data {
			data[i] = uint64(w.MyPE()*1000 + i)
			want += data[i]
		}
		for i := 0; i < amsPerPE; i++ {
			w.ExecAM((w.MyPE()+1+i)%w.NumPEs(), &sumAM{Data: data, Want: want})
			if i%64 == 0 {
				w.flushAll(0)
			}
		}
		w.WaitAll()
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad := sumBad.Load(); bad != 0 {
		t.Fatalf("%d AMs observed corrupted payloads (use-after-recycle)", bad)
	}
	if ok := sumOK.Load(); ok != 3*amsPerPE {
		t.Fatalf("executed %d AMs, want %d", ok, 3*amsPerPE)
	}
}

// Satellite: pooled encoders must not retain oversized backing buffers —
// one chunked collective payload must not permanently inflate the pool.
func TestEncoderPoolCapsRetainedCapacity(t *testing.T) {
	w := &World{}
	small := getEncoder(w)
	small.PutBytes(make([]byte, 1024))
	if !putEncoder(small) {
		t.Fatal("small encoder rejected from pool")
	}
	big := getEncoder(w)
	for big.Cap() <= maxPooledEncoderBytes {
		big.PutBytes(make([]byte, 1<<20))
	}
	if putEncoder(big) {
		t.Fatalf("encoder with cap %d (> %d) was pooled", big.Cap(), maxPooledEncoderBytes)
	}
}

// The wire-frame slab classes must round-trip without retaining
// non-power-of-two capacities and Get must zero-fill class 0 for n <= 0.
func TestSlabGetPutClasses(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 4096, 100_000} {
		b := slab.Get(n)
		if len(b) != n {
			t.Fatalf("Get(%d) returned len %d", n, len(b))
		}
		slab.Put(b)
	}
	if b := slab.Get(0); b != nil && len(b) != 0 {
		t.Fatalf("Get(0) returned len %d", len(b))
	}
}

// Frames abandoned by the delivery timeout must not hang WaitAll, and
// their buffers must stay valid for the reconciliation decode (they are
// intentionally left to the GC, never recycled) — guarded here by the
// partition test still passing under slab check mode.
func TestAbandonedFramesNotRecycledUnderCheckMode(t *testing.T) {
	slab.SetCheckMode(true)
	defer slab.SetCheckMode(false)
	plan := fabric.NewFaultPlan(77)
	plan.Partition(0, 1, true)
	cfg := Config{
		PEs: 2, WorkersPerPE: 2, Lamellae: LamellaeShmem,
		Faults:          plan,
		RetryInterval:   time.Millisecond,
		DeliveryTimeout: 50 * time.Millisecond,
	}
	err := Run(cfg, func(w *World) {
		if w.MyPE() == 0 {
			f := ExecTyped[uint64](w, 1, &incrAM{Delta: 1})
			if _, ferr := BlockOn(w, f); ferr == nil {
				panic("partitioned AM resolved without error")
			} else if !strings.Contains(ferr.Error(), "delivery") {
				panic("unexpected error: " + ferr.Error())
			}
		}
		w.WaitAll()
	})
	if err != nil {
		t.Fatal(err)
	}
}
