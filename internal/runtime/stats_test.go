package runtime

import (
	"os"
	"strings"
	"testing"
)

func TestStatsCounters(t *testing.T) {
	err := Run(Config{PEs: 2, WorkersPerPE: 1, Lamellae: LamellaeSim}, func(w *World) {
		if w.MyPE() == 0 {
			for i := 0; i < 10; i++ {
				w.ExecAM(1, &incrAM{Delta: 1})
			}
			w.WaitAll()
			s := w.Stats()
			if s.Issued != 10 || s.Completed != 10 {
				panic("issued/completed mismatch")
			}
			if s.EnvelopesSent < 10 {
				panic("envelope count too low")
			}
			if s.Fabric.Msgs == 0 {
				panic("no fabric traffic recorded")
			}
			if !strings.Contains(s.String(), "PE0") {
				panic("String() malformed")
			}
		}
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestApplyEnv(t *testing.T) {
	set := func(k, v string) {
		old, had := os.LookupEnv(k)
		os.Setenv(k, v)
		t.Cleanup(func() {
			if had {
				os.Setenv(k, old)
			} else {
				os.Unsetenv(k)
			}
		})
	}
	set("LAMELLAR_THREADS", "7")
	set("LAMELLAR_AGG_SIZE", "12345")
	set("LAMELLAR_OP_BATCH", "99")
	set("LAMELLAR_LAMELLAE", "shmem")
	set("LAMELLAR_RING_SLOTS", "33")
	c := Config{}.ApplyEnv()
	if c.WorkersPerPE != 7 || c.AggThresholdBytes != 12345 || c.ArrayBatchSize != 99 ||
		c.Lamellae != LamellaeShmem || c.RingSlots != 33 {
		t.Errorf("env not applied: %+v", c)
	}
	// malformed values are ignored
	set("LAMELLAR_THREADS", "not-a-number")
	c2 := Config{WorkersPerPE: 3}.ApplyEnv()
	if c2.WorkersPerPE != 3 {
		t.Errorf("malformed env overwrote value: %+v", c2)
	}
}
