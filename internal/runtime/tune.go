package runtime

import (
	"time"

	"repro/internal/telemetry"
	"repro/internal/tuning"
)

// tuneSnap is one cumulative reading of every counter the adaptive
// controller samples; consecutive snapshots difference into a
// tuning.Sample window.
type tuneSnap struct {
	wireBatches uint64
	wireBytes   uint64
	wireReasons [telemetry.NumFlushReasons]uint64
	aggBatches  uint64
	aggOps      uint64
	aggBytes    uint64
	aggReasons  [telemetry.NumFlushReasons]uint64
	frames      uint64
	retries     uint64
}

func (env *worldEnv) tuneSnapshot() tuneSnap {
	var s tuneSnap
	for _, w := range env.worlds {
		s.wireBatches += w.batchesSent.Load()
		s.wireBytes += w.batchBytes.Load()
		s.aggBatches += w.aggBatches.Load()
		s.aggOps += w.aggOps.Load()
		s.aggBytes += w.aggBytes.Load()
		for i := range s.wireReasons {
			s.wireReasons[i] += w.batchReasons[i].Load()
			s.aggReasons[i] += w.aggReasons[i].Load()
		}
	}
	if env.rel != nil {
		for pe := range env.rel.counters {
			c := &env.rel.counters[pe]
			s.frames += c.frames.Load()
			s.retries += c.retries.Load()
		}
	}
	return s
}

// tuneLoop is the adaptive controller driver: every few flush intervals
// it differences the flush-reason/wire counters into a sample window,
// asks tuning.Decide for the next knob setting, emits one EvTuneDecision
// per moved knob, and (in "on" mode only) publishes the setting to the
// live cells the hot paths read. Runs on env.flushWG; stopFlush ends it.
func (env *worldEnv) tuneLoop() {
	defer env.flushWG.Done()
	period := 10 * env.cfg.FlushInterval
	if period < time.Millisecond {
		period = time.Millisecond
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()

	prev := env.tuneSnapshot()
	cur := env.knobs.Load()
	for {
		select {
		case <-env.stopFlush:
			return
		case <-ticker.C:
		}
		now := env.tuneSnapshot()
		sample := tuning.Sample{
			Elapsed:     period,
			WireBatches: now.wireBatches - prev.wireBatches,
			WireBytes:   now.wireBytes - prev.wireBytes,
			AggBatches:  now.aggBatches - prev.aggBatches,
			AggOps:      now.aggOps - prev.aggOps,
			AggBytes:    now.aggBytes - prev.aggBytes,
			Retries:     now.retries - prev.retries,
			FramesSent:  now.frames - prev.frames,
		}
		for i := range sample.WireReasons {
			sample.WireReasons[i] = now.wireReasons[i] - prev.wireReasons[i]
			sample.AggReasons[i] = now.aggReasons[i] - prev.aggReasons[i]
		}
		if tc := env.tele; tc != nil {
			// Cumulative digests; Decide only reads the p90 bound, for
			// which a cumulative view is the conservative choice.
			for pe := 0; pe < tc.NumPEs(); pe++ {
				if s := tc.Hist(pe, telemetry.HistAMRoundTrip).Summary(); s.P90 > sample.RoundTrip.P90 {
					sample.RoundTrip = s
				}
				if s := tc.Hist(pe, telemetry.HistFlushInterval).Summary(); s.P90 > sample.FlushAge.P90 {
					sample.FlushAge = s
				}
			}
		}
		prev = now

		d := tuning.Decide(sample, cur, env.tuneLim)
		if tc := env.tele; tc != nil {
			ts := tc.Now()
			for k := 0; k < tuning.NumKnobs; k++ {
				if !d.Changed[k] {
					continue
				}
				newV, oldV := knobValue(d.Knobs, tuning.Knob(k)), knobValue(cur, tuning.Knob(k))
				tc.Emit(telemetry.Event{
					TS: ts, Kind: telemetry.EvTuneDecision,
					PE: 0, Worker: telemetry.TidRuntime,
					Sub: uint8(k), Arg1: newV, Arg2: oldV,
				})
			}
		}
		cur = d.Knobs
		if env.tuneMode == tuning.ModeOn {
			env.knobs.Store(cur)
		}
	}
}

// knobValue projects one knob out of a Knobs setting for telemetry.
func knobValue(k tuning.Knobs, id tuning.Knob) int64 {
	switch id {
	case tuning.KnobAggThresholdBytes:
		return int64(k.AggThresholdBytes)
	case tuning.KnobAggBufSize:
		return int64(k.AggBufSize)
	case tuning.KnobAggFlushOps:
		return int64(k.AggFlushOps)
	case tuning.KnobRetryFloor:
		return int64(k.RetryFloor)
	}
	return 0
}
