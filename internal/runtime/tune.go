package runtime

import (
	"time"

	"repro/internal/telemetry"
	"repro/internal/telemetry/recorder"
	"repro/internal/tuning"
)

// tuneSnap is one cumulative reading of every counter the adaptive
// controller samples; consecutive snapshots difference into a
// tuning.Sample window.
type tuneSnap struct {
	wireBatches uint64
	wireBytes   uint64
	wireReasons [telemetry.NumFlushReasons]uint64
	aggBatches  uint64
	aggOps      uint64
	aggBytes    uint64
	aggReasons  [telemetry.NumFlushReasons]uint64
	frames      uint64
	retries     uint64
	parked      uint64
}

func (env *worldEnv) tuneSnapshot() tuneSnap {
	var s tuneSnap
	for _, w := range env.worlds {
		s.wireBatches += w.batchesSent.Load()
		s.wireBytes += w.batchBytes.Load()
		s.aggBatches += w.aggBatches.Load()
		s.aggOps += w.aggOps.Load()
		s.aggBytes += w.aggBytes.Load()
		for i := range s.wireReasons {
			s.wireReasons[i] += w.batchReasons[i].Load()
			s.aggReasons[i] += w.aggReasons[i].Load()
		}
	}
	if env.rel != nil {
		for pe := range env.rel.counters {
			c := &env.rel.counters[pe]
			s.frames += c.frames.Load()
			s.retries += c.retries.Load()
			s.parked += c.parked.Load()
		}
	}
	return s
}

// buildSample differences two counter snapshots into the window
// tuning.Decide consumes, attaching the latency digests from the
// always-on flight recorder. Before PR 7 these digests only existed
// while a telemetry session was live — the controller's latency-bound
// decisions were blind otherwise (the ROADMAP follow-up this closes);
// the recorder now supplies them in every LAMELLAR_TUNE mode.
func (env *worldEnv) buildSample(prev, now tuneSnap, period time.Duration) tuning.Sample {
	sample := tuning.Sample{
		Elapsed:     period,
		WireBatches: now.wireBatches - prev.wireBatches,
		WireBytes:   now.wireBytes - prev.wireBytes,
		AggBatches:  now.aggBatches - prev.aggBatches,
		AggOps:      now.aggOps - prev.aggOps,
		AggBytes:    now.aggBytes - prev.aggBytes,
		Retries:     now.retries - prev.retries,
		FramesSent:  now.frames - prev.frames,
		WireParked:  now.parked - prev.parked,
	}
	for i := range sample.WireReasons {
		sample.WireReasons[i] = now.wireReasons[i] - prev.wireReasons[i]
		sample.AggReasons[i] = now.aggReasons[i] - prev.aggReasons[i]
	}
	// Cumulative digests; Decide only reads the p90 bound, for which a
	// cumulative view is the conservative choice. Max across PEs.
	for pe := 0; pe < env.rec.NumPEs(); pe++ {
		p := env.rec.PE(pe)
		if s := p.Hist(recorder.HistRoundTrip).Summary(); s.P90 > sample.RoundTrip.P90 {
			sample.RoundTrip = s
		}
		if s := p.Hist(recorder.HistBatchAge).Summary(); s.P90 > sample.FlushAge.P90 {
			sample.FlushAge = s
		}
	}
	return sample
}

// tuneLoop is the adaptive controller driver: every few flush intervals
// it differences the flush-reason/wire counters into a sample window,
// asks tuning.Decide for the next knob setting, emits one EvTuneDecision
// per moved knob, and (in "on" mode only) publishes the setting to the
// live cells the hot paths read. Runs on env.flushWG; stopFlush ends it.
func (env *worldEnv) tuneLoop() {
	defer env.flushWG.Done()
	period := 10 * env.cfg.FlushInterval
	if period < time.Millisecond {
		period = time.Millisecond
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()

	prev := env.tuneSnapshot()
	cur := env.knobs.Load()
	for {
		select {
		case <-env.stopFlush:
			return
		case <-ticker.C:
		}
		now := env.tuneSnapshot()
		sample := env.buildSample(prev, now, period)
		prev = now

		d := tuning.Decide(sample, cur, env.tuneLim)
		if tc := env.tele; tc != nil {
			ts := tc.Now()
			for k := 0; k < tuning.NumKnobs; k++ {
				if !d.Changed[k] {
					continue
				}
				newV, oldV := knobValue(d.Knobs, tuning.Knob(k)), knobValue(cur, tuning.Knob(k))
				tc.Emit(telemetry.Event{
					TS: ts, Kind: telemetry.EvTuneDecision,
					PE: 0, Worker: telemetry.TidRuntime,
					Sub: uint8(k), Arg1: newV, Arg2: oldV,
				})
			}
		}
		cur = d.Knobs
		if env.tuneMode == tuning.ModeOn {
			env.knobs.Store(cur)
		}
	}
}

// knobValue projects one knob out of a Knobs setting for telemetry.
func knobValue(k tuning.Knobs, id tuning.Knob) int64 {
	switch id {
	case tuning.KnobAggThresholdBytes:
		return int64(k.AggThresholdBytes)
	case tuning.KnobAggBufSize:
		return int64(k.AggBufSize)
	case tuning.KnobAggFlushOps:
		return int64(k.AggFlushOps)
	case tuning.KnobRetryFloor:
		return int64(k.RetryFloor)
	case tuning.KnobWireWindowFrames:
		return int64(k.WireWindowFrames)
	case tuning.KnobWireWindowBytes:
		return int64(k.WireWindowBytes)
	}
	return 0
}
