package runtime

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/fabric"
)

// Failure injection: the fabric hook delays random operations, simulating
// a slow or congested NIC; all protocols must remain correct.
func TestRandomDelaysDoNotBreakProtocols(t *testing.T) {
	testCounter.Store(0)
	cfg := Config{PEs: 4, WorkersPerPE: 2, Lamellae: LamellaeSim, RingSlots: 4}
	err := Run(cfg, func(w *World) {
		if w.MyPE() == 0 {
			// the hook fires concurrently from every PE's goroutines; the
			// top-level rand functions are goroutine-safe
			w.Provider().SetHook(func(ev fabric.OpEvent) {
				// delay ~2% of operations
				if rand.Int63()%50 == 0 {
					time.Sleep(200 * time.Microsecond)
				}
			})
		}
		w.Barrier()
		for i := 0; i < 200; i++ {
			w.ExecAM((w.MyPE()+1+i)%w.NumPEs(), &incrAM{Delta: 1})
		}
		w.WaitAll()
		w.Barrier()
		if w.MyPE() == 0 {
			w.Provider().SetHook(nil)
			if got := testCounter.Load(); got != 800 {
				panic(fmt.Sprintf("counter = %d, want 800", got))
			}
		}
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Severe resource pressure: a tiny staging heap and a shallow ring force
// constant backpressure, fragmentation and reclamation in the sim
// lamellae; correctness must hold.
func TestTinyStagingBackpressure(t *testing.T) {
	testCounter.Store(0)
	cfg := Config{
		PEs:          3,
		WorkersPerPE: 2,
		Lamellae:     LamellaeSim,
		StagingBytes: 8 << 10, // 8 KB total staging per PE
		RingSlots:    2,
	}
	err := Run(cfg, func(w *World) {
		// messages larger than staging/4 to force fragmentation too
		payload := make([]byte, 5<<10)
		for i := range payload {
			payload[i] = byte(i)
		}
		var want uint64
		for _, b := range payload {
			want += uint64(b)
		}
		for i := 0; i < 20; i++ {
			dst := (w.MyPE() + 1) % w.NumPEs()
			v, err := BlockOn(w, ExecTyped[uint64](w, dst, &bigAM{Data: payload}))
			if err != nil {
				panic(err)
			}
			if v != want {
				panic(fmt.Sprintf("checksum %d want %d", v, want))
			}
			w.ExecAM(dst, &incrAM{Delta: 1})
		}
		w.WaitAll()
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := testCounter.Load(); got != 60 {
		t.Errorf("counter = %d, want 60", got)
	}
}

// A panicking AM must not poison subsequent traffic on the same queues.
func TestPanicDoesNotPoisonQueues(t *testing.T) {
	testCounter.Store(0)
	err := Run(Config{PEs: 2, WorkersPerPE: 2, Lamellae: LamellaeSim}, func(w *World) {
		if w.MyPE() == 0 {
			for i := 0; i < 10; i++ {
				w.ExecAM(1, &panicAM{})
				w.ExecAM(1, &incrAM{Delta: 1})
			}
			w.WaitAll()
		}
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := testCounter.Load(); got != 10 {
		t.Errorf("counter = %d, want 10", got)
	}
}
