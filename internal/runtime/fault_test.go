package runtime

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/telemetry"
)

// Failure injection: the fabric hook delays random operations, simulating
// a slow or congested NIC; all protocols must remain correct.
func TestRandomDelaysDoNotBreakProtocols(t *testing.T) {
	testCounter.Store(0)
	cfg := Config{PEs: 4, WorkersPerPE: 2, Lamellae: LamellaeSim, RingSlots: 4}
	err := Run(cfg, func(w *World) {
		if w.MyPE() == 0 {
			// the hook fires concurrently from every PE's goroutines; the
			// top-level rand functions are goroutine-safe
			w.Provider().SetHook(func(ev fabric.OpEvent) {
				// delay ~2% of operations
				if rand.Int63()%50 == 0 {
					time.Sleep(200 * time.Microsecond)
				}
			})
		}
		w.Barrier()
		for i := 0; i < 200; i++ {
			w.ExecAM((w.MyPE()+1+i)%w.NumPEs(), &incrAM{Delta: 1})
		}
		w.WaitAll()
		w.Barrier()
		if w.MyPE() == 0 {
			w.Provider().SetHook(nil)
			if got := testCounter.Load(); got != 800 {
				panic(fmt.Sprintf("counter = %d, want 800", got))
			}
		}
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Severe resource pressure: a tiny staging heap and a shallow ring force
// constant backpressure, fragmentation and reclamation in the sim
// lamellae; correctness must hold.
func TestTinyStagingBackpressure(t *testing.T) {
	testCounter.Store(0)
	cfg := Config{
		PEs:          3,
		WorkersPerPE: 2,
		Lamellae:     LamellaeSim,
		StagingBytes: 8 << 10, // 8 KB total staging per PE
		RingSlots:    2,
	}
	err := Run(cfg, func(w *World) {
		// messages larger than staging/4 to force fragmentation too
		payload := make([]byte, 5<<10)
		for i := range payload {
			payload[i] = byte(i)
		}
		var want uint64
		for _, b := range payload {
			want += uint64(b)
		}
		for i := 0; i < 20; i++ {
			dst := (w.MyPE() + 1) % w.NumPEs()
			v, err := BlockOn(w, ExecTyped[uint64](w, dst, &bigAM{Data: payload}))
			if err != nil {
				panic(err)
			}
			if v != want {
				panic(fmt.Sprintf("checksum %d want %d", v, want))
			}
			w.ExecAM(dst, &incrAM{Delta: 1})
		}
		w.WaitAll()
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := testCounter.Load(); got != 60 {
		t.Errorf("counter = %d, want 60", got)
	}
}

// adversarialPlan is the reference fault mix from the issue: 5% drop,
// 5% duplicate, 5% reorder on every link, deterministic under the seed.
func adversarialPlan(seed int64) *fabric.FaultPlan {
	return fabric.NewFaultPlan(seed).SetDefault(fabric.LinkFaults{
		DropRate:    0.05,
		DupRate:     0.05,
		ReorderRate: 0.05,
		Delay:       500 * time.Microsecond,
	})
}

// faultCfg shortens retry timing so injected drops are repaired quickly
// in tests rather than at the production 20ms-initial-backoff pace.
func faultCfg(pes int, tr LamellaeKind, plan *fabric.FaultPlan) Config {
	return Config{
		PEs: pes, WorkersPerPE: 2, Lamellae: tr,
		Faults:          plan,
		RetryInterval:   2 * time.Millisecond,
		RetryBackoffMax: 20 * time.Millisecond,
		DeliveryTimeout: 30 * time.Second,
	}
}

// Under 5% drop/dup/reorder on every link, fire-and-forget AMs, typed
// return AMs, and collectives must all stay exactly correct on every
// remote transport, with zero panics; the wire counters must show the
// protocol actually fired.
func TestAdversarialFabricAllTransports(t *testing.T) {
	for _, tr := range []LamellaeKind{LamellaeSim, LamellaeShmem, LamellaeTCP} {
		tr := tr
		t.Run(string(tr), func(t *testing.T) {
			testCounter.Store(0)
			plan := adversarialPlan(42)
			// Summed across PEs: which PE's frames draw the drops varies
			// with scheduling, so per-PE counters can legitimately be zero.
			var wire struct {
				injected, retries, dedup atomic.Uint64
			}
			err := Run(faultCfg(4, tr, plan), func(w *World) {
				const n = 150
				for i := 0; i < n; i++ {
					dst := (w.MyPE() + 1 + i) % w.NumPEs()
					w.ExecAM(dst, &incrAM{Delta: 1})
					if i%10 == 0 {
						v, err := BlockOn(w, ExecTyped[uint64](w, dst, &echoAM{X: uint64(i)}))
						if err != nil {
							panic(fmt.Sprintf("PE%d: echo error under faults: %v", w.MyPE(), err))
						}
						if v != uint64(dst)*1000+uint64(i) {
							panic(fmt.Sprintf("PE%d: echo = %d", w.MyPE(), v))
						}
					}
				}
				w.WaitAll()
				w.Barrier()
				if got := w.Team().SumU64(1); got != uint64(w.NumPEs()) {
					panic(fmt.Sprintf("collective under faults: %d", got))
				}
				s := w.Stats()
				wire.injected.Add(s.WireFaultsInjected)
				wire.retries.Add(s.WireRetries)
				wire.dedup.Add(s.WireDupDropped)
				w.Barrier()
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := testCounter.Load(); got != 600 {
				t.Errorf("counter = %d, want 600", got)
			}
			if plan.Injected().Total() == 0 {
				t.Error("fault plan injected nothing; test exercised no faults")
			}
			if wire.injected.Load() == 0 {
				t.Error("Stats.WireFaultsInjected = 0 on every PE under a 15% fault mix")
			}
			if wire.retries.Load() == 0 {
				t.Error("Stats.WireRetries = 0 on every PE; drops were never repaired by retransmission")
			}
			t.Logf("%s: plan injected %d faults; wire totals: injected=%d retx=%d dedup=%d",
				tr, plan.Injected().Total(), wire.injected.Load(), wire.retries.Load(), wire.dedup.Load())
		})
	}
}

// Duplicate-heavy traffic must be absorbed by receiver dedup: the
// counter's final value proves no duplicated frame re-executed its AMs.
func TestDuplicateFloodIsDeduped(t *testing.T) {
	testCounter.Store(0)
	plan := fabric.NewFaultPlan(7).SetDefault(fabric.LinkFaults{DupRate: 0.5})
	err := Run(faultCfg(3, LamellaeShmem, plan), func(w *World) {
		for i := 0; i < 300; i++ {
			w.ExecAM((w.MyPE()+1)%w.NumPEs(), &incrAM{Delta: 1})
		}
		w.WaitAll()
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := testCounter.Load(); got != 900 {
		t.Errorf("counter = %d, want 900 (duplicates re-executed AMs)", got)
	}
}

// A hard partition must surface as a *DeliveryError on the issuing
// future — not a panic, not a hang — and the world must still finalize.
func TestPartitionSurfacesDeliveryError(t *testing.T) {
	plan := fabric.NewFaultPlan(3)
	cfg := Config{
		PEs: 2, WorkersPerPE: 2, Lamellae: LamellaeShmem,
		Faults:          plan,
		RetryInterval:   2 * time.Millisecond,
		RetryBackoffMax: 10 * time.Millisecond,
		DeliveryTimeout: 250 * time.Millisecond,
	}
	var sawTimeout bool
	err := Run(cfg, func(w *World) {
		w.Barrier() // world is up before the partition lands
		if w.MyPE() == 0 {
			plan.Partition(0, 1, true)
			_, err := BlockOn(w, ExecTyped[uint64](w, 1, &echoAM{X: 9}))
			var de *DeliveryError
			if !errors.As(err, &de) {
				panic(fmt.Sprintf("want *DeliveryError, got %v", err))
			}
			if de.Src != 0 || de.Dst != 1 || de.Attempts < 2 {
				panic(fmt.Sprintf("unexpected delivery error detail: %+v", de))
			}
			sawTimeout = true
			plan.Heal(0, 1, true)
		}
		w.WaitAll()
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawTimeout {
		t.Fatal("partitioned future never resolved with DeliveryError")
	}
}

// Wire counters must surface through every reporting channel: the
// Stats wire(...) segment, StatsReport, and the Prometheus dump's
// lamellar_events_total series.
func TestWireCountersInTelemetryAndProm(t *testing.T) {
	testCounter.Store(0)
	plan := fabric.NewFaultPlan(5).SetDefault(fabric.LinkFaults{DropRate: 0.2})
	cfg := faultCfg(2, LamellaeShmem, plan)
	cfg.Telemetry = true
	var prom strings.Builder
	var report StatsReport
	err := Run(cfg, func(w *World) {
		// Many small flushed rounds, not one aggregated burst: each WaitAll
		// forces the round's data frames onto the wire, so the 20% plan is
		// guaranteed to hit data frames (whose repair is a wire.retry), not
		// just acks — a dropped ack can be absorbed by a later cumulative
		// ack without any retransmission.
		for round := 0; round < 20; round++ {
			for i := 0; i < 10; i++ {
				w.ExecAM(1-w.MyPE(), &incrAM{Delta: 1})
			}
			w.WaitAll()
		}
		w.Barrier()
		if w.MyPE() == 0 {
			report = w.StatsReport()
			if err := telemetry.C().WritePrometheus(&prom); err != nil {
				panic(err)
			}
		}
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := testCounter.Load(); got != 400 {
		t.Errorf("counter = %d, want 400", got)
	}
	if report.WireFaultsInjected == 0 || report.WireRetries == 0 {
		t.Errorf("StatsReport wire counters empty: injected=%d retx=%d",
			report.WireFaultsInjected, report.WireRetries)
	}
	if !strings.Contains(report.String(), "wire(") {
		t.Error("Stats.String() lacks the wire(...) segment")
	}
	dump := prom.String()
	for _, kind := range []string{"wire.fault", "wire.retry"} {
		if !strings.Contains(dump, `kind="`+kind+`"`) {
			t.Errorf("prometheus dump lacks lamellar_events_total kind=%q", kind)
		}
	}
}

// Same fault mix, different seeds: the injection sequences must differ;
// same seed: identical (the determinism contract tests depend on).
func TestFaultPlanSeedChangesInjection(t *testing.T) {
	counts := func(seed int64) uint64 {
		plan := adversarialPlan(seed)
		for i := 0; i < 500; i++ {
			plan.Decide(0, 1)
		}
		return plan.Injected().Total()
	}
	a, b, a2 := counts(11), counts(12), counts(11)
	if a != a2 {
		t.Errorf("same seed diverged: %d vs %d", a, a2)
	}
	if a == b {
		t.Logf("note: seeds 11 and 12 coincidentally injected the same count (%d)", a)
	}
}

// A panicking AM must not poison subsequent traffic on the same queues.
func TestPanicDoesNotPoisonQueues(t *testing.T) {
	testCounter.Store(0)
	err := Run(Config{PEs: 2, WorkersPerPE: 2, Lamellae: LamellaeSim}, func(w *World) {
		if w.MyPE() == 0 {
			for i := 0; i < 10; i++ {
				w.ExecAM(1, &panicAM{})
				w.ExecAM(1, &incrAM{Delta: 1})
			}
			w.WaitAll()
		}
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := testCounter.Load(); got != 10 {
		t.Errorf("counter = %d, want 10", got)
	}
}
