package runtime

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/fabric"
)

// The aggregation layer must coalesce many small AMs into few network
// messages (the whole point of §III-C's buffered queues).
func TestSmallAMsAggregate(t *testing.T) {
	testCounter.Store(0)
	var sends atomic.Int64
	err := Run(Config{PEs: 2, WorkersPerPE: 1, Lamellae: LamellaeSim}, func(w *World) {
		if w.MyPE() == 0 {
			w.Provider().SetHook(func(ev fabric.OpEvent) {
				// descriptor puts into the ring mark one wire message each
				if ev.Kind == fabric.OpPut && ev.Initiator == 0 && ev.Bytes == 16 {
					sends.Add(1)
				}
			})
			for i := 0; i < 5000; i++ {
				w.ExecAM(1, &incrAM{Delta: 1})
			}
			w.WaitAll()
			w.Provider().SetHook(nil)
		}
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if testCounter.Load() != 5000 {
		t.Fatalf("counter = %d", testCounter.Load())
	}
	// 5000 tiny AMs (~10B each = ~50KB) must travel in a handful of
	// buffers, not thousands of messages.
	if got := sends.Load(); got > 64 {
		t.Errorf("wire messages = %d; aggregation is not working", got)
	}
}

// Crossing the aggregation threshold must trigger an immediate flush.
func TestAggThresholdTriggersFlush(t *testing.T) {
	var sends atomic.Int64
	cfg := Config{PEs: 2, WorkersPerPE: 1, Lamellae: LamellaeSim, AggThresholdBytes: 4096,
		FlushInterval: 1 << 30} // effectively disable the background flusher
	err := Run(cfg, func(w *World) {
		if w.MyPE() == 0 {
			w.Provider().SetHook(func(ev fabric.OpEvent) {
				if ev.Kind == fabric.OpPut && ev.Initiator == 0 && ev.Bytes == 16 {
					sends.Add(1)
				}
			})
			// each bigAM is ~1KB; after ~4 the 4KB threshold must flush
			// without any explicit Flush/WaitAll
			for i := 0; i < 16; i++ {
				w.ExecAM(1, &bigAM{Data: make([]byte, 1024)})
			}
			for sends.Load() == 0 {
			}
			w.Provider().SetHook(nil)
			w.WaitAll()
		}
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if sends.Load() < 3 {
		t.Errorf("threshold flushes = %d", sends.Load())
	}
}

// Collective property test: random sub-teams, roots and values agree with
// a straightforward model.
func TestCollectivePropertyRandomTeams(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			pes := 2 + trial
			err := Run(Config{PEs: pes, WorkersPerPE: 1, Lamellae: LamellaeShmem}, func(w *World) {
				stride := 1 + trial%2
				sub := w.Team().SplitStrided(trial%2, stride)
				if sub == nil {
					w.Barrier()
					return
				}
				// sum of squares of world ids
				want := uint64(0)
				for _, pe := range sub.Members() {
					want += uint64(pe * pe)
				}
				if got := sub.SumU64(uint64(w.MyPE() * w.MyPE())); got != want {
					panic(fmt.Sprintf("team sum = %d want %d", got, want))
				}
				// broadcast from every possible root in turn
				for root := 0; root < sub.Size(); root++ {
					var mine []byte
					if sub.Rank() == root {
						mine = []byte{byte(root * 3)}
					}
					got := sub.BroadcastBytes(root, mine)
					if len(got) != 1 || got[0] != byte(root*3) {
						panic(fmt.Sprintf("bcast root %d = %v", root, got))
					}
				}
				// gather and verify per-rank payloads
				gath := sub.AllGatherBytes([]byte(fmt.Sprintf("r%d", sub.Rank())))
				for r, b := range gath {
					if string(b) != fmt.Sprintf("r%d", r) {
						panic(fmt.Sprintf("gather[%d] = %q", r, b))
					}
				}
				w.Barrier()
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Ack piggybacking: wait_all must complete even when the only return
// traffic is acks (no explicit responses), across both transports.
func TestWaitAllAckOnly(t *testing.T) {
	for _, tr := range transports {
		tr := tr
		t.Run(string(tr), func(t *testing.T) {
			testCounter.Store(0)
			err := Run(Config{PEs: 3, WorkersPerPE: 1, Lamellae: tr}, func(w *World) {
				if w.MyPE() == 2 {
					for i := 0; i < 257; i++ { // odd count, multiple flushes
						w.ExecAM(i%2, &incrAM{Delta: 1})
					}
					w.WaitAll()
					if got := testCounter.Load(); got != 257 {
						panic(fmt.Sprintf("after WaitAll counter = %d", got))
					}
				}
				w.Barrier()
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}
