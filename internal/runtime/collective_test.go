package runtime

import (
	"bytes"
	"fmt"
	"testing"
)

// patterned builds a deterministic payload of n bytes whose content
// encodes both the seed and the position, so truncation, reordering, or
// chunk-boundary corruption is detectable.
func patterned(seed, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(seed*31 + i*7)
	}
	return b
}

// TestCollectiveOversizedPayloads drives broadcasts, all-reduces, and
// all-gathers with payloads at exactly the slot capacity, one byte over
// it, and several multiples of it. Before the chunked slot protocol the
// cap+1 case panicked in sendSlot.
func TestCollectiveOversizedPayloads(t *testing.T) {
	const slotBytes = 64
	cap := slotBytes - 4 // usable payload per chunk after the u32 header
	sizes := []int{0, 1, cap - 1, cap, cap + 1, 2 * cap, 4 * slotBytes, 4*slotBytes + 13}
	for _, tr := range transports {
		tr := tr
		t.Run(string(tr), func(t *testing.T) {
			cfg := Config{PEs: 4, WorkersPerPE: 1, Lamellae: tr, CollectiveSlotBytes: slotBytes}
			err := Run(cfg, func(w *World) {
				team := w.Team()
				for _, n := range sizes {
					// Broadcast from every root so both tree shapes and slot
					// reuse see the oversized payload.
					for root := 0; root < team.Size(); root++ {
						var mine []byte
						if team.Rank() == root {
							mine = patterned(root+n, n)
						}
						got := team.BroadcastBytes(root, mine)
						if !bytes.Equal(got, patterned(root+n, n)) {
							panic(fmt.Sprintf("PE%d: broadcast size %d root %d corrupted (got %d bytes)",
								w.MyPE(), n, root, len(got)))
						}
					}
					// All-reduce with a byte-wise XOR combine: order-independent
					// and sensitive to any lost or duplicated chunk.
					mine := patterned(team.Rank()+n, n)
					got := team.AllReduceBytes(mine, func(a, b []byte) []byte {
						out := make([]byte, len(a))
						for i := range a {
							out[i] = a[i] ^ b[i]
						}
						return out
					})
					want := make([]byte, n)
					for r := 0; r < team.Size(); r++ {
						p := patterned(r+n, n)
						for i := range want {
							want[i] ^= p[i]
						}
					}
					if !bytes.Equal(got, want) {
						panic(fmt.Sprintf("PE%d: allreduce size %d corrupted", w.MyPE(), n))
					}
				}
				// AllGather where the combined payload far exceeds one slot.
				per := 3 * slotBytes
				gath := team.AllGatherBytes(patterned(team.Rank(), per))
				for r, b := range gath {
					if !bytes.Equal(b, patterned(r, per)) {
						panic(fmt.Sprintf("PE%d: allgather rank %d corrupted (%d bytes)", w.MyPE(), r, len(b)))
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCollectiveSlotBytesValidated verifies that configs whose slot size
// cannot even hold the chunk header are rejected up front instead of
// dividing by zero in the chunking loop.
func TestCollectiveSlotBytesValidated(t *testing.T) {
	err := Run(Config{PEs: 2, Lamellae: LamellaeShmem, CollectiveSlotBytes: 4}, func(w *World) {})
	if err == nil {
		t.Fatal("expected config validation error for CollectiveSlotBytes=4")
	}
}
