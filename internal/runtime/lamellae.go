package runtime

import (
	"encoding/binary"
	stdruntime "runtime"
	"sync"
	"time"

	"repro/internal/fabric"
	"repro/internal/memregion"
	"repro/internal/slab"
)

// lamellae is the transport interface between the runtime and the network
// (the paper's Lamellae Trait). Implementations move opaque byte batches
// from PE to PE and invoke the delivery callback on the destination.
type lamellae interface {
	// send delivers msg to dst asynchronously. msg is only valid for the
	// duration of the call: implementations must copy or fully consume it
	// before returning, because the runtime recycles batch buffers. A
	// non-nil error means the frame was NOT delivered and the transport
	// degraded gracefully (e.g. a TCP write failed and the connection was
	// torn down); callers — in practice the reliability layer — are
	// responsible for retrying. Transports must never panic on I/O faults.
	send(src, dst int, msg []byte) error
	// close stops progress engines after the world quiesces.
	close()
	name() LamellaeKind
}

// deliverFn is invoked on the destination side with a received batch.
// ref owns msg's backing buffer when it came from the slab (transports
// allocate receive buffers there so the wire path recycles instead of
// allocating per frame); the callee assumes ownership and must arrange
// exactly one Release once it is done with msg. A zero Ref means the
// buffer is GC-owned (e.g. reassembled fragments) and Release is a no-op.
type deliverFn func(dst, src int, ref slab.Ref, msg []byte)

// ---------------------------------------------------------------------------
// sim lamellae: the ROFI-like transport.
//
// Wire protocol per (src → dst) pair, all inside one fabric segment:
//
//   - src serializes the batch into its own staging heap (registered
//     memory), possibly as multiple fragments;
//   - src RDMA-Puts a 16-byte descriptor {offset, len|FRAG} into the
//     descriptor ring that dst hosts for src, then remote-atomically
//     bumps dst's head counter — the paper's "flag" telling dst that data
//     is ready;
//   - dst's progress engine polls head counters, RDMA-Gets the payload
//     from src's staging heap, reassembles fragments, hands the batch to
//     the runtime, and remote-atomically bumps src's release counter so
//     src can reclaim staging space (the paper's "free to release
//     resources" signal).
//
// Staging allocations are reclaimed strictly in send order per pair, which
// matches the FIFO ring. Each pair is serialized by a source-side mutex;
// different destinations proceed in parallel (double buffering lives in
// the aggregation layer above).
// ---------------------------------------------------------------------------

const descBytes = 16

// fragFlag marks a descriptor as a non-final fragment of a larger message.
const fragFlag = uint64(1) << 63

type simLamellae struct {
	prov    *fabric.Provider
	npes    int
	seg     fabric.SegmentID
	slots   int
	ringSz  int // bytes of one ring (slots * descBytes)
	stageLo int // staging heap offset within segment data
	deliver deliverFn

	alloc []*memregion.Allocator // per-PE staging allocator
	pairs [][]*simPair           // [src][dst]

	stop chan struct{}
	wg   sync.WaitGroup
}

// simPair is source-side state for one (src,dst) stream.
type simPair struct {
	mu       sync.Mutex
	sent     uint64 // descriptors written
	released uint64 // releases observed and freed
	pending  []int  // staging offsets awaiting release, FIFO
}

// word layout per PE's word array: [0,npes) head counters indexed by src;
// [npes, 2*npes) release counters indexed by dst.
func headWord(src int) int          { return src }
func releaseWord(npes, dst int) int { return npes + dst }

func newSimLamellae(prov *fabric.Provider, cfg Config, deliver deliverFn) *simLamellae {
	npes := prov.NumPEs()
	s := &simLamellae{
		prov:    prov,
		npes:    npes,
		slots:   cfg.RingSlots,
		ringSz:  cfg.RingSlots * descBytes,
		deliver: deliver,
		stop:    make(chan struct{}),
	}
	s.stageLo = npes * s.ringSz
	dataBytes := s.stageLo + cfg.StagingBytes
	s.seg = prov.AllocSegment(dataBytes, 2*npes)
	s.alloc = make([]*memregion.Allocator, npes)
	s.pairs = make([][]*simPair, npes)
	for pe := 0; pe < npes; pe++ {
		s.alloc[pe] = memregion.NewAllocator(cfg.StagingBytes)
		s.pairs[pe] = make([]*simPair, npes)
		for d := 0; d < npes; d++ {
			s.pairs[pe][d] = &simPair{}
		}
	}
	for pe := 0; pe < npes; pe++ {
		s.wg.Add(1)
		go s.progress(pe)
	}
	return s
}

func (s *simLamellae) name() LamellaeKind { return LamellaeSim }

// reclaim frees staging space for descriptors dst has released.
func (s *simLamellae) reclaim(src int, pair *simPair, dst int) {
	rel := s.prov.LocalAtomicLoad(src, s.seg, releaseWord(s.npes, dst))
	for pair.released < rel {
		off := pair.pending[0]
		pair.pending = pair.pending[1:]
		s.alloc[src].Free(off)
		pair.released++
	}
}

// reclaimAll sweeps releases for every destination pair of src; invoked
// under heap pressure so space pinned by streams that stopped sending
// still gets recovered. Other pairs are TryLocked: a pair busy sending
// will reclaim itself.
func (s *simLamellae) reclaimAll(src, holding int) {
	for d := 0; d < s.npes; d++ {
		if d == holding {
			s.reclaim(src, s.pairs[src][d], d)
			continue
		}
		p := s.pairs[src][d]
		if p.mu.TryLock() {
			s.reclaim(src, p, d)
			p.mu.Unlock()
		}
	}
}

// stageAlloc reserves staging space, waiting on releases under pressure.
func (s *simLamellae) stageAlloc(src int, pair *simPair, dst, n int) int {
	for {
		off, err := s.alloc[src].Alloc(n, 8)
		if err == nil {
			return off
		}
		s.reclaimAll(src, dst)
		stdruntime.Gosched()
	}
}

func (s *simLamellae) send(src, dst int, msg []byte) error {
	// Fragment so that no staging allocation exceeds a quarter of the heap,
	// keeping very large user payloads (bandwidth tests move tens of MB)
	// from deadlocking against the fixed-size staging region.
	maxFrag := s.alloc[src].Size() / 4
	if maxFrag < 1024 {
		maxFrag = 1024
	}
	pair := s.pairs[src][dst]
	pair.mu.Lock()
	defer pair.mu.Unlock()
	for base := 0; base < len(msg) || (len(msg) == 0 && base == 0); base += maxFrag {
		end := base + maxFrag
		last := true
		if end < len(msg) {
			last = false
		} else {
			end = len(msg)
		}
		s.sendFrag(src, dst, pair, msg[base:end], last)
		if end == len(msg) {
			break
		}
	}
	return nil
}

func (s *simLamellae) sendFrag(src, dst int, pair *simPair, frag []byte, last bool) {
	// Backpressure: do not overrun unconsumed ring slots.
	for pair.sent-pair.released >= uint64(s.slots) {
		s.reclaim(src, pair, dst)
		if pair.sent-pair.released < uint64(s.slots) {
			break
		}
		stdruntime.Gosched()
	}
	n := len(frag)
	stageOff := 0
	if n > 0 {
		stageOff = s.stageAlloc(src, pair, dst, n)
		// Local write into our own registered staging memory (free).
		copy(s.prov.LocalData(src, s.seg)[s.stageLo+stageOff:], frag)
	} else {
		// zero-length messages still need a staging slot entry for the
		// in-order release bookkeeping; use a 1-byte placeholder
		stageOff = s.stageAlloc(src, pair, dst, 1)
	}
	pair.pending = append(pair.pending, stageOff)

	lenWord := uint64(n)
	if !last {
		lenWord |= fragFlag
	}
	var desc [descBytes]byte
	binary.LittleEndian.PutUint64(desc[0:], uint64(s.stageLo+stageOff))
	binary.LittleEndian.PutUint64(desc[8:], lenWord)

	slot := int(pair.sent) % s.slots
	ringOff := src*s.ringSz + slot*descBytes
	// RDMA-put the descriptor into dst's ring, then flag via remote atomic.
	s.prov.Put(src, dst, s.seg, ringOff, desc[:])
	s.prov.AtomicAdd(src, dst, s.seg, headWord(src), 1)
	pair.sent++
}

// progress is dst-side: polls every source's head counter, pulls payloads,
// reassembles fragments, delivers, and releases staging space.
func (s *simLamellae) progress(pe int) {
	defer s.wg.Done()
	tails := make([]uint64, s.npes)
	partial := make([][]byte, s.npes) // fragment reassembly per source
	idle := 0
	for {
		advanced := false
		for src := 0; src < s.npes; src++ {
			head := s.prov.LocalAtomicLoad(pe, s.seg, headWord(src))
			for tails[src] < head {
				slot := int(tails[src]) % s.slots
				ringOff := src*s.ringSz + slot*descBytes
				ring := s.prov.LocalData(pe, s.seg)[ringOff : ringOff+descBytes]
				off := binary.LittleEndian.Uint64(ring[0:])
				lenWord := binary.LittleEndian.Uint64(ring[8:])
				n := int(lenWord &^ fragFlag)
				buf := slab.Get(n)
				if n > 0 {
					// RDMA-get the payload out of src's staging heap.
					s.prov.Get(pe, src, s.seg, int(off), buf)
				}
				// Release src's staging slot (remote atomic on src's words).
				s.prov.AtomicAdd(pe, src, s.seg, releaseWord(s.npes, pe), 1)
				tails[src]++
				advanced = true
				if lenWord&fragFlag != 0 {
					partial[src] = append(partial[src], buf...)
					slab.Put(buf)
					continue
				}
				if partial[src] != nil {
					// Reassembled payloads live in a GC-owned slice built
					// from the recycled fragments; deliver with a zero Ref.
					full := append(partial[src], buf...)
					partial[src] = nil
					slab.Put(buf)
					s.deliver(pe, src, slab.Ref{}, full)
					continue
				}
				s.deliver(pe, src, slab.Owned(buf), buf)
			}
		}
		if advanced {
			idle = 0
			continue
		}
		idle++
		select {
		case <-s.stop:
			return
		default:
		}
		if idle < 8 {
			stdruntime.Gosched()
		} else {
			// Long idle: sleep instead of burning a core; the background
			// flusher interval already bounds added latency.
			time.Sleep(100 * time.Microsecond)
		}
	}
}

func (s *simLamellae) close() {
	close(s.stop)
	s.wg.Wait()
	s.prov.FreeSegment(s.seg)
}

// ---------------------------------------------------------------------------
// shmem lamellae: serialized messages delivered through process-shared
// queues. Semantically identical to sim (including serialization, so
// applications behave identically when switching transports, as the paper
// requires) but with no modeled network cost and an independent transport
// implementation, which cross-validates the ring protocol in tests.
// ---------------------------------------------------------------------------

type shmemMsg struct {
	src int
	ref slab.Ref
	buf []byte
}

type shmemLamellae struct {
	queues  []chan shmemMsg
	deliver deliverFn
	wg      sync.WaitGroup
}

func newShmemLamellae(npes int, deliver deliverFn) *shmemLamellae {
	s := &shmemLamellae{
		queues:  make([]chan shmemMsg, npes),
		deliver: deliver,
	}
	for pe := 0; pe < npes; pe++ {
		s.queues[pe] = make(chan shmemMsg, 1024)
		s.wg.Add(1)
		go func(pe int) {
			defer s.wg.Done()
			for m := range s.queues[pe] {
				s.deliver(pe, m.src, m.ref, m.buf)
			}
		}(pe)
	}
	return s
}

func (s *shmemLamellae) name() LamellaeKind { return LamellaeShmem }

func (s *shmemLamellae) send(src, dst int, msg []byte) error {
	// The runtime reuses batch buffers once send returns; copy before
	// handing off to the delivery goroutine (the "shared memory write").
	// The copy comes from the slab and its ownership rides along.
	buf := slab.Get(len(msg))
	copy(buf, msg)
	s.queues[dst] <- shmemMsg{src: src, ref: slab.Owned(buf), buf: buf}
	return nil
}

func (s *shmemLamellae) close() {
	for _, q := range s.queues {
		close(q)
	}
	s.wg.Wait()
}

// ---------------------------------------------------------------------------
// smp lamellae: single PE, no transport at all. send must never be called
// (the runtime's local fast path handles self-sends before reaching the
// lamellae).
// ---------------------------------------------------------------------------

type smpLamellae struct{}

func (smpLamellae) name() LamellaeKind { return LamellaeSMP }

func (smpLamellae) send(src, dst int, msg []byte) error {
	// Not an I/O fault: the runtime's local fast path must have consumed
	// every self-send before the lamellae, so reaching here is a bug.
	panic("runtime: smp lamellae cannot send between PEs")
}

func (smpLamellae) close() {}
