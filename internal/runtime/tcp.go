package runtime

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/slab"
)

// tcpLamellae is a transport that moves batches over real loopback TCP
// sockets — genuine network I/O through the same Lamellae interface as
// the simulated fabric. It demonstrates that the runtime is transport-
// agnostic (the paper's future work replaces ROFI with other providers)
// and provides an integration point for true multi-process deployment:
// the wire protocol is self-contained length-prefixed frames.
//
// Fault behavior: send never panics. A write or flush error tears the
// broken connection down and removes it from the connection table, so
// the next send re-dials; the frame that hit the error reports it to the
// caller (the reliability layer), which retransmits after the teardown.
// Sends racing shutdown are gated on the done channel instead of dialing
// a closed listener.
//
// Wire format per frame: u32 srcPE, u32 length, payload bytes.
type tcpLamellae struct {
	npes    int
	deliver deliverFn
	lns     []net.Listener

	mu    sync.Mutex
	conns map[[2]int]*tcpConn // (src,dst) -> outbound connection

	wg      sync.WaitGroup
	closing sync.Once
	done    chan struct{}
}

type tcpConn struct {
	mu sync.Mutex
	c  net.Conn
	w  *bufio.Writer
}

// errTCPClosed reports a send issued during or after shutdown.
var errTCPClosed = errors.New("runtime: tcp lamellae closed")

func newTCPLamellae(npes int, deliver deliverFn) (*tcpLamellae, error) {
	t := &tcpLamellae{
		npes:    npes,
		deliver: deliver,
		lns:     make([]net.Listener, npes),
		conns:   make(map[[2]int]*tcpConn),
		done:    make(chan struct{}),
	}
	for pe := 0; pe < npes; pe++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range t.lns {
				if l != nil {
					l.Close()
				}
			}
			return nil, fmt.Errorf("runtime: tcp lamellae listen: %w", err)
		}
		t.lns[pe] = ln
		pe := pe
		t.wg.Add(1)
		go t.accept(pe, ln)
	}
	return t, nil
}

func (t *tcpLamellae) name() LamellaeKind { return LamellaeTCP }

func (t *tcpLamellae) accept(pe int, ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.serve(pe, conn)
	}
}

// serve reads frames from one inbound connection and delivers them.
func (t *tcpLamellae) serve(pe int, conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	r := bufio.NewReaderSize(conn, 256<<10)
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return
		}
		src := int(binary.LittleEndian.Uint32(hdr[0:]))
		n := int(binary.LittleEndian.Uint32(hdr[4:]))
		if src < 0 || src >= t.npes {
			return // corrupt header: drop the connection, not the process
		}
		buf := slab.Get(n)
		if _, err := io.ReadFull(r, buf); err != nil {
			slab.Put(buf)
			return
		}
		t.deliver(pe, src, slab.Owned(buf), buf)
	}
}

// conn returns (dialing if needed) the outbound connection src→dst.
func (t *tcpLamellae) conn(src, dst int) (*tcpConn, error) {
	key := [2]int{src, dst}
	t.mu.Lock()
	tc := t.conns[key]
	t.mu.Unlock()
	if tc != nil {
		return tc, nil
	}
	select {
	case <-t.done:
		return nil, errTCPClosed
	default:
	}
	c, err := net.Dial("tcp", t.lns[dst].Addr().String())
	if err != nil {
		return nil, fmt.Errorf("runtime: tcp lamellae dial PE%d: %w", dst, err)
	}
	tc = &tcpConn{c: c, w: bufio.NewWriterSize(c, 256<<10)}
	t.mu.Lock()
	if existing := t.conns[key]; existing != nil {
		t.mu.Unlock()
		c.Close()
		return existing, nil
	}
	select {
	case <-t.done:
		// close() already swept the table; registering now would leak the
		// socket past shutdown.
		t.mu.Unlock()
		c.Close()
		return nil, errTCPClosed
	default:
	}
	t.conns[key] = tc
	t.mu.Unlock()
	return tc, nil
}

// dropConn tears down a connection that hit an I/O error so the next
// send re-dials instead of reusing a dead socket.
func (t *tcpLamellae) dropConn(key [2]int, tc *tcpConn) {
	t.mu.Lock()
	if t.conns[key] == tc {
		delete(t.conns, key)
	}
	t.mu.Unlock()
	tc.c.Close()
}

func (t *tcpLamellae) send(src, dst int, msg []byte) error {
	select {
	case <-t.done:
		return errTCPClosed
	default:
	}
	key := [2]int{src, dst}
	tc, err := t.conn(src, dst)
	if err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(src))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(msg)))
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if _, err := tc.w.Write(hdr[:]); err != nil {
		t.dropConn(key, tc)
		return fmt.Errorf("runtime: tcp lamellae write PE%d→PE%d: %w", src, dst, err)
	}
	if _, err := tc.w.Write(msg); err != nil {
		t.dropConn(key, tc)
		return fmt.Errorf("runtime: tcp lamellae write PE%d→PE%d: %w", src, dst, err)
	}
	// Flush per batch: the aggregation layer above already coalesced.
	if err := tc.w.Flush(); err != nil {
		t.dropConn(key, tc)
		return fmt.Errorf("runtime: tcp lamellae flush PE%d→PE%d: %w", src, dst, err)
	}
	return nil
}

func (t *tcpLamellae) close() {
	t.closing.Do(func() {
		close(t.done)
		for _, ln := range t.lns {
			ln.Close()
		}
		t.mu.Lock()
		for _, tc := range t.conns {
			tc.c.Close()
		}
		t.conns = map[[2]int]*tcpConn{}
		t.mu.Unlock()
	})
	t.wg.Wait()
}
