package runtime

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/slab"
)

// tcpLamellae is a transport that moves batches over real loopback TCP
// sockets — genuine network I/O through the same Lamellae interface as
// the simulated fabric. It demonstrates that the runtime is transport-
// agnostic (the paper's future work replaces ROFI with other providers)
// and provides an integration point for true multi-process deployment:
// the wire protocol is self-contained length-prefixed frames.
//
// Transmit path: vectored. send() frames the message into one slab
// buffer and enqueues it on the connection's send queue; a per-connection
// writer goroutine drains the whole queue with a single writev
// (net.Buffers.WriteTo), so every frame ready for one destination shares
// one syscall instead of paying two bufio writes plus a per-frame flush.
// There is no bufio.Writer on the write path at all — the send queue IS
// the batching layer, and nothing flushes while more frames are queued.
//
// Fault behavior: send never panics. A write error makes the writer tear
// the connection down and remove it from the connection table, so the
// next send re-dials; frames queued on the dead connection are dropped
// (the reliability layer retransmits them — the contract is identical to
// a frame lost in the network). Sends racing shutdown are gated on the
// done channel instead of dialing a closed listener.
//
// Wire format per frame: u32 srcPE, u32 length, payload bytes.
type tcpLamellae struct {
	npes    int
	deliver deliverFn
	lns     []net.Listener

	mu    sync.Mutex
	conns map[[2]int]*tcpConn // (src,dst) -> outbound connection

	wg      sync.WaitGroup
	closing sync.Once
	done    chan struct{}
}

// tcpConn is one outbound connection with its vectored send queue.
type tcpConn struct {
	key [2]int
	c   net.Conn

	mu     sync.Mutex
	queue  [][]byte // slab-owned framed messages awaiting the writer
	closed bool     // writer exited (error or shutdown); enqueue refused
	kick   chan struct{}

	spare [][]byte // writer-owned: recycled queue backing array
}

// errTCPClosed reports a send issued during or after shutdown, or against
// a connection torn down by a write error (the caller re-sends and the
// next attempt re-dials).
var errTCPClosed = errors.New("runtime: tcp lamellae closed")

func newTCPLamellae(npes int, deliver deliverFn) (*tcpLamellae, error) {
	t := &tcpLamellae{
		npes:    npes,
		deliver: deliver,
		lns:     make([]net.Listener, npes),
		conns:   make(map[[2]int]*tcpConn),
		done:    make(chan struct{}),
	}
	for pe := 0; pe < npes; pe++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range t.lns {
				if l != nil {
					l.Close()
				}
			}
			return nil, fmt.Errorf("runtime: tcp lamellae listen: %w", err)
		}
		t.lns[pe] = ln
		pe := pe
		t.wg.Add(1)
		go t.accept(pe, ln)
	}
	return t, nil
}

func (t *tcpLamellae) name() LamellaeKind { return LamellaeTCP }

func (t *tcpLamellae) accept(pe int, ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.serve(pe, conn)
	}
}

// serve reads frames from one inbound connection and delivers them.
func (t *tcpLamellae) serve(pe int, conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	r := bufio.NewReaderSize(conn, 256<<10)
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return
		}
		src := int(binary.LittleEndian.Uint32(hdr[0:]))
		n := int(binary.LittleEndian.Uint32(hdr[4:]))
		if src < 0 || src >= t.npes {
			return // corrupt header: drop the connection, not the process
		}
		buf := slab.Get(n)
		if _, err := io.ReadFull(r, buf); err != nil {
			slab.Put(buf)
			return
		}
		t.deliver(pe, src, slab.Owned(buf), buf)
	}
}

// conn returns (dialing if needed) the outbound connection src→dst and
// starts its writer goroutine.
func (t *tcpLamellae) conn(src, dst int) (*tcpConn, error) {
	key := [2]int{src, dst}
	t.mu.Lock()
	tc := t.conns[key]
	t.mu.Unlock()
	if tc != nil {
		return tc, nil
	}
	select {
	case <-t.done:
		return nil, errTCPClosed
	default:
	}
	c, err := net.Dial("tcp", t.lns[dst].Addr().String())
	if err != nil {
		return nil, fmt.Errorf("runtime: tcp lamellae dial PE%d: %w", dst, err)
	}
	tc = &tcpConn{key: key, c: c, kick: make(chan struct{}, 1)}
	t.mu.Lock()
	if existing := t.conns[key]; existing != nil {
		t.mu.Unlock()
		c.Close()
		return existing, nil
	}
	select {
	case <-t.done:
		// close() already swept the table; registering now would leak the
		// socket past shutdown.
		t.mu.Unlock()
		c.Close()
		return nil, errTCPClosed
	default:
	}
	t.conns[key] = tc
	t.wg.Add(1)
	go t.writer(tc)
	t.mu.Unlock()
	return tc, nil
}

// dropConn tears down a connection that hit an I/O error so the next
// send re-dials instead of reusing a dead socket. Queued frames are
// returned to the slab — from the reliability layer's point of view they
// were lost in the network and will be retransmitted.
func (t *tcpLamellae) dropConn(tc *tcpConn) {
	t.mu.Lock()
	if t.conns[tc.key] == tc {
		delete(t.conns, tc.key)
	}
	t.mu.Unlock()
	tc.mu.Lock()
	tc.closed = true
	q := tc.queue
	tc.queue = nil
	tc.mu.Unlock()
	for _, b := range q {
		slab.Put(b)
	}
	tc.c.Close()
}

// writer is the per-connection transmit goroutine: it swaps the send
// queue out under the lock and writes the whole batch with one writev.
func (t *tcpLamellae) writer(tc *tcpConn) {
	defer t.wg.Done()
	var vecs net.Buffers
	for {
		select {
		case <-tc.kick:
		case <-t.done:
			t.dropConn(tc)
			return
		}
		for {
			tc.mu.Lock()
			q := tc.queue
			tc.queue = tc.spare[:0]
			tc.mu.Unlock()
			if len(q) == 0 {
				tc.spare = q
				break
			}
			// WriteTo consumes its slice (re-slicing entries on partial
			// writes), so it gets a scratch copy of the headers; q keeps
			// the original pointers for slab recycling.
			vecs = append(vecs[:0], q...)
			_, err := vecs.WriteTo(tc.c)
			for i := range vecs {
				vecs[i] = nil
			}
			for i, b := range q {
				slab.Put(b)
				q[i] = nil
			}
			tc.spare = q
			if err != nil {
				t.dropConn(tc)
				return
			}
		}
	}
}

// send frames msg into one slab buffer and enqueues it for the
// connection's writer. The copy is required regardless of batching: the
// caller (the reliability layer) reuses msg's buffer for retransmission
// the moment send returns.
func (t *tcpLamellae) send(src, dst int, msg []byte) error {
	select {
	case <-t.done:
		return errTCPClosed
	default:
	}
	tc, err := t.conn(src, dst)
	if err != nil {
		return err
	}
	buf := slab.Get(8 + len(msg))
	binary.LittleEndian.PutUint32(buf[0:], uint32(src))
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(msg)))
	copy(buf[8:], msg)
	tc.mu.Lock()
	if tc.closed {
		tc.mu.Unlock()
		slab.Put(buf)
		return fmt.Errorf("runtime: tcp lamellae write PE%d→PE%d: %w", src, dst, errTCPClosed)
	}
	tc.queue = append(tc.queue, buf)
	tc.mu.Unlock()
	select {
	case tc.kick <- struct{}{}:
	default:
	}
	return nil
}

func (t *tcpLamellae) close() {
	t.closing.Do(func() {
		close(t.done)
		for _, ln := range t.lns {
			ln.Close()
		}
		t.mu.Lock()
		conns := make([]*tcpConn, 0, len(t.conns))
		for _, tc := range t.conns {
			conns = append(conns, tc)
		}
		t.mu.Unlock()
		// Closing the sockets unblocks writers mid-writev; each writer
		// also observes done and tears its connection down.
		for _, tc := range conns {
			tc.c.Close()
		}
	})
	t.wg.Wait()
}
