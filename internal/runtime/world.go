package runtime

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/diag"
	"repro/internal/fabric"
	"repro/internal/scheduler"
	"repro/internal/serde"
	"repro/internal/slab"
	"repro/internal/telemetry"
	"repro/internal/telemetry/recorder"
	"repro/internal/tuning"
)

// worldEnv is the state shared by all PEs of one world (one simulated job).
type worldEnv struct {
	cfg    Config
	prov   *fabric.Provider
	lam    lamellae
	rel    *relLamellae // reliability layer; nil for single-PE (smp) worlds
	worlds []*World

	collMu sync.Mutex
	coll   map[string]*collEntry

	teamIDs atomic.Uint64
	ext     extMap

	stopFlush chan struct{}
	flushWG   sync.WaitGroup
	closed    atomic.Bool

	tele      *telemetry.Collector // active telemetry session, nil when off
	teleOwned bool                 // this world started the session

	// rec is the always-on flight recorder: per-PE digests that feed the
	// tuner, the watchdog, and diagnostic dumps in every mode.
	rec *recorder.Recorder
	// dog is the stall watchdog sampler (nil when disabled).
	dog *watchdog

	// Adaptive tuning (internal/tuning): live knob cells read by the hot
	// paths, the controller mode, and the clamp limits. With the
	// controller off the cells hold the configured values forever.
	knobs    tuning.Atomics
	tuneMode tuning.Mode
	tuneLim  tuning.Limits
}

type collEntry struct {
	done    chan struct{}
	val     any
	kind    string
	fetched int
	created int64 // MonoNow stamp, watchdog collective-stall input
}

// World is one PE's handle on the runtime, the analogue of the
// LamellarWorld each SPMD rank holds. All methods are safe for use from
// any goroutine belonging to that PE (worker tasks, AM handlers, main).
type World struct {
	env  *worldEnv
	pe   int
	pool *scheduler.Pool

	queues      []*aggQueue
	pendingAcks []atomic.Uint64 // acks owed, indexed by origin PE

	issued    atomic.Uint64 // AMs launched by this PE
	completed atomic.Uint64 // of which completed (locally or acked)

	envSent      atomic.Uint64 // envelopes enqueued for remote delivery
	envProcessed atomic.Uint64 // remote envelopes fully processed here

	nextReq atomic.Uint64
	retMu   sync.Mutex
	returns map[uint64]retEntry

	// ctxs holds one long-lived decode Context per source PE so the
	// steady-state receive path never allocates one.
	ctxs []Context

	worldTeam *Team
	ext       extMap

	// Wire-batch accounting: batches this PE put on the wire and why
	// each one flushed (size threshold, op cap, drain cycle, timer).
	batchesSent  atomic.Uint64
	batchBytes   atomic.Uint64
	batchReasons [telemetry.NumFlushReasons]atomic.Uint64

	// Array-op aggregation accounting, bumped by the array layer through
	// CountAggFlush: buffers dispatched, element ops coalesced into
	// them, and per-reason flush counts.
	aggBatches atomic.Uint64
	aggOps     atomic.Uint64
	aggBytes   atomic.Uint64
	aggReasons [telemetry.NumFlushReasons]atomic.Uint64

	flushHookMu sync.Mutex
	flushHooks  []func()

	// waitingSince is nonzero (a MonoNow stamp) while this PE's
	// application goroutine is blocked in WaitAll; the watchdog pairs it
	// with a stalled completion counter to flag wait stalls.
	waitingSince atomic.Int64
}

// retEntry is one outstanding request awaiting a return envelope: the
// completion callback plus the issue timestamp (monotonic clock) that
// feeds the round-trip digests — and through them the adaptive
// retransmission floor and the watchdog's stall threshold. span and dst
// let the watchdog name the oldest outstanding ops and the telemetry
// exporter close the causal flow.
type retEntry struct {
	cb      func(any, error)
	issueNs int64
	span    telemetry.SpanContext
	dst     int32
}

// ctx returns the PE's pre-built decode context for messages from src.
func (w *World) ctx(src int) *Context { return &w.ctxs[src] }

// TuneKnobs exposes the live tuned-knob cells. Higher layers (the array
// aggregator) read their thresholds from here; the cells hold the
// configured values unless the adaptive controller is on.
func (w *World) TuneKnobs() *tuning.Atomics { return &w.env.knobs }

// CountAggFlush records one array-op aggregation buffer dispatch for
// Stats: why it flushed, how many coalesced element ops it carried, and
// roughly how many payload bytes. The byte count lets the adaptive
// controller floor its shrink decisions at the observed batch size. The
// array layer calls this on every buffer it ships.
func (w *World) CountAggFlush(reason telemetry.FlushReason, ops, bytes int) {
	w.aggBatches.Add(1)
	w.aggOps.Add(uint64(ops))
	w.aggBytes.Add(uint64(bytes))
	if int(reason) < len(w.aggReasons) {
		w.aggReasons[reason].Add(1)
	}
}

// RegisterFlushHook installs fn to run at the start of every queue flush
// cycle (WaitAll, Barrier, BlockOn and the background flusher all flush).
// Higher layers use it to drain their own aggregation buffers — the
// array-op aggregation layer in particular — into the AM queues before
// those queues go out on the wire. Hooks may run concurrently from
// several goroutines and must tolerate having nothing to do.
func (w *World) RegisterFlushHook(fn func()) {
	w.flushHookMu.Lock()
	w.flushHooks = append(w.flushHooks, fn)
	w.flushHookMu.Unlock()
}

func (w *World) runFlushHooks() {
	w.flushHookMu.Lock()
	hooks := w.flushHooks
	w.flushHookMu.Unlock()
	for _, h := range hooks {
		h()
	}
}

// aggQueue buffers envelopes destined to one PE. Flushing swaps the active
// encoder for the spare (the second buffer of the paper's double-buffered
// message queue) so producers keep filling while the flushed buffer is in
// flight; once the transport has consumed the flushed buffer it returns as
// the new spare, so steady-state traffic allocates no batch buffers.
type aggQueue struct {
	mu      sync.Mutex
	enc     *serde.Encoder
	scratch *serde.Encoder
	count   int
	openNs  int64 // telemetry stamp of the first envelope in the active buffer
}

func newAggQueue() *aggQueue {
	return &aggQueue{enc: serde.NewEncoder(4096), scratch: serde.NewEncoder(4096)}
}

// takeSpareLocked hands out the spare encoder (or a fresh one); the
// caller must hold q.mu.
func (q *aggQueue) takeSpareLocked() *serde.Encoder {
	if s := q.scratch; s != nil {
		q.scratch = nil
		s.Reset()
		return s
	}
	return serde.NewEncoder(4096)
}

// putSpare returns a flushed buffer for reuse. Transports must not retain
// sent batches after send returns, which makes this safe.
func (q *aggQueue) putSpare(e *serde.Encoder) {
	if e.Cap() > maxPooledEncoderBytes {
		return
	}
	q.mu.Lock()
	if q.scratch == nil {
		q.scratch = e
	}
	q.mu.Unlock()
}

// WorldBuilder configures and builds a single-PE (SMP) world, mirroring
// Listing 1's `LamellarWorldBuilder::new().build()`. Multi-PE worlds are
// SPMD and launched with Run.
type WorldBuilder struct{ cfg Config }

// NewWorldBuilder returns a builder for an SMP world.
func NewWorldBuilder() *WorldBuilder {
	return &WorldBuilder{cfg: Config{PEs: 1, Lamellae: LamellaeSMP}}
}

// Workers sets the thread-pool size.
func (b *WorldBuilder) Workers(n int) *WorldBuilder { b.cfg.WorkersPerPE = n; return b }

// Build initializes the runtime and returns the world. Call Drop when done.
func (b *WorldBuilder) Build() (*World, error) {
	env, err := newEnv(b.cfg)
	if err != nil {
		return nil, err
	}
	return env.worlds[0], nil
}

// Run launches an SPMD world: fn runs once per PE, each invocation
// receiving that PE's World. Run returns after every PE's fn returned, all
// in-flight AMs completed (the paper's implicit deinitialization: each PE
// keeps serving AMs until every PE is ready), and the runtime shut down.
func Run(cfg Config, fn func(w *World)) error {
	env, err := newEnv(cfg)
	if err != nil {
		return err
	}
	var wg sync.WaitGroup
	for pe := 0; pe < env.cfg.PEs; pe++ {
		wg.Add(1)
		go func(w *World) {
			defer wg.Done()
			fn(w)
			w.finalize()
		}(env.worlds[pe])
	}
	wg.Wait()
	env.close()
	return nil
}

func newEnv(cfg Config) (*worldEnv, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	env := &worldEnv{
		cfg:       cfg,
		prov:      fabric.New(cfg.PEs, cfg.Cost),
		coll:      make(map[string]*collEntry),
		stopFlush: make(chan struct{}),
	}
	env.tuneMode = tuning.ParseMode(cfg.TuneMode)
	base := tuning.Knobs{
		AggThresholdBytes: cfg.AggThresholdBytes,
		AggBufSize:        cfg.AggBufSize,
		AggFlushOps:       cfg.AggFlushOps,
		RetryFloor:        cfg.RetryInterval,
		WireWindowFrames:  cfg.WireWindowFrames,
		WireWindowBytes:   cfg.WireWindowBytes,
	}
	if base.WireWindowFrames < 0 {
		base.WireWindowFrames = 0 // windowing disabled: the tuner leaves it off
	}
	env.tuneLim = tuning.DefaultLimits(base, cfg.RetryBackoffMax)
	env.knobs.Store(base)
	if cfg.Telemetry {
		// Start (or join) the process-global telemetry session before any
		// pool exists so no event is lost to a disabled gate.
		env.tele, env.teleOwned = telemetry.StartGlobal(cfg.PEs, cfg.TraceRingCap)
	}
	env.rec = recorder.New(cfg.PEs)
	env.worlds = make([]*World, cfg.PEs)
	for pe := 0; pe < cfg.PEs; pe++ {
		w := &World{
			env:         env,
			pe:          pe,
			pool:        scheduler.NewPool(cfg.WorkersPerPE),
			queues:      make([]*aggQueue, cfg.PEs),
			pendingAcks: make([]atomic.Uint64, cfg.PEs),
			returns:     make(map[uint64]retEntry),
			ctxs:        make([]Context, cfg.PEs),
		}
		for s := range w.ctxs {
			w.ctxs[s] = Context{World: w, Src: s}
		}
		w.pool.SetTelemetryPE(pe)
		w.pool.SetQueueWaitRecorder(env.rec.PE(pe).Hist(recorder.HistQueueWait))
		for d := range w.queues {
			w.queues[d] = newAggQueue()
		}
		pe := pe
		w.pool.SetPanicHandler(func(r any) {
			diag.Errorf("runtime", "PE%d: task panicked: %v", pe, r)
		})
		env.worlds[pe] = w
	}
	deliver := func(dst, src int, ref slab.Ref, msg []byte) {
		env.worlds[dst].receiveBatch(src, ref, msg)
	}
	if cfg.Lamellae == LamellaeSMP {
		env.lam = smpLamellae{}
	} else {
		// Every remote transport is wrapped in the reliability layer: the
		// raw lamellae moves relLamellae's framed bytes, and delivery
		// passes back through the seq/ack/dedup machinery before reaching
		// the runtime.
		rel := newRelLamellae(cfg, deliver, env.handleUndeliverable)
		var inner lamellae
		switch cfg.Lamellae {
		case LamellaeSim:
			inner = newSimLamellae(env.prov, cfg, rel.onDeliver)
		case LamellaeShmem:
			inner = newShmemLamellae(cfg.PEs, rel.onDeliver)
		case LamellaeTCP:
			var err error
			inner, err = newTCPLamellae(cfg.PEs, rel.onDeliver)
			if err != nil {
				return nil, err
			}
		}
		if env.tuneMode == tuning.ModeOn {
			// Only the applying controller redirects the retransmission
			// floor through the knob cell: off/observe keep the wire layer
			// byte-for-byte on its static configuration.
			rel.retryFloor = &env.knobs.RetryFloorNs
			// Likewise for the send-window caps (the per-stream AIMD
			// machinery always runs; the tuner only moves its ceiling).
			rel.capFrames = &env.knobs.WireWindowFrames
			rel.capBytes = &env.knobs.WireWindowBytes
		}
		// The flight recorder receives wire round-trip samples and seeds
		// cold streams' adaptive RTO.
		rel.rec = env.rec
		rel.start(inner)
		env.lam = rel
		env.rel = rel
	}
	// World teams (one Team handle per PE sharing common team state).
	shared := newTeamShared(env, allPEs(cfg.PEs))
	for pe := 0; pe < cfg.PEs; pe++ {
		env.worlds[pe].worldTeam = &Team{env: env, shared: shared, myPE: pe, myRank: pe}
	}
	// Background flusher bounds the latency of sparse traffic.
	for pe := 0; pe < cfg.PEs; pe++ {
		env.flushWG.Add(1)
		go env.worlds[pe].flushLoop()
	}
	if env.tuneMode != tuning.ModeOff {
		env.flushWG.Add(1)
		go env.tuneLoop()
	}
	if cfg.WatchdogInterval > 0 {
		env.dog = newWatchdog(env, cfg.WatchdogInterval, cfg.WatchdogStallFactor)
		env.flushWG.Add(1)
		go env.dog.run()
	}
	registerEnv(env)
	return env, nil
}

func allPEs(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}

func (env *worldEnv) close() {
	if env.closed.Swap(true) {
		return
	}
	unregisterEnv(env)
	close(env.stopFlush)
	env.flushWG.Wait()
	env.lam.close()
	for _, w := range env.worlds {
		w.pool.Close()
	}
	if env.teleOwned {
		// All workers and flushers are stopped: the rings are quiescent,
		// so exporting and tearing the session down is safe here.
		if env.cfg.TraceOut != "" {
			if err := writeTimeline(env.tele, env.cfg.TraceOut); err != nil {
				diag.Errorf("runtime", "writing trace timeline: %v", err)
			}
		}
		telemetry.StopGlobal(env.tele)
	}
}

// writeTimeline dumps the collector's Chrome trace-event JSON to path.
func writeTimeline(c *telemetry.Collector, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ----- accessors -------------------------------------------------------

// MyPE reports the calling PE's world rank (Lamellar::current_pe).
func (w *World) MyPE() int { return w.pe }

// NumPEs reports the world size (Lamellar::num_pes).
func (w *World) NumPEs() int { return w.env.cfg.PEs }

// Team returns the world team containing all PEs.
func (w *World) Team() *Team { return w.worldTeam }

// Pool exposes the PE's executor for spawning user futures.
func (w *World) Pool() *scheduler.Pool { return w.pool }

// Provider exposes the fabric for memory-region construction and
// benchmarking counters. Low-level, "unsafe" tier.
func (w *World) Provider() *fabric.Provider { return w.env.prov }

// Config returns the world configuration (after defaulting).
func (w *World) Config() Config { return w.env.cfg }

// PeerWorld returns another PE's World handle; intended for tests and the
// shmem/smp tooling, not application code.
func (w *World) PeerWorld(pe int) *World { return w.env.worlds[pe] }

// ----- synchronization -------------------------------------------------

// Barrier is a global (world-team) synchronization point. It flushes
// aggregation queues first so no message can be indefinitely delayed
// across the barrier.
func (w *World) Barrier() {
	w.flushAll(telemetry.FlushDrain)
	w.env.prov.Barrier(w.pe)
}

// WaitAll blocks until every AM launched by this PE has completed,
// including AMs executed remotely (tracked through ack envelopes), helping
// the executor while waiting. It mirrors world.wait_all().
func (w *World) WaitAll() {
	// Mark the wait window for the stall watchdog; cleared on return.
	w.waitingSince.Store(telemetry.MonoNow())
	defer w.waitingSince.Store(0)
	for {
		w.flushAll(telemetry.FlushDrain)
		if w.completed.Load() >= w.issued.Load() {
			return
		}
		if !w.pool.TryRunOne() {
			time.Sleep(10 * time.Microsecond)
		}
	}
}

// BlockOn drives the executor until the future resolves and returns its
// value (world.block_on). Only the calling goroutine blocks.
func BlockOn[T any](w *World, f *scheduler.Future[T]) (T, error) {
	// Awaiting helps the pool already; flush first so the request this
	// future depends on actually leaves the aggregation buffers.
	w.flushAll(telemetry.FlushDrain)
	return f.Await()
}

// finalize implements the implicit deinit: flush, serve AMs until the
// whole world is quiescent (Dijkstra-style double count over two stable
// rounds), then synchronize.
func (w *World) finalize() {
	w.WaitAll()
	stable := 0
	for stable < 2 {
		w.flushAll(telemetry.FlushDrain)
		for w.pool.TryRunOne() {
		}
		inFlight := w.envSent.Load() - w.envProcessed.Load()
		pending := uint64(w.pool.Pending())
		local := w.issued.Load() - w.completed.Load()
		total := w.allReduceSumU64(inFlight + pending + local)
		if total == 0 {
			stable++
		} else {
			stable = 0
			time.Sleep(50 * time.Microsecond)
		}
	}
	w.env.prov.Barrier(w.pe)
}

// allReduceSumU64 is used by finalize; defined in collective.go.

// handleUndeliverable reconciles a wire frame the reliability layer
// abandoned after its delivery timeout (a partitioned or persistently
// lossy link). The frame's envelopes are walked so nothing hangs:
//
//   - exec envelopes: the issuing PE's future (if any) resolves with the
//     delivery error, and its completion counter advances so WaitAll
//     terminates;
//   - return envelopes: the destination PE's waiting future resolves
//     with the delivery error instead of blocking forever;
//   - ack envelopes: the destination's completion count is credited — the
//     acknowledged AMs did execute, only the accounting frame was lost.
//
// Envelope-processed accounting advances on the issuing side so the
// distributed quiescence check in finalize converges even though the
// receiver never saw the frame.
func (env *worldEnv) handleUndeliverable(src, dst int, payload []byte, cause error) {
	ws, wd := env.worlds[src], env.worlds[dst]
	dec := serde.NewDecoder(payload)
	for dec.Remaining() > 0 {
		n := dec.U32()
		dec.Align(8)
		body := dec.RawBytes(int(n))
		if dec.Err() != nil {
			diag.Errorf("runtime", "PE%d: corrupt abandoned frame to PE%d: %v", src, dst, dec.Err())
			return
		}
		bd := serde.NewDecoder(body)
		kind := bd.U8()
		if kind&envFlagTrace != 0 {
			bd.Uvarint() // trace ID
			bd.Uvarint() // span ID
			kind &^= envFlagTrace
		}
		switch kind {
		case envExec:
			req := bd.Uvarint()
			ws.completed.Add(1)
			if req != 0 {
				ws.resolveReturn(dst, req, nil, cause)
			}
		case envReturn:
			req := bd.Uvarint()
			wd.resolveReturn(src, req, nil, cause)
		case envAck:
			wd.completed.Add(bd.Uvarint())
		}
		ws.envProcessed.Add(1)
	}
}

// ----- collective construction registry --------------------------------

// collective rendezvouses all PEs of a team on the construction of one
// shared object: the first arriver runs build, everyone receives the same
// value. SPMD discipline requires all PEs to issue collectives in the
// same order (the standard PGAS contract); kind tags let the runtime
// detect mismatched sequences and fail with a diagnostic instead of
// corrupting state — the "limited runtime analysis to warn users" of
// §III-A3.
func (env *worldEnv) collective(key, kind string, teamSize int, build func() any) any {
	env.collMu.Lock()
	e, ok := env.coll[key]
	if !ok {
		e = &collEntry{done: make(chan struct{}), kind: kind, created: telemetry.MonoNow()}
		env.coll[key] = e
		env.collMu.Unlock()
		e.val = build()
		close(e.done)
	} else {
		if e.kind != kind {
			other := e.kind
			env.collMu.Unlock()
			panic(fmt.Sprintf("runtime: mismatched collective calls: this PE issued %q where another PE issued %q — all team members must make collective calls in the same order", kind, other))
		}
		env.collMu.Unlock()
		<-e.done
	}
	env.collMu.Lock()
	e.fetched++
	if e.fetched == teamSize {
		delete(env.coll, key)
	}
	env.collMu.Unlock()
	return e.val
}
