package runtime

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/fabric"
)

// Stats reports one PE's runtime activity; useful for tuning aggregation
// and verifying communication patterns in tests and benchmarks.
type Stats struct {
	// PE is the reporting PE.
	PE int
	// Issued is the number of AMs this PE launched.
	Issued uint64
	// Completed is how many of those finished (locally or acked).
	Completed uint64
	// EnvelopesSent counts envelopes enqueued for remote delivery
	// (AM bodies, returns, acks).
	EnvelopesSent uint64
	// EnvelopesProcessed counts remote envelopes fully handled here.
	EnvelopesProcessed uint64
	// PoolExecuted / PoolStolen / PoolBusy describe the executor.
	PoolExecuted uint64
	PoolStolen   uint64
	PoolBusy     time.Duration
	// Fabric is this PE's traffic counters (messages, bytes, modeled ns).
	Fabric fabric.Counters
}

// Stats snapshots the calling PE's runtime counters.
func (w *World) Stats() Stats {
	exec, stolen, busy := w.pool.Stats()
	return Stats{
		PE:                 w.pe,
		Issued:             w.issued.Load(),
		Completed:          w.completed.Load(),
		EnvelopesSent:      w.envSent.Load(),
		EnvelopesProcessed: w.envProcessed.Load(),
		PoolExecuted:       exec,
		PoolStolen:         stolen,
		PoolBusy:           busy,
		Fabric:             w.env.prov.CountersFor(w.pe),
	}
}

func (s Stats) String() string {
	return fmt.Sprintf(
		"PE%d: ams=%d/%d env=%d/%d pool(exec=%d stolen=%d busy=%v) net(msgs=%d bytes=%d modeled=%v)",
		s.PE, s.Completed, s.Issued, s.EnvelopesProcessed, s.EnvelopesSent,
		s.PoolExecuted, s.PoolStolen, s.PoolBusy,
		s.Fabric.Msgs, s.Fabric.Bytes, time.Duration(s.Fabric.ModeledNs))
}

// ApplyEnv overlays LAMELLAR_* environment variables onto a Config,
// mirroring the runtime knobs the Rust implementation reads from the
// environment:
//
//	LAMELLAR_THREADS     workers per PE
//	LAMELLAR_AGG_SIZE    aggregation buffer threshold in bytes
//	LAMELLAR_OP_BATCH    array-operation sub-batch size
//	LAMELLAR_LAMELLAE    sim | shmem | smp
//	LAMELLAR_RING_SLOTS  descriptor ring depth (sim lamellae)
func (c Config) ApplyEnv() Config {
	if v, ok := envInt("LAMELLAR_THREADS"); ok {
		c.WorkersPerPE = v
	}
	if v, ok := envInt("LAMELLAR_AGG_SIZE"); ok {
		c.AggThresholdBytes = v
	}
	if v, ok := envInt("LAMELLAR_OP_BATCH"); ok {
		c.ArrayBatchSize = v
	}
	if v := os.Getenv("LAMELLAR_LAMELLAE"); v != "" {
		c.Lamellae = LamellaeKind(v)
	}
	if v, ok := envInt("LAMELLAR_RING_SLOTS"); ok {
		c.RingSlots = v
	}
	return c
}

func envInt(name string) (int, bool) {
	v := os.Getenv(name)
	if v == "" {
		return 0, false
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lamellar: ignoring %s=%q: %v\n", name, v, err)
		return 0, false
	}
	return n, true
}
