package runtime

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/envknob"
	"repro/internal/fabric"
	"repro/internal/telemetry"
)

// Stats reports one PE's runtime activity; useful for tuning aggregation
// and verifying communication patterns in tests and benchmarks.
type Stats struct {
	// PE is the reporting PE.
	PE int
	// Issued is the number of AMs this PE launched.
	Issued uint64
	// Completed is how many of those finished (locally or acked).
	Completed uint64
	// EnvelopesSent counts envelopes enqueued for remote delivery
	// (AM bodies, returns, acks).
	EnvelopesSent uint64
	// EnvelopesProcessed counts remote envelopes fully handled here.
	EnvelopesProcessed uint64
	// PoolExecuted / PoolStolen / PoolParks / PoolBusy describe the
	// executor: tasks run, tasks obtained by stealing (batch transfers
	// included), worker park episodes, and accumulated execution time.
	PoolExecuted uint64
	PoolStolen   uint64
	PoolParks    uint64
	PoolBusy     time.Duration
	// BatchesSent counts aggregated envelope batches this PE put on the
	// wire; BatchFlushReasons splits them by trigger, indexed by
	// telemetry.FlushReason (size threshold, op cap, drain cycle, timer).
	BatchesSent       uint64
	BatchFlushReasons [telemetry.NumFlushReasons]uint64
	// AggBatchesFlushed / AggOpsCoalesced surface the array-op
	// aggregation layer: element-op buffers dispatched and the ops
	// coalesced into them; AggFlushReasons splits the buffers by
	// telemetry.FlushReason (size, ops, drain, run).
	AggBatchesFlushed uint64
	AggOpsCoalesced   uint64
	AggFlushReasons   [telemetry.NumFlushReasons]uint64
	// Reliable-wire counters (zero on smp worlds, which have no wire):
	// WireRetries counts frame retransmissions this PE's sender made;
	// WireTimeouts counts frames it abandoned after DeliveryTimeout;
	// WireDupDropped counts redelivered frames its receiver discarded
	// (dedup); WireOutOfOrder counts frames buffered awaiting a sequence
	// gap; WireAcksSent counts standalone cumulative-ack frames;
	// WireFaultsInjected counts fault-plan injections on its sends;
	// WireParked counts frames the AIMD send window parked on a pending
	// queue; WireAcksCoalesced counts per-frame acks avoided by ack
	// coalescing and piggyback suppression; WireOOODropped counts frames
	// the receiver dropped beyond its bounded reorder window.
	WireRetries        uint64
	WireTimeouts       uint64
	WireDupDropped     uint64
	WireOutOfOrder     uint64
	WireAcksSent       uint64
	WireFaultsInjected uint64
	WireParked         uint64
	WireAcksCoalesced  uint64
	WireOOODropped     uint64
	// Fabric is this PE's traffic counters (messages, bytes, modeled ns).
	Fabric fabric.Counters
}

// Stats snapshots the calling PE's runtime counters.
func (w *World) Stats() Stats {
	exec, stolen, parks, busy := w.pool.Stats()
	s := Stats{
		PE:                 w.pe,
		Issued:             w.issued.Load(),
		Completed:          w.completed.Load(),
		EnvelopesSent:      w.envSent.Load(),
		EnvelopesProcessed: w.envProcessed.Load(),
		PoolExecuted:       exec,
		PoolStolen:         stolen,
		PoolParks:          parks,
		PoolBusy:           busy,
		BatchesSent:        w.batchesSent.Load(),
		AggBatchesFlushed:  w.aggBatches.Load(),
		AggOpsCoalesced:    w.aggOps.Load(),
		Fabric:             w.env.prov.CountersFor(w.pe),
	}
	for i := range s.BatchFlushReasons {
		s.BatchFlushReasons[i] = w.batchReasons[i].Load()
		s.AggFlushReasons[i] = w.aggReasons[i].Load()
	}
	if rel := w.env.rel; rel != nil {
		wc := &rel.counters[w.pe]
		s.WireRetries = wc.retries.Load()
		s.WireTimeouts = wc.timeouts.Load()
		s.WireDupDropped = wc.dupDropped.Load()
		s.WireOutOfOrder = wc.oooHeld.Load()
		s.WireAcksSent = wc.acksSent.Load()
		s.WireFaultsInjected = wc.faults.Load()
		s.WireParked = wc.parked.Load()
		s.WireAcksCoalesced = wc.acksCoalesced.Load()
		s.WireOOODropped = wc.oooDropped.Load()
	}
	return s
}

// reasonString renders a per-reason counter array compactly, skipping
// zero reasons (e.g. "size:3 drain:1").
func reasonString(counts [telemetry.NumFlushReasons]uint64) string {
	var b strings.Builder
	for i, n := range counts {
		if n == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%d", telemetry.FlushReason(i), n)
	}
	if b.Len() == 0 {
		return "-"
	}
	return b.String()
}

func (s Stats) String() string {
	return fmt.Sprintf(
		"PE%d: ams=%d/%d env=%d/%d pool(exec=%d stolen=%d parks=%d busy=%v) batches(sent=%d reasons[%s]) agg(batches=%d ops=%d reasons[%s]) wire(retx=%d dedup=%d ooo=%d oodrop=%d parked=%d acks=%d coalesced=%d timeouts=%d injected=%d) net(msgs=%d bytes=%d modeled=%v)",
		s.PE, s.Completed, s.Issued, s.EnvelopesProcessed, s.EnvelopesSent,
		s.PoolExecuted, s.PoolStolen, s.PoolParks, s.PoolBusy,
		s.BatchesSent, reasonString(s.BatchFlushReasons),
		s.AggBatchesFlushed, s.AggOpsCoalesced, reasonString(s.AggFlushReasons),
		s.WireRetries, s.WireDupDropped, s.WireOutOfOrder, s.WireOOODropped, s.WireParked,
		s.WireAcksSent, s.WireAcksCoalesced, s.WireTimeouts, s.WireFaultsInjected,
		s.Fabric.Msgs, s.Fabric.Bytes, time.Duration(s.Fabric.ModeledNs))
}

// StatsReport extends Stats with the telemetry subsystem's latency
// percentiles. With no active telemetry session the summaries are zero
// (Count 0) and the embedded counters are still valid.
type StatsReport struct {
	Stats
	// AMRoundTrip digests issue→resolution latency of return-style AMs.
	AMRoundTrip telemetry.HistSummary
	// QueueWait digests submit→start latency of pool tasks.
	QueueWait telemetry.HistSummary
	// FlushInterval digests the open→flush age of wire batches.
	FlushInterval telemetry.HistSummary
	// TraceDropped counts telemetry events lost to ring contention.
	TraceDropped uint64
}

// StatsReport snapshots the PE's counters plus, when telemetry is
// active, its latency histogram summaries.
func (w *World) StatsReport() StatsReport {
	r := StatsReport{Stats: w.Stats()}
	if c := telemetry.C(); c != nil && w.pe < c.NumPEs() {
		r.AMRoundTrip = c.Hist(w.pe, telemetry.HistAMRoundTrip).Summary()
		r.QueueWait = c.Hist(w.pe, telemetry.HistQueueWait).Summary()
		r.FlushInterval = c.Hist(w.pe, telemetry.HistFlushInterval).Summary()
		r.TraceDropped = c.Dropped(w.pe)
	}
	return r
}

func (r StatsReport) String() string {
	return fmt.Sprintf("%s\n  am_round_trip: %v\n  task_queue_wait: %v\n  flush_interval: %v",
		r.Stats, r.AMRoundTrip, r.QueueWait, r.FlushInterval)
}

// ApplyEnv overlays LAMELLAR_* environment variables onto a Config,
// mirroring the runtime knobs the Rust implementation reads from the
// environment:
//
//	LAMELLAR_THREADS     workers per PE
//	LAMELLAR_AGG_SIZE    aggregation buffer threshold in bytes
//	LAMELLAR_OP_BATCH    array-operation sub-batch size
//	LAMELLAR_LAMELLAE    sim | shmem | smp
//	LAMELLAR_RING_SLOTS  descriptor ring depth (sim lamellae)
//	LAMELLAR_TRACE       1/true enables the telemetry subsystem
//	                     (lifecycle tracing, histograms, gauges)
//	LAMELLAR_TRACE_OUT   path for the Chrome trace-event JSON timeline
//	                     written at world shutdown (implies telemetry on);
//	                     open it in Perfetto (ui.perfetto.dev)
//	LAMELLAR_TRACE_RING  per-PE telemetry event-ring capacity
//
// Observability knobs (see the README's "observability in production"
// section):
//
//	LAMELLAR_LOG           diag-logger level: none|error|warn|info|debug
//	                       (default warn; read at process start by
//	                       internal/diag)
//	LAMELLAR_WATCHDOG_MS   stall-watchdog sampling period in ms (default
//	                       250; negative disables the watchdog). Read in
//	                       withDefaults, so it reaches every world.
//	LAMELLAR_DIAG          diagnostic-dump signal: 1/usr1 installs a
//	                       SIGUSR1 handler, usr2 uses SIGUSR2; on signal
//	                       every live world dumps a structured JSON
//	                       snapshot (flight-recorder digests, health
//	                       counters, oldest outstanding ops)
//	LAMELLAR_DIAG_OUT      append diagnostic dumps to this file instead
//	                       of stderr
//
// Fault-injection and reliability knobs (see fabric.FaultPlan and the
// README's fault-model table):
//
//	LAMELLAR_FAULT_SEED        fault-plan seed (default 1 when any rate set)
//	LAMELLAR_FAULT_DROP        per-frame drop probability, 0..1
//	LAMELLAR_FAULT_DUP         per-frame duplication probability, 0..1
//	LAMELLAR_FAULT_REORDER     per-frame reorder (hold-back) probability, 0..1
//	LAMELLAR_FAULT_DELAY       per-frame delay probability, 0..1
//	LAMELLAR_FAULT_DELAY_MS    delay duration in ms for delayed/reordered frames
//	LAMELLAR_FAULT_BURST       burst length: an injected fault repeats for
//	                           this many consecutive frames on the link
//	LAMELLAR_RETRY_MS          initial retransmission timeout in ms
//	LAMELLAR_DELIVERY_TIMEOUT_MS  per-frame delivery give-up bound in ms
//	                           (negative disables: retry forever)
//
// Wire flow-control knobs (read in withDefaults, so they reach every
// world in the process; see the README's wire flow-control table):
//
//	LAMELLAR_WIRE_WINDOW         AIMD send-window frame cap per
//	                             (src,dst) stream (default 256;
//	                             negative disables windowing)
//	LAMELLAR_WIRE_WINDOW_BYTES   send-window byte cap (default 16 MiB)
//	LAMELLAR_WIRE_ACK_EVERY      deliveries per forced cumulative ack
//	                             (default 4; 1 acks every frame)
//	LAMELLAR_WIRE_ACK_HOLDOFF_US max delay before an owed ack is sent
//	                             standalone, in µs (default 250)
//	LAMELLAR_WIRE_OOO            receiver reorder-buffer bound in frames
//	                             (default 1024; negative disables)
//	LAMELLAR_WIRE_RTO_MIN_US     floor for the RTT-adaptive
//	                             retransmission timeout, in µs
//	                             (default 500)
func (c Config) ApplyEnv() Config {
	if v, ok := envInt("LAMELLAR_THREADS"); ok {
		c.WorkersPerPE = v
	}
	if v, ok := envInt("LAMELLAR_AGG_SIZE"); ok {
		c.AggThresholdBytes = v
	}
	if v, ok := envInt("LAMELLAR_OP_BATCH"); ok {
		c.ArrayBatchSize = v
	}
	if v := os.Getenv("LAMELLAR_LAMELLAE"); v != "" {
		c.Lamellae = LamellaeKind(v)
	}
	if v, ok := envInt("LAMELLAR_RING_SLOTS"); ok {
		c.RingSlots = v
	}
	if v, ok := envknob.LookupBool("LAMELLAR_TRACE"); ok && v {
		c.Telemetry = true
	}
	if v := os.Getenv("LAMELLAR_TRACE_OUT"); v != "" {
		c.Telemetry = true
		c.TraceOut = v
	}
	if v, ok := envInt("LAMELLAR_TRACE_RING"); ok {
		c.TraceRingCap = v
	}
	if v, ok := envInt("LAMELLAR_RETRY_MS"); ok {
		c.RetryInterval = time.Duration(v) * time.Millisecond
	}
	if v, ok := envInt("LAMELLAR_DELIVERY_TIMEOUT_MS"); ok {
		if v < 0 {
			c.DeliveryTimeout = -1
		} else {
			c.DeliveryTimeout = time.Duration(v) * time.Millisecond
		}
	}
	// LAMELLAR_FAULT_* is picked up in withDefaults (envFaultPlan) so it
	// also reaches worlds built without ApplyEnv; nothing to do here.
	return c
}

// envInt and envFloat delegate to envknob so every malformed LAMELLAR_*
// value warns through the diag logger instead of printing (or not) on an
// ad-hoc path.
func envInt(name string) (int, bool) { return envknob.LookupInt(name) }

func envFloat(name string) (float64, bool) { return envknob.LookupFloat(name) }

// envFaultOnce caches the process-wide fault plan built from
// LAMELLAR_FAULT_* so every world in the process shares one plan (and its
// injection counters). Computed once: fault-stress runs set the knobs
// before the process starts, and tests that want a private plan pass
// Config.Faults explicitly.
var envFaultOnce = struct {
	sync.Once
	plan *fabric.FaultPlan
}{}

// envFaultPlan builds a fault plan from the LAMELLAR_FAULT_* environment
// knobs, or returns nil when none are set (the common case: no
// injection, zero overhead beyond one nil check per frame).
func envFaultPlan() *fabric.FaultPlan {
	envFaultOnce.Do(func() {
		var lf fabric.LinkFaults
		any := false
		if v, ok := envFloat("LAMELLAR_FAULT_DROP"); ok {
			lf.DropRate, any = v, true
		}
		if v, ok := envFloat("LAMELLAR_FAULT_DUP"); ok {
			lf.DupRate, any = v, true
		}
		if v, ok := envFloat("LAMELLAR_FAULT_REORDER"); ok {
			lf.ReorderRate, any = v, true
		}
		if v, ok := envFloat("LAMELLAR_FAULT_DELAY"); ok {
			lf.DelayRate, any = v, true
		}
		if v, ok := envInt("LAMELLAR_FAULT_DELAY_MS"); ok {
			lf.Delay, any = time.Duration(v)*time.Millisecond, true
		}
		if v, ok := envInt("LAMELLAR_FAULT_BURST"); ok {
			lf.BurstLen, any = v, true
		}
		seed, haveSeed := envInt("LAMELLAR_FAULT_SEED")
		if !any && !haveSeed {
			return
		}
		if !haveSeed {
			seed = 1
		}
		envFaultOnce.plan = fabric.NewFaultPlan(int64(seed)).SetDefault(lf)
	})
	return envFaultOnce.plan
}
