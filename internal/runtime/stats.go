package runtime

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/fabric"
	"repro/internal/telemetry"
)

// Stats reports one PE's runtime activity; useful for tuning aggregation
// and verifying communication patterns in tests and benchmarks.
type Stats struct {
	// PE is the reporting PE.
	PE int
	// Issued is the number of AMs this PE launched.
	Issued uint64
	// Completed is how many of those finished (locally or acked).
	Completed uint64
	// EnvelopesSent counts envelopes enqueued for remote delivery
	// (AM bodies, returns, acks).
	EnvelopesSent uint64
	// EnvelopesProcessed counts remote envelopes fully handled here.
	EnvelopesProcessed uint64
	// PoolExecuted / PoolStolen / PoolParks / PoolBusy describe the
	// executor: tasks run, tasks obtained by stealing (batch transfers
	// included), worker park episodes, and accumulated execution time.
	PoolExecuted uint64
	PoolStolen   uint64
	PoolParks    uint64
	PoolBusy     time.Duration
	// BatchesSent counts aggregated envelope batches this PE put on the
	// wire; BatchFlushReasons splits them by trigger, indexed by
	// telemetry.FlushReason (size threshold, op cap, drain cycle, timer).
	BatchesSent       uint64
	BatchFlushReasons [telemetry.NumFlushReasons]uint64
	// AggBatchesFlushed / AggOpsCoalesced surface the array-op
	// aggregation layer: element-op buffers dispatched and the ops
	// coalesced into them; AggFlushReasons splits the buffers by
	// telemetry.FlushReason (size, ops, drain, run).
	AggBatchesFlushed uint64
	AggOpsCoalesced   uint64
	AggFlushReasons   [telemetry.NumFlushReasons]uint64
	// Fabric is this PE's traffic counters (messages, bytes, modeled ns).
	Fabric fabric.Counters
}

// Stats snapshots the calling PE's runtime counters.
func (w *World) Stats() Stats {
	exec, stolen, parks, busy := w.pool.Stats()
	s := Stats{
		PE:                 w.pe,
		Issued:             w.issued.Load(),
		Completed:          w.completed.Load(),
		EnvelopesSent:      w.envSent.Load(),
		EnvelopesProcessed: w.envProcessed.Load(),
		PoolExecuted:       exec,
		PoolStolen:         stolen,
		PoolParks:          parks,
		PoolBusy:           busy,
		BatchesSent:        w.batchesSent.Load(),
		AggBatchesFlushed:  w.aggBatches.Load(),
		AggOpsCoalesced:    w.aggOps.Load(),
		Fabric:             w.env.prov.CountersFor(w.pe),
	}
	for i := range s.BatchFlushReasons {
		s.BatchFlushReasons[i] = w.batchReasons[i].Load()
		s.AggFlushReasons[i] = w.aggReasons[i].Load()
	}
	return s
}

// reasonString renders a per-reason counter array compactly, skipping
// zero reasons (e.g. "size:3 drain:1").
func reasonString(counts [telemetry.NumFlushReasons]uint64) string {
	var b strings.Builder
	for i, n := range counts {
		if n == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%d", telemetry.FlushReason(i), n)
	}
	if b.Len() == 0 {
		return "-"
	}
	return b.String()
}

func (s Stats) String() string {
	return fmt.Sprintf(
		"PE%d: ams=%d/%d env=%d/%d pool(exec=%d stolen=%d parks=%d busy=%v) batches(sent=%d reasons[%s]) agg(batches=%d ops=%d reasons[%s]) net(msgs=%d bytes=%d modeled=%v)",
		s.PE, s.Completed, s.Issued, s.EnvelopesProcessed, s.EnvelopesSent,
		s.PoolExecuted, s.PoolStolen, s.PoolParks, s.PoolBusy,
		s.BatchesSent, reasonString(s.BatchFlushReasons),
		s.AggBatchesFlushed, s.AggOpsCoalesced, reasonString(s.AggFlushReasons),
		s.Fabric.Msgs, s.Fabric.Bytes, time.Duration(s.Fabric.ModeledNs))
}

// StatsReport extends Stats with the telemetry subsystem's latency
// percentiles. With no active telemetry session the summaries are zero
// (Count 0) and the embedded counters are still valid.
type StatsReport struct {
	Stats
	// AMRoundTrip digests issue→resolution latency of return-style AMs.
	AMRoundTrip telemetry.HistSummary
	// QueueWait digests submit→start latency of pool tasks.
	QueueWait telemetry.HistSummary
	// FlushInterval digests the open→flush age of wire batches.
	FlushInterval telemetry.HistSummary
	// TraceDropped counts telemetry events lost to ring contention.
	TraceDropped uint64
}

// StatsReport snapshots the PE's counters plus, when telemetry is
// active, its latency histogram summaries.
func (w *World) StatsReport() StatsReport {
	r := StatsReport{Stats: w.Stats()}
	if c := telemetry.C(); c != nil && w.pe < c.NumPEs() {
		r.AMRoundTrip = c.Hist(w.pe, telemetry.HistAMRoundTrip).Summary()
		r.QueueWait = c.Hist(w.pe, telemetry.HistQueueWait).Summary()
		r.FlushInterval = c.Hist(w.pe, telemetry.HistFlushInterval).Summary()
		r.TraceDropped = c.Dropped(w.pe)
	}
	return r
}

func (r StatsReport) String() string {
	return fmt.Sprintf("%s\n  am_round_trip: %v\n  task_queue_wait: %v\n  flush_interval: %v",
		r.Stats, r.AMRoundTrip, r.QueueWait, r.FlushInterval)
}

// ApplyEnv overlays LAMELLAR_* environment variables onto a Config,
// mirroring the runtime knobs the Rust implementation reads from the
// environment:
//
//	LAMELLAR_THREADS     workers per PE
//	LAMELLAR_AGG_SIZE    aggregation buffer threshold in bytes
//	LAMELLAR_OP_BATCH    array-operation sub-batch size
//	LAMELLAR_LAMELLAE    sim | shmem | smp
//	LAMELLAR_RING_SLOTS  descriptor ring depth (sim lamellae)
//	LAMELLAR_TRACE       1/true enables the telemetry subsystem
//	                     (lifecycle tracing, histograms, gauges)
//	LAMELLAR_TRACE_OUT   path for the Chrome trace-event JSON timeline
//	                     written at world shutdown (implies telemetry on);
//	                     open it in Perfetto (ui.perfetto.dev)
//	LAMELLAR_TRACE_RING  per-PE telemetry event-ring capacity
func (c Config) ApplyEnv() Config {
	if v, ok := envInt("LAMELLAR_THREADS"); ok {
		c.WorkersPerPE = v
	}
	if v, ok := envInt("LAMELLAR_AGG_SIZE"); ok {
		c.AggThresholdBytes = v
	}
	if v, ok := envInt("LAMELLAR_OP_BATCH"); ok {
		c.ArrayBatchSize = v
	}
	if v := os.Getenv("LAMELLAR_LAMELLAE"); v != "" {
		c.Lamellae = LamellaeKind(v)
	}
	if v, ok := envInt("LAMELLAR_RING_SLOTS"); ok {
		c.RingSlots = v
	}
	if v := os.Getenv("LAMELLAR_TRACE"); v == "1" || strings.EqualFold(v, "true") {
		c.Telemetry = true
	}
	if v := os.Getenv("LAMELLAR_TRACE_OUT"); v != "" {
		c.Telemetry = true
		c.TraceOut = v
	}
	if v, ok := envInt("LAMELLAR_TRACE_RING"); ok {
		c.TraceRingCap = v
	}
	return c
}

func envInt(name string) (int, bool) {
	v := os.Getenv(name)
	if v == "" {
		return 0, false
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lamellar: ignoring %s=%q: %v\n", name, v, err)
		return 0, false
	}
	return n, true
}
