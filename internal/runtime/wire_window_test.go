package runtime

import (
	"testing"
	"time"
)

// The AIMD window and RTT estimator are pure state machines; these tests
// drive them with scripted ack/loss traces so every control-law edge
// (slow start, additive increase, halve-once-per-epoch, floors, clamps,
// Karn exclusion) is pinned independently of the concurrent wire
// machinery that feeds them in production.

func TestSendWindowSlowStartDoublesPerRoundTrip(t *testing.T) {
	w := newSendWindow(8, 256)
	if w.cwnd != 8 {
		t.Fatalf("initial cwnd = %d, want 8", w.cwnd)
	}
	// Slow start: +1 per acked frame — acking a full window doubles it.
	for _, want := range []int{16, 32, 64, 128, 256} {
		w.onAck(w.cwnd, 256)
		if w.cwnd != want {
			t.Fatalf("cwnd after acking a window = %d, want %d", w.cwnd, want)
		}
	}
	// At the cap, further acks must not grow past it.
	w.onAck(1000, 256)
	if w.cwnd != 256 {
		t.Fatalf("cwnd grew past cap: %d", w.cwnd)
	}
}

func TestSendWindowHalvesOncePerRecoveryEpoch(t *testing.T) {
	w := newSendWindow(8, 256)
	w.onAck(120, 256) // slow start to 128
	if w.cwnd != 128 {
		t.Fatalf("setup: cwnd = %d, want 128", w.cwnd)
	}
	// First loss: frames 0..199 are in flight (nextSeq 200). Halve, with
	// the pre-loss window as the slow-start re-ramp target.
	if !w.onLoss(10, 200) {
		t.Fatal("first loss did not halve")
	}
	if w.cwnd != 64 || w.ssthresh != 128 {
		t.Fatalf("after loss: cwnd=%d ssthresh=%d, want 64/128", w.cwnd, w.ssthresh)
	}
	// More timeouts from the same flight (seq < 200): same congestion
	// event, no further penalty.
	for _, seq := range []uint64{11, 57, 199} {
		if w.onLoss(seq, 200) {
			t.Fatalf("loss of seq %d in the same epoch halved again", seq)
		}
	}
	if w.cwnd != 64 {
		t.Fatalf("cwnd after same-epoch losses = %d, want 64", w.cwnd)
	}
	// A loss at/after the epoch marker is a new congestion event.
	if !w.onLoss(200, 240) {
		t.Fatal("new-epoch loss did not halve")
	}
	if w.cwnd != 32 {
		t.Fatalf("cwnd after second epoch = %d, want 32", w.cwnd)
	}
}

func TestSendWindowRecoveryThenAdditiveIncrease(t *testing.T) {
	w := newSendWindow(8, 256)
	w.onAck(56, 256) // slow start to 64
	w.onLoss(0, 60)  // halve to 32; re-ramp target (ssthresh) stays 64
	if w.cwnd != 32 || w.ssthresh != 64 {
		t.Fatalf("setup: cwnd=%d ssthresh=%d, want 32/64", w.cwnd, w.ssthresh)
	}
	// Recovery: slow start back to the pre-loss operating point — one
	// acked window of frames doubles 32 → 64.
	w.onAck(32, 256)
	if w.cwnd != 64 {
		t.Fatalf("cwnd after recovery window = %d, want 64", w.cwnd)
	}
	// Past ssthresh: congestion avoidance, one full window of acks buys
	// exactly +1.
	w.onAck(63, 256)
	if w.cwnd != 64 {
		t.Fatalf("cwnd grew before a full window was acked: %d", w.cwnd)
	}
	w.onAck(1, 256)
	if w.cwnd != 65 {
		t.Fatalf("cwnd after 64 acked frames = %d, want 65", w.cwnd)
	}
	// A second loss during steady state lowers the re-ramp target too.
	w.onLoss(100, 160)
	if w.cwnd != 32 || w.ssthresh != 65 {
		t.Fatalf("second epoch: cwnd=%d ssthresh=%d, want 32/65", w.cwnd, w.ssthresh)
	}
}

func TestSendWindowFloorAndClamp(t *testing.T) {
	w := newSendWindow(8, 256)
	// Repeated distinct-epoch losses must never drop below the floor.
	for i := uint64(0); i < 10; i++ {
		w.onLoss(i*100, (i+1)*100)
	}
	if w.cwnd != 8 {
		t.Fatalf("cwnd under repeated loss = %d, want floor 8", w.cwnd)
	}
	// The tuner can shrink the cap below the live cwnd; clamp obeys both
	// the cap and the floor.
	w.onAck(100, 256)
	w.clamp(16)
	if w.cwnd != 16 {
		t.Fatalf("cwnd after clamp(16) = %d, want 16", w.cwnd)
	}
	w.clamp(1) // below the floor: floor wins
	if w.cwnd != 8 {
		t.Fatalf("cwnd after clamp(1) = %d, want floor 8", w.cwnd)
	}
}

func TestRTTEstimator(t *testing.T) {
	var e rttEstimator
	if e.rto(0, time.Hour.Nanoseconds()) != 0 {
		t.Fatal("rto with no samples should be 0 (unmeasured)")
	}
	ms := time.Millisecond.Nanoseconds()
	e.observe(ms)
	// First sample: srtt = s, rttvar = s/2, rto = s + 4·(s/2) = 3s.
	if got := e.rto(0, time.Hour.Nanoseconds()); got != 3*ms {
		t.Fatalf("rto after first sample = %v, want %v",
			time.Duration(got), time.Duration(3*ms))
	}
	// A long run of identical samples converges rttvar toward 0 and srtt
	// toward the sample; the 2·srtt tail-loss floor then dominates the
	// collapsing srtt+4·rttvar term.
	for i := 0; i < 200; i++ {
		e.observe(ms)
	}
	if got := e.rto(0, time.Hour.Nanoseconds()); got != 2*ms {
		t.Fatalf("converged rto = %v, want 2·srtt = %v",
			time.Duration(got), time.Duration(2*ms))
	}
	// Clamps.
	if got := e.rto(10*ms, time.Hour.Nanoseconds()); got != 10*ms {
		t.Fatalf("rto below floor not clamped: %v", time.Duration(got))
	}
	if got := e.rto(0, ms/2); got != ms/2 {
		t.Fatalf("rto above ceiling not clamped: %v", time.Duration(got))
	}
	// Ignore non-positive samples.
	before := e.srttNs
	e.observe(0)
	e.observe(-5)
	if e.srttNs != before {
		t.Fatal("non-positive samples moved the estimator")
	}
}

func TestRTTSampleKarnExclusion(t *testing.T) {
	// Clean frame: the round trip is attributable.
	if got := rttSampleNs(150, 100, 0); got != 50 {
		t.Fatalf("clean sample = %d, want 50", got)
	}
	// Karn's rule: a retransmitted frame's ack is ambiguous — no sample.
	if got := rttSampleNs(150, 100, 1); got != 0 {
		t.Fatalf("retransmitted frame sampled: %d", got)
	}
	// Never-transmitted (parked) or time-inverted stamps: no sample.
	if got := rttSampleNs(150, 0, 0); got != 0 {
		t.Fatalf("unsent frame sampled: %d", got)
	}
	if got := rttSampleNs(100, 100, 0); got != 0 {
		t.Fatalf("zero round trip sampled: %d", got)
	}
	if got := rttSampleNs(90, 100, 0); got != 0 {
		t.Fatalf("negative round trip sampled: %d", got)
	}
}
