package runtime

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/telemetry"
)

// TestTelemetryEndToEnd runs a two-PE world with the telemetry subsystem
// on: lifecycle events must land in the rings, StatsReport must surface
// latency summaries, and the timeline written at shutdown must be valid
// Chrome trace JSON.
func TestTelemetryEndToEnd(t *testing.T) {
	testCounter.Store(0)
	path := filepath.Join(t.TempDir(), "timeline.json")
	cfg := Config{PEs: 2, WorkersPerPE: 2, Lamellae: LamellaeSim,
		Telemetry: true, TraceOut: path}
	var report StatsReport
	err := Run(cfg, func(w *World) {
		if w.MyPE() == 0 {
			for i := 0; i < 200; i++ {
				w.ExecAM(1, &incrAM{Delta: 1})
			}
			if _, err := BlockOn(w, w.ExecAMReturn(1, &echoAM{X: 42})); err != nil {
				panic(err)
			}
		}
		w.WaitAll()
		w.Barrier()
		if w.MyPE() == 0 {
			report = w.StatsReport()
		}
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if telemetry.Enabled() || telemetry.C() != nil {
		t.Fatal("telemetry session must end with the world")
	}

	if report.Issued != 201 || report.Completed != 201 {
		t.Errorf("ams = %d/%d, want 201/201", report.Completed, report.Issued)
	}
	if report.BatchesSent == 0 {
		t.Error("no wire batches counted")
	}
	var reasons uint64
	for _, n := range report.BatchFlushReasons {
		reasons += n
	}
	if reasons != report.BatchesSent {
		t.Errorf("flush reasons sum to %d, batches sent %d", reasons, report.BatchesSent)
	}
	if report.AMRoundTrip.Count == 0 {
		t.Error("no AM round-trip latency recorded")
	}
	if report.QueueWait.Count == 0 {
		t.Error("no task queue-wait latency recorded")
	}
	if report.FlushInterval.Count == 0 {
		t.Error("no flush-interval latency recorded")
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("timeline not written: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if n, ok := ev["name"].(string); ok {
			names[n] = true
		}
	}
	for _, want := range []string{"task.run", "am.issue", "am.exec", "agg.flush", "fabric.put", "process_name"} {
		if !names[want] {
			t.Errorf("timeline missing %q events (have %v)", want, names)
		}
	}
}

// TestTelemetryDisabledIsInert checks the default path: no session, no
// events, StatsReport still returns valid counters with empty summaries.
func TestTelemetryDisabledIsInert(t *testing.T) {
	testCounter.Store(0)
	var report StatsReport
	err := Run(Config{PEs: 2, WorkersPerPE: 1, Lamellae: LamellaeSim}, func(w *World) {
		if w.MyPE() == 0 {
			for i := 0; i < 50; i++ {
				w.ExecAM(1, &incrAM{Delta: 1})
			}
		}
		w.WaitAll()
		w.Barrier()
		if w.MyPE() == 0 {
			report = w.StatsReport()
		}
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if telemetry.Enabled() {
		t.Fatal("telemetry enabled without being configured")
	}
	if report.Issued != 50 {
		t.Errorf("issued = %d", report.Issued)
	}
	if report.BatchesSent == 0 {
		t.Error("batch counters must work without telemetry")
	}
	if report.AMRoundTrip.Count != 0 || report.TraceDropped != 0 {
		t.Errorf("summaries must be empty without telemetry: %+v", report)
	}
}

// TestApplyEnvTelemetry checks the LAMELLAR_TRACE* environment knobs.
func TestApplyEnvTelemetry(t *testing.T) {
	t.Setenv("LAMELLAR_TRACE", "1")
	t.Setenv("LAMELLAR_TRACE_RING", "2048")
	c := Config{}.ApplyEnv()
	if !c.Telemetry || c.TraceRingCap != 2048 {
		t.Errorf("ApplyEnv = %+v", c)
	}
	t.Setenv("LAMELLAR_TRACE", "")
	t.Setenv("LAMELLAR_TRACE_OUT", "/tmp/x.json")
	c = Config{}.ApplyEnv()
	if !c.Telemetry || c.TraceOut != "/tmp/x.json" {
		t.Errorf("TRACE_OUT must imply telemetry: %+v", c)
	}
}
