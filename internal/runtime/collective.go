package runtime

import (
	"encoding/binary"
	"fmt"
	"math"
	stdruntime "runtime"
	"sort"

	"repro/internal/fabric"
	"repro/internal/serde"
)

// Collective data movement over the fabric. The implementation is a
// binomial-tree reduce to team-rank 0 followed by a binomial-tree
// broadcast, which is correct for any team size and costs 2·ceil(log2 n)
// message rounds — the modeled cost the evaluation attributes to
// runtime collectives. Slots are reused across episodes with a
// flag/ack word pair per slot so back-to-back collectives cannot race.

// collState is the per-team fabric scratch for collectives.
type collState struct {
	env     *worldEnv
	seg     fabric.SegmentID
	slotCap int
	rounds  int // max rounds supported (world-size bound)
}

// slot r of phase p (0=reduce, 1=bcast) lives at data offset
// ((p*rounds)+r)*slotCap; its flag/ack words are 2*((p*rounds)+r) and +1.
func newCollState(env *worldEnv, teamSize int) *collState {
	rounds := roundsFor(teamSize)
	if rounds == 0 {
		rounds = 1
	}
	c := &collState{
		env:     env,
		slotCap: env.cfg.CollectiveSlotBytes,
		rounds:  rounds,
	}
	c.seg = env.prov.AllocSegment(2*rounds*c.slotCap, 4*rounds)
	return c
}

func (c *collState) slotOff(phase, r int) int  { return (phase*c.rounds + r) * c.slotCap }
func (c *collState) flagWord(phase, r int) int { return 2 * (phase*c.rounds + r) }
func (c *collState) ackWord(phase, r int) int  { return 2*(phase*c.rounds+r) + 1 }

// Slot protocol: each slot has a flag word (sequence written) and an ack
// word (sequence consumed). A slot is free when flag == ack. Collective
// episodes end with a team barrier (see the public ops), so at most one
// writer ever targets a slot per episode and the pair of words fully
// orders producer and consumer regardless of which PE writes a given
// slot in a given episode (broadcast roots vary).
//
// Payloads larger than one slot are chunked: each chunk's u32 header
// packs the chunk length in the low 31 bits and a more-chunks-follow
// flag in the high bit, and every chunk performs the full flag/ack
// rendezvous, so the sender cannot overwrite a chunk the receiver has
// not consumed.

// chunkMore is the header bit marking "another chunk of this payload
// follows"; the remaining bits are the chunk's byte length.
const chunkMore = uint32(1) << 31

// sendSlot writes val into dstPE's (phase, r) slot, fragmenting into
// slot-sized chunks when the payload exceeds the slot capacity. Each
// chunk waits for the previous occupant to be consumed before writing.
func (c *collState) sendSlot(myPE, dstPE, phase, r int, val []byte) {
	prov := c.env.prov
	max := c.slotCap - 4
	for first := true; first || len(val) > 0; first = false {
		n := len(val)
		if n > max {
			n = max
		}
		chunk := val[:n]
		val = val[n:]
		hdrVal := uint32(n)
		if len(val) > 0 {
			hdrVal |= chunkMore
		}
		var seq uint64
		for {
			seq = prov.AtomicLoad(myPE, dstPE, c.seg, c.flagWord(phase, r))
			ack := prov.AtomicLoad(myPE, dstPE, c.seg, c.ackWord(phase, r))
			if seq == ack {
				break
			}
			stdruntime.Gosched()
		}
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], hdrVal)
		prov.Put(myPE, dstPE, c.seg, c.slotOff(phase, r), hdr[:])
		if n > 0 {
			prov.Put(myPE, dstPE, c.seg, c.slotOff(phase, r)+4, chunk)
		}
		prov.AtomicStore(myPE, dstPE, c.seg, c.flagWord(phase, r), seq+1)
	}
}

// recvSlot waits for data in my (phase, r) slot, reassembling chunked
// payloads, and acks each chunk so the sender can reuse the slot.
func (c *collState) recvSlot(myPE, phase, r int) []byte {
	prov := c.env.prov
	var buf []byte
	for {
		var seq uint64
		for {
			seq = prov.LocalAtomicLoad(myPE, c.seg, c.flagWord(phase, r))
			ack := prov.LocalAtomicLoad(myPE, c.seg, c.ackWord(phase, r))
			if seq != ack {
				break
			}
			stdruntime.Gosched()
		}
		var hdr [4]byte
		prov.Get(myPE, myPE, c.seg, c.slotOff(phase, r), hdr[:])
		hdrVal := binary.LittleEndian.Uint32(hdr[:])
		n := int(hdrVal &^ chunkMore)
		if buf == nil {
			buf = make([]byte, 0, n)
		}
		if n > 0 {
			old := len(buf)
			buf = append(buf, make([]byte, n)...)
			prov.Get(myPE, myPE, c.seg, c.slotOff(phase, r)+4, buf[old:])
		}
		prov.LocalAtomicStore(myPE, c.seg, c.ackWord(phase, r), seq)
		if hdrVal&chunkMore == 0 {
			return buf
		}
	}
}

// AllReduceBytes reduces every member's contribution with combine (which
// must be associative; contributions may combine in any order) and
// returns the result on every member. Collective.
func (t *Team) AllReduceBytes(mine []byte, combine func(a, b []byte) []byte) []byte {
	n := t.Size()
	if n == 1 {
		return mine
	}
	c := t.shared.coll
	acc := mine

	// Phase 0: binomial-tree reduce toward team rank 0.
	for r := 0; 1<<r < n; r++ {
		if t.myRank%(1<<(r+1)) == 0 {
			child := t.myRank + 1<<r
			if child < n {
				data := c.recvSlot(t.myPE, 0, r)
				acc = combine(acc, data)
			}
		} else {
			parent := t.myRank - 1<<r
			c.sendSlot(t.myPE, t.WorldPE(parent), 0, r, acc)
			break
		}
	}

	// Phase 1: binomial-tree broadcast of the total from rank 0.
	have := t.myRank == 0
	for r := roundsFor(n) - 1; r >= 0; r-- {
		if have {
			peer := t.myRank + 1<<r
			if peer < n && t.myRank%(1<<(r+1)) == 0 {
				c.sendSlot(t.myPE, t.WorldPE(peer), 1, r, acc)
			}
		} else if t.myRank%(1<<r) == 0 && t.myRank%(1<<(r+1)) != 0 {
			acc = c.recvSlot(t.myPE, 1, r)
			have = true
		}
	}
	// Serialize collective episodes so at most one write per slot is ever
	// outstanding (see slot protocol above).
	t.shared.barrier.Wait()
	return acc
}

// BroadcastBytes distributes root's (team rank) value to every member.
// Collective; non-root inputs are ignored.
func (t *Team) BroadcastBytes(root int, mine []byte) []byte {
	n := t.Size()
	if n == 1 {
		return mine
	}
	c := t.shared.coll
	// Virtual ranks rotate root to 0 so the binomial tree applies as-is.
	vrank := func(rank int) int { return (rank - root + n) % n }
	prank := func(v int) int { return (v + root) % n }
	myV := vrank(t.myRank)
	acc := mine
	have := myV == 0
	for r := roundsFor(n) - 1; r >= 0; r-- {
		if have {
			peer := myV + 1<<r
			if peer < n && myV%(1<<(r+1)) == 0 {
				c.sendSlot(t.myPE, t.WorldPE(prank(peer)), 1, r, acc)
			}
		} else if myV%(1<<r) == 0 && myV%(1<<(r+1)) != 0 {
			acc = c.recvSlot(t.myPE, 1, r)
			have = true
		}
	}
	t.shared.barrier.Wait()
	return acc
}

// AllGatherBytes returns every member's contribution, indexed by team
// rank. Collective. Payloads larger than the collective slot cap are
// chunked transparently by the slot protocol.
func (t *Team) AllGatherBytes(mine []byte) [][]byte {
	type tagged struct {
		rank int
		data []byte
	}
	encode := func(items []tagged) []byte {
		e := serde.NewEncoder(64)
		e.PutUvarint(uint64(len(items)))
		for _, it := range items {
			e.PutUvarint(uint64(it.rank))
			e.PutBytes(it.data)
		}
		return e.Bytes()
	}
	decode := func(b []byte) []tagged {
		d := serde.NewDecoder(b)
		n := int(d.Uvarint())
		out := make([]tagged, 0, n)
		for i := 0; i < n; i++ {
			r := int(d.Uvarint())
			out = append(out, tagged{rank: r, data: d.BytesCopy()})
		}
		if d.Err() != nil {
			panic(fmt.Sprintf("runtime: allgather decode: %v", d.Err()))
		}
		return out
	}
	res := t.AllReduceBytes(encode([]tagged{{t.myRank, mine}}), func(a, b []byte) []byte {
		return encode(append(decode(a), decode(b)...))
	})
	items := decode(res)
	sort.Slice(items, func(i, j int) bool { return items[i].rank < items[j].rank })
	out := make([][]byte, t.Size())
	for _, it := range items {
		out[it.rank] = it.data
	}
	return out
}

// AllReduceU64 reduces a uint64 with op across the team.
func (t *Team) AllReduceU64(v uint64, op func(a, b uint64) uint64) uint64 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	res := t.AllReduceBytes(buf[:], func(a, b []byte) []byte {
		var out [8]byte
		binary.LittleEndian.PutUint64(out[:],
			op(binary.LittleEndian.Uint64(a), binary.LittleEndian.Uint64(b)))
		return out[:]
	})
	return binary.LittleEndian.Uint64(res)
}

// SumU64 all-reduces a sum.
func (t *Team) SumU64(v uint64) uint64 {
	return t.AllReduceU64(v, func(a, b uint64) uint64 { return a + b })
}

// MaxU64 all-reduces a maximum.
func (t *Team) MaxU64(v uint64) uint64 {
	return t.AllReduceU64(v, func(a, b uint64) uint64 {
		if a > b {
			return a
		}
		return b
	})
}

// MinU64 all-reduces a minimum.
func (t *Team) MinU64(v uint64) uint64 {
	return t.AllReduceU64(v, func(a, b uint64) uint64 {
		if a < b {
			return a
		}
		return b
	})
}

// SumF64 all-reduces a float64 sum.
func (t *Team) SumF64(v float64) float64 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	res := t.AllReduceBytes(buf[:], func(a, b []byte) []byte {
		var out [8]byte
		s := math.Float64frombits(binary.LittleEndian.Uint64(a)) +
			math.Float64frombits(binary.LittleEndian.Uint64(b))
		binary.LittleEndian.PutUint64(out[:], math.Float64bits(s))
		return out[:]
	})
	return math.Float64frombits(binary.LittleEndian.Uint64(res))
}

// allReduceSumU64 is the world-team sum used by finalize's quiescence.
func (w *World) allReduceSumU64(v uint64) uint64 {
	return w.worldTeam.SumU64(v)
}
