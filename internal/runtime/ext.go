package runtime

import "sync"

// Extension state: higher layers of the stack (Darcs, LamellarArrays)
// attach per-PE and per-world registries to the runtime without the
// runtime importing them, keeping the dependency order of the paper's
// stack diagram (Fig. 1) intact.

type extMap struct {
	mu sync.Mutex
	m  map[string]any
}

func (e *extMap) get(key string, build func() any) any {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.m == nil {
		e.m = make(map[string]any)
	}
	if v, ok := e.m[key]; ok {
		return v
	}
	v := build()
	e.m[key] = v
	return v
}

// ExtState returns this PE's extension state for key, building it on
// first use. Each PE has its own instance.
func (w *World) ExtState(key string, build func() any) any {
	return w.ext.get(key, build)
}

// SharedExtState returns world-wide (cross-PE) extension state for key,
// building it once per world.
func (w *World) SharedExtState(key string, build func() any) any {
	return w.env.ext.get(key, build)
}
