package runtime

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/slab"
)

// loopLam is a synchronous loopback transport: send copies the frame into
// a slab buffer and delivers it straight back into the reliability layer,
// exercising the full frame/ack/recycle cycle with no goroutines or
// timers in the measured window.
type loopLam struct {
	r         *relLamellae
	delivered atomic.Uint64
}

func (l *loopLam) name() LamellaeKind { return LamellaeShmem }

func (l *loopLam) send(src, dst int, msg []byte) error {
	buf := slab.Get(len(msg))
	copy(buf, msg)
	l.delivered.Add(1)
	l.r.onDeliver(dst, src, slab.Owned(buf), buf)
	return nil
}

func (l *loopLam) close() {}

// allocBudgetConfig pins the knobs the alloc budgets depend on. The
// LAMELLAR_FAULT_* / LAMELLAR_RETRY_MS env matrix (make fault-stress)
// applies process-wide via withDefaults; an adversarial fabric
// deliberately allocates (delay timers, reorder copies, retransmits), so
// these deterministic budgets opt out with an explicit no-fault plan and
// a retry interval far beyond the measured window.
func allocBudgetConfig() Config {
	cfg := Config{
		PEs: 2, WorkersPerPE: 1, Lamellae: LamellaeShmem,
		Faults: fabric.NewFaultPlan(0),
	}.withDefaults()
	cfg.RetryInterval = time.Minute
	// Pin the adaptive RTO out of the window too: the loopback RTT is
	// sub-microsecond and a GC pause inside AllocsPerRun could otherwise
	// trip a (harmless but allocating) spurious retransmit.
	cfg.RetryBackoffMax = time.Minute
	cfg.WireRTOMin = time.Minute
	return cfg
}

// Satellite alloc budget: the reliable wire send/ack path. Every data
// frame comes from the slab and returns to it on the piggybacked
// cumulative ack of the reverse stream; frame structs recycle through
// framePool. Steady state the full cycle — two sends, two deliveries,
// ack application, frame release — must average under 2 allocs (the
// budget absorbs map/timer noise, not a per-frame make).
func TestAllocBudgetWireSendAck(t *testing.T) {
	cfg := allocBudgetConfig()
	r := newRelLamellae(cfg, func(dst, src int, ref slab.Ref, msg []byte) {
		ref.Release()
	}, nil)
	inner := &loopLam{r: r}
	r.start(inner)
	defer r.close()

	payload := make([]byte, 512)
	// Warm the slab classes, frame pool, and receiver maps.
	for i := 0; i < 64; i++ {
		r.send(0, 1, payload)
		r.send(1, 0, payload)
	}
	per := testing.AllocsPerRun(500, func() {
		r.send(0, 1, payload) // data frame; piggybacks acks for 1→0
		r.send(1, 0, payload) // reverse frame acks the one above
	})
	if per > 2 {
		t.Fatalf("wire send/ack cycle averaged %.2f allocs, budget 2", per)
	}
	if inner.delivered.Load() == 0 {
		t.Fatal("loopback transport saw no frames")
	}
}

// Satellite alloc budget: a standalone ack frame (no reverse traffic to
// piggyback on) must also come from the slab.
func TestAllocBudgetStandaloneAck(t *testing.T) {
	cfg := allocBudgetConfig()
	r := newRelLamellae(cfg, func(dst, src int, ref slab.Ref, msg []byte) {
		ref.Release()
	}, nil)
	inner := &loopLam{r: r}
	r.start(inner)
	defer r.close()

	payload := make([]byte, 128)
	for i := 0; i < 64; i++ {
		r.send(0, 1, payload)
		r.sendAck(1, 0)
	}
	per := testing.AllocsPerRun(500, func() {
		r.send(0, 1, payload)
		r.sendAck(1, 0) // standalone cumulative ack releases the frame
	})
	if per > 2 {
		t.Fatalf("send+standalone-ack cycle averaged %.2f allocs, budget 2", per)
	}
}
