// Package runtime implements the core of the Lamellar reproduction: the
// Lamellae transport abstraction with its three implementations (sim/rofi,
// shmem, smp), the per-PE World with its work-stealing executor, teams,
// active messages with destination aggregation and double-buffered message
// queues, completion accounting (wait_all), distributed quiescence, and
// team collectives.
package runtime

import (
	"fmt"
	"os"
	"time"

	"repro/internal/fabric"
)

// LamellaeKind selects the transport backing a world.
type LamellaeKind string

// The three Lamellae implementations described in the paper (§III-A).
const (
	// LamellaeSim is the ROFI-like transport: serialized messages travel
	// through ring buffers and staging heaps inside fabric segments using
	// the flag-based protocol, with modeled network costs.
	LamellaeSim LamellaeKind = "sim"
	// LamellaeShmem mirrors the paper's POSIX-shared-memory Lamellae: the
	// same serialization and delivery semantics, but messages move through
	// process-shared queues with no modeled network cost.
	LamellaeShmem LamellaeKind = "shmem"
	// LamellaeSMP is the single-PE transport: no serialization, no data
	// transfer; only valid for worlds with one PE.
	LamellaeSMP LamellaeKind = "smp"
	// LamellaeTCP moves batches over real loopback TCP sockets — genuine
	// network I/O through the same interface (no modeled cost; wall time
	// includes real kernel networking).
	LamellaeTCP LamellaeKind = "tcp"
)

// Config parameterizes a world. Zero values select documented defaults.
type Config struct {
	// PEs is the number of processing elements in the world.
	PEs int
	// WorkersPerPE sizes each PE's thread pool (the paper's best
	// configuration uses 4 threads per PE).
	WorkersPerPE int
	// Lamellae selects the transport; default LamellaeSim (LamellaeSMP for
	// single-PE worlds built via WorldBuilder).
	Lamellae LamellaeKind
	// Cost is the network cost model for the sim lamellae.
	Cost fabric.CostModel
	// AggThresholdBytes is the aggregation buffer size; a destination
	// queue flushes when it exceeds this. The paper's default is 100 KB.
	AggThresholdBytes int
	// AggMaxOps flushes a destination queue after this many queued
	// envelopes regardless of size (the BALE experiments cap buffers at
	// 10 000 operations). 0 disables the op cap.
	AggMaxOps int
	// FlushInterval is the background flusher period that bounds the
	// latency of sparse traffic.
	FlushInterval time.Duration
	// StagingBytes sizes each PE's send-staging heap in the sim lamellae.
	StagingBytes int
	// RingSlots is the per-source descriptor ring depth in the sim
	// lamellae.
	RingSlots int
	// CollectiveSlotBytes caps the per-PE payload of fabric collectives.
	CollectiveSlotBytes int
	// ArrayBatchSize is the maximum operations per sub-batch when the
	// array layer splits batched element operations by destination (the
	// BALE experiments limit aggregation to 10 000 operations).
	ArrayBatchSize int
	// AggBufSize is the array layer's per-destination operation
	// aggregation buffer size in estimated payload bytes: element ops on
	// AtomicArray/LocalLockArray/UnsafeArray coalesce per destination and
	// the buffer flushes once it crosses this. 0 selects the default
	// (128 KiB); negative disables array-op aggregation entirely (every
	// batch dispatches directly, the pre-aggregation behavior).
	AggBufSize int
	// AggFlushOps flushes an array-op aggregation buffer once it holds
	// this many element operations regardless of payload size, bounding
	// buffered-op latency for tiny-payload mixes. Default 8192.
	AggFlushOps int
	// Faults attaches a fault-injection plan to the reliable wire layer:
	// every frame transmission between PEs consults the plan and may be
	// dropped, duplicated, reordered, or delayed (see fabric.FaultPlan).
	// nil (and no LAMELLAR_FAULT_* environment knobs) disables injection.
	// Single-PE smp worlds have no wire and ignore the plan.
	Faults *fabric.FaultPlan
	// RetryInterval is the reliable wire layer's initial retransmission
	// timeout for an unacknowledged frame; each retry doubles it up to
	// RetryBackoffMax. Default 20ms.
	RetryInterval time.Duration
	// RetryBackoffMax caps the exponential retransmission backoff.
	// Default 500ms.
	RetryBackoffMax time.Duration
	// DeliveryTimeout bounds how long the wire layer keeps retrying one
	// frame before abandoning it: affected futures resolve with a
	// *DeliveryError and completion accounting is reconciled so WaitAll
	// and finalize terminate. Default 20s; negative disables the timeout
	// (frames retry forever — a hard partition then blocks finalize).
	DeliveryTimeout time.Duration
	// Telemetry enables the tracing/metrics subsystem
	// (internal/telemetry) for this world: lifecycle events into per-PE
	// ring buffers, latency histograms, and periodic gauges. Off by
	// default; the disabled instrumentation path is a single atomic
	// branch. Usually set through LAMELLAR_TRACE=1 (see ApplyEnv).
	Telemetry bool
	// TraceOut, with Telemetry set, writes the Chrome trace-event JSON
	// timeline (Perfetto-loadable) to this path at world shutdown.
	TraceOut string
	// TraceRingCap overrides the per-PE telemetry event-ring capacity
	// (rounded up to a power of two; 0 selects the 65536 default).
	TraceRingCap int
	// TuneMode selects the adaptive-tuning controller mode: "off" (static
	// knobs, the default), "observe" (decisions emitted as telemetry but
	// not applied), or "on" (aggregation thresholds and the retransmission
	// floor adjust online from flush-reason counters, latency histograms,
	// and wire retry rates). Empty reads LAMELLAR_TUNE from the
	// environment.
	TuneMode string
	// WatchdogInterval is the stall-watchdog sampling period. 0 selects
	// the default (250ms, or LAMELLAR_WATCHDOG_MS when set); negative
	// disables the watchdog entirely.
	WatchdogInterval time.Duration
	// WatchdogStallFactor scales the stall threshold: an outstanding
	// return-style AM is flagged once its age exceeds this multiple of
	// the recorded round-trip p99 (floored at 8× the sampling interval so
	// cold digests cannot trigger false positives). Default 8.
	WatchdogStallFactor int
	// WireWindowFrames caps each (src,dst) stream's AIMD congestion
	// window in frames: at most this many unacked frames in flight, with
	// further frames parking on a per-stream pending queue and senders
	// blocking (backpressure) once the queue exceeds the cap. 0 selects
	// the default (256, or LAMELLAR_WIRE_WINDOW); negative disables
	// windowing entirely (the pre-flow-control unbounded behavior).
	WireWindowFrames int
	// WireWindowBytes caps the in-flight byte budget at full frame
	// window; the live budget scales with the congestion window. Default
	// 16 MiB (LAMELLAR_WIRE_WINDOW_BYTES) — 256 max-size batch frames,
	// so by default the byte budget binds only when frames are large and
	// the frame window governs otherwise.
	WireWindowBytes int
	// WireAckEvery coalesces cumulative acks: one ack per this many
	// in-order deliveries (or after WireAckHoldoff, whichever first).
	// Default 4 (LAMELLAR_WIRE_ACK_EVERY); 1 acks every frame.
	WireAckEvery int
	// WireAckHoldoff bounds how long an owed coalesced ack may wait for
	// more deliveries (or reverse traffic to piggyback on). Default 250µs
	// (LAMELLAR_WIRE_ACK_HOLDOFF_US).
	WireAckHoldoff time.Duration
	// WireOOOWindow bounds each receive stream's out-of-order buffer:
	// frames more than this many sequence numbers ahead of the next
	// expected one are dropped (the sender's timeout repairs them) so
	// sustained reordering cannot grow memory. Default 1024
	// (LAMELLAR_WIRE_OOO); negative disables the bound.
	WireOOOWindow int
	// WireRTOMin floors the RTT-adaptive retransmission timeout so
	// microsecond-scale local round trips cannot produce a hair-trigger
	// RTO. Default 500µs (LAMELLAR_WIRE_RTO_MIN_US).
	WireRTOMin time.Duration
}

func (c Config) withDefaults() Config {
	if c.PEs <= 0 {
		c.PEs = 1
	}
	if c.WorkersPerPE <= 0 {
		c.WorkersPerPE = 4
	}
	if c.Lamellae == "" {
		if c.PEs == 1 {
			c.Lamellae = LamellaeSMP
		} else {
			c.Lamellae = LamellaeSim
		}
	}
	if c.Cost == (fabric.CostModel{}) {
		if c.Lamellae == LamellaeSim {
			c.Cost = fabric.DefaultCostModel()
		}
		// shmem/smp keep the zero model: local transports are free.
	}
	if c.AggThresholdBytes <= 0 {
		c.AggThresholdBytes = 100_000
	}
	if c.AggMaxOps < 0 {
		c.AggMaxOps = 0
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 200 * time.Microsecond
	}
	if c.StagingBytes <= 0 {
		c.StagingBytes = 16 << 20
	}
	if c.RingSlots <= 0 {
		c.RingSlots = 128
	}
	if c.CollectiveSlotBytes <= 0 {
		c.CollectiveSlotBytes = 64 << 10
	}
	if c.ArrayBatchSize <= 0 {
		c.ArrayBatchSize = 10_000
	}
	if c.AggBufSize == 0 {
		c.AggBufSize = 128 << 10
	}
	if c.AggFlushOps <= 0 {
		c.AggFlushOps = 8192
	}
	if c.RetryInterval <= 0 {
		c.RetryInterval = 20 * time.Millisecond
	}
	if c.RetryBackoffMax <= 0 {
		c.RetryBackoffMax = 500 * time.Millisecond
	}
	if c.DeliveryTimeout == 0 {
		c.DeliveryTimeout = 20 * time.Second
	}
	if c.TuneMode == "" {
		// LAMELLAR_TUNE applies process-wide (like the fault knobs) so the
		// benchmark matrix can A/B the controller without editing Configs.
		c.TuneMode = os.Getenv("LAMELLAR_TUNE")
	}
	if c.WatchdogInterval == 0 {
		c.WatchdogInterval = 250 * time.Millisecond
		if ms, ok := envInt("LAMELLAR_WATCHDOG_MS"); ok {
			if ms < 0 {
				c.WatchdogInterval = -1 // disabled
			} else if ms > 0 {
				c.WatchdogInterval = time.Duration(ms) * time.Millisecond
			}
		}
	}
	if c.WatchdogStallFactor <= 0 {
		c.WatchdogStallFactor = 8
	}
	// Wire flow-control knobs: the LAMELLAR_WIRE_* env overrides apply
	// process-wide (like the fault knobs) so the fault/bench matrix can
	// A/B the windowing machinery without editing Configs.
	if c.WireWindowFrames == 0 {
		c.WireWindowFrames = 256
		if v, ok := envInt("LAMELLAR_WIRE_WINDOW"); ok && v != 0 {
			c.WireWindowFrames = v
		}
	}
	if c.WireWindowBytes <= 0 {
		c.WireWindowBytes = 16 << 20
		if v, ok := envInt("LAMELLAR_WIRE_WINDOW_BYTES"); ok && v > 0 {
			c.WireWindowBytes = v
		}
	}
	if c.WireAckEvery <= 0 {
		c.WireAckEvery = 4
		if v, ok := envInt("LAMELLAR_WIRE_ACK_EVERY"); ok && v > 0 {
			c.WireAckEvery = v
		}
	}
	if c.WireAckHoldoff <= 0 {
		c.WireAckHoldoff = 250 * time.Microsecond
		if v, ok := envInt("LAMELLAR_WIRE_ACK_HOLDOFF_US"); ok && v > 0 {
			c.WireAckHoldoff = time.Duration(v) * time.Microsecond
		}
	}
	if c.WireOOOWindow == 0 {
		c.WireOOOWindow = 1024
		if v, ok := envInt("LAMELLAR_WIRE_OOO"); ok && v != 0 {
			c.WireOOOWindow = v
		}
	}
	if c.WireRTOMin <= 0 {
		c.WireRTOMin = 500 * time.Microsecond
		if v, ok := envInt("LAMELLAR_WIRE_RTO_MIN_US"); ok && v > 0 {
			c.WireRTOMin = time.Duration(v) * time.Microsecond
		}
	}
	if c.Faults == nil {
		// LAMELLAR_FAULT_* knobs apply process-wide so the existing test
		// and example matrix can run under an adversarial fabric without
		// touching every Config literal (see `make fault-stress`).
		c.Faults = envFaultPlan()
	}
	return c
}

func (c Config) validate() error {
	if c.Lamellae == LamellaeSMP && c.PEs != 1 {
		return fmt.Errorf("runtime: smp lamellae requires exactly 1 PE, got %d", c.PEs)
	}
	switch c.Lamellae {
	case LamellaeSim, LamellaeShmem, LamellaeSMP, LamellaeTCP:
	default:
		return fmt.Errorf("runtime: unknown lamellae %q", c.Lamellae)
	}
	if c.CollectiveSlotBytes <= 8 {
		return fmt.Errorf("runtime: CollectiveSlotBytes %d too small (need > 8 for the chunk header)", c.CollectiveSlotBytes)
	}
	return nil
}
