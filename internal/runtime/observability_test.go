package runtime

import (
	"bytes"
	"encoding/json"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/telemetry"
)

// Trace context must survive the reliable wire's retransmit/dedup
// machinery: under heavy injected drop/dup/reorder, every am.return
// event must still carry the flow id its am.issue opened, and every
// remote am.exec must reference an issued flow — duplicated frames must
// not manufacture spans, dropped frames must not lose them.
func TestTraceContextSurvivesFaultyWire(t *testing.T) {
	const pes = 3
	const opsPerPE = 40
	tc, owned := telemetry.StartGlobal(pes, 0)
	if !owned {
		t.Fatal("telemetry session already running")
	}
	defer telemetry.StopGlobal(tc)

	plan := fabric.NewFaultPlan(11).SetDefault(fabric.LinkFaults{
		DropRate: 0.2, DupRate: 0.2, ReorderRate: 0.2,
	})
	cfg := faultCfg(pes, LamellaeShmem, plan)
	cfg.Telemetry = true

	var retries, dedups atomic.Uint64
	err := Run(cfg, func(w *World) {
		w.Barrier()
		next := (w.MyPE() + 1) % pes
		for i := 0; i < opsPerPE; i++ {
			v, err := BlockOn(w, ExecTyped[uint64](w, next, &echoAM{X: uint64(i)}))
			if err != nil {
				panic(err)
			}
			if want := uint64(next)*1000 + uint64(i); v != want {
				panic("wrong echo value")
			}
		}
		w.Barrier()
		s := w.Stats()
		retries.Add(s.WireRetries)
		dedups.Add(s.WireDupDropped)
	})
	if err != nil {
		t.Fatal(err)
	}
	if retries.Load() == 0 {
		t.Error("fault plan injected no retransmissions; test is vacuous")
	}
	if dedups.Load() == 0 {
		t.Error("fault plan caused no dedups; test is vacuous")
	}

	issued := make(map[uint64]bool)
	for pe := 0; pe < pes; pe++ {
		for _, ev := range tc.Events(pe) {
			if ev.Kind == telemetry.EvAMIssue && ev.Flow != 0 {
				issued[ev.Flow] = true
			}
		}
	}
	if len(issued) == 0 {
		t.Fatal("no flows issued")
	}
	var execs, returns int
	for pe := 0; pe < pes; pe++ {
		for _, ev := range tc.Events(pe) {
			switch ev.Kind {
			case telemetry.EvAMExec:
				if ev.Flow != 0 {
					execs++
					if !issued[ev.Flow] {
						t.Fatalf("PE%d am.exec carries flow %d that no am.issue opened", pe, ev.Flow)
					}
				}
			case telemetry.EvAMReturn:
				if ev.Flow != 0 {
					returns++
					if !issued[ev.Flow] {
						t.Fatalf("PE%d am.return carries flow %d that no am.issue opened", pe, ev.Flow)
					}
				}
			}
		}
	}
	if execs == 0 || returns == 0 {
		t.Fatalf("no flow-stamped exec/return events (execs=%d returns=%d)", execs, returns)
	}
}

// The watchdog must detect a partitioned link: a future outstanding far
// beyond the recorded p99 and a non-shrinking unacked backlog are both
// flagged within a few sampling intervals.
func TestWatchdogDetectsPartitionStall(t *testing.T) {
	plan := fabric.NewFaultPlan(17).SetDefault(fabric.LinkFaults{
		DropRate: 0.05, DupRate: 0.05, ReorderRate: 0.05,
	})
	cfg := Config{
		PEs: 2, WorkersPerPE: 2, Lamellae: LamellaeShmem,
		Faults:              plan,
		RetryInterval:       2 * time.Millisecond,
		RetryBackoffMax:     10 * time.Millisecond,
		DeliveryTimeout:     30 * time.Second,
		WatchdogInterval:    20 * time.Millisecond,
		WatchdogStallFactor: 4,
	}
	var flagged uint64
	err := Run(cfg, func(w *World) {
		w.Barrier()
		if w.MyPE() == 0 {
			// Establish a round-trip baseline so the stall threshold is
			// grounded in a real digest, then cut the link mid-flight.
			for i := 0; i < 20; i++ {
				if _, err := BlockOn(w, ExecTyped[uint64](w, 1, &echoAM{X: 1})); err != nil {
					panic(err)
				}
			}
			plan.Partition(0, 1, true)
			fut := ExecTyped[uint64](w, 1, &echoAM{X: 2})
			// 8×20ms floor = 160ms; give the sampler a comfortable margin
			// to cross it and flag on several consecutive ticks.
			deadline := time.Now().Add(3 * time.Second)
			for time.Now().Before(deadline) {
				h := w.Health()
				if h[telemetry.HealthFutureStall] > 0 || h[telemetry.HealthBacklogGrowth] > 0 {
					break
				}
				time.Sleep(10 * time.Millisecond)
			}
			h := w.Health()
			flagged = h[telemetry.HealthFutureStall] + h[telemetry.HealthBacklogGrowth]
			plan.Heal(0, 1, true)
			if _, err := BlockOn(w, fut); err != nil {
				panic(err) // healed before DeliveryTimeout; must complete
			}
		}
		w.WaitAll()
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if flagged == 0 {
		t.Fatal("watchdog never flagged the partitioned link (future_stall=0, backlog_growth=0)")
	}
}

// The adaptive controller must see latency digests with NO telemetry
// session: the always-on flight recorder supplies round-trip and
// batch-age summaries in every LAMELLAR_TUNE mode.
func TestTunerConsumesRecorderDigests(t *testing.T) {
	if telemetry.Enabled() {
		t.Fatal("test requires no live telemetry session")
	}
	cfg := Config{PEs: 2, WorkersPerPE: 2, Lamellae: LamellaeSim}
	err := Run(cfg, func(w *World) {
		w.Barrier()
		if w.MyPE() == 0 {
			for i := 0; i < 50; i++ {
				if _, err := BlockOn(w, ExecTyped[uint64](w, 1, &echoAM{X: uint64(i)})); err != nil {
					panic(err)
				}
			}
		}
		w.Barrier()
		if w.MyPE() == 0 {
			sample := w.env.buildSample(tuneSnap{}, w.env.tuneSnapshot(), time.Second)
			if sample.RoundTrip.Count == 0 || sample.RoundTrip.P90 <= 0 {
				panic("tuning sample has no round-trip digest without a telemetry session")
			}
			if sample.FlushAge.Count == 0 {
				panic("tuning sample has no flush-age digest without a telemetry session")
			}
		}
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// WriteDiagnostics must render a parseable snapshot naming the oldest
// outstanding ops and carrying non-empty recorder digests — with no
// telemetry session required.
func TestDiagnosticSnapshot(t *testing.T) {
	cfg := Config{PEs: 2, WorkersPerPE: 2, Lamellae: LamellaeSim}
	err := Run(cfg, func(w *World) {
		w.Barrier()
		if w.MyPE() == 0 {
			for i := 0; i < 30; i++ {
				if _, err := BlockOn(w, ExecTyped[uint64](w, 1, &echoAM{X: 1})); err != nil {
					panic(err)
				}
			}
			var buf bytes.Buffer
			if err := w.WriteDiagnostics(&buf); err != nil {
				panic(err)
			}
			var snap DiagSnapshot
			if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
				panic("diagnostic dump is not valid JSON: " + err.Error())
			}
			if snap.PEs != 2 || len(snap.Worlds) != 2 {
				panic("diagnostic dump has wrong world shape")
			}
			rt := snap.Recorder.PEs[0].Hists["am_round_trip_ns"]
			if rt.Count == 0 || rt.P99Ns <= 0 {
				panic("diagnostic dump carries no round-trip digest")
			}
			if snap.Worlds[0].Issued == 0 {
				panic("diagnostic dump shows zero issued AMs")
			}
		}
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}
