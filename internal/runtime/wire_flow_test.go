package runtime

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/slab"
)

// Integration tests for the wire flow-control machinery: the AIMD window
// bounding in-flight frames under loss, the bounded reorder buffer
// keeping receiver memory flat under reordering, and ack coalescing
// bounding standalone-ack traffic. All drive a relLamellae over the
// synchronous loopback transport (loopLam) with a deterministic fault
// plan, the same harness the alloc budgets use.

// wireTestConfig is the shared base: 2 PEs, tight retransmission so
// fault repair happens at test speed, generous delivery timeout so
// nothing is abandoned.
func wireTestConfig() Config {
	cfg := Config{
		PEs: 2, WorkersPerPE: 1, Lamellae: LamellaeShmem,
		RetryInterval:   2 * time.Millisecond,
		RetryBackoffMax: 20 * time.Millisecond,
		DeliveryTimeout: 30 * time.Second,
		Faults:          fabric.NewFaultPlan(0),
	}.withDefaults()
	return cfg
}

// Tentpole invariant: under 10% frame drop the sender never holds more
// than the window cap in flight, every frame still arrives exactly once,
// and the machinery visibly exercised both parking (window full) and
// retransmission (drops repaired).
func TestWireWindowNeverExceededUnderDrop(t *testing.T) {
	cfg := wireTestConfig()
	cfg.WireWindowFrames = 16
	cfg.Faults = fabric.NewFaultPlan(7).SetDefault(fabric.LinkFaults{DropRate: 0.10})
	var delivered atomic.Uint64
	r := newRelLamellae(cfg, func(dst, src int, ref slab.Ref, msg []byte) {
		delivered.Add(1)
		ref.Release()
	}, nil)
	inner := &loopLam{r: r}
	r.start(inner)
	defer r.close()

	const frames = 3000
	capF, _ := r.windowCaps()
	if capF != 16 {
		t.Fatalf("window cap = %d, want 16", capF)
	}
	// Sample the in-flight invariant concurrently with the sender.
	var violations atomic.Uint64
	stopSample := make(chan struct{})
	sampleDone := make(chan struct{})
	go func() {
		defer close(sampleDone)
		p := r.pairs[0][1]
		for {
			select {
			case <-stopSample:
				return
			default:
			}
			p.mu.Lock()
			if len(p.unacked) > capF {
				violations.Add(1)
			}
			p.mu.Unlock()
			time.Sleep(50 * time.Microsecond)
		}
	}()

	payload := make([]byte, 256)
	for i := 0; i < frames; i++ {
		r.send(0, 1, payload)
	}
	// Drops repair on the retransmission timeout; wait for full delivery.
	deadline := time.Now().Add(20 * time.Second)
	for delivered.Load() < frames {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d/%d frames", delivered.Load(), frames)
		}
		time.Sleep(time.Millisecond)
	}
	close(stopSample)
	<-sampleDone
	if n := delivered.Load(); n != frames {
		t.Fatalf("delivered %d frames, want exactly %d (dedup failed)", n, frames)
	}
	if n := violations.Load(); n != 0 {
		t.Fatalf("in-flight frames exceeded the window cap %d times", n)
	}
	wc := &r.counters[0]
	if wc.retries.Load() == 0 {
		t.Fatal("10%% drop plan produced no retransmissions")
	}
	if wc.parked.Load() == 0 {
		t.Fatal("a 16-frame window over 3000 sends never parked a frame")
	}
}

// Satellite: the receiver's reorder buffer is bounded. Under heavy
// reordering frames beyond WireOOOWindow are dropped (and repaired by
// retransmission) instead of buffered, so receiver memory stays flat —
// and delivery remains exactly-once and in-order-complete. Run with
// -race: the sampler races the delivery path deliberately.
func TestWireReorderBufferBounded(t *testing.T) {
	cfg := wireTestConfig()
	cfg.WireWindowFrames = 64
	cfg.WireOOOWindow = 8
	cfg.Faults = fabric.NewFaultPlan(11).SetDefault(fabric.LinkFaults{
		ReorderRate: 0.25, Delay: 2 * time.Millisecond,
	})
	var delivered atomic.Uint64
	r := newRelLamellae(cfg, func(dst, src int, ref slab.Ref, msg []byte) {
		delivered.Add(1)
		ref.Release()
	}, nil)
	inner := &loopLam{r: r}
	r.start(inner)
	defer r.close()

	var maxHeld atomic.Int64
	stopSample := make(chan struct{})
	sampleDone := make(chan struct{})
	go func() {
		defer close(sampleDone)
		rs := r.recv[1][0]
		for {
			select {
			case <-stopSample:
				return
			default:
			}
			rs.mu.Lock()
			held := int64(len(rs.ooo))
			rs.mu.Unlock()
			for {
				cur := maxHeld.Load()
				if held <= cur || maxHeld.CompareAndSwap(cur, held) {
					break
				}
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()

	const frames = 1500
	payload := make([]byte, 64)
	for i := 0; i < frames; i++ {
		r.send(0, 1, payload)
	}
	deadline := time.Now().Add(20 * time.Second)
	for delivered.Load() < frames {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d/%d frames", delivered.Load(), frames)
		}
		time.Sleep(time.Millisecond)
	}
	close(stopSample)
	<-sampleDone
	if n := delivered.Load(); n != frames {
		t.Fatalf("delivered %d frames, want exactly %d", n, frames)
	}
	if held := maxHeld.Load(); held > 8 {
		t.Fatalf("reorder buffer held %d frames, bound is 8", held)
	}
	if r.counters[1].oooDropped.Load() == 0 {
		t.Fatal("heavy reordering with an 8-frame bound never dropped beyond the window")
	}
}

// Satellite: ack coalescing bounds standalone-ack traffic on a one-way
// stream to roughly deliveries/WireAckEvery (plus holdoff stragglers),
// with the avoided acks visible in the coalesced counter.
func TestWireAckCoalescingBounds(t *testing.T) {
	cfg := wireTestConfig()
	cfg.WireAckEvery = 8
	var delivered atomic.Uint64
	r := newRelLamellae(cfg, func(dst, src int, ref slab.Ref, msg []byte) {
		delivered.Add(1)
		ref.Release()
	}, nil)
	inner := &loopLam{r: r}
	r.start(inner)
	defer r.close()

	const frames = 100
	payload := make([]byte, 128)
	for i := 0; i < frames; i++ {
		r.send(0, 1, payload) // one-way: acks must go standalone
	}
	// Wait until the sender's retained frames fully drain — i.e. every
	// owed ack was actually sent and applied.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n, _ := r.unackedFrames(0); n == 0 {
			break
		}
		if time.Now().After(deadline) {
			n, _ := r.unackedFrames(0)
			t.Fatalf("%d frames still unacked", n)
		}
		time.Sleep(time.Millisecond)
	}
	if n := delivered.Load(); n != frames {
		t.Fatalf("delivered %d frames, want %d", n, frames)
	}
	wc := &r.counters[1]
	acks := wc.acksSent.Load()
	if acks == 0 {
		t.Fatal("one-way traffic produced no standalone acks")
	}
	// 100 deliveries at ack-every-8 is ~13 acks; slack for holdoff
	// stragglers when the sender pauses. Without coalescing this is 100.
	if acks > 25 {
		t.Fatalf("acksSent = %d for %d one-way frames, want <= 25 (coalescing broken)", acks, frames)
	}
	if co := wc.acksCoalesced.Load(); co < 50 {
		t.Fatalf("acksCoalesced = %d, want >= 50 of %d deliveries", co, frames)
	}
}

// Satellite: with bidirectional traffic the reverse data frames carry
// the cumulative ack (piggyback-preferred), so standalone acks all but
// vanish even though every frame is acknowledged.
func TestWireAckPiggybackSuppression(t *testing.T) {
	cfg := wireTestConfig()
	cfg.WireAckEvery = 8
	cfg.WireAckHoldoff = 5 * time.Millisecond // tight loop below never pauses this long
	var delivered atomic.Uint64
	r := newRelLamellae(cfg, func(dst, src int, ref slab.Ref, msg []byte) {
		delivered.Add(1)
		ref.Release()
	}, nil)
	inner := &loopLam{r: r}
	r.start(inner)
	defer r.close()

	const rounds = 200
	payload := make([]byte, 128)
	for i := 0; i < rounds; i++ {
		r.send(0, 1, payload)
		r.send(1, 0, payload) // piggybacks the ack for the frame above
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		n0, _ := r.unackedFrames(0)
		n1, _ := r.unackedFrames(1)
		if n0 == 0 && n1 == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("frames still unacked: %d + %d", n0, n1)
		}
		time.Sleep(time.Millisecond)
	}
	// Each direction would owe ~rounds/8 urgent standalone acks without
	// piggybacking; the reverse data must have suppressed nearly all.
	for pe := 0; pe < 2; pe++ {
		if acks := r.counters[pe].acksSent.Load(); acks > 5 {
			t.Fatalf("PE%d sent %d standalone acks under bidirectional traffic, want <= 5", pe, acks)
		}
	}
}

// The selective-ack hint must only ever be applied against the exact
// cumulative ack it arrived with: a mispaired bitmap would mark missing
// frames as held and starve their repair. sackHint validates the pairing
// and degrades to "no hint" otherwise.
func TestSackHintPairing(t *testing.T) {
	p := &relPair{}
	p.sackBits.Store(0b101) // peer holds cum+1 and cum+3
	p.sackCum.Store(7)
	if got := p.sackHint(7); got != 0b101 {
		t.Fatalf("sackHint(7) = %b, want 101", got)
	}
	// The caller's ackedTo moved past the hint's base: the bit positions
	// no longer mean anything — the hint must vanish, not shift.
	if got := p.sackHint(9); got != 0 {
		t.Fatalf("sackHint against a newer cum = %b, want 0 (stale hint)", got)
	}
	if got := p.sackHint(3); got != 0 {
		t.Fatalf("sackHint against an older cum = %b, want 0", got)
	}
	// A same-cum refresh (more frames landed out of order) supersedes.
	p.sackBits.Store(0b1101)
	if got := p.sackHint(7); got != 0b1101 {
		t.Fatalf("refreshed sackHint(7) = %b, want 1101", got)
	}
}

// Tentpole: a dropped frame is repaired by the duplicate-ack/SACK fast
// retransmit path within round-trip time scales, not by the timer. With
// the RTO pushed far out of reach, the stream can only keep moving if
// gap-flagged acks (carrying the selective-ack bitmap of frames held
// above the hole) trigger retransmission of the missing frame — so any
// retry observed before the deadline is attributable to fast retransmit.
func TestWireFastRetransmitRepairsWithoutTimer(t *testing.T) {
	cfg := wireTestConfig()
	cfg.RetryInterval = 30 * time.Second
	cfg.WireRTOMin = 30 * time.Second
	cfg.Faults = fabric.NewFaultPlan(13).SetDefault(fabric.LinkFaults{DropRate: 0.05})
	var delivered atomic.Uint64
	r := newRelLamellae(cfg, func(dst, src int, ref slab.Ref, msg []byte) {
		delivered.Add(1)
		ref.Release()
	}, nil)
	inner := &loopLam{r: r}
	r.start(inner)
	defer r.close()

	const frames = 800
	payload := make([]byte, 128)
	for i := 0; i < frames; i++ {
		r.send(0, 1, payload)
	}
	// ~40 of 800 frames drop; every one of them blocks all later in-order
	// deliveries until repaired. A dropped frame in the unreachable tail
	// (no later arrivals to generate gap acks) legitimately needs the
	// timer, so allow a small tail shortfall — everything before it can
	// only have been repaired by fast retransmit.
	deadline := time.Now().Add(10 * time.Second)
	for delivered.Load() < frames-8 {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d/%d frames with the timer parked — fast retransmit dead",
				delivered.Load(), frames)
		}
		time.Sleep(time.Millisecond)
	}
	if r.counters[0].retries.Load() == 0 {
		t.Fatal("5%% drop repaired with zero retransmissions")
	}
}

// Satellite: the delayed-ack holdoff bounds ack latency for sparse
// traffic — a single frame with no successors must still be acked (and
// its retained buffer released) promptly, not after a retry-scale delay.
func TestWireAckHoldoffBoundsSparseAckLatency(t *testing.T) {
	cfg := wireTestConfig()
	cfg.WireAckEvery = 8
	cfg.WireAckHoldoff = time.Millisecond
	// Make a retransmission-driven ack impossible to mistake for the
	// holdoff path: first retry would land far outside the bound.
	cfg.RetryInterval = 5 * time.Second
	cfg.WireRTOMin = 5 * time.Second
	r := newRelLamellae(cfg, func(dst, src int, ref slab.Ref, msg []byte) {
		ref.Release()
	}, nil)
	inner := &loopLam{r: r}
	r.start(inner)
	defer r.close()

	start := time.Now()
	r.send(0, 1, []byte("lone frame"))
	deadline := start.Add(2 * time.Second)
	for {
		if n, _ := r.unackedFrames(0); n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("single frame never acked (holdoff path dead)")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("single-frame ack took %v, want holdoff-scale latency", elapsed)
	}
	if acks := r.counters[1].acksSent.Load(); acks != 1 {
		t.Fatalf("acksSent = %d for one lone frame, want exactly 1", acks)
	}
	if r.counters[0].retries.Load() != 0 {
		t.Fatal("lone frame was retransmitted; ack came from the retry path, not the holdoff")
	}
}
