//go:build unix

package runtime

import (
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"

	"repro/internal/diag"
)

// diagSignalOnce installs the LAMELLAR_DIAG dump signal handler the
// first time a world is built. Values: "1" or "usr1" → SIGUSR1, "usr2"
// → SIGUSR2, anything else (or unset) → no handler. The handler
// goroutine lives for the process (signal dumps must work while a
// world is wedged, which is precisely when it cannot be torn down).
var diagSignalOnce sync.Once

func diagSignalInit() {
	diagSignalOnce.Do(func() {
		var sig os.Signal
		switch strings.ToLower(os.Getenv("LAMELLAR_DIAG")) {
		case "1", "usr1", "sigusr1":
			sig = syscall.SIGUSR1
		case "usr2", "sigusr2":
			sig = syscall.SIGUSR2
		default:
			return
		}
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, sig)
		diag.Infof("diag", "diagnostic dumps armed on %v (LAMELLAR_DIAG)", sig)
		go func() {
			for range ch {
				out, done := diagDumpTarget()
				DumpAllDiagnostics(out)
				done()
			}
		}()
	})
}
