//go:build !unix

package runtime

// diagSignalInit is a no-op on platforms without SIGUSR1/SIGUSR2;
// diagnostic dumps remain available through World.WriteDiagnostics and
// DumpAllDiagnostics.
func diagSignalInit() {}
