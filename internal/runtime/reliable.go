package runtime

import (
	"encoding/binary"
	"fmt"
	mathbits "math/bits"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/diag"
	"repro/internal/fabric"
	"repro/internal/slab"
	"repro/internal/telemetry"
	"repro/internal/telemetry/recorder"
)

// Reliable delivery layer. Every remote lamellae (sim/shmem/tcp) is
// wrapped in a relLamellae that layers a sequence/ack/retry protocol over
// the raw transport, so the runtime survives an adversarial fabric —
// dropped, duplicated, reordered, or delayed frames, transient socket
// failures, and (up to a configurable delivery timeout) link partitions —
// without crashing or corrupting AM semantics. The design mirrors how
// PGAS runtimes such as DART-MPI layer reliable one-sided semantics over
// an unreliable transport.
//
// Wire format: each inner-transport frame is prefixed with a 24-byte
// header — {kind u8, flags u8, pad[6], seq u64, cumAck u64} — keeping the
// body 8-aligned so the serde zero-copy aliasing fast path stays
// effective.
//
//   - kind wireData: seq is the per-(src,dst) stream sequence number,
//     cumAck piggybacks the sender's cumulative receive progress on the
//     reverse direction (all frames with seq < cumAck are acknowledged).
//   - kind wireAck: a standalone cumulative ack, sent when a direction
//     owes acks but has no reverse data to piggyback on. The wireFlagGap
//     flag marks acks sent while the receiver is holding out-of-order
//     frames behind a sequence gap — the sender's fast-retransmit signal.
//     Gap-flagged acks reuse the (otherwise meaningless) seq field as a
//     64-frame selective-ack bitmap: bit j set means frame cumAck+1+j is
//     held out of order, so the sender repairs only the actual holes
//     instead of re-sending whole flights.
//
// Sender: each (src,dst) stream is paced by an AIMD congestion window
// (wire_window.go): at most cwnd frames — and a proportional byte budget
// — may be in flight unacked. Frames beyond the window park on a
// per-stream pending queue; once the pending queue itself exceeds the
// window cap, send blocks, propagating backpressure into the aggregation
// layer instead of queueing unbounded slab frames. Clean cumulative acks
// grow the window (slow start, then additive); every retransmission or
// timeout halves it (once per recovery epoch). Retained frames are
// retransmitted on an RTT-adaptive timeout: ack round trips feed a
// per-stream Jacobson SRTT/RTTVAR estimator (Karn's rule excludes
// retransmitted frames), and the RTO is srtt+4·rttvar clamped to
// [WireRTOMin, RetryBackoffMax], doubling per attempt. A frame older
// than DeliveryTimeout is abandoned: the runtime reconciles its
// envelopes (futures resolve with a *DeliveryError, completion
// accounting is repaired) so nothing hangs and nothing panics.
//
// Receiver: frames apply strictly in sequence order. A frame below the
// expected sequence (or already buffered) is a redelivery and is
// discarded (dedup); a frame above it is buffered until the gap fills,
// bounded by WireOOOWindow — frames beyond the reorder window are
// dropped (the sender's RTO repairs them) so sustained reordering cannot
// grow memory. Acks are coalesced: a cumulative ack is owed after
// WireAckEvery in-order deliveries or WireAckHoldoff after the first
// undone delivery, whichever comes first, and any reverse-direction data
// frame piggybacks (and thereby suppresses) the standalone ack.
//
// Concurrency: onDeliver (called from transport progress goroutines)
// never takes a pair mutex — it only performs lock-free ack/flag updates
// and kicks the drain goroutine, which prunes acked frames, launches
// parked frames into the freed window, wakes blocked senders, and sends
// due standalone acks. The retry ticker is the backstop for
// retransmission, delivery timeouts, and missed ack deadlines.
//
// Fault plans (fabric.FaultPlan) are applied at transmission time, which
// exercises exactly this machinery deterministically in tests.

const (
	wireHeaderBytes = 24
	wireData        = 0xD1
	wireAck         = 0xA7
	// wireFlagGap (header flags byte) marks a standalone ack sent while
	// the receiver holds out-of-order frames behind a sequence gap. Only
	// gap-flagged duplicate acks count toward fast retransmit: an urgent
	// re-ack after a duplicate *delivery* repeats the cumulative ack too,
	// and counting those would let one spurious retransmission breed more
	// (the DSACK problem, solved here with one header bit).
	wireFlagGap = 0x01
)

// relFrame is one retained, possibly-retransmitted data frame. Frames and
// their slab buffers recycle through framePool once cumulatively acked, so
// the steady-state send path performs no heap allocation. gen increments
// on every recycle; frameRef snapshots it so any stale handle touching a
// recycled frame is caught immediately (see frameRef.frame).
//
// All stamps are telemetry.MonoNow monotonic nanos — wall-clock jumps
// must not re-arm (or forever defer) retransmissions.
type relFrame struct {
	seq        uint64
	buf        []byte // header + body, slab-owned
	firstNs    int64  // when send() accepted the frame (park or launch)
	sentNs     int64  // last transmission; 0 while parked
	deadlineNs int64  // next retransmission time
	backoffNs  int64
	attempts   int    // retransmissions (0 = only the initial transmission)
	gen        uint32 // bumped on recycle; use-after-recycle guard
}

var framePool = sync.Pool{New: func() any { return new(relFrame) }}

// frameRef pairs a pooled frame with the generation observed when the
// reference was taken. All later dereferences go through frame(), which
// panics if the frame was recycled out from under the reference — turning
// a silent use-after-recycle (retransmitting another stream's bytes) into
// an immediate, attributable failure under test.
type frameRef struct {
	fr  *relFrame
	gen uint32
}

func (e frameRef) frame() *relFrame {
	if e.fr.gen != e.gen {
		panic("lamellar: reliable-wire frame used after recycle")
	}
	return e.fr
}

// relPair is sender-side state for one (src,dst) stream.
type relPair struct {
	mu      sync.Mutex
	nextSeq uint64
	unacked []frameRef // transmitted, awaiting cumulative ack; ascending seq
	pending []frameRef // parked by the send window, not yet transmitted
	// inflightBytes is the byte total of unacked frames, checked against
	// the window's byte budget at admission.
	inflightBytes int
	win           sendWindow
	est           rttEstimator
	// wake is non-nil while senders block on pending-queue backpressure;
	// closed (and nilled) when the drain path frees space.
	wake chan struct{}

	// ackedTo is the cumulative ack received from the peer; updated
	// lock-free from delivery goroutines (which must never block on mu),
	// pruned by senders and the drain/retry goroutines.
	ackedTo atomic.Uint64
	// ackNs is the MonoNow stamp of the latest cumulative-ack advance —
	// the receive side of the RTT measurement.
	ackNs atomic.Int64
	// rtoNs is the current smoothed retransmission timeout (0 until the
	// estimator has a sample). Stored here so lock-free readers (watchdog,
	// stats) see it without taking mu.
	rtoNs atomic.Int64
	// needDrain flags that an ack advanced and the drain goroutine should
	// prune this pair and launch parked frames.
	needDrain atomic.Bool
	// dupAcks counts consecutive standalone acks that failed to advance
	// ackedTo — the peer repeating its cumulative ack because a gap is
	// blocking in-order delivery. At fastRetxDupAcks the drain goroutine
	// fast-retransmits the head unacked frame (fastRetx flag) instead of
	// waiting out its RTO.
	dupAcks  atomic.Int32
	fastRetx atomic.Bool
	// sackCum/sackBits mirror the latest gap-flagged ack's selective-ack
	// hint: bit j of sackBits means the peer holds frame sackCum+1+j out
	// of order. The pair is read through sackHint, which treats sackCum as
	// a seqlock version so a hint is never applied against the wrong cum —
	// mispairing would mark missing frames as held and starve their
	// repair. A hint that cannot be validated degrades to "no hint".
	sackCum  atomic.Uint64
	sackBits atomic.Uint64
}

// sackHint returns the selective-ack bitmap valid against acked (the
// caller's freshly loaded ackedTo), or 0 when no trustworthy hint exists.
// The writer (onDeliver) stores bits before cum; reading cum around the
// bits load therefore detects any concurrent replacement. sackCum only
// moves forward, so a stable read with cum == acked pairs the bits with
// the right base (same-cum rewrites only refresh the bitmap for the same
// episode). Absent or unverifiable hints are safe: the caller falls back
// to head-only repair and the RTO backstop.
func (p *relPair) sackHint(acked uint64) uint64 {
	for i := 0; i < 4; i++ {
		c := p.sackCum.Load()
		if c != acked {
			return 0
		}
		bits := p.sackBits.Load()
		if p.sackCum.Load() == c {
			return bits
		}
	}
	return 0
}

// fastRetxDupAcks is the duplicate-ack threshold for fast retransmit
// (TCP's classic 3): fewer, and transient reordering of standalone acks
// would trigger spurious repairs; more, and loss detection approaches the
// RTO anyway.
const fastRetxDupAcks = 3

// fastRetxBurst bounds how many presumed-lost frames one duplicate-ack
// signal may repair: enough to cover a dense loss burst inside the SACK
// horizon in one round trip, small enough that a stale hint cannot flood
// the link.
const fastRetxBurst = 16

// oooBody is an out-of-order frame body parked until its gap fills. The
// slab ref travels with the body so ownership transfers to the runtime
// when the frame finally delivers (or is released if it turns out to be a
// duplicate).
type oooBody struct {
	ref  slab.Ref
	body []byte
}

// relRecv is receiver-side state for one (receiver,sender) direction.
// The ack-coalescing fields are atomics because the sender-side transmit
// path reads and clears them (piggyback suppression) while holding its
// own pair mutex — recv.mu must stay a leaf lock that transmit never
// touches (onDeliver holds it while delivering, and delivery can re-enter
// the send path).
type relRecv struct {
	mu   sync.Mutex
	next atomic.Uint64      // all seqs < next delivered in order
	ooo  map[uint64]oooBody // out-of-order bodies awaiting the gap

	owed        atomic.Bool  // an ack is owed to the sender
	owedSinceNs atomic.Int64 // MonoNow of the first undone delivery (0 = none)
	urgent      atomic.Bool  // send the owed ack now (K reached, or dup seen)
	sinceAck    atomic.Int64 // in-order deliveries since the last ack left
	// oooCount mirrors len(ooo) for the lock-free ack path: sendAck sets
	// the wireFlagGap bit from it without taking mu.
	oooCount atomic.Int32
	// sackBits is the outgoing selective-ack bitmap, maintained under mu
	// (bit j ⇒ frame next+1+j is held in ooo), read lock-free by sendAck.
	// Frames held beyond next+64 are simply not advertised — the sender
	// conservatively treats them as missing.
	sackBits atomic.Uint64
}

// wireCounters aggregates one PE's reliable-wire activity.
type wireCounters struct {
	frames        atomic.Uint64 // data frames sent (sender)
	retries       atomic.Uint64 // frames retransmitted (sender)
	timeouts      atomic.Uint64 // frames abandoned after DeliveryTimeout (sender)
	parked        atomic.Uint64 // frames parked by the send window (sender)
	dupDropped    atomic.Uint64 // duplicate frames discarded (receiver)
	oooHeld       atomic.Uint64 // frames buffered out of order (receiver)
	oooDropped    atomic.Uint64 // frames dropped beyond the reorder window (receiver)
	acksSent      atomic.Uint64 // standalone ack frames sent (receiver)
	acksCoalesced atomic.Uint64 // per-frame acks avoided by coalescing/piggyback (receiver)
	faults        atomic.Uint64 // fault-plan injections on this PE's sends
}

// undeliverableFn reconciles an abandoned frame's envelopes.
type undeliverableFn func(src, dst int, payload []byte, cause error)

// relLamellae wraps an inner transport with the reliability protocol.
type relLamellae struct {
	inner   lamellae
	npes    int
	deliver deliverFn
	giveUp  undeliverableFn
	plan    *fabric.FaultPlan // nil = no fault injection

	retryInterval time.Duration
	backoffMax    time.Duration
	deliveryTO    time.Duration // <= 0: never give up
	// retryFloor, when non-nil, is the live retransmission floor (ns) the
	// adaptive tuning controller adjusts; nil or zero falls back to the
	// configured retryInterval. It seeds the RTO for streams with no RTT
	// samples yet — measured streams use their own estimator.
	retryFloor *atomic.Int64

	// Flow-control configuration (Config.Wire*, env LAMELLAR_WIRE_*).
	windowFrames int   // frame-window cap; <= 0 disables windowing
	windowBytes  int   // byte-window cap at full frame window
	ackEvery     int   // coalesce: ack after K in-order deliveries
	ackHoldoffNs int64 // coalesce: or after this holdoff, whichever first
	oooWindow    uint64
	rtoMinNs     int64
	// capFrames/capBytes, when non-nil, are the live window caps the
	// adaptive tuning controller adjusts (LAMELLAR_TUNE=on).
	capFrames *atomic.Int64
	capBytes  *atomic.Int64

	// rec, when non-nil, receives wire round-trip samples (HistWireRTT)
	// and seeds cold streams' RTO from the recorded digest.
	rec *recorder.Recorder

	pairs    [][]*relPair // [src][dst]
	recv     [][]*relRecv // [receiver][sender]
	counters []wireCounters

	sendMu sync.RWMutex // guards inner against send-after-close
	closed bool

	drainKick chan struct{} // capacity 1; coalesces drain wakeups
	stop      chan struct{}
	wg        sync.WaitGroup
}

const (
	minWindowFrames = 8
	minWindowBytes  = 64 << 10
)

func newRelLamellae(cfg Config, deliver deliverFn, giveUp undeliverableFn) *relLamellae {
	npes := cfg.PEs
	r := &relLamellae{
		npes:          npes,
		deliver:       deliver,
		giveUp:        giveUp,
		plan:          cfg.Faults,
		retryInterval: cfg.RetryInterval,
		backoffMax:    cfg.RetryBackoffMax,
		deliveryTO:    cfg.DeliveryTimeout,
		windowFrames:  cfg.WireWindowFrames,
		windowBytes:   cfg.WireWindowBytes,
		ackEvery:      cfg.WireAckEvery,
		ackHoldoffNs:  cfg.WireAckHoldoff.Nanoseconds(),
		rtoMinNs:      cfg.WireRTOMin.Nanoseconds(),
		pairs:         make([][]*relPair, npes),
		recv:          make([][]*relRecv, npes),
		counters:      make([]wireCounters, npes),
		drainKick:     make(chan struct{}, 1),
		stop:          make(chan struct{}),
	}
	if r.windowFrames < 0 {
		r.windowFrames = 0 // windowing disabled
	}
	if cfg.WireOOOWindow > 0 {
		r.oooWindow = uint64(cfg.WireOOOWindow)
	}
	for pe := 0; pe < npes; pe++ {
		r.pairs[pe] = make([]*relPair, npes)
		r.recv[pe] = make([]*relRecv, npes)
		for d := 0; d < npes; d++ {
			p := &relPair{}
			if r.windowFrames > 0 {
				p.win = newSendWindow(minWindowFrames, r.windowFrames)
			}
			r.pairs[pe][d] = p
			r.recv[pe][d] = &relRecv{}
		}
	}
	return r
}

// start installs the inner transport and launches the retry and drain
// goroutines.
func (r *relLamellae) start(inner lamellae) {
	r.inner = inner
	r.wg.Add(2)
	go r.retryLoop()
	go r.drainLoop()
}

func (r *relLamellae) name() LamellaeKind { return r.inner.name() }

// windowCaps reports the live (frames, bytes) window caps: the tuner's
// cells when installed, the static configuration otherwise. Zero frames
// means windowing is disabled.
func (r *relLamellae) windowCaps() (capF, capB int) {
	capF, capB = r.windowFrames, r.windowBytes
	if capF <= 0 {
		return 0, 0
	}
	if r.capFrames != nil {
		if v := r.capFrames.Load(); v > 0 {
			capF = int(v)
		}
	}
	if r.capBytes != nil {
		if v := r.capBytes.Load(); v > 0 {
			capB = int(v)
		}
	}
	if capF < minWindowFrames {
		capF = minWindowFrames
	}
	if capB < minWindowBytes {
		capB = minWindowBytes
	}
	return capF, capB
}

// admitLocked reports whether one more frame of frameLen bytes fits the
// stream's current congestion window. At least one frame is always
// admitted so an oversized frame cannot stall forever. Caller holds p.mu.
func (r *relLamellae) admitLocked(p *relPair, frameLen, capF, capB int) bool {
	if capF == 0 {
		return true // windowing disabled
	}
	inflight := len(p.unacked)
	if inflight == 0 {
		return true
	}
	cwnd := p.win.cwnd
	if cwnd > capF {
		cwnd = capF
	}
	if inflight >= cwnd {
		return false
	}
	// Byte budget scales with the frame window: cwnd/capF of the byte cap.
	budget := int(int64(capB) * int64(cwnd) / int64(capF))
	if budget < minWindowBytes {
		budget = minWindowBytes
	}
	return p.inflightBytes+frameLen <= budget
}

// startFlightLocked moves one frame into the in-flight set and transmits
// it. Caller holds p.mu.
func (r *relLamellae) startFlightLocked(p *relPair, src, dst int, e frameRef, nowNs int64) {
	fr := e.frame()
	rto := r.rtoFor(p, src)
	fr.backoffNs = rto
	fr.deadlineNs = nowNs + rto
	fr.sentNs = nowNs
	p.unacked = append(p.unacked, e)
	p.inflightBytes += len(fr.buf)
	r.transmit(src, dst, fr.buf, fr.seq)
}

// rtoFor reports the retransmission timeout for new flights on p: the
// stream's adaptive RTO when measured, else the recorded wire round-trip
// digest (2× p90), else the static retry floor.
func (r *relLamellae) rtoFor(p *relPair, src int) int64 {
	if ns := p.rtoNs.Load(); ns > 0 {
		return ns
	}
	if r.rec != nil {
		if q := int64(r.rec.PE(src).Hist(recorder.HistWireRTT).Quantile(0.90)); q > 0 {
			rto := 2 * q
			if rto < r.rtoMinNs {
				rto = r.rtoMinNs
			}
			if max := r.backoffMax.Nanoseconds(); rto > max {
				rto = max
			}
			return rto
		}
	}
	return int64(r.floorNow())
}

// send frames msg, retains it for retransmission, and transmits — or, when
// the stream's congestion window is full, parks it on the pending queue
// for the drain goroutine to launch as acks free the window. Once the
// pending queue itself exceeds the window cap, send blocks until space
// frees, propagating backpressure to the caller (the aggregation layer).
// The reliability layer always accepts the frame; transport errors
// surface later (retry) or as a delivery timeout, never as a panic.
func (r *relLamellae) send(src, dst int, msg []byte) error {
	p := r.pairs[src][dst]
	buf := slab.Get(wireHeaderBytes + len(msg))
	buf[0] = wireData
	for i := 1; i < 8; i++ {
		buf[i] = 0 // recycled slab memory: clear the header pad bytes
	}
	copy(buf[wireHeaderBytes:], msg)
	now := telemetry.MonoNow()
	capF, capB := r.windowCaps()
	p.mu.Lock()
	r.pruneLocked(p, src, capF)
	fr := framePool.Get().(*relFrame)
	fr.seq = p.nextSeq
	fr.buf = buf
	fr.firstNs = now
	fr.sentNs = 0
	fr.attempts = 0
	p.nextSeq++
	binary.LittleEndian.PutUint64(buf[8:], fr.seq)
	r.counters[src].frames.Add(1)
	r.emitWire(telemetry.EvWireSend, src, int64(dst), int64(fr.seq), 0)
	e := frameRef{fr: fr, gen: fr.gen}
	// Launch immediately only when nothing older is parked (FIFO) and the
	// window admits it; otherwise park for the drain path.
	if len(p.pending) == 0 && r.admitLocked(p, len(buf), capF, capB) {
		r.startFlightLocked(p, src, dst, e, now)
	} else {
		p.pending = append(p.pending, e)
		r.counters[src].parked.Add(1)
	}
	// Backpressure: block while the parked queue exceeds the window cap.
	// Acks arrive via transport goroutines that never take p.mu, so the
	// drain goroutine can always free space and wake us.
	for capF > 0 && len(p.pending) > capF {
		if p.wake == nil {
			p.wake = make(chan struct{})
		}
		wake := p.wake
		p.mu.Unlock()
		select {
		case <-wake:
		case <-r.stop:
			return nil
		}
		p.mu.Lock()
	}
	p.mu.Unlock()
	return nil
}

// drainPairLocked launches parked frames into whatever window space is
// available and wakes blocked senders once the pending queue is back
// under the cap. Caller holds p.mu.
func (r *relLamellae) drainPairLocked(p *relPair, src, dst int, nowNs int64, capF, capB int) {
	i := 0
	for i < len(p.pending) {
		fr := p.pending[i].frame()
		if !r.admitLocked(p, len(fr.buf), capF, capB) {
			break
		}
		r.startFlightLocked(p, src, dst, p.pending[i], nowNs)
		p.pending[i] = frameRef{}
		i++
	}
	if i > 0 {
		p.pending = append(p.pending[:0], p.pending[i:]...)
	}
	if p.wake != nil && (capF == 0 || len(p.pending) <= capF) {
		close(p.wake)
		p.wake = nil
	}
}

// unackedFrames reports how many data frames src currently retains
// awaiting acknowledgment (in flight or parked) across all destinations,
// and the age of the oldest such frame — the wire backlog the watchdog
// samples into the flight recorder. On a healthy loaded link the count
// hovers above zero but the oldest age stays at ack-latency scale; only a
// stuck link lets a frame's age grow.
func (r *relLamellae) unackedFrames(src int) (total int, oldest time.Duration) {
	now := telemetry.MonoNow()
	capF, _ := r.windowCaps()
	var oldestNs int64
	for dst := 0; dst < r.npes; dst++ {
		if dst == src {
			continue
		}
		p := r.pairs[src][dst]
		p.mu.Lock()
		r.pruneLocked(p, src, capF)
		total += len(p.unacked) + len(p.pending)
		if len(p.unacked) > 0 {
			if age := now - p.unacked[0].frame().firstNs; age > oldestNs {
				oldestNs = age
			}
		}
		if len(p.pending) > 0 {
			if age := now - p.pending[0].frame().firstNs; age > oldestNs {
				oldestNs = age
			}
		}
		p.mu.Unlock()
	}
	return total, time.Duration(oldestNs)
}

// windowStats sums src's live congestion-window state across all
// destinations: total window (frames), frames in flight, frames parked.
// Fed to the telemetry wire gauges.
func (r *relLamellae) windowStats(src int) (window, inflight, parked int) {
	for dst := 0; dst < r.npes; dst++ {
		if dst == src {
			continue
		}
		p := r.pairs[src][dst]
		p.mu.Lock()
		window += p.win.cwnd
		inflight += len(p.unacked)
		parked += len(p.pending)
		p.mu.Unlock()
	}
	return window, inflight, parked
}

// maxRTO reports the largest current adaptive RTO across src's streams
// (0 when no stream has RTT samples yet) — the watchdog folds it into its
// stall threshold so adaptive retransmission cannot outrun stall
// detection.
func (r *relLamellae) maxRTO(src int) int64 {
	var max int64
	for dst := 0; dst < r.npes; dst++ {
		if dst == src {
			continue
		}
		if ns := r.pairs[src][dst].rtoNs.Load(); ns > max {
			max = ns
		}
	}
	return max
}

// floorNow reports the static initial retransmission timeout used before
// a stream has RTT samples.
func (r *relLamellae) floorNow() time.Duration {
	if r.retryFloor != nil {
		if ns := r.retryFloor.Load(); ns > 0 {
			return time.Duration(ns)
		}
	}
	return r.retryInterval
}

// releaseFrame recycles one retained frame: slab buffer back to its size
// class, frame struct back to framePool with its generation bumped so any
// stale frameRef trips the guard. The caller must hold the only live
// reference (acked under p.mu, or abandoned after removal from unacked).
func (r *relLamellae) releaseFrame(e frameRef) {
	fr := e.frame()
	slab.Put(fr.buf)
	fr.buf = nil
	fr.gen++
	framePool.Put(fr)
}

// pruneLocked releases frames the peer has cumulatively acked back to the
// slab/frame pools, credits the congestion window for cleanly acked
// frames, and feeds Karn-valid round trips into the stream's RTT
// estimator. Caller holds p.mu.
func (r *relLamellae) pruneLocked(p *relPair, src, capF int) {
	acked := p.ackedTo.Load()
	ackNs := p.ackNs.Load()
	i, sampled := 0, false
	for i < len(p.unacked) && p.unacked[i].frame().seq < acked {
		fr := p.unacked[i].frame()
		p.inflightBytes -= len(fr.buf)
		if s := rttSampleNs(ackNs, fr.sentNs, fr.attempts); s > 0 {
			p.est.observe(s)
			sampled = true
			if r.rec != nil {
				r.rec.PE(src).Record(recorder.HistWireRTT, s)
			}
		}
		r.releaseFrame(p.unacked[i])
		p.unacked[i] = frameRef{}
		i++
	}
	if i > 0 {
		p.unacked = append(p.unacked[:0], p.unacked[i:]...)
		if capF > 0 {
			p.win.onAck(i, capF)
		}
	}
	if sampled {
		p.rtoNs.Store(p.est.rto(r.rtoMinNs, r.backoffMax.Nanoseconds()))
	}
	// TCP-style timer restart: an advancing cumulative ack proves the
	// stream is moving, so outstanding frames get a fresh RTO measured
	// from the ack, not from their (possibly much older) transmission.
	// Without this, per-frame timers fire spuriously whenever ack
	// coalescing batches the acknowledgment of a deep window — the
	// dominant retransmit source on a clean fabric. A genuine loss still
	// times out: the cumulative ack cannot advance past a missing frame,
	// so its refreshes stop one RTO before the head frame's timer fires.
	if i > 0 && len(p.unacked) > 0 {
		floor := ackNs + r.rtoFor(p, src)
		for _, e := range p.unacked {
			if fr := e.frame(); fr.deadlineNs < floor {
				fr.deadlineNs = floor
			}
		}
	}
}

// transmit pushes one frame (a data frame owned by a relFrame, or a
// standalone ack) through the fault plan and onto the inner transport,
// patching the piggybacked cumulative ack. Callers of data-frame
// transmissions hold the pair mutex, serializing access to fr.buf. The
// reverse-direction ack state it clears is all atomics — recv.mu is
// never taken here (lock-order: delivery can re-enter the send path).
func (r *relLamellae) transmit(src, dst int, buf []byte, seq uint64) {
	// Piggyback: tell dst how far src has received on the reverse
	// direction, and clear the owed-ack state it covers — the data frame
	// replaces the standalone ack (piggyback-preferred suppression).
	rs := r.recv[src][dst]
	binary.LittleEndian.PutUint64(buf[16:], rs.next.Load())
	rs.owed.Store(false)
	rs.urgent.Store(false)
	rs.owedSinceNs.Store(0)
	if n := rs.sinceAck.Swap(0); n > 0 {
		r.counters[src].acksCoalesced.Add(uint64(n))
	}

	d := r.plan.Decide(src, dst)
	if d.Kind != fabric.FaultNone {
		r.counters[src].faults.Add(1)
		r.emitWire(telemetry.EvWireFault, src, int64(dst), int64(seq), uint8(d.Kind))
	}
	switch d.Kind {
	case fabric.FaultDrop:
		return
	case fabric.FaultDup:
		r.innerSend(src, dst, buf)
		r.innerSend(src, dst, buf)
		return
	case fabric.FaultReorder, fabric.FaultDelay:
		// Defer a private copy so later frames overtake it; retransmits
		// may patch buf concurrently with the timer, so aliasing is not
		// safe. The copy comes from (and returns to) the slab: the inner
		// transports all copy-or-transmit synchronously, so the buffer is
		// ours again when innerSend returns.
		cp := slab.Get(len(buf))
		copy(cp, buf)
		time.AfterFunc(d.Delay, func() {
			r.innerSend(src, dst, cp)
			slab.Put(cp)
		})
		return
	}
	r.innerSend(src, dst, buf)
}

// innerSend hands a frame to the raw transport unless the layer closed.
// Transport errors are swallowed: the frame stays unacked and the retry
// path re-sends it (for TCP, after the broken connection was torn down
// and a re-dial becomes possible).
func (r *relLamellae) innerSend(src, dst int, buf []byte) {
	r.sendMu.RLock()
	defer r.sendMu.RUnlock()
	if r.closed {
		return
	}
	if err := r.inner.send(src, dst, buf); err != nil {
		diag.Warnf("wire", "PE%d→PE%d transport error (will retry): %v", src, dst, err)
	}
}

// onDeliver is the inner transport's delivery callback: it strips the
// reliability header, applies acks, dedups, restores order, and passes
// in-order bodies to the runtime. It must never block on a pair mutex —
// transport progress engines call it while senders may be stalled on
// transport backpressure — so all sender-side reactions (prune, window
// credit, launching parked frames) are deferred to the drain goroutine
// via lock-free flags.
//
// Buffer ownership: ref owns msg's backing slab buffer (zero Ref for
// non-slab buffers such as reassembled fragments). onDeliver either
// releases it (acks, duplicates, corrupt frames), parks it with an
// out-of-order body, or transfers it to the runtime along with the
// delivered body.
func (r *relLamellae) onDeliver(dst, src int, ref slab.Ref, msg []byte) {
	if len(msg) < wireHeaderBytes || (msg[0] != wireData && msg[0] != wireAck) {
		diag.Errorf("wire", "PE%d: corrupt wire frame from PE%d (%d bytes)", dst, src, len(msg))
		ref.Release()
		return
	}
	cum := binary.LittleEndian.Uint64(msg[16:])
	// The frame traveled src→dst, so its cumAck acknowledges the dst→src
	// stream, whose sender-side state lives at pairs[dst][src].
	pd := r.pairs[dst][src]
	if maxUpdate(&pd.ackedTo, cum) {
		pd.ackNs.Store(telemetry.MonoNow())
		pd.dupAcks.Store(0)
		pd.needDrain.Store(true)
		r.kickDrain()
	} else if msg[0] == wireAck && msg[1]&wireFlagGap != 0 && cum == pd.ackedTo.Load() {
		// A gap-flagged standalone ack that acknowledges nothing new is the
		// peer's loss signal: its receive stream is stuck at cum while later
		// frames keep arriving out of order. Two triggers arm fast
		// retransmit, mirroring TCP's dupthresh and SACK-based recovery:
		//
		//   - fastRetxDupAcks repeated acks (the classic count — robust
		//     when the peer holds only one or two frames), or
		//   - a single ack whose SACK bitmap already advertises
		//     fastRetxDupAcks+ frames held above the gap. Those frames
		//     departed after the missing one and arrived — the same
		//     evidence the dup-ack count accumulates, delivered at once.
		//     Essential here because OOO arrivals burst faster than the
		//     ack path runs: one urgent ack coalesces a whole burst, so
		//     the per-ack counter may never reach threshold.
		//
		// Piggybacked cums and unflagged re-acks count toward neither —
		// reverse data repeats the cum whenever the forward direction is
		// simply idle, and dedup re-acks repeat it without any gap.
		held := mathbits.OnesCount64(binary.LittleEndian.Uint64(msg[8:]))
		if pd.dupAcks.Add(1) == fastRetxDupAcks || held >= fastRetxDupAcks {
			pd.fastRetx.Store(true)
			pd.needDrain.Store(true)
			r.kickDrain()
		}
	}
	if msg[0] == wireAck {
		if msg[1]&wireFlagGap != 0 {
			// Stash the selective-ack hint; bits first so a reader pairing
			// them with the new cum sees at worst a subset.
			pd.sackBits.Store(binary.LittleEndian.Uint64(msg[8:]))
			pd.sackCum.Store(cum)
		}
		ref.Release()
		return
	}
	seq := binary.LittleEndian.Uint64(msg[8:])
	body := msg[wireHeaderBytes:]
	rs := r.recv[dst][src]
	rs.mu.Lock()
	next := rs.next.Load()
	switch {
	case seq < next:
		// Redelivery of something already consumed: dedup, and re-ack
		// urgently so the sender stops retransmitting.
		rs.mu.Unlock()
		ref.Release()
		r.counters[dst].dupDropped.Add(1)
		r.emitWire(telemetry.EvWireDedup, dst, int64(src), int64(seq), 0)
		rs.owed.Store(true)
		rs.urgent.Store(true)
		r.kickDrain()
		return
	case seq > next:
		if r.oooWindow > 0 && seq >= next+r.oooWindow {
			// Beyond the reorder window: drop rather than buffer, keeping
			// receiver memory flat under sustained reordering. The
			// sender's repair path re-sends the frame once the gap closes.
			rs.mu.Unlock()
			ref.Release()
			r.counters[dst].oooDropped.Add(1)
			r.emitWire(telemetry.EvWireOOODrop, dst, int64(src), int64(seq), 0)
			rs.owed.Store(true)
			rs.urgent.Store(true)
			r.kickDrain()
			return
		}
		if rs.ooo == nil {
			rs.ooo = make(map[uint64]oooBody)
		}
		if _, dup := rs.ooo[seq]; dup {
			rs.mu.Unlock()
			ref.Release()
			r.counters[dst].dupDropped.Add(1)
			r.emitWire(telemetry.EvWireDedup, dst, int64(src), int64(seq), 0)
			rs.owed.Store(true)
			rs.urgent.Store(true)
			r.kickDrain()
			return
		}
		rs.ooo[seq] = oooBody{ref: ref, body: body}
		rs.oooCount.Store(int32(len(rs.ooo)))
		if off := seq - next; off <= 64 {
			rs.sackBits.Store(rs.sackBits.Load() | 1<<(off-1))
		}
		rs.mu.Unlock()
		r.counters[dst].oooHeld.Add(1)
		// Re-ack urgently: every out-of-order arrival repeats the stuck
		// cumulative ack, and that duplicate-ack stream is what lets the
		// sender fast-retransmit the gap frame instead of waiting out its
		// RTO. Coalescing these would blind the loss detector.
		rs.owed.Store(true)
		rs.urgent.Store(true)
		r.kickDrain()
		return
	}
	// In order: deliver, then drain any buffered successors. Ownership of
	// each body's buffer transfers to the runtime here.
	r.deliver(dst, src, ref, body)
	next++
	delivered := int64(1)
	for {
		b, ok := rs.ooo[next]
		if !ok {
			break
		}
		delete(rs.ooo, next)
		r.deliver(dst, src, b.ref, b.body)
		next++
		delivered++
	}
	rs.next.Store(next)
	if delivered > 1 {
		rs.oooCount.Store(int32(len(rs.ooo)))
	}
	// The SACK bitmap is relative to next: delivering d frames shifts
	// every advertised hold d positions closer (Go defines >= 64-bit
	// shifts as zero, so a big drain just clears it). Frames held beyond
	// the 64-frame horizon drop out of the advertisement — conservative,
	// the sender re-sends them at worst.
	if sb := rs.sackBits.Load(); sb != 0 {
		rs.sackBits.Store(sb >> uint(delivered))
	}
	rs.mu.Unlock()
	// Ack coalescing: urgent after K deliveries, else owed on a holdoff.
	rs.owed.Store(true)
	if rs.sinceAck.Add(delivered) >= int64(r.ackEvery) {
		rs.urgent.Store(true)
		r.kickDrain()
	} else {
		r.ackOwedLater(rs)
	}
}

// ackOwedLater marks a non-urgent owed ack, stamping the holdoff start if
// this is the first undone delivery of the episode, and kicks the drain
// goroutine so it can arm the holdoff timer.
func (r *relLamellae) ackOwedLater(rs *relRecv) {
	rs.owed.Store(true)
	rs.owedSinceNs.CompareAndSwap(0, telemetry.MonoNow())
	r.kickDrain()
}

// kickDrain wakes the drain goroutine (coalescing: the kick channel holds
// at most one pending wakeup).
func (r *relLamellae) kickDrain() {
	select {
	case r.drainKick <- struct{}{}:
	default:
	}
}

// maxUpdate raises a to v if v is larger (lock-free monotonic max) and
// reports whether it advanced.
func maxUpdate(a *atomic.Uint64, v uint64) bool {
	for {
		cur := a.Load()
		if v <= cur {
			return false
		}
		if a.CompareAndSwap(cur, v) {
			return true
		}
	}
}

// drainLoop is the ack-reaction goroutine: kicked (lock-free) by
// onDeliver, it prunes acked frames, launches parked frames into freed
// window space, wakes blocked senders, and sends standalone acks — urgent
// ones immediately, coalesced ones when their holdoff expires (it arms a
// timer for the earliest outstanding holdoff). Keeping this off the
// retry ticker matters: with sub-millisecond adaptive RTOs, ack latency
// must be bounded by the holdoff, not the ticker period, or clean links
// would retransmit spuriously.
func (r *relLamellae) drainLoop() {
	defer r.wg.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-r.stop:
			return
		case <-r.drainKick:
		case <-timer.C:
		}
		// Earliest not-yet-due ack holdoff across all directions, as a
		// delay from now; -1 when none.
		wait := int64(-1)
		now := telemetry.MonoNow()
		capF, capB := r.windowCaps()
		for pe := 0; pe < r.npes; pe++ {
			for peer := 0; peer < r.npes; peer++ {
				if pe == peer {
					continue
				}
				p := r.pairs[pe][peer]
				if p.needDrain.Swap(false) {
					p.mu.Lock()
					r.pruneLocked(p, pe, capF)
					if p.fastRetx.Swap(false) {
						r.fastRetransmitLocked(p, pe, peer, now)
					}
					r.drainPairLocked(p, pe, peer, now, capF, capB)
					p.mu.Unlock()
				}
				rs := r.recv[pe][peer]
				if !rs.owed.Load() {
					continue
				}
				if rs.urgent.Load() {
					r.sendAck(pe, peer)
					continue
				}
				st := rs.owedSinceNs.Load()
				if st == 0 {
					continue
				}
				due := st + r.ackHoldoffNs - now
				if due <= 0 {
					r.sendAck(pe, peer)
				} else if wait < 0 || due < wait {
					wait = due
				}
			}
		}
		if wait >= 0 {
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(time.Duration(wait))
		}
	}
}

// fastRetransmitLocked re-sends the head unacked frame after the peer's
// duplicate-ack gap signal: fastRetxDupAcks standalone acks repeating the
// same cumulative ack while later frames keep landing out of order at the
// receiver. That detects the loss within ~one round trip of the drop; the
// RTO remains the backstop for tail loss (the last frames of a flight
// have no later arrivals to generate duplicate acks). The frame's timer
// restarts without doubling (a duplicate-ack signal is a fresh loss
// detection, not timer escalation), and the eventual ack is Karn-excluded
// from RTT sampling like any retransmission.
//
// Deliberately NOT charged to the congestion window: the duplicate-ack
// stream proves the link is flowing — later frames are arriving and
// being re-acked — so this is a single-frame repair of non-congestive
// damage (or mere reordering), not a sign the pipe shrank. Halving here
// lets a reorder-heavy fabric grind the window down on frames that were
// never lost. The window charge stays on the RTO path, where the silence
// of the timer is evidence the pipe is actually stalled. Caller holds
// p.mu, after pruning.
func (r *relLamellae) fastRetransmitLocked(p *relPair, src, dst int, nowNs int64) {
	acked := p.ackedTo.Load()
	bits := p.sackHint(acked)
	// hiHeld is the highest frame the peer advertises holding. Every
	// unacked frame below it that is not itself advertised was overtaken
	// by a later arrival — presume it lost and repair it now. Without a
	// hint, only the head frame (the one the cum ack is stuck on) is
	// repaired, the pre-SACK behavior.
	hiHeld := acked
	if bits != 0 {
		hiHeld = acked + 1 + uint64(mathbits.Len64(bits)-1)
	}
	resent := 0
	for _, e := range p.unacked {
		fr := e.frame()
		if fr.seq != acked && fr.seq > hiHeld {
			break // no evidence anything overtook these frames
		}
		if off := fr.seq - acked; off >= 1 && off <= 64 && bits&(1<<(off-1)) != 0 {
			continue // peer holds it
		}
		if fr.attempts > 0 && nowNs < fr.deadlineNs {
			// Already repaired and its timer is still running — a burst of
			// duplicate acks for the same gap must not become a retransmit
			// storm.
			continue
		}
		fr.attempts++
		fr.sentNs = nowNs
		fr.deadlineNs = nowNs + fr.backoffNs
		r.counters[src].retries.Add(1)
		r.emitWire(telemetry.EvWireRetry, src, int64(dst), int64(fr.seq), 1)
		r.transmit(src, dst, fr.buf, fr.seq)
		if resent++; resent >= fastRetxBurst {
			break // bound the repair burst; the next signal continues
		}
	}
	p.dupAcks.Store(0)
}

// retryLoop is the background ticker driving retransmissions,
// delivery-timeout give-ups, and (as a backstop to the drain goroutine)
// overdue standalone acks.
func (r *relLamellae) retryLoop() {
	defer r.wg.Done()
	tick := r.retryInterval / 8
	if r.rtoMinNs > 0 {
		// Adaptive RTOs can sit well below the static floor; tick at half
		// the RTO clamp so a due retransmission is never late by more than
		// ~half its timeout.
		if half := time.Duration(r.rtoMinNs / 2); half < tick {
			tick = half
		}
	}
	if tick < 100*time.Microsecond {
		tick = 100 * time.Microsecond
	}
	if tick > 2*time.Millisecond {
		tick = 2 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
		}
		now := telemetry.MonoNow()
		for src := 0; src < r.npes; src++ {
			for dst := 0; dst < r.npes; dst++ {
				if src == dst {
					continue
				}
				r.sweepPair(src, dst, now)
				rs := r.recv[src][dst]
				if rs.owed.Load() {
					if st := rs.owedSinceNs.Load(); rs.urgent.Load() ||
						(st != 0 && now-st >= r.ackHoldoffNs) {
						r.sendAck(src, dst)
					}
				}
			}
		}
	}
}

// sweepPair retransmits overdue frames of one stream (halving its
// congestion window once per recovery epoch), abandons frames — in
// flight or still parked — past the delivery timeout, and launches
// parked frames into whatever window space the sweep freed.
func (r *relLamellae) sweepPair(src, dst int, nowNs int64) {
	p := r.pairs[src][dst]
	capF, capB := r.windowCaps()
	p.mu.Lock()
	if len(p.unacked) == 0 && len(p.pending) == 0 {
		p.mu.Unlock()
		return
	}
	r.pruneLocked(p, src, capF)
	// Fresh selective-ack hint, if any: expired frames the peer advertises
	// holding get their timer re-armed instead of a retransmission —
	// re-sending them would be go-back-N waste when the link needs only
	// the actual holes.
	ackedNow := p.ackedTo.Load()
	sackBits := p.sackHint(ackedNow)
	var abandoned []frameRef
	keep := p.unacked[:0]
	for _, e := range p.unacked {
		fr := e.frame()
		if nowNs < fr.deadlineNs {
			keep = append(keep, e)
			continue
		}
		if r.deliveryTO > 0 && nowNs-fr.firstNs >= r.deliveryTO.Nanoseconds() {
			abandoned = append(abandoned, e)
			p.inflightBytes -= len(fr.buf)
			r.counters[src].timeouts.Add(1)
			r.emitWire(telemetry.EvWireTimeout, src, int64(dst), int64(fr.seq), 0)
			continue
		}
		if off := fr.seq - ackedNow; off >= 1 && off <= 64 && sackBits&(1<<(off-1)) != 0 {
			fr.deadlineNs = nowNs + fr.backoffNs
			keep = append(keep, e)
			continue
		}
		fr.attempts++
		fr.backoffNs *= 2
		if max := r.backoffMax.Nanoseconds(); fr.backoffNs > max {
			fr.backoffNs = max
		}
		fr.deadlineNs = nowNs + fr.backoffNs
		fr.sentNs = nowNs
		if capF > 0 {
			p.win.onLoss(fr.seq, p.nextSeq)
		}
		r.counters[src].retries.Add(1)
		r.emitWire(telemetry.EvWireRetry, src, int64(dst), int64(fr.seq), 0)
		r.transmit(src, dst, fr.buf, fr.seq)
		keep = append(keep, e)
	}
	for i := len(keep); i < len(p.unacked); i++ {
		p.unacked[i] = frameRef{}
	}
	p.unacked = keep
	// Parked frames age toward the delivery timeout too — under a
	// partition the window never opens, and a frame that was never
	// transmitted must still resolve its futures rather than hang.
	if r.deliveryTO > 0 && len(p.pending) > 0 {
		keepP := p.pending[:0]
		for _, e := range p.pending {
			fr := e.frame()
			if nowNs-fr.firstNs >= r.deliveryTO.Nanoseconds() {
				abandoned = append(abandoned, e)
				r.counters[src].timeouts.Add(1)
				r.emitWire(telemetry.EvWireTimeout, src, int64(dst), int64(fr.seq), 0)
				continue
			}
			keepP = append(keepP, e)
		}
		for i := len(keepP); i < len(p.pending); i++ {
			p.pending[i] = frameRef{}
		}
		p.pending = keepP
	}
	r.drainPairLocked(p, src, dst, nowNs, capF, capB)
	p.mu.Unlock()
	// Reconcile outside the pair lock: the handler touches world state
	// (futures, completion accounting) and must not nest under it.
	for _, e := range abandoned {
		fr := e.frame()
		attempts := fr.attempts
		if fr.sentNs != 0 {
			attempts++ // count the initial transmission
		}
		err := &DeliveryError{
			Src: src, Dst: dst,
			Attempts: attempts,
			Elapsed:  time.Duration(nowNs - fr.firstNs),
		}
		// Distinguish "never arrived" from "arrived, but the reverse-path
		// wire ack was lost". The receiver's cumulative counter advances
		// strictly in order, so seq < next proves the frame was delivered
		// and its envelopes processed — the futures it carried were
		// resolved by real returns/acks, and reconciling it again would
		// double-credit completion counters (completed > issued), which
		// wedges finalize's quiescence sum forever (ISSUE 10). Only the
		// sender-side ack stream is broken; retire the frame quietly.
		if fr.seq < r.recv[dst][src].next.Load() {
			diag.Warnf("wire", "PE%d→PE%d frame %d timed out after delivery (lost wire acks); skipping reconciliation", src, dst, fr.seq)
		} else {
			diag.Errorf("wire", "%s", err.Error())
			if r.giveUp != nil {
				r.giveUp(src, dst, fr.buf[wireHeaderBytes:], err)
			}
		}
		// The reconciler's zero-copy decode may alias the payload, so the
		// abandoned buffer goes to the GC instead of back to the slab; the
		// frame struct itself still recycles. Give-ups are the exceptional
		// path — allocation here is irrelevant.
		fr.buf = nil
		fr.gen++
		framePool.Put(fr)
	}
}

// sendAck emits a standalone cumulative ack pe→peer, consuming the owed
// state (a delivery racing in after the clear simply re-arms it). The ack
// buffer comes from the slab and returns to it once the inner transport
// has copied or written it (a stack array would escape through the
// transport interface call and allocate per ack).
func (r *relLamellae) sendAck(pe, peer int) {
	rs := r.recv[pe][peer]
	rs.owed.Store(false)
	rs.urgent.Store(false)
	rs.owedSinceNs.Store(0)
	if n := rs.sinceAck.Swap(0); n > 1 {
		r.counters[pe].acksCoalesced.Add(uint64(n - 1))
	}
	buf := slab.Get(wireHeaderBytes)
	for i := range buf {
		buf[i] = 0
	}
	buf[0] = wireAck
	// Snapshot (cum, sackBits) under mu: the bitmap is relative to next,
	// and a drain advancing next between two lock-free reads would shift
	// the pairing — the ack would advertise frames ABOVE the truly held
	// ones, and the sender would defer repairing frames that are actually
	// missing. rs.mu is a leaf lock and callers (drain/retry goroutines)
	// hold nothing here.
	rs.mu.Lock()
	cum := rs.next.Load()
	if len(rs.ooo) > 0 {
		buf[1] = wireFlagGap
		binary.LittleEndian.PutUint64(buf[8:], rs.sackBits.Load())
	}
	rs.mu.Unlock()
	binary.LittleEndian.PutUint64(buf[16:], cum)
	r.counters[pe].acksSent.Add(1)
	r.emitWire(telemetry.EvWireAck, pe, int64(peer), int64(cum), 0)
	d := r.plan.Decide(pe, peer)
	switch d.Kind {
	case fabric.FaultDrop:
		// A lost ack re-arms via the sender's retransmit → dedup → owed.
		r.counters[pe].faults.Add(1)
		slab.Put(buf)
		return
	case fabric.FaultReorder, fabric.FaultDelay:
		r.counters[pe].faults.Add(1)
		time.AfterFunc(d.Delay, func() {
			r.innerSend(pe, peer, buf)
			slab.Put(buf)
		})
		return
	}
	r.innerSend(pe, peer, buf)
	slab.Put(buf)
}

// emitWire records one reliable-wire telemetry event.
func (r *relLamellae) emitWire(kind telemetry.EventKind, pe int, arg1, arg2 int64, sub uint8) {
	if !telemetry.Enabled() {
		return
	}
	c := telemetry.C()
	if c == nil {
		return
	}
	c.Emit(telemetry.Event{
		TS: c.Now(), Kind: kind, Sub: sub,
		PE: int32(pe), Worker: telemetry.TidNet,
		Arg1: arg1, Arg2: arg2,
	})
}

// close stops the retry/drain machinery, then the inner transport. Any
// frames still unacked were already delivered (the runtime only closes
// after distributed quiescence) — only their acks were in flight. Senders
// blocked on window backpressure observe the stop channel and return.
func (r *relLamellae) close() {
	close(r.stop)
	r.wg.Wait()
	r.sendMu.Lock()
	r.closed = true
	r.sendMu.Unlock()
	r.inner.close()
}

// DeliveryError reports a wire frame the reliable layer abandoned after
// exhausting its delivery timeout — a partitioned or persistently lossy
// link. Futures waiting on AMs carried by the frame resolve with this
// error; fire-and-forget AMs are marked complete so WaitAll cannot hang.
type DeliveryError struct {
	// Src and Dst identify the link.
	Src, Dst int
	// Attempts is how many transmissions were made (0: the frame never
	// left the send window before the timeout, e.g. under a partition
	// with a saturated window).
	Attempts int
	// Elapsed is how long delivery was attempted.
	Elapsed time.Duration
}

func (e *DeliveryError) Error() string {
	return fmt.Sprintf("lamellar: delivery PE%d→PE%d timed out after %d attempts over %v",
		e.Src, e.Dst, e.Attempts, e.Elapsed.Round(time.Millisecond))
}
