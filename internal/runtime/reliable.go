package runtime

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/diag"
	"repro/internal/fabric"
	"repro/internal/slab"
	"repro/internal/telemetry"
)

// Reliable delivery layer. Every remote lamellae (sim/shmem/tcp) is
// wrapped in a relLamellae that layers a sequence/ack/retry protocol over
// the raw transport, so the runtime survives an adversarial fabric —
// dropped, duplicated, reordered, or delayed frames, transient socket
// failures, and (up to a configurable delivery timeout) link partitions —
// without crashing or corrupting AM semantics. The design mirrors how
// PGAS runtimes such as DART-MPI layer reliable one-sided semantics over
// an unreliable transport.
//
// Wire format: each inner-transport frame is prefixed with a 24-byte
// header — {kind u8, pad[7], seq u64, cumAck u64} — keeping the body
// 8-aligned so the serde zero-copy aliasing fast path stays effective.
//
//   - kind wireData: seq is the per-(src,dst) stream sequence number,
//     cumAck piggybacks the sender's cumulative receive progress on the
//     reverse direction (all frames with seq < cumAck are acknowledged).
//   - kind wireAck: a standalone cumulative ack, sent by the retry ticker
//     when a direction owes acks but has no reverse data to piggyback on.
//
// Sender: frames are retained per destination until cumulatively acked;
// the retry ticker retransmits frames whose backoff deadline passed,
// doubling the backoff up to RetryBackoffMax. A frame older than
// DeliveryTimeout is abandoned: the runtime reconciles its envelopes
// (futures resolve with a *DeliveryError, completion accounting is
// repaired) so nothing hangs and nothing panics.
//
// Receiver: frames apply strictly in sequence order. A frame below the
// expected sequence (or already buffered) is a redelivery and is
// discarded (dedup); a frame above it is buffered until the gap fills.
// The dedup window is exact: the cumulative counter rejects everything
// already delivered, the out-of-order buffer dedups everything ahead.
//
// Fault plans (fabric.FaultPlan) are applied at transmission time, which
// exercises exactly this machinery deterministically in tests.

const (
	wireHeaderBytes = 24
	wireData        = 0xD1
	wireAck         = 0xA7
)

// relFrame is one retained, possibly-retransmitted data frame. Frames and
// their slab buffers recycle through framePool once cumulatively acked, so
// the steady-state send path performs no heap allocation. gen increments
// on every recycle; frameRef snapshots it so any stale handle touching a
// recycled frame is caught immediately (see frameRef.frame).
type relFrame struct {
	seq      uint64
	buf      []byte // header + body, slab-owned
	first    time.Time
	deadline time.Time // next retransmission time
	backoff  time.Duration
	attempts int
	gen      uint32 // bumped on recycle; use-after-recycle guard
}

var framePool = sync.Pool{New: func() any { return new(relFrame) }}

// frameRef pairs a pooled frame with the generation observed when the
// reference was taken. All later dereferences go through frame(), which
// panics if the frame was recycled out from under the reference — turning
// a silent use-after-recycle (retransmitting another stream's bytes) into
// an immediate, attributable failure under test.
type frameRef struct {
	fr  *relFrame
	gen uint32
}

func (e frameRef) frame() *relFrame {
	if e.fr.gen != e.gen {
		panic("lamellar: reliable-wire frame used after recycle")
	}
	return e.fr
}

// relPair is sender-side state for one (src,dst) stream.
type relPair struct {
	mu      sync.Mutex
	nextSeq uint64
	unacked []frameRef // ascending seq
	// ackedTo is the cumulative ack received from the peer; updated
	// lock-free from delivery goroutines (which must never block on mu),
	// pruned by senders and the retry ticker.
	ackedTo atomic.Uint64
}

// oooBody is an out-of-order frame body parked until its gap fills. The
// slab ref travels with the body so ownership transfers to the runtime
// when the frame finally delivers (or is released if it turns out to be a
// duplicate).
type oooBody struct {
	ref  slab.Ref
	body []byte
}

// relRecv is receiver-side state for one (receiver,sender) direction.
type relRecv struct {
	mu   sync.Mutex
	next atomic.Uint64       // all seqs < next delivered in order
	ooo  map[uint64]oooBody  // out-of-order bodies awaiting the gap
	owed atomic.Bool         // an ack is owed to the sender
}

// wireCounters aggregates one PE's reliable-wire activity.
type wireCounters struct {
	frames     atomic.Uint64 // data frames sent (sender)
	retries    atomic.Uint64 // frames retransmitted (sender)
	timeouts   atomic.Uint64 // frames abandoned after DeliveryTimeout (sender)
	dupDropped atomic.Uint64 // duplicate frames discarded (receiver)
	oooHeld    atomic.Uint64 // frames buffered out of order (receiver)
	acksSent   atomic.Uint64 // standalone ack frames sent (receiver)
	faults     atomic.Uint64 // fault-plan injections on this PE's sends
}

// undeliverableFn reconciles an abandoned frame's envelopes.
type undeliverableFn func(src, dst int, payload []byte, cause error)

// relLamellae wraps an inner transport with the reliability protocol.
type relLamellae struct {
	inner   lamellae
	npes    int
	deliver deliverFn
	giveUp  undeliverableFn
	plan    *fabric.FaultPlan // nil = no fault injection

	retryInterval time.Duration
	backoffMax    time.Duration
	deliveryTO    time.Duration // <= 0: never give up
	// retryFloor, when non-nil, is the live retransmission floor (ns) the
	// adaptive tuning controller adjusts; nil or zero falls back to the
	// configured retryInterval. Only new sends read it — frames in flight
	// keep the backoff they started with.
	retryFloor *atomic.Int64

	pairs    [][]*relPair // [src][dst]
	recv     [][]*relRecv // [receiver][sender]
	counters []wireCounters

	sendMu sync.RWMutex // guards inner against send-after-close
	closed bool

	stop chan struct{}
	wg   sync.WaitGroup
}

func newRelLamellae(cfg Config, deliver deliverFn, giveUp undeliverableFn) *relLamellae {
	npes := cfg.PEs
	r := &relLamellae{
		npes:          npes,
		deliver:       deliver,
		giveUp:        giveUp,
		plan:          cfg.Faults,
		retryInterval: cfg.RetryInterval,
		backoffMax:    cfg.RetryBackoffMax,
		deliveryTO:    cfg.DeliveryTimeout,
		pairs:         make([][]*relPair, npes),
		recv:          make([][]*relRecv, npes),
		counters:      make([]wireCounters, npes),
		stop:          make(chan struct{}),
	}
	for pe := 0; pe < npes; pe++ {
		r.pairs[pe] = make([]*relPair, npes)
		r.recv[pe] = make([]*relRecv, npes)
		for d := 0; d < npes; d++ {
			r.pairs[pe][d] = &relPair{}
			r.recv[pe][d] = &relRecv{}
		}
	}
	return r
}

// start installs the inner transport and launches the retry ticker.
func (r *relLamellae) start(inner lamellae) {
	r.inner = inner
	r.wg.Add(1)
	go r.retryLoop()
}

func (r *relLamellae) name() LamellaeKind { return r.inner.name() }

// send frames msg, retains it for retransmission, and transmits. The
// reliability layer always accepts the frame; transport errors surface
// later (retry) or as a delivery timeout, never as a panic.
func (r *relLamellae) send(src, dst int, msg []byte) error {
	p := r.pairs[src][dst]
	buf := slab.Get(wireHeaderBytes + len(msg))
	buf[0] = wireData
	for i := 1; i < 8; i++ {
		buf[i] = 0 // recycled slab memory: clear the header pad bytes
	}
	copy(buf[wireHeaderBytes:], msg)
	floor := r.floorNow()
	now := time.Now()
	p.mu.Lock()
	r.pruneLocked(p)
	fr := framePool.Get().(*relFrame)
	fr.seq = p.nextSeq
	fr.buf = buf
	fr.first = now
	fr.backoff = floor
	fr.deadline = now.Add(floor)
	fr.attempts = 0
	p.nextSeq++
	binary.LittleEndian.PutUint64(buf[8:], fr.seq)
	p.unacked = append(p.unacked, frameRef{fr: fr, gen: fr.gen})
	r.counters[src].frames.Add(1)
	r.emitWire(telemetry.EvWireSend, src, int64(dst), int64(fr.seq), 0)
	r.transmit(src, dst, fr.buf, fr.seq)
	p.mu.Unlock()
	return nil
}

// unackedFrames reports how many data frames src currently retains
// awaiting acknowledgment across all destinations, and the age of the
// oldest such frame — the wire backlog the watchdog samples into the
// flight recorder. On a healthy loaded link the count hovers above zero
// but the oldest age stays at ack-latency scale; only a stuck link lets
// a frame's age grow.
func (r *relLamellae) unackedFrames(src int) (total int, oldest time.Duration) {
	now := time.Now()
	for dst := 0; dst < r.npes; dst++ {
		if dst == src {
			continue
		}
		p := r.pairs[src][dst]
		p.mu.Lock()
		r.pruneLocked(p)
		total += len(p.unacked)
		if len(p.unacked) > 0 {
			if age := now.Sub(p.unacked[0].frame().first); age > oldest {
				oldest = age
			}
		}
		p.mu.Unlock()
	}
	return total, oldest
}

// floorNow reports the current initial retransmission timeout.
func (r *relLamellae) floorNow() time.Duration {
	if r.retryFloor != nil {
		if ns := r.retryFloor.Load(); ns > 0 {
			return time.Duration(ns)
		}
	}
	return r.retryInterval
}

// releaseFrame recycles one retained frame: slab buffer back to its size
// class, frame struct back to framePool with its generation bumped so any
// stale frameRef trips the guard. The caller must hold the only live
// reference (acked under p.mu, or abandoned after removal from unacked).
func (r *relLamellae) releaseFrame(e frameRef) {
	fr := e.frame()
	slab.Put(fr.buf)
	fr.buf = nil
	fr.gen++
	framePool.Put(fr)
}

// pruneLocked releases frames the peer has cumulatively acked back to the
// slab/frame pools. Caller holds p.mu.
func (r *relLamellae) pruneLocked(p *relPair) {
	acked := p.ackedTo.Load()
	i := 0
	for i < len(p.unacked) && p.unacked[i].frame().seq < acked {
		r.releaseFrame(p.unacked[i])
		p.unacked[i] = frameRef{}
		i++
	}
	if i > 0 {
		p.unacked = append(p.unacked[:0], p.unacked[i:]...)
	}
}

// transmit pushes one frame (a data frame owned by a relFrame, or a
// standalone ack) through the fault plan and onto the inner transport,
// patching the piggybacked cumulative ack. Callers of data-frame
// transmissions hold the pair mutex, serializing access to fr.buf.
func (r *relLamellae) transmit(src, dst int, buf []byte, seq uint64) {
	// Piggyback: tell dst how far src has received on the reverse
	// direction, and clear the owed-ack marker it covers.
	rs := r.recv[src][dst]
	binary.LittleEndian.PutUint64(buf[16:], rs.next.Load())
	rs.owed.Store(false)

	d := r.plan.Decide(src, dst)
	if d.Kind != fabric.FaultNone {
		r.counters[src].faults.Add(1)
		r.emitWire(telemetry.EvWireFault, src, int64(dst), int64(seq), uint8(d.Kind))
	}
	switch d.Kind {
	case fabric.FaultDrop:
		return
	case fabric.FaultDup:
		r.innerSend(src, dst, buf)
		r.innerSend(src, dst, buf)
		return
	case fabric.FaultReorder, fabric.FaultDelay:
		// Defer a private copy so later frames overtake it; retransmits
		// may patch buf concurrently with the timer, so aliasing is not
		// safe. The copy comes from (and returns to) the slab: the inner
		// transports all copy-or-transmit synchronously, so the buffer is
		// ours again when innerSend returns.
		cp := slab.Get(len(buf))
		copy(cp, buf)
		time.AfterFunc(d.Delay, func() {
			r.innerSend(src, dst, cp)
			slab.Put(cp)
		})
		return
	}
	r.innerSend(src, dst, buf)
}

// innerSend hands a frame to the raw transport unless the layer closed.
// Transport errors are swallowed: the frame stays unacked and the retry
// path re-sends it (for TCP, after the broken connection was torn down
// and a re-dial becomes possible).
func (r *relLamellae) innerSend(src, dst int, buf []byte) {
	r.sendMu.RLock()
	defer r.sendMu.RUnlock()
	if r.closed {
		return
	}
	if err := r.inner.send(src, dst, buf); err != nil {
		diag.Warnf("wire", "PE%d→PE%d transport error (will retry): %v", src, dst, err)
	}
}

// onDeliver is the inner transport's delivery callback: it strips the
// reliability header, applies acks, dedups, restores order, and passes
// in-order bodies to the runtime. It must never block on a pair mutex —
// transport progress engines call it while senders may be stalled on
// transport backpressure.
//
// Buffer ownership: ref owns msg's backing slab buffer (zero Ref for
// non-slab buffers such as reassembled fragments). onDeliver either
// releases it (acks, duplicates, corrupt frames), parks it with an
// out-of-order body, or transfers it to the runtime along with the
// delivered body.
func (r *relLamellae) onDeliver(dst, src int, ref slab.Ref, msg []byte) {
	if len(msg) < wireHeaderBytes || (msg[0] != wireData && msg[0] != wireAck) {
		diag.Errorf("wire", "PE%d: corrupt wire frame from PE%d (%d bytes)", dst, src, len(msg))
		ref.Release()
		return
	}
	cum := binary.LittleEndian.Uint64(msg[16:])
	// The frame traveled src→dst, so its cumAck acknowledges the dst→src
	// stream, whose sender-side state lives at pairs[dst][src].
	maxUpdate(&r.pairs[dst][src].ackedTo, cum)
	if msg[0] == wireAck {
		ref.Release()
		return
	}
	seq := binary.LittleEndian.Uint64(msg[8:])
	body := msg[wireHeaderBytes:]
	rs := r.recv[dst][src]
	rs.mu.Lock()
	next := rs.next.Load()
	switch {
	case seq < next:
		// Redelivery of something already consumed: dedup.
		rs.owed.Store(true) // re-ack so the sender stops retransmitting
		rs.mu.Unlock()
		ref.Release()
		r.counters[dst].dupDropped.Add(1)
		r.emitWire(telemetry.EvWireDedup, dst, int64(src), int64(seq), 0)
		return
	case seq > next:
		if rs.ooo == nil {
			rs.ooo = make(map[uint64]oooBody)
		}
		if _, dup := rs.ooo[seq]; dup {
			rs.mu.Unlock()
			ref.Release()
			r.counters[dst].dupDropped.Add(1)
			r.emitWire(telemetry.EvWireDedup, dst, int64(src), int64(seq), 0)
			return
		}
		rs.ooo[seq] = oooBody{ref: ref, body: body}
		rs.owed.Store(true)
		rs.mu.Unlock()
		r.counters[dst].oooHeld.Add(1)
		return
	}
	// In order: deliver, then drain any buffered successors. Ownership of
	// each body's buffer transfers to the runtime here.
	r.deliver(dst, src, ref, body)
	next++
	for {
		b, ok := rs.ooo[next]
		if !ok {
			break
		}
		delete(rs.ooo, next)
		r.deliver(dst, src, b.ref, b.body)
		next++
	}
	rs.next.Store(next)
	rs.owed.Store(true)
	rs.mu.Unlock()
}

// maxUpdate raises a to v if v is larger (lock-free monotonic max).
func maxUpdate(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// retryLoop is the single background goroutine driving retransmissions,
// delivery-timeout give-ups, and standalone acks for idle directions.
func (r *relLamellae) retryLoop() {
	defer r.wg.Done()
	tick := r.retryInterval / 8
	if tick < 200*time.Microsecond {
		tick = 200 * time.Microsecond
	}
	if tick > 2*time.Millisecond {
		tick = 2 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
		}
		now := time.Now()
		for src := 0; src < r.npes; src++ {
			for dst := 0; dst < r.npes; dst++ {
				if src == dst {
					continue
				}
				r.sweepPair(src, dst, now)
				rs := r.recv[src][dst]
				if rs.owed.Swap(false) {
					r.sendAck(src, dst)
				}
			}
		}
	}
}

// sweepPair retransmits overdue frames of one stream and abandons frames
// past the delivery timeout.
func (r *relLamellae) sweepPair(src, dst int, now time.Time) {
	p := r.pairs[src][dst]
	p.mu.Lock()
	if len(p.unacked) == 0 {
		p.mu.Unlock()
		return
	}
	r.pruneLocked(p)
	var abandoned []frameRef
	keep := p.unacked[:0]
	for _, e := range p.unacked {
		fr := e.frame()
		if !now.After(fr.deadline) {
			keep = append(keep, e)
			continue
		}
		if r.deliveryTO > 0 && now.Sub(fr.first) >= r.deliveryTO {
			abandoned = append(abandoned, e)
			r.counters[src].timeouts.Add(1)
			r.emitWire(telemetry.EvWireTimeout, src, int64(dst), int64(fr.seq), 0)
			continue
		}
		fr.attempts++
		fr.backoff *= 2
		if fr.backoff > r.backoffMax {
			fr.backoff = r.backoffMax
		}
		fr.deadline = now.Add(fr.backoff)
		r.counters[src].retries.Add(1)
		r.emitWire(telemetry.EvWireRetry, src, int64(dst), int64(fr.seq), 0)
		r.transmit(src, dst, fr.buf, fr.seq)
		keep = append(keep, e)
	}
	for i := len(keep); i < len(p.unacked); i++ {
		p.unacked[i] = frameRef{}
	}
	p.unacked = keep
	p.mu.Unlock()
	// Reconcile outside the pair lock: the handler touches world state
	// (futures, completion accounting) and must not nest under it.
	for _, e := range abandoned {
		fr := e.frame()
		err := &DeliveryError{
			Src: src, Dst: dst,
			Attempts: fr.attempts + 1,
			Elapsed:  now.Sub(fr.first),
		}
		diag.Errorf("wire", "%s", err.Error())
		if r.giveUp != nil {
			r.giveUp(src, dst, fr.buf[wireHeaderBytes:], err)
		}
		// The reconciler's zero-copy decode may alias the payload, so the
		// abandoned buffer goes to the GC instead of back to the slab; the
		// frame struct itself still recycles. Give-ups are the exceptional
		// path — allocation here is irrelevant.
		fr.buf = nil
		fr.gen++
		framePool.Put(fr)
	}
}

// sendAck emits a standalone cumulative ack pe→peer. The ack buffer comes
// from the slab and returns to it once the inner transport has copied or
// written it (a stack array would escape through the transport interface
// call and allocate per ack).
func (r *relLamellae) sendAck(pe, peer int) {
	buf := slab.Get(wireHeaderBytes)
	for i := range buf {
		buf[i] = 0
	}
	buf[0] = wireAck
	cum := r.recv[pe][peer].next.Load()
	binary.LittleEndian.PutUint64(buf[16:], cum)
	r.counters[pe].acksSent.Add(1)
	r.emitWire(telemetry.EvWireAck, pe, int64(peer), int64(cum), 0)
	d := r.plan.Decide(pe, peer)
	switch d.Kind {
	case fabric.FaultDrop:
		// A lost ack re-arms via the sender's retransmit → dedup → owed.
		r.counters[pe].faults.Add(1)
		slab.Put(buf)
		return
	case fabric.FaultReorder, fabric.FaultDelay:
		r.counters[pe].faults.Add(1)
		time.AfterFunc(d.Delay, func() {
			r.innerSend(pe, peer, buf)
			slab.Put(buf)
		})
		return
	}
	r.innerSend(pe, peer, buf)
	slab.Put(buf)
}

// emitWire records one reliable-wire telemetry event.
func (r *relLamellae) emitWire(kind telemetry.EventKind, pe int, arg1, arg2 int64, sub uint8) {
	if !telemetry.Enabled() {
		return
	}
	c := telemetry.C()
	if c == nil {
		return
	}
	c.Emit(telemetry.Event{
		TS: c.Now(), Kind: kind, Sub: sub,
		PE: int32(pe), Worker: telemetry.TidNet,
		Arg1: arg1, Arg2: arg2,
	})
}

// close stops the retry machinery, then the inner transport. Any frames
// still unacked were already delivered (the runtime only closes after
// distributed quiescence) — only their acks were in flight.
func (r *relLamellae) close() {
	close(r.stop)
	r.wg.Wait()
	r.sendMu.Lock()
	r.closed = true
	r.sendMu.Unlock()
	r.inner.close()
}

// DeliveryError reports a wire frame the reliable layer abandoned after
// exhausting its delivery timeout — a partitioned or persistently lossy
// link. Futures waiting on AMs carried by the frame resolve with this
// error; fire-and-forget AMs are marked complete so WaitAll cannot hang.
type DeliveryError struct {
	// Src and Dst identify the link.
	Src, Dst int
	// Attempts is how many transmissions were made.
	Attempts int
	// Elapsed is how long delivery was attempted.
	Elapsed time.Duration
}

func (e *DeliveryError) Error() string {
	return fmt.Sprintf("lamellar: delivery PE%d→PE%d timed out after %d attempts over %v",
		e.Src, e.Dst, e.Attempts, e.Elapsed.Round(time.Millisecond))
}
