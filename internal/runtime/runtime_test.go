package runtime

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/serde"
)

// ----- test AM types -----------------------------------------------------

// incrAM atomically bumps a process-global counter (observable effect).
type incrAM struct {
	Delta uint64
}

var testCounter atomic.Uint64

func (a *incrAM) MarshalLamellar(e *serde.Encoder)         { e.PutUvarint(a.Delta) }
func (a *incrAM) UnmarshalLamellar(d *serde.Decoder) error { a.Delta = d.Uvarint(); return d.Err() }
func (a *incrAM) Exec(ctx *Context) any {
	testCounter.Add(a.Delta)
	return nil
}

// echoAM returns a value derived from its payload and executing PE.
type echoAM struct {
	X uint64
}

func (a *echoAM) MarshalLamellar(e *serde.Encoder)         { e.PutUvarint(a.X) }
func (a *echoAM) UnmarshalLamellar(d *serde.Decoder) error { a.X = d.Uvarint(); return d.Err() }
func (a *echoAM) Exec(ctx *Context) any {
	return uint64(ctx.CurrentPE())*1000 + a.X
}

// chainAM forwards itself Hops more times before bumping the counter; it
// exercises AM-launched-from-AM and quiescence of deep chains.
type chainAM struct {
	Hops int
}

func (a *chainAM) MarshalLamellar(e *serde.Encoder)         { e.PutInt(a.Hops) }
func (a *chainAM) UnmarshalLamellar(d *serde.Decoder) error { a.Hops = d.Int(); return d.Err() }
func (a *chainAM) Exec(ctx *Context) any {
	if a.Hops <= 0 {
		testCounter.Add(1)
		return nil
	}
	next := (ctx.CurrentPE() + 1) % ctx.NumPEs()
	ctx.World.ExecAM(next, &chainAM{Hops: a.Hops - 1})
	return nil
}

// bigAM carries a large payload to exercise lamellae fragmentation.
type bigAM struct {
	Data []byte
}

func (a *bigAM) MarshalLamellar(e *serde.Encoder) { e.PutBytes(a.Data) }
func (a *bigAM) UnmarshalLamellar(d *serde.Decoder) error {
	a.Data = d.BytesCopy()
	return d.Err()
}
func (a *bigAM) Exec(ctx *Context) any {
	var sum uint64
	for _, b := range a.Data {
		sum += uint64(b)
	}
	return sum
}

// panicAM always panics; origin must still observe an error.
type panicAM struct{}

func (a *panicAM) MarshalLamellar(e *serde.Encoder)         {}
func (a *panicAM) UnmarshalLamellar(d *serde.Decoder) error { return nil }
func (a *panicAM) Exec(ctx *Context) any                    { panic("intentional test panic") }

// returnAMAM returns another AM, which must execute at the origin.
type returnAMAM struct{}

func (a *returnAMAM) MarshalLamellar(e *serde.Encoder)         {}
func (a *returnAMAM) UnmarshalLamellar(d *serde.Decoder) error { return nil }
func (a *returnAMAM) Exec(ctx *Context) any {
	return &echoAM{X: 77}
}

func init() {
	RegisterAM[incrAM]("test.incr")
	RegisterAM[echoAM]("test.echo")
	RegisterAM[chainAM]("test.chain")
	RegisterAM[bigAM]("test.big")
	RegisterAM[panicAM]("test.panic")
	RegisterAM[returnAMAM]("test.returnAM")
}

// transports under test: sim exercises the ring/flag protocol with the
// cost model; shmem cross-validates with an independent transport.
var transports = []LamellaeKind{LamellaeSim, LamellaeShmem}

func forEachTransport(t *testing.T, pes int, fn func(w *World)) {
	t.Helper()
	for _, tr := range transports {
		tr := tr
		t.Run(string(tr), func(t *testing.T) {
			cfg := Config{PEs: pes, WorkersPerPE: 2, Lamellae: tr}
			if err := Run(cfg, fn); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// ----- tests --------------------------------------------------------------

func TestExecAMAllIncrements(t *testing.T) {
	for _, tr := range transports {
		t.Run(string(tr), func(t *testing.T) {
			testCounter.Store(0)
			err := Run(Config{PEs: 4, WorkersPerPE: 2, Lamellae: tr}, func(w *World) {
				if w.MyPE() == 0 {
					w.ExecAMAll(&incrAM{Delta: 1})
					w.WaitAll()
				}
				w.Barrier()
			})
			if err != nil {
				t.Fatal(err)
			}
			if testCounter.Load() != 4 {
				t.Errorf("counter = %d, want 4", testCounter.Load())
			}
		})
	}
}

func TestExecAMReturn(t *testing.T) {
	forEachTransport(t, 4, func(w *World) {
		dst := (w.MyPE() + 1) % w.NumPEs()
		f := ExecTyped[uint64](w, dst, &echoAM{X: uint64(w.MyPE())})
		v, err := BlockOn(w, f)
		if err != nil {
			panic(err)
		}
		want := uint64(dst)*1000 + uint64(w.MyPE())
		if v != want {
			panic(fmt.Sprintf("PE%d: got %d want %d", w.MyPE(), v, want))
		}
	})
}

func TestExecAMAllReturn(t *testing.T) {
	forEachTransport(t, 3, func(w *World) {
		vals, err := BlockOn(w, w.ExecAMAllReturn(&echoAM{X: 5}))
		if err != nil {
			panic(err)
		}
		for pe, v := range vals {
			if v.(uint64) != uint64(pe)*1000+5 {
				panic(fmt.Sprintf("vals[%d] = %v", pe, v))
			}
		}
	})
}

func TestWaitAllCompletes(t *testing.T) {
	for _, tr := range transports {
		t.Run(string(tr), func(t *testing.T) {
			testCounter.Store(0)
			err := Run(Config{PEs: 4, WorkersPerPE: 2, Lamellae: tr}, func(w *World) {
				const per = 100
				for i := 0; i < per; i++ {
					w.ExecAM((w.MyPE()+1+i)%w.NumPEs(), &incrAM{Delta: 1})
				}
				w.WaitAll()
				// After WaitAll all MY AMs ran somewhere; barrier then check.
				w.Barrier()
				if w.MyPE() == 0 {
					if got := testCounter.Load(); got != 4*per {
						panic(fmt.Sprintf("counter = %d, want %d", got, 4*per))
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestChainedAMsQuiesce(t *testing.T) {
	for _, tr := range transports {
		t.Run(string(tr), func(t *testing.T) {
			testCounter.Store(0)
			err := Run(Config{PEs: 4, WorkersPerPE: 2, Lamellae: tr}, func(w *World) {
				if w.MyPE() == 0 {
					for i := 0; i < 8; i++ {
						w.ExecAM(1, &chainAM{Hops: 20})
					}
				}
				// no explicit wait: Run's finalize must drain the chains
			})
			if err != nil {
				t.Fatal(err)
			}
			if testCounter.Load() != 8 {
				t.Errorf("counter = %d, want 8", testCounter.Load())
			}
		})
	}
}

func TestBigPayloadFragmentation(t *testing.T) {
	// payload far larger than staging/4 forces multi-fragment reassembly
	cfg := Config{PEs: 2, WorkersPerPE: 2, Lamellae: LamellaeSim, StagingBytes: 1 << 20}
	err := Run(cfg, func(w *World) {
		if w.MyPE() != 0 {
			return
		}
		data := make([]byte, 3<<20)
		var want uint64
		for i := range data {
			data[i] = byte(i * 31)
			want += uint64(data[i])
		}
		v, err := BlockOn(w, ExecTyped[uint64](w, 1, &bigAM{Data: data}))
		if err != nil {
			panic(err)
		}
		if v != want {
			panic(fmt.Sprintf("checksum %d want %d", v, want))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPanicInAMReturnsError(t *testing.T) {
	forEachTransport(t, 2, func(w *World) {
		if w.MyPE() != 0 {
			return
		}
		_, err := BlockOn(w, w.ExecAMReturn(1, &panicAM{}))
		if err == nil {
			panic("expected error from panicking AM")
		}
	})
}

func TestReturnedAMExecutesAtOrigin(t *testing.T) {
	forEachTransport(t, 2, func(w *World) {
		if w.MyPE() != 0 {
			return
		}
		v, err := BlockOn(w, w.ExecAMReturn(1, &returnAMAM{}))
		if err != nil {
			panic(err)
		}
		// echoAM runs at the origin (PE0): 0*1000 + 77
		if v.(uint64) != 77 {
			panic(fmt.Sprintf("returned-AM result = %v", v))
		}
	})
}

func TestCollectiveSum(t *testing.T) {
	for _, pes := range []int{1, 2, 3, 4, 5, 7, 8} {
		pes := pes
		t.Run(fmt.Sprintf("pes=%d", pes), func(t *testing.T) {
			err := Run(Config{PEs: pes, WorkersPerPE: 1, Lamellae: LamellaeShmem}, func(w *World) {
				team := w.Team()
				got := team.SumU64(uint64(w.MyPE() + 1))
				want := uint64(pes * (pes + 1) / 2)
				if got != want {
					panic(fmt.Sprintf("PE%d: sum = %d want %d", w.MyPE(), got, want))
				}
				if mx := team.MaxU64(uint64(w.MyPE())); mx != uint64(pes-1) {
					panic(fmt.Sprintf("max = %d", mx))
				}
				if mn := team.MinU64(uint64(w.MyPE() + 10)); mn != 10 {
					panic(fmt.Sprintf("min = %d", mn))
				}
				if s := team.SumF64(0.5); s != 0.5*float64(pes) {
					panic(fmt.Sprintf("fsum = %v", s))
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBroadcastVariousRoots(t *testing.T) {
	err := Run(Config{PEs: 5, WorkersPerPE: 1, Lamellae: LamellaeShmem}, func(w *World) {
		team := w.Team()
		for root := 0; root < team.Size(); root++ {
			var mine []byte
			if team.Rank() == root {
				mine = []byte(fmt.Sprintf("from-%d", root))
			}
			got := team.BroadcastBytes(root, mine)
			if string(got) != fmt.Sprintf("from-%d", root) {
				panic(fmt.Sprintf("PE%d root%d: %q", w.MyPE(), root, got))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllGather(t *testing.T) {
	err := Run(Config{PEs: 6, WorkersPerPE: 1, Lamellae: LamellaeShmem}, func(w *World) {
		got := w.Team().AllGatherBytes([]byte{byte(w.MyPE() * 3)})
		for r, b := range got {
			if len(b) != 1 || b[0] != byte(r*3) {
				panic(fmt.Sprintf("PE%d: gather[%d] = %v", w.MyPE(), r, b))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRepeatedCollectivesInterleaved(t *testing.T) {
	// Alternate op types to exercise slot reuse across differing phases.
	err := Run(Config{PEs: 4, WorkersPerPE: 1, Lamellae: LamellaeShmem}, func(w *World) {
		team := w.Team()
		for i := 0; i < 30; i++ {
			s := team.SumU64(1)
			if s != 4 {
				panic(fmt.Sprintf("round %d: sum=%d", i, s))
			}
			root := i % 4
			var mine []byte
			if team.Rank() == root {
				mine = []byte{byte(i)}
			}
			b := team.BroadcastBytes(root, mine)
			if len(b) != 1 || b[0] != byte(i) {
				panic(fmt.Sprintf("round %d: bcast=%v", i, b))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTeamSplit(t *testing.T) {
	err := Run(Config{PEs: 6, WorkersPerPE: 1, Lamellae: LamellaeShmem}, func(w *World) {
		world := w.Team()
		evens := world.SplitStrided(0, 2) // PEs 0,2,4
		if w.MyPE()%2 == 0 {
			if evens == nil {
				panic("even PE got nil team")
			}
			if evens.Size() != 3 {
				panic(fmt.Sprintf("evens size = %d", evens.Size()))
			}
			if evens.WorldPE(evens.Rank()) != w.MyPE() {
				panic("rank mapping broken")
			}
			sum := evens.SumU64(uint64(w.MyPE()))
			if sum != 0+2+4 {
				panic(fmt.Sprintf("team sum = %d", sum))
			}
			evens.Barrier()
		} else if evens != nil {
			panic("odd PE got a team handle")
		}
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTeamScopedAM(t *testing.T) {
	testCounter.Store(0)
	err := Run(Config{PEs: 4, WorkersPerPE: 1, Lamellae: LamellaeShmem}, func(w *World) {
		sub := w.Team().Split([]int{1, 3})
		if sub != nil && sub.Rank() == 0 { // world PE1
			sub.ExecAMAll(&incrAM{Delta: 10})
			sub.World().WaitAll()
		}
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if testCounter.Load() != 20 {
		t.Errorf("counter = %d, want 20", testCounter.Load())
	}
}

func TestCollectiveConstruction(t *testing.T) {
	err := Run(Config{PEs: 4, WorkersPerPE: 1, Lamellae: LamellaeShmem}, func(w *World) {
		v := w.Team().Collective(func() any { return []int{w.NumPEs()} })
		if v.([]int)[0] != 4 {
			panic("collective value wrong")
		}
		// all PEs must observe the SAME instance
		v2 := w.Team().Collective(func() any { return new(int) })
		p := v2.(*int)
		w.Barrier()
		if w.MyPE() == 0 {
			*p = 99
		}
		w.Barrier()
		if *p != 99 {
			panic("collective did not share instance")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSMPWorldBuilder(t *testing.T) {
	w, err := NewWorldBuilder().Workers(2).Build()
	if err != nil {
		t.Fatal(err)
	}
	testCounter.Store(0)
	w.ExecAMAll(&incrAM{Delta: 3})
	w.WaitAll()
	if testCounter.Load() != 3 {
		t.Errorf("counter = %d", testCounter.Load())
	}
	v, err := BlockOn(w, ExecTyped[uint64](w, 0, &echoAM{X: 9}))
	if err != nil || v != 9 {
		t.Errorf("echo = %d, %v", v, err)
	}
	w.finalize()
	w.env.close()
}

func TestAggMaxOpsFlushes(t *testing.T) {
	// With AggMaxOps=1 every op flushes immediately; semantics unchanged.
	testCounter.Store(0)
	err := Run(Config{PEs: 2, WorkersPerPE: 1, Lamellae: LamellaeSim, AggMaxOps: 1}, func(w *World) {
		if w.MyPE() == 0 {
			for i := 0; i < 50; i++ {
				w.ExecAM(1, &incrAM{Delta: 2})
			}
			w.WaitAll()
		}
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if testCounter.Load() != 100 {
		t.Errorf("counter = %d", testCounter.Load())
	}
}

func TestSimCountsTraffic(t *testing.T) {
	var modeled uint64
	err := Run(Config{PEs: 2, WorkersPerPE: 1, Lamellae: LamellaeSim}, func(w *World) {
		if w.MyPE() == 0 {
			for i := 0; i < 10; i++ {
				w.ExecAM(1, &incrAM{Delta: 1})
			}
			w.WaitAll()
			modeled = w.Provider().CountersFor(0).ModeledNs
		}
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if modeled == 0 {
		t.Error("no modeled time accumulated on sim lamellae")
	}
}

func TestStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	testCounter.Store(0)
	err := Run(Config{PEs: 8, WorkersPerPE: 2, Lamellae: LamellaeSim}, func(w *World) {
		const per = 500
		for i := 0; i < per; i++ {
			w.ExecAM(i%w.NumPEs(), &incrAM{Delta: 1})
			if i%97 == 0 {
				w.ExecAM((w.MyPE()+3)%w.NumPEs(), &chainAM{Hops: 5})
			}
		}
		w.WaitAll()
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(8*500 + 8*6)
	if got := testCounter.Load(); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
}

func TestMismatchedCollectivesPanic(t *testing.T) {
	// One PE splits a team while the other constructs a "shmem.alloc"-
	// style collective at the same sequence position: the runtime must
	// fail loudly instead of silently corrupting shared state.
	err := Run(Config{PEs: 2, WorkersPerPE: 1, Lamellae: LamellaeShmem}, func(w *World) {
		defer func() {
			if r := recover(); r != nil {
				if !strings.Contains(fmt.Sprint(r), "mismatched collective") {
					panic(r)
				}
				// one side observes the diagnostic; the other side's
				// collective can never complete, so do not wait for it
			}
		}()
		if w.MyPE() == 0 {
			w.Team().CollectiveKind("kindA", func() any { return 1 })
		} else {
			w.Team().CollectiveKind("kindB", func() any { return 2 })
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// The TCP lamellae moves batches over real loopback sockets; semantics
// must match the other transports.
func TestTCPLamellae(t *testing.T) {
	testCounter.Store(0)
	err := Run(Config{PEs: 3, WorkersPerPE: 2, Lamellae: LamellaeTCP}, func(w *World) {
		for i := 0; i < 100; i++ {
			w.ExecAM((w.MyPE()+1+i)%w.NumPEs(), &incrAM{Delta: 2})
		}
		w.WaitAll()
		// returns over TCP
		v, err := BlockOn(w, ExecTyped[uint64](w, (w.MyPE()+1)%w.NumPEs(), &echoAM{X: 3}))
		if err != nil {
			panic(err)
		}
		if v != uint64((w.MyPE()+1)%w.NumPEs())*1000+3 {
			panic(fmt.Sprintf("echo = %d", v))
		}
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := testCounter.Load(); got != 600 {
		t.Errorf("counter = %d, want 600", got)
	}
}

func TestTCPLamellaeLargePayload(t *testing.T) {
	err := Run(Config{PEs: 2, WorkersPerPE: 2, Lamellae: LamellaeTCP}, func(w *World) {
		if w.MyPE() != 0 {
			return
		}
		data := make([]byte, 2<<20)
		var want uint64
		for i := range data {
			data[i] = byte(i * 7)
			want += uint64(data[i])
		}
		v, err := BlockOn(w, ExecTyped[uint64](w, 1, &bigAM{Data: data}))
		if err != nil {
			panic(err)
		}
		if v != want {
			panic("checksum mismatch over TCP")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// gobAM exercises the reflection-based registration path end to end.
type gobAM struct {
	M map[string]int
	S []string
}

func (a *gobAM) Exec(ctx *Context) any {
	total := 0
	for _, v := range a.M {
		total += v
	}
	return uint64(total + len(a.S)*100)
}

func init() {
	RegisterAMGob[gobAM]("test.gobAM")
}

func TestGobRegisteredAM(t *testing.T) {
	forEachTransport(t, 2, func(w *World) {
		if w.MyPE() != 0 {
			return
		}
		am := &gobAM{M: map[string]int{"a": 3, "b": 4}, S: []string{"x", "y"}}
		v, err := BlockOn(w, ExecTyped[uint64](w, 1, am))
		if err != nil {
			panic(err)
		}
		if v != 207 {
			panic(fmt.Sprintf("gob AM result = %d", v))
		}
	})
}

// Teams: AM returns indexed by team rank.
func TestTeamExecAMAllReturn(t *testing.T) {
	err := Run(Config{PEs: 4, WorkersPerPE: 1, Lamellae: LamellaeShmem}, func(w *World) {
		sub := w.Team().Split([]int{1, 3})
		if sub != nil && sub.Rank() == 1 { // world PE3
			vals, err := BlockOn(w, sub.ExecAMAllReturn(&echoAM{X: 2}))
			if err != nil {
				panic(err)
			}
			// rank 0 = world PE1, rank 1 = world PE3
			if vals[0].(uint64) != 1002 || vals[1].(uint64) != 3002 {
				panic(fmt.Sprintf("team returns = %v", vals))
			}
		}
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}
