package runtime

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/slab"
)

// Regression: sends racing close() used to panic (dial of a closed
// listener, write to a closed socket). Now they must return errors —
// errTCPClosed or a transport error — while close() tears everything
// down exactly once. Run with -race: the test's value is the schedule
// interleaving, not the assertions alone.
func TestTCPSendCloseRace(t *testing.T) {
	for round := 0; round < 20; round++ {
		var delivered atomic.Uint64
		lam, err := newTCPLamellae(3, func(dst, src int, ref slab.Ref, msg []byte) {
			delivered.Add(1)
			ref.Release()
		})
		if err != nil {
			t.Fatal(err)
		}
		payload := make([]byte, 256)
		var wg sync.WaitGroup
		stopSenders := make(chan struct{})
		for src := 0; src < 3; src++ {
			for dst := 0; dst < 3; dst++ {
				if src == dst {
					continue
				}
				src, dst := src, dst
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stopSenders:
							return
						default:
						}
						if err := lam.send(src, dst, payload); err != nil {
							// An error return (errTCPClosed or a socket
							// failure) is the contract; the old code
							// panicked here.
							return
						}
					}
				}()
			}
		}
		// Let the senders get going, then yank the transport out from
		// under them.
		time.Sleep(time.Duration(round%5) * 100 * time.Microsecond)
		lam.close()
		close(stopSenders)
		wg.Wait()
		// Post-close sends must fail cleanly, not dial or panic.
		if err := lam.send(0, 1, payload); err == nil {
			t.Fatal("send after close succeeded")
		}
	}
}

// A connection dying mid-stream must not wedge the transport: the
// writer goroutine notices the broken socket, drops the connection from
// the table (frames still queued on it are lost — send is asynchronous
// and the reliability layer retransmits), and a later send re-dials.
// The test sabotages the established socket and keeps sending until
// frames flow again, proving the re-dial path works end to end.
func TestTCPSendErrorRedials(t *testing.T) {
	var delivered atomic.Uint64
	lam, err := newTCPLamellae(2, func(dst, src int, ref slab.Ref, msg []byte) {
		delivered.Add(1)
		ref.Release()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lam.close()
	if err := lam.send(0, 1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	// Sabotage the established outbound socket behind the table's back,
	// simulating a connection reset. Frames enqueued between the reset
	// and the writer noticing are dropped silently, exactly like frames
	// lost inside the kernel's socket buffer on a real reset.
	lam.mu.Lock()
	tc := lam.conns[[2]int{0, 1}]
	lam.mu.Unlock()
	if tc == nil {
		t.Fatal("no connection registered after send")
	}
	tc.c.Close()
	// Retransmit until two frames have made it through, as the
	// reliability layer would; a send error here can only be transient
	// (racing the writer's teardown), so keep going until the deadline.
	deadline := time.Now().Add(5 * time.Second)
	for delivered.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d frames after teardown, want >= 2", delivered.Load())
		}
		lam.send(0, 1, []byte("again"))
		time.Sleep(time.Millisecond)
	}
}
