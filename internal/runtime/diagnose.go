package runtime

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"sync"

	"repro/internal/diag"
	"repro/internal/telemetry"
	"repro/internal/telemetry/recorder"
	"repro/internal/tuning"
)

// Diagnostic dumps: every live world can render a structured JSON
// snapshot of its flight recorder, health counters, and oldest
// outstanding operations — on demand through World.WriteDiagnostics, or
// process-wide via the LAMELLAR_DIAG signal (SIGUSR1/SIGUSR2; see
// diag_signal_unix.go). This is the "kill -USR1 the stuck job and read
// what it was doing" workflow, with no telemetry session required.

// diagRegistry tracks live worldEnvs so a signal can dump all of them.
var diagRegistry = struct {
	sync.Mutex
	envs map[*worldEnv]struct{}
}{envs: make(map[*worldEnv]struct{})}

func registerEnv(env *worldEnv) {
	diagRegistry.Lock()
	diagRegistry.envs[env] = struct{}{}
	diagRegistry.Unlock()
	diagSignalInit()
}

func unregisterEnv(env *worldEnv) {
	diagRegistry.Lock()
	delete(diagRegistry.envs, env)
	diagRegistry.Unlock()
}

// OutstandingOp names one outstanding return-style AM in a dump.
type OutstandingOp struct {
	Req   uint64 `json:"req"`
	Dst   int    `json:"dst"`
	AgeMs int64  `json:"age_ms"`
}

// PEDiag is one PE's slice of a diagnostic snapshot.
type PEDiag struct {
	PE int `json:"pe"`
	// Issued/Completed mirror Stats; their gap is the in-flight count.
	Issued    uint64 `json:"issued"`
	Completed uint64 `json:"completed"`
	// Health tallies watchdog flags by kind name (omitted kinds are 0).
	Health map[string]uint64 `json:"health,omitempty"`
	// Outstanding lists the oldest outstanding ops, oldest first (≤5).
	Outstanding []OutstandingOp `json:"outstanding,omitempty"`
	// WaitingMs is how long the PE has been blocked in WaitAll (0 = not).
	WaitingMs int64 `json:"waiting_ms,omitempty"`
}

// DiagSnapshot is a world's full diagnostic dump.
type DiagSnapshot struct {
	PEs      int               `json:"pes"`
	Lamellae LamellaeKind      `json:"lamellae"`
	TuneMode string            `json:"tune_mode"`
	Recorder recorder.Snapshot `json:"recorder"`
	Worlds   []PEDiag          `json:"worlds"`
}

// topOutstanding returns the up-to-max oldest outstanding requests.
func (w *World) topOutstanding(now int64, max int) []OutstandingOp {
	var ops []OutstandingOp
	w.retMu.Lock()
	for r, e := range w.returns {
		if e.issueNs == 0 {
			continue
		}
		ops = append(ops, OutstandingOp{Req: r, Dst: int(e.dst), AgeMs: (now - e.issueNs) / 1e6})
	}
	w.retMu.Unlock()
	sort.Slice(ops, func(a, b int) bool { return ops[a].AgeMs > ops[b].AgeMs })
	if len(ops) > max {
		ops = ops[:max]
	}
	return ops
}

func (env *worldEnv) diagSnapshot() DiagSnapshot {
	now := telemetry.MonoNow()
	snap := DiagSnapshot{
		PEs:      env.cfg.PEs,
		Lamellae: env.cfg.Lamellae,
		TuneMode: tuning.ParseMode(env.cfg.TuneMode).String(),
		Recorder: env.rec.Snapshot(),
		Worlds:   make([]PEDiag, len(env.worlds)),
	}
	for pe, w := range env.worlds {
		pd := PEDiag{
			PE:          pe,
			Issued:      w.issued.Load(),
			Completed:   w.completed.Load(),
			Outstanding: w.topOutstanding(now, 5),
		}
		if since := w.waitingSince.Load(); since != 0 {
			pd.WaitingMs = (now - since) / 1e6
		}
		h := w.Health()
		for k, n := range h {
			if n != 0 {
				if pd.Health == nil {
					pd.Health = make(map[string]uint64)
				}
				pd.Health[telemetry.HealthKind(k).String()] = n
			}
		}
		snap.Worlds[pe] = pd
	}
	return snap
}

// DiagSnapshot renders the world's current diagnostic state: flight-
// recorder digests per PE, watchdog health counters, and the oldest
// outstanding operations. Safe to call at any time from any goroutine.
func (w *World) DiagSnapshot() DiagSnapshot { return w.env.diagSnapshot() }

// WriteDiagnostics writes the snapshot as indented JSON.
func (w *World) WriteDiagnostics(out io.Writer) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(w.DiagSnapshot())
}

// DumpAllDiagnostics writes one JSON snapshot per live world to out.
// The LAMELLAR_DIAG signal handler funnels here; it is also callable
// directly (e.g. from a debug HTTP endpoint).
func DumpAllDiagnostics(out io.Writer) {
	diagRegistry.Lock()
	envs := make([]*worldEnv, 0, len(diagRegistry.envs))
	for env := range diagRegistry.envs {
		envs = append(envs, env)
	}
	diagRegistry.Unlock()
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	for _, env := range envs {
		if err := enc.Encode(env.diagSnapshot()); err != nil {
			diag.Errorf("diag", "writing diagnostic dump: %v", err)
			return
		}
	}
}

// diagDumpTarget resolves where signal-triggered dumps go: the file
// named by LAMELLAR_DIAG_OUT (append mode), else stderr. Opened per
// dump so rotation/deletion between dumps is harmless.
func diagDumpTarget() (io.Writer, func()) {
	if path := os.Getenv("LAMELLAR_DIAG_OUT"); path != "" {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			diag.Errorf("diag", "opening LAMELLAR_DIAG_OUT %q: %v (using stderr)", path, err)
			return os.Stderr, func() {}
		}
		return f, func() { f.Close() }
	}
	return os.Stderr, func() {}
}
