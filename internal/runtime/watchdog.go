package runtime

import (
	"sync/atomic"
	"time"

	"repro/internal/diag"
	"repro/internal/telemetry"
	"repro/internal/telemetry/recorder"
)

// watchdog is the runtime's stall sampler: a single background goroutine
// per world that inspects every PE each tick and flags
//
//   - futures outstanding far beyond the recorded round-trip p99
//     (WatchdogStallFactor × p99, floored at 8× the sampling interval so
//     a cold digest cannot produce false positives),
//   - WaitAll windows where the completion counter has stopped moving,
//   - collectives where some team member never arrived,
//   - scheduler starvation (parked workers alongside a non-empty
//     injector, sustained across consecutive ticks), and
//   - a monotonically growing unacked reliable-wire backlog (the
//     signature of a partitioned or severely degraded link).
//
// Each flag bumps a per-PE health counter (World.Health), emits a
// health.* telemetry event when a session is live, and reports through
// the diag logger (rate-limited: the first few occurrences per PE and
// kind, then every 16th). The backlog sweep doubles as the sampler that
// feeds the flight recorder's unacked gauge.
type watchdog struct {
	env      *worldEnv
	interval time.Duration
	factor   int

	counts [][telemetry.NumHealthKinds]atomic.Uint64
	warned [][telemetry.NumHealthKinds]uint64 // diag rate limiting; sampler-only

	lastCompleted []uint64 // WaitAll progress detection
	starvedTicks  []int
	lastBacklog   []int
	backlogGrow   []int
}

func newWatchdog(env *worldEnv, interval time.Duration, factor int) *watchdog {
	n := env.cfg.PEs
	return &watchdog{
		env:           env,
		interval:      interval,
		factor:        factor,
		counts:        make([][telemetry.NumHealthKinds]atomic.Uint64, n),
		warned:        make([][telemetry.NumHealthKinds]uint64, n),
		lastCompleted: make([]uint64, n),
		starvedTicks:  make([]int, n),
		lastBacklog:   make([]int, n),
		backlogGrow:   make([]int, n),
	}
}

func (d *watchdog) run() {
	defer d.env.flushWG.Done()
	ticker := time.NewTicker(d.interval)
	defer ticker.Stop()
	for {
		select {
		case <-d.env.stopFlush:
			return
		case <-ticker.C:
			d.sample()
		}
	}
}

// stallThreshold is the age beyond which an outstanding op counts as
// stalled on pe: factor × recorded round-trip p99, floored at 8× the
// sampling interval (which also covers the cold-start case where the
// digest is empty and p99 is zero). With the RTT-adaptive wire layer the
// threshold also rides factor × the largest live adaptive RTO on this
// PE's streams: a link whose retransmission timeout has legitimately
// grown (congestion, loss) must not be flagged at the old round-trip
// scale, while a link whose RTO collapsed to microseconds still keeps
// the interval floor.
func (d *watchdog) stallThreshold(pe int) int64 {
	floor := 8 * d.interval.Nanoseconds()
	thr := int64(d.factor) * int64(d.env.rec.PE(pe).Hist(recorder.HistRoundTrip).Quantile(0.99))
	if rel := d.env.rel; rel != nil {
		if rto := int64(d.factor) * rel.maxRTO(pe); rto > thr {
			thr = rto
		}
	}
	if thr < floor {
		thr = floor
	}
	return thr
}

func (d *watchdog) sample() {
	now := telemetry.MonoNow()
	for pe, w := range d.env.worlds {
		thr := d.stallThreshold(pe)

		// Oldest outstanding return-style AM.
		if req, dst, age := w.oldestOutstanding(now); req != 0 && age > thr {
			d.flag(pe, telemetry.HealthFutureStall, age,
				"PE%d: request %d to PE%d outstanding %v (threshold %v)",
				pe, req, dst, time.Duration(age), time.Duration(thr))
		}

		// WaitAll stall: blocked past the threshold with no completion
		// progress since the previous tick and work still outstanding.
		comp := w.completed.Load()
		if since := w.waitingSince.Load(); since != 0 && now-since > thr &&
			comp == d.lastCompleted[pe] && w.issued.Load() > comp {
			d.flag(pe, telemetry.HealthWaitStall, now-since,
				"PE%d: WaitAll blocked %v with no progress (%d/%d AMs complete)",
				pe, time.Duration(now-since), comp, w.issued.Load())
		}
		d.lastCompleted[pe] = comp

		// Scheduler starvation, sustained across two consecutive ticks
		// (a single observation races benignly with parking).
		if w.pool.Starved() {
			d.starvedTicks[pe]++
			if d.starvedTicks[pe] >= 2 {
				d.flag(pe, telemetry.HealthStarvation, int64(d.starvedTicks[pe]),
					"PE%d: workers parked with runnable tasks for %d ticks",
					pe, d.starvedTicks[pe])
			}
		} else {
			d.starvedTicks[pe] = 0
		}

		// Unacked wire backlog: sampled into the recorder every tick.
		// Flagged when non-decreasing for three ticks AND the oldest
		// frame has aged past the stall threshold — a healthy loaded
		// link keeps frames in flight constantly, but acks them at
		// round-trip scale, so count alone would false-positive.
		if rel := d.env.rel; rel != nil {
			n, oldest := rel.unackedFrames(pe)
			d.env.rec.PE(pe).SetUnacked(int64(n))
			if n > 0 && n >= d.lastBacklog[pe] && oldest.Nanoseconds() > thr {
				d.backlogGrow[pe]++
				if d.backlogGrow[pe] >= 3 {
					d.flag(pe, telemetry.HealthBacklogGrowth, int64(n),
						"PE%d: %d unacked wire frames, oldest %v, not shrinking for %d ticks",
						pe, n, oldest, d.backlogGrow[pe])
				}
			} else {
				d.backlogGrow[pe] = 0
			}
			d.lastBacklog[pe] = n
		}
	}
	d.sampleCollectives(now)
}

// sampleCollectives flags collective rendezvous entries whose first
// arriver has been waiting past the PE-0 stall threshold — some team
// member never issued the matching call. Attribution to a single PE is
// impossible (the laggard is precisely the PE with no record), so the
// flag lands on PE 0's counters with the collective key in the message.
func (d *watchdog) sampleCollectives(now int64) {
	thr := d.stallThreshold(0)
	type stale struct {
		key string
		age int64
	}
	var stales []stale
	d.env.collMu.Lock()
	for key, e := range d.env.coll {
		if e.created != 0 && now-e.created > thr {
			stales = append(stales, stale{key, now - e.created})
		}
	}
	d.env.collMu.Unlock()
	for _, s := range stales {
		d.flag(0, telemetry.HealthCollectiveStall, s.age,
			"collective %q waiting %v for stragglers", s.key, time.Duration(s.age))
	}
}

// flag records one health observation: counter, telemetry event, and a
// rate-limited diag warning.
func (d *watchdog) flag(pe int, kind telemetry.HealthKind, val int64, format string, args ...any) {
	d.counts[pe][kind].Add(1)
	if telemetry.Enabled() {
		if c := telemetry.C(); c != nil {
			c.Emit(telemetry.Event{
				TS: c.Now(), Kind: telemetry.EvHealth, Sub: uint8(kind),
				PE: int32(pe), Worker: telemetry.TidRuntime, Arg1: val,
			})
		}
	}
	n := d.warned[pe][kind]
	d.warned[pe][kind]++
	if n < 8 || n%16 == 0 {
		diag.Warnf("health", "%s: "+format, append([]any{kind}, args...)...)
	}
}

// HealthCounts is a PE's per-kind tally of watchdog health flags,
// indexed by telemetry.HealthKind.
type HealthCounts [telemetry.NumHealthKinds]uint64

// Total sums all health flags.
func (h HealthCounts) Total() uint64 {
	var t uint64
	for _, n := range h {
		t += n
	}
	return t
}

// Health snapshots this PE's watchdog health counters (all zero when
// the watchdog is disabled or nothing was ever flagged).
func (w *World) Health() HealthCounts {
	var h HealthCounts
	if d := w.env.dog; d != nil {
		for k := range h {
			h[k] = d.counts[w.pe][k].Load()
		}
	}
	return h
}

// oldestOutstanding reports the oldest outstanding return-style request
// this PE is waiting on (req 0 when none): its ID, destination, and age
// relative to now (a MonoNow stamp).
func (w *World) oldestOutstanding(now int64) (req uint64, dst int32, age int64) {
	w.retMu.Lock()
	for r, e := range w.returns {
		if e.issueNs == 0 {
			continue
		}
		if a := now - e.issueNs; a > age {
			req, dst, age = r, e.dst, a
		}
	}
	w.retMu.Unlock()
	return req, dst, age
}
