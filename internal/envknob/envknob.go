// Package envknob centralizes LAMELLAR_* environment-knob parsing.
//
// Before it existed every package rolled its own reader and most of them
// silently ignored malformed values — a typo'd LAMELLAR_STEAL_BATCH=1o
// fell back to the default with no signal, which in a tuning run reads as
// "the knob made no difference". Every helper here routes parse failures
// through the diag logger as warnings instead, and boolean knobs accept
// one spelling set everywhere (LAMELLAR_TRACE used to take 1/true while
// LAMELLAR_SLAB_CHECK took only "1").
package envknob

import (
	"os"
	"strconv"
	"strings"

	"repro/internal/diag"
)

// component tags the diag warnings emitted by this package.
const component = "envknob"

// LookupInt reads an integer knob. Unset returns (0, false); a malformed
// value warns and returns (0, false) as if unset.
func LookupInt(name string) (int, bool) {
	v := os.Getenv(name)
	if v == "" {
		return 0, false
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		diag.Warnf(component, "ignoring %s=%q: %v", name, v, err)
		return 0, false
	}
	return n, true
}

// LookupFloat reads a float knob with the same unset/malformed contract
// as LookupInt.
func LookupFloat(name string) (float64, bool) {
	v := os.Getenv(name)
	if v == "" {
		return 0, false
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		diag.Warnf(component, "ignoring %s=%q: %v", name, v, err)
		return 0, false
	}
	return f, true
}

// LookupBool reads a boolean knob. Accepted spellings (case-insensitive):
// 1/t/true/yes/on and 0/f/false/no/off. Unset returns (false, false);
// anything else warns and returns (false, false) as if unset.
func LookupBool(name string) (bool, bool) {
	v := os.Getenv(name)
	if v == "" {
		return false, false
	}
	switch strings.ToLower(v) {
	case "1", "t", "true", "yes", "on":
		return true, true
	case "0", "f", "false", "no", "off":
		return false, true
	}
	diag.Warnf(component, "ignoring %s=%q: not a boolean (want 1/true/yes/on or 0/false/no/off)", name, v)
	return false, false
}

// Bool reads a boolean knob with a default for unset or malformed values.
func Bool(name string, def bool) bool {
	if v, ok := LookupBool(name); ok {
		return v
	}
	return def
}

// Int reads an integer knob clamped to [lo, hi]; unset or malformed
// values select def. An in-principle-valid value outside the range is
// clamped with a warning — the caller asked for a bound, so honoring the
// raw value would be wrong, but doing so silently hides the adjustment.
func Int(name string, def, lo, hi int) int {
	v, ok := LookupInt(name)
	if !ok {
		return def
	}
	if v < lo || v > hi {
		c := v
		if c < lo {
			c = lo
		}
		if c > hi {
			c = hi
		}
		diag.Warnf(component, "clamping %s=%d to %d (valid range [%d, %d])", name, v, c, lo, hi)
		return c
	}
	return v
}
