package envknob

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/diag"
)

// captureWarnings redirects diag output to a buffer for the test body and
// returns what was written. Serialized: diag's sink is process-global.
var captureMu sync.Mutex

func captureWarnings(t *testing.T, body func()) string {
	t.Helper()
	captureMu.Lock()
	defer captureMu.Unlock()
	var buf bytes.Buffer
	prevLevel := diag.CurrentLevel()
	diag.SetOutput(&buf)
	diag.SetLevel(diag.LevelWarn)
	defer func() {
		diag.SetOutput(nil)
		diag.SetLevel(prevLevel)
	}()
	body()
	return buf.String()
}

func TestLookupIntMalformedWarns(t *testing.T) {
	t.Setenv("LAMELLAR_TEST_KNOB", "1o")
	out := captureWarnings(t, func() {
		if v, ok := LookupInt("LAMELLAR_TEST_KNOB"); ok || v != 0 {
			t.Errorf("malformed value parsed as (%d, %v)", v, ok)
		}
	})
	if !strings.Contains(out, "LAMELLAR_TEST_KNOB") || !strings.Contains(out, "1o") {
		t.Errorf("no warning naming the knob and value; got %q", out)
	}
}

func TestLookupIntValidAndUnset(t *testing.T) {
	t.Setenv("LAMELLAR_TEST_KNOB", "42")
	out := captureWarnings(t, func() {
		if v, ok := LookupInt("LAMELLAR_TEST_KNOB"); !ok || v != 42 {
			t.Errorf("got (%d, %v), want (42, true)", v, ok)
		}
		if _, ok := LookupInt("LAMELLAR_TEST_KNOB_UNSET"); ok {
			t.Error("unset knob reported ok")
		}
	})
	if out != "" {
		t.Errorf("unexpected warning %q", out)
	}
}

func TestLookupFloatMalformedWarns(t *testing.T) {
	t.Setenv("LAMELLAR_TEST_FLOAT", "0.o5")
	out := captureWarnings(t, func() {
		if _, ok := LookupFloat("LAMELLAR_TEST_FLOAT"); ok {
			t.Error("malformed float reported ok")
		}
	})
	if !strings.Contains(out, "LAMELLAR_TEST_FLOAT") {
		t.Errorf("no warning for malformed float; got %q", out)
	}
}

func TestLookupBoolSpellings(t *testing.T) {
	for _, tc := range []struct {
		raw  string
		want bool
	}{
		{"1", true}, {"true", true}, {"TRUE", true}, {"yes", true}, {"on", true}, {"t", true},
		{"0", false}, {"false", false}, {"False", false}, {"no", false}, {"off", false}, {"f", false},
	} {
		t.Setenv("LAMELLAR_TEST_BOOL", tc.raw)
		v, ok := LookupBool("LAMELLAR_TEST_BOOL")
		if !ok || v != tc.want {
			t.Errorf("LookupBool(%q) = (%v, %v), want (%v, true)", tc.raw, v, ok, tc.want)
		}
	}
}

func TestLookupBoolMalformedWarns(t *testing.T) {
	t.Setenv("LAMELLAR_TEST_BOOL", "enable")
	out := captureWarnings(t, func() {
		if _, ok := LookupBool("LAMELLAR_TEST_BOOL"); ok {
			t.Error("malformed bool reported ok")
		}
	})
	if !strings.Contains(out, "LAMELLAR_TEST_BOOL") {
		t.Errorf("no warning for malformed bool; got %q", out)
	}
}

func TestBoolDefault(t *testing.T) {
	t.Setenv("LAMELLAR_TEST_BOOL", "bogus")
	captureWarnings(t, func() {
		if !Bool("LAMELLAR_TEST_BOOL", true) {
			t.Error("malformed bool did not fall back to default true")
		}
		if Bool("LAMELLAR_TEST_BOOL_UNSET", false) {
			t.Error("unset bool did not fall back to default false")
		}
	})
}

func TestIntClampWarns(t *testing.T) {
	t.Setenv("LAMELLAR_TEST_KNOB", "5000")
	out := captureWarnings(t, func() {
		if v := Int("LAMELLAR_TEST_KNOB", 32, 1, 1024); v != 1024 {
			t.Errorf("out-of-range value clamped to %d, want 1024", v)
		}
	})
	if !strings.Contains(out, "clamping") {
		t.Errorf("no clamp warning; got %q", out)
	}
	t.Setenv("LAMELLAR_TEST_KNOB", "1o")
	captureWarnings(t, func() {
		if v := Int("LAMELLAR_TEST_KNOB", 32, 1, 1024); v != 32 {
			t.Errorf("malformed value selected %d, want default 32", v)
		}
	})
}
