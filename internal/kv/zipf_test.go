package kv

import (
	"math"
	"testing"
)

// Same seed, same sequence — the whole workload methodology rests on it.
func TestKeyGenDeterministicPerSeed(t *testing.T) {
	a := NewKeyGen(1<<12, 0.99, 42)
	b := NewKeyGen(1<<12, 0.99, 42)
	c := NewKeyGen(1<<12, 0.99, 43)
	same, diff := true, false
	for i := 0; i < 1000; i++ {
		ka, kb, kc := a.Next(), b.Next(), c.Next()
		if ka != kb {
			same = false
		}
		if ka != kc {
			diff = true
		}
	}
	if !same {
		t.Error("same seed produced different key sequences")
	}
	if !diff {
		t.Error("different seeds produced identical key sequences")
	}
}

// splitmix64 reference values (seed 1234567) so the PRNG can never drift
// from the published sequence without a test noticing.
func TestSplitMix64Reference(t *testing.T) {
	r := NewRand(1234567)
	want := []uint64{0x599ED017FB08FC85, 0x2C73F08458540FA5, 0x883EBCE5A3F27C77}
	for i, w := range want {
		if got := r.Next(); got != w {
			t.Fatalf("step %d: got %#x, want %#x", i, got, w)
		}
	}
}

// The hottest key's observed frequency must sit near the analytic mass
// 1/H(n,s); with 200k draws the binomial noise is far below the 10%
// relative tolerance.
func TestZipfTopKeyMass(t *testing.T) {
	const n, draws = 1 << 10, 200_000
	for _, s := range []float64{0.8, 0.99, 1.2} {
		g := NewKeyGen(n, s, 7)
		counts := make(map[int]int, n)
		for i := 0; i < draws; i++ {
			counts[g.Next()]++
		}
		top := g.KeyOfRank(0)
		got := float64(counts[top]) / draws
		want := g.TopMass()
		if rel := math.Abs(got-want) / want; rel > 0.10 {
			t.Errorf("s=%v: top key frequency %.4f vs analytic %.4f (rel err %.1f%%)",
				s, got, want, rel*100)
		}
		// And the top key must actually be the mode.
		for k, c := range counts {
			if c > counts[top] {
				t.Errorf("s=%v: key %d (%d draws) beats nominal top key %d (%d draws)",
					s, k, c, top, counts[top])
				break
			}
		}
	}
}

// The rank→key map must be a bijection for assorted keyspace sizes
// (including sizes sharing factors with the multiplier candidates).
func TestKeyGenBijection(t *testing.T) {
	for _, n := range []int{1, 2, 3, 64, 1000, 1 << 12, 12289} {
		g := NewKeyGen(n, 1.0, 1)
		seen := make([]bool, n)
		for r := 0; r < n; r++ {
			k := g.KeyOfRank(r)
			if k < 0 || k >= n {
				t.Fatalf("n=%d: rank %d maps out of range (%d)", n, r, k)
			}
			if seen[k] {
				t.Fatalf("n=%d: key %d hit twice — not a bijection", n, k)
			}
			seen[k] = true
		}
	}
}

// Zipf with s=0 must be uniform (chi-square-lite: no bucket far off).
func TestZipfZeroSkewUniform(t *testing.T) {
	const n, draws = 64, 128_000
	g := NewKeyGen(n, 0, 3)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[g.Next()]++
	}
	want := float64(draws) / n
	for k, c := range counts {
		if math.Abs(float64(c)-want) > want*0.25 {
			t.Errorf("key %d: %d draws, want ~%.0f (uniform)", k, c, want)
		}
	}
}
