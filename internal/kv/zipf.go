// Package kv implements a distributed key-value service sharded over the
// array layer (ISSUE 10): keys are array indices, so routing is exactly
// the existing index→PE block distribution, and Get/Put/FetchAdd travel
// through the aggregation layer as element-op AMs. The package also
// carries the open-loop Zipfian traffic generator and the
// coordinated-omission-safe workload driver that measure whether the
// service holds latency SLOs on clean and adversarial fabrics.
package kv

import (
	"fmt"
	"math"
)

// Rand is a splitmix64 PRNG: tiny state, full 64-bit output, and a
// well-known reference sequence, so every workload is reproducible from
// one seed and cheap to fork per PE (seed+rank).
type Rand struct{ s uint64 }

// NewRand seeds a generator.
func NewRand(seed uint64) *Rand { return &Rand{s: seed} }

// Next returns the next 64 random bits (splitmix64 reference step).
func (r *Rand) Next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1) with 53 random bits.
func (r *Rand) Float64() float64 { return float64(r.Next()>>11) / (1 << 53) }

// Intn returns a uniform value in [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("kv: Intn on non-positive n")
	}
	return int(r.Next() % uint64(n))
}

// Zipf draws ranks from a Zipfian distribution over [0, n): rank r has
// probability (1/(r+1)^s) / H(n,s). Sampling inverts the precomputed CDF
// with a binary search, so a draw is O(log n) and the distribution is
// exact (no rejection), which makes the analytic top-1 mass 1/H(n,s)
// directly testable against observed frequencies. s=0 degenerates to
// uniform.
type Zipf struct {
	n   int
	s   float64
	cdf []float64 // cdf[r] = P(rank <= r), cdf[n-1] == 1
}

// NewZipf builds the sampler; O(n) setup, O(log n) per draw.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic(fmt.Sprintf("kv: Zipf over %d ranks", n))
	}
	if s < 0 {
		s = 0
	}
	z := &Zipf{n: n, s: s, cdf: make([]float64, n)}
	sum := 0.0
	for r := 0; r < n; r++ {
		sum += math.Pow(float64(r+1), -s)
		z.cdf[r] = sum
	}
	for r := range z.cdf {
		z.cdf[r] /= sum
	}
	z.cdf[n-1] = 1
	return z
}

// Rank draws a rank (0 = most popular) from the uniform sample u in [0,1).
func (z *Zipf) Rank(u float64) int {
	// Smallest r with cdf[r] > u.
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] > u {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// P reports the analytic probability mass of a rank.
func (z *Zipf) P(rank int) float64 {
	if rank == 0 {
		return z.cdf[0]
	}
	return z.cdf[rank] - z.cdf[rank-1]
}

// KeyGen maps Zipf ranks onto a keyspace. Rank r becomes key
// (r*mult + off) mod n with mult coprime to n — a bijection, so the
// rank distribution carries over exactly, but consecutive hot ranks
// scatter across the keyspace (and therefore across the owning PEs)
// instead of all landing in PE 0's block.
type KeyGen struct {
	rng  *Rand
	zipf *Zipf
	n    int
	mult int
	off  int
}

// NewKeyGen builds a generator over keys [0, n) with skew s. Generators
// with the same (n, s, seed) produce identical key sequences.
func NewKeyGen(n int, s float64, seed uint64) *KeyGen {
	if n <= 0 {
		panic("kv: KeyGen over empty keyspace")
	}
	// A multiplier near the golden-ratio point spreads consecutive ranks
	// roughly evenly; walk upward to the nearest value coprime to n so
	// the map stays a bijection for every keyspace size.
	mult := int(float64(n)*0.6180339887) | 1
	if mult < 1 {
		mult = 1
	}
	for gcd(mult, n) != 1 {
		mult += 2
	}
	return &KeyGen{rng: NewRand(seed), zipf: NewZipf(n, s), n: n, mult: mult % n, off: 17 % n}
}

// Next draws a key.
func (g *KeyGen) Next() int { return g.KeyOfRank(g.zipf.Rank(g.rng.Float64())) }

// KeyOfRank maps a popularity rank to its key (deterministic bijection).
func (g *KeyGen) KeyOfRank(r int) int { return (r*g.mult + g.off) % g.n }

// TopMass reports the analytic probability of the hottest key.
func (g *KeyGen) TopMass() float64 { return g.zipf.P(0) }

// Rng exposes the underlying PRNG for auxiliary draws (op mix, values)
// that must stay on the same deterministic stream.
func (g *KeyGen) Rng() *Rand { return g.rng }

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
