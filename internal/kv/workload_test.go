package kv

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// Coordinated-omission accounting: when the service stalls the generator
// (here: one request whose issue path blocks 60ms while everything else
// completes instantly), the requests scheduled *during* the stall must
// record the queueing delay the stall imposed on them — a closed-loop
// driver would report near-zero latency for every request and hide the
// outage entirely.
func TestOpenLoopChargesStallToIntendedSendTime(t *testing.T) {
	const (
		rate    = 1000.0 // 1ms intended interarrival
		reqs    = 120
		stallAt = 20
		stall   = 60 * time.Millisecond
	)
	var issued atomic.Int64
	stalling := func(class OpClass, key int, val uint64, done func(error)) {
		if issued.Add(1) == stallAt {
			time.Sleep(stall) // synchronous stall: blocks the generator loop
		}
		done(nil)
	}
	w := Workload{Requests: reqs, Rate: rate, Skew: 0.99, Seed: 5, NPEs: 1}
	res := w.run(1<<10, stalling)

	var n uint64
	var worst time.Duration
	for c := range res.Classes {
		n += res.Classes[c].Completed
		if m := res.Classes[c].Latency.Max; m > worst {
			worst = m
		}
	}
	if n != reqs {
		t.Fatalf("completed %d of %d requests", n, reqs)
	}
	if res.Errors != 0 {
		t.Fatalf("unexpected errors: %d", res.Errors)
	}
	// The stalled request itself plus everything scheduled behind it must
	// show the stall: max recorded latency close to the full stall.
	if worst < stall/2 {
		t.Errorf("max latency %v hides a %v generator stall (coordinated omission)", worst, stall)
	}
	// ~60 requests had intended send times inside the stall window; at
	// least half of them must record >= 10ms of imposed queueing delay.
	var delayed uint64
	for c := range res.Classes {
		s := res.Classes[c].Latency
		if s.P50 >= 10*time.Millisecond {
			delayed += s.Count / 2
		} else if s.P90 >= 10*time.Millisecond {
			delayed += s.Count / 10
		}
	}
	if delayed == 0 {
		t.Errorf("no request class shows the stall in its percentiles: %+v", res.Classes)
	}
}

// Without a stall, an unthrottled run completes everything and the
// ledger bookkeeping is internally consistent.
func TestOpenLoopLedgerBookkeeping(t *testing.T) {
	instant := func(class OpClass, key int, val uint64, done func(error)) { done(nil) }
	w := Workload{Requests: 5000, Skew: 0.99, Seed: 11, NPEs: 2, PE: 1}
	res := w.run(1<<10, instant)

	var addIssued uint64
	for _, v := range res.AddIssued {
		addIssued += v
	}
	if addIssued != res.Classes[OpFetchAdd].Issued {
		t.Errorf("AddIssued sum %d != fadd issued %d", addIssued, res.Classes[OpFetchAdd].Issued)
	}
	for k := range res.AddIssued {
		if res.AddDone[k] != res.AddIssued[k] {
			t.Errorf("counter key %d: done %d != issued %d on an error-free run",
				k, res.AddDone[k], res.AddIssued[k])
		}
	}
	var puts uint64
	for _, v := range res.PutIssued {
		puts += uint64(v)
	}
	if puts != res.Classes[OpPut].Issued {
		t.Errorf("PutIssued sum %d != put issued %d", puts, res.Classes[OpPut].Issued)
	}
	if res.Achieved <= 0 {
		t.Error("achieved throughput not reported")
	}
}

// Errors must count as SLO violations, stay out of the latency
// histograms, and degrade the ledger check to bounds.
func TestOpenLoopErrorsAreViolations(t *testing.T) {
	boom := errors.New("synthetic delivery failure")
	var n atomic.Int64
	flaky := func(class OpClass, key int, val uint64, done func(error)) {
		if n.Add(1)%10 == 0 {
			done(boom)
			return
		}
		done(nil)
	}
	w := Workload{Requests: 2000, Skew: 0.5, Seed: 3, NPEs: 1}
	res := w.run(256, flaky)
	if res.Errors == 0 {
		t.Fatal("no errors recorded from a flaky issuer")
	}
	var histN, completed, errs uint64
	for c := range res.Classes {
		histN += res.Classes[c].Latency.Count
		completed += res.Classes[c].Completed
		errs += res.Classes[c].Errors
	}
	if errs != res.Errors {
		t.Errorf("per-class errors %d != total %d", errs, res.Errors)
	}
	if completed != 2000 {
		t.Errorf("completed %d, want 2000 (errors still complete)", completed)
	}
	if histN != completed-res.Errors {
		t.Errorf("histograms hold %d samples, want successes only (%d)", histN, completed-res.Errors)
	}
}
