package kv

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/runtime"
)

// Basic sharded semantics on both backends: cross-PE routing, Put/Get
// roundtrip, FetchAdd previous values, owner placement.
func TestStoreRoundTrip(t *testing.T) {
	for _, backend := range []Backend{BackendAtomic, BackendLocalLock} {
		t.Run(backend.String(), func(t *testing.T) {
			cfg := runtime.Config{PEs: 4, WorkersPerPE: 2, Lamellae: runtime.LamellaeShmem}
			err := runtime.Run(cfg, func(w *runtime.World) {
				s := New(w.Team(), 64, backend)
				defer s.Drop()
				me := w.MyPE()

				// Every PE writes one key per shard, reads them all back.
				for k := me; k < 64; k += w.NumPEs() {
					if _, err := s.Put(k, uint64(1000+k)).Await(); err != nil {
						panic(err)
					}
				}
				w.WaitAll()
				w.Barrier()
				for k := 0; k < 64; k++ {
					v, err := s.Get(k).Await()
					if err != nil {
						panic(err)
					}
					if v != uint64(1000+k) {
						panic(fmt.Sprintf("PE %d: key %d = %d, want %d", me, k, v, 1000+k))
					}
				}
				w.Barrier()

				// FetchAdd returns previous values; all PEs hammer key 3.
				prev, err := s.FetchAdd(3, 1).Await()
				if err != nil {
					panic(err)
				}
				if prev < 1003 || prev >= 1003+uint64(w.NumPEs()) {
					panic(fmt.Sprintf("PE %d: fetch-add prev %d out of range", me, prev))
				}
				w.WaitAll()
				w.Barrier()
				if v, _ := s.Get(3).Await(); v != 1003+uint64(w.NumPEs()) {
					panic(fmt.Sprintf("key 3 = %d after %d adds", v, w.NumPEs()))
				}

				// Placement: every key in LocalRange is owned here.
				start, n := s.LocalRange()
				for g := start; g < start+n; g++ {
					if s.OwnerOf(g) != me {
						panic(fmt.Sprintf("key %d in PE %d's range but owned by %d", g, me, s.OwnerOf(g)))
					}
				}
				w.Barrier()
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// kvSmoke drives the full workload on a given fabric and checks ledger
// exactness. Shared by the faulted smoke gate (make kv-smoke) and the
// backend matrix.
func kvSmoke(t *testing.T, backend Backend, plan *fabric.FaultPlan, requests int) {
	const keys = 512
	cfg := runtime.Config{
		PEs: 4, WorkersPerPE: 2, Lamellae: runtime.LamellaeShmem,
		Faults:        plan,
		RetryInterval: 2 * time.Millisecond,
	}
	var mu sync.Mutex
	results := make([]*Result, cfg.PEs)
	var violations []string
	err := runtime.Run(cfg, func(w *runtime.World) {
		s := New(w.Team(), keys, backend)
		defer s.Drop()
		w.Barrier()
		res := Run(s, Workload{
			Requests: requests,
			Skew:     0.99,
			Seed:     uint64(0xC0FFEE + w.MyPE()),
			PE:       w.MyPE(),
			NPEs:     w.NumPEs(),
		})
		s.Flush()
		w.WaitAll()
		w.Barrier()
		mu.Lock()
		results[w.MyPE()] = res
		mu.Unlock()
		w.Barrier()
		mu.Lock()
		ledger := MergeLedgers(results)
		mu.Unlock()
		if bad := VerifyLocal(s, ledger); len(bad) > 0 {
			mu.Lock()
			violations = append(violations, bad...)
			mu.Unlock()
		}
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	var errs uint64
	for _, r := range results {
		if r == nil {
			t.Fatal("a PE reported no result")
		}
		errs += r.Errors
	}
	if errs != 0 {
		t.Errorf("%d SLO violations on a fabric the reliable layer should repair", errs)
	}
	for _, v := range violations {
		t.Errorf("ledger: %s", v)
	}
}

// The kv-smoke gate (Makefile): small keyspace, adversarial 5% drop/dup/
// reorder fabric, race detector, ledger exactness — zero lost or phantom
// updates after the reliable layer repairs the damage.
func TestKVSmokeFaultedLedgerExact(t *testing.T) {
	plan := fabric.NewFaultPlan(77).SetDefault(fabric.LinkFaults{
		DropRate: 0.05, DupRate: 0.05, ReorderRate: 0.05, Delay: 200 * time.Microsecond})
	kvSmoke(t, BackendAtomic, plan, 2500)
}

// Same contract on the lock-based backend, clean fabric (keeps the smoke
// fast; the faulted path is covered above and the wire layer is
// backend-agnostic).
func TestKVSmokeLocalLockLedgerExact(t *testing.T) {
	kvSmoke(t, BackendLocalLock, fabric.NewFaultPlan(0), 1500)
}

// DeliveryError propagation on the KV path (ISSUE 10 satellite): a Get
// issued into a partition must surface *runtime.DeliveryError — never a
// zero value posing as a read — and a workload run across the partition
// must count those failures as SLO violations.
func TestKVPartitionGetSurfacesDeliveryError(t *testing.T) {
	plan := fabric.NewFaultPlan(9)
	cfg := runtime.Config{
		PEs: 2, WorkersPerPE: 2, Lamellae: runtime.LamellaeShmem,
		Faults:          plan,
		RetryInterval:   2 * time.Millisecond,
		RetryBackoffMax: 10 * time.Millisecond,
		DeliveryTimeout: 250 * time.Millisecond,
	}
	var sawDeliveryError, sawViolations bool
	// PEs are in-process goroutines: PE 1 must not enter a collective
	// while the partition is held down longer than DeliveryTimeout (its
	// barrier envelope would be abandoned), so heal is signalled out of
	// band and both PEs only rendezvous on the repaired fabric.
	healed := make(chan struct{})
	err := runtime.Run(cfg, func(w *runtime.World) {
		const keys = 64
		s := New(w.Team(), keys, BackendAtomic)
		defer s.Drop()
		w.Barrier()
		if w.MyPE() == 0 {
			// Pick a key PE 1 owns, seed it, then partition and read it.
			remote := -1
			for k := 0; k < keys; k++ {
				if s.OwnerOf(k) == 1 {
					remote = k
					break
				}
			}
			if _, err := s.Put(remote, 555).Await(); err != nil {
				panic(err)
			}
			plan.Partition(0, 1, true)
			v, err := s.Get(remote).Await()
			var de *runtime.DeliveryError
			if !errors.As(err, &de) {
				panic(fmt.Sprintf("partitioned Get returned (%d, %v), want *DeliveryError", v, err))
			}
			sawDeliveryError = true

			// A short workload across the live partition: its failures
			// must be visible as SLO violations, not silent zeros.
			res := Run(s, Workload{
				Requests: 300, Rate: 5000, Skew: 0.99, Seed: 21,
				PE: 0, NPEs: w.NumPEs(), MaxInflight: 64,
			})
			sawViolations = res.Errors > 0
			plan.Heal(0, 1, true)
			close(healed)
		} else {
			<-healed
		}
		w.WaitAll()
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawDeliveryError {
		t.Error("partitioned Get never surfaced a DeliveryError")
	}
	if !sawViolations {
		t.Error("workload across a partition reported zero SLO violations")
	}
}
