package kv

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Open-loop Zipfian workload driver. The generator schedules request i at
// intended time start + i/rate regardless of how the service is doing,
// and latency is measured from that *intended* send time — so if the
// service (or the generator itself, when an await blocks it) stalls, the
// queueing delay the stall imposes on subsequent requests lands in their
// recorded latencies instead of silently vanishing. This is the standard
// coordinated-omission fix: a closed-loop driver that waits for slow
// responses before sending more would under-report exactly the tail the
// p999 column exists to expose.
//
// Failed operations (delivery errors) are counted as SLO violations and
// excluded from the latency histograms: a timed-out Get has no latency,
// it has an error, and folding the timeout bound into the percentiles
// would let a lossy fabric "improve" the tail by failing fast.

// OpClass labels the three KV operation types.
type OpClass int

// Operation classes.
const (
	OpGet OpClass = iota
	OpPut
	OpFetchAdd
	NumOpClasses
)

func (c OpClass) String() string {
	switch c {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpFetchAdd:
		return "fadd"
	default:
		return fmt.Sprintf("OpClass(%d)", int(c))
	}
}

// Workload describes one driving PE's traffic.
type Workload struct {
	// Requests is the total number of operations to issue.
	Requests int
	// Rate is the offered load in requests/second; <= 0 issues with no
	// pacing (every intended send time is "now").
	Rate float64
	// Skew is the Zipf exponent s (0 = uniform).
	Skew float64
	// Seed makes the key/op sequence reproducible; drivers on different
	// PEs should fork it (e.g. seed + rank).
	Seed uint64
	// GetFrac/PutFrac set the op mix; FetchAdd takes the remainder.
	// Defaults 0.60 / 0.25.
	GetFrac, PutFrac float64
	// MaxInflight bounds outstanding ops (default 4096). Hitting the
	// bound stalls the generator, which the intended-time accounting
	// charges to the affected requests' latency.
	MaxInflight int
	// PE tags Put values for the phantom-update check.
	PE int
	// NPEs is the world size (ledger dimensioning).
	NPEs int
}

func (w Workload) withDefaults() Workload {
	if w.GetFrac == 0 && w.PutFrac == 0 {
		w.GetFrac, w.PutFrac = 0.60, 0.25
	}
	if w.MaxInflight <= 0 {
		w.MaxInflight = 4096
	}
	if w.NPEs <= 0 {
		w.NPEs = 1
	}
	return w
}

// ClassResult is the per-op-class outcome.
type ClassResult struct {
	Issued, Completed, Errors uint64
	Latency                   telemetry.HistSummary
}

// Result is one driving PE's workload outcome plus its update ledger.
type Result struct {
	Classes [NumOpClasses]ClassResult
	// Hists are the raw per-class latency histograms (successes only) so
	// callers can Merge distributions across PEs before taking quantiles
	// — Classes[c].Latency is this PE's digest of the same data.
	Hists   [NumOpClasses]*telemetry.Histogram
	Elapsed time.Duration
	// Offered is the configured rate (0 = unthrottled); Achieved is
	// completed requests (success or error) per second of wall time.
	Offered, Achieved float64
	// Errors counts failed ops across classes — each is an SLO violation.
	Errors uint64

	// Ledger for the exactness check (see Ledger): per-counter-key issued
	// and completed FetchAdd totals, and per-register-key Put issue
	// counts from this PE.
	Counters  int
	AddIssued []uint64
	AddDone   []uint64
	PutIssued []uint32
}

// SplitKeys partitions a keyspace into the counter region [0, c) mutated
// only by FetchAdd and the register region [c, n) used by Put/Get. The
// split is what makes ledger exactness checkable: counter keys have a
// commutative history (sum of deltas), register keys carry self-
// describing values.
func SplitKeys(n int) (counters, registers int) {
	c := n / 2
	if c < 1 {
		c = 1
	}
	if c >= n {
		c = n - 1
	}
	if c < 1 { // n == 1: degenerate, all counters
		return n, 0
	}
	return c, n - c
}

// encodePutValue makes register values self-describing: bits [32,64) hold
// key+1 (so 0 always means "never written"), [16,32) the writing PE, and
// [0,16) that PE's per-key sequence number at issue time. The ledger
// check decodes a final register value and rejects it unless this exact
// write was actually issued — a phantom or cross-key misroute cannot
// decode consistently.
func encodePutValue(key, pe int, seq uint32) uint64 {
	return uint64(key+1)<<32 | uint64(pe&0xFFFF)<<16 | uint64(seq&0xFFFF)
}

// issuer submits one operation and must invoke done(err) exactly once on
// completion. Split out from the Store so the open-loop accounting is
// testable against a synthetic (stallable) service.
type issuer func(class OpClass, key int, val uint64, done func(err error))

// Run drives the store from the calling PE and reports the outcome. The
// caller is responsible for collective setup/teardown (barriers).
func Run(s *Store, w Workload) *Result {
	issue := func(class OpClass, key int, val uint64, done func(err error)) {
		switch class {
		case OpGet:
			s.Get(key).OnDone(func(_ uint64, err error) { done(err) })
		case OpPut:
			s.Put(key, val).OnDone(func(_ struct{}, err error) { done(err) })
		default:
			s.FetchAdd(key, val).OnDone(func(_ uint64, err error) { done(err) })
		}
	}
	if w.NPEs <= 0 {
		w.NPEs = s.NumShards()
	}
	return w.run(s.Keys(), issue)
}

// run is the open-loop core over an abstract issuer.
func (w Workload) run(keys int, issue issuer) *Result {
	w = w.withDefaults()
	counters, registers := SplitKeys(keys)

	// Independent deterministic streams: one for the op mix, one key
	// generator per region (regions have different sizes, so one shared
	// generator would entangle their sequences).
	mixRng := NewRand(w.Seed ^ 0xA5A5A5A5)
	counterGen := NewKeyGen(counters, w.Skew, w.Seed+1)
	var registerGen *KeyGen
	if registers > 0 {
		registerGen = NewKeyGen(registers, w.Skew, w.Seed+2)
	}

	res := &Result{
		Offered:   w.Rate,
		Counters:  counters,
		AddIssued: make([]uint64, counters),
		AddDone:   make([]uint64, counters),
		PutIssued: make([]uint32, registers),
	}
	for c := range res.Hists {
		res.Hists[c] = new(telemetry.Histogram)
	}
	var mu sync.Mutex // guards res.Classes counters and AddDone

	var interval time.Duration
	if w.Rate > 0 {
		interval = time.Duration(float64(time.Second) / w.Rate)
	}
	tokens := make(chan struct{}, w.MaxInflight)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < w.Requests; i++ {
		var intended time.Time
		if interval > 0 {
			intended = start.Add(time.Duration(i) * interval)
			if d := time.Until(intended); d > 0 {
				time.Sleep(d)
			}
		} else {
			intended = time.Now()
		}

		// Draw the op and key on the deterministic streams.
		class := OpFetchAdd
		if registerGen != nil {
			switch u := mixRng.Float64(); {
			case u < w.GetFrac:
				class = OpGet
			case u < w.GetFrac+w.PutFrac:
				class = OpPut
			}
		}
		var key int
		var val uint64
		switch class {
		case OpFetchAdd:
			key = counterGen.Next()
			val = 1
			res.AddIssued[key]++
		case OpPut:
			rk := registerGen.Next()
			key = counters + rk
			val = encodePutValue(key, w.PE, res.PutIssued[rk])
			res.PutIssued[rk]++
		default:
			key = counters + registerGen.Next()
		}
		res.Classes[class].Issued++

		tokens <- struct{}{} // inflight bound; stall time is charged below
		wg.Add(1)
		cls, k, sent := class, key, intended
		issue(cls, k, val, func(err error) {
			// Latency from the intended send time, not from when the
			// (possibly stalled) generator actually got the op out.
			lat := time.Since(sent)
			mu.Lock()
			res.Classes[cls].Completed++
			if err != nil {
				res.Classes[cls].Errors++
				res.Errors++
			} else {
				res.Hists[cls].Record(int64(lat))
				if cls == OpFetchAdd {
					res.AddDone[k]++
				}
			}
			mu.Unlock()
			<-tokens
			wg.Done()
		})
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	var completed uint64
	for c := range res.Classes {
		res.Classes[c].Latency = res.Hists[c].Summary()
		completed += res.Classes[c].Completed
	}
	if res.Elapsed > 0 {
		res.Achieved = float64(completed) / res.Elapsed.Seconds()
	}
	return res
}

// Ledger is the cross-PE merge of workload results used for the
// exactness check: after a run drains, the counter region must hold
// exactly the issued FetchAdd mass (no lost updates, no phantom/double
// applies — the reliable layer dedups duplicates) and every register
// value must decode to a write some PE actually issued.
type Ledger struct {
	Counters int
	NPEs     int
	// AddIssued/AddDone: per counter key, summed over PEs.
	AddIssued []uint64
	AddDone   []uint64
	// PutIssued: [pe][register key] issue counts.
	PutIssued [][]uint32
	// Errors across all PEs: when zero, the counter check is exact;
	// otherwise a timed-out op may or may not have been applied and the
	// check degrades to bounds.
	Errors uint64
}

// MergeLedgers folds per-PE results (indexed by PE) into one ledger.
func MergeLedgers(results []*Result) *Ledger {
	var l *Ledger
	for pe, r := range results {
		if r == nil {
			continue
		}
		if l == nil {
			l = &Ledger{
				Counters:  r.Counters,
				NPEs:      len(results),
				AddIssued: make([]uint64, r.Counters),
				AddDone:   make([]uint64, r.Counters),
				PutIssued: make([][]uint32, len(results)),
			}
		}
		for k, v := range r.AddIssued {
			l.AddIssued[k] += v
		}
		for k, v := range r.AddDone {
			l.AddDone[k] += v
		}
		l.PutIssued[pe] = r.PutIssued
		l.Errors += r.Errors
	}
	return l
}

// VerifyLocal checks the calling PE's owned chunk against the merged
// ledger, returning a description of every violation (nil = exact).
// Collective pattern: barrier, then every PE verifies its own shard.
func VerifyLocal(s *Store, l *Ledger) []string {
	start, _ := s.LocalRange()
	data := s.LocalSnapshot()
	var bad []string
	for i, v := range data {
		g := start + i
		if g < l.Counters {
			issued, done := l.AddIssued[g], l.AddDone[g]
			if l.Errors == 0 {
				if v != issued {
					bad = append(bad, fmt.Sprintf(
						"counter key %d: final %d != issued %d (done %d)", g, v, issued, done))
				}
			} else if v < done || v > issued {
				bad = append(bad, fmt.Sprintf(
					"counter key %d: final %d outside [done %d, issued %d]", g, v, done, issued))
			}
			continue
		}
		if v == 0 {
			continue // never written
		}
		key := int(v>>32) - 1
		pe := int(v >> 16 & 0xFFFF)
		seq := uint32(v & 0xFFFF)
		switch {
		case key != g:
			bad = append(bad, fmt.Sprintf(
				"register key %d: value decodes to key %d (cross-key phantom)", g, key))
		case pe >= l.NPEs || l.PutIssued[pe] == nil:
			bad = append(bad, fmt.Sprintf(
				"register key %d: value claims unknown writer PE %d", g, pe))
		default:
			issued := l.PutIssued[pe][g-l.Counters]
			// The stored sequence is 16-bit; only check when unambiguous.
			if issued <= 0xFFFF && seq >= issued {
				bad = append(bad, fmt.Sprintf(
					"register key %d: PE %d seq %d never issued (only %d puts)", g, pe, seq, issued))
			}
		}
	}
	return bad
}
