package kv

import (
	"fmt"

	"repro/internal/array"
	"repro/internal/runtime"
	"repro/internal/scheduler"
)

// Backend selects the array flavor the store shards over.
type Backend int

const (
	// BackendAtomic shards over an AtomicArray: per-element atomic ops on
	// the owner, no locks.
	BackendAtomic Backend = iota
	// BackendLocalLock shards over a LocalLockArray: owner-side ops run
	// under the owner's reader/writer lock.
	BackendLocalLock
)

func (b Backend) String() string {
	switch b {
	case BackendAtomic:
		return "atomic"
	case BackendLocalLock:
		return "locallock"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// ParseBackend maps a flag spelling to a Backend.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "atomic":
		return BackendAtomic, nil
	case "locallock", "local-lock":
		return BackendLocalLock, nil
	}
	return 0, fmt.Errorf("kv: unknown backend %q (want atomic or locallock)", s)
}

// Store is a distributed key-value service over a fixed keyspace
// [0, keys): key k lives on the PE that owns array index k under the
// block distribution, so routing is the array layer's existing index→PE
// placement and every operation flows through the aggregation layer as an
// element-op AM. Values are uint64.
//
// Construction is collective on the team; every PE must call New with the
// same arguments.
type Store struct {
	backend Backend
	keys    int
	team    *runtime.Team
	at      *array.AtomicArray[uint64]
	ll      *array.LocalLockArray[uint64]
}

// New collectively constructs a store with the given keyspace size.
func New(team *runtime.Team, keys int, backend Backend) *Store {
	s := &Store{backend: backend, keys: keys, team: team}
	switch backend {
	case BackendLocalLock:
		s.ll = array.NewLocalLockArray[uint64](team, keys, array.Block)
	default:
		s.at = array.NewAtomicArray[uint64](team, keys, array.Block)
	}
	return s
}

// Keys reports the keyspace size.
func (s *Store) Keys() int { return s.keys }

// Backend reports the array flavor.
func (s *Store) Backend() Backend { return s.backend }

// NumShards reports the number of owning PEs.
func (s *Store) NumShards() int { return s.team.Size() }

// OwnerOf reports the team rank serving key k.
func (s *Store) OwnerOf(k int) int {
	if s.at != nil {
		return s.at.RankOf(k)
	}
	return s.ll.RankOf(k)
}

// LocalRange reports the key range [start, start+n) owned by the calling
// PE.
func (s *Store) LocalRange() (start, n int) {
	if s.at != nil {
		return s.at.LocalRange()
	}
	return s.ll.LocalRange()
}

// Get reads key k. On delivery failure — e.g. a *runtime.DeliveryError
// after the wire layer exhausted retransmissions into a partition — the
// future resolves with a non-nil error; the zero value accompanying an
// error is NOT a read result and callers must treat the op as failed
// (the workload driver counts it as an SLO violation).
func (s *Store) Get(k int) *scheduler.Future[uint64] {
	if s.at != nil {
		return s.at.Load(k)
	}
	return firstOf(s.ll.BatchLoad([]int{k}))
}

// Put writes v at key k. The future resolves once the owner applied the
// write and the origin saw the completion (so a resolved, error-free Put
// is durable at the owner); errors carry delivery failures.
func (s *Store) Put(k int, v uint64) *scheduler.Future[struct{}] {
	var f *scheduler.Future[[]uint64]
	if s.at != nil {
		f = s.at.BatchStore([]int{k}, v)
	} else {
		f = s.ll.BatchOp(array.OpStore, []int{k}, v)
	}
	return scheduler.Map(f, func([]uint64) struct{} { return struct{}{} })
}

// FetchAdd atomically adds d to key k and resolves with the previous
// value (same error contract as Get).
func (s *Store) FetchAdd(k int, d uint64) *scheduler.Future[uint64] {
	if s.at != nil {
		return s.at.FetchAdd(k, d)
	}
	return firstOf(s.ll.BatchFetchOp(array.OpAdd, []int{k}, d))
}

// Flush drains this PE's aggregation buffers for the store, dispatching
// buffered ops immediately.
func (s *Store) Flush() {
	if s.at != nil {
		s.at.FlushBatches()
	} else {
		s.ll.FlushBatches()
	}
}

// LocalSnapshot copies the calling PE's owned chunk (pair with LocalRange
// for global indices). Call between barriers with no writes in flight.
func (s *Store) LocalSnapshot() []uint64 {
	if s.at != nil {
		return append([]uint64(nil), s.at.LocalData()...)
	}
	var out []uint64
	s.ll.ReadLocal(func(data []uint64) { out = append([]uint64(nil), data...) })
	return out
}

// Drop releases the calling PE's handle.
func (s *Store) Drop() {
	if s.at != nil {
		s.at.Drop()
	} else {
		s.ll.Drop()
	}
}

// firstOf adapts a one-element batch future to a scalar future,
// preserving errors.
func firstOf(f *scheduler.Future[[]uint64]) *scheduler.Future[uint64] {
	return scheduler.Map(f, func(vals []uint64) uint64 {
		if len(vals) == 0 {
			return 0
		}
		return vals[0]
	})
}
