package serde

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPrimitiveRoundTrip(t *testing.T) {
	e := NewEncoder(64)
	e.PutU8(0xAB)
	e.PutBool(true)
	e.PutBool(false)
	e.PutU16(0xBEEF)
	e.PutU32(0xDEADBEEF)
	e.PutU64(0x0123456789ABCDEF)
	e.PutUvarint(1 << 60)
	e.PutVarint(-12345)
	e.PutInt(-7)
	e.PutF64(math.Pi)
	e.PutF32(2.5)
	e.PutBytes([]byte{1, 2, 3})
	e.PutString("hello λ")

	d := NewDecoder(e.Bytes())
	if got := d.U8(); got != 0xAB {
		t.Errorf("U8 = %#x", got)
	}
	if !d.Bool() || d.Bool() {
		t.Errorf("Bool mismatch")
	}
	if got := d.U16(); got != 0xBEEF {
		t.Errorf("U16 = %#x", got)
	}
	if got := d.U32(); got != 0xDEADBEEF {
		t.Errorf("U32 = %#x", got)
	}
	if got := d.U64(); got != 0x0123456789ABCDEF {
		t.Errorf("U64 = %#x", got)
	}
	if got := d.Uvarint(); got != 1<<60 {
		t.Errorf("Uvarint = %d", got)
	}
	if got := d.Varint(); got != -12345 {
		t.Errorf("Varint = %d", got)
	}
	if got := d.Int(); got != -7 {
		t.Errorf("Int = %d", got)
	}
	if got := d.F64(); got != math.Pi {
		t.Errorf("F64 = %v", got)
	}
	if got := d.F32(); got != 2.5 {
		t.Errorf("F32 = %v", got)
	}
	if got := d.Bytes(); string(got) != "\x01\x02\x03" {
		t.Errorf("Bytes = %v", got)
	}
	if got := d.String(); got != "hello λ" {
		t.Errorf("String = %q", got)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("decode error: %v", err)
	}
	if d.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", d.Remaining())
	}
}

func TestShortBuffer(t *testing.T) {
	d := NewDecoder([]byte{0x01})
	_ = d.U64()
	if d.Err() != ErrShortBuffer {
		t.Fatalf("err = %v, want ErrShortBuffer", d.Err())
	}
	// sticky: later reads keep failing and return zero values
	if v := d.U8(); v != 0 {
		t.Errorf("after error U8 = %d, want 0", v)
	}
}

func TestCorruptVarint(t *testing.T) {
	// 10 continuation bytes is an invalid varint
	b := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80}
	d := NewDecoder(b)
	_ = d.Uvarint()
	if d.Err() == nil {
		t.Fatal("expected corrupt varint error")
	}
}

func TestBytesLengthOverflow(t *testing.T) {
	e := NewEncoder(8)
	e.PutUvarint(1 << 40) // claims a huge payload
	d := NewDecoder(e.Bytes())
	if got := d.Bytes(); got != nil {
		t.Errorf("Bytes = %v, want nil", got)
	}
	if d.Err() != ErrShortBuffer {
		t.Errorf("err = %v, want ErrShortBuffer", d.Err())
	}
}

func roundTripSlice[T Number](t *testing.T, in []T) {
	t.Helper()
	e := NewEncoder(0)
	EncodeSlice(e, in)
	out := DecodeSlice[T](NewDecoder(e.Bytes()))
	if len(out) != len(in) {
		t.Fatalf("len = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("elem %d = %v, want %v", i, out[i], in[i])
		}
	}
	// fixed encoding too
	e.Reset()
	EncodeFixedSlice(e, in)
	out = DecodeFixedSlice[T](NewDecoder(e.Bytes()))
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("fixed elem %d = %v, want %v", i, out[i], in[i])
		}
	}
}

func TestSliceRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(s []int64) bool {
		roundTripSlice(t, s)
		return true
	}, nil); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(s []uint64) bool {
		roundTripSlice(t, s)
		return true
	}, nil); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(s []float64) bool {
		for i, v := range s { // NaN breaks == comparison; replace
			if math.IsNaN(v) {
				s[i] = 0
			}
		}
		roundTripSlice(t, s)
		return true
	}, nil); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(s []int8) bool {
		roundTripSlice(t, s)
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

type temperature float64 // derived float type must encode as float

func TestDerivedTypeKinds(t *testing.T) {
	in := []temperature{1.5, -2.25, 1e-30}
	roundTripSlice(t, in)

	e := NewEncoder(0)
	EncodeValue(e, temperature(3.75))
	if got := DecodeValue[temperature](NewDecoder(e.Bytes())); got != 3.75 {
		t.Errorf("derived float round trip = %v", got)
	}
}

func TestValueExtremes(t *testing.T) {
	e := NewEncoder(0)
	EncodeValue(e, uint64(math.MaxUint64))
	EncodeValue(e, int64(math.MinInt64))
	EncodeValue(e, int64(math.MaxInt64))
	d := NewDecoder(e.Bytes())
	if got := DecodeValue[uint64](d); got != math.MaxUint64 {
		t.Errorf("MaxUint64 = %d", got)
	}
	if got := DecodeValue[int64](d); got != math.MinInt64 {
		t.Errorf("MinInt64 = %d", got)
	}
	if got := DecodeValue[int64](d); got != math.MaxInt64 {
		t.Errorf("MaxInt64 = %d", got)
	}
}

func TestEncoderReuse(t *testing.T) {
	e := NewEncoder(4)
	e.PutU64(42)
	first := len(e.Bytes())
	e.Reset()
	if e.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
	e.PutU64(43)
	if len(e.Bytes()) != first {
		t.Fatal("reused encoder produced different length")
	}
	if NewDecoder(e.Bytes()).U64() != 43 {
		t.Fatal("reused encoder content wrong")
	}
}

// Fixed-width encoding must use each type's natural width on the wire.
func TestFixedSliceWireWidth(t *testing.T) {
	checkWidth := func(encLen, n, w int) {
		t.Helper()
		// uvarint length prefix for small n is 1 byte
		if encLen != 1+n*w {
			t.Errorf("wire len = %d, want %d (w=%d)", encLen, 1+n*w, w)
		}
	}
	e := NewEncoder(0)
	EncodeFixedSlice(e, []uint8{1, 2, 3})
	checkWidth(e.Len(), 3, 1)
	e.Reset()
	EncodeFixedSlice(e, []int16{-1, 2, 3})
	checkWidth(e.Len(), 3, 2)
	e.Reset()
	EncodeFixedSlice(e, []float32{1.5, -2})
	checkWidth(e.Len(), 2, 4)
	e.Reset()
	EncodeFixedSlice(e, []int64{1, 2})
	checkWidth(e.Len(), 2, 8)
}

func TestFixedSliceAllWidthsRoundTrip(t *testing.T) {
	roundTripSlice(t, []int8{-128, 0, 127})
	roundTripSlice(t, []uint8{0, 200, 255})
	roundTripSlice(t, []int16{-32768, 0, 32767})
	roundTripSlice(t, []uint16{0, 40000, 65535})
	roundTripSlice(t, []int32{-1 << 31, 0, 1<<31 - 1})
	roundTripSlice(t, []uint32{0, 3_000_000_000, 1<<32 - 1})
	roundTripSlice(t, []float32{-1.5, 0, 3.25e10})
	roundTripSlice(t, []uint{0, 1 << 40})
	roundTripSlice(t, []uintptr{0, 42})
}
