package serde

import (
	"unsafe"
)

// Zero-copy numeric slice fast path. The fixed natural-width wire format
// of EncodeFixedSlice (little-endian elements, uvarint length prefix) is
// byte-identical to the in-memory layout of []T on little-endian hosts,
// so a whole slice can move with one memmove instead of an
// element-at-a-time encode loop. Big-endian hosts fall back to the
// portable loops; the bytes on the wire are identical either way.

// hostLittleEndian is detected once at startup; Go has no compile-time
// endianness constant.
var hostLittleEndian = func() bool {
	x := uint16(0x0102)
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}()

// Cap reports the capacity of the encoder's underlying buffer. Buffer
// pools use it to drop oversized encoders instead of retaining them.
func (e *Encoder) Cap() int { return cap(e.buf) }

// PutNumericSlice appends a length-prefixed []T in the EncodeFixedSlice
// wire format. Go methods cannot introduce type parameters, so the
// fast-path pair PutNumericSlice/NumericSlice are free functions over
// *Encoder/*Decoder rather than methods.
func PutNumericSlice[T Number](e *Encoder, s []T) {
	e.PutUvarint(uint64(len(s)))
	if len(s) == 0 {
		return
	}
	if hostLittleEndian {
		w := int(unsafe.Sizeof(s[0]))
		raw := unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(s))), len(s)*w)
		e.buf = append(e.buf, raw...)
		return
	}
	putFixedElems(e, s)
}

// NumericSlice reads a slice written by PutNumericSlice/EncodeFixedSlice
// into freshly allocated memory (one memmove on little-endian hosts).
// The result never aliases the decoder's buffer.
func NumericSlice[T Number](d *Decoder) []T {
	w := SizeOf[T]()
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n*uint64(w) > uint64(d.Remaining()) {
		d.fail(ErrShortBuffer)
		return nil
	}
	out := make([]T, n)
	if n == 0 {
		return out
	}
	if hostLittleEndian {
		raw := d.take(int(n) * w)
		if d.err != nil {
			return nil
		}
		dst := unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(out))), len(raw))
		copy(dst, raw)
		return out
	}
	takeFixedElems(d, out)
	if d.err != nil {
		return nil
	}
	return out
}

// Align pads the encoded stream with a self-describing pad — one length
// byte plus that many zero bytes — so the next write lands on an
// align-byte boundary of the encoder's buffer. The matching decoder must
// call Align at the same point. Transports that deliver batches at an
// aligned base address and preserve intra-message offsets thereby make
// the NumericSliceView aliasing fast path reliable instead of incidental.
func (e *Encoder) Align(align int) {
	pad := (align - (len(e.buf)+1)%align) % align
	e.buf = append(e.buf, byte(pad))
	for ; pad > 0; pad-- {
		e.buf = append(e.buf, 0)
	}
}

// Align skips padding written by Encoder.Align. The pad length travels on
// the wire, so decoding stays correct even when the transport did not
// preserve alignment (the view fallback then copies).
func (d *Decoder) Align(int) {
	if pad := int(d.U8()); pad > 0 {
		d.take(pad)
	}
}

// PutNumericSliceAligned is PutNumericSlice with an alignment pad between
// the length prefix and the payload so that NumericSliceViewAligned can
// alias the payload on the receiving side.
func PutNumericSliceAligned[T Number](e *Encoder, s []T) {
	e.PutUvarint(uint64(len(s)))
	if len(s) == 0 {
		return
	}
	var zero T
	e.Align(int(unsafe.Alignof(zero)))
	if hostLittleEndian {
		w := int(unsafe.Sizeof(zero))
		raw := unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(s))), len(s)*w)
		e.buf = append(e.buf, raw...)
		return
	}
	putFixedElems(e, s)
}

// NumericSliceViewAligned decodes a slice written by
// PutNumericSliceAligned, aliasing the decoder's buffer when the payload
// landed aligned; the dynamic pointer check still guards transports that
// shifted the message, falling back to a copy.
func NumericSliceViewAligned[T Number](d *Decoder) []T {
	var zero T
	w := int(unsafe.Sizeof(zero))
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n == 0 {
		return []T{}
	}
	d.Align(int(unsafe.Alignof(zero)))
	if n*uint64(w) > uint64(d.Remaining()) {
		d.fail(ErrShortBuffer)
		return nil
	}
	if !hostLittleEndian {
		out := make([]T, n)
		takeFixedElems(d, out)
		if d.err != nil {
			return nil
		}
		return out
	}
	raw := d.take(int(n) * w)
	if d.err != nil {
		return nil
	}
	p := unsafe.Pointer(unsafe.SliceData(raw))
	if uintptr(p)%unsafe.Alignof(zero) != 0 {
		out := make([]T, n)
		dst := unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(out))), len(raw))
		copy(dst, raw)
		return out
	}
	return unsafe.Slice((*T)(p), int(n))
}

// NumericSliceView is like NumericSlice but, when the payload is suitably
// aligned on a little-endian host, returns a []T view aliasing the
// decoder's buffer — zero allocation, zero copy. The view is only valid
// while the underlying buffer is; callers must finish with it before
// handing the buffer back to the transport. Misaligned or big-endian
// inputs transparently decode into fresh memory instead.
func NumericSliceView[T Number](d *Decoder) []T {
	if !hostLittleEndian {
		return NumericSlice[T](d)
	}
	var zero T
	w := int(unsafe.Sizeof(zero))
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n*uint64(w) > uint64(d.Remaining()) {
		d.fail(ErrShortBuffer)
		return nil
	}
	if n == 0 {
		return []T{}
	}
	raw := d.take(int(n) * w)
	if d.err != nil {
		return nil
	}
	p := unsafe.Pointer(unsafe.SliceData(raw))
	if uintptr(p)%unsafe.Alignof(zero) != 0 {
		// Misaligned view would trip checkptr under -race; copy instead.
		out := make([]T, n)
		dst := unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(out))), len(raw))
		copy(dst, raw)
		return out
	}
	return unsafe.Slice((*T)(p), int(n))
}
