package serde

import (
	"strings"
	"testing"
)

type manualMsg struct {
	PE    int
	Name  string
	Vals  []uint64
	Score float64
}

func (m *manualMsg) MarshalLamellar(e *Encoder) {
	e.PutInt(m.PE)
	e.PutString(m.Name)
	EncodeSlice(e, m.Vals)
	e.PutF64(m.Score)
}

func (m *manualMsg) UnmarshalLamellar(d *Decoder) error {
	m.PE = d.Int()
	m.Name = d.String()
	m.Vals = DecodeSlice[uint64](d)
	m.Score = d.F64()
	return d.Err()
}

type gobMsg struct {
	A map[string]int
	B []string
}

func init() {
	Register[manualMsg]("test.manualMsg")
	RegisterGob[gobMsg]("test.gobMsg")
}

func TestManualRegistryRoundTrip(t *testing.T) {
	in := &manualMsg{PE: 3, Name: "histo", Vals: []uint64{9, 8, 7}, Score: 0.5}
	e := NewEncoder(0)
	if err := EncodeAny(e, in); err != nil {
		t.Fatal(err)
	}
	out, err := DecodeAny(NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := out.(*manualMsg)
	if !ok {
		t.Fatalf("decoded %T", out)
	}
	if got.PE != 3 || got.Name != "histo" || got.Score != 0.5 || len(got.Vals) != 3 || got.Vals[2] != 7 {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestManualRegistryByValue(t *testing.T) {
	in := manualMsg{PE: 1, Name: "v"}
	e := NewEncoder(0)
	if err := EncodeAny(e, in); err != nil {
		t.Fatal(err)
	}
	out, err := DecodeAny(NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if out.(*manualMsg).PE != 1 {
		t.Errorf("by-value encode mismatch: %+v", out)
	}
}

func TestGobRegistryRoundTrip(t *testing.T) {
	in := &gobMsg{A: map[string]int{"x": 1, "y": 2}, B: []string{"a", "b"}}
	e := NewEncoder(0)
	if err := EncodeAny(e, in); err != nil {
		t.Fatal(err)
	}
	out, err := DecodeAny(NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got := out.(*gobMsg)
	if got.A["y"] != 2 || len(got.B) != 2 || got.B[1] != "b" {
		t.Errorf("gob round trip mismatch: %+v", got)
	}
}

func TestNilRoundTrip(t *testing.T) {
	e := NewEncoder(0)
	if err := EncodeAny(e, nil); err != nil {
		t.Fatal(err)
	}
	out, err := DecodeAny(NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		t.Errorf("nil decoded to %v", out)
	}
}

func TestBuiltinsRoundTrip(t *testing.T) {
	cases := []any{
		int(-5), int64(1 << 40), uint64(7), float64(1.25), true,
		"str", []byte{4, 5}, []int64{-1, 2}, []uint64{3}, []int{8, 9}, []float64{0.5},
	}
	for _, in := range cases {
		e := NewEncoder(0)
		if err := EncodeAny(e, in); err != nil {
			t.Fatalf("%T: %v", in, err)
		}
		out, err := DecodeAny(NewDecoder(e.Bytes()))
		if err != nil {
			t.Fatalf("%T: %v", in, err)
		}
		switch want := in.(type) {
		case []byte:
			if string(out.([]byte)) != string(want) {
				t.Errorf("[]byte mismatch")
			}
		case []int64:
			if len(out.([]int64)) != len(want) {
				t.Errorf("[]int64 mismatch")
			}
		case []uint64, []int, []float64:
			// length check via separate assertions below is enough here
		default:
			if out != in {
				t.Errorf("%T: got %v want %v", in, out, in)
			}
		}
	}
}

func TestUnregisteredType(t *testing.T) {
	type private struct{ X int }
	e := NewEncoder(0)
	err := EncodeAny(e, private{1})
	if err == nil || !strings.Contains(err.Error(), "not registered") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownTypeID(t *testing.T) {
	e := NewEncoder(0)
	e.PutU32(0x7777_0001)
	_, err := DecodeAny(NewDecoder(e.Bytes()))
	if err == nil {
		t.Fatal("expected unknown TypeID error")
	}
}

func TestIdempotentRegistration(t *testing.T) {
	// must not panic
	Register[manualMsg]("test.manualMsg")
	id1 := NameID("test.manualMsg")
	id2, ok := IDOf(&manualMsg{})
	if !ok || id1 != id2 {
		t.Fatalf("IDOf = %v,%v want %v", id2, ok, id1)
	}
}

func TestConflictingRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on conflicting registration")
		}
	}()
	Register[manualMsg]("test.other-name")
}
