// Package serde implements the binary serialization layer used by the
// runtime to move active messages and typed data between PEs.
//
// The paper's Rust implementation derives (de)serialization with serde +
// proc-macros; Go has no compile-time macros, so this package provides a
// compact hand-rolled binary format (little-endian, varint lengths) plus a
// registry that maps stable type identifiers to decoder functions. Types
// may either implement Marshaler/Unmarshaler for a fast hand-written codec
// or fall back to encoding/gob via RegisterGob.
package serde

import (
	"encoding/binary"
	"errors"
	"math"
	"reflect"
)

// ErrShortBuffer is reported when a Decoder runs out of input bytes.
var ErrShortBuffer = errors.New("serde: short buffer")

// ErrCorrupt is reported when input bytes cannot be interpreted.
var ErrCorrupt = errors.New("serde: corrupt input")

// Marshaler is implemented by types with a hand-written fast encoder.
type Marshaler interface {
	MarshalLamellar(e *Encoder)
}

// Unmarshaler is implemented by types with a hand-written fast decoder.
// DecodeLamellar must fully overwrite the receiver.
type Unmarshaler interface {
	UnmarshalLamellar(d *Decoder) error
}

// Number is the set of element types supported by typed regions and
// LamellarArrays. It matches the numeric types the paper's arrays support.
type Number interface {
	~int8 | ~int16 | ~int32 | ~int64 | ~int |
		~uint8 | ~uint16 | ~uint32 | ~uint64 | ~uint | ~uintptr |
		~float32 | ~float64
}

// Encoder appends values to an internal buffer. The zero value is ready to
// use. Encoders may be reused via Reset to amortize allocation.
type Encoder struct {
	buf []byte
	// Ctx carries transport context across nested codecs. The runtime sets
	// it to the sending *runtime.World while serializing AMs so that types
	// with distributed lifetime (Darcs, memory-region handles) can record
	// in-flight references during marshaling.
	Ctx any
}

// NewEncoder returns an Encoder whose buffer has the given capacity hint.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// Reset discards the buffered bytes but keeps the allocation.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Bytes returns the encoded bytes. The slice aliases the Encoder's buffer
// and is invalidated by further encoding or Reset.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len reports the number of encoded bytes.
func (e *Encoder) Len() int { return len(e.buf) }

// Grow ensures capacity for at least n additional bytes.
func (e *Encoder) Grow(n int) {
	if cap(e.buf)-len(e.buf) < n {
		nb := make([]byte, len(e.buf), 2*cap(e.buf)+n)
		copy(nb, e.buf)
		e.buf = nb
	}
}

// PutU8 appends one byte.
func (e *Encoder) PutU8(v uint8) { e.buf = append(e.buf, v) }

// PutBool appends a boolean as one byte.
func (e *Encoder) PutBool(v bool) {
	if v {
		e.PutU8(1)
	} else {
		e.PutU8(0)
	}
}

// PutU16 appends a fixed-width little-endian uint16.
func (e *Encoder) PutU16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }

// PutU32 appends a fixed-width little-endian uint32.
func (e *Encoder) PutU32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// PutU64 appends a fixed-width little-endian uint64.
func (e *Encoder) PutU64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// PutUvarint appends an unsigned varint.
func (e *Encoder) PutUvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// PutVarint appends a signed (zig-zag) varint.
func (e *Encoder) PutVarint(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// PutInt appends an int as a signed varint.
func (e *Encoder) PutInt(v int) { e.PutVarint(int64(v)) }

// PutF64 appends a float64 as its IEEE-754 bits.
func (e *Encoder) PutF64(v float64) { e.PutU64(math.Float64bits(v)) }

// PutF32 appends a float32 as its IEEE-754 bits.
func (e *Encoder) PutF32(v float32) { e.PutU32(math.Float32bits(v)) }

// PutBytes appends a length-prefixed byte slice.
func (e *Encoder) PutBytes(b []byte) {
	e.PutUvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// PutRawBytes appends bytes with no length prefix.
func (e *Encoder) PutRawBytes(b []byte) { e.buf = append(e.buf, b...) }

// PutString appends a length-prefixed string.
func (e *Encoder) PutString(s string) {
	e.PutUvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Decoder consumes values from a byte slice. Errors are sticky: after the
// first failure every subsequent read returns the zero value and Err()
// reports the failure.
type Decoder struct {
	buf []byte
	off int
	err error
	// Ctx carries transport context across nested codecs. The runtime sets
	// it to the executing *runtime.Context while deserializing AMs so that
	// distributed types (Darcs, region handles) can attach to the local
	// registry and acknowledge the transfer.
	Ctx any
}

// NewDecoder returns a Decoder reading from b. The Decoder does not copy b.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Reset repoints the Decoder at b and clears its position, error, and
// context, so embedded/pooled decoders can be reused without allocating.
func (d *Decoder) Reset(b []byte) {
	d.buf, d.off, d.err, d.Ctx = b, 0, nil, nil
}

// Err returns the first error encountered, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining reports the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Offset reports the number of consumed bytes.
func (d *Decoder) Offset() int { return d.off }

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.Remaining() < n {
		d.fail(ErrShortBuffer)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads one byte as a boolean.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// U16 reads a fixed-width little-endian uint16.
func (d *Decoder) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a fixed-width little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a fixed-width little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail(ErrCorrupt)
		return 0
	}
	d.off += n
	return v
}

// Varint reads a signed (zig-zag) varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail(ErrCorrupt)
		return 0
	}
	d.off += n
	return v
}

// Int reads an int encoded as a signed varint.
func (d *Decoder) Int() int { return int(d.Varint()) }

// F64 reads a float64.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// F32 reads a float32.
func (d *Decoder) F32() float32 { return math.Float32frombits(d.U32()) }

// Bytes reads a length-prefixed byte slice. The result aliases the input.
func (d *Decoder) Bytes() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.Remaining()) {
		d.fail(ErrShortBuffer)
		return nil
	}
	return d.take(int(n))
}

// BytesCopy reads a length-prefixed byte slice into fresh storage.
func (d *Decoder) BytesCopy() []byte {
	b := d.Bytes()
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// RawBytes reads n bytes with no length prefix. The result aliases input.
func (d *Decoder) RawBytes(n int) []byte { return d.take(n) }

// String reads a length-prefixed string.
func (d *Decoder) String() string { return string(d.Bytes()) }

// numKind classifies a Number type once so that per-element encoding does
// not need reflection. Derived types (e.g. `type Temp float64`) classify by
// their underlying kind.
type numKind uint8

const (
	kindInt numKind = iota
	kindFloat32
	kindFloat64
)

// KindOf reports the encoding class of T.
func KindOf[T Number]() numKind {
	var zero T
	switch reflect.TypeOf(zero).Kind() {
	case reflect.Float32:
		return kindFloat32
	case reflect.Float64:
		return kindFloat64
	default:
		return kindInt
	}
}

// EncodeValue appends a single numeric value of type T.
func EncodeValue[T Number](e *Encoder, v T) {
	switch KindOf[T]() {
	case kindFloat32:
		e.PutF32(float32(v))
	case kindFloat64:
		e.PutF64(float64(v))
	default:
		// All integer kinds round-trip exactly through int64 bit patterns;
		// zig-zag varint keeps small magnitudes short for both signs.
		e.PutVarint(int64(v))
	}
}

// DecodeValue reads a single numeric value of type T.
func DecodeValue[T Number](d *Decoder) T {
	switch KindOf[T]() {
	case kindFloat32:
		return T(d.F32())
	case kindFloat64:
		return T(d.F64())
	default:
		return T(d.Varint())
	}
}

// EncodeSlice appends a length-prefixed slice of numeric values.
func EncodeSlice[T Number](e *Encoder, s []T) {
	k := KindOf[T]()
	e.PutUvarint(uint64(len(s)))
	switch k {
	case kindFloat32:
		for _, v := range s {
			e.PutF32(float32(v))
		}
	case kindFloat64:
		for _, v := range s {
			e.PutF64(float64(v))
		}
	default:
		for _, v := range s {
			e.PutVarint(int64(v))
		}
	}
}

// DecodeSlice reads a length-prefixed slice of numeric values.
func DecodeSlice[T Number](d *Decoder) []T {
	k := KindOf[T]()
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.Remaining()) { // each element needs >= 1 byte
		d.fail(ErrShortBuffer)
		return nil
	}
	out := make([]T, n)
	switch k {
	case kindFloat32:
		for i := range out {
			out[i] = T(d.F32())
		}
	case kindFloat64:
		for i := range out {
			out[i] = T(d.F64())
		}
	default:
		for i := range out {
			out[i] = T(d.Varint())
		}
	}
	if d.err != nil {
		return nil
	}
	return out
}

// SizeOf reports the natural element width of T in bytes.
func SizeOf[T Number]() int {
	var zero T
	return int(reflect.TypeOf(zero).Size())
}

// EncodeFixedSlice appends a slice using fixed natural-width encoding per
// element (1/2/4/8 bytes), matching what an RDMA transfer of the same
// buffer would move. It is the codec of bulk array transfers. On
// little-endian hosts it reduces to the zero-copy PutNumericSlice.
func EncodeFixedSlice[T Number](e *Encoder, s []T) {
	PutNumericSlice(e, s)
}

// putFixedElems is the portable element-at-a-time encode loop behind
// PutNumericSlice (big-endian fallback; the length prefix is already
// written).
func putFixedElems[T Number](e *Encoder, s []T) {
	k := KindOf[T]()
	w := SizeOf[T]()
	e.Grow(w * len(s))
	switch {
	case k == kindFloat32:
		for _, v := range s {
			e.PutU32(math.Float32bits(float32(v)))
		}
	case k == kindFloat64:
		for _, v := range s {
			e.PutU64(math.Float64bits(float64(v)))
		}
	case w == 1:
		for _, v := range s {
			e.PutU8(uint8(v))
		}
	case w == 2:
		for _, v := range s {
			e.PutU16(uint16(v))
		}
	case w == 4:
		for _, v := range s {
			e.PutU32(uint32(v))
		}
	default:
		for _, v := range s {
			e.PutU64(uint64(int64(v)))
		}
	}
}

// DecodeFixedSlice reads a slice written by EncodeFixedSlice. On
// little-endian hosts it reduces to the single-memmove NumericSlice.
func DecodeFixedSlice[T Number](d *Decoder) []T {
	return NumericSlice[T](d)
}

// takeFixedElems is the portable element-at-a-time decode loop behind
// NumericSlice (big-endian fallback; length and bounds already handled).
func takeFixedElems[T Number](d *Decoder, out []T) {
	k := KindOf[T]()
	w := SizeOf[T]()
	switch {
	case k == kindFloat32:
		for i := range out {
			out[i] = T(math.Float32frombits(d.U32()))
		}
	case k == kindFloat64:
		for i := range out {
			out[i] = T(math.Float64frombits(d.U64()))
		}
	case w == 1:
		for i := range out {
			out[i] = T(int8(d.U8()))
		}
	case w == 2:
		for i := range out {
			out[i] = T(int16(d.U16()))
		}
	case w == 4:
		for i := range out {
			out[i] = T(int32(d.U32()))
		}
	default:
		for i := range out {
			out[i] = T(int64(d.U64()))
		}
	}
}
