package serde

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"reflect"
	"sync"
)

// TypeID is a stable identifier for a registered type, derived from the
// registration name via FNV-1a. It plays the role of the lookup-table key
// the paper's proc-macros generate for each AM type.
type TypeID uint32

// typeIDNil tags a nil value in polymorphic encodings.
const typeIDNil TypeID = 0

type regEntry struct {
	id   TypeID
	name string
	enc  func(*Encoder, any)
	dec  func(*Decoder) (any, error)
	// recycle, when non-nil, returns a decoded value to its type's pool
	// (see RegisterPooled / Recycle).
	recycle func(any)
}

type registry struct {
	mu     sync.RWMutex
	byType map[reflect.Type]*regEntry
	byID   map[TypeID]*regEntry
}

var global = &registry{
	byType: make(map[reflect.Type]*regEntry),
	byID:   make(map[TypeID]*regEntry),
}

// NameID returns the TypeID a registration name hashes to.
func NameID(name string) TypeID {
	h := fnv.New32a()
	h.Write([]byte(name))
	id := TypeID(h.Sum32())
	if id == typeIDNil {
		id = 1
	}
	return id
}

func (r *registry) add(t reflect.Type, e *regEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byID[e.id]; ok && prev.name != e.name {
		panic(fmt.Sprintf("serde: TypeID collision between %q and %q", prev.name, e.name))
	}
	if prev, ok := r.byType[t]; ok {
		if prev.name != e.name {
			panic(fmt.Sprintf("serde: type %v registered twice (%q, %q)", t, prev.name, e.name))
		}
		return // idempotent re-registration
	}
	r.byType[t] = e
	r.byID[e.id] = e
}

func (r *registry) lookupType(t reflect.Type) (*regEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.byType[t]
	return e, ok
}

func (r *registry) lookupID(id TypeID) (*regEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.byID[id]
	return e, ok
}

// Register registers T under name using its hand-written codec. *T must
// implement Unmarshaler, and T or *T must implement Marshaler. Decoded
// values have dynamic type *T. Register is idempotent for identical
// (type, name) pairs and panics on conflicting registrations, matching the
// compile-time failure the paper's #[AmData] macro produces.
func Register[T any](name string) TypeID {
	var zero T
	t := reflect.TypeOf(&zero) // *T
	id := NameID(name)
	if _, ok := any(&zero).(Unmarshaler); !ok {
		panic(fmt.Sprintf("serde: *%v does not implement Unmarshaler", t.Elem()))
	}
	enc := func(e *Encoder, v any) {
		if m, ok := v.(Marshaler); ok {
			m.MarshalLamellar(e)
			return
		}
		// Value of T whose Marshaler is on *T: take an addressable copy.
		rv := reflect.ValueOf(v)
		if rv.Kind() != reflect.Pointer {
			p := reflect.New(rv.Type())
			p.Elem().Set(rv)
			if m, ok := p.Interface().(Marshaler); ok {
				m.MarshalLamellar(e)
				return
			}
		}
		panic(fmt.Sprintf("serde: %T does not implement Marshaler", v))
	}
	dec := func(d *Decoder) (any, error) {
		p := new(T)
		if err := any(p).(Unmarshaler).UnmarshalLamellar(d); err != nil {
			return nil, err
		}
		return p, nil
	}
	entry := &regEntry{id: id, name: name, enc: enc, dec: dec}
	global.add(t, entry)
	global.add(t.Elem(), entry) // allow encoding by value too
	return id
}

// Recyclable is implemented by pooled-decode types (see RegisterPooled).
// ResetLamellar must clear every reference the value holds — in
// particular views aliasing a decoder's buffer — so pooling it cannot
// retain foreign memory or leak stale state into the next decode.
type Recyclable interface {
	ResetLamellar()
}

// RegisterPooled is Register for high-rate message types: decoded values
// come from a per-type sync.Pool instead of a fresh allocation, and the
// consumer hands them back with Recycle once fully processed (for AMs,
// after the handler ran and any return value was serialized). *T must
// additionally implement Recyclable. Consumers that never call Recycle
// merely fall back to GC behavior, so pooling is always safe to skip.
func RegisterPooled[T any](name string) TypeID {
	var zero T
	if _, ok := any(&zero).(Recyclable); !ok {
		panic(fmt.Sprintf("serde: *%v does not implement Recyclable", reflect.TypeOf(zero)))
	}
	id := Register[T](name)
	pool := &sync.Pool{New: func() any { return new(T) }}
	t := reflect.TypeOf(&zero)
	global.mu.Lock()
	entry := global.byType[t]
	entry.dec = func(d *Decoder) (any, error) {
		p := pool.Get().(*T)
		if err := any(p).(Unmarshaler).UnmarshalLamellar(d); err != nil {
			any(p).(Recyclable).ResetLamellar()
			pool.Put(p)
			return nil, err
		}
		return p, nil
	}
	entry.recycle = func(v any) {
		if p, ok := v.(*T); ok {
			any(p).(Recyclable).ResetLamellar()
			pool.Put(p)
		}
	}
	global.mu.Unlock()
	return id
}

// Recycle returns a value decoded via a RegisterPooled codec to its pool;
// a no-op for every other value (including nil). Callers must not touch v
// afterwards.
func Recycle(v any) {
	if v == nil {
		return
	}
	entry, ok := global.lookupType(reflect.TypeOf(v))
	if !ok || entry.recycle == nil {
		return
	}
	entry.recycle(v)
}

// RegisterGob registers T under name using encoding/gob, the convenience
// path for AM structs without a hand-written codec. Decoded values have
// dynamic type *T.
func RegisterGob[T any](name string) TypeID {
	var zero T
	t := reflect.TypeOf(&zero)
	id := NameID(name)
	enc := func(e *Encoder, v any) {
		var buf bytes.Buffer
		// Encode through a pointer so gob handles both T and *T inputs.
		rv := reflect.ValueOf(v)
		if rv.Kind() != reflect.Pointer {
			p := reflect.New(rv.Type())
			p.Elem().Set(rv)
			rv = p
		}
		if err := gob.NewEncoder(&buf).EncodeValue(rv); err != nil {
			panic(fmt.Sprintf("serde: gob encode %T: %v", v, err))
		}
		e.PutBytes(buf.Bytes())
	}
	dec := func(d *Decoder) (any, error) {
		b := d.Bytes()
		if err := d.Err(); err != nil {
			return nil, err
		}
		p := new(T)
		if err := gob.NewDecoder(bytes.NewReader(b)).Decode(p); err != nil {
			return nil, fmt.Errorf("serde: gob decode %q: %w", name, err)
		}
		return p, nil
	}
	entry := &regEntry{id: id, name: name, enc: enc, dec: dec}
	global.add(t, entry)
	global.add(t.Elem(), entry)
	return id
}

// IDOf returns the TypeID v's dynamic type was registered under.
func IDOf(v any) (TypeID, bool) {
	if v == nil {
		return typeIDNil, true
	}
	e, ok := global.lookupType(reflect.TypeOf(v))
	if !ok {
		return 0, false
	}
	return e.id, true
}

// EncodeAny appends v tagged with its TypeID. v's dynamic type (or its
// element type for pointers) must be registered.
func EncodeAny(e *Encoder, v any) error {
	if v == nil {
		e.PutU32(uint32(typeIDNil))
		return nil
	}
	entry, ok := global.lookupType(reflect.TypeOf(v))
	if !ok {
		return fmt.Errorf("serde: type %T not registered", v)
	}
	e.PutU32(uint32(entry.id))
	entry.enc(e, v)
	return nil
}

// DecodeAny reads a value written by EncodeAny. nil round-trips to nil.
func DecodeAny(d *Decoder) (any, error) {
	id := TypeID(d.U32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if id == typeIDNil {
		return nil, nil
	}
	entry, ok := global.lookupID(id)
	if !ok {
		return nil, fmt.Errorf("serde: unknown TypeID %#x", id)
	}
	return entry.dec(d)
}

// DecodeByID decodes a value of a known registered id with no inline tag.
func DecodeByID(d *Decoder, id TypeID) (any, error) {
	entry, ok := global.lookupID(id)
	if !ok {
		return nil, fmt.Errorf("serde: unknown TypeID %#x", id)
	}
	return entry.dec(d)
}

// EncodeByID encodes v with no inline tag; the receiver must know the id.
func EncodeByID(e *Encoder, id TypeID, v any) error {
	entry, ok := global.lookupID(id)
	if !ok {
		return fmt.Errorf("serde: unknown TypeID %#x", id)
	}
	entry.enc(e, v)
	return nil
}

// Builtin registrations so AMs can return common scalar and slice types
// without ceremony. Each builtin uses a compact hand-written codec.
func init() {
	registerBuiltin[int]("builtin.int",
		func(e *Encoder, v int) { e.PutVarint(int64(v)) },
		func(d *Decoder) int { return int(d.Varint()) })
	registerBuiltin[int64]("builtin.int64",
		func(e *Encoder, v int64) { e.PutVarint(v) },
		func(d *Decoder) int64 { return d.Varint() })
	registerBuiltin[uint64]("builtin.uint64",
		func(e *Encoder, v uint64) { e.PutUvarint(v) },
		func(d *Decoder) uint64 { return d.Uvarint() })
	registerBuiltin[float64]("builtin.float64",
		func(e *Encoder, v float64) { e.PutF64(v) },
		func(d *Decoder) float64 { return d.F64() })
	registerBuiltin[bool]("builtin.bool",
		func(e *Encoder, v bool) { e.PutBool(v) },
		func(d *Decoder) bool { return d.Bool() })
	registerBuiltin[string]("builtin.string",
		func(e *Encoder, v string) { e.PutString(v) },
		func(d *Decoder) string { return d.String() })
	registerBuiltin[[]byte]("builtin.bytes",
		func(e *Encoder, v []byte) { e.PutBytes(v) },
		func(d *Decoder) []byte { return d.BytesCopy() })
	registerBuiltin[[]int64]("builtin.int64s",
		func(e *Encoder, v []int64) { EncodeSlice(e, v) },
		func(d *Decoder) []int64 { return DecodeSlice[int64](d) })
	registerBuiltin[[]uint64]("builtin.uint64s",
		func(e *Encoder, v []uint64) { EncodeSlice(e, v) },
		func(d *Decoder) []uint64 { return DecodeSlice[uint64](d) })
	registerBuiltin[[]int]("builtin.ints",
		func(e *Encoder, v []int) { EncodeSlice(e, v) },
		func(d *Decoder) []int { return DecodeSlice[int](d) })
	registerBuiltin[[]float64]("builtin.float64s",
		func(e *Encoder, v []float64) { EncodeSlice(e, v) },
		func(d *Decoder) []float64 { return DecodeSlice[float64](d) })
}

// RegisterNumeric registers the scalar type T and its slice type []T with
// compact codecs under the given name prefix, so values of custom numeric
// element types can travel as AM payloads and return values. Idempotent.
func RegisterNumeric[T Number](prefix string) {
	registerBuiltin[T](prefix+".scalar",
		func(e *Encoder, v T) { EncodeValue(e, v) },
		func(d *Decoder) T { return DecodeValue[T](d) })
	registerBuiltin[[]T](prefix+".slice",
		func(e *Encoder, v []T) { EncodeSlice(e, v) },
		func(d *Decoder) []T { return DecodeSlice[T](d) })
}

// registerBuiltin registers a value type whose decoded dynamic type is T
// itself (not *T), which is what callers expect for scalars and slices.
func registerBuiltin[T any](name string, enc func(*Encoder, T), dec func(*Decoder) T) {
	id := NameID(name)
	entry := &regEntry{
		id:   id,
		name: name,
		enc: func(e *Encoder, v any) {
			switch x := v.(type) {
			case T:
				enc(e, x)
			case *T:
				enc(e, *x)
			default:
				panic(fmt.Sprintf("serde: builtin codec %q got %T", name, v))
			}
		},
		dec: func(d *Decoder) (any, error) {
			v := dec(d)
			if err := d.Err(); err != nil {
				return nil, err
			}
			return v, nil
		},
	}
	var zero T
	t := reflect.TypeOf(zero)
	// First registration wins: builtins and RegisterNumeric may cover the
	// same types (e.g. []int64); keeping the earlier codec preserves ids.
	if _, exists := global.lookupType(t); exists {
		return
	}
	global.add(t, entry)
	global.add(reflect.PointerTo(t), entry)
}
