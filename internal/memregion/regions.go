package memregion

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/serde"
)

// Handle represents a (possibly in-flight) one-sided transfer. On the
// simulated fabric transfers complete inline, but the API mirrors ROFI's
// split between non-blocking puts/gets (user calls Wait) and blocking ones
// (runtime-provided completion detection), so code written against it
// ports unchanged to a truly asynchronous provider.
type Handle struct{ done bool }

// Wait blocks until the transfer completes.
func (h *Handle) Wait() {}

// Done reports whether the transfer has completed.
func (h *Handle) Done() bool { return h.done }

var completed = &Handle{done: true}

// Shared is a SharedMemoryRegion[T]: a symmetric RDMA region collectively
// allocated by the PEs of a team, offering *unsafe* put/get to any member
// PE's slice. It is a thin wrapper over the fabric, mirroring the paper's
// "small wrapper around an RDMA Memory Region".
//
// Safety: as in the paper, nothing prevents a remote PE from writing to
// the local slice while it is being read. Synchronize with barriers or
// higher-level abstractions.
type Shared[T serde.Number] struct {
	reg   *fabric.TypedRegion[T]
	prov  *fabric.Provider
	myPE  int
	elems int
}

// NewShared wraps an already collectively-allocated typed region for the
// calling PE. All team members must wrap the same region instance.
func NewShared[T serde.Number](prov *fabric.Provider, reg *fabric.TypedRegion[T], myPE int) *Shared[T] {
	return &Shared[T]{reg: reg, prov: prov, myPE: myPE, elems: reg.Len()}
}

// Len reports the per-PE element count.
func (s *Shared[T]) Len() int { return s.elems }

// PE reports the calling PE baked into this handle.
func (s *Shared[T]) PE() int { return s.myPE }

// Put blocks until src has been written to destPE's slice at index.
func (s *Shared[T]) Put(destPE, index int, src []T) {
	s.reg.Put(s.myPE, destPE, index, src)
}

// PutNB starts a put and returns a Handle to wait on.
func (s *Shared[T]) PutNB(destPE, index int, src []T) *Handle {
	s.reg.Put(s.myPE, destPE, index, src)
	return completed
}

// Get blocks until dst has been filled from srcPE's slice at index.
func (s *Shared[T]) Get(srcPE, index int, dst []T) {
	s.reg.Get(s.myPE, srcPE, index, dst)
}

// GetNB starts a get and returns a Handle to wait on.
func (s *Shared[T]) GetNB(srcPE, index int, dst []T) *Handle {
	s.reg.Get(s.myPE, srcPE, index, dst)
	return completed
}

// Local returns the calling PE's slice. Unsafe in the paper's sense: there
// is no protection against concurrent remote writes.
func (s *Shared[T]) Local() []T { return s.reg.Local(s.myPE) }

// LocalOf returns another PE's slice; intended for tests and SMP mode.
func (s *Shared[T]) LocalOf(pe int) []T { return s.reg.Local(pe) }

// Region exposes the underlying fabric region (runtime internal use).
func (s *Shared[T]) Region() *fabric.TypedRegion[T] { return s.reg }

// OneSided is a OneSidedMemoryRegion[T]: allocated by a single PE without
// any collective call; puts/gets always address the originating PE's
// memory, so no target PE argument exists in the API.
type OneSided[T serde.Number] struct {
	reg    *fabric.TypedRegion[T]
	origin int
	myPE   int
	elems  int
}

// NewOneSided allocates elems elements owned by origin (the calling PE).
// The allocation is satisfied from the provider directly, modelling the
// runtime's internal RDMA heap, and involves no other PE.
func NewOneSided[T serde.Number](prov *fabric.Provider, origin, elems int) *OneSided[T] {
	return &OneSided[T]{
		reg:    fabric.AllocTyped[T](prov, elems),
		origin: origin,
		myPE:   origin,
		elems:  elems,
	}
}

// Len reports the element count.
func (o *OneSided[T]) Len() int { return o.elems }

// Origin reports the PE that allocated the region.
func (o *OneSided[T]) Origin() int { return o.origin }

// View returns a handle bound to pe for use after the region was sent to
// another PE inside an AM (OneSided regions are Darcs in the paper and may
// travel). Transfers through the view are accounted to pe.
func (o *OneSided[T]) View(pe int) *OneSided[T] {
	v := *o
	v.myPE = pe
	return &v
}

// Put writes src into the origin PE's region at index.
func (o *OneSided[T]) Put(index int, src []T) {
	o.reg.Put(o.myPE, o.origin, index, src)
}

// PutNB starts a put and returns a Handle to wait on.
func (o *OneSided[T]) PutNB(index int, src []T) *Handle {
	o.Put(index, src)
	return completed
}

// Get reads from the origin PE's region at index into dst.
func (o *OneSided[T]) Get(index int, dst []T) {
	o.reg.Get(o.myPE, o.origin, index, dst)
}

// GetNB starts a get and returns a Handle to wait on.
func (o *OneSided[T]) GetNB(index int, dst []T) *Handle {
	o.Get(index, dst)
	return completed
}

// Local returns the origin's backing slice. Only meaningful on the origin
// PE; calling it elsewhere panics, mirroring the Rust API's ownership rule.
func (o *OneSided[T]) Local() []T {
	if o.myPE != o.origin {
		panic(fmt.Sprintf("memregion: Local() on OneSided view (pe %d, origin %d)", o.myPE, o.origin))
	}
	return o.reg.Local(o.origin)
}
