package memregion

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllocBasic(t *testing.T) {
	a := NewAllocator(100)
	off1, err := a.Alloc(10, 1)
	if err != nil || off1 != 0 {
		t.Fatalf("alloc1 = %d, %v", off1, err)
	}
	off2, err := a.Alloc(20, 1)
	if err != nil || off2 != 10 {
		t.Fatalf("alloc2 = %d, %v", off2, err)
	}
	if a.InUse() != 30 {
		t.Errorf("InUse = %d", a.InUse())
	}
	a.Free(off1)
	if a.InUse() != 20 {
		t.Errorf("InUse after free = %d", a.InUse())
	}
	// first fit reuses the hole
	off3, err := a.Alloc(10, 1)
	if err != nil || off3 != 0 {
		t.Fatalf("alloc3 = %d, %v", off3, err)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocAlignment(t *testing.T) {
	a := NewAllocator(256)
	if _, err := a.Alloc(3, 1); err != nil {
		t.Fatal(err)
	}
	off, err := a.Alloc(8, 64)
	if err != nil {
		t.Fatal(err)
	}
	if off%64 != 0 {
		t.Errorf("off = %d not 64-aligned", off)
	}
	// the padding hole before the aligned block must be reusable
	hole, err := a.Alloc(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if hole >= off {
		t.Errorf("padding hole not reused: got %d", hole)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocBadAlignment(t *testing.T) {
	a := NewAllocator(64)
	if _, err := a.Alloc(8, 3); err == nil {
		t.Fatal("expected error for non-power-of-two alignment")
	}
	if _, err := a.Alloc(0, 1); err == nil {
		t.Fatal("expected error for zero size")
	}
}

func TestAllocExhaustion(t *testing.T) {
	a := NewAllocator(64)
	if _, err := a.Alloc(64, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(1, 1); err != ErrOutOfMemory {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestFreeCoalescing(t *testing.T) {
	a := NewAllocator(100)
	offs := make([]int, 5)
	for i := range offs {
		var err error
		offs[i], err = a.Alloc(20, 1)
		if err != nil {
			t.Fatal(err)
		}
	}
	// free in an order that exercises prev-, next-, and both-coalescing
	a.Free(offs[1])
	a.Free(offs[3])
	a.Free(offs[2]) // merges with both neighbors
	a.Free(offs[0])
	a.Free(offs[4])
	fb := a.FreeBlocks()
	if len(fb) != 1 || fb[0].Off != 0 || fb[0].Size != 100 {
		t.Fatalf("free list = %+v, want single [0,100)", fb)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	a := NewAllocator(64)
	off, _ := a.Alloc(8, 1)
	a.Free(off)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double free")
		}
	}()
	a.Free(off)
}

// Property: a random interleaving of allocs and frees never violates the
// allocator invariants, and allocations never overlap.
func TestAllocatorProperty(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewAllocator(1 << 12)
		type alloc struct{ off, size int }
		var live []alloc
		for step := 0; step < 300; step++ {
			if len(live) > 0 && rng.Intn(2) == 0 {
				i := rng.Intn(len(live))
				a.Free(live[i].off)
				live = append(live[:i], live[i+1:]...)
			} else {
				size := 1 + rng.Intn(128)
				align := 1 << rng.Intn(5)
				off, err := a.Alloc(size, align)
				if err != nil {
					continue // exhaustion is fine
				}
				if off%align != 0 {
					t.Errorf("misaligned: off=%d align=%d", off, align)
					return false
				}
				for _, l := range live {
					if off < l.off+l.size && l.off < off+size {
						t.Errorf("overlap: [%d,%d) with [%d,%d)", off, off+size, l.off, l.off+l.size)
						return false
					}
				}
				live = append(live, alloc{off, size})
			}
			if err := a.CheckInvariants(); err != nil {
				t.Error(err)
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Error(err)
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	a := NewAllocator(1 << 16)
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- true }()
			rng := rand.New(rand.NewSource(int64(g)))
			var mine []int
			for i := 0; i < 500; i++ {
				if len(mine) > 4 || (len(mine) > 0 && rng.Intn(2) == 0) {
					a.Free(mine[0])
					mine = mine[1:]
				} else if off, err := a.Alloc(1+rng.Intn(64), 8); err == nil {
					mine = append(mine, off)
				}
			}
			for _, off := range mine {
				a.Free(off)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if a.InUse() != 0 {
		t.Errorf("InUse = %d after all frees", a.InUse())
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if a.Peak() == 0 {
		t.Error("peak never recorded")
	}
}
