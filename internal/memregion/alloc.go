// Package memregion implements the RDMA memory-region layer of the stack:
// a free-list heap allocator managing offsets inside a registered segment
// (the paper's "one-sided dynamic heap" carved out of the large RDMA
// region each PE allocates at startup), and the user-facing
// SharedMemoryRegion / OneSidedMemoryRegion wrappers over fabric regions.
package memregion

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrOutOfMemory is returned when an allocation cannot be satisfied.
var ErrOutOfMemory = errors.New("memregion: out of memory")

// block is a free extent [off, off+size).
type block struct {
	off  int
	size int
}

// Allocator hands out non-overlapping extents of an address space of the
// given size using first-fit with immediate coalescing on free. It manages
// offsets only; the bytes themselves live in a fabric segment. Safe for
// concurrent use.
type Allocator struct {
	mu    sync.Mutex
	size  int
	free  []block     // sorted by offset, non-adjacent
	live  map[int]int // offset -> size of live allocations
	inUse int
	peak  int
}

// NewAllocator creates an allocator over [0, size).
func NewAllocator(size int) *Allocator {
	if size < 0 {
		panic("memregion: negative size")
	}
	a := &Allocator{size: size, live: make(map[int]int)}
	if size > 0 {
		a.free = []block{{0, size}}
	}
	return a
}

// Size reports the managed address-space size.
func (a *Allocator) Size() int { return a.size }

// InUse reports currently allocated bytes.
func (a *Allocator) InUse() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inUse
}

// Peak reports the high-water mark of allocated bytes.
func (a *Allocator) Peak() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peak
}

// Alloc reserves n bytes aligned to align (a power of two; 0 or 1 means no
// alignment) and returns the offset.
func (a *Allocator) Alloc(n, align int) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("memregion: invalid allocation size %d", n)
	}
	if align <= 0 {
		align = 1
	}
	if align&(align-1) != 0 {
		return 0, fmt.Errorf("memregion: alignment %d not a power of two", align)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, b := range a.free {
		start := (b.off + align - 1) &^ (align - 1)
		pad := start - b.off
		if b.size < pad+n {
			continue
		}
		// Carve [start, start+n) out of b in place; up to two remainder
		// fragments. No temporary slice: the steady-state alloc/free cycle
		// of the send-staging heap must not churn the Go heap.
		rest := b.size - pad - n
		switch {
		case pad == 0 && rest == 0:
			a.free = append(a.free[:i], a.free[i+1:]...)
		case pad == 0:
			a.free[i] = block{start + n, rest}
		case rest == 0:
			a.free[i] = block{b.off, pad}
		default:
			// Keep the pad fragment in slot i, shift the tail in after it.
			a.free[i] = block{b.off, pad}
			a.free = append(a.free, block{})
			copy(a.free[i+2:], a.free[i+1:])
			a.free[i+1] = block{start + n, rest}
		}
		a.live[start] = n
		a.inUse += n
		if a.inUse > a.peak {
			a.peak = a.inUse
		}
		return start, nil
	}
	return 0, ErrOutOfMemory
}

// Free releases the allocation starting at off. Freeing an unknown offset
// panics: it indicates heap corruption, the class of bug the paper's safe
// abstractions exist to rule out.
func (a *Allocator) Free(off int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	n, ok := a.live[off]
	if !ok {
		panic(fmt.Sprintf("memregion: free of unallocated offset %d", off))
	}
	delete(a.live, off)
	a.inUse -= n

	// Insert keeping order, then coalesce with neighbors.
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].off >= off })
	a.free = append(a.free, block{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = block{off, n}

	// Coalesce with next.
	if i+1 < len(a.free) && a.free[i].off+a.free[i].size == a.free[i+1].off {
		a.free[i].size += a.free[i+1].size
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	// Coalesce with previous.
	if i > 0 && a.free[i-1].off+a.free[i-1].size == a.free[i].off {
		a.free[i-1].size += a.free[i].size
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
}

// FreeBlocks returns a copy of the free list (for tests and introspection).
func (a *Allocator) FreeBlocks() []struct{ Off, Size int } {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]struct{ Off, Size int }, len(a.free))
	for i, b := range a.free {
		out[i] = struct{ Off, Size int }{b.off, b.size}
	}
	return out
}

// checkInvariants verifies the free list is sorted, in-bounds, and
// non-adjacent, and that live allocations do not overlap free space.
// Exported for property tests via CheckInvariants.
func (a *Allocator) CheckInvariants() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	prevEnd := -1
	for _, b := range a.free {
		if b.size <= 0 {
			return fmt.Errorf("empty free block at %d", b.off)
		}
		if b.off <= prevEnd {
			return fmt.Errorf("free list unsorted or adjacent at %d (prev end %d)", b.off, prevEnd)
		}
		if b.off+b.size > a.size {
			return fmt.Errorf("free block out of bounds: %d+%d > %d", b.off, b.size, a.size)
		}
		prevEnd = b.off + b.size
	}
	// live allocations must not intersect free blocks
	for off, n := range a.live {
		for _, b := range a.free {
			if off < b.off+b.size && b.off < off+n {
				return fmt.Errorf("live [%d,%d) overlaps free [%d,%d)", off, off+n, b.off, b.off+b.size)
			}
		}
	}
	return nil
}
