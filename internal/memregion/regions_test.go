package memregion

import (
	"testing"

	"repro/internal/fabric"
)

func TestSharedPutGet(t *testing.T) {
	prov := fabric.New(3, fabric.DefaultCostModel())
	reg := fabric.AllocTyped[uint64](prov, 32)
	s0 := NewShared(prov, reg, 0)
	s2 := NewShared(prov, reg, 2)

	s0.Put(2, 4, []uint64{7, 8, 9})
	got := make([]uint64, 3)
	s2.Get(2, 4, got) // PE2 reads its own slice via fabric
	if got[0] != 7 || got[2] != 9 {
		t.Errorf("got %v", got)
	}
	if s2.Local()[5] != 8 {
		t.Errorf("Local view = %v", s2.Local()[:8])
	}
	if s0.Local()[4] != 0 {
		t.Error("PE0's own slice should be untouched")
	}
	h := s0.PutNB(1, 0, []uint64{1})
	h.Wait()
	if !h.Done() {
		t.Error("handle not done")
	}
	if s0.LocalOf(1)[0] != 1 {
		t.Error("PutNB did not land")
	}
	if s0.Len() != 32 || s0.PE() != 0 {
		t.Error("metadata wrong")
	}
}

func TestOneSided(t *testing.T) {
	prov := fabric.New(2, fabric.DefaultCostModel())
	o := NewOneSided[float64](prov, 1, 16)
	if o.Origin() != 1 || o.Len() != 16 {
		t.Fatal("metadata wrong")
	}
	o.Put(3, []float64{2.5})
	buf := make([]float64, 1)
	o.Get(3, buf)
	if buf[0] != 2.5 {
		t.Errorf("got %v", buf[0])
	}
	if o.Local()[3] != 2.5 {
		t.Error("Local mismatch")
	}

	// A view held by PE0 addresses the origin's memory.
	v := o.View(0)
	v.Put(5, []float64{1.25})
	if o.Local()[5] != 1.25 {
		t.Error("view put did not reach origin")
	}
	v.GetNB(5, buf).Wait()
	if buf[0] != 1.25 {
		t.Error("view get wrong")
	}
}

func TestOneSidedViewLocalPanics(t *testing.T) {
	prov := fabric.New(2, fabric.DefaultCostModel())
	o := NewOneSided[int64](prov, 1, 4)
	v := o.View(0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_ = v.Local()
}

func TestOneSidedAccountsToViewHolder(t *testing.T) {
	prov := fabric.New(2, fabric.DefaultCostModel())
	o := NewOneSided[uint64](prov, 1, 8)
	v := o.View(0)
	base := prov.CountersFor(0)
	v.Put(0, []uint64{1, 2})
	d := prov.CountersFor(0).Sub(base)
	if d.Bytes != 16 {
		t.Errorf("bytes accounted to viewer = %d", d.Bytes)
	}
}
