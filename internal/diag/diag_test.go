package diag

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestLevelGating(t *testing.T) {
	var buf bytes.Buffer
	SetOutput(&buf)
	defer SetOutput(nil)
	old := CurrentLevel()
	defer SetLevel(old)

	SetLevel(LevelWarn)
	Errorf("t", "e1")
	Warnf("t", "w1")
	Infof("t", "i1")
	Debugf("t", "d1")
	out := buf.String()
	if !strings.Contains(out, "ERROR: e1") || !strings.Contains(out, "WARN: w1") {
		t.Fatalf("error/warn suppressed at LevelWarn: %q", out)
	}
	if strings.Contains(out, "i1") || strings.Contains(out, "d1") {
		t.Fatalf("info/debug leaked at LevelWarn: %q", out)
	}

	buf.Reset()
	SetLevel(LevelNone)
	Errorf("t", "e2")
	if buf.Len() != 0 {
		t.Fatalf("LevelNone still wrote: %q", buf.String())
	}

	buf.Reset()
	SetLevel(LevelDebug)
	Debugf("comp", "d2 %d", 7)
	if got := buf.String(); !strings.Contains(got, "lamellar/comp DEBUG: d2 7") {
		t.Fatalf("debug line malformed: %q", got)
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]Level{
		"none": LevelNone, "off": LevelNone, "silent": LevelNone,
		"error": LevelError, "err": LevelError,
		"warn": LevelWarn, "warning": LevelWarn,
		"info": LevelInfo, "debug": LevelDebug, "all": LevelDebug,
		"ERROR": LevelError, " Info ": LevelInfo,
	}
	for s, want := range cases {
		if got := ParseLevel(s, LevelWarn); got != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", s, got, want)
		}
	}
	if got := ParseLevel("bogus", LevelInfo); got != LevelInfo {
		t.Errorf("unknown level did not fall back to default: %v", got)
	}
}

// Concurrent writers must interleave whole lines, never bytes.
func TestConcurrentWrites(t *testing.T) {
	var buf bytes.Buffer
	SetOutput(&buf)
	defer SetOutput(nil)
	old := CurrentLevel()
	SetLevel(LevelInfo)
	defer SetLevel(old)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				Infof("race", "goroutine %d line %d", g, i)
			}
		}(g)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 400 {
		t.Fatalf("got %d lines, want 400", len(lines))
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "lamellar/race INFO: goroutine ") {
			t.Fatalf("torn line: %q", l)
		}
	}
}
