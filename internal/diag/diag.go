// Package diag is the runtime's leveled diagnostic logger. It replaces
// the scattered raw fmt.Printf sites (unknown envelope kinds, corrupt
// batches, handler panics) with one env-gated, structured channel that
// the stall watchdog also reports through.
//
// Level comes from LAMELLAR_LOG (none|error|warn|info|debug, default
// warn). The level check is a single atomic load, so disabled call
// sites cost nothing beyond evaluating their arguments — hot paths
// should guard with Enabled() when argument construction is non-trivial.
package diag

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
)

// Level is a diagnostic severity threshold.
type Level int32

const (
	// LevelNone suppresses all diagnostics.
	LevelNone Level = iota
	// LevelError reports unrecoverable or data-losing conditions
	// (corrupt frames, abandoned deliveries).
	LevelError
	// LevelWarn reports suspicious-but-survivable conditions (unknown
	// envelope kinds, watchdog stall flags). The default.
	LevelWarn
	// LevelInfo reports notable lifecycle events.
	LevelInfo
	// LevelDebug reports per-operation detail.
	LevelDebug
)

var levelNames = [...]string{"NONE", "ERROR", "WARN", "INFO", "DEBUG"}

func (l Level) String() string {
	if l >= 0 && int(l) < len(levelNames) {
		return levelNames[l]
	}
	return "UNKNOWN"
}

// ParseLevel maps a LAMELLAR_LOG value to a Level. Unrecognized or
// empty values fall back to def.
func ParseLevel(s string, def Level) Level {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "none", "off", "silent":
		return LevelNone
	case "error", "err":
		return LevelError
	case "warn", "warning":
		return LevelWarn
	case "info":
		return LevelInfo
	case "debug", "all":
		return LevelDebug
	default:
		return def
	}
}

var (
	level atomic.Int32
	outMu sync.Mutex
	out   atomic.Pointer[io.Writer]
)

func init() {
	level.Store(int32(ParseLevel(os.Getenv("LAMELLAR_LOG"), LevelWarn)))
	var w io.Writer = os.Stderr
	out.Store(&w)
}

// SetLevel overrides the current level (normally set from LAMELLAR_LOG).
func SetLevel(l Level) { level.Store(int32(l)) }

// CurrentLevel reports the active threshold.
func CurrentLevel() Level { return Level(level.Load()) }

// Enabled reports whether messages at l would be emitted.
func Enabled(l Level) bool { return l <= Level(level.Load()) && l != LevelNone }

// SetOutput redirects diagnostics (tests; default os.Stderr).
func SetOutput(w io.Writer) {
	if w == nil {
		w = os.Stderr
	}
	out.Store(&w)
}

// logf emits one line: "lamellar/<component> <LEVEL>: <message>".
func logf(l Level, component, format string, args ...any) {
	if !Enabled(l) {
		return
	}
	w := *out.Load()
	outMu.Lock()
	fmt.Fprintf(w, "lamellar/%s %s: %s\n", component, l, fmt.Sprintf(format, args...))
	outMu.Unlock()
}

// Errorf reports an error-level diagnostic for component.
func Errorf(component, format string, args ...any) { logf(LevelError, component, format, args...) }

// Warnf reports a warn-level diagnostic for component.
func Warnf(component, format string, args ...any) { logf(LevelWarn, component, format, args...) }

// Infof reports an info-level diagnostic for component.
func Infof(component, format string, args ...any) { logf(LevelInfo, component, format, args...) }

// Debugf reports a debug-level diagnostic for component.
func Debugf(component, format string, args ...any) { logf(LevelDebug, component, format, args...) }
