package bench

import (
	"reflect"
	"testing"
	"time"
)

// Graph construction must be a pure function of (pattern, width, depth,
// seed): two builds are structurally identical, and the random pattern
// actually varies with the seed.
func TestTaskGraphDeterministic(t *testing.T) {
	for _, p := range TaskBenchPatterns {
		a, err := buildTaskGraph(p, 64, 12, 42)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		b, err := buildTaskGraph(p, 64, 12, 42)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: graph construction is not deterministic", p)
		}
	}
	r1, _ := buildTaskGraph("random", 64, 12, 1)
	r2, _ := buildTaskGraph("random", 64, 12, 2)
	if reflect.DeepEqual(r1.ndeps, r2.ndeps) && reflect.DeepEqual(r1.dependents, r2.dependents) {
		t.Error("random: different seeds produced identical graphs")
	}
}

// Structural invariants per pattern: totals, per-level dependency
// bounds, and that the dependents index is an exact reversal of the
// dependency counts.
func TestTaskGraphShape(t *testing.T) {
	const w, d = 64, 10
	for _, p := range TaskBenchPatterns {
		g, err := buildTaskGraph(p, w, d, 7)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		wantTotal := 0
		for _, lw := range g.widths {
			wantTotal += lw
		}
		if g.total != wantTotal {
			t.Errorf("%s: total %d != sum of level widths %d", p, g.total, wantTotal)
		}
		switch p {
		case "stencil", "fft", "sparse", "random":
			if g.widths[0] == 0 || g.widths[0] > w {
				t.Errorf("%s: bad level width %d", p, g.widths[0])
			}
		case "tree":
			if g.widths[0] != w || g.widths[1] != (w+1)/2 {
				t.Errorf("tree: unexpected narrowing %v", g.widths[:2])
			}
		}
		// Level 0 has no dependencies; every later active task has >= 1.
		for i := 0; i < g.widths[0]; i++ {
			if g.ndeps[i] != 0 {
				t.Errorf("%s: level-0 task %d has %d deps", p, i, g.ndeps[i])
			}
		}
		for lvl := 1; lvl < d; lvl++ {
			for i := 0; i < g.widths[lvl]; i++ {
				if n := g.ndeps[lvl*w+i]; n < 1 || n > tbSparseDegree {
					t.Errorf("%s: task (%d,%d) has %d deps", p, i, lvl, n)
				}
			}
		}
		// Reversal: total dependent edges == total dependency counts.
		var edges, deps int
		for _, ds := range g.dependents {
			edges += len(ds)
		}
		for _, n := range g.ndeps {
			deps += int(n)
		}
		if edges != deps {
			t.Errorf("%s: %d dependent edges != %d dependency slots", p, edges, deps)
		}
	}
}

// Every pattern must have at least one cross-PE edge under the 2-PE
// block distribution — otherwise the matrix would never exercise the AM
// fabric and the wire layer.
func TestTaskGraphCrossPEEdges(t *testing.T) {
	for _, p := range TaskBenchPatterns {
		g, err := buildTaskGraph(p, 64, 10, 7)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if n := g.crossPEEdges(2); n == 0 {
			t.Errorf("%s: no cross-PE dependency edges at 2 PEs", p)
		}
	}
}

// TestTaskBenchCompletionCounts runs every pattern end-to-end on a 2-PE
// shmem world and checks exact completion: each active task ran exactly
// once (the CAS bitmap catches double executions, the per-PE counters
// catch losses). This is the -race smoke the taskbench-smoke Makefile
// target gates into `make check` at GOMAXPROCS 1 and 4.
func TestTaskBenchCompletionCounts(t *testing.T) {
	rate := calibrateSpin()
	for _, p := range TaskBenchPatterns {
		g, err := buildTaskGraph(p, 32, 8, 0x7B)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		res, err := runTaskCell(g, time.Microsecond, 2, 2, 2, rate)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if res.doubles != 0 {
			t.Errorf("%s: %d tasks executed more than once", p, res.doubles)
		}
		var ran int64
		for _, n := range res.ranPE {
			ran += n
		}
		if ran != int64(g.total) {
			t.Errorf("%s: %d of %d tasks completed", p, ran, g.total)
		}
		// Both PEs must own work at width 32 (block split 16/16 except
		// tree's narrowed levels, which still leave PE 1 the wide ones).
		for pe, n := range res.ranPE {
			if n == 0 {
				t.Errorf("%s: PE %d completed no tasks", p, pe)
			}
		}
	}
}

// The harness rejects malformed cells loudly instead of hanging.
func TestTaskGraphErrors(t *testing.T) {
	if _, err := buildTaskGraph("nope", 8, 4, 1); err == nil {
		t.Error("unknown pattern accepted")
	}
	if _, err := buildTaskGraph("stencil", 0, 4, 1); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := ParsePatterns("stencil,bogus"); err == nil {
		t.Error("ParsePatterns accepted unknown name")
	}
	ps, err := ParsePatterns("tree, random")
	if err != nil || len(ps) != 2 || ps[0] != "tree" || ps[1] != "random" {
		t.Errorf("ParsePatterns(\"tree, random\") = %v, %v", ps, err)
	}
}

// A degenerate single-column world: width 1 collapses every pattern to a
// chain; the run must still terminate with exact counts (guards the
// tree plateau and fft stage-0 edge cases).
func TestTaskBenchWidthOne(t *testing.T) {
	rate := calibrateSpin()
	for _, p := range TaskBenchPatterns {
		g, err := buildTaskGraph(p, 1, 6, 3)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		res, err := runTaskCell(g, time.Microsecond, 2, 1, 1, rate)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		var ran int64
		for _, n := range res.ranPE {
			ran += n
		}
		if ran != int64(g.total) || res.doubles != 0 {
			t.Errorf("%s: ran %d of %d (doubles %d)", p, ran, g.total, res.doubles)
		}
	}
}
