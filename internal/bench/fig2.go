package bench

import (
	stdruntime "runtime"
	"runtime/debug"

	"fmt"
	"io"

	"repro/internal/array"
	"repro/internal/fabric"
	"repro/internal/memregion"
	"repro/internal/runtime"
	"repro/internal/serde"
)

// Fig. 2: put-like bandwidth curves over transfer size for every
// communication abstraction in the stack, two PEs on "different nodes"
// (the cost model charges every byte). Series, top to bottom in the
// paper: Rofi(raw fabric), MemRegion, UnsafeArray-unchecked, AM,
// UnsafeArray, LocalLockArray, AtomicArray.

// Fig2Config controls the sweep.
type Fig2Config struct {
	// Sizes in bytes; default 1B..16MB in powers of four.
	Sizes []int
	// TotalBytesPerSize targets this much data per point (paper: 1 GB,
	// scaled down by default).
	TotalBytesPerSize int
	// MaxTransfers caps the per-point transfer count (the paper uses
	// 262143 for small sizes).
	MaxTransfers int
	// CSV additionally emits CSV.
	CSV bool
}

// WithDefaults fills in the scaled-down defaults.
func (c Fig2Config) WithDefaults() Fig2Config {
	if len(c.Sizes) == 0 {
		for s := 1; s <= 16<<20; s *= 4 {
			c.Sizes = append(c.Sizes, s)
		}
	}
	if c.TotalBytesPerSize <= 0 {
		c.TotalBytesPerSize = 32 << 20
	}
	if c.MaxTransfers <= 0 {
		c.MaxTransfers = 16384
	}
	return c
}

// bwAM is the Fig. 2 "AM" series: a Vec<u8> payload whose exec returns
// immediately on the target.
type bwAM struct {
	Data []byte
}

func (a *bwAM) MarshalLamellar(e *serde.Encoder)         { e.PutBytes(a.Data) }
func (a *bwAM) UnmarshalLamellar(d *serde.Decoder) error { a.Data = d.Bytes(); return d.Err() }
func (a *bwAM) Exec(ctx *runtime.Context) any            { return nil }

func init() {
	runtime.RegisterAM[bwAM]("bench.bwAM")
}

// fig2Method is one bandwidth series.
type fig2Method struct {
	name string
	// run executes n transfers of size bytes on PE0 and returns when all
	// transfers are complete (including remote application).
	run func(w *runtime.World, size, n int, buf []uint8)
}

func fig2Methods(maxSize int) []fig2Method {
	return []fig2Method{
		{"rofi", func(w *runtime.World, size, n int, buf []uint8) {
			seg := w.Provider().AllocSegment(maxSize, 0)
			defer w.Provider().FreeSegment(seg)
			for i := 0; i < n; i++ {
				w.Provider().Put(0, 1, seg, 0, buf)
			}
		}},
		{"memregion", func(w *runtime.World, size, n int, buf []uint8) {
			reg := fabric.AllocTyped[uint8](w.Provider(), maxSize)
			sh := memregion.NewShared(w.Provider(), reg, 0)
			for i := 0; i < n; i++ {
				sh.Put(1, 0, buf)
			}
		}},
		{"unsafe-unchecked", func(w *runtime.World, size, n int, buf []uint8) {
			a := array.NewUnsafeArray[uint8](w.Team(), 2*maxSize, array.Block)
			defer a.Drop()
			for i := 0; i < n; i++ {
				a.PutUnchecked(maxSize, buf)
			}
		}},
		{"am", func(w *runtime.World, size, n int, buf []uint8) {
			for i := 0; i < n; i++ {
				w.ExecAM(1, &bwAM{Data: buf})
			}
			w.WaitAll()
		}},
		{"unsafe", func(w *runtime.World, size, n int, buf []uint8) {
			a := array.NewUnsafeArray[uint8](w.Team(), 2*maxSize, array.Block)
			defer a.Drop()
			for i := 0; i < n; i++ {
				a.Put(maxSize, buf)
			}
			w.WaitAll()
		}},
		{"locallock", func(w *runtime.World, size, n int, buf []uint8) {
			a := array.NewLocalLockArray[uint8](w.Team(), 2*maxSize, array.Block)
			defer a.Drop()
			for i := 0; i < n; i++ {
				a.Put(maxSize, buf)
			}
			w.WaitAll()
		}},
		{"atomic", func(w *runtime.World, size, n int, buf []uint8) {
			a := array.NewAtomicArray[uint8](w.Team(), 2*maxSize, array.Block)
			defer a.Drop()
			for i := 0; i < n; i++ {
				a.Put(maxSize, buf)
			}
			w.WaitAll()
		}},
	}
}

// RunFig2 produces the bandwidth table.
func RunFig2(cfg Fig2Config, out io.Writer) error {
	cfg = cfg.WithDefaults()
	maxSize := 0
	for _, s := range cfg.Sizes {
		if s > maxSize {
			maxSize = s
		}
	}
	table := NewTable("FIG2 put-like bandwidth", "size_bytes", "MB/s")
	theoretical := fabric.DefaultCostModel().BandwidthBytesPerNs * 1e9 / 1e6
	fmt.Fprintf(out, "FIG2: theoretical network peak %.0f MB/s\n", theoretical)

	for _, m := range fig2Methods(maxSize) {
		m := m
		rcfg := runtime.Config{
			PEs:          2,
			WorkersPerPE: 4,
			Lamellae:     runtime.LamellaeSim,
			StagingBytes: 4 * maxSize,
		}
		var results []struct {
			size int
			mbs  float64
		}
		err := runtime.Run(rcfg, func(w *runtime.World) {
			for _, size := range cfg.Sizes {
				n := cfg.TotalBytesPerSize / size
				if n > cfg.MaxTransfers {
					n = cfg.MaxTransfers
				}
				if n < 2 {
					n = 2
				}
				w.Barrier()
				if w.MyPE() == 0 {
					buf := make([]uint8, size)
					for i := range buf {
						buf[i] = uint8(i)
					}
					// best-of-3 samples with a GC before each so setup
					// garbage does not land inside a window
					best := 0.0
					for rep := 0; rep < 3; rep++ {
						stdruntime.GC()
						start := Take(w.Provider())
						m.run(w, size, n, buf)
						w.Barrier()
						win := Since(w.Provider(), start)
						if mbs := win.BandwidthMBs(uint64(n * size)); mbs > best {
							best = mbs
						}
						w.Barrier()
					}
					results = append(results, struct {
						size int
						mbs  float64
					}{size, best})
				} else {
					// PE1 serves AMs through its pool and joins barriers;
					// array constructions inside m.run are collective, so
					// PE1 must run the same constructors once per sample
					// (n=0 transfers) and match PE0's barrier pattern.
					buf := []uint8{}
					for rep := 0; rep < 3; rep++ {
						m.run(w, size, 0, buf)
						w.Barrier()
						w.Barrier()
					}
				}
				w.Barrier()
			}
		})
		if err != nil {
			return err
		}
		for _, r := range results {
			table.Add(fmt.Sprintf("%d", r.size), m.name, r.mbs)
		}
	}
	table.Render(out)
	if cfg.CSV {
		table.RenderCSV(out)
	}
	return nil
}

// RunFig2Agg produces the aggregated element-op bandwidth table: each
// transfer is one BatchOpVals(OpStore) call over `size/8` contiguous
// uint64 elements of the remote PE's half, fired without awaiting so the
// array-op aggregation layer coalesces calls into per-destination
// batches (WaitAll drains at the end of each sample). The noagg series
// runs the identical op stream with aggregation disabled (AggBufSize
// -1), isolating the layer's contribution; the seed FIG2 `atomic` curve
// (per-element stores via Put) is the pre-aggregation baseline.
func RunFig2Agg(cfg Fig2Config, out io.Writer) error {
	if len(cfg.Sizes) == 0 {
		// uint64 ops: start at two elements, sweep to 16 MiB batches,
		// covering every seed-table 64 KiB+ row for direct comparison.
		for s := 16; s <= 16<<20; s *= 4 {
			cfg.Sizes = append(cfg.Sizes, s)
		}
	}
	if cfg.TotalBytesPerSize <= 0 {
		cfg.TotalBytesPerSize = 16 << 20
	}
	if cfg.MaxTransfers <= 0 {
		cfg.MaxTransfers = 4096
	}
	maxSize := 0
	for _, s := range cfg.Sizes {
		if s > maxSize {
			maxSize = s
		}
	}
	maxElems := maxSize / 8

	// The metric charges process-wide CPU, and the top sizes allocate
	// tens of MB per transfer (receive buffers, over-cap encoders), so
	// GC assists inside a timed rep would show up as lost bandwidth.
	// Relax the pacer for the sweep; the explicit GC between reps keeps
	// the heap bounded.
	oldGC := debug.SetGCPercent(800)
	defer debug.SetGCPercent(oldGC)

	methods := []struct {
		name  string
		kind  string
		noagg bool
	}{
		{"atomic-agg", "atomic", false},
		{"atomic-noagg", "atomic", true},
		{"locallock-agg", "locallock", false},
		{"unsafe-agg", "unsafe", false},
	}
	table := NewTable("FIG2-AGG aggregated element-op bandwidth", "size_bytes", "MB/s")
	for _, m := range methods {
		m := m
		rcfg := runtime.Config{
			PEs:          2,
			WorkersPerPE: 4,
			Lamellae:     runtime.LamellaeSim,
			// Generous staging so the largest aggregated payload still fits
			// in one fragment (the sim fragments at a quarter of the heap);
			// reassembly would add a full extra copy pass at the top sizes.
			StagingBytes: 8*maxSize + (1 << 20),
		}
		if m.noagg {
			rcfg.AggBufSize = -1
		}
		var results []struct {
			size int
			mbs  float64
		}
		err := runtime.Run(rcfg, func(w *runtime.World) {
			// Collective construction: both PEs build the same array, then
			// PE0 stores into PE1's half.
			var batch func(idxs []int, vals []uint64)
			var drop func()
			switch m.kind {
			case "atomic":
				a := array.NewAtomicArray[uint64](w.Team(), 2*maxElems, array.Block)
				batch = func(idxs []int, vals []uint64) { a.BatchOpVals(array.OpStore, idxs, vals) }
				drop = a.Drop
			case "locallock":
				a := array.NewLocalLockArray[uint64](w.Team(), 2*maxElems, array.Block)
				batch = func(idxs []int, vals []uint64) { a.BatchOpVals(array.OpStore, idxs, vals) }
				drop = a.Drop
			case "unsafe":
				a := array.NewUnsafeArray[uint64](w.Team(), 2*maxElems, array.Block)
				batch = func(idxs []int, vals []uint64) { a.BatchOpVals(array.OpStore, idxs, vals) }
				drop = a.Drop
			}
			defer drop()
			for _, size := range cfg.Sizes {
				elems := size / 8
				n := cfg.TotalBytesPerSize / size
				if n > cfg.MaxTransfers {
					n = cfg.MaxTransfers
				}
				if n < 2 {
					n = 2
				}
				w.Barrier()
				if w.MyPE() == 0 {
					idxs := make([]int, elems)
					vals := make([]uint64, elems)
					for i := range idxs {
						idxs[i] = maxElems + i
						vals[i] = uint64(i)
					}
					best := 0.0
					for rep := 0; rep < 5; rep++ {
						stdruntime.GC()
						start := Take(w.Provider())
						for i := 0; i < n; i++ {
							batch(idxs, vals)
						}
						w.WaitAll()
						w.Barrier()
						win := Since(w.Provider(), start)
						if mbs := win.BandwidthMBs(uint64(n * size)); mbs > best {
							best = mbs
						}
						w.Barrier()
					}
					results = append(results, struct {
						size int
						mbs  float64
					}{size, best})
				} else {
					for rep := 0; rep < 5; rep++ {
						w.Barrier()
						w.Barrier()
					}
				}
				w.Barrier()
			}
		})
		if err != nil {
			return err
		}
		for _, r := range results {
			table.Add(fmt.Sprintf("%d", r.size), m.name, r.mbs)
		}
	}
	table.Render(out)
	if cfg.CSV {
		table.RenderCSV(out)
	}
	return nil
}

// RunFig2Get produces get-direction bandwidth curves. The paper omits
// them ("Lamellar get transfers follow the same trends as put") — this
// extension experiment verifies that claim on the reproduction.
func RunFig2Get(cfg Fig2Config, out io.Writer) error {
	cfg = cfg.WithDefaults()
	maxSize := 0
	for _, s := range cfg.Sizes {
		if s > maxSize {
			maxSize = s
		}
	}
	methods := []fig2Method{
		{"rofi-get", func(w *runtime.World, size, n int, buf []uint8) {
			seg := w.Provider().AllocSegment(maxSize, 0)
			defer w.Provider().FreeSegment(seg)
			for i := 0; i < n; i++ {
				w.Provider().Get(0, 1, seg, 0, buf)
			}
		}},
		{"memregion-get", func(w *runtime.World, size, n int, buf []uint8) {
			reg := fabric.AllocTyped[uint8](w.Provider(), maxSize)
			sh := memregion.NewShared(w.Provider(), reg, 0)
			for i := 0; i < n; i++ {
				sh.Get(1, 0, buf)
			}
		}},
		{"readonly-direct", func(w *runtime.World, size, n int, buf []uint8) {
			ua := array.NewUnsafeArray[uint8](w.Team(), 2*maxSize, array.Block)
			a := ua.IntoReadOnly()
			defer a.Drop()
			for i := 0; i < n; i++ {
				a.GetDirect(maxSize, size)
			}
		}},
		{"unsafe-get", func(w *runtime.World, size, n int, buf []uint8) {
			a := array.NewUnsafeArray[uint8](w.Team(), 2*maxSize, array.Block)
			defer a.Drop()
			for i := 0; i < n; i++ {
				a.Get(maxSize, size)
			}
			w.WaitAll()
		}},
		{"atomic-get", func(w *runtime.World, size, n int, buf []uint8) {
			a := array.NewAtomicArray[uint8](w.Team(), 2*maxSize, array.Block)
			defer a.Drop()
			for i := 0; i < n; i++ {
				a.Get(maxSize, size)
			}
			w.WaitAll()
		}},
	}
	table := NewTable("FIG2-GET get-like bandwidth (extension)", "size_bytes", "MB/s")
	for _, m := range methods {
		m := m
		rcfg := runtime.Config{
			PEs:          2,
			WorkersPerPE: 4,
			Lamellae:     runtime.LamellaeSim,
			StagingBytes: 4 * maxSize,
		}
		var results []struct {
			size int
			mbs  float64
		}
		err := runtime.Run(rcfg, func(w *runtime.World) {
			for _, size := range cfg.Sizes {
				n := cfg.TotalBytesPerSize / size
				if n > cfg.MaxTransfers {
					n = cfg.MaxTransfers
				}
				if n < 2 {
					n = 2
				}
				w.Barrier()
				if w.MyPE() == 0 {
					buf := make([]uint8, size)
					best := 0.0
					for rep := 0; rep < 3; rep++ {
						stdruntime.GC()
						start := Take(w.Provider())
						m.run(w, size, n, buf)
						w.Barrier()
						win := Since(w.Provider(), start)
						if mbs := win.BandwidthMBs(uint64(n * size)); mbs > best {
							best = mbs
						}
						w.Barrier()
					}
					results = append(results, struct {
						size int
						mbs  float64
					}{size, best})
				} else {
					buf := []uint8{}
					for rep := 0; rep < 3; rep++ {
						m.run(w, size, 0, buf)
						w.Barrier()
						w.Barrier()
					}
				}
				w.Barrier()
			}
		})
		if err != nil {
			return err
		}
		for _, r := range results {
			table.Add(fmt.Sprintf("%d", r.size), m.name, r.mbs)
		}
	}
	table.Render(out)
	if cfg.CSV {
		table.RenderCSV(out)
	}
	return nil
}
