// Package bench implements the measurement harness that regenerates the
// paper's evaluation (Figs. 2–5) on the simulated substrate.
//
// Metric model (see DESIGN.md §2): the simulator cannot reproduce absolute
// testbed numbers, so each measured window combines
//
//   - real CPU work: the process-wide rusage CPU time consumed in the
//     window divided by the number of PEs — a load-independent estimate
//     of per-PE compute, immune to core oversubscription; and
//   - modeled network time: the maximum over PEs of the fabric's
//     accumulated per-operation model (latency + size/bandwidth +
//     per-message gap).
//
// Simulated elapsed time is max(cpuPerPE, netMax): the bulk-parallel
// bottleneck approximation. Rates derived from it preserve the *shape* of
// the paper's results — who wins, by what factor, where crossovers fall —
// which is the reproduction target.
package bench

import (
	"fmt"
	"io"
	"syscall"
	"time"

	"repro/internal/fabric"
)

// cpuNow returns the process CPU time (user+system) in nanoseconds.
func cpuNow() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return ru.Utime.Nano() + ru.Stime.Nano()
}

// Snapshot captures a measurement starting point.
type Snapshot struct {
	wall  time.Time
	cpuNs int64
	perPE []fabric.Counters
}

// Take snapshots the current wall clock, CPU time and fabric counters.
func Take(prov *fabric.Provider) Snapshot {
	return Snapshot{
		wall:  time.Now(),
		cpuNs: cpuNow(),
		perPE: prov.SnapshotAll(),
	}
}

// Window is the measurement of one timed region.
type Window struct {
	WallNs   int64
	CPUNs    int64 // process-wide CPU consumed
	NetMaxNs uint64
	Msgs     uint64
	Bytes    uint64
	PEs      int
}

// Since computes the window from a starting snapshot.
func Since(prov *fabric.Provider, start Snapshot) Window {
	w := Window{
		WallNs: time.Since(start.wall).Nanoseconds(),
		CPUNs:  cpuNow() - start.cpuNs,
		PEs:    prov.NumPEs(),
	}
	for pe := 0; pe < prov.NumPEs(); pe++ {
		d := prov.CountersFor(pe).Sub(start.perPE[pe])
		w.Msgs += d.Msgs
		w.Bytes += d.Bytes
		if d.ModeledNs > w.NetMaxNs {
			w.NetMaxNs = d.ModeledNs
		}
	}
	return w
}

// SimNs returns the simulated elapsed nanoseconds of the window.
func (w Window) SimNs() float64 {
	cpuPerPE := float64(w.CPUNs) / float64(w.PEs)
	net := float64(w.NetMaxNs)
	if net > cpuPerPE {
		return net
	}
	if cpuPerPE <= 0 {
		return 1
	}
	return cpuPerPE
}

// RateMPerSec converts ops in the window to millions per simulated second.
func (w Window) RateMPerSec(ops uint64) float64 {
	return float64(ops) / w.SimNs() * 1e3 // ops/ns * 1e9 / 1e6
}

// BandwidthMBs converts transferred bytes to MB/s of simulated time.
func (w Window) BandwidthMBs(bytes uint64) float64 {
	return float64(bytes) / w.SimNs() * 1e9 / 1e6
}

// Table accumulates a labeled series table and renders it aligned, with
// one row per x value and one column per series, plus an optional CSV.
type Table struct {
	Title   string
	XLabel  string
	YLabel  string
	Series  []string
	rows    []tableRow
	byX     map[string]*tableRow
	xsOrder []string
}

type tableRow struct {
	x    string
	vals map[string]float64
}

// NewTable creates an empty result table.
func NewTable(title, xLabel, yLabel string) *Table {
	return &Table{Title: title, XLabel: xLabel, YLabel: yLabel, byX: map[string]*tableRow{}}
}

// Add records one (x, series) measurement.
func (t *Table) Add(x, series string, val float64) {
	row, ok := t.byX[x]
	if !ok {
		row = &tableRow{x: x, vals: map[string]float64{}}
		t.byX[x] = row
		t.xsOrder = append(t.xsOrder, x)
		t.rows = append(t.rows, tableRow{})
	}
	if _, seen := row.vals[series]; !seen {
		found := false
		for _, s := range t.Series {
			if s == series {
				found = true
				break
			}
		}
		if !found {
			t.Series = append(t.Series, series)
		}
	}
	row.vals[series] = val
}

// Render writes the aligned table.
func (t *Table) Render(out io.Writer) {
	fmt.Fprintf(out, "\n# %s\n# %s vs %s (simulated substrate; shapes, not absolute testbed numbers)\n",
		t.Title, t.YLabel, t.XLabel)
	fmt.Fprintf(out, "%-12s", t.XLabel)
	for _, s := range t.Series {
		fmt.Fprintf(out, " %16s", s)
	}
	fmt.Fprintln(out)
	for _, x := range t.xsOrder {
		row := t.byX[x]
		fmt.Fprintf(out, "%-12s", x)
		for _, s := range t.Series {
			if v, ok := row.vals[s]; ok {
				fmt.Fprintf(out, " %16.3f", v)
			} else {
				fmt.Fprintf(out, " %16s", "-")
			}
		}
		fmt.Fprintln(out)
	}
}

// RenderCSV writes the table as CSV.
func (t *Table) RenderCSV(out io.Writer) {
	fmt.Fprintf(out, "%s", t.XLabel)
	for _, s := range t.Series {
		fmt.Fprintf(out, ",%s", s)
	}
	fmt.Fprintln(out)
	for _, x := range t.xsOrder {
		row := t.byX[x]
		fmt.Fprintf(out, "%s", x)
		for _, s := range t.Series {
			if v, ok := row.vals[s]; ok {
				fmt.Fprintf(out, ",%g", v)
			} else {
				fmt.Fprintf(out, ",")
			}
		}
		fmt.Fprintln(out)
	}
}
