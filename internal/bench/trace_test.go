package bench

import (
	"strings"
	"testing"

	"repro/internal/bale/kernels"
	"repro/internal/fabric"
)

func TestTraceCollector(t *testing.T) {
	tr := NewTrace(2)
	h := tr.Hook()
	h(fabric.OpEvent{Kind: fabric.OpPut, Initiator: 0, Target: 1, Bytes: 100, ModeledNs: 500})
	h(fabric.OpEvent{Kind: fabric.OpPut, Initiator: 0, Target: 1, Bytes: 28, ModeledNs: 250})
	h(fabric.OpEvent{Kind: fabric.OpGet, Initiator: 1, Target: 0, Bytes: 4096})
	h(fabric.OpEvent{Kind: fabric.OpAtomic, Initiator: 0, Target: 1, Bytes: 8})
	h(fabric.OpEvent{Kind: fabric.OpBarrier, Initiator: 0, Target: 0})
	if tr.Ops(fabric.OpPut) != 2 || tr.Ops(fabric.OpGet) != 1 {
		t.Errorf("op counts wrong")
	}
	if tr.TotalBytes() != 100+28+4096+8 {
		t.Errorf("bytes = %d", tr.TotalBytes())
	}
	if tr.MatrixBytes(0, 1) != 136 || tr.MatrixBytes(1, 0) != 4096 {
		t.Errorf("matrix wrong: %d %d", tr.MatrixBytes(0, 1), tr.MatrixBytes(1, 0))
	}
	var sb strings.Builder
	tr.Render(&sb)
	out := sb.String()
	for _, want := range []string{"put", "get", "atomic", "barrier", "traffic matrix", "4096-8191"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRunTraceEndToEnd(t *testing.T) {
	cfg := KernelFigConfig{
		Params: kernels.Params{
			TablePerPE: 100, UpdatesPerPE: 2000, BufItems: 200,
			DartsPerPE: 500, TargetFactor: 2, Seed: 3,
		},
		WorkersPerPE: 2,
	}
	var sb strings.Builder
	if err := RunTrace("histo", "exstack2", 4, cfg, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "communication profile (4 PEs)") {
		t.Errorf("unexpected trace output:\n%s", sb.String())
	}
	// unknown implementation errors cleanly
	if err := RunTrace("histo", "no-such", 4, cfg, &sb); err == nil {
		t.Error("expected error for unknown impl")
	}
	if err := RunTrace("bogus", "exstack", 4, cfg, &sb); err == nil {
		t.Error("expected error for unknown kernel")
	}
}
