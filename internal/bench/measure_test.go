package bench

import (
	"strings"
	"testing"
	"time"

	"repro/internal/bale/kernels"
	"repro/internal/fabric"
)

type kernelsParamsAlias = kernels.Params

func TestWindowSimNsPicksBottleneck(t *testing.T) {
	w := Window{CPUNs: 100e6, NetMaxNs: 10e6, PEs: 4}
	// cpu per PE = 25ms > net 10ms
	if got := w.SimNs(); got != 25e6 {
		t.Errorf("SimNs = %v, want 25e6", got)
	}
	w = Window{CPUNs: 8e6, NetMaxNs: 10e6, PEs: 4}
	if got := w.SimNs(); got != 10e6 {
		t.Errorf("SimNs = %v, want 10e6 (net bound)", got)
	}
	// degenerate window never divides by zero or returns zero
	w = Window{PEs: 2}
	if got := w.SimNs(); got <= 0 {
		t.Errorf("SimNs = %v, want positive", got)
	}
}

func TestWindowRates(t *testing.T) {
	w := Window{CPUNs: 2e9, PEs: 2, NetMaxNs: 0} // 1s simulated
	if got := w.RateMPerSec(5_000_000); got != 5 {
		t.Errorf("RateMPerSec = %v, want 5", got)
	}
	if got := w.BandwidthMBs(100e6); got != 100 {
		t.Errorf("BandwidthMBs = %v, want 100", got)
	}
}

func TestSnapshotWindow(t *testing.T) {
	prov := fabric.New(2, fabric.DefaultCostModel())
	seg := prov.AllocSegment(1024, 1)
	start := Take(prov)
	prov.Put(0, 1, seg, 0, make([]byte, 512))
	prov.AtomicAdd(1, 0, seg, 0, 1)
	// burn a little CPU so the window registers some
	x := 0.0
	deadline := time.Now().Add(2 * time.Millisecond)
	for time.Now().Before(deadline) {
		x += 1.0
	}
	_ = x
	win := Since(prov, start)
	if win.Msgs != 2 {
		t.Errorf("Msgs = %d", win.Msgs)
	}
	if win.Bytes != 512+8 {
		t.Errorf("Bytes = %d", win.Bytes)
	}
	if win.NetMaxNs == 0 {
		t.Error("no modeled time")
	}
	if win.WallNs <= 0 || win.CPUNs <= 0 {
		t.Errorf("wall/cpu not measured: %+v", win)
	}
	if win.PEs != 2 {
		t.Errorf("PEs = %d", win.PEs)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("T", "x", "y")
	tab.Add("1", "a", 1.5)
	tab.Add("1", "b", 2.5)
	tab.Add("2", "a", 3.5)
	var sb, csv strings.Builder
	tab.Render(&sb)
	tab.RenderCSV(&csv)
	out := sb.String()
	if !strings.Contains(out, "1.500") || !strings.Contains(out, "3.500") {
		t.Errorf("render missing values:\n%s", out)
	}
	// missing (2, b) renders as '-'
	if !strings.Contains(out, "-") {
		t.Errorf("missing cell not marked:\n%s", out)
	}
	cs := csv.String()
	if !strings.HasPrefix(cs, "x,a,b\n") {
		t.Errorf("csv header wrong: %q", cs)
	}
	if !strings.Contains(cs, "1,1.5,2.5") {
		t.Errorf("csv row wrong: %q", cs)
	}
}

func TestCoresPerPEMapping(t *testing.T) {
	if got := coresPerPE("lamellar-am", 32, 4); got != 4 {
		t.Errorf("lamellar-am cpp = %d", got)
	}
	if got := coresPerPE("exstack", 32, 4); got != 1 {
		t.Errorf("exstack cpp = %d", got)
	}
	if got := coresPerPE("lamellar-am", 2, 4); got != 1 {
		t.Errorf("small-world cpp = %d", got)
	}
	p := scalePerCore(benchDefaultParams(), 4)
	if p.UpdatesPerPE != 4*benchDefaultParams().UpdatesPerPE {
		t.Error("updates not scaled per core")
	}
}

func benchDefaultParams() (p kernelsParamsAlias) {
	return kernelsParamsAlias{TablePerPE: 10, UpdatesPerPE: 100, BufItems: 10, DartsPerPE: 50, TargetFactor: 2, Seed: 1}
}
