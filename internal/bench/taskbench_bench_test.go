package bench

import (
	"testing"
	"time"
)

// BenchmarkGateCalibrate is the bench-gate's machine-speed yardstick: a
// fixed amount of pure CPU work with no runtime involvement. The gate
// comparator (cmd/lamellar-bench gate) divides every other benchmark's
// ns/op by this one's ratio between baseline and candidate runs, so a
// slower CI runner does not read as a regression and a faster one does
// not mask a real slowdown.
func BenchmarkGateCalibrate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spinKernel(1 << 20)
	}
}

// BenchmarkTaskBenchCellStencil is the taskbench cell pinned into the
// bench-gate: one stencil run (64x16, 5µs grain, 2 PEs x 2 workers over
// shmem) per iteration, covering the full submit→steal→AM→wire→exec
// pipeline end to end. Run with -benchtime=Nx so iteration counts match
// the committed baseline.
func BenchmarkTaskBenchCellStencil(b *testing.B) {
	rate := calibrateSpin()
	g, err := buildTaskGraph("stencil", 64, 16, 0x7B)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runTaskCell(g, 5*time.Microsecond, 2, 2, 1, rate); err != nil {
			b.Fatal(err)
		}
	}
}
