package bench

import (
	"fmt"
	"io"
	stdruntime "runtime"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/array"
	"repro/internal/runtime"
	"repro/internal/scheduler"
	"repro/internal/serde"
)

// Task Bench (ISSUE 9): the dependency-pattern stress matrix from
// "Exploring Performance-Productivity Trade-offs in AMT Runtimes: A Task
// Bench Study" (PAPERS.md), reproduced over this runtime's work-stealing
// executor and AM fabric. An iteration space of width W × depth D tasks
// is connected by one of five dependency patterns; each task spins for a
// calibrated grain (~1µs to ~1ms of CPU), then releases its dependents.
// Tasks are block-distributed over the PEs by index, so edges that cross
// the block boundary become fire-and-forget dependency AMs through the
// aggregation layer and reliable wire — the full task→AM→task pipeline,
// not just the scheduler in isolation.
//
// Patterns (see DESIGN.md §3g for what each stresses):
//
//	stencil  (i,t) ← {i-1, i, i+1} at t-1          local chains + neighbor PE edges
//	fft      (i,t) ← {i, i^2^((t-1) mod log2 W)}   butterfly: distance doubles per level
//	tree     reduce to 1 then broadcast to W        fan-in/fan-out, width collapse
//	sparse   (i,t) ← K strided deps, rotating       fixed-degree scatter
//	random   (i,t) ← K seeded-random deps at t-1    irregular, steal-heavy
//
// The metric per cell is throughput (tasks/s) and parallel efficiency:
// eff = (total·grain / capacity) / wall, capacity = min(GOMAXPROCS,
// PEs·workers). Fine grains expose per-task scheduling+wire overhead;
// coarse grains expose load imbalance.

// TaskBenchConfig parameterizes the pattern × granularity × GOMAXPROCS
// matrix. Zero values select documented defaults.
type TaskBenchConfig struct {
	// Patterns is the subset to run (default: all five).
	Patterns []string
	// Width is tasks per timestep (default 256; fft uses the largest
	// power of two ≤ Width).
	Width int
	// Depth is the number of timesteps (default 24).
	Depth int
	// Grains are the per-task spin durations (default 1µs, 10µs, 100µs).
	Grains []time.Duration
	// PEs and Workers shape the world (defaults 2 and 2).
	PEs     int
	Workers int
	// Procs are the GOMAXPROCS values to sweep (default 1, 2, N where
	// N = NumCPU, floored at 4 so multi-proc scheduling paths are
	// exercised even on small containers).
	Procs []int
	// Seed drives the random pattern's graph (default 0x7B).
	Seed int64
	// Reps takes the best of this many timed reps (default 3).
	Reps int
	// CSV additionally emits CSV.
	CSV bool
}

// TaskBenchPatterns is the canonical pattern order.
var TaskBenchPatterns = []string{"stencil", "fft", "tree", "sparse", "random"}

func (c TaskBenchConfig) withDefaults() TaskBenchConfig {
	if len(c.Patterns) == 0 {
		c.Patterns = TaskBenchPatterns
	}
	if c.Width <= 0 {
		c.Width = 256
	}
	if c.Depth <= 0 {
		c.Depth = 24
	}
	if len(c.Grains) == 0 {
		c.Grains = []time.Duration{time.Microsecond, 10 * time.Microsecond, 100 * time.Microsecond}
	}
	if c.PEs <= 0 {
		c.PEs = 2
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if len(c.Procs) == 0 {
		n := stdruntime.NumCPU()
		if n < 4 {
			n = 4
		}
		c.Procs = dedupInts([]int{1, 2, n})
	}
	if c.Seed == 0 {
		c.Seed = 0x7B
	}
	if c.Reps <= 0 {
		c.Reps = 3
	}
	return c
}

func dedupInts(xs []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, x := range xs {
		if x > 0 && !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// ----- dependency graphs -----------------------------------------------------

// tbGraph is one pattern's task DAG. Task (i,t) has id t*width+i; only
// ids with i < widths[t] exist (tree narrows, fft rounds to a power of
// two). Construction is deterministic in (pattern, width, depth, seed).
type tbGraph struct {
	pattern      string
	width, depth int
	widths       []int     // active tasks per level
	ndeps        []int32   // id → dependency count (level 0: 0)
	dependents   [][]int32 // id → ids it releases at the next level
	total        int       // active task count
}

// tbSparseDegree is the dependency degree of the sparse and random
// patterns (capped by width).
const tbSparseDegree = 3

// splitmix64 is the hash behind the random pattern's seeded edges.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// buildTaskGraph constructs the DAG for one pattern.
func buildTaskGraph(pattern string, width, depth int, seed int64) (*tbGraph, error) {
	if width < 1 || depth < 1 {
		return nil, fmt.Errorf("taskbench: width and depth must be >= 1 (got %d x %d)", width, depth)
	}
	g := &tbGraph{pattern: pattern, width: width, depth: depth}
	g.widths = make([]int, depth)

	// Active width per level.
	switch pattern {
	case "stencil", "sparse", "random":
		for t := range g.widths {
			g.widths[t] = width
		}
	case "fft":
		w2 := 1
		for w2*2 <= width {
			w2 *= 2
		}
		for t := range g.widths {
			g.widths[t] = w2
		}
	case "tree":
		g.widths[0] = width
		reducing := true
		for t := 1; t < depth; t++ {
			prev := g.widths[t-1]
			if reducing {
				next := (prev + 1) / 2
				g.widths[t] = next
				if next == 1 {
					reducing = false
				}
			} else {
				next := prev * 2
				if next >= width {
					next = width
					reducing = true
				}
				g.widths[t] = next
			}
		}
	default:
		return nil, fmt.Errorf("taskbench: unknown pattern %q (have %s)",
			pattern, strings.Join(TaskBenchPatterns, ", "))
	}

	// Dependencies of (i,t) as indices at level t-1, t >= 1. Every index
	// returned is < widths[t-1].
	k := tbSparseDegree
	if k > g.widths[0] {
		k = g.widths[0]
	}
	fftStages := 0
	for s := 1; s < g.widths[0]; s *= 2 {
		fftStages++
	}
	var buf [tbSparseDegree + 2]int
	depsOf := func(t, i int) []int {
		w := g.widths[t-1]
		ds := buf[:0]
		switch pattern {
		case "stencil":
			for _, j := range [3]int{i - 1, i, i + 1} {
				if j >= 0 && j < w {
					ds = append(ds, j)
				}
			}
		case "fft":
			ds = append(ds, i)
			if fftStages > 0 {
				if p := i ^ (1 << ((t - 1) % fftStages)); p != i && p < w {
					ds = append(ds, p)
				}
			}
		case "tree":
			wt := g.widths[t]
			switch {
			case wt < w: // reduction: children 2i, 2i+1
				ds = append(ds, 2*i)
				if 2*i+1 < w {
					ds = append(ds, 2*i+1)
				}
			case wt > w: // broadcast: parent i/2
				ds = append(ds, i/2)
			default: // width 1 plateau
				ds = append(ds, i)
			}
		case "sparse":
			stride := w / k
			if stride < 1 {
				stride = 1
			}
			for j := 0; j < k; j++ {
				ds = appendUnique(ds, ((i+j*stride+t)%w+w)%w)
			}
		case "random":
			for j := 0; j < k; j++ {
				h := splitmix64(uint64(seed)<<32 ^ uint64(t)<<20 ^ uint64(i)<<4 ^ uint64(j))
				ds = appendUnique(ds, int(h%uint64(w)))
			}
		}
		return ds
	}

	n := depth * width
	g.ndeps = make([]int32, n)
	g.dependents = make([][]int32, n)
	for t := 0; t < depth; t++ {
		for i := 0; i < g.widths[t]; i++ {
			g.total++
			if t == 0 {
				continue
			}
			id := int32(t*width + i)
			ds := depsOf(t, i)
			g.ndeps[id] = int32(len(ds))
			for _, j := range ds {
				pid := (t-1)*width + j
				g.dependents[pid] = append(g.dependents[pid], id)
			}
		}
	}
	return g, nil
}

func appendUnique(ds []int, j int) []int {
	for _, d := range ds {
		if d == j {
			return ds
		}
	}
	return append(ds, j)
}

// crossPEEdges counts dependency edges whose producer and consumer live
// on different PEs under the run's block distribution — the edges that
// become wire AMs.
func (g *tbGraph) crossPEEdges(pes int) int {
	per := (g.width + pes - 1) / pes
	n := 0
	for id, deps := range g.dependents {
		src := (id % g.width) / per
		for _, d := range deps {
			if (int(d)%g.width)/per != src {
				n++
			}
		}
	}
	return n
}

// ----- calibrated spin work --------------------------------------------------

// tbSpinSink defeats dead-code elimination of the spin kernel.
var tbSpinSink atomic.Uint64

// spinKernel burns CPU for iters xorshift rounds — the task body.
func spinKernel(iters int64) {
	x := uint64(iters)*2 + 1
	for i := int64(0); i < iters; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	tbSpinSink.Store(x)
}

// calibrateSpin measures the spin kernel's rate (iterations/ns), best of
// three so scheduler noise only underestimates task grain, never
// inflates it.
func calibrateSpin() float64 {
	spinKernel(1 << 16) // warm
	best := 0.0
	for r := 0; r < 3; r++ {
		const n = 1 << 21
		t0 := time.Now()
		spinKernel(n)
		if el := time.Since(t0); el > 0 {
			if rate := float64(n) / float64(el.Nanoseconds()); rate > best {
				best = rate
			}
		}
	}
	if best <= 0 {
		best = 1
	}
	return best
}

func spinItersFor(grain time.Duration, rate float64) int64 {
	it := int64(rate * float64(grain.Nanoseconds()))
	if it < 1 {
		it = 1
	}
	return it
}

// ----- execution engine ------------------------------------------------------

// tbState is the per-PE extension-state slot the dependency AM resolves
// its current run through.
type tbState struct {
	run atomic.Pointer[tbRun]
}

const tbStateKey = "bench.taskbench"

func tbStateOf(w *runtime.World) *tbState {
	return w.ExtState(tbStateKey, func() any { return new(tbState) }).(*tbState)
}

// tbDepAM notifies the owner of a task that one of its dependencies
// completed on another PE.
type tbDepAM struct {
	Task int64
}

func (a *tbDepAM) MarshalLamellar(e *serde.Encoder) { e.PutUvarint(uint64(a.Task)) }
func (a *tbDepAM) UnmarshalLamellar(d *serde.Decoder) error {
	a.Task = int64(d.Uvarint())
	return d.Err()
}
func (a *tbDepAM) Exec(ctx *runtime.Context) any {
	tbStateOf(ctx.World).run.Load().satisfy(int(a.Task))
	return nil
}

func init() {
	runtime.RegisterAM[tbDepAM]("bench.tbDep")
}

// tbRun is one PE's state for one timed repetition: remaining-dependency
// counters and a ran-once bitmap for the tasks it owns.
type tbRun struct {
	g         *tbGraph
	w         *runtime.World
	spinIters int64
	perPE     int // block size of the index distribution
	remaining []atomic.Int32
	ran       []atomic.Int32
	doubles   atomic.Int64
	doneLocal atomic.Int64
	expect    int64
	done      chan struct{}
}

func newTBRun(g *tbGraph, w *runtime.World, spinIters int64) *tbRun {
	r := &tbRun{
		g: g, w: w, spinIters: spinIters,
		perPE:     (g.width + w.NumPEs() - 1) / w.NumPEs(),
		remaining: make([]atomic.Int32, len(g.ndeps)),
		ran:       make([]atomic.Int32, len(g.ndeps)),
		done:      make(chan struct{}),
	}
	me := w.MyPE()
	for t := 0; t < g.depth; t++ {
		for i := 0; i < g.widths[t]; i++ {
			id := t*g.width + i
			r.remaining[id].Store(g.ndeps[id])
			if r.owner(i) == me {
				r.expect++
			}
		}
	}
	return r
}

func (r *tbRun) owner(i int) int { return i / r.perPE }

// start seeds the calling PE's level-0 tasks. A PE owning no tasks (the
// tree apex levels concentrate on PE 0's block) completes immediately.
func (r *tbRun) start() {
	if r.expect == 0 {
		close(r.done)
		return
	}
	me := r.w.MyPE()
	for i := 0; i < r.g.widths[0]; i++ {
		if r.owner(i) == me {
			r.submit(i)
		}
	}
}

// satisfy records one resolved dependency of task id, submitting it when
// the count hits zero. Runs on the owner PE only (local completions and
// inbound tbDepAM handlers).
func (r *tbRun) satisfy(id int) {
	if r.remaining[id].Add(-1) == 0 {
		r.submit(id)
	}
}

func (r *tbRun) submit(id int) {
	r.w.Pool().Submit(func() { r.exec(id) })
}

// exec is the task body: spin for the grain, then release dependents —
// locally for same-owner edges, via a dependency AM for cross-PE ones
// (fire-and-forget; the aggregation layer coalesces them per
// destination and the reliable wire delivers them exactly once).
func (r *tbRun) exec(id int) {
	if !r.ran[id].CompareAndSwap(0, 1) {
		r.doubles.Add(1)
		return
	}
	spinKernel(r.spinIters)
	me := r.w.MyPE()
	for _, d := range r.g.dependents[id] {
		if pe := r.owner(int(d) % r.g.width); pe == me {
			r.satisfy(int(d))
		} else {
			r.w.ExecAM(pe, &tbDepAM{Task: int64(d)})
		}
	}
	if r.doneLocal.Add(1) == r.expect {
		close(r.done)
	}
}

// tbCellResult is one timed matrix cell.
type tbCellResult struct {
	wall    time.Duration // best rep
	ranPE   []int64       // per-PE completion counts (best rep)
	doubles int64         // tasks that ran more than once (must be 0)
}

// runTaskCell executes one (graph, grain) cell: a world of pes × workers
// over the shmem lamellae, reps timed repetitions, best wall time. The
// caller owns GOMAXPROCS.
func runTaskCell(g *tbGraph, grain time.Duration, pes, workers, reps int, spinRate float64) (tbCellResult, error) {
	res := tbCellResult{ranPE: make([]int64, pes)}
	iters := spinItersFor(grain, spinRate)
	cfg := runtime.Config{
		PEs:          pes,
		WorkersPerPE: workers,
		Lamellae:     runtime.LamellaeShmem,
	}
	ranPE := make([]int64, pes)
	doublesPE := make([]int64, pes)
	err := runtime.Run(cfg, func(w *runtime.World) {
		me := w.MyPE()
		st := tbStateOf(w)
		for rep := 0; rep < reps; rep++ {
			r := newTBRun(g, w, iters)
			st.run.Store(r)
			w.Barrier() // every PE's run installed before any dep AM can arrive
			start := time.Now()
			r.start()
			<-r.done    // all tasks this PE owns completed
			w.WaitAll() // outbound dependency AMs delivered
			w.Barrier() // global completion
			el := time.Since(start)
			doublesPE[me] += r.doubles.Load()
			if me == 0 {
				if res.wall == 0 || el < res.wall {
					res.wall = el
				}
			}
			if rep == reps-1 {
				ranPE[me] = r.doneLocal.Load()
			}
		}
	})
	copy(res.ranPE, ranPE)
	for _, d := range doublesPE {
		res.doubles += d
	}
	return res, err
}

// ----- the matrix ------------------------------------------------------------

// RunTaskBench executes the pattern × grain × GOMAXPROCS matrix and
// prints one row per cell plus a summary table.
func RunTaskBench(cfg TaskBenchConfig, out io.Writer) error {
	cfg = cfg.withDefaults()
	rate := calibrateSpin()
	fmt.Fprintf(out, "TASKBENCH width=%d depth=%d pes=%d workers=%d seed=%#x spin=%.0f iters/us\n",
		cfg.Width, cfg.Depth, cfg.PEs, cfg.Workers, cfg.Seed, rate*1e3)
	table := NewTable("TASKBENCH dependency-pattern matrix", "cell", "value")
	prevProcs := stdruntime.GOMAXPROCS(0)
	defer stdruntime.GOMAXPROCS(prevProcs)
	for _, pattern := range cfg.Patterns {
		g, err := buildTaskGraph(pattern, cfg.Width, cfg.Depth, cfg.Seed)
		if err != nil {
			return err
		}
		cross := g.crossPEEdges(cfg.PEs)
		for _, grain := range cfg.Grains {
			for _, procs := range cfg.Procs {
				stdruntime.GOMAXPROCS(procs)
				res, err := runTaskCell(g, grain, cfg.PEs, cfg.Workers, cfg.Reps, rate)
				if err != nil {
					return err
				}
				if res.doubles != 0 {
					return fmt.Errorf("taskbench: %s: %d tasks ran more than once", pattern, res.doubles)
				}
				var ran int64
				for _, n := range res.ranPE {
					ran += n
				}
				if ran != int64(g.total) {
					return fmt.Errorf("taskbench: %s: ran %d of %d tasks", pattern, ran, g.total)
				}
				ktps := float64(g.total) / res.wall.Seconds() / 1e3
				capacity := procs
				if m := cfg.PEs * cfg.Workers; m < capacity {
					capacity = m
				}
				ideal := time.Duration(int64(g.total) * grain.Nanoseconds() / int64(capacity))
				eff := 100 * float64(ideal) / float64(res.wall)
				cell := fmt.Sprintf("%s/%s/p%d", pattern, grain, procs)
				table.Add(cell, "ktasks_per_s", ktps)
				table.Add(cell, "eff_pct", eff)
				fmt.Fprintf(out, "TASKBENCH %-8s grain=%-6s procs=%-2d %9.1f ktasks/s  eff %5.1f%%  wall %8.2fms  tasks=%d xpe=%d\n",
					pattern, grain, procs, ktps, eff, float64(res.wall.Microseconds())/1e3, g.total, cross)
			}
		}
	}
	stdruntime.GOMAXPROCS(prevProcs)
	table.Render(out)
	if cfg.CSV {
		table.RenderCSV(out)
	}
	return nil
}

// ----- scheduler-knob tuning sweeps ------------------------------------------

// RunTaskBenchTune closes the scheduler-tuning loop (ISSUE 9): it sweeps
// the three measured knobs over representative Task Bench cells and
// prints per-value throughput, so the defaults in internal/scheduler and
// internal/array are chosen from data rather than guessed. Knobs are
// restored to their entry values afterwards.
//
// Sweeps (all at GOMAXPROCS=4, where contention exists to relieve):
//
//	steal batch      random pattern, 1µs grain — steal-heavy, fine-grained
//	injector shards  random pattern, 1µs grain, 8 workers/PE — submit-heavy
//	chunk factor     DistIter ForEach over 1<<15 elements, ~1µs bodies
func RunTaskBenchTune(seed int64, out io.Writer) error {
	if seed == 0 {
		seed = 0x7B
	}
	rate := calibrateSpin()
	prevProcs := stdruntime.GOMAXPROCS(0)
	stdruntime.GOMAXPROCS(4)
	defer stdruntime.GOMAXPROCS(prevProcs)

	g, err := buildTaskGraph("random", 256, 16, seed)
	if err != nil {
		return err
	}
	run := func(workers int) (float64, error) {
		res, err := runTaskCell(g, time.Microsecond, 2, workers, 3, rate)
		if err != nil {
			return 0, err
		}
		return float64(g.total) / res.wall.Seconds() / 1e3, nil
	}

	fmt.Fprintln(out, "TUNE steal batch (random/1us/p4, 2x2):")
	oldSteal := scheduler.StealBatch()
	for _, b := range []int{4, 8, 16, 32, 64, 128} {
		scheduler.SetStealBatch(b)
		ktps, err := run(2)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  steal_batch=%-4d %9.1f ktasks/s\n", b, ktps)
	}
	scheduler.SetStealBatch(oldSteal)

	fmt.Fprintln(out, "TUNE injector shard cap (random/1us/p4, 2x8):")
	oldShards := scheduler.InjectorShardCap()
	for _, s := range []int{1, 2, 4, 8, 16} {
		scheduler.SetInjectorShardCap(s)
		ktps, err := run(8)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  inj_shards=%-4d %9.1f ktasks/s\n", s, ktps)
	}
	scheduler.SetInjectorShardCap(oldShards)

	fmt.Fprintln(out, "TUNE iterator chunk factor (DistIter ForEach, 1<<15 elems, ~1us body, 2x4):")
	oldChunk := array.ChunkTasksPerWorker()
	spin := spinItersFor(time.Microsecond, rate)
	for _, f := range []int{1, 2, 4, 8, 16, 32} {
		array.SetChunkTasksPerWorker(f)
		wall, err := runIterCell(spin)
		if err != nil {
			return err
		}
		const elems = 1 << 15
		fmt.Fprintf(out, "  chunk_factor=%-3d %9.1f kelems/s\n", f,
			float64(elems)/wall.Seconds()/1e3)
	}
	array.SetChunkTasksPerWorker(oldChunk)
	return nil
}

// runIterCell times one DistIter ForEach pass (best of 3) with the
// current chunk factor.
func runIterCell(spinIters int64) (time.Duration, error) {
	var best time.Duration
	err := runtime.Run(runtime.Config{PEs: 2, WorkersPerPE: 4, Lamellae: runtime.LamellaeShmem}, func(w *runtime.World) {
		a := array.NewAtomicArray[uint64](w.Team(), 1<<15, array.Block)
		for rep := 0; rep < 3; rep++ {
			w.Barrier()
			start := time.Now()
			if _, err := a.DistIter().ForEach(func(uint64) { spinKernel(spinIters) }).Await(); err != nil {
				panic(err)
			}
			w.Barrier()
			if el := time.Since(start); w.MyPE() == 0 && (best == 0 || el < best) {
				best = el
			}
		}
	})
	return best, err
}

// ParsePatterns validates a comma-separated pattern subset.
func ParsePatterns(s string) ([]string, error) {
	if s == "" {
		return nil, nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		found := sort.SearchStrings(sortedPatterns, p)
		if found == len(sortedPatterns) || sortedPatterns[found] != p {
			return nil, fmt.Errorf("taskbench: unknown pattern %q", p)
		}
		out = append(out, p)
	}
	return out, nil
}

var sortedPatterns = func() []string {
	s := append([]string(nil), TaskBenchPatterns...)
	sort.Strings(s)
	return s
}()
