package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func rawEvents(lines ...string) []json.RawMessage {
	out := make([]json.RawMessage, len(lines))
	for i, l := range lines {
		out[i] = json.RawMessage(l)
	}
	return out
}

// The timeline validator must accept a complete flow graph and count its
// flows.
func TestValidateTraceFlowsAccepts(t *testing.T) {
	evs := rawEvents(
		`{"name":"am.issue","ph":"i","pid":0,"ts":1,"args":{"dst":1,"req":5,"flow":3,"parent":0}}`,
		`{"name":"am.flow","cat":"am","ph":"s","id":3,"pid":0,"ts":1}`,
		`{"name":"am.encode","ph":"X","pid":0,"ts":2,"dur":1,"args":{"dst":1,"flow":3}}`,
		`{"name":"am.exec","ph":"X","pid":1,"ts":10,"dur":2,"args":{"src":0,"flow":3}}`,
		`{"name":"am.flow","cat":"am","ph":"t","id":3,"pid":1,"ts":10}`,
		`{"name":"am.return","ph":"i","pid":0,"ts":20,"args":{"from":1,"req":5,"flow":3}}`,
		`{"name":"am.flow","cat":"am","ph":"f","bp":"e","id":3,"pid":0,"ts":20}`,
		`{"name":"task.run","ph":"X","pid":0,"ts":0,"dur":1}`,
	)
	flows, err := validateTraceFlows(evs)
	if err != nil {
		t.Fatal(err)
	}
	if flows != 1 {
		t.Errorf("flows = %d, want 1", flows)
	}
}

// A "t"/"f" step without a matching "s" is a dangling reference and must
// be rejected — as must a span claiming a flow no issue opened.
func TestValidateTraceFlowsRejectsDangling(t *testing.T) {
	_, err := validateTraceFlows(rawEvents(
		`{"name":"am.flow","cat":"am","ph":"t","id":9,"pid":1,"ts":10}`,
	))
	if err == nil || !strings.Contains(err.Error(), "dangling flow reference") {
		t.Errorf("dangling step not rejected: %v", err)
	}

	_, err = validateTraceFlows(rawEvents(
		`{"name":"am.exec","ph":"X","pid":1,"ts":10,"dur":2,"args":{"src":0,"flow":77}}`,
	))
	if err == nil || !strings.Contains(err.Error(), "dangling span reference") {
		t.Errorf("dangling span arg not rejected: %v", err)
	}
}

// End to end: the critical-path mode must produce a decomposition whose
// segments are all present, from a timeline that passes flow validation.
func TestCriticalPathEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a traced world")
	}
	var out bytes.Buffer
	path := t.TempDir() + "/critpath.json"
	if err := RunCriticalPath(2, 2, 64, path, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, seg := range []string{"queue", "encode", "wire", "exec", "return", "total", "complete flows"} {
		if !strings.Contains(got, seg) {
			t.Errorf("critical-path output missing %q:\n%s", seg, got)
		}
	}
}
