package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/fabric"
	"repro/internal/kv"
	"repro/internal/runtime"
	"repro/internal/telemetry"
)

// KV serving benchmark (ISSUE 10): every PE drives an open-loop Zipfian
// mix of Get/Put/FetchAdd against the sharded store while being a shard
// server itself, on three fabrics — clean, 5% drop/dup/reorder, and a
// mid-run partition-and-heal. Latency is coordinated-omission-safe
// (measured from each request's intended send time), so the reported
// p999 contains the queueing a fault-induced stall imposes, and failed
// ops are counted as SLO violations instead of polluting the tail.
//
// Each fabric runs in two modes sharing this harness: "direct" disables
// the array-op aggregation layer (AggBufSize < 0, the pre-aggregation
// seed behavior) and "agg" uses the default aggregating path — the
// seed-vs-new A/B for bench_results.txt §KV.

// KVConfig controls the KV serving benchmark.
type KVConfig struct {
	// Keys in the store (default 4096).
	Keys int
	// Requests per driving PE (default 6000).
	Requests int
	// Rate is each PE's offered load in req/s (default 4000).
	Rate float64
	// Skew is the Zipf exponent (default 0.99).
	Skew float64
	// Backend selects the shard array type (default atomic).
	Backend kv.Backend
	// PEs in the world (default 4).
	PEs int
	// WorkersPerPE (default 2).
	Workers int
	// CSV additionally emits CSV.
	CSV bool
}

func (c KVConfig) withDefaults() KVConfig {
	if c.Keys <= 0 {
		c.Keys = 4096
	}
	if c.Requests <= 0 {
		c.Requests = 6000
	}
	if c.Rate == 0 {
		c.Rate = 4000
	}
	if c.Skew == 0 {
		c.Skew = 0.99
	}
	if c.PEs <= 0 {
		c.PEs = 4
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	return c
}

// kvFabric is one row group: a fault plan plus an optional mid-run
// controller (the partition row flips links while traffic is in flight).
type kvFabric struct {
	name string
	plan func() *fabric.FaultPlan
	// control, when set, runs concurrently with the workload: it receives
	// a channel closed when all PEs have started driving and must close
	// the returned-at-construction healed channel once the fabric is
	// repaired (PEs rendezvous only after that).
	control func(plan *fabric.FaultPlan, started <-chan struct{}, healed chan<- struct{})
	// timeout overrides DeliveryTimeout so partitioned ops fail fast
	// enough to show up as SLO violations within the run.
	timeout time.Duration
}

// RunKV produces the KV serving table.
func RunKV(cfg KVConfig, out io.Writer) error {
	cfg = cfg.withDefaults()

	// The partition holds 0↔1 down for several DeliveryTimeouts mid-run,
	// then heals; requests crossing the dead link surface DeliveryErrors
	// (SLO violations) and the post-heal tail shows the repair.
	partitionHold := 500 * time.Millisecond
	partitionAfter := time.Duration(float64(cfg.Requests)/cfg.Rate/4*float64(time.Second)) + 50*time.Millisecond

	fabrics := []kvFabric{
		{name: "clean", plan: func() *fabric.FaultPlan { return fabric.NewFaultPlan(0) }},
		{name: "faulted5", plan: func() *fabric.FaultPlan {
			return fabric.NewFaultPlan(41).SetDefault(fabric.LinkFaults{
				DropRate: 0.05, DupRate: 0.05, ReorderRate: 0.05, Delay: 200 * time.Microsecond})
		}},
		{name: "partition", plan: func() *fabric.FaultPlan { return fabric.NewFaultPlan(9) },
			timeout: 150 * time.Millisecond,
			control: func(plan *fabric.FaultPlan, started <-chan struct{}, healed chan<- struct{}) {
				<-started
				time.Sleep(partitionAfter)
				plan.Partition(0, 1, true)
				time.Sleep(partitionHold)
				plan.Heal(0, 1, true)
				close(healed)
			}},
	}
	modes := []struct {
		name   string
		aggBuf int
	}{
		{"direct", -1}, // pre-aggregation dispatch: the seed behavior
		{"agg", 0},     // default aggregating path
	}

	table := NewTable("KV serving: open-loop Zipfian mix, per-fabric SLO", "row", "value")
	for _, f := range fabrics {
		for _, m := range modes {
			row, err := runKVCell(cfg, f, m.aggBuf)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", f.name, m.name, err)
			}
			name := f.name + "/" + m.name
			get := row.hists[kv.OpGet].Summary()
			put := row.hists[kv.OpPut].Summary()
			fadd := row.hists[kv.OpFetchAdd].Summary()
			table.Add(name, "get_p50_us", us(get.P50))
			table.Add(name, "get_p99_us", us(get.P99))
			table.Add(name, "get_p999_us", us(get.P999))
			table.Add(name, "put_p99_us", us(put.P99))
			table.Add(name, "fadd_p99_us", us(fadd.P99))
			table.Add(name, "offered_kreq_s", row.offered/1e3)
			table.Add(name, "achieved_kreq_s", row.achieved/1e3)
			table.Add(name, "slo_violations", float64(row.errors))
			ledger := "ok"
			if len(row.violations) > 0 {
				ledger = "VIOLATED"
			}
			fmt.Fprintf(out, "KV %-20s get p50=%6.0fus p99=%7.0fus p999=%7.0fus  %6.1f/%.1f kreq/s  viol=%-5d ledger=%s\n",
				name, us(get.P50), us(get.P99), us(get.P999),
				row.achieved/1e3, row.offered/1e3, row.errors, ledger)
			for _, v := range row.violations {
				fmt.Fprintf(out, "KV %s LEDGER %s\n", name, v)
			}
			if len(row.violations) > 0 {
				return fmt.Errorf("%s: %d ledger violations (lost or phantom updates)", name, len(row.violations))
			}
			if f.name != "partition" && row.errors > 0 {
				return fmt.Errorf("%s: %d SLO violations on a fabric the reliable layer should repair", name, row.errors)
			}
		}
	}
	table.Render(out)
	if cfg.CSV {
		table.RenderCSV(out)
	}
	return nil
}

func us(d time.Duration) float64 { return float64(d) / 1e3 }

// kvCell is one fabric×mode measurement, merged across PEs.
type kvCell struct {
	hists      [kv.NumOpClasses]*telemetry.Histogram
	offered    float64 // aggregate req/s across PEs
	achieved   float64
	errors     uint64
	violations []string
}

func runKVCell(cfg KVConfig, f kvFabric, aggBuf int) (*kvCell, error) {
	plan := f.plan()
	rcfg := runtime.Config{
		PEs:           cfg.PEs,
		WorkersPerPE:  cfg.Workers,
		Lamellae:      runtime.LamellaeShmem,
		Faults:        plan,
		RetryInterval: 2 * time.Millisecond,
		AggBufSize:    aggBuf,
	}
	if f.timeout > 0 {
		rcfg.DeliveryTimeout = f.timeout
		rcfg.RetryBackoffMax = 10 * time.Millisecond
	}

	var healed chan struct{}
	started := make(chan struct{})
	var startOnce sync.Once
	if f.control != nil {
		healed = make(chan struct{})
		go f.control(plan, started, healed)
	}

	cell := &kvCell{}
	for c := range cell.hists {
		cell.hists[c] = new(telemetry.Histogram)
	}
	var mu sync.Mutex
	results := make([]*kv.Result, cfg.PEs)
	err := runtime.Run(rcfg, func(w *runtime.World) {
		s := kv.New(w.Team(), cfg.Keys, cfg.Backend)
		defer s.Drop()
		w.Barrier()
		startOnce.Do(func() { close(started) })
		res := kv.Run(s, kv.Workload{
			Requests: cfg.Requests,
			Rate:     cfg.Rate,
			Skew:     cfg.Skew,
			Seed:     uint64(0xBA1E0 + w.MyPE()),
			PE:       w.MyPE(),
			NPEs:     w.NumPEs(),
		})
		if healed != nil {
			// PEs must not enter a collective while the partition can
			// outlive DeliveryTimeout — rendezvous on the repaired fabric.
			<-healed
		}
		s.Flush()
		w.WaitAll()
		w.Barrier()
		mu.Lock()
		results[w.MyPE()] = res
		mu.Unlock()
		w.Barrier()
		mu.Lock()
		ledger := kv.MergeLedgers(results)
		mu.Unlock()
		bad := kv.VerifyLocal(s, ledger)
		mu.Lock()
		cell.violations = append(cell.violations, bad...)
		mu.Unlock()
		w.Barrier()
	})
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		if r == nil {
			return nil, fmt.Errorf("a PE reported no result")
		}
		for c := range cell.hists {
			cell.hists[c].Merge(r.Hists[c])
		}
		cell.offered += r.Offered
		cell.achieved += r.Achieved
		cell.errors += r.Errors
	}
	return cell, nil
}
