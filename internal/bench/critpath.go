package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"repro/internal/array"
	"repro/internal/fabric"
	"repro/internal/runtime"
	"repro/internal/telemetry"
)

// Critical-path mode: run an aggregated fetch-add workload with causal
// tracing on, export the flow-linked timeline, then re-read it and
// decompose every complete AM round trip into the segments an operator
// actually tunes against:
//
//	queue   time the op sat in the aggregation buffer before encoding
//	encode  serializing the batch into the wire envelope
//	wire    departure to remote execution start, including any
//	        retransmissions the reliable layer had to pay
//	exec    remote handler execution
//	return  remote completion back to the origin's callback resolve
//
// Everything is derived from the exported Perfetto JSON, not from
// internal counters — so this doubles as an end-to-end proof that the
// flow links written by the exporter are complete enough to reconstruct
// causality across PEs.

// cpEvent is the subset of a Chrome trace event the analyzer reads.
// ts/dur are microseconds (fractional, nanosecond resolution).
type cpEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Pid  int     `json:"pid"`
	TS   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Args struct {
		Dst    int    `json:"dst"`
		Src    int    `json:"src"`
		From   int    `json:"from"`
		Flow   uint64 `json:"flow"`
		Parent uint64 `json:"parent"`
		Peer   int    `json:"peer"`
		Seq    int64  `json:"seq"`
	} `json:"args"`
}

// cpFlow accumulates the per-flow spans as the event stream is scanned.
type cpFlow struct {
	issuePE int
	dst     int
	issueTS float64
	haveIss bool

	encTS   float64
	encDur  float64
	haveEnc bool

	execTS   float64
	execDur  float64
	haveExec bool

	retTS   float64
	haveRet bool

	retransmits int
}

// cpSegments is one completed flow's decomposition, all in microseconds.
type cpSegments struct {
	flow                           uint64
	queue, encode, wire, exec, ret float64
	total                          float64
	retransmits                    int
}

// RunCriticalPath drives the lamellar-trace -critical-path mode: an
// aggregated fetch-add workload (every PE fetch-adding into its right
// neighbor's block partition), traced, exported to timeline, and
// decomposed. opsPerPE is the number of awaited fetch-adds each PE
// issues.
func RunCriticalPath(pes, workers, opsPerPE int, timeline string, out io.Writer) error {
	if pes < 2 {
		pes = 2
	}
	if workers < 1 {
		workers = 1
	}
	if opsPerPE < 1 {
		opsPerPE = 1
	}
	tc, owned := telemetry.StartGlobal(pes, 0)
	if owned {
		defer telemetry.StopGlobal(tc)
	}
	cfg := runtime.Config{
		PEs:          pes,
		WorkersPerPE: workers,
		Lamellae:     runtime.LamellaeSim,
		Cost:         fabric.DefaultCostModel(),
		Telemetry:    true,
	}
	const blk = 64
	err := runtime.Run(cfg, func(w *runtime.World) {
		a := array.NewAtomicArray[uint64](w.Team(), pes*blk, array.Block)
		defer a.Drop()
		w.Barrier()
		// Fetch-add into the right neighbor's partition, each awaited to
		// completion so every round trip is a full issue→return flow.
		idx := ((w.MyPE() + 1) % pes) * blk
		for i := 0; i < opsPerPE; i++ {
			if _, err := runtime.BlockOn(w, a.FetchAdd(idx+i%blk, 1)); err != nil {
				panic(err)
			}
		}
		w.Barrier()
	})
	if err != nil {
		return err
	}
	nev, nflows, err := writeTimelineValidated(tc, timeline)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "critical path: %d PEs x %d workers, %d awaited fetch-adds/PE\n", pes, workers, opsPerPE)
	fmt.Fprintf(out, "timeline: %s (%d events, %d flows)\n", timeline, nev, nflows)
	return AnalyzeCriticalPath(timeline, out)
}

// AnalyzeCriticalPath reads a flow-linked timeline JSON previously
// written by the exporter and renders the round-trip decomposition.
func AnalyzeCriticalPath(timeline string, out io.Writer) error {
	raw, err := os.ReadFile(timeline)
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("bench: %s is not valid trace JSON: %w", timeline, err)
	}

	flows := make(map[uint64]*cpFlow)
	// wire.send / wire.retry departures keyed by (sender PE, peer PE).
	type wireKey struct{ pe, peer int }
	type wireEv struct {
		ts  float64
		seq int64
	}
	sends := make(map[wireKey][]wireEv)
	retries := make(map[wireKey][]wireEv)

	get := func(id uint64) *cpFlow {
		f := flows[id]
		if f == nil {
			f = &cpFlow{}
			flows[id] = f
		}
		return f
	}
	for _, r := range doc.TraceEvents {
		var ev cpEvent
		if err := json.Unmarshal(r, &ev); err != nil {
			return fmt.Errorf("bench: unparseable trace event in %s: %w", timeline, err)
		}
		switch ev.Name {
		case "am.issue":
			if ev.Args.Flow != 0 {
				f := get(ev.Args.Flow)
				f.issuePE, f.dst, f.issueTS, f.haveIss = ev.Pid, ev.Args.Dst, ev.TS, true
			}
		case "am.encode":
			if ev.Args.Flow != 0 {
				f := get(ev.Args.Flow)
				f.encTS, f.encDur, f.haveEnc = ev.TS, ev.Dur, true
			}
		case "am.exec":
			if ev.Args.Flow != 0 {
				f := get(ev.Args.Flow)
				f.execTS, f.execDur, f.haveExec = ev.TS, ev.Dur, true
			}
		case "am.return":
			if ev.Args.Flow != 0 {
				f := get(ev.Args.Flow)
				f.retTS, f.haveRet = ev.TS, true
			}
		case "wire.send":
			k := wireKey{ev.Pid, ev.Args.Peer}
			sends[k] = append(sends[k], wireEv{ev.TS, ev.Args.Seq})
		case "wire.retry":
			k := wireKey{ev.Pid, ev.Args.Peer}
			retries[k] = append(retries[k], wireEv{ev.TS, ev.Args.Seq})
		}
	}
	for k := range sends {
		s := sends[k]
		sort.Slice(s, func(a, b int) bool { return s[a].ts < s[b].ts })
	}

	var segs []cpSegments
	skipped := 0
	for id, f := range flows {
		if !(f.haveIss && f.haveEnc && f.haveExec && f.haveRet) {
			skipped++ // ring wraparound or a local (non-wire) flow
			continue
		}
		encEnd := f.encTS + f.encDur
		// Match the frame departure: the first wire.send on the
		// origin→dst link at or after encode completion (small epsilon
		// for clock granularity). Retransmits of that seq are then
		// attributable to this flow's wire segment.
		if dep := sends[wireKey{f.issuePE, f.dst}]; len(dep) > 0 {
			i := sort.Search(len(dep), func(i int) bool { return dep[i].ts >= encEnd-0.5 })
			if i < len(dep) {
				seq := dep[i].seq
				for _, r := range retries[wireKey{f.issuePE, f.dst}] {
					if r.seq == seq {
						f.retransmits++
					}
				}
			}
		}
		s := cpSegments{
			flow:        id,
			queue:       f.encTS - f.issueTS,
			encode:      f.encDur,
			wire:        f.execTS - encEnd,
			exec:        f.execDur,
			ret:         f.retTS - (f.execTS + f.execDur),
			total:       f.retTS - f.issueTS,
			retransmits: f.retransmits,
		}
		segs = append(segs, s)
	}
	if len(segs) == 0 {
		return fmt.Errorf("bench: %s contains no complete flows to decompose (skipped %d partial)", timeline, skipped)
	}

	fmt.Fprintf(out, "\n# AM round-trip critical path (%d complete flows, %d partial skipped)\n", len(segs), skipped)
	fmt.Fprintf(out, "%-8s %10s %10s %10s %10s %8s\n", "segment", "mean", "p50", "p90", "max", "share")
	totalMean := cpStat(segs, func(s cpSegments) float64 { return s.total }).mean
	for _, seg := range []struct {
		name string
		get  func(cpSegments) float64
	}{
		{"queue", func(s cpSegments) float64 { return s.queue }},
		{"encode", func(s cpSegments) float64 { return s.encode }},
		{"wire", func(s cpSegments) float64 { return s.wire }},
		{"exec", func(s cpSegments) float64 { return s.exec }},
		{"return", func(s cpSegments) float64 { return s.ret }},
		{"total", func(s cpSegments) float64 { return s.total }},
	} {
		st := cpStat(segs, seg.get)
		share := 0.0
		if totalMean > 0 {
			share = 100 * st.mean / totalMean
		}
		fmt.Fprintf(out, "%-8s %9.1fus %9.1fus %9.1fus %9.1fus %7.1f%%\n",
			seg.name, st.mean, st.p50, st.p90, st.max, share)
	}

	nretrans := 0
	for _, s := range segs {
		nretrans += s.retransmits
	}
	fmt.Fprintf(out, "\nretransmissions attributed to flows: %d\n", nretrans)

	sort.Slice(segs, func(a, b int) bool { return segs[a].total > segs[b].total })
	n := len(segs)
	if n > 5 {
		n = 5
	}
	fmt.Fprintf(out, "\nslowest round trips:\n")
	for _, s := range segs[:n] {
		fmt.Fprintf(out, "  flow %-6d total %8.1fus = queue %6.1f + encode %5.1f + wire %7.1f + exec %6.1f + return %6.1f  (retrans %d)\n",
			s.flow, s.total, s.queue, s.encode, s.wire, s.exec, s.ret, s.retransmits)
	}
	return nil
}

type cpStatR struct{ mean, p50, p90, max float64 }

func cpStat(segs []cpSegments, get func(cpSegments) float64) cpStatR {
	vals := make([]float64, len(segs))
	sum := 0.0
	for i, s := range segs {
		vals[i] = get(s)
		sum += vals[i]
	}
	sort.Float64s(vals)
	q := func(p float64) float64 {
		if len(vals) == 0 {
			return 0
		}
		i := int(math.Ceil(p*float64(len(vals)))) - 1
		if i < 0 {
			i = 0
		}
		return vals[i]
	}
	return cpStatR{
		mean: sum / float64(len(vals)),
		p50:  q(0.50),
		p90:  q(0.90),
		max:  vals[len(vals)-1],
	}
}
