package bench

import (
	stdruntime "runtime"

	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/bale/kernels"
	"repro/internal/fabric"
	"repro/internal/runtime"
)

// kernelTimer implements the kernels.Timing hooks: the first Start after
// the opening barrier snapshots, the last Stop after the closing barrier
// closes the window.
type kernelTimer struct {
	prov    *fabric.Provider
	pes     int
	mu      sync.Mutex
	started bool
	stopped int
	snap    Snapshot
	win     Window
	done    chan struct{}
}

func newKernelTimer(prov *fabric.Provider, pes int) *kernelTimer {
	return &kernelTimer{prov: prov, pes: pes, done: make(chan struct{})}
}

func (k *kernelTimer) timing() *kernels.Timing {
	return &kernels.Timing{
		Start: func() {
			k.mu.Lock()
			if !k.started {
				k.started = true
				stdruntime.GC() // setup garbage must not land in the window
				k.snap = Take(k.prov)
			}
			k.mu.Unlock()
		},
		Stop: func() {
			k.mu.Lock()
			k.stopped++
			if k.stopped == k.pes {
				k.win = Since(k.prov, k.snap)
				close(k.done)
			}
			k.mu.Unlock()
		},
	}
}

// KernelFigConfig controls the Fig. 3/4/5 sweeps. The x axis is *cores*
// (the paper's unit): OpenSHMEM-based baselines run one PE per core, the
// Lamellar implementations one PE per 4 cores with 4 worker threads (the
// paper's best configuration: 1 PE per NUMA node, 1 thread per core), and
// Chapel likewise uses a multi-core locale. Workloads are specified per
// core, exactly as in §IV-B.
type KernelFigConfig struct {
	// PECounts is the x axis in cores (the paper's core counts, scaled
	// down).
	PECounts []int
	// Impls selects series; empty means all registered implementations.
	Impls []string
	// Params is the per-CORE workload (scaled down by default).
	Params kernels.Params
	// WorkersPerPE overrides the Lamellar/Chapel threads-per-PE (default
	// 4, the paper's best configuration).
	WorkersPerPE int
	// RackSize enables the cross-rack latency factor above this many
	// cores per rack (0 disables; Fig. 5 discusses the topology effect).
	RackSize int
	// CSV additionally emits CSV.
	CSV bool
}

// WithDefaults fills scaled-down defaults.
func (c KernelFigConfig) WithDefaults() KernelFigConfig {
	if len(c.PECounts) == 0 {
		c.PECounts = []int{4, 8, 16, 32, 64}
	}
	if c.WorkersPerPE <= 0 {
		c.WorkersPerPE = 4
	}
	c.Params = c.Params.WithDefaults()
	return c
}

// coresPerPE maps an implementation to its per-PE core count: the
// multithreaded runtimes (Lamellar, Chapel) pack multiple cores per PE,
// the OpenSHMEM libraries run one PE per core.
func coresPerPE(name string, cores, workers int) int {
	switch name {
	case "lamellar-am", "lamellar-array", "chapel",
		"array-darts", "am-dart", "am-dart-opt", "am-push":
		if cores >= workers {
			return workers
		}
		return 1
	default:
		return 1
	}
}

// scalePerCore converts per-core workload parameters to per-PE values for
// a PE spanning cpp cores (the paper keeps per-core work constant across
// configurations).
func scalePerCore(p kernels.Params, cpp int) kernels.Params {
	p.TablePerPE *= cpp
	p.UpdatesPerPE *= cpp
	p.DartsPerPE *= cpp
	return p
}

// runOneKernel executes one (implementation, core count) cell and returns
// the measured window.
func runOneKernel(fn kernels.KernelFunc, name string, cores int, cfg KernelFigConfig) (Window, kernels.Params, error) {
	cpp := coresPerPE(name, cores, cfg.WorkersPerPE)
	pes := cores / cpp
	if pes < 1 {
		pes = 1
	}
	params := scalePerCore(cfg.Params, cpp)
	cost := fabric.DefaultCostModel()
	if cfg.RackSize > 0 {
		cost.RackSize = cfg.RackSize / cpp // racks hold cores, not PEs
		if cost.RackSize < 1 {
			cost.RackSize = 1
		}
	}
	workers := 1 // OpenSHMEM baselines: the PE goroutine does the work
	if cpp > 1 {
		workers = cpp
	}
	rcfg := runtime.Config{
		PEs:            pes,
		WorkersPerPE:   workers,
		Lamellae:       runtime.LamellaeSim,
		Cost:           cost,
		ArrayBatchSize: params.BufItems,
	}
	var timer *kernelTimer
	err := runtime.Run(rcfg, func(w *runtime.World) {
		if w.MyPE() == 0 {
			timer = newKernelTimer(w.Provider(), pes)
		}
		w.Barrier() // timer published via the shared provider barrier
		t := w.PeerWorld(0).SharedExtState("bench.timer", func() any { return timer }).(*kernelTimer)
		// warmup pass (untimed): heap growth, page faults and code paths
		// settle before the measured pass
		if kerr := fn(w, params, nil); kerr != nil {
			panic(kerr)
		}
		w.Barrier()
		if kerr := fn(w, params, t.timing()); kerr != nil {
			panic(kerr)
		}
	})
	if err != nil {
		return Window{}, params, err
	}
	if timer == nil || timer.stopped < pes {
		return Window{}, params, fmt.Errorf("bench: kernel timing incomplete")
	}
	win := timer.win
	// CPU normalization is per *core*: a multithreaded PE spans cpp cores.
	win.PEs = pes * workers
	return win, params, nil
}

func implNames(m map[string]kernels.KernelFunc, want []string) []string {
	if len(want) > 0 {
		return want
	}
	var names []string
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// RunKernelFig produces Fig. 3 ("histo", MUPS), Fig. 4 ("ig", MUPS) or
// Fig. 5 ("randperm", seconds).
func RunKernelFig(fig string, cfg KernelFigConfig, out io.Writer) error {
	cfg = cfg.WithDefaults()
	var impls map[string]kernels.KernelFunc
	var table *Table
	rate := true
	switch fig {
	case "histo":
		impls = kernels.Histogram
		table = NewTable("FIG3 Histogram", "cores", "MUPS (higher is better)")
	case "ig":
		impls = kernels.IndexGather
		table = NewTable("FIG4 IndexGather", "cores", "MUPS (higher is better)")
	case "randperm":
		impls = kernels.Randperm
		table = NewTable("FIG5 Randperm", "cores", "sim-seconds (lower is better)")
		rate = false
	default:
		return fmt.Errorf("bench: unknown kernel figure %q", fig)
	}
	for _, cores := range cfg.PECounts {
		for _, name := range implNames(impls, cfg.Impls) {
			fn, ok := impls[name]
			if !ok {
				return fmt.Errorf("bench: unknown implementation %q", name)
			}
			win, _, err := runOneKernel(fn, name, cores, cfg)
			if err != nil {
				return fmt.Errorf("%s/%s@%d cores: %w", fig, name, cores, err)
			}
			x := fmt.Sprintf("%d", cores)
			if rate {
				// ops are defined per core, so totals match across configs
				ops := uint64(cfg.Params.UpdatesPerPE) * uint64(cores)
				table.Add(x, name, win.RateMPerSec(ops))
			} else {
				table.Add(x, name, win.SimNs()/1e9)
			}
			fmt.Fprintf(out, "  done %s %-14s cores=%-3d  wall=%.2fs cpu=%.1fms/pe net=%.1fms msgs=%d\n",
				fig, name, cores, float64(win.WallNs)/1e9,
				float64(win.CPUNs)/float64(win.PEs)/1e6, float64(win.NetMaxNs)/1e6, win.Msgs)
		}
	}
	table.Render(out)
	if cfg.CSV {
		table.RenderCSV(out)
	}
	return nil
}
