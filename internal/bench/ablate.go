package bench

import (
	"fmt"
	"io"

	"repro/internal/bale/kernels"
	"repro/internal/fabric"
	"repro/internal/runtime"
)

// Ablations for the design choices the paper discusses in §IV.

// RunAblateAgg sweeps the runtime aggregation threshold (the paper notes
// the 100 KB default and that 512 KB–1 MB fit their system better) using
// the hand-aggregated AM histogram.
func RunAblateAgg(thresholds []int, p kernels.Params, out io.Writer) error {
	if len(thresholds) == 0 {
		thresholds = []int{4 << 10, 16 << 10, 64 << 10, 100_000, 256 << 10, 1 << 20, 4 << 20}
	}
	p = p.WithDefaults()
	table := NewTable("ABL1 aggregation threshold", "agg_bytes", "MUPS")
	const pes = 8
	for _, th := range thresholds {
		rcfg := runtime.Config{
			PEs:               pes,
			WorkersPerPE:      2,
			Lamellae:          runtime.LamellaeSim,
			AggThresholdBytes: th,
			ArrayBatchSize:    p.BufItems,
		}
		win, err := runInstrumented(rcfg, kernels.HistoLamellarAM, p, pes*rcfg.WorkersPerPE)
		if err != nil {
			return err
		}
		table.Add(fmt.Sprintf("%d", th), "lamellar-am", win.RateMPerSec(uint64(p.UpdatesPerPE)*pes))
	}
	table.Render(out)
	return nil
}

// RunAblateBatch sweeps the array-operation sub-batch size (the paper caps
// batches at 10 000 operations) using the AtomicArray histogram.
func RunAblateBatch(batches []int, p kernels.Params, out io.Writer) error {
	if len(batches) == 0 {
		batches = []int{100, 500, 1000, 5000, 10_000, 50_000}
	}
	p = p.WithDefaults()
	table := NewTable("ABL2 array sub-batch size", "batch_ops", "MUPS")
	const pes = 8
	for _, b := range batches {
		pb := p
		pb.BufItems = b
		rcfg := runtime.Config{
			PEs:            pes,
			WorkersPerPE:   2,
			Lamellae:       runtime.LamellaeSim,
			ArrayBatchSize: b,
		}
		win, err := runInstrumented(rcfg, kernels.HistoLamellarArray, pb, pes*rcfg.WorkersPerPE)
		if err != nil {
			return err
		}
		table.Add(fmt.Sprintf("%d", b), "lamellar-array", win.RateMPerSec(uint64(p.UpdatesPerPE)*pes))
	}
	table.Render(out)
	return nil
}

// RunAblatePEs trades PEs against workers per PE at a fixed total core
// count (the paper's PEs-per-node sweep: Lamellar was best at 1 PE per
// NUMA node with 4 threads each).
func RunAblatePEs(totalCores int, p kernels.Params, out io.Writer) error {
	if totalCores <= 0 {
		totalCores = 16
	}
	p = p.WithDefaults()
	table := NewTable("ABL3 PEs vs workers per PE", "pes_x_workers", "MUPS")
	for workers := 1; workers <= totalCores; workers *= 2 {
		pes := totalCores / workers
		if pes < 1 {
			break
		}
		rcfg := runtime.Config{
			PEs:            pes,
			WorkersPerPE:   workers,
			Lamellae:       runtime.LamellaeSim,
			ArrayBatchSize: p.BufItems,
		}
		win, err := runInstrumented(rcfg, kernels.HistoLamellarAM, p, totalCores)
		if err != nil {
			return err
		}
		label := fmt.Sprintf("%dx%d", pes, workers)
		table.Add(label, "lamellar-am", win.RateMPerSec(uint64(p.UpdatesPerPE)*uint64(pes)))
	}
	table.Render(out)
	return nil
}

// runInstrumented runs one kernel under a config with the standard timer;
// cores normalizes the CPU share (total worker threads across PEs).
func runInstrumented(rcfg runtime.Config, fn kernels.KernelFunc, p kernels.Params, cores int) (Window, error) {
	if rcfg.Cost == (fabric.CostModel{}) && rcfg.Lamellae == runtime.LamellaeSim {
		rcfg.Cost = fabric.DefaultCostModel()
	}
	var timer *kernelTimer
	err := runtime.Run(rcfg, func(w *runtime.World) {
		if w.MyPE() == 0 {
			timer = newKernelTimer(w.Provider(), w.NumPEs())
		}
		w.Barrier()
		t := w.PeerWorld(0).SharedExtState("bench.timer", func() any { return timer }).(*kernelTimer)
		if kerr := fn(w, p, t.timing()); kerr != nil {
			panic(kerr)
		}
	})
	if err != nil {
		return Window{}, err
	}
	if timer == nil || timer.stopped < rcfg.PEs {
		return Window{}, fmt.Errorf("bench: kernel timing incomplete")
	}
	win := timer.win
	if cores > 0 {
		win.PEs = cores
	}
	return win, nil
}

// RunAblateRack sweeps the cross-rack gap factor for the Randperm
// Exstack baseline at a fixed core count and reports the *modeled
// network time*, isolating the topology mechanism §IV-B3 suspects behind
// the 2048-core penalty ("two racks for 1024 cores, versus four racks
// for 2048 cores"). At this repository's scaled-down core counts the
// end-to-end time is CPU-bound, so the factor shows in the network
// component rather than the total — see EXPERIMENTS.md.
func RunAblateRack(factors []float64, p kernels.Params, out io.Writer) error {
	if len(factors) == 0 {
		factors = []float64{1.0, 1.3, 1.6, 2.0, 3.0}
	}
	p = p.WithDefaults()
	table := NewTable("ABL4 rack-crossing factor", "rack_factor", "net-ms (modeled)")
	const cores = 32
	for _, f := range factors {
		cost := fabric.DefaultCostModel()
		cost.RackSize = 8
		cost.RackFactor = f
		rcfg := runtime.Config{
			PEs:            cores,
			WorkersPerPE:   1,
			Lamellae:       runtime.LamellaeSim,
			Cost:           cost,
			ArrayBatchSize: p.BufItems,
		}
		win, err := runInstrumented(rcfg, kernels.RPExstack, p, cores)
		if err != nil {
			return err
		}
		table.Add(fmt.Sprintf("%.1f", f), "rp-exstack", float64(win.NetMaxNs)/1e6)
	}
	table.Render(out)
	return nil
}
