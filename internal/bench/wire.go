package bench

import (
	"fmt"
	"io"
	stdruntime "runtime"
	"time"

	"repro/internal/fabric"
	"repro/internal/runtime"
	"repro/internal/serde"
)

// Wire flow-control benchmark: sustained one-way AM throughput over the
// reliable wire layer, on a clean fabric and on adversarial ones (drop,
// drop+dup+reorder, reorder). The clean row bounds the no-fault overhead
// of the flow-control machinery; the faulted rows measure how fast the
// retransmission/ack machinery repairs damage — on a lossy link the
// sustained rate is repair-latency-bound, so the AIMD window, adaptive
// RTO, and ack coalescing show up directly as throughput.
//
// The retx column reports the retransmitted share of all wire
// transmissions (retries / (batches + retries)), computed from counters
// present in every revision so seed-vs-new A/B runs use one harness.

// WireConfig controls the wire throughput benchmark.
type WireConfig struct {
	// AMs per timed rep (default 20000).
	AMs int
	// Payload bytes per AM (default 1024).
	Payload int
	// Reps takes the best of this many timed reps (default 5).
	Reps int
	// WorkersPerPE for the 2-PE world (default 2).
	Workers int
	// RetryMS overrides the initial retransmission timeout (0 = config
	// default). Older revisions without an adaptive RTO are only
	// competitive on faulted fabrics when this is tightened.
	RetryMS int
	// CSV additionally emits CSV.
	CSV bool
}

func (c WireConfig) withDefaults() WireConfig {
	if c.AMs <= 0 {
		c.AMs = 20_000
	}
	if c.Payload <= 0 {
		c.Payload = 1024
	}
	if c.Reps <= 0 {
		c.Reps = 5
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	return c
}

// wireBwAM is the benchmark payload: a byte vector applied and dropped
// on the target.
type wireBwAM struct {
	Data []byte
}

func (a *wireBwAM) MarshalLamellar(e *serde.Encoder)         { e.PutBytes(a.Data) }
func (a *wireBwAM) UnmarshalLamellar(d *serde.Decoder) error { a.Data = d.Bytes(); return d.Err() }
func (a *wireBwAM) Exec(ctx *runtime.Context) any            { return nil }

func init() {
	runtime.RegisterAM[wireBwAM]("bench.wireBwAM")
}

// RunWire produces the wire throughput table.
func RunWire(cfg WireConfig, out io.Writer) error {
	cfg = cfg.withDefaults()
	fabrics := []struct {
		name string
		plan *fabric.FaultPlan
	}{
		// Explicit plans opt out of the process-wide LAMELLAR_FAULT_* env
		// so the rows stay what they claim to be.
		{"clean", fabric.NewFaultPlan(0)},
		{"drop5", fabric.NewFaultPlan(40).SetDefault(fabric.LinkFaults{DropRate: 0.05})},
		{"faulted5", fabric.NewFaultPlan(41).SetDefault(fabric.LinkFaults{
			DropRate: 0.05, DupRate: 0.05, ReorderRate: 0.05, Delay: 500 * time.Microsecond})},
		{"reorder10", fabric.NewFaultPlan(42).SetDefault(fabric.LinkFaults{
			ReorderRate: 0.10, Delay: 500 * time.Microsecond})},
	}
	table := NewTable("WIRE sustained AM throughput over the reliable wire", "fabric", "value")
	for _, f := range fabrics {
		rcfg := runtime.Config{
			PEs:          2,
			WorkersPerPE: cfg.Workers,
			Lamellae:     runtime.LamellaeShmem,
			Faults:       f.plan,
		}
		if cfg.RetryMS > 0 {
			rcfg.RetryInterval = time.Duration(cfg.RetryMS) * time.Millisecond
		}
		var kamsPerS, mbPerS, retxPct float64
		err := runtime.Run(rcfg, func(w *runtime.World) {
			if w.MyPE() == 0 {
				payload := make([]byte, cfg.Payload)
				for i := range payload {
					payload[i] = byte(i)
				}
				// Warm: registries, slab classes, connection setup, and the
				// congestion window's slow-start ramp.
				for i := 0; i < cfg.AMs/10+1; i++ {
					w.ExecAM(1, &wireBwAM{Data: payload})
				}
				w.WaitAll()
				// Per-rep counter deltas so the reported retransmit share
				// belongs to the same rep as the reported time — aggregate
				// counters would fold warmup and outlier reps into every row.
				best := time.Duration(0)
				var bestBatches, bestRetries uint64
				prev := w.Stats()
				for rep := 0; rep < cfg.Reps; rep++ {
					w.Barrier()
					stdruntime.GC()
					start := time.Now()
					for i := 0; i < cfg.AMs; i++ {
						w.ExecAM(1, &wireBwAM{Data: payload})
					}
					w.WaitAll()
					el := time.Since(start)
					s := w.Stats()
					if best == 0 || el < best {
						best = el
						bestBatches = s.BatchesSent - prev.BatchesSent
						bestRetries = s.WireRetries - prev.WireRetries
					}
					prev = s
				}
				if tx := bestBatches + bestRetries; tx > 0 {
					retxPct = 100 * float64(bestRetries) / float64(tx)
				}
				kamsPerS = float64(cfg.AMs) / best.Seconds() / 1e3
				mbPerS = float64(cfg.AMs) * float64(cfg.Payload) / best.Seconds() / 1e6
				w.Barrier()
			} else {
				for rep := 0; rep < cfg.Reps; rep++ {
					w.Barrier()
				}
				w.Barrier()
			}
		})
		if err != nil {
			return err
		}
		table.Add(f.name, "k_ams_per_s", kamsPerS)
		table.Add(f.name, "mb_per_s", mbPerS)
		table.Add(f.name, "retx_pct", retxPct)
		fmt.Fprintf(out, "WIRE %-10s %10.1f kAM/s %10.1f MB/s  retx %.2f%%\n",
			f.name, kamsPerS, mbPerS, retxPct)
	}
	table.Render(out)
	if cfg.CSV {
		table.RenderCSV(out)
	}
	return nil
}
