package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"os"
	"sync"
	"time"

	"repro/internal/bale/kernels"
	"repro/internal/fabric"
	"repro/internal/runtime"
	"repro/internal/telemetry"
)

// Trace collects a communication profile from the fabric hook: operation
// counts by kind, a log2 message-size histogram, and a PE×PE traffic
// matrix. It is the runtime-engineer's view of what a kernel does on the
// wire — the data behind statements like "small message all-to-all" in
// §IV-B1 — and backs the lamellar-trace command.
type Trace struct {
	mu      sync.Mutex
	npes    int
	kinds   [4]uint64
	kindsB  [4]uint64
	modeled [4]uint64  // summed modeled ns by op kind
	sizeLog [32]uint64 // histogram buckets: [2^i, 2^(i+1))
	matrix  []uint64   // npes*npes bytes moved
}

// NewTrace creates a collector for a world of npes PEs.
func NewTrace(npes int) *Trace {
	return &Trace{npes: npes, matrix: make([]uint64, npes*npes)}
}

// Hook returns the fabric hook feeding this collector.
func (t *Trace) Hook() fabric.Hook {
	return func(ev fabric.OpEvent) {
		t.mu.Lock()
		t.kinds[ev.Kind]++
		t.kindsB[ev.Kind] += uint64(ev.Bytes)
		t.modeled[ev.Kind] += ev.ModeledNs
		if ev.Bytes > 0 {
			t.sizeLog[bits.Len(uint(ev.Bytes))-1]++
		}
		if ev.Initiator < t.npes && ev.Target < t.npes {
			t.matrix[ev.Initiator*t.npes+ev.Target] += uint64(ev.Bytes)
		}
		t.mu.Unlock()
	}
}

// Ops reports the operation count of one kind.
func (t *Trace) Ops(kind fabric.OpKind) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.kinds[kind]
}

// TotalBytes reports all payload bytes observed.
func (t *Trace) TotalBytes() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n uint64
	for _, b := range t.kindsB {
		n += b
	}
	return n
}

// MatrixBytes reports bytes moved from src to dst.
func (t *Trace) MatrixBytes(src, dst int) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.matrix[src*t.npes+dst]
}

// Render writes a human-readable communication profile.
func (t *Trace) Render(out io.Writer) {
	t.mu.Lock()
	defer t.mu.Unlock()

	fmt.Fprintf(out, "\n# communication profile (%d PEs)\n", t.npes)
	fmt.Fprintf(out, "%-10s %12s %14s %14s\n", "op", "count", "bytes", "modeled")
	for k := fabric.OpPut; k <= fabric.OpBarrier; k++ {
		fmt.Fprintf(out, "%-10s %12d %14d %14v\n", k, t.kinds[k], t.kindsB[k], time.Duration(t.modeled[k]))
	}

	fmt.Fprintf(out, "\nmessage-size histogram (log2 buckets)\n")
	hi := 0
	for i, c := range t.sizeLog {
		if c > 0 {
			hi = i
		}
	}
	var maxC uint64
	for _, c := range t.sizeLog[:hi+1] {
		if c > maxC {
			maxC = c
		}
	}
	for i := 0; i <= hi; i++ {
		c := t.sizeLog[i]
		barLen := 0
		if maxC > 0 {
			barLen = int(c * 40 / maxC)
		}
		fmt.Fprintf(out, "%8d-%-8d %10d %s\n", 1<<i, 1<<(i+1)-1, c, bar(barLen))
	}

	if t.npes <= 16 {
		fmt.Fprintf(out, "\ntraffic matrix (KB, src rows -> dst cols)\n      ")
		for d := 0; d < t.npes; d++ {
			fmt.Fprintf(out, "%8d", d)
		}
		fmt.Fprintln(out)
		for s := 0; s < t.npes; s++ {
			fmt.Fprintf(out, "PE%-4d", s)
			for d := 0; d < t.npes; d++ {
				fmt.Fprintf(out, "%8d", t.matrix[s*t.npes+d]/1024)
			}
			fmt.Fprintln(out)
		}
	}
}

func bar(n int) string {
	const full = "########################################"
	if n > len(full) {
		n = len(full)
	}
	return full[:n]
}

// TraceOpts selects the optional telemetry outputs of a trace run.
type TraceOpts struct {
	// Timeline, when non-empty, runs the kernel with the telemetry
	// subsystem enabled and writes the Chrome trace-event JSON timeline
	// (Perfetto-loadable) to this path, validating that it parses.
	Timeline string
	// Metrics, when set, appends a Prometheus-style text dump of the
	// telemetry counters and histograms to the output writer.
	Metrics bool
}

func (o TraceOpts) telemetryOn() bool { return o.Timeline != "" || o.Metrics }

// RunTrace executes one kernel implementation under the trace collector
// and renders the profile.
func RunTrace(fig, impl string, cores int, cfg KernelFigConfig, out io.Writer) error {
	return RunTraceOpts(fig, impl, cores, cfg, out, TraceOpts{})
}

// RunTraceOpts is RunTrace plus the telemetry outputs selected by opts.
func RunTraceOpts(fig, impl string, cores int, cfg KernelFigConfig, out io.Writer, opts TraceOpts) error {
	cfg = cfg.WithDefaults()
	var k kernels.KernelFunc
	var ok bool
	switch fig {
	case "histo":
		k, ok = kernelsHistogram()[impl]
		if !ok {
			return fmt.Errorf("bench: unknown histogram implementation %q", impl)
		}
	case "ig":
		k, ok = kernelsIndexGather()[impl]
		if !ok {
			return fmt.Errorf("bench: unknown indexgather implementation %q", impl)
		}
	case "randperm":
		k, ok = kernelsRandperm()[impl]
		if !ok {
			return fmt.Errorf("bench: unknown randperm implementation %q", impl)
		}
	default:
		return fmt.Errorf("bench: unknown kernel %q", fig)
	}
	return traceOne(k, impl, cores, cfg, out, opts)
}

// kernel map accessors keep the import local to this file's users.
func kernelsHistogram() map[string]kernels.KernelFunc   { return kernels.Histogram }
func kernelsIndexGather() map[string]kernels.KernelFunc { return kernels.IndexGather }
func kernelsRandperm() map[string]kernels.KernelFunc    { return kernels.Randperm }

// traceOne runs impl once with the collector installed.
func traceOne(fn kernels.KernelFunc, name string, cores int, cfg KernelFigConfig, out io.Writer, opts TraceOpts) error {
	cpp := coresPerPE(name, cores, cfg.WorkersPerPE)
	pes := cores / cpp
	if pes < 1 {
		pes = 1
	}
	params := scalePerCore(cfg.Params, cpp)
	workers := 1
	if cpp > 1 {
		workers = cpp
	}
	rcfg := runtime.Config{
		PEs:            pes,
		WorkersPerPE:   workers,
		Lamellae:       runtime.LamellaeSim,
		Cost:           fabric.DefaultCostModel(),
		ArrayBatchSize: params.BufItems,
		Telemetry:      opts.telemetryOn(),
	}
	// Own the telemetry session here rather than letting the world own
	// it: the rings must survive runtime.Run so they can be exported (and
	// the written timeline validated) at full quiescence.
	var tc *telemetry.Collector
	if opts.telemetryOn() {
		var owned bool
		tc, owned = telemetry.StartGlobal(pes, 0)
		if owned {
			defer telemetry.StopGlobal(tc)
		}
	}
	tr := NewTrace(pes)
	err := runtime.Run(rcfg, func(w *runtime.World) {
		w.Barrier()
		if w.MyPE() == 0 {
			w.Provider().SetHook(tr.Hook())
		}
		w.Barrier()
		if kerr := fn(w, params, nil); kerr != nil {
			panic(kerr)
		}
		w.Barrier()
		if w.MyPE() == 0 {
			w.Provider().SetHook(nil)
		}
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "kernel=%s impl=%s cores=%d (PEs=%d x %d workers)\n", "trace", name, cores, pes, workers)
	tr.Render(out)
	if opts.Timeline != "" {
		n, flows, err := writeTimelineValidated(tc, opts.Timeline)
		if err != nil {
			return err
		}
		var dropped uint64
		for pe := 0; pe < tc.NumPEs(); pe++ {
			dropped += tc.Dropped(pe)
		}
		fmt.Fprintf(out, "\ntimeline: %s (%d events, %d flows, %d dropped)\n", opts.Timeline, n, flows, dropped)
	}
	if opts.Metrics {
		fmt.Fprintf(out, "\n# telemetry metrics\n")
		if err := tc.WritePrometheus(out); err != nil {
			return err
		}
	}
	return nil
}

// writeTimelineValidated exports the collector's Chrome trace timeline to
// path, then re-reads and JSON-parses the file, returning the trace-event
// and causal-flow counts. A timeline Perfetto cannot load is an error,
// not a warning — and so is a flow graph with dangling references (a
// "t"/"f" step whose flow was never opened by an "s", or an exec/return
// span claiming a flow id no issue span carries).
func writeTimelineValidated(c *telemetry.Collector, path string) (int, int, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, 0, err
	}
	if err := c.WriteChromeTrace(f); err != nil {
		f.Close()
		return 0, 0, err
	}
	if err := f.Close(); err != nil {
		return 0, 0, err
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return 0, 0, fmt.Errorf("bench: timeline %s is not valid trace JSON: %w", path, err)
	}
	flows, err := validateTraceFlows(doc.TraceEvents)
	if err != nil {
		return 0, 0, fmt.Errorf("bench: timeline %s: %w", path, err)
	}
	return len(doc.TraceEvents), flows, nil
}

// flowEvent is the subset of a trace event the flow validator reads.
type flowEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	ID   *uint64 `json:"id"`
	Args struct {
		Flow uint64 `json:"flow"`
	} `json:"args"`
}

// validateTraceFlows checks the causal-flow graph of an exported
// timeline: every flow step ("t") and finish ("f") must reference a flow
// opened by a start ("s"), and every span annotated with a flow id
// (am.encode/am.exec/am.return) must belong to a flow some am.issue
// opened. Returns the number of distinct flows. The exporter's
// wraparound suppression is supposed to guarantee this; the validator is
// the check that it actually did.
func validateTraceFlows(events []json.RawMessage) (int, error) {
	opened := make(map[uint64]bool)
	var parsed []flowEvent
	for _, raw := range events {
		var ev flowEvent
		if err := json.Unmarshal(raw, &ev); err != nil {
			return 0, fmt.Errorf("unparseable trace event: %w", err)
		}
		if ev.Ph == "s" {
			if ev.ID == nil {
				return 0, fmt.Errorf("flow start %q has no id", ev.Name)
			}
			opened[*ev.ID] = true
		}
		parsed = append(parsed, ev)
	}
	for _, ev := range parsed {
		switch ev.Ph {
		case "t", "f":
			if ev.ID == nil {
				return 0, fmt.Errorf("flow event %q (ph=%s) has no id", ev.Name, ev.Ph)
			}
			if !opened[*ev.ID] {
				return 0, fmt.Errorf("dangling flow reference: %q (ph=%s) id=%d has no matching start", ev.Name, ev.Ph, *ev.ID)
			}
		}
		if ev.Args.Flow != 0 && !opened[ev.Args.Flow] {
			return 0, fmt.Errorf("dangling span reference: %q carries flow=%d but no am.issue opened it", ev.Name, ev.Args.Flow)
		}
	}
	return len(opened), nil
}
