package bench

import (
	"fmt"
	"io"
	"math/bits"
	"sync"

	"repro/internal/bale/kernels"
	"repro/internal/fabric"
	"repro/internal/runtime"
)

// Trace collects a communication profile from the fabric hook: operation
// counts by kind, a log2 message-size histogram, and a PE×PE traffic
// matrix. It is the runtime-engineer's view of what a kernel does on the
// wire — the data behind statements like "small message all-to-all" in
// §IV-B1 — and backs the lamellar-trace command.
type Trace struct {
	mu      sync.Mutex
	npes    int
	kinds   [4]uint64
	kindsB  [4]uint64
	sizeLog [32]uint64 // histogram buckets: [2^i, 2^(i+1))
	matrix  []uint64   // npes*npes bytes moved
}

// NewTrace creates a collector for a world of npes PEs.
func NewTrace(npes int) *Trace {
	return &Trace{npes: npes, matrix: make([]uint64, npes*npes)}
}

// Hook returns the fabric hook feeding this collector.
func (t *Trace) Hook() fabric.Hook {
	return func(kind fabric.OpKind, initiator, target, nbytes int) {
		t.mu.Lock()
		t.kinds[kind]++
		t.kindsB[kind] += uint64(nbytes)
		if nbytes > 0 {
			t.sizeLog[bits.Len(uint(nbytes))-1]++
		}
		if initiator < t.npes && target < t.npes {
			t.matrix[initiator*t.npes+target] += uint64(nbytes)
		}
		t.mu.Unlock()
	}
}

// Ops reports the operation count of one kind.
func (t *Trace) Ops(kind fabric.OpKind) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.kinds[kind]
}

// TotalBytes reports all payload bytes observed.
func (t *Trace) TotalBytes() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n uint64
	for _, b := range t.kindsB {
		n += b
	}
	return n
}

// MatrixBytes reports bytes moved from src to dst.
func (t *Trace) MatrixBytes(src, dst int) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.matrix[src*t.npes+dst]
}

// Render writes a human-readable communication profile.
func (t *Trace) Render(out io.Writer) {
	t.mu.Lock()
	defer t.mu.Unlock()

	fmt.Fprintf(out, "\n# communication profile (%d PEs)\n", t.npes)
	fmt.Fprintf(out, "%-10s %12s %14s\n", "op", "count", "bytes")
	for k := fabric.OpPut; k <= fabric.OpBarrier; k++ {
		fmt.Fprintf(out, "%-10s %12d %14d\n", k, t.kinds[k], t.kindsB[k])
	}

	fmt.Fprintf(out, "\nmessage-size histogram (log2 buckets)\n")
	hi := 0
	for i, c := range t.sizeLog {
		if c > 0 {
			hi = i
		}
	}
	var maxC uint64
	for _, c := range t.sizeLog[:hi+1] {
		if c > maxC {
			maxC = c
		}
	}
	for i := 0; i <= hi; i++ {
		c := t.sizeLog[i]
		barLen := 0
		if maxC > 0 {
			barLen = int(c * 40 / maxC)
		}
		fmt.Fprintf(out, "%8d-%-8d %10d %s\n", 1<<i, 1<<(i+1)-1, c, bar(barLen))
	}

	if t.npes <= 16 {
		fmt.Fprintf(out, "\ntraffic matrix (KB, src rows -> dst cols)\n      ")
		for d := 0; d < t.npes; d++ {
			fmt.Fprintf(out, "%8d", d)
		}
		fmt.Fprintln(out)
		for s := 0; s < t.npes; s++ {
			fmt.Fprintf(out, "PE%-4d", s)
			for d := 0; d < t.npes; d++ {
				fmt.Fprintf(out, "%8d", t.matrix[s*t.npes+d]/1024)
			}
			fmt.Fprintln(out)
		}
	}
}

func bar(n int) string {
	const full = "########################################"
	if n > len(full) {
		n = len(full)
	}
	return full[:n]
}

// RunTrace executes one kernel implementation under the trace collector
// and renders the profile.
func RunTrace(fig, impl string, cores int, cfg KernelFigConfig, out io.Writer) error {
	cfg = cfg.WithDefaults()
	var fn func() error
	switch fig {
	case "histo":
		k, ok := kernelsHistogram()[impl]
		if !ok {
			return fmt.Errorf("bench: unknown histogram implementation %q", impl)
		}
		fn = func() error { return traceOne(k, impl, cores, cfg, out) }
	case "ig":
		k, ok := kernelsIndexGather()[impl]
		if !ok {
			return fmt.Errorf("bench: unknown indexgather implementation %q", impl)
		}
		fn = func() error { return traceOne(k, impl, cores, cfg, out) }
	case "randperm":
		k, ok := kernelsRandperm()[impl]
		if !ok {
			return fmt.Errorf("bench: unknown randperm implementation %q", impl)
		}
		fn = func() error { return traceOne(k, impl, cores, cfg, out) }
	default:
		return fmt.Errorf("bench: unknown kernel %q", fig)
	}
	return fn()
}

// kernel map accessors keep the import local to this file's users.
func kernelsHistogram() map[string]kernels.KernelFunc   { return kernels.Histogram }
func kernelsIndexGather() map[string]kernels.KernelFunc { return kernels.IndexGather }
func kernelsRandperm() map[string]kernels.KernelFunc    { return kernels.Randperm }

// traceOne runs impl once with the collector installed.
func traceOne(fn kernels.KernelFunc, name string, cores int, cfg KernelFigConfig, out io.Writer) error {
	cpp := coresPerPE(name, cores, cfg.WorkersPerPE)
	pes := cores / cpp
	if pes < 1 {
		pes = 1
	}
	params := scalePerCore(cfg.Params, cpp)
	workers := 1
	if cpp > 1 {
		workers = cpp
	}
	rcfg := runtime.Config{
		PEs:            pes,
		WorkersPerPE:   workers,
		Lamellae:       runtime.LamellaeSim,
		Cost:           fabric.DefaultCostModel(),
		ArrayBatchSize: params.BufItems,
	}
	tr := NewTrace(pes)
	err := runtime.Run(rcfg, func(w *runtime.World) {
		w.Barrier()
		if w.MyPE() == 0 {
			w.Provider().SetHook(tr.Hook())
		}
		w.Barrier()
		if kerr := fn(w, params, nil); kerr != nil {
			panic(kerr)
		}
		w.Barrier()
		if w.MyPE() == 0 {
			w.Provider().SetHook(nil)
		}
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "kernel=%s impl=%s cores=%d (PEs=%d x %d workers)\n", "trace", name, cores, pes, workers)
	tr.Render(out)
	return nil
}
