package shmem

import "time"

// Mailbox and asynchronous termination detection: the communication
// substrate shared by the asynchronous BALE baselines (Exstack2,
// Conveyors, Selectors) and the Chapel-style aggregators. Each PE hosts
// one fixed-size slot per source; a sender owns its slot at every
// destination exclusively.
//
// Flow control is credit-based, as in the real libraries: the sender
// polls a *local* credit word (free — like shmem_wait_until on local
// memory) and spends the credit to send (one RDMA put of the payload plus
// one remote atomic raising the receiver's presence flag); the receiver's
// presence checks are local polls, and consuming a message returns the
// credit with one remote atomic into the sender's memory. Each message
// therefore costs exactly one put and two remote atomics regardless of
// contention — retry loops never touch the network.

// Mailbox is a symmetric array of per-source message slots.
type Mailbox struct {
	ctx       *Ctx
	slotWords int
	data      *Sym[uint64]
	present   *SymAtomic // on the receiver: words present, indexed by src
	credit    *SymAtomic // on the sender: slot-free flag, indexed by dst
}

// NewMailbox collectively creates a mailbox set with the given slot
// capacity (in 64-bit words). Collective: ends with a barrier.
func NewMailbox(c *Ctx, slotWords int) *Mailbox {
	if slotWords < 1 {
		panic("shmem: slotWords must be positive")
	}
	m := &Mailbox{
		ctx:       c,
		slotWords: slotWords,
		data:      Alloc[uint64](c, c.NPEs()*slotWords),
		present:   AllocAtomic(c, c.NPEs()),
		credit:    AllocAtomic(c, c.NPEs()),
	}
	for dst := 0; dst < c.NPEs(); dst++ {
		m.credit.LocalStore(dst, 1) // every slot starts free
	}
	c.Barrier()
	return m
}

// SlotWords reports the slot capacity.
func (m *Mailbox) SlotWords() int { return m.slotWords }

// TrySend delivers words to dst if the sender's slot there is free.
// len(words) must be in [1, SlotWords]. The free-check is a local credit
// poll (no network cost); a successful send costs one put plus one remote
// atomic.
func (m *Mailbox) TrySend(dst int, words []uint64) bool {
	if len(words) == 0 || len(words) > m.slotWords {
		panic("shmem: bad mailbox message size")
	}
	me := m.ctx.MyPE()
	if m.credit.LocalLoad(dst) == 0 {
		return false
	}
	m.credit.LocalStore(dst, 0)
	m.data.Put(dst, me*m.slotWords, words)
	m.present.Store(dst, me, uint64(len(words)))
	return true
}

// Poll consumes every currently present message on the calling PE,
// invoking handle for each; reports whether any message was handled.
// Presence checks are local polls; each consumed message returns one
// credit to its sender (one remote atomic).
func (m *Mailbox) Poll(handle func(src int, words []uint64)) bool {
	me := m.ctx.MyPE()
	local := m.data.Local()
	handled := false
	for src := 0; src < m.ctx.NPEs(); src++ {
		n := m.present.LocalLoad(src)
		if n == 0 {
			continue
		}
		buf := make([]uint64, n)
		copy(buf, local[src*m.slotWords:src*m.slotWords+int(n)])
		m.present.LocalStore(src, 0)
		m.credit.Store(src, me, 1) // return the credit to the sender
		handle(src, buf)
		handled = true
	}
	return handled
}

// SendBlocking delivers words to dst, invoking progress (typically a Poll
// of the caller's own mailbox) between attempts so that mutual sends
// cannot deadlock — the progress-function discipline of the BALE
// libraries.
func (m *Mailbox) SendBlocking(dst int, words []uint64, progress func()) {
	for !m.TrySend(dst, words) {
		if progress != nil {
			progress()
		}
	}
}

// Terminator implements asynchronous distributed termination detection
// with published (done, sent, received) counters and a double-stable
// scan: safe to run while other PEs are still communicating, unlike a
// collective. Counter updates are local stores; scans are remote reads.
type Terminator struct {
	state      *SymAtomic // words: 0 done flag, 1 sent, 2 received
	ctx        *Ctx
	sent, recv uint64
	lastSum    [2]uint64
	lastOK     bool
}

// NewTerminator collectively creates the termination state.
func NewTerminator(c *Ctx) *Terminator {
	return &Terminator{state: AllocAtomic(c, 3), ctx: c}
}

// NoteSent records n locally-sent messages.
func (t *Terminator) NoteSent(n uint64) {
	t.sent += n
	t.state.LocalStore(1, t.sent)
}

// NoteRecv records n locally-received messages.
func (t *Terminator) NoteRecv(n uint64) {
	t.recv += n
	t.state.LocalStore(2, t.recv)
}

// SetDone publishes whether this PE has finished generating new work.
func (t *Terminator) SetDone(done bool) {
	v := uint64(0)
	if done {
		v = 1
	}
	t.state.LocalStore(0, v)
}

// Reset clears the detector for reuse (collective by convention: call on
// all PEs between phases, separated by barriers).
func (t *Terminator) Reset() {
	t.sent, t.recv = 0, 0
	t.lastSum = [2]uint64{}
	t.lastOK = false
	t.state.LocalStore(0, 0)
	t.state.LocalStore(1, 0)
	t.state.LocalStore(2, 0)
}

// DrainUntilQuiet runs the progress function until global quiescence.
// Detector scans cost 3·P remote reads, so they are scheduled on a
// time-based backoff (200us doubling to 8ms) while the PE is locally
// idle; an idle PE sleeps between polls instead of burning its core
// (spin CPU would also pollute the benchmark harness's CPU-share metric).
func (t *Terminator) DrainUntilQuiet(advance func() bool) {
	interval := 200 * time.Microsecond
	next := time.Now().Add(interval)
	for {
		if advance() {
			continue // traffic still moving: serve it at full speed
		}
		if time.Now().After(next) {
			if t.GlobalQuiet() {
				return
			}
			if interval < 8*time.Millisecond {
				interval *= 2
			}
			next = time.Now().Add(interval)
			continue
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// GlobalQuiet scans every PE's published state; it returns true only after
// two consecutive scans observe all PEs done with equal and unchanged
// sent/received totals (Dijkstra's double-count argument: no message can
// be in flight). Call repeatedly from the drain loop.
func (t *Terminator) GlobalQuiet() bool {
	var sent, recv uint64
	allDone := true
	for pe := 0; pe < t.ctx.NPEs(); pe++ {
		if t.state.Load(pe, 0) == 0 {
			allDone = false
		}
		sent += t.state.Load(pe, 1)
		recv += t.state.Load(pe, 2)
	}
	quiet := allDone && sent == recv
	stable := t.lastOK && quiet && t.lastSum == [2]uint64{sent, recv}
	t.lastOK = quiet
	t.lastSum = [2]uint64{sent, recv}
	return stable
}
