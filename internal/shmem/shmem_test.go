package shmem

import (
	"fmt"
	"testing"

	"repro/internal/runtime"
)

func runWorld(t *testing.T, pes int, fn func(c *Ctx)) {
	t.Helper()
	cfg := runtime.Config{PEs: pes, WorkersPerPE: 1, Lamellae: runtime.LamellaeShmem}
	if err := runtime.Run(cfg, func(w *runtime.World) { fn(New(w)) }); err != nil {
		t.Fatal(err)
	}
}

func TestSymPutGet(t *testing.T) {
	runWorld(t, 3, func(c *Ctx) {
		s := Alloc[uint64](c, 16)
		// each PE writes its id into everyone's slot [mype]
		for pe := 0; pe < c.NPEs(); pe++ {
			s.P(pe, c.MyPE(), uint64(c.MyPE()+1))
		}
		c.Barrier()
		local := s.Local()
		for src := 0; src < c.NPEs(); src++ {
			if local[src] != uint64(src+1) {
				panic(fmt.Sprintf("PE%d: slot %d = %d", c.MyPE(), src, local[src]))
			}
		}
		if v := s.G((c.MyPE()+1)%c.NPEs(), 0); v != 1 {
			panic(fmt.Sprintf("G = %d", v))
		}
		c.Barrier()
	})
}

func TestSymAtomic(t *testing.T) {
	runWorld(t, 4, func(c *Ctx) {
		a := AllocAtomic(c, 4)
		// all PEs fetch-add on PE0's word 2
		prev := a.FetchAdd(0, 2, 10)
		if prev%10 != 0 || prev > 30 {
			panic(fmt.Sprintf("prev = %d", prev))
		}
		c.Barrier()
		if c.MyPE() == 0 {
			if v := a.LocalLoad(2); v != 40 {
				panic(fmt.Sprintf("total = %d", v))
			}
		}
		c.Barrier()
		// CAS contention: exactly one winner
		won := a.CAS(0, 3, 0, uint64(c.MyPE()+100))
		wins := c.SumU64(map[bool]uint64{true: 1, false: 0}[won])
		if wins != 1 {
			panic(fmt.Sprintf("CAS winners = %d", wins))
		}
		c.Barrier()
	})
}

func TestWaitUntil(t *testing.T) {
	runWorld(t, 2, func(c *Ctx) {
		a := AllocAtomic(c, 1)
		if c.MyPE() == 0 {
			a.Store(1, 0, 99) // signal PE1
		} else {
			v := a.WaitUntil(0, func(v uint64) bool { return v == 99 })
			if v != 99 {
				panic("wait value wrong")
			}
		}
		c.Barrier()
	})
}

func TestMailboxRoundTrip(t *testing.T) {
	runWorld(t, 4, func(c *Ctx) {
		m := NewMailbox(c, 8)
		c.Barrier()
		// each PE sends one message to every other PE and polls until it
		// has received npes-1 messages
		got := map[int][]uint64{}
		progress := func() {
			m.Poll(func(src int, words []uint64) { got[src] = words })
		}
		for pe := 0; pe < c.NPEs(); pe++ {
			if pe == c.MyPE() {
				continue
			}
			m.SendBlocking(pe, []uint64{uint64(c.MyPE()), 42, uint64(pe)}, progress)
		}
		for len(got) < c.NPEs()-1 {
			progress()
		}
		for src, words := range got {
			if len(words) != 3 || words[0] != uint64(src) || words[1] != 42 || words[2] != uint64(c.MyPE()) {
				panic(fmt.Sprintf("PE%d: from %d: %v", c.MyPE(), src, words))
			}
		}
		c.Barrier()
	})
}

func TestMailboxBackpressure(t *testing.T) {
	runWorld(t, 2, func(c *Ctx) {
		m := NewMailbox(c, 2)
		c.Barrier()
		if c.MyPE() == 0 {
			if !m.TrySend(1, []uint64{1}) {
				panic("first send should succeed")
			}
			if m.TrySend(1, []uint64{2}) {
				panic("second send must fail until receiver polls")
			}
		}
		c.Barrier()
		if c.MyPE() == 1 {
			var vals []uint64
			m.Poll(func(src int, words []uint64) { vals = words })
			if len(vals) != 1 || vals[0] != 1 {
				panic(fmt.Sprintf("poll got %v", vals))
			}
		}
		c.Barrier()
		if c.MyPE() == 0 {
			if !m.TrySend(1, []uint64{2}) {
				panic("send after poll should succeed")
			}
		}
		c.Barrier()
	})
}

func TestTerminatorDetectsQuiescence(t *testing.T) {
	runWorld(t, 4, func(c *Ctx) {
		m := NewMailbox(c, 4)
		term := NewTerminator(c)
		c.Barrier()
		// a small message storm with counted sends/receives
		recvd := 0
		progress := func() {
			m.Poll(func(src int, words []uint64) {
				recvd++
				term.NoteRecv(1)
			})
		}
		for i := 0; i < 10; i++ {
			dst := (c.MyPE() + 1 + i) % c.NPEs()
			if dst == c.MyPE() {
				continue
			}
			m.SendBlocking(dst, []uint64{uint64(i)}, progress)
			term.NoteSent(1)
		}
		term.SetDone(true)
		for !term.GlobalQuiet() {
			progress()
		}
		// no message may be outstanding now
		if m.Poll(func(int, []uint64) {}) {
			panic("message arrived after global quiescence")
		}
		c.Barrier()
	})
}
