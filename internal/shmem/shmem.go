// Package shmem provides an OpenSHMEM-style one-sided programming API over
// the simulated fabric: symmetric arrays, blocking put/get, remote
// atomics, barriers and reductions. The paper's baseline systems —
// Exstack, Exstack2, Conveyors (C over OpenSHMEM) and Selectors (C++ over
// OpenSHMEM) — are implemented on top of this package so that every
// implementation in the Figs. 3–5 comparison pays the same network model.
//
// A shmem Ctx lives inside a Lamellar world (one per PE) but uses only
// the fabric and team collectives, never the AM runtime, mirroring how
// the original baselines sit directly on OpenSHMEM rather than on
// Lamellar.
package shmem

import (
	stdruntime "runtime"

	"repro/internal/fabric"
	"repro/internal/runtime"
	"repro/internal/serde"
)

// Ctx is one PE's SHMEM context.
type Ctx struct {
	w    *runtime.World
	team *runtime.Team
	prov *fabric.Provider
}

// New creates the calling PE's context for the given world.
func New(w *runtime.World) *Ctx {
	return &Ctx{w: w, team: w.Team(), prov: w.Provider()}
}

// MyPE reports the calling PE (shmem_my_pe).
func (c *Ctx) MyPE() int { return c.w.MyPE() }

// NPEs reports the world size (shmem_n_pes).
func (c *Ctx) NPEs() int { return c.w.NumPEs() }

// Barrier synchronizes all PEs (shmem_barrier_all).
func (c *Ctx) Barrier() { c.prov.Barrier(c.w.MyPE()) }

// SumU64 performs a long-sum reduction across all PEs.
func (c *Ctx) SumU64(v uint64) uint64 { return c.team.SumU64(v) }

// MaxU64 performs a long-max reduction across all PEs.
func (c *Ctx) MaxU64(v uint64) uint64 { return c.team.MaxU64(v) }

// World exposes the underlying world (for benchmark accounting).
func (c *Ctx) World() *runtime.World { return c.w }

// Sym is a symmetric array: n elements of T on every PE, remotely
// addressable by (pe, offset) — the shmem symmetric heap object.
type Sym[T serde.Number] struct {
	ctx *Ctx
	reg *fabric.TypedRegion[T]
	n   int
}

// Alloc collectively allocates a symmetric array (shmem_malloc); all PEs
// must call it in the same order.
func Alloc[T serde.Number](c *Ctx, n int) *Sym[T] {
	reg := c.team.CollectiveKind("shmem.alloc", func() any {
		return fabric.AllocTyped[T](c.prov, n)
	}).(*fabric.TypedRegion[T])
	return &Sym[T]{ctx: c, reg: reg, n: n}
}

// Len reports the per-PE element count.
func (s *Sym[T]) Len() int { return s.n }

// Local returns the calling PE's slice of the symmetric array.
func (s *Sym[T]) Local() []T { return s.reg.Local(s.ctx.MyPE()) }

// Put blocks until vals are written to pe's array at off (shmem_put).
func (s *Sym[T]) Put(pe, off int, vals []T) {
	s.reg.Put(s.ctx.MyPE(), pe, off, vals)
}

// Get blocks until dst is filled from pe's array at off (shmem_get).
func (s *Sym[T]) Get(pe, off int, dst []T) {
	s.reg.Get(s.ctx.MyPE(), pe, off, dst)
}

// P writes one element (shmem_p).
func (s *Sym[T]) P(pe, off int, v T) { s.Put(pe, off, []T{v}) }

// G reads one element (shmem_g).
func (s *Sym[T]) G(pe, off int) T {
	var buf [1]T
	s.Get(pe, off, buf[:])
	return buf[0]
}

// View returns a context-free handle usable by another PE of the same
// world (symmetric objects are shared; each PE should normally allocate
// collectively and keep its own handle).
func (s *Sym[T]) View(c *Ctx) *Sym[T] { return &Sym[T]{ctx: c, reg: s.reg, n: s.n} }

// SymAtomic is a symmetric array of 64-bit words supporting remote atomic
// operations (shmem_atomic_*). Backed by fabric control words; the handle
// caches the segment so data-path operations skip the segment table.
type SymAtomic struct {
	ctx   *Ctx
	words fabric.Words
	n     int
}

// AllocAtomic collectively allocates n atomic words per PE.
func AllocAtomic(c *Ctx, n int) *SymAtomic {
	seg := c.team.CollectiveKind("shmem.allocAtomic", func() any {
		return c.prov.AllocSegment(0, n)
	}).(fabric.SegmentID)
	return &SymAtomic{ctx: c, words: c.prov.Words(seg), n: n}
}

// Len reports the per-PE word count.
func (a *SymAtomic) Len() int { return a.n }

// FetchAdd atomically adds delta to pe's word idx, returning the previous
// value (shmem_atomic_fetch_add).
func (a *SymAtomic) FetchAdd(pe, idx int, delta uint64) uint64 {
	return a.words.Add(a.ctx.MyPE(), pe, idx, delta) - delta
}

// Add atomically adds delta to pe's word idx (shmem_atomic_add).
func (a *SymAtomic) Add(pe, idx int, delta uint64) {
	a.words.Add(a.ctx.MyPE(), pe, idx, delta)
}

// CAS atomically compares-and-swaps pe's word idx (shmem_atomic_compare_swap).
func (a *SymAtomic) CAS(pe, idx int, old, new uint64) bool {
	return a.words.CAS(a.ctx.MyPE(), pe, idx, old, new)
}

// Load atomically reads pe's word idx (shmem_atomic_fetch).
func (a *SymAtomic) Load(pe, idx int) uint64 {
	return a.words.Load(a.ctx.MyPE(), pe, idx)
}

// Store atomically writes pe's word idx (shmem_atomic_set).
func (a *SymAtomic) Store(pe, idx int, v uint64) {
	a.words.Store(a.ctx.MyPE(), pe, idx, v)
}

// LocalLoad reads the calling PE's own word without network cost (a local
// poll, as in shmem_wait_until).
func (a *SymAtomic) LocalLoad(idx int) uint64 {
	return a.words.LocalLoad(a.ctx.MyPE(), idx)
}

// LocalStore writes the calling PE's own word without network cost.
func (a *SymAtomic) LocalStore(idx int, v uint64) {
	a.words.LocalStore(a.ctx.MyPE(), idx, v)
}

// LocalAdd atomically adds to the calling PE's own word locally.
func (a *SymAtomic) LocalAdd(idx int, delta uint64) uint64 {
	return a.words.LocalAdd(a.ctx.MyPE(), idx, delta)
}

// WaitUntil polls the calling PE's own word until pred holds
// (shmem_wait_until — a local memory poll, free of network cost).
func (a *SymAtomic) WaitUntil(idx int, pred func(uint64) bool) uint64 {
	for {
		v := a.LocalLoad(idx)
		if pred(v) {
			return v
		}
		stdruntime.Gosched()
	}
}
