package telemetry

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is one bucket per value bit-length: bucket 0 holds exactly
// the value 0, bucket i (i >= 1) holds [2^(i-1), 2^i). 64 value buckets
// cover every non-negative int64 nanosecond duration (negative inputs
// clamp to 0, so a clock hiccup cannot index out of range).
const histBuckets = 65

// Histogram is a lock-free log2-bucketed latency histogram. Record is
// safe from any goroutine; Snapshot/Summary taken concurrently see a
// near-consistent view (each counter is individually atomic).
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Int64
	buckets [histBuckets]atomic.Uint64
}

// bucketOf maps a nanosecond value to its bucket index.
func bucketOf(ns int64) int {
	if ns <= 0 {
		return 0
	}
	return bits.Len64(uint64(ns))
}

// BucketUpper returns the inclusive upper bound of bucket i (0 for the
// zero bucket, 2^i - 1 otherwise; the last bucket saturates at MaxInt64).
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return int64(^uint64(0) >> 1) // MaxInt64
	}
	return int64(1)<<i - 1
}

// Record adds one observation in nanoseconds.
func (h *Histogram) Record(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(ns))
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reports the total of all observations in nanoseconds.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Max reports the largest observation.
func (h *Histogram) Max() int64 { return h.max.Load() }

// Buckets snapshots the bucket counters.
func (h *Histogram) Buckets() [histBuckets]uint64 {
	var out [histBuckets]uint64
	for i := range out {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Merge folds another histogram's observations into h, so per-PE
// latency distributions can be combined into one digest before taking
// quantiles (quantiles themselves do not compose; buckets do). Merge is
// not atomic with respect to concurrent Record on o — merge quiesced
// histograms.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	for i := range h.buckets {
		if n := o.buckets[i].Load(); n > 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	m := o.max.Load()
	for {
		cur := h.max.Load()
		if m <= cur || h.max.CompareAndSwap(cur, m) {
			break
		}
	}
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1): the
// upper edge of the first bucket whose cumulative count reaches q. An
// empty histogram reports 0.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	need := uint64(q * float64(total))
	if need == 0 {
		need = 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= need {
			return BucketUpper(i)
		}
	}
	return h.max.Load()
}

// HistSummary is the percentile digest surfaced by runtime.StatsReport.
type HistSummary struct {
	Count uint64
	Mean  time.Duration
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
	P999  time.Duration
	Max   time.Duration
}

// Summary digests the histogram into counts and percentile bounds.
func (h *Histogram) Summary() HistSummary {
	s := HistSummary{
		Count: h.count.Load(),
		P50:   time.Duration(h.Quantile(0.50)),
		P90:   time.Duration(h.Quantile(0.90)),
		P99:   time.Duration(h.Quantile(0.99)),
		P999:  time.Duration(h.Quantile(0.999)),
		Max:   time.Duration(h.max.Load()),
	}
	if s.Count > 0 {
		s.Mean = time.Duration(h.sum.Load() / s.Count)
	}
	return s
}

func (s HistSummary) String() string {
	if s.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%v p50<=%v p90<=%v p99<=%v p999<=%v max=%v",
		s.Count, s.Mean, s.P50, s.P90, s.P99, s.P999, s.Max)
}
