package recorder

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestRecorderDigests(t *testing.T) {
	r := New(2)
	if r.NumPEs() != 2 {
		t.Fatalf("NumPEs = %d, want 2", r.NumPEs())
	}
	for i := 0; i < 1000; i++ {
		r.PE(0).Record(HistRoundTrip, int64(time.Microsecond)*int64(i+1))
	}
	r.PE(1).Record(HistBatchAge, int64(50*time.Microsecond))
	r.PE(0).SetUnacked(3)
	r.PE(0).SetUnacked(7)
	r.PE(0).SetUnacked(2)

	snap := r.Snapshot()
	if len(snap.PEs) != 2 {
		t.Fatalf("snapshot has %d PEs, want 2", len(snap.PEs))
	}
	rt := snap.PEs[0].Hists[HistRoundTrip.String()]
	if rt.Count != 1000 {
		t.Errorf("round-trip count = %d, want 1000", rt.Count)
	}
	// Quantiles are log2-bucket upper bounds, so p99 may overshoot the
	// exact max; only monotonicity between quantiles is guaranteed.
	if rt.P50Ns <= 0 || rt.P99Ns < rt.P50Ns || rt.MaxNs <= 0 {
		t.Errorf("quantiles not ordered: p50=%d p99=%d max=%d", rt.P50Ns, rt.P99Ns, rt.MaxNs)
	}
	if now, peak := snap.PEs[0].UnackedFrames, snap.PEs[0].UnackedPeak; now != 2 || peak != 7 {
		t.Errorf("unacked gauge = (%d, peak %d), want (2, 7)", now, peak)
	}
	if snap.PEs[1].Hists[HistBatchAge.String()].Count != 1 {
		t.Error("PE1 batch-age sample lost")
	}

	// The snapshot is the diagnostic-dump payload; it must round-trip
	// through JSON.
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.PEs[0].Hists[HistRoundTrip.String()].Count != 1000 {
		t.Error("snapshot did not survive a JSON round trip")
	}
}

// Out-of-range PE indexes clamp rather than panic: the recorder is on
// hot paths where a bounds panic would take down the runtime.
func TestRecorderClamps(t *testing.T) {
	r := New(0) // clamped to 1
	r.PE(-1).Record(HistRoundTrip, 100)
	r.PE(99).Record(HistRoundTrip, 100)
	if got := r.PE(0).Hist(HistRoundTrip).Count(); got != 2 {
		t.Errorf("clamped records = %d, want 2", got)
	}
}

// Concurrent recording from many goroutines must be safe and lose
// nothing (the recorder is written from scheduler workers, the AM
// resolve path, and the watchdog simultaneously).
func TestRecorderConcurrent(t *testing.T) {
	r := New(1)
	const gs, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.PE(0).Record(HistRoundTrip, int64(i+1))
				r.PE(0).SetUnacked(int64(i % 16))
			}
		}()
	}
	wg.Wait()
	if got := r.PE(0).Hist(HistRoundTrip).Count(); got != gs*per {
		t.Errorf("count = %d, want %d", got, gs*per)
	}
	if _, peak := r.PE(0).Unacked(); peak != 15 {
		t.Errorf("unacked peak = %d, want 15", peak)
	}
}
